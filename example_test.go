package omnc_test

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"omnc"
)

// ExampleNewDecoder codes a small generation across a lossless hop and
// decodes it progressively.
func ExampleNewDecoder() {
	params := omnc.CodingParams{GenerationSize: 4, BlockSize: 8}
	data := []byte("a lossy wireless world, coded!..")
	gen, err := omnc.NewGeneration(0, params, data)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	enc := omnc.NewEncoder(gen, rng)
	dec, err := omnc.NewDecoder(0, params)
	if err != nil {
		log.Fatal(err)
	}
	packets := 0
	for !dec.Decoded() {
		if _, err := dec.Add(enc.Next()); err != nil {
			log.Fatal(err)
		}
		packets++
	}
	fmt.Println(bytes.Equal(dec.Data(), data))
	fmt.Println(packets >= params.GenerationSize)
	// Output:
	// true
	// true
}

// ExampleSelectForwarders shows node selection on the paper's two-relay
// diamond: both relays are closer to the destination than the source, so
// both are selected and two opportunistic paths emerge.
func ExampleSelectForwarders() {
	nw, err := omnc.NetworkFromMatrix([][]float64{
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	sg, err := omnc.SelectForwarders(nw, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected nodes:", sg.Size())
	fmt.Println("links:", len(sg.Links))
	fmt.Println("paths:", sg.PathCount())
	// Output:
	// selected nodes: 4
	// links: 4
	// paths: 2
}

// ExampleSolveOptimalRates solves the sUnicast LP on the diamond; the
// optimum is gamma* = 49/75 of the channel capacity.
func ExampleSolveOptimalRates() {
	nw, _ := omnc.NetworkFromMatrix([][]float64{
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	sg, _ := omnc.SelectForwarders(nw, 0, 3)
	res, err := omnc.SolveOptimalRates(sg, 75000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gamma* = %.0f bytes/s\n", res.Gamma)
	// Output:
	// gamma* = 49000 bytes/s
}

// ExampleRun emulates one OMNC session end to end. (Throughput varies
// with the seed, so the example only reports that data flowed.)
func ExampleRun() {
	nw, _ := omnc.NetworkFromMatrix([][]float64{
		{0, 0.5, 0.5, 0},
		{0.5, 0, 0, 0.5},
		{0.5, 0, 0, 0.5},
		{0, 0.5, 0.5, 0},
	})
	st, err := omnc.Run(nw, 0, 3, omnc.OMNC(omnc.RateOptions{}), omnc.SessionConfig{
		Coding:        omnc.CodingParams{GenerationSize: 8, BlockSize: 16},
		AirPacketSize: 8 + 1024,
		Capacity:      2e4,
		Duration:      120,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decoded generations:", st.GenerationsDecoded > 0)
	fmt.Println("both relays used:", st.NodeUtility == 1)
	// Output:
	// decoded generations: true
	// both relays used: true
}
