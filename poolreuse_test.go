package omnc_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"omnc"
	"omnc/internal/seedmix"
)

// The solver-reuse property layer: pooled workspaces (rate-solve scratch,
// LP tableaus, replan masks, Dijkstra storage) must be invisible in every
// session statistic. RateOptions.FreshWorkspace is the oracle — it forces
// the rate controller to allocate everything fresh — so a pooled run and a
// fresh run of the same seeded fault plan must agree bit for bit, replan
// after replan. Protocols without a rate controller (MORE, oldMORE, ETX)
// still exercise the shared replan scratch and the pooled LP path, so they
// replay against themselves under the same plans.

// reusePlans is how many seeded fault plans each protocol endures.
func reusePlans(t *testing.T) int {
	if testing.Short() {
		return 10
	}
	return 50
}

func TestWorkspaceReuseFaultReplans(t *testing.T) {
	cs := newChaosSession(t, 5)
	plans := reusePlans(t)
	type pair struct {
		pooled omnc.Protocol
		oracle omnc.Protocol
	}
	protos := map[string]pair{
		"omnc":    {omnc.OMNC(omnc.RateOptions{}), omnc.OMNC(omnc.RateOptions{FreshWorkspace: true})},
		"more":    {omnc.MORE(), omnc.MORE()},
		"oldmore": {omnc.OldMORE(), omnc.OldMORE()},
		"etx":     {omnc.ETX(), omnc.ETX()},
	}
	for name, pr := range protos {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < plans; i++ {
				plan, err := omnc.RandomFaultPlan(omnc.RandomFaultPlanConfig{
					Nodes:        cs.nodes,
					Links:        cs.links,
					Horizon:      10,
					CrashRate:    0.15,
					MeanDowntime: 3,
					FlapRate:     0.1,
					BurstRate:    0.1,
					BadFactor:    0.1,
					Seed:         seedmix.Derive(4000, int64(i)),
				})
				if err != nil {
					t.Fatalf("plan %d: %v", i, err)
				}
				cfg := chaosConfig(19, plan)
				want, errW := omnc.Run(cs.nw, cs.src, cs.dst, pr.oracle, cfg)
				got, errG := omnc.Run(cs.nw, cs.src, cs.dst, pr.pooled, cfg)
				if planKillsDst(plan, cs.dst) {
					if !errors.Is(errW, omnc.ErrDestinationDown) || !errors.Is(errG, omnc.ErrDestinationDown) {
						t.Fatalf("plan %d kills the destination but errs = %v, %v", i, errW, errG)
					}
					continue
				}
				if errW != nil || errG != nil {
					t.Fatalf("plan %d: fresh err %v, pooled err %v", i, errW, errG)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("plan %d: pooled run diverged from fresh-workspace oracle:\n got %+v\nwant %+v",
						i, got, want)
				}
			}
		})
	}
}

// TestWorkspaceReuseMultiSessionRace drives the joint replan path — several
// sessions sharing pooled workspaces through crash/recover churn — across
// parallel trials. Under -race this proves the sync.Pool handoff is the only
// sharing between concurrent sessions; the fresh-workspace oracle run inside
// each trial proves the shared scratch never changes a joint re-solve.
func TestWorkspaceReuseMultiSessionRace(t *testing.T) {
	nw, err := omnc.GenerateNetwork(40, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	sessions := findMultiSessions(t, nw, 2)
	protect := make(map[int]bool)
	for _, ep := range sessions {
		protect[ep.Src] = true
		protect[ep.Dst] = true
	}
	var candidates []int
	for n := 0; n < nw.Size(); n++ {
		if !protect[n] {
			candidates = append(candidates, n)
		}
	}
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			plan, err := omnc.RandomFaultPlan(omnc.RandomFaultPlanConfig{
				Nodes:        candidates,
				Horizon:      10,
				CrashRate:    0.4,
				MeanDowntime: 2,
				Seed:         seedmix.Derive(5000, int64(trial)),
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := chaosConfig(seedmix.Derive(6000, int64(trial)), plan)
			want, err := omnc.RunMulti(nw, sessions, omnc.OMNC(omnc.RateOptions{FreshWorkspace: true}), cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := omnc.RunMulti(nw, sessions, omnc.OMNC(omnc.RateOptions{}), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("pooled joint replan diverged from fresh-workspace oracle:\n got %+v\nwant %+v",
					got, want)
			}
		})
	}
}
