// Package gf16 implements arithmetic over the Galois field GF(2^16) with the
// reduction polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B), the 16-bit field
// option of the coding layer. A larger field drops the probability that a
// random combination is non-innovative from ~1/256 per packet to ~1/65536, at
// the cost of doubled coefficient overhead — the classic RLNC field-size
// trade-off the -field knob exposes.
//
// Elements are packed into byte slices as little-endian uint16 lanes. The
// bulk kernels follow the same per-scalar split-table technique as the
// package gf256 nibble kernel, lifted one level: multiplication by a fixed c
// is GF(2)-linear, so c*x resolves as loTab[x & 0xFF] ^ hiTab[x >> 8] against
// two 256-entry tables built from c's sixteen bit-plane products in a few
// hundred XORs — no 8 GiB product table, no per-call log/exp chains.
//
// All functions are safe for concurrent use; the per-scalar tables live on
// the caller's stack.
package gf16

import "math/bits"

// Poly is the reduction polynomial with the leading x^16 bit.
const Poly = 0x1100B

// Add returns a + b; addition and subtraction coincide (XOR).
func Add(a, b uint16) uint16 { return a ^ b }

// mulX multiplies by x (doubles) with reduction.
func mulX(v uint16) uint16 {
	hi := v & 0x8000
	v <<= 1
	if hi != 0 {
		v ^= Poly & 0xFFFF
	}
	return v
}

// Mul returns a * b by shift-and-reduce. Scalar multiplies are rare in the
// coding layer (pivot normalization, tests); the bulk kernels below carry
// the hot path.
func Mul(a, b uint16) uint16 {
	var p uint16
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = mulX(a)
		b >>= 1
	}
	return p
}

// Inv returns the multiplicative inverse of a via Fermat's little theorem
// (a^(2^16-2)). Inv(0) panics, matching gf256.Inv.
func Inv(a uint16) uint16 {
	if a == 0 {
		panic("gf16: inverse of zero")
	}
	// 2^16 - 2 = 0xFFFE: square-and-multiply over the fixed exponent.
	result := uint16(1)
	base := a
	for e := 0xFFFE; e > 0; e >>= 1 {
		if e&1 != 0 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
	}
	return result
}

// scalarTables builds the two 256-entry half-element product tables for c:
// lo[v] = c*v and hi[v] = c*(v<<8). Each table entry is the XOR of the
// bit-plane products c*x^k over v's set bits, filled in subset order so every
// entry costs one XOR.
func scalarTables(c uint16) (lo, hi [256]uint16) {
	var pow [16]uint16 // pow[k] = c * x^k
	v := c
	for k := 0; k < 16; k++ {
		pow[k] = v
		v = mulX(v)
	}
	for b := 1; b < 256; b++ {
		k := bits.TrailingZeros(uint(b))
		lo[b] = lo[b&(b-1)] ^ pow[k]
		hi[b] = hi[b&(b-1)] ^ pow[8+k]
	}
	return lo, hi
}

// MulAdd computes dst[i] ^= c * src[i] over little-endian uint16 lanes. The
// slices must have equal, even length and must not partially overlap
// (identical slices are fine).
func MulAdd(dst, src []byte, c uint16) {
	if len(dst) != len(src) {
		panic("gf16: MulAdd length mismatch")
	}
	if len(dst)%2 != 0 {
		panic("gf16: MulAdd odd length")
	}
	switch c {
	case 0:
		return
	case 1:
		for i := range dst {
			dst[i] ^= src[i]
		}
		return
	}
	lo, hi := scalarTables(c)
	n := len(src)
	for i := 0; i+2 <= n; i += 2 {
		s := src[i : i+2 : i+2]
		d := dst[i : i+2 : i+2]
		p := lo[s[0]] ^ hi[s[1]]
		d[0] ^= byte(p)
		d[1] ^= byte(p >> 8)
	}
}

// MulSlice computes dst[i] = c * src[i] over little-endian uint16 lanes,
// under the same length and aliasing contract as MulAdd.
func MulSlice(dst, src []byte, c uint16) {
	if len(dst) != len(src) {
		panic("gf16: MulSlice length mismatch")
	}
	if len(dst)%2 != 0 {
		panic("gf16: MulSlice odd length")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	lo, hi := scalarTables(c)
	n := len(src)
	for i := 0; i+2 <= n; i += 2 {
		s := src[i : i+2 : i+2]
		d := dst[i : i+2 : i+2]
		p := lo[s[0]] ^ hi[s[1]]
		d[0] = byte(p)
		d[1] = byte(p >> 8)
	}
}

// Elem reads element i from a packed slice.
func Elem(b []byte, i int) uint16 {
	return uint16(b[2*i]) | uint16(b[2*i+1])<<8
}

// SetElem writes element i of a packed slice.
func SetElem(b []byte, i int, v uint16) {
	b[2*i] = byte(v)
	b[2*i+1] = byte(v >> 8)
}
