package gf16

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFieldAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		a, b, c := uint16(rng.Intn(1<<16)), uint16(rng.Intn(1<<16)), uint16(rng.Intn(1<<16))
		if Mul(a, b) != Mul(b, a) {
			t.Fatalf("commutativity: %#x * %#x", a, b)
		}
		if Mul(a, Mul(b, c)) != Mul(Mul(a, b), c) {
			t.Fatalf("associativity: %#x %#x %#x", a, b, c)
		}
		if Mul(a, b^c) != Mul(a, b)^Mul(a, c) {
			t.Fatalf("distributivity: %#x over %#x + %#x", a, b, c)
		}
		if Mul(a, 1) != a || Mul(a, 0) != 0 {
			t.Fatalf("identity/annihilator: %#x", a)
		}
	}
}

func TestInv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		a := uint16(1 + rng.Intn(1<<16-1))
		if got := Mul(a, Inv(a)); got != 1 {
			t.Fatalf("%#x * Inv = %#x, want 1", a, got)
		}
	}
	if Inv(1) != 1 {
		t.Fatal("Inv(1) != 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	Inv(0)
}

func TestBulkKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 * rng.Intn(40)
		c := uint16(rng.Intn(1 << 16))
		src := make([]byte, n)
		rng.Read(src)
		dst := make([]byte, n)
		rng.Read(dst)

		wantAdd := append([]byte(nil), dst...)
		for i := 0; i < n/2; i++ {
			SetElem(wantAdd, i, Elem(wantAdd, i)^Mul(c, Elem(src, i)))
		}
		gotAdd := append([]byte(nil), dst...)
		MulAdd(gotAdd, src, c)
		if !bytes.Equal(gotAdd, wantAdd) {
			t.Fatalf("MulAdd(c=%#x, n=%d) = %x, want %x", c, n, gotAdd, wantAdd)
		}

		wantMul := make([]byte, n)
		for i := 0; i < n/2; i++ {
			SetElem(wantMul, i, Mul(c, Elem(src, i)))
		}
		gotMul := append([]byte(nil), dst...)
		MulSlice(gotMul, src, c)
		if !bytes.Equal(gotMul, wantMul) {
			t.Fatalf("MulSlice(c=%#x, n=%d) = %x, want %x", c, n, gotMul, wantMul)
		}

		// In-place aliasing (the Scale pattern).
		self := append([]byte(nil), src...)
		MulSlice(self, self, c)
		selfWant := make([]byte, n)
		for i := 0; i < n/2; i++ {
			SetElem(selfWant, i, Mul(c, Elem(src, i)))
		}
		if !bytes.Equal(self, selfWant) {
			t.Fatalf("in-place MulSlice(c=%#x, n=%d) diverged", c, n)
		}
	}
}

func TestKernelPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MulAdd(make([]byte, 4), make([]byte, 2), 5) },
		func() { MulAdd(make([]byte, 3), make([]byte, 3), 5) },
		func() { MulSlice(make([]byte, 4), make([]byte, 2), 5) },
		func() { MulSlice(make([]byte, 3), make([]byte, 3), 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("contract violation must panic")
				}
			}()
			f()
		}()
	}
}
