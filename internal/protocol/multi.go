package protocol

import (
	"errors"
	"fmt"

	"omnc/internal/core"
	"omnc/internal/metrics"
	"omnc/internal/topology"
)

// ErrInvalidSession matches any rejected multi-unicast session list:
// out-of-range endpoints, a session whose source equals its destination, or
// duplicated (src, dst) pairs (which would silently contend with
// themselves). Match with errors.Is.
var ErrInvalidSession = errors.New("protocol: invalid session")

// Endpoints identifies one session of a multiple-unicast run.
type Endpoints struct {
	Src, Dst int
}

// MultiStats aggregates a multiple-unicast emulation.
type MultiStats struct {
	// PerSession holds each session's statistics, index-aligned with the
	// input endpoints.
	PerSession []*Stats
	// AggregateThroughput sums the per-session throughputs.
	AggregateThroughput float64
	// JainFairness is Jain's fairness index over the per-session
	// throughputs: 1 when every session gets the same rate, 1/n when one
	// session takes everything.
	JainFairness float64
	// SessionErrors is index-aligned with PerSession; non-nil entries carry
	// a session's abnormal termination (ErrDestinationDown when a fault plan
	// killed its destination for good). Nil when every session ran normally.
	SessionErrors []error
}

// ValidateSessions checks a multi-unicast session list against a network of
// n nodes; failures wrap ErrInvalidSession.
func ValidateSessions(n int, sessions []Endpoints) error {
	if len(sessions) == 0 {
		return fmt.Errorf("%w: no sessions", ErrInvalidSession)
	}
	seen := make(map[Endpoints]int, len(sessions))
	for i, s := range sessions {
		if s.Src < 0 || s.Src >= n || s.Dst < 0 || s.Dst >= n {
			return fmt.Errorf("%w: session %d endpoints (%d,%d) out of range [0,%d)",
				ErrInvalidSession, i, s.Src, s.Dst, n)
		}
		if s.Src == s.Dst {
			return fmt.Errorf("%w: session %d source equals destination (%d)",
				ErrInvalidSession, i, s.Src)
		}
		if j, dup := seen[s]; dup {
			return fmt.Errorf("%w: session %d duplicates session %d (%d,%d)",
				ErrInvalidSession, i, j, s.Src, s.Dst)
		}
		seen[s] = i
	}
	return nil
}

// RunMulti emulates several unicast sessions of one protocol sharing the
// channel simultaneously — the multiple-unicast scenario the paper's
// conclusion points to. All sessions attach to one Env (one event engine,
// one MAC over the full network), so they really do contend: a node
// forwarding for two sessions round-robins its air time between them and
// every receiver demultiplexes the common broadcast channel by session tag.
//
// OMNC sessions get their rates from the joint controller
// (core.MultiRateController), whose shared congestion prices divide each
// neighbourhood's capacity across sessions; MORE, oldMORE and ETX run their
// usual uncoordinated disciplines per session.
func RunMulti(net *topology.Network, sessions []Endpoints, proto Protocol, cfg Config) (*MultiStats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateSessions(net.Size(), sessions); err != nil {
		return nil, err
	}
	specs := make([]SessionSpec, len(sessions))
	for i, s := range sessions {
		sg, err := core.SelectNodes(net, s.Src, s.Dst)
		if err != nil {
			return nil, fmt.Errorf("protocol: session %d: %w", i, err)
		}
		specs[i] = SessionSpec{ID: i, Src: s.Src, Dst: s.Dst, Subgraph: sg}
	}

	env, err := NewEnv(net, cfg)
	if err != nil {
		return nil, err
	}
	// The shared medium addresses nodes by network ID — the identity mapping.
	if err := env.InstallFaults(cfg.Faults, net.Size(), nil, cfg.Trace); err != nil {
		return nil, err
	}
	runs, err := proto.sessions(env, net, specs, cfg)
	if err != nil {
		return nil, err
	}
	if len(runs) != len(sessions) {
		return nil, fmt.Errorf("protocol: %s built %d sessions for %d endpoints", proto.Name(), len(runs), len(sessions))
	}
	for _, s := range runs {
		s.Start()
	}
	env.Eng.Run(cfg.Duration)

	out := &MultiStats{PerSession: make([]*Stats, len(runs))}
	rates := make([]float64, len(runs))
	for i, s := range runs {
		st := s.Finish(cfg.Duration)
		out.PerSession[i] = st
		out.AggregateThroughput += st.Throughput
		rates[i] = st.Throughput
		if err := s.Err(); err != nil {
			if out.SessionErrors == nil {
				out.SessionErrors = make([]error, len(runs))
			}
			out.SessionErrors[i] = err
		}
	}
	out.JainFairness = metrics.JainIndex(rates)
	return out, nil
}

// buildPolicySessions is the generic multi-session construction for
// Builder-based protocols: one policy and one shared-mode coded runtime per
// selected subgraph, with no cross-session coordination.
func buildPolicySessions(env *Env, net *topology.Network, specs []SessionSpec, cfg Config, build Builder) ([]Session, error) {
	out := make([]Session, len(specs))
	for i, sp := range specs {
		pol, err := build(sp.Subgraph, cfg)
		if err != nil {
			return nil, fmt.Errorf("protocol: session %d: %w", sp.ID, err)
		}
		if len(pol.Caps) != sp.Subgraph.Size() || len(pol.Credit) != sp.Subgraph.Size() {
			return nil, fmt.Errorf("protocol: policy %q sized for %d nodes, subgraph has %d",
				pol.Name, len(pol.Caps), sp.Subgraph.Size())
		}
		rt, err := newSharedRuntime(env, net, sp.Subgraph, pol, cfg, uint32(sp.ID))
		if err != nil {
			return nil, err
		}
		rt.rebuild = build
		out[i] = rt
	}
	return out, nil
}
