package protocol

import (
	"fmt"

	"omnc/internal/core"
	"omnc/internal/faults"
	"omnc/internal/sim"
	"omnc/internal/topology"
	"omnc/internal/trace"
)

// Env is the shared execution environment of one emulation: one event
// engine and one MAC model of the medium, which any number of protocol
// sessions attach to through the sim component/port API. A single-unicast
// run is an Env with one session; a multiple-unicast run attaches N sessions
// whose nodes contend on the same channel.
type Env struct {
	// Eng is the discrete-event engine owning time and the event calendar:
	// a serial engine by default, or a conservative parallel engine when
	// Config.EngineWorkers asks for one.
	Eng sim.Engine
	// MAC is the shared medium every session's components attach to.
	MAC *sim.MAC
	// Faults is the environment's fault injector, nil unless a fault plan
	// was installed. Sessions subscribe to its topology epochs to
	// re-optimize mid-run.
	Faults *faults.Injector

	attached int // sessions counted via AddSession
	finished int // sessions retired via SessionDone
}

// NewEnv builds an environment over the medium with the MAC parameters of
// cfg. Sessions attach their components afterwards; the caller then drives
// Eng.Run.
func NewEnv(medium sim.Medium, cfg Config) (*Env, error) {
	var eng sim.Engine
	if cfg.EngineWorkers > 0 {
		eng = sim.NewParallelEngine(cfg.EngineWorkers)
	} else {
		eng = sim.NewEngine()
	}
	mac, err := sim.NewMAC(eng, medium, sim.Config{
		Capacity:            cfg.Capacity,
		Mode:                cfg.MAC,
		Seed:                cfg.Seed,
		QueueSampleInterval: cfg.QueueSampleInterval,
		TimeQuantum:         cfg.TimeQuantum,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Report {
		// The measurement overlay only allocates counters; enabling it does
		// not perturb event timing or RNG draws.
		mac.EnableObservation()
	}
	return &Env{Eng: eng, MAC: mac}, nil
}

// InstallFaults validates the fault plan against a network of n nodes and
// arms an injector on the environment's engine. mapNode translates network
// node IDs to MAC addresses (nil means identity — the full-network medium);
// rec receives fault events when non-nil. A nil plan is a no-op, so callers
// can pass Config.Faults through unconditionally. Must run before sessions
// attach, so their constructors can observe Faults and subscribe.
func (e *Env) InstallFaults(plan *faults.Plan, nodes int, mapNode func(int) (int, bool), rec trace.Recorder) error {
	if plan == nil {
		return nil
	}
	if e.Faults != nil {
		return fmt.Errorf("protocol: fault plan already installed")
	}
	if err := plan.Validate(nodes); err != nil {
		return err
	}
	if mapNode == nil {
		mapNode = func(id int) (int, bool) { return id, true }
	}
	e.Faults = faults.NewInjector(e.Eng, e.MAC, plan, mapNode, rec)
	return nil
}

// AddSession counts a session onto the environment. Every constructor that
// attaches components must call it exactly once, so SessionDone knows when
// the whole emulation has finished.
func (e *Env) AddSession() { e.attached++ }

// SessionEngine returns the engine a session tagged id should schedule
// through: a per-shard buffering view when Eng is the parallel engine, Eng
// itself otherwise. Sessions must use their view for every Schedule and
// ScheduleHandler issued from a Receive callback — that is what lets the
// parallel engine merge same-bucket effects deterministically.
func (e *Env) SessionEngine(id uint32) sim.Engine { return sim.ViewFor(e.Eng, id) }

// SessionDone retires one attached session (its generation target was
// reached). When every attached session has retired, the engine stops early
// instead of idling out the remaining emulated time.
func (e *Env) SessionDone() {
	e.finished++
	if e.finished >= e.attached {
		e.Eng.Stop()
	}
}

// Session is one unicast session attached to a shared Env. The coded
// runtime (OMNC, MORE, oldMORE) and the ETX store-and-forward runtime both
// implement it, which is what lets RunMulti emulate N contending sessions
// of any protocol on one engine.
type Session interface {
	// Start wakes the session's source; call after every session is
	// attached, before driving the engine.
	Start()
	// Finish releases the session's pooled resources and returns its
	// statistics. until is the emulated time the engine ran to.
	Finish(until float64) *Stats
	// Err reports why the session terminated abnormally — in particular
	// ErrDestinationDown when a fault plan killed the destination for good —
	// or nil for a normal run.
	Err() error
}

// SessionSpec is one validated session of a multi-unicast run: its network
// endpoints and the forwarder subgraph node selection produced for them.
type SessionSpec struct {
	// ID is the session's index among the run's endpoints; it doubles as
	// the demultiplexing tag on the shared channel.
	ID int
	// Src and Dst are network node IDs.
	Src, Dst int
	// Subgraph is the session's selected forwarder set.
	Subgraph *core.Subgraph
}

// MultiBuilder constructs all sessions of a multi-unicast run at once on a
// shared Env. Protocols with joint rate control (OMNC) implement it to
// coordinate allocations across sessions; protocols without one get the
// generic per-subgraph construction from their policy Builder.
type MultiBuilder func(env *Env, net *topology.Network, specs []SessionSpec, cfg Config) ([]Session, error)
