package protocol

import (
	"errors"
	"testing"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/topology"
)

// crossroads hosts two sessions through shared middle relays:
// S1(0) -> {2,3} -> T1(5), S2(1) -> {2,3} -> T2(6).
func crossroads(t *testing.T) *topology.Network {
	t.Helper()
	p := make([][]float64, 7)
	for i := range p {
		p[i] = make([]float64, 7)
	}
	set := func(a, b int, q float64) {
		p[a][b] = q
		p[b][a] = q
	}
	set(0, 2, 0.8)
	set(0, 3, 0.6)
	set(1, 2, 0.7)
	set(1, 3, 0.8)
	set(2, 5, 0.7)
	set(3, 5, 0.6)
	set(2, 6, 0.6)
	set(3, 6, 0.8)
	set(2, 3, 0.5)
	nw, err := topology.NewExplicit(p)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func omncProto() Protocol {
	return NewProtocol("omnc", OMNC(core.Options{})).WithMulti(OMNCMulti(core.Options{}))
}

func TestRunMultiSingleSession(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(91)
	cfg.Duration = 200
	cs, err := RunMulti(nw, []Endpoints{{Src: 0, Dst: 5}}, omncProto(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.PerSession) != 1 {
		t.Fatalf("sessions = %d", len(cs.PerSession))
	}
	if cs.PerSession[0].GenerationsDecoded == 0 {
		t.Fatal("single concurrent session decoded nothing")
	}
	if cs.AggregateThroughput != cs.PerSession[0].Throughput {
		t.Fatal("aggregate must equal the single session")
	}
	if cs.JainFairness != 1 {
		t.Fatalf("Jain index of one session = %v, want 1", cs.JainFairness)
	}
}

func TestRunMultiTwoSessions(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(92)
	cfg.Duration = 300
	cs, err := RunMulti(nw,
		[]Endpoints{{Src: 0, Dst: 5}, {Src: 1, Dst: 6}}, omncProto(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.PerSession) != 2 {
		t.Fatalf("sessions = %d", len(cs.PerSession))
	}
	for i, st := range cs.PerSession {
		if st.GenerationsDecoded == 0 {
			t.Fatalf("session %d decoded nothing (gamma %.0f)", i, st.Gamma)
		}
		if st.Policy != "omnc" {
			t.Fatalf("policy = %q", st.Policy)
		}
	}
	if cs.JainFairness <= 0 || cs.JainFairness > 1 {
		t.Fatalf("Jain index = %v outside (0,1]", cs.JainFairness)
	}

	// Sharing the relays must cost throughput versus running alone.
	solo, err := RunMulti(nw, []Endpoints{{Src: 0, Dst: 5}}, omncProto(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cs.PerSession[0].Throughput > solo.PerSession[0].Throughput*1.1 {
		t.Fatalf("shared session (%v) outperformed solo (%v)",
			cs.PerSession[0].Throughput, solo.PerSession[0].Throughput)
	}
}

func TestValidateSessions(t *testing.T) {
	cases := []struct {
		name     string
		sessions []Endpoints
		ok       bool
	}{
		{"empty", nil, false},
		{"valid pair", []Endpoints{{0, 5}, {1, 6}}, true},
		{"src out of range", []Endpoints{{-1, 5}}, false},
		{"dst out of range", []Endpoints{{0, 7}}, false},
		{"src equals dst", []Endpoints{{3, 3}}, false},
		{"duplicate pair", []Endpoints{{0, 5}, {1, 6}, {0, 5}}, false},
		{"reversed pair ok", []Endpoints{{0, 5}, {5, 0}}, true},
	}
	for _, tc := range cases {
		err := ValidateSessions(7, tc.sessions)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: expected error", tc.name)
			} else if !errors.Is(err, ErrInvalidSession) {
				t.Errorf("%s: error %v does not wrap ErrInvalidSession", tc.name, err)
			}
		}
	}
}

func TestRunMultiValidation(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(93)
	if _, err := RunMulti(nw, nil, omncProto(), cfg); !errors.Is(err, ErrInvalidSession) {
		t.Fatalf("no sessions: err = %v, want ErrInvalidSession", err)
	}
	if _, err := RunMulti(nw, []Endpoints{{Src: 0, Dst: 0}}, omncProto(), cfg); !errors.Is(err, ErrInvalidSession) {
		t.Fatalf("degenerate endpoints: err = %v, want ErrInvalidSession", err)
	}
	if _, err := RunMulti(nw, []Endpoints{{Src: 0, Dst: 99}}, omncProto(), cfg); !errors.Is(err, ErrInvalidSession) {
		t.Fatalf("out-of-range endpoints: err = %v, want ErrInvalidSession", err)
	}
	if _, err := RunMulti(nw, []Endpoints{{Src: 0, Dst: 5}, {Src: 0, Dst: 5}}, omncProto(), cfg); !errors.Is(err, ErrInvalidSession) {
		t.Fatalf("duplicate sessions: err = %v, want ErrInvalidSession", err)
	}
	bad := cfg
	bad.Coding.GenerationSize = -1
	err := func() error {
		_, err := RunMulti(nw, []Endpoints{{Src: 0, Dst: 5}}, omncProto(), bad)
		return err
	}()
	if err == nil {
		t.Fatal("bad coding params must fail")
	}
	if errors.Is(err, ErrInvalidSession) {
		t.Fatalf("coding error %v must not masquerade as a session error", err)
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(94)
	cfg.Duration = 150
	eps := []Endpoints{{Src: 0, Dst: 5}, {Src: 1, Dst: 6}}
	a, err := RunMulti(nw, eps, omncProto(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(nw, eps, omncProto(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerSession {
		if a.PerSession[i].Throughput != b.PerSession[i].Throughput {
			t.Fatalf("session %d not deterministic", i)
		}
		if a.PerSession[i].InnovativeReceived != b.PerSession[i].InnovativeReceived {
			t.Fatalf("session %d reception counts not deterministic", i)
		}
	}
	if a.AggregateThroughput != b.AggregateThroughput || a.JainFairness != b.JainFairness {
		t.Fatal("aggregate statistics not deterministic")
	}
}

// TestRunMultiSharedForwarderAttribution: when two sessions route through the
// same physical relays, each session's utility statistics must come from its
// own traffic — per-session counters, not the MAC's aggregate ones.
func TestRunMultiSharedForwarderAttribution(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(95)
	cfg.Duration = 300
	cs, err := RunMulti(nw,
		[]Endpoints{{Src: 0, Dst: 5}, {Src: 1, Dst: 6}}, omncProto(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range cs.PerSession {
		if st.GenerationsDecoded == 0 {
			t.Fatalf("session %d decoded nothing", i)
		}
		// Each session transmits from at least its source, so a working
		// session can never report zero utility even though its forwarders
		// are shared with the other session.
		if st.NodeUtility <= 0 || st.NodeUtility > 1 {
			t.Fatalf("session %d node utility %v outside (0,1]", i, st.NodeUtility)
		}
		if st.PathUtility <= 0 || st.PathUtility > 1 {
			t.Fatalf("session %d path utility %v outside (0,1]", i, st.PathUtility)
		}
	}
}

// TestRunMultiMaxGenerations: sessions retire individually after their
// generation budget and the engine stops once the last one finishes — early
// termination now works in multi-unicast mode too.
func TestRunMultiMaxGenerations(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(96)
	cfg.Duration = 600
	cfg.MaxGenerations = 1
	cs, err := RunMulti(nw,
		[]Endpoints{{Src: 0, Dst: 5}, {Src: 1, Dst: 6}}, omncProto(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range cs.PerSession {
		if st.GenerationsDecoded < 1 {
			t.Fatalf("session %d decoded %d generations", i, st.GenerationsDecoded)
		}
		if st.Duration >= cfg.Duration {
			t.Fatalf("session %d did not stop early (duration %v)", i, st.Duration)
		}
	}
}

// TestRunMultiValidatesSchemeConfig: RunMulti rejects bad scheme/redundancy
// configurations through Config.Validate with the typed coding sentinels.
func TestRunMultiValidatesSchemeConfig(t *testing.T) {
	nw := crossroads(t)
	eps := []Endpoints{{Src: 0, Dst: 5}}

	cfg := fastConfig(97)
	cfg.Scheme = coding.Scheme(99)
	if _, err := RunMulti(nw, eps, omncProto(), cfg); !errors.Is(err, coding.ErrInvalidScheme) {
		t.Fatalf("bad scheme: err = %v, want ErrInvalidScheme", err)
	}

	cfg = fastConfig(97)
	cfg.Redundancy = 0.5
	if _, err := RunMulti(nw, eps, omncProto(), cfg); !errors.Is(err, coding.ErrInvalidRedundancy) {
		t.Fatalf("sub-unit redundancy: err = %v, want ErrInvalidRedundancy", err)
	}
}

// TestRunMultiSchemes: every coding scheme carries multi-unicast traffic on
// the shared channel.
func TestRunMultiSchemes(t *testing.T) {
	nw := crossroads(t)
	eps := []Endpoints{{Src: 0, Dst: 5}, {Src: 1, Dst: 6}}
	for _, scheme := range []coding.Scheme{coding.SchemeRLNC, coding.SchemeRLNCE2E, coding.SchemeRS} {
		cfg := fastConfig(98)
		cfg.Duration = 200
		cfg.Scheme = scheme
		cs, err := RunMulti(nw, eps, omncProto(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if cs.AggregateThroughput <= 0 {
			t.Fatalf("%s: delivered nothing", scheme)
		}
	}
}
