package protocol

import (
	"errors"
	"fmt"
	"math/rand"

	"omnc/internal/core"
	"omnc/internal/topology"
)

// DriftConfig injects link-quality drift and node failures into a
// long-lived session. Sec. 4 of the paper argues OMNC targets networks
// whose link qualities are stable on short time scales, and that when they
// do change "the node selection and rate allocation have to be re-initiated,
// which brings a certain amount of overhead" — this runner quantifies that
// trade-off.
type DriftConfig struct {
	// Epochs splits the session into this many quality epochs; the network
	// is re-perturbed and the protocol re-initialized at each boundary.
	// Minimum 1 (no drift).
	Epochs int
	// Jitter is the per-epoch multiplicative link-quality perturbation
	// (e.g. 0.3 for +/-30%).
	Jitter float64
	// FailuresPerEpoch kills this many randomly chosen selected forwarders
	// (never the endpoints) at each epoch boundary; failures accumulate.
	FailuresPerEpoch int
	// ReinitOverhead is the dead time in seconds charged per
	// re-initiation: link probing, node selection flooding and rate-control
	// convergence.
	ReinitOverhead float64
	// Seed drives the perturbations and failure choices.
	Seed int64
}

// DriftStats aggregates a session under dynamics.
type DriftStats struct {
	// PerEpoch holds each epoch's session statistics; unreachable epochs
	// (the failures disconnected the pair) have nil entries.
	PerEpoch []*Stats
	// Throughput is total decoded bytes over the full wall duration,
	// re-initiation overhead included.
	Throughput float64
	// Reinits counts re-initiations performed (Epochs - 1 plus one initial
	// setup, reported as Epochs).
	Reinits int
	// UnreachableEpochs counts epochs lost entirely to disconnection.
	UnreachableEpochs int
	// FailedNodes lists the nodes killed over the run.
	FailedNodes []int
}

// RunWithDrift emulates a long-lived session whose channel drifts: every
// epoch the link qualities are re-drawn around their means (and optionally
// forwarders fail), the protocol re-runs node selection and rate allocation
// on the new network, and the session continues. The epoch length is
// Config.Duration/Epochs minus the re-initiation overhead.
func RunWithDrift(net *topology.Network, src, dst int, build Builder, cfg Config, drift DriftConfig) (*DriftStats, error) {
	cfg = cfg.withDefaults()
	if drift.Epochs <= 0 {
		drift.Epochs = 1
	}
	if drift.Jitter < 0 || drift.Jitter >= 1 {
		return nil, fmt.Errorf("protocol: drift jitter %v outside [0, 1)", drift.Jitter)
	}
	epochWall := cfg.Duration / float64(drift.Epochs)
	if drift.ReinitOverhead >= epochWall {
		return nil, fmt.Errorf("protocol: re-initiation overhead %.1fs exceeds epoch length %.1fs",
			drift.ReinitOverhead, epochWall)
	}
	rng := rand.New(rand.NewSource(drift.Seed))

	out := &DriftStats{Reinits: drift.Epochs}
	current := net
	decodedBytes := 0.0
	for epoch := 0; epoch < drift.Epochs; epoch++ {
		if epoch > 0 {
			perturbed, err := current.PerturbQuality(drift.Seed+int64(epoch)*101, drift.Jitter)
			if err != nil {
				return nil, err
			}
			current = perturbed
		}
		if drift.FailuresPerEpoch > 0 && epoch > 0 {
			victims, err := pickVictims(current, src, dst, drift.FailuresPerEpoch, rng)
			if err == nil && len(victims) > 0 {
				current, err = current.WithoutNodes(victims...)
				if err != nil {
					return nil, err
				}
				out.FailedNodes = append(out.FailedNodes, victims...)
			}
		}

		epochCfg := cfg
		epochCfg.Duration = epochWall - drift.ReinitOverhead
		epochCfg.Seed = cfg.Seed + int64(epoch)*7919
		st, err := Run(current, src, dst, build, epochCfg)
		if err != nil {
			var unreach *core.ErrUnreachable
			if errors.As(err, &unreach) {
				// The failures cut the session off for this epoch; it
				// retries after the next re-initiation.
				out.PerEpoch = append(out.PerEpoch, nil)
				out.UnreachableEpochs++
				continue
			}
			return nil, fmt.Errorf("protocol: drift epoch %d: %w", epoch, err)
		}
		out.PerEpoch = append(out.PerEpoch, st)
		decodedBytes += st.Throughput * st.Duration
	}
	if cfg.Duration > 0 {
		out.Throughput = decodedBytes / cfg.Duration
	}
	return out, nil
}

// pickVictims chooses forwarders of the current selected subgraph to kill,
// sparing the endpoints.
func pickVictims(net *topology.Network, src, dst, n int, rng *rand.Rand) ([]int, error) {
	sg, err := core.SelectNodes(net, src, dst)
	if err != nil {
		return nil, err
	}
	var candidates []int
	for local, id := range sg.Nodes {
		if local == sg.Src || local == sg.Dst {
			continue
		}
		candidates = append(candidates, id)
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if n > len(candidates) {
		n = len(candidates)
	}
	return candidates[:n], nil
}
