package protocol

import (
	"errors"
	"fmt"

	"omnc/internal/core"
	"omnc/internal/faults"
	"omnc/internal/graph"
	"omnc/internal/trace"
)

// ErrDestinationDown matches a session whose destination crashed with no
// recovery scheduled before the horizon: the session finishes immediately
// with this typed error instead of idling through the remaining emulated
// time. Match with errors.Is.
var ErrDestinationDown = errors.New("protocol: destination down")

// onFault is the coded runtime's topology-epoch subscriber: it absorbs the
// node-level consequence of the event (crashed nodes lose their volatile
// protocol state, recovered nodes rejoin the live generation empty), then
// re-plans the session over the surviving subgraph — the mid-session
// re-optimization the paper calls for when "link qualities change
// significantly" (Sec. 4), applied to topology changes.
func (rt *runtime) onFault(ev faults.Event) {
	if rt.done {
		return
	}
	if rt.obs != nil {
		rt.obs.observeFault(ev.Kind)
	}
	switch ev.Kind {
	case faults.NodeCrash:
		local, ok := rt.localOf[ev.Node]
		if !ok {
			break // outside this session's subgraph: capacity may shift, rates re-solve below
		}
		n := rt.nodes[local]
		if n.isDst && !rt.env.Faults.WillRecover(ev.Node) {
			rt.fail(fmt.Errorf("%w: node %d crashed with no recovery before the horizon",
				ErrDestinationDown, ev.Node))
			return
		}
		n.crashReset()
	case faults.NodeRecover:
		if local, ok := rt.localOf[ev.Node]; ok {
			rt.rejoin(rt.nodes[local])
		}
	}
	rt.replan()
}

// fail terminates the session abnormally with a typed cause.
func (rt *runtime) fail(err error) {
	if rt.done {
		return
	}
	rt.done = true
	rt.failure = err
	rt.finishedAt = rt.eng.Now()
	rt.env.SessionDone()
}

// crashReset models the node's power loss: credit, buffered packets and the
// elimination state all vanish (the pooled resources return to the arena).
// The MAC keeps the dead node off the channel; the state here just must not
// survive into the recovery.
func (n *node) crashReset() {
	n.credit = 0
	n.shutdown()
	n.enc = nil
}

// rejoin re-arms a recovered node for the live generation with empty state —
// a rebooted forwarder has everything it needs in the role itself, since
// coded traffic carries no per-packet obligations.
func (rt *runtime) rejoin(n *node) {
	if err := n.reset(rt.gen); err != nil {
		// Coding parameters were validated up front; a failure here is a bug.
		panic(fmt.Sprintf("protocol: rejoin: %v", err))
	}
	if !n.isDst && !n.excluded {
		rt.mac.Wake(n.macID)
	}
}

// replan recomputes the session's policy over the subgraph that survives the
// current faults. If the destination is unreachable the session stalls (all
// transmitters go quiet) until a later epoch restores a path; if the
// protocol has a policy builder it re-solves — OMNC re-runs the Lagrangian
// rate allocation, MORE/oldMORE recompute their credits — and the new caps
// land on the MAC without disturbing in-flight frames.
func (rt *runtime) replan() {
	down := rt.downMask()
	inj := rt.env.Faults
	linkDown := func(i, j int) bool {
		return inj.LinkDown(rt.sg.Nodes[i], rt.sg.Nodes[j])
	}
	masked := rt.sg.Masked(down, linkDown)
	rt.emit(trace.EventReplan, rt.sg.Src, -1)
	if rt.obs != nil {
		rt.obs.faults.Replans++
	}
	if _, _, ok := graph.ShortestPath(masked.ForwardGraph(nil), masked.Src, masked.Dst); !ok {
		rt.stall()
		return
	}
	pol := rt.pol
	if rt.rebuild != nil {
		p, err := rt.rebuild(masked, rt.cfg)
		if err != nil {
			// The masked subgraph can be degenerate in ways node selection
			// would never produce; waiting for the next epoch is the only
			// sound reaction.
			rt.stall()
			return
		}
		pol = p
	}
	rt.applyPolicy(pol, down)
}

// downMask fills the runtime's replan scratch with the current down state of
// every subgraph node. The slice is recycled across topology epochs: Masked
// and applyPolicy both consume it synchronously and retain nothing, and fault
// handlers for one runtime never overlap, so one mask per runtime suffices
// even when jointReplan re-plans after the per-session handlers.
func (rt *runtime) downMask() []bool {
	inj := rt.env.Faults
	if cap(rt.replanDown) < rt.sg.Size() {
		rt.replanDown = make([]bool, rt.sg.Size())
	}
	down := rt.replanDown[:rt.sg.Size()]
	for i, nid := range rt.sg.Nodes {
		down[i] = inj.NodeDown(nid)
	}
	return down
}

// stall silences every transmitter of the session until a later epoch
// re-plans successfully. Received state is kept: a stall is an outage, not a
// crash.
func (rt *runtime) stall() {
	for _, n := range rt.nodes {
		n.excluded = true
	}
}

// applyPolicy installs a re-solved policy mid-run: exclusion flags merge the
// optimizer's choices with the currently-crashed set, caps update in place
// on the MAC (preserving token-bucket and carrier-sense state), and nodes
// re-included after an earlier exclusion attach their port on first use.
func (rt *runtime) applyPolicy(pol *Policy, down []bool) {
	rt.pol = pol
	for i, n := range rt.nodes {
		excluded := down[i] || (pol.Exclude != nil && pol.Exclude[i])
		n.excluded = excluded
		if n.isDst || excluded {
			continue
		}
		if !n.txAttached {
			rt.mac.AttachTransmitter(n.macID, n, pol.Caps[i])
			n.txAttached = true
		} else {
			rt.mac.SetPortCap(n.macID, n, pol.Caps[i])
		}
		rt.mac.Wake(n.macID)
	}
}

// jointReplan is OMNCMulti's additional epoch subscriber: where each
// session's own onFault handles state loss and reachability, this handler
// re-runs the joint rate controller across every live, reachable session so
// the shared congestion prices keep dividing each neighbourhood's surviving
// capacity. It subscribes after the per-session handlers, so it observes
// their crash/rejoin effects. On controller failure the old rates stand.
func jointReplan(env *Env, rts []*runtime, opts core.Options, utilization float64) func(faults.Event) {
	return func(faults.Event) {
		inj := env.Faults
		type liveSession struct {
			rt     *runtime
			masked *core.Subgraph
			down   []bool
		}
		var live []liveSession
		for _, rt := range rts {
			if rt.done {
				continue
			}
			down := rt.downMask()
			linkDown := func(i, j int) bool {
				return inj.LinkDown(rt.sg.Nodes[i], rt.sg.Nodes[j])
			}
			masked := rt.sg.Masked(down, linkDown)
			if _, _, ok := graph.ShortestPath(masked.ForwardGraph(nil), masked.Src, masked.Dst); !ok {
				continue // the session's own handler has stalled it
			}
			live = append(live, liveSession{rt: rt, masked: masked, down: down})
		}
		if len(live) == 0 {
			return
		}
		multi := make([]core.MultiSession, len(live))
		for i, l := range live {
			multi[i] = core.MultiSession{Subgraph: l.masked}
		}
		mc, err := core.NewMultiRateController(multi, opts)
		if err != nil {
			return
		}
		joint, err := mc.Run()
		if err != nil {
			return
		}
		minRate := 1e-4 * opts.Capacity
		for i, l := range live {
			sg := l.masked
			rates := joint.PerSession[i].SupportingRates(sg)
			caps, _ := core.RescaleFeasible(sg, rates, utilization*opts.Capacity)
			exclude := make([]bool, sg.Size())
			for j, b := range caps {
				if j != sg.Src && b < minRate {
					exclude[j] = true
				}
			}
			l.rt.applyPolicy(&Policy{
				Name:             l.rt.pol.Name,
				Caps:             caps,
				Credit:           make([]float64, sg.Size()),
				SendWhenNonEmpty: true,
				Exclude:          exclude,
				Gamma:            joint.PerSession[i].Gamma,
			}, l.down)
		}
	}
}
