package protocol

import (
	"omnc/internal/faults"
	"omnc/internal/report"
)

// sessionObs is the coded runtime's report collector, allocated only when
// Config.Report is set (nil otherwise, mirroring the MAC's measurement
// overlay). Every hook is an index increment at a site that already records
// the same event into the trace, so enabled-run counters reconcile exactly
// against trace.Buffer counts and disabled runs pay one nil check.
type sessionObs struct {
	rx      []int64 // per local node: session receptions accepted
	innov   []int64 // per local node: innovative receptions
	discard []int64 // per local node: non-innovative/expired discards
	rank    []report.RankPoint
	faults  report.FaultSummary
}

func newSessionObs(n int) *sessionObs {
	return &sessionObs{
		rx:      make([]int64, n),
		innov:   make([]int64, n),
		discard: make([]int64, n),
	}
}

// observeFault tallies one topology event the live session processed.
// Synthesized end events (flap/burst expiry) re-solve rates but are not new
// faults, so only the episode starts count.
func (o *sessionObs) observeFault(kind faults.Kind) {
	switch kind {
	case faults.NodeCrash:
		o.faults.Crashes++
	case faults.NodeRecover:
		o.faults.Recoveries++
	case faults.LinkFlap:
		o.faults.LinkFlaps++
	case faults.BurstLoss:
		o.faults.Bursts++
	}
}

// buildReport assembles the session's Report at Finish time from the
// collector, the MAC's measurement overlay and the session's own counters.
func (rt *runtime) buildReport(st *Stats) *report.Report {
	r := &report.Report{
		Protocol:           rt.pol.Name,
		Seed:               rt.cfg.Seed,
		Duration:           st.Duration,
		GenerationsDecoded: st.GenerationsDecoded,
		Throughput:         st.Throughput,
		RankTimeline:       rt.obs.rank,
		Faults:             rt.obs.faults,
	}
	if rt.env.Faults != nil {
		r.Faults.Epochs = rt.env.Faults.Epoch()
	}

	lat := report.NewHistogram(report.DefaultLatencyBounds...)
	for _, l := range rt.latencies {
		lat.Observe(l)
	}
	r.GenerationLatency = lat

	r.Nodes = make([]report.NodeCounters, rt.sg.Size())
	for i, n := range rt.nodes {
		nc := report.NodeCounters{
			Node:           i,
			TxFrames:       n.frames,
			RxPackets:      rt.obs.rx[i],
			Innovative:     rt.obs.innov[i],
			Discarded:      rt.obs.discard[i],
			AirtimeSeconds: rt.mac.Airtime(n.macID),
		}
		if !rt.shared {
			nc.MeanQueue = rt.mac.TimeAvgQueue(i)
		}
		r.Nodes[i] = nc
	}

	if rt.shared {
		for li, l := range rt.sg.Links {
			if rt.linkRx[li] > 0 {
				r.Links = append(r.Links, report.LinkDelivery{From: l.From, To: l.To, Delivered: rt.linkRx[li]})
			}
		}
	} else {
		for _, l := range rt.sg.Links {
			if d := rt.mac.Delivered(l.From, l.To); d > 0 {
				r.Links = append(r.Links, report.LinkDelivery{From: l.From, To: l.To, Delivered: d})
			}
		}
	}

	var tokenSum float64
	var tokenN int64
	for _, n := range rt.nodes {
		r.MAC.FramesSent += rt.mac.FramesSent(n.macID)
		r.MAC.BytesSent += rt.mac.BytesSent(n.macID)
		r.MAC.AirtimeSeconds += rt.mac.Airtime(n.macID)
		s, c := rt.mac.TokenObservations(n.macID)
		tokenSum += s
		tokenN += c
	}
	if tokenN > 0 {
		r.MAC.MeanTokenOccupancy = tokenSum / float64(tokenN)
	}
	if !rt.shared {
		// The queue histogram aggregates the private MAC's sampler; on a
		// shared channel the queues belong to physical nodes, not sessions.
		r.QueueLength = rt.mac.QueueHistogram()
	}
	return r
}
