package protocol

import (
	"fmt"
	"math/rand"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/graph"
	"omnc/internal/report"
	"omnc/internal/sim"
	"omnc/internal/topology"
	"omnc/internal/trace"
)

// runtime is one coded session: it wires the session's per-role components
// (source encoder, re-encoding forwarders, destination decoder — see node),
// the shared Env and the generation lifecycle together, and implements
// Session.
//
// A session runs in one of two placements. Exclusive (protocol.Run): the
// session owns a private Env over its subgraph medium and nodes are
// addressed by subgraph-local index. Shared (RunMulti): several sessions
// attach to one Env over the full network, nodes are addressed by network
// ID, and packets carry the session tag so each session's components filter
// their own traffic off the common broadcast channel.
type runtime struct {
	net *topology.Network
	sg  *core.Subgraph
	pol *Policy
	cfg Config

	id     uint32 // session tag on the shared channel (0 when exclusive)
	shared bool   // attached to a multi-session Env
	env    *Env
	eng    sim.Engine // the session's engine view (Env.SessionEngine)
	mac    *sim.MAC
	rng    *rand.Rand
	nodes  []*node

	// traceFree recycles deferred rx-side trace handlers (see emitDeferred);
	// a plain slice suffices because pops (receive path) and pushes (the
	// handler's Fire) always run on the goroutine currently owning this
	// session — the engine goroutine serially, the session's shard worker
	// inside a parallel round — with a barrier between the two.
	traceFree []*traceEvent

	localOf map[int]int // network ID -> local index (shared or faulted runs)
	linkIdx map[[2]int]int
	linkRx  []int64 // shared: per-subgraph-link session deliveries

	// Fault handling (rtfaults.go): rebuild re-solves the policy over the
	// surviving subgraph on every topology epoch; failure carries the typed
	// abnormal-termination cause; gen is the live generation, so recovered
	// nodes can rejoin it with fresh state. replanDown is the down-mask
	// scratch recycled across epochs (replan and jointReplan both borrow it
	// within one fault event; nothing retains it past applyPolicy).
	rebuild    Builder
	failure    error
	gen        *coding.Generation
	replanDown []bool

	currentGen int
	decoded    int
	done       bool
	finishedAt float64
	ackDelay   float64
	genBytes   int    // nominal application bytes per generation
	genData    []byte // reused workload buffer, refilled per generation
	genStart   float64

	latencies  []float64
	innovative int64
	received   int64

	// obs is the report collector (rtreport.go), nil unless Config.Report
	// is set — the same nil-until-enabled contract as the fault overlays.
	obs *sessionObs
}

// emit records a protocol event when tracing is enabled. Only for call
// sites that run in serial engine context (Dequeue side, generation
// restarts, fault reactions); receive-path sites must use emitDeferred.
func (rt *runtime) emit(t trace.EventType, node, from int) {
	if rt.cfg.Trace == nil {
		return
	}
	rt.cfg.Trace.Record(trace.Event{
		Time:       rt.eng.Now(),
		Type:       t,
		Node:       node,
		From:       from,
		Generation: rt.currentGen,
	})
}

// traceEvent defers one trace record to serial engine context: the event is
// captured (with its timestamp) where it happened and recorded when the
// handler fires at delay zero. Receive callbacks run concurrently with
// other sessions' on the parallel engine, and the trace Recorder — though
// mutex-safe — would interleave their records nondeterministically;
// deferring through the calendar restores a deterministic record order on
// both engines.
type traceEvent struct {
	rt *runtime
	ev trace.Event
}

// Fire implements sim.Handler.
func (h *traceEvent) Fire() {
	h.rt.cfg.Trace.Record(h.ev)
	h.rt.traceFree = append(h.rt.traceFree, h)
}

// emitDeferred records a protocol event from the session's receive path.
func (rt *runtime) emitDeferred(t trace.EventType, node, from int) {
	if rt.cfg.Trace == nil {
		return
	}
	var h *traceEvent
	if n := len(rt.traceFree); n > 0 {
		h = rt.traceFree[n-1]
		rt.traceFree = rt.traceFree[:n-1]
	} else {
		h = &traceEvent{rt: rt}
	}
	h.ev = trace.Event{
		Time:       rt.eng.Now(),
		Type:       t,
		Node:       node,
		From:       from,
		Generation: rt.currentGen,
	}
	rt.eng.ScheduleHandler(0, h)
}

// newRuntime builds an exclusive session: a private Env over the subgraph
// medium, nodes in local indices.
func newRuntime(net *topology.Network, sg *core.Subgraph, pol *Policy, cfg Config) (*runtime, error) {
	env, err := NewEnv(&subgraphMedium{net: net, sg: sg}, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		// The exclusive medium addresses nodes by subgraph-local index, so
		// the injector maps the plan's network IDs through the selection.
		localOf := make(map[int]int, sg.Size())
		for local, nid := range sg.Nodes {
			localOf[nid] = local
		}
		mapNode := func(id int) (int, bool) {
			l, ok := localOf[id]
			return l, ok
		}
		if err := env.InstallFaults(cfg.Faults, net.Size(), mapNode, cfg.Trace); err != nil {
			return nil, err
		}
	}
	return attachRuntime(env, net, sg, pol, cfg, 0, false)
}

// newSharedRuntime attaches one session of a multi-unicast run to the shared
// Env; the medium spans the full network, so components bind at network IDs.
func newSharedRuntime(env *Env, net *topology.Network, sg *core.Subgraph, pol *Policy, cfg Config, id uint32) (*runtime, error) {
	return attachRuntime(env, net, sg, pol, cfg, id, true)
}

func attachRuntime(env *Env, net *topology.Network, sg *core.Subgraph, pol *Policy, cfg Config, id uint32, shared bool) (*runtime, error) {
	nominalBlock := cfg.AirPacketSize - cfg.Coding.CoeffBytes()
	if nominalBlock <= 0 {
		return nil, fmt.Errorf("protocol: air packet size %d cannot carry %d coefficient bytes",
			cfg.AirPacketSize, cfg.Coding.CoeffBytes())
	}
	rt := &runtime{
		net:    net,
		sg:     sg,
		pol:    pol,
		cfg:    cfg,
		id:     id,
		shared: shared,
		env:    env,
		eng:    env.SessionEngine(id),
		mac:    env.MAC,
		// Session id 0 draws the same stream as an exclusive session, so
		// single-session behaviour is one fixed point of the multi path.
		rng:      rand.New(rand.NewSource(cfg.Seed + 31*int64(id) + 1)),
		ackDelay: ackLatency(sg, cfg),
		genBytes: cfg.Coding.GenerationSize * nominalBlock,
		genData:  make([]byte, cfg.Coding.GenerationSize*cfg.Coding.BlockSize),
	}
	if cfg.Report {
		rt.obs = newSessionObs(sg.Size())
	}
	if shared || env.Faults != nil {
		rt.localOf = make(map[int]int, sg.Size())
		for local, nid := range sg.Nodes {
			rt.localOf[nid] = local
		}
	}
	if shared {
		rt.linkIdx = make(map[[2]int]int, len(sg.Links))
		for li, l := range sg.Links {
			rt.linkIdx[[2]int{l.From, l.To}] = li
		}
		rt.linkRx = make([]int64, len(sg.Links))
	}
	rt.nodes = make([]*node, sg.Size())
	for i := range rt.nodes {
		macID := i
		if shared {
			macID = sg.Nodes[i]
		}
		n := &node{rt: rt, local: i, macID: macID, isSrc: i == sg.Src, isDst: i == sg.Dst}
		n.wake.n = n
		rt.nodes[i] = n
		if !n.isSrc {
			rt.mac.AttachSessionReceiver(macID, n, id)
		}
		excluded := pol.Exclude != nil && pol.Exclude[i]
		if !n.isDst && !excluded {
			rt.mac.AttachTransmitter(macID, n, pol.Caps[i])
			n.txAttached = true
		}
		n.excluded = excluded
	}
	if env.Faults != nil {
		env.Faults.Subscribe(rt.onFault)
	}
	env.AddSession()
	if err := rt.startGeneration(0); err != nil {
		return nil, err
	}
	return rt, nil
}

// startGeneration resets every node to the given generation.
func (rt *runtime) startGeneration(gen int) error {
	rt.currentGen = gen
	rt.genStart = rt.eng.Now()
	rt.emit(trace.EventGeneration, rt.sg.Src, -1)
	rt.rng.Read(rt.genData)
	g, err := coding.NewGeneration(gen, rt.cfg.Coding, rt.genData)
	if err != nil {
		return err
	}
	rt.gen = g
	for _, n := range rt.nodes {
		if err := n.reset(g); err != nil {
			return err
		}
	}
	return nil
}

// generationDecoded fires when the destination completes a generation: the
// ACK travels back over the best path and the source moves on (Sec. 3.1);
// intermediate nodes flush the expired generation (Sec. 4).
func (rt *runtime) generationDecoded() {
	rt.decoded++
	rt.latencies = append(rt.latencies, rt.eng.Now()-rt.genStart)
	rt.emitDeferred(trace.EventDecode, rt.sg.Dst, -1)
	if rt.cfg.MaxGenerations > 0 && rt.decoded >= rt.cfg.MaxGenerations {
		rt.done = true
		rt.finishedAt = rt.eng.Now()
		// SessionDone touches the Env's shared finished counter and may
		// Stop the engine; both must happen in serial engine context.
		rt.eng.Schedule(0, rt.env.SessionDone)
		return
	}
	gen := rt.currentGen + 1
	rt.eng.Schedule(rt.ackDelay, func() {
		if err := rt.startGeneration(gen); err != nil {
			// Parameters were validated up front; a failure here is a bug.
			panic(fmt.Sprintf("protocol: generation restart: %v", err))
		}
		for _, n := range rt.nodes {
			if !n.isDst && !n.excluded {
				rt.mac.Wake(n.macID)
			}
		}
	})
}

// Start implements Session: wake the source.
func (rt *runtime) Start() { rt.mac.Wake(rt.nodes[rt.sg.Src].macID) }

// run drives an exclusive session to completion.
func (rt *runtime) run() (*Stats, error) {
	rt.Start()
	rt.eng.Run(rt.cfg.Duration)
	st := rt.Finish(rt.cfg.Duration)
	if rt.failure != nil {
		return nil, rt.failure
	}
	return st, nil
}

// Err implements Session.
func (rt *runtime) Err() error { return rt.failure }

// Finish implements Session: pooled resources (elimination slabs, queued
// packets) return to the arena so back-to-back sessions — benchmark
// iterations, parameter sweeps — recycle instead of reallocating, and the
// session's statistics are computed.
func (rt *runtime) Finish(until float64) *Stats {
	for _, n := range rt.nodes {
		n.shutdown()
	}

	duration := until
	if rt.done && rt.finishedAt > 0 {
		duration = rt.finishedAt
	}
	st := &Stats{
		Policy:             rt.pol.Name,
		GenerationsDecoded: rt.decoded,
		Duration:           duration,
		InnovativeReceived: rt.innovative,
		TotalReceived:      rt.received,
		Gamma:              rt.pol.Gamma,
		RateIterations:     rt.pol.RateIterations,
		SelectedNodes:      rt.sg.Size(),
	}
	if duration > 0 {
		st.Throughput = float64(rt.decoded) * float64(rt.genBytes) / duration
	}
	st.GenerationLatencies = append([]float64(nil), rt.latencies...)

	if rt.shared {
		rt.sharedUtilities(st)
		if rt.obs != nil {
			st.Report = rt.buildReport(st)
		}
		return st
	}

	// Queue statistics over involved nodes (Fig. 3). The destination never
	// transmits, so it cannot be involved — skipping it keeps the utility
	// numerator consistent with the non-destination denominator below.
	st.QueuePerNode = make([]float64, rt.sg.Size())
	involved := 0
	queueSum := 0.0
	for i := range rt.nodes {
		st.QueuePerNode[i] = rt.mac.TimeAvgQueue(i)
		if i == rt.sg.Dst {
			continue
		}
		if rt.mac.FramesSent(i) > 0 {
			involved++
			queueSum += st.QueuePerNode[i]
		}
	}
	if involved > 0 {
		st.MeanQueue = queueSum / float64(involved)
	}

	// Node utility (Fig. 4): transmitting nodes over selected non-dst nodes.
	nonDst := rt.sg.Size() - 1
	if nonDst > 0 {
		st.NodeUtility = float64(involved) / float64(nonDst)
	}

	// Path utility (Fig. 4): paths whose links all delivered something.
	used := graph.New(rt.sg.Size())
	for _, l := range rt.sg.Links {
		if rt.mac.Delivered(l.From, l.To) > 0 {
			used.AddEdge(l.From, l.To, 1)
		}
	}
	total := rt.sg.PathCount()
	if total > 0 {
		st.PathUtility = graph.CountPaths(used, rt.sg.Src, rt.sg.Dst) / total
	}
	if rt.obs != nil {
		st.Report = rt.buildReport(st)
	}
	return st
}

// sharedUtilities attributes node and path utility to this session from its
// own counters: on a shared MAC the per-node frame and delivery statistics
// aggregate all sessions, so each session counts the frames its own ports
// handed to the MAC and the deliveries its components accepted. Queue
// statistics stay zero — a physical node's queue is a property of the shared
// channel, not of one session.
func (rt *runtime) sharedUtilities(st *Stats) {
	// The destination is excluded from the denominator, so a (hypothetically)
	// transmitting destination must not count as involved either.
	involved := 0
	for _, n := range rt.nodes {
		if !n.isDst && n.frames > 0 {
			involved++
		}
	}
	if nonDst := rt.sg.Size() - 1; nonDst > 0 {
		st.NodeUtility = float64(involved) / float64(nonDst)
	}
	used := graph.New(rt.sg.Size())
	for li, l := range rt.sg.Links {
		if rt.linkRx[li] > 0 {
			used.AddEdge(l.From, l.To, 1)
		}
	}
	if total := rt.sg.PathCount(); total > 0 {
		st.PathUtility = graph.CountPaths(used, rt.sg.Src, rt.sg.Dst) / total
	}
}

// FramesSent returns how many frames this session's port at local node i
// handed to the MAC — the per-session share of the physical node's traffic.
func (rt *runtime) FramesSent(i int) int64 { return rt.nodes[i].frames }

// node binds one selected forwarder's per-role component to the medium: a
// sim.Transmitter port feeding coded packets to the MAC and a sim.Receiver
// port absorbing them. Exactly one role is armed per generation — the source
// encoder (enc), the re-encoding forwarder (rec) or the destination decoder
// (dec) — and the port methods dispatch to that role's logic.
type node struct {
	rt         *runtime
	local      int
	macID      int // node address on the Env's medium (== local when exclusive)
	isSrc      bool
	isDst      bool
	excluded   bool
	txAttached bool // a transmitter port exists at the MAC for this node

	credit  float64
	frames  int64            // frames this session's port put on the air here
	outq    []*coding.Packet // pre-generated packets awaiting transmission
	enc     coding.Source    // source only (scheme-selected via NewSource)
	rec     coding.Relay     // forwarders (Recoder or ForwardBuffer per scheme)
	dec     *coding.Decoder  // destination
	txFrame sim.Frame        // reused: at most one frame of n is in flight
	wake    wakeEvent        // deferred MAC wake-up, coalesced per bucket
}

// wakeEvent defers a MAC.Wake from the node's receive path to serial engine
// context. Waking the MAC mutates shared channel state (and can draw from
// the MAC's RNG), which a session's Receive callback must not do while
// other sessions' callbacks run concurrently in the same parallel round.
// The queued flag coalesces multiple wake-ups of one node in one bucket —
// Wake is idempotent, so a single deferred call is equivalent.
type wakeEvent struct {
	n      *node
	queued bool
}

// Fire implements sim.Handler.
func (w *wakeEvent) Fire() {
	w.queued = false
	w.n.rt.mac.Wake(w.n.macID)
}

// deferWake schedules the node's coalesced wake-up at delay zero.
func (n *node) deferWake() {
	if n.wake.queued {
		return
	}
	n.wake.queued = true
	n.rt.eng.ScheduleHandler(0, &n.wake)
}

// reset re-arms the node for a new generation; pending credit from the
// expired generation is discarded with it, and the expired generation's
// pooled resources go back to the arena.
func (n *node) reset(g *coding.Generation) error {
	n.credit = 0
	n.shutdown() // expired generation's packets and slabs return to the arena (Sec. 4)
	cfg := n.rt.cfg
	switch {
	case n.isSrc:
		// A fresh Source per generation also resets the emission budget.
		enc, err := coding.NewSource(cfg.Scheme, g, n.rt.rng, cfg.Redundancy)
		if err != nil {
			return err
		}
		n.enc = enc
	case n.isDst:
		dec, err := coding.NewDecoder(g.ID, cfg.Coding)
		if err != nil {
			return err
		}
		n.dec = dec
	default:
		// The scheme decides whether this relay re-encodes (Recoder) or
		// forwards innovative packets verbatim (ForwardBuffer).
		rec, err := coding.NewRelay(cfg.Scheme, g.ID, cfg.Coding, n.rt.rng)
		if err != nil {
			return err
		}
		n.rec = rec
	}
	return nil
}

// shutdown releases the node's pooled state: queued packets and the
// decoder/recoder elimination slabs.
func (n *node) shutdown() {
	for _, pkt := range n.outq {
		pkt.Release()
	}
	n.outq = n.outq[:0]
	if n.dec != nil {
		n.dec.Close()
		n.dec = nil
	}
	if n.rec != nil {
		n.rec.Close()
		n.rec = nil
	}
}

// Dequeue implements sim.Transmitter (the component's TX port).
func (n *node) Dequeue() *sim.Frame {
	rt := n.rt
	if rt.done || n.isDst || n.excluded {
		return nil
	}
	if n.isSrc {
		return n.sourceDequeue()
	}
	return n.forwarderDequeue()
}

// sourceDequeue is the source-encoder component: emit a fresh random
// combination whenever the CBR workload has produced the bytes for it.
func (n *node) sourceDequeue() *sim.Frame {
	if n.enc == nil || !n.cbrAvailable() {
		return nil // enc is nil while the source is crashed
	}
	pkt := n.enc.Next()
	if pkt == nil {
		// Emission budget exhausted (Config.Redundancy): the source sits
		// out the rest of the generation; turnover arms a fresh Source.
		return nil
	}
	return n.frame(pkt)
}

// forwarderDequeue is the forwarder component's TX side. OMNC-style
// forwarders re-encode a fresh packet at transmission time, so the stream
// always spans the forwarder's current buffer ("all outgoing packets are
// generated by re-encoding existing innovative packets", Sec. 4).
// Credit-driven forwarders (MORE, oldMORE) transmit the queue of packets
// pre-generated when credit arrived — under congestion those age in the
// queue and go stale, which is exactly the failure mode Fig. 3 attributes
// to MORE.
func (n *node) forwarderDequeue() *sim.Frame {
	if n.rec == nil {
		return nil // crashed forwarder: volatile state is gone
	}
	if n.rt.pol.SendWhenNonEmpty {
		if pkt := n.rec.Next(); pkt != nil {
			return n.frame(pkt)
		}
		return nil
	}
	if len(n.outq) == 0 {
		return nil
	}
	pkt := n.outq[0]
	n.outq = n.outq[1:]
	return n.frame(pkt)
}

// cbrAvailable reports whether the CBR workload has produced the bytes of
// the current generation yet; if not, it arms a wake-up for when it will.
func (n *node) cbrAvailable() bool {
	rt := n.rt
	if rt.cfg.CBRRate <= 0 {
		return true
	}
	ready := float64(rt.currentGen+1) * float64(rt.genBytes) / rt.cfg.CBRRate
	if rt.eng.Now() >= ready {
		return true
	}
	macID := n.macID
	rt.eng.Schedule(ready-rt.eng.Now(), func() { rt.mac.Wake(macID) })
	return false
}

// frame wraps a coded packet for the MAC, transferring the caller's packet
// reference to it (the MAC releases on frame retirement). A node has at most
// one frame in flight — the MAC dequeues the next only after completing the
// previous — so the frame struct is reused across transmissions.
func (n *node) frame(pkt *coding.Packet) *sim.Frame {
	n.rt.emit(trace.EventTx, n.local, -1)
	n.frames++
	pkt.Session = n.rt.id
	n.txFrame = sim.Frame{Size: n.rt.cfg.AirPacketSize, Broadcast: true, Payload: pkt}
	return &n.txFrame
}

// QueueLen implements sim.Transmitter: the broadcast queue holds the
// pre-generated coded packets awaiting transmission (Fig. 3's metric).
// OMNC-style nodes and sources code on demand, so their queue stays empty.
func (n *node) QueueLen() int {
	if n.rt.done {
		return 0
	}
	return len(n.outq)
}

// earnCredit converts accumulated credit into pre-generated re-encoded
// packets on the broadcast queue.
func (n *node) earnCredit() {
	for n.credit >= 1 {
		n.credit--
		pkt := n.rec.Next()
		if pkt == nil {
			return
		}
		n.outq = append(n.outq, pkt)
	}
	n.deferWake()
}

// Receive implements sim.Receiver (the component's RX port): filter the
// shared channel down to this session's downstream traffic, then dispatch
// to the destination-decoder or forwarder role.
func (n *node) Receive(from int, payload interface{}) {
	rt := n.rt
	pkt, ok := payload.(*coding.Packet)
	if !ok || rt.done {
		return
	}
	if pkt.Session != rt.id {
		return // another session's packet on the shared channel
	}
	fromLocal := from
	if rt.shared {
		// On the shared channel `from` is a network ID; an exclusive MAC
		// already speaks local indices (localOf may still exist for faults).
		fl, ok := rt.localOf[from]
		if !ok {
			return // transmitter is not in this session's subgraph
		}
		fromLocal = fl
	}
	if pkt.Generation != rt.currentGen {
		return // expired generation: discard (Sec. 4)
	}
	// Packets only flow downstream: a node ignores transmissions from nodes
	// that are not farther from the destination than itself.
	if rt.sg.ETXDist[fromLocal] <= rt.sg.ETXDist[n.local] {
		return
	}
	if rt.linkRx != nil {
		if li, ok := rt.linkIdx[[2]int{fromLocal, n.local}]; ok {
			rt.linkRx[li]++
		}
	}
	rt.received++
	rt.emitDeferred(trace.EventRx, n.local, fromLocal)
	if rt.obs != nil {
		rt.obs.rx[n.local]++
	}
	if n.isDst {
		n.destReceive(fromLocal, pkt)
		return
	}
	n.forwarderReceive(fromLocal, pkt)
}

// destReceive is the destination-decoder component: progressive Gauss-Jordan
// absorption, generation turnover on full rank.
func (n *node) destReceive(fromLocal int, pkt *coding.Packet) {
	rt := n.rt
	if n.dec == nil {
		return // crashed destination: nothing to absorb into
	}
	// Add copies the packet into the decoder's preallocated rows, so the
	// MAC's delivery reference is enough: no clone, no ownership change.
	innovative, err := n.dec.Add(pkt)
	if err != nil {
		return
	}
	if innovative {
		rt.innovative++
		rt.emitDeferred(trace.EventInnovative, n.local, fromLocal)
		if rt.obs != nil {
			rt.obs.innov[n.local]++
			rt.obs.rank = append(rt.obs.rank, report.RankPoint{
				Time:       rt.eng.Now(),
				Generation: rt.currentGen,
				Rank:       n.dec.Rank(),
			})
		}
		if n.dec.Decoded() {
			rt.generationDecoded()
		}
	} else {
		rt.emitDeferred(trace.EventDiscard, n.local, fromLocal)
		if rt.obs != nil {
			rt.obs.discard[n.local]++
		}
	}
}

// forwarderReceive is the forwarder component's RX side: buffer innovative
// packets and convert receptions into transmissions under the policy's
// credit rules.
func (n *node) forwarderReceive(fromLocal int, pkt *coding.Packet) {
	rt := n.rt
	if n.rec == nil {
		return // crashed forwarder: volatile state is gone
	}
	// Full-rank nodes no longer accept packets (all incoming packets are
	// necessarily non-innovative, Sec. 4) — but MORE-style forwarders still
	// earn TX credit from hearing upstream transmissions, otherwise a filled
	// relay would fall silent mid-generation.
	if n.rec.Full() {
		rt.emitDeferred(trace.EventDiscard, n.local, fromLocal)
		if rt.obs != nil {
			rt.obs.discard[n.local]++
		}
		if rt.pol.CreditOnAnyReception {
			n.credit += rt.pol.Credit[n.local]
			n.earnCredit()
		} else if rt.pol.SendWhenNonEmpty {
			n.deferWake()
		}
		return
	}
	innovative, err := n.rec.Add(pkt)
	if err != nil {
		return
	}
	if innovative {
		rt.innovative++
		rt.emitDeferred(trace.EventInnovative, n.local, fromLocal)
		if rt.obs != nil {
			rt.obs.innov[n.local]++
		}
	} else {
		rt.emitDeferred(trace.EventDiscard, n.local, fromLocal)
		if rt.obs != nil {
			rt.obs.discard[n.local]++
		}
	}
	if rt.pol.SendWhenNonEmpty {
		n.deferWake()
		return
	}
	if innovative || rt.pol.CreditOnAnyReception {
		n.credit += rt.pol.Credit[n.local]
		n.earnCredit()
	}
}
