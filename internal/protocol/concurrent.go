package protocol

import (
	"fmt"
	"math"
	"math/rand"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/sim"
	"omnc/internal/topology"
)

// Endpoints identifies one session of a multiple-unicast run.
type Endpoints struct {
	Src, Dst int
}

// ConcurrentStats aggregates a multiple-unicast emulation.
type ConcurrentStats struct {
	// PerSession holds each session's statistics, index-aligned with the
	// input endpoints.
	PerSession []*Stats
	// AggregateThroughput sums the per-session throughputs.
	AggregateThroughput float64
}

// RunConcurrentOMNC emulates several OMNC unicast sessions sharing the
// channel simultaneously — the multiple-unicast scenario the paper's
// conclusion points to. Rates come from the joint controller
// (core.MultiRateController), whose shared congestion prices divide each
// neighbourhood's capacity across sessions; the emulation then runs all
// sessions on one MAC over the full network, so they really do contend.
func RunConcurrentOMNC(net *topology.Network, sessions []Endpoints, opts core.Options, cfg Config) (*ConcurrentStats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Coding.Validate(); err != nil {
		return nil, err
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("protocol: no sessions")
	}
	if opts.Capacity <= 0 {
		opts.Capacity = cfg.Capacity
	}

	// Joint rate allocation.
	subgraphs := make([]*core.Subgraph, len(sessions))
	multi := make([]core.MultiSession, len(sessions))
	for i, s := range sessions {
		sg, err := core.SelectNodes(net, s.Src, s.Dst)
		if err != nil {
			return nil, fmt.Errorf("protocol: session %d: %w", i, err)
		}
		subgraphs[i] = sg
		multi[i] = core.MultiSession{Subgraph: sg}
	}
	mc, err := core.NewMultiRateController(multi, opts)
	if err != nil {
		return nil, err
	}
	joint, err := mc.Run()
	if err != nil {
		return nil, err
	}

	// One engine + MAC over the whole network; session nodes multiplex.
	eng := sim.NewEngine()
	mode := cfg.MAC
	utilization := 1.0
	if mode == sim.ModeCSMA {
		utilization = CSMAUtilization
	}
	mac, err := sim.NewMAC(eng, net, sim.Config{
		Capacity:            cfg.Capacity,
		Mode:                mode,
		Seed:                cfg.Seed,
		QueueSampleInterval: cfg.QueueSampleInterval,
	})
	if err != nil {
		return nil, err
	}

	runs := make([]*sessionRun, len(sessions))
	muxes := make(map[int]*muxNode)
	mux := func(netID int) *muxNode {
		m, ok := muxes[netID]
		if !ok {
			m = &muxNode{}
			muxes[netID] = m
		}
		return m
	}
	for i := range sessions {
		rates := joint.PerSession[i].SupportingRates(subgraphs[i])
		caps, _ := core.RescaleFeasible(subgraphs[i], rates, utilization*opts.Capacity)
		sr, err := newSessionRun(uint32(i), net, subgraphs[i], caps, joint.PerSession[i].Gamma, cfg, eng, mac)
		if err != nil {
			return nil, err
		}
		runs[i] = sr
		for local, id := range subgraphs[i].Nodes {
			mux(id).attach(sr, local)
		}
	}
	// Register the multiplexers: a node transmits if it forwards for any
	// session; it receives if it is a non-source in any session. Its rate
	// cap is the sum of its per-session allocations (the joint controller's
	// aggregate constraint keeps the sum feasible).
	for id, m := range muxes {
		if capSum := m.capSum(); capSum > 0 {
			mac.RegisterTransmitter(id, m, capSum)
		}
		if m.receives() {
			mac.RegisterReceiver(id, m)
		}
	}

	for _, sr := range runs {
		sr.wakeSource()
	}
	eng.Run(cfg.Duration)

	out := &ConcurrentStats{PerSession: make([]*Stats, len(sessions))}
	for i, sr := range runs {
		st := sr.stats(cfg.Duration)
		out.PerSession[i] = st
		out.AggregateThroughput += st.Throughput
	}
	return out, nil
}

// sessionRun is one session's state inside a concurrent emulation: a slim
// sibling of the single-session runtime operating in network indices.
type sessionRun struct {
	id    uint32
	net   *topology.Network
	sg    *core.Subgraph
	caps  []float64
	gamma float64
	cfg   Config
	eng   *sim.Engine
	mac   *sim.MAC
	rng   *rand.Rand

	localOf map[int]int // network ID -> local index

	currentGen int
	decoded    int
	genBytes   int
	ackDelay   float64

	enc  *coding.Encoder
	recs []*coding.Recoder // per local node (nil for src/dst)
	dec  *coding.Decoder
}

func newSessionRun(id uint32, net *topology.Network, sg *core.Subgraph, caps []float64, gamma float64,
	cfg Config, eng *sim.Engine, mac *sim.MAC) (*sessionRun, error) {
	nominalBlock := cfg.AirPacketSize - cfg.Coding.GenerationSize
	if nominalBlock <= 0 {
		return nil, fmt.Errorf("protocol: air packet size %d cannot carry %d coefficients",
			cfg.AirPacketSize, cfg.Coding.GenerationSize)
	}
	sr := &sessionRun{
		id:       id,
		net:      net,
		sg:       sg,
		caps:     caps,
		gamma:    gamma,
		cfg:      cfg,
		eng:      eng,
		mac:      mac,
		rng:      rand.New(rand.NewSource(cfg.Seed + 31*int64(id) + 1)),
		localOf:  make(map[int]int, sg.Size()),
		genBytes: cfg.Coding.GenerationSize * nominalBlock,
		ackDelay: ackLatency(sg, cfg),
	}
	for local, nid := range sg.Nodes {
		sr.localOf[nid] = local
	}
	return sr, sr.startGeneration(0)
}

func (sr *sessionRun) startGeneration(gen int) error {
	sr.currentGen = gen
	data := make([]byte, sr.cfg.Coding.GenerationSize*sr.cfg.Coding.BlockSize)
	sr.rng.Read(data)
	g, err := coding.NewGeneration(gen, sr.cfg.Coding, data)
	if err != nil {
		return err
	}
	sr.enc = coding.NewEncoder(g, sr.rng)
	sr.recs = make([]*coding.Recoder, sr.sg.Size())
	for local := range sr.sg.Nodes {
		if local == sr.sg.Src || local == sr.sg.Dst {
			continue
		}
		rec, err := coding.NewRecoder(gen, sr.cfg.Coding, sr.rng)
		if err != nil {
			return err
		}
		sr.recs[local] = rec
	}
	dec, err := coding.NewDecoder(gen, sr.cfg.Coding)
	if err != nil {
		return err
	}
	sr.dec = dec
	return nil
}

func (sr *sessionRun) wakeSource() {
	sr.mac.Wake(sr.sg.Nodes[sr.sg.Src])
}

// dequeue produces the session's next frame from the given local node, or
// nil.
func (sr *sessionRun) dequeue(local int) *sim.Frame {
	if local == sr.sg.Dst {
		return nil
	}
	var pkt *coding.Packet
	if local == sr.sg.Src {
		if !sr.cbrAvailable() {
			return nil
		}
		pkt = sr.enc.Packet()
	} else {
		rec := sr.recs[local]
		if rec == nil {
			return nil
		}
		pkt = rec.Packet()
		if pkt == nil {
			return nil
		}
	}
	return &sim.Frame{
		Size:      sr.cfg.AirPacketSize,
		Broadcast: true,
		Payload:   sessionPayload{session: sr.id, pkt: pkt},
	}
}

func (sr *sessionRun) cbrAvailable() bool {
	if sr.cfg.CBRRate <= 0 {
		return true
	}
	ready := float64(sr.currentGen+1) * float64(sr.genBytes) / sr.cfg.CBRRate
	if sr.eng.Now() >= ready {
		return true
	}
	src := sr.sg.Nodes[sr.sg.Src]
	sr.eng.Schedule(ready-sr.eng.Now(), func() { sr.mac.Wake(src) })
	return false
}

// receive handles a session packet at the given local node.
func (sr *sessionRun) receive(fromNet int, local int, pkt *coding.Packet) {
	if pkt.Generation != sr.currentGen {
		return
	}
	fromLocal, ok := sr.localOf[fromNet]
	if !ok || sr.sg.ETXDist[fromLocal] <= sr.sg.ETXDist[local] {
		return // not a downstream delivery for this session
	}
	if local == sr.sg.Dst {
		innovative, err := sr.dec.Add(pkt.Clone())
		if err != nil || !innovative {
			return
		}
		if sr.dec.Decoded() {
			sr.generationDecoded()
		}
		return
	}
	rec := sr.recs[local]
	if rec == nil || rec.Full() {
		return
	}
	if innovative, err := rec.Add(pkt.Clone()); err == nil && innovative {
		sr.mac.Wake(sr.sg.Nodes[local])
	}
}

func (sr *sessionRun) generationDecoded() {
	sr.decoded++
	gen := sr.currentGen + 1
	sr.eng.Schedule(sr.ackDelay, func() {
		if err := sr.startGeneration(gen); err != nil {
			panic(fmt.Sprintf("protocol: concurrent generation restart: %v", err))
		}
		for local, nid := range sr.sg.Nodes {
			if local != sr.sg.Dst {
				sr.mac.Wake(nid)
			}
		}
	})
}

func (sr *sessionRun) stats(duration float64) *Stats {
	st := &Stats{
		Policy:             "omnc-multi",
		GenerationsDecoded: sr.decoded,
		Duration:           duration,
		Gamma:              sr.gamma,
		SelectedNodes:      sr.sg.Size(),
	}
	if duration > 0 {
		st.Throughput = float64(sr.decoded) * float64(sr.genBytes) / duration
	}
	return st
}

// sessionPayload tags a coded packet with its session for demultiplexing.
type sessionPayload struct {
	session uint32
	pkt     *coding.Packet
}

// muxNode multiplexes one physical node's roles across sessions: it
// round-robins transmissions between the sessions it forwards for and
// dispatches receptions by session tag.
type muxNode struct {
	parts []muxPart
	next  int
}

type muxPart struct {
	run   *sessionRun
	local int
}

func (m *muxNode) attach(sr *sessionRun, local int) {
	m.parts = append(m.parts, muxPart{run: sr, local: local})
}

// capSum returns the node's aggregate transmission-rate budget.
func (m *muxNode) capSum() float64 {
	sum := 0.0
	for _, p := range m.parts {
		if p.local == p.run.sg.Dst {
			continue
		}
		c := p.run.caps[p.local]
		if math.IsInf(c, 1) {
			return math.Inf(1)
		}
		sum += c
	}
	return sum
}

// receives reports whether the node is a receiver in any session.
func (m *muxNode) receives() bool {
	for _, p := range m.parts {
		if p.local != p.run.sg.Src {
			return true
		}
	}
	return false
}

// Dequeue implements sim.Transmitter: round-robin across sessions.
func (m *muxNode) Dequeue() *sim.Frame {
	for i := 0; i < len(m.parts); i++ {
		p := m.parts[(m.next+i)%len(m.parts)]
		if f := p.run.dequeue(p.local); f != nil {
			m.next = (m.next + i + 1) % len(m.parts)
			return f
		}
	}
	return nil
}

// QueueLen implements sim.Transmitter; on-demand coding keeps it at zero.
func (m *muxNode) QueueLen() int { return 0 }

// Receive implements sim.Receiver: dispatch by session tag.
func (m *muxNode) Receive(from int, payload interface{}) {
	sp, ok := payload.(sessionPayload)
	if !ok {
		return
	}
	for _, p := range m.parts {
		if p.run.id == sp.session && p.local != p.run.sg.Src {
			p.run.receive(from, p.local, sp.pkt)
			return
		}
	}
}
