package protocol

import (
	"testing"

	"omnc/internal/core"
	"omnc/internal/topology"
)

func TestPerturbQualityPreservesStructure(t *testing.T) {
	nw, err := topology.Generate(topology.Config{Nodes: 60, Density: 6, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	p, err := nw.PerturbQuality(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := 0; i < nw.Size(); i++ {
		if len(p.Neighbors(i)) != len(nw.Neighbors(i)) {
			t.Fatal("perturbation must not change the neighbour geometry")
		}
		for _, j := range nw.Neighbors(i) {
			q := p.Prob(i, j)
			if q <= 0 || q > 1 {
				t.Fatalf("perturbed prob(%d,%d) = %v", i, j, q)
			}
			if q != p.Prob(j, i) {
				t.Fatal("perturbation must preserve symmetry")
			}
			if q != nw.Prob(i, j) {
				changed = true
			}
			// Bounded drift: within the jitter envelope (plus clamping).
			if ratio := q / nw.Prob(i, j); ratio < 0.69 || ratio > 1.31 {
				if q != 1 && q != 0.01 { // clamped values may exceed the envelope
					t.Fatalf("drift ratio %v outside +/-30%%", ratio)
				}
			}
		}
	}
	if !changed {
		t.Fatal("perturbation changed nothing")
	}
	// The original is untouched.
	if nw.Prob(0, nwFirstNeighbor(t, nw, 0)) != nw.Prob(0, nwFirstNeighbor(t, nw, 0)) {
		t.Fatal("original mutated")
	}
	if _, err := nw.PerturbQuality(1, 1.5); err == nil {
		t.Fatal("jitter >= 1 must fail")
	}
}

func nwFirstNeighbor(t *testing.T, nw *topology.Network, i int) int {
	t.Helper()
	ns := nw.Neighbors(i)
	if len(ns) == 0 {
		t.Skip("node has no neighbours")
	}
	return ns[0]
}

func TestWithoutNodesCutsLinks(t *testing.T) {
	nw := diamond(t)
	cut, err := nw.WithoutNodes(1)
	if err != nil {
		t.Fatal(err)
	}
	if cut.InRange(0, 1) || cut.InRange(1, 3) {
		t.Fatal("failed node still has links")
	}
	if !cut.InRange(0, 2) || !cut.InRange(2, 3) {
		t.Fatal("surviving links removed")
	}
	if cut.Size() != nw.Size() {
		t.Fatal("node indices must stay stable")
	}
	if _, err := nw.WithoutNodes(99); err == nil {
		t.Fatal("out-of-range node must fail")
	}
}

func TestRunWithDriftSingleEpochMatchesPlainRun(t *testing.T) {
	nw := diamond(t)
	cfg := fastConfig(61)
	plain, err := Run(nw, 0, 3, OMNC(core.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := RunWithDrift(nw, 0, 3, OMNC(core.Options{}), cfg, DriftConfig{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.PerEpoch) != 1 || ds.PerEpoch[0] == nil {
		t.Fatalf("epochs = %+v", ds.PerEpoch)
	}
	if ds.Throughput != plain.Throughput {
		t.Fatalf("single-epoch drift run (%v) must equal plain run (%v)",
			ds.Throughput, plain.Throughput)
	}
}

func TestRunWithDriftReinitOverheadCostsThroughput(t *testing.T) {
	nw := diamond(t)
	cfg := fastConfig(62)
	cfg.Duration = 240
	free, err := RunWithDrift(nw, 0, 3, OMNC(core.Options{}), cfg,
		DriftConfig{Epochs: 4, Jitter: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	taxed, err := RunWithDrift(nw, 0, 3, OMNC(core.Options{}), cfg,
		DriftConfig{Epochs: 4, Jitter: 0.2, ReinitOverhead: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if taxed.Throughput >= free.Throughput {
		t.Fatalf("re-initiation overhead must cost throughput: %v >= %v",
			taxed.Throughput, free.Throughput)
	}
	if free.Reinits != 4 || taxed.Reinits != 4 {
		t.Fatalf("reinits = %d, %d", free.Reinits, taxed.Reinits)
	}
}

func TestRunWithDriftFailuresCanDisconnect(t *testing.T) {
	// The diamond has exactly two relays; killing one per epoch
	// disconnects the pair by the third epoch.
	nw := diamond(t)
	cfg := fastConfig(63)
	cfg.Duration = 300
	ds, err := RunWithDrift(nw, 0, 3, OMNC(core.Options{}), cfg,
		DriftConfig{Epochs: 3, FailuresPerEpoch: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.FailedNodes) == 0 {
		t.Fatal("no failures injected")
	}
	if ds.UnreachableEpochs == 0 {
		t.Fatal("killing both relays must eventually disconnect the diamond")
	}
	if ds.PerEpoch[0] == nil {
		t.Fatal("first epoch runs before any failure")
	}
}

func TestRunWithDriftValidation(t *testing.T) {
	nw := diamond(t)
	cfg := fastConfig(64)
	if _, err := RunWithDrift(nw, 0, 3, OMNC(core.Options{}), cfg,
		DriftConfig{Epochs: 2, Jitter: 1.2}); err == nil {
		t.Fatal("bad jitter must fail")
	}
	if _, err := RunWithDrift(nw, 0, 3, OMNC(core.Options{}), cfg,
		DriftConfig{Epochs: 2, ReinitOverhead: cfg.Duration}); err == nil {
		t.Fatal("overhead exceeding epoch must fail")
	}
}

func TestRunWithDriftSurvivesQualityDrift(t *testing.T) {
	// Drift without failures: the session must keep decoding in every
	// epoch (OMNC re-optimizes for the new qualities each time).
	nw, err := topology.Generate(topology.Config{Nodes: 80, Density: 6, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := -1, -1
	for d := 1; d < nw.Size(); d++ {
		if sg, err := core.SelectNodes(nw, 0, d); err == nil && sg.Size() >= 5 {
			src, dst = 0, d
			break
		}
	}
	if src < 0 {
		t.Skip("no usable session")
	}
	cfg := fastConfig(65)
	cfg.Duration = 360
	ds, err := RunWithDrift(nw, src, dst, OMNC(core.Options{}), cfg,
		DriftConfig{Epochs: 3, Jitter: 0.25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.UnreachableEpochs > 0 {
		t.Fatal("pure quality drift must not disconnect the session")
	}
	for i, st := range ds.PerEpoch {
		if st == nil || st.GenerationsDecoded == 0 {
			t.Fatalf("epoch %d decoded nothing", i)
		}
	}
	if ds.Throughput <= 0 {
		t.Fatal("aggregate throughput must be positive")
	}
}
