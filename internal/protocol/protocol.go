// Package protocol implements the end-to-end coded unicast runtime of
// Sec. 3.1 and Sec. 4 of the paper — generations, re-encoding forwarders,
// progressive decoding at the destination, ACK-driven generation turnover
// and queue management — on top of the internal/sim MAC model. The OMNC
// protocol proper is the runtime driven by the rate allocation of
// internal/core; the MORE and oldMORE baselines (internal/routing) reuse the
// same runtime with their own forwarding policies, which is also how the
// paper's testbed shares the coding modules between protocols ("Both
// protocols share the same encoding and decoding modules", Sec. 5).
package protocol

import (
	"fmt"
	"math"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/faults"
	"omnc/internal/graph"
	"omnc/internal/report"
	"omnc/internal/sim"
	"omnc/internal/topology"
	"omnc/internal/trace"
)

// Config parameterizes one emulated unicast session.
type Config struct {
	// Coding are the RLC parameters (the paper: 40 blocks of 1 KB).
	Coding coding.Params
	// Scheme selects the coding strategy: full-recoding RLNC (the zero
	// value, the paper's scheme), end-to-end RLNC (relays forward
	// innovative packets verbatim), or source-only Reed-Solomon. See
	// coding.Scheme.
	Scheme coding.Scheme
	// Redundancy caps the source at ceil(Redundancy * GenerationSize)
	// coded packets per generation. 0 (the default) is rateless: the
	// source keeps emitting until the generation is acknowledged. Values
	// in (0, 1) are rejected by Validate.
	Redundancy float64
	// AirPacketSize overrides the on-air frame size in bytes; 0 means
	// Coding.PacketSize(). Experiments that shrink BlockSize for speed pass
	// the full-fidelity size here so air times stay faithful.
	AirPacketSize int
	// Capacity is the MAC channel capacity in bytes/second.
	Capacity float64
	// Duration is the emulated session length in seconds.
	Duration float64
	// CBRRate limits how fast source data becomes available (the paper's
	// UDP CBR workload at half capacity); 0 means an unbounded backlog.
	CBRRate float64
	// Seed drives losses and coding coefficients.
	Seed int64
	// QueueSampleInterval is the Fig. 3 queue sampling period; 0 disables.
	QueueSampleInterval float64
	// AckSize is the control-packet size used to model the uncoded ACK's
	// best-path trip back to the source (Sec. 3.1). Default 64 bytes.
	AckSize int
	// MaxGenerations stops the session after that many decoded
	// generations; 0 means run for the full Duration.
	MaxGenerations int
	// MAC selects the channel-access model (sim.ModeOracle by default; the
	// MAC-sensitivity ablation uses sim.ModeCSMA).
	MAC sim.Mode
	// Trace receives protocol events (transmissions, receptions,
	// innovation decisions, generation turnover) when non-nil.
	Trace trace.Recorder
	// Faults schedules node churn, link flaps and bursty-loss episodes on
	// the emulation (see internal/faults). Events address network node IDs.
	// Nil runs fault-free and is bit-identical to a build without the
	// feature.
	Faults *faults.Plan
	// Report enables the session's observability report (internal/report):
	// per-node counters, delivery matrix, MAC airtime, latency and queue
	// histograms, rank timeline and fault summary land in Stats.Report.
	// The hooks follow the fault-overlay contract — nil until enabled, no
	// extra RNG draws — so a run with Report false is bit-identical to a
	// build without the feature.
	Report bool
	// EngineWorkers selects the discrete-event engine driving the run: 0
	// (the default) runs the proven serial engine; N >= 1 runs the
	// conservative time-bucketed parallel engine with N workers, which
	// executes same-timestamp deliveries of different sessions
	// concurrently. Any value produces bit-identical SessionStats, traces
	// and Reports — the worker count only changes wall-clock time.
	EngineWorkers int
	// TimeQuantum, when positive, rounds MAC frame-completion times up to
	// this grid (sim.Config TimeQuantum). Concurrent transmitters then
	// complete in shared calendar buckets, which is what gives the parallel
	// engine multi-session rounds to run concurrently. A timing-model
	// parameter: results stay deterministic and engine-independent for any
	// fixed value but differ from the continuous-time default of 0.
	TimeQuantum float64
}

func (c Config) withDefaults() Config {
	if c.Coding.GenerationSize == 0 && c.Coding.BlockSize == 0 {
		c.Coding = coding.DefaultParams()
	}
	if c.AirPacketSize <= 0 {
		c.AirPacketSize = c.Coding.PacketSize()
	}
	if c.Capacity <= 0 {
		c.Capacity = 2e4
	}
	if c.Duration <= 0 {
		c.Duration = 60
	}
	if c.AckSize <= 0 {
		c.AckSize = 64
	}
	return c
}

// Validate checks the session configuration's coding parameters, scheme and
// redundancy factor. Scheme and redundancy failures are matchable with
// errors.Is against coding.ErrInvalidScheme and coding.ErrInvalidRedundancy,
// consistent with the other typed sentinels (ErrInvalidSession,
// topology.ErrInvalidPHY).
func (c Config) Validate() error {
	if err := c.Coding.Validate(); err != nil {
		return err
	}
	if !c.Scheme.Valid() {
		return fmt.Errorf("%w: %d", coding.ErrInvalidScheme, int(c.Scheme))
	}
	if c.Scheme == coding.SchemeRS && c.Coding.Field != coding.Field8 {
		return fmt.Errorf("%w: Reed-Solomon codes over GF(2^8) only", coding.ErrInvalidField)
	}
	return coding.ValidateRedundancy(c.Redundancy)
}

// Policy is a forwarding discipline over a selected subgraph: it fixes who
// transmits, how fast, and how reception converts into transmission credit.
// OMNC, MORE and oldMORE are all instances.
type Policy struct {
	// Name labels the policy in stats and logs.
	Name string
	// Caps[i] limits local node i's broadcast rate in bytes/second
	// (math.Inf(1) = contend freely). OMNC installs its optimized rate
	// vector here.
	Caps []float64
	// Credit[i] is added to node i's transmission credit per innovative
	// packet received. The source ignores credit (it is backlogged by the
	// CBR workload).
	Credit []float64
	// SendWhenNonEmpty makes a forwarder broadcast re-encoded packets at
	// its allotted rate whenever it holds at least one innovative packet,
	// regardless of credit — OMNC's discipline: "all outgoing packets are
	// generated by re-encoding existing innovative packets, at a rate
	// assigned by the rate control algorithm", and full-rank nodes
	// "continue re-encoding packets and broadcasting them ... at the
	// specified rate" until the generation is ACKed (Sec. 4). This is also
	// why constraint (5) reads x_ij <= b_i p_ij: a relay may transmit more
	// packets than it receives to out-run link losses.
	SendWhenNonEmpty bool
	// CreditOnAnyReception credits a forwarder for every packet heard from
	// upstream rather than only innovative ones — MORE's TX-credit rule.
	// OMNC credits innovative packets only (its flow conservation (2) is
	// justified by "OMNC generates a new packet only upon a newly coming
	// packet that is innovative").
	CreditOnAnyReception bool
	// Exclude marks nodes that never transmit (oldMORE's pruned
	// forwarders).
	Exclude []bool
	// Gamma and RateIterations carry optimizer metadata into Stats.
	Gamma          float64
	RateIterations int
}

// Builder produces a policy for a selected subgraph.
type Builder func(sg *core.Subgraph, cfg Config) (*Policy, error)

// Protocol packages a forwarding discipline together with the runtime that
// executes it, so every protocol — OMNC, the MORE/oldMORE baselines, uncoded
// ETX routing — runs through one entry point. The zero value is invalid; use
// NewProtocol or CustomProtocol.
type Protocol struct {
	name  string
	build Builder
	run   func(net *topology.Network, src, dst int, cfg Config) (*Stats, error)
	multi MultiBuilder
}

// NewProtocol wraps a policy builder as a Protocol executed by the shared
// coded runtime (node selection, generations, re-encoding forwarders,
// progressive decoding).
func NewProtocol(name string, build Builder) Protocol {
	return Protocol{name: name, build: build}
}

// CustomProtocol wraps a bespoke session runner — a protocol whose data path
// does not fit the coded runtime, like ETX store-and-forward — as a Protocol.
func CustomProtocol(name string, run func(net *topology.Network, src, dst int, cfg Config) (*Stats, error)) Protocol {
	return Protocol{name: name, run: run}
}

// Name returns the protocol's label.
func (p Protocol) Name() string { return p.name }

// WithMulti returns a copy of the protocol with a dedicated multi-session
// constructor. RunMulti uses it instead of the generic per-subgraph policy
// construction — OMNC installs its joint rate controller here, ETX its
// store-and-forward sessions.
func (p Protocol) WithMulti(mb MultiBuilder) Protocol {
	p.multi = mb
	return p
}

// sessions constructs the protocol's sessions of a multi-unicast run on the
// shared Env.
func (p Protocol) sessions(env *Env, net *topology.Network, specs []SessionSpec, cfg Config) ([]Session, error) {
	switch {
	case p.multi != nil:
		return p.multi(env, net, specs, cfg)
	case p.build != nil:
		return buildPolicySessions(env, net, specs, cfg, p.build)
	default:
		return nil, fmt.Errorf("protocol: zero Protocol value; use NewProtocol or CustomProtocol")
	}
}

// Run emulates one unicast session from src to dst under the protocol and
// returns its statistics.
func (p Protocol) Run(net *topology.Network, src, dst int, cfg Config) (*Stats, error) {
	switch {
	case p.run != nil:
		return p.run(net, src, dst, cfg)
	case p.build != nil:
		return Run(net, src, dst, p.build, cfg)
	default:
		return nil, fmt.Errorf("protocol: zero Protocol value; use NewProtocol or CustomProtocol")
	}
}

// Stats summarizes one emulated session.
type Stats struct {
	// Policy is the policy name.
	Policy string
	// Throughput is decoded bytes per second over the session.
	Throughput float64
	// GenerationsDecoded counts fully decoded generations.
	GenerationsDecoded int
	// Duration is the emulated time actually consumed.
	Duration float64
	// MeanQueue is the time-averaged broadcast queue length averaged over
	// the nodes involved in the transmission (Fig. 3's per-session point).
	MeanQueue float64
	// QueuePerNode is the time-averaged queue of every selected node.
	QueuePerNode []float64
	// NodeUtility is the fraction of selected forwarders (source included,
	// destination excluded) that actually transmitted (Fig. 4).
	NodeUtility float64
	// PathUtility is the fraction of available source-destination paths in
	// the forwarder DAG whose links all carried at least one delivered
	// packet (Fig. 4).
	PathUtility float64
	// GenerationLatencies are the per-generation completion times in
	// seconds (generation start to full decode at the destination) — the
	// delay dimension that progressive decoding improves (Sec. 4).
	GenerationLatencies []float64
	// InnovativeReceived / TotalReceived measure packet-stream redundancy.
	InnovativeReceived, TotalReceived int64
	// Gamma is the optimizer's predicted throughput (OMNC only).
	Gamma float64
	// RateIterations is the rate controller's iteration count (OMNC only).
	RateIterations int
	// SelectedNodes is the size of the forwarder subgraph.
	SelectedNodes int
	// Report is the session's structured observability report, non-nil only
	// when Config.Report was set.
	Report *report.Report
}

// subgraphMedium exposes a selected subgraph (plus the underlying network's
// probabilities) as a sim.Medium in local indices.
type subgraphMedium struct {
	net *topology.Network
	sg  *core.Subgraph
}

func (m *subgraphMedium) Size() int { return m.sg.Size() }

func (m *subgraphMedium) Prob(i, j int) float64 {
	return m.net.Prob(m.sg.Nodes[i], m.sg.Nodes[j])
}

func (m *subgraphMedium) Neighbors(i int) []int { return m.sg.Neighbors(i) }

// NewMedium exposes a selected subgraph as a sim.Medium in local indices;
// the baselines' runtimes (internal/routing) share it so every protocol
// sees identical channel conditions.
func NewMedium(net *topology.Network, sg *core.Subgraph) sim.Medium {
	return &subgraphMedium{net: net, sg: sg}
}

// Run emulates one unicast session from src to dst under the policy built
// by build, and returns its statistics.
func Run(net *topology.Network, src, dst int, build Builder, cfg Config) (*Stats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sg, err := core.SelectNodes(net, src, dst)
	if err != nil {
		return nil, err
	}
	pol, err := build(sg, cfg)
	if err != nil {
		return nil, err
	}
	if len(pol.Caps) != sg.Size() || len(pol.Credit) != sg.Size() {
		return nil, fmt.Errorf("protocol: policy %q sized for %d nodes, subgraph has %d",
			pol.Name, len(pol.Caps), sg.Size())
	}
	rt, err := newRuntime(net, sg, pol, cfg)
	if err != nil {
		return nil, err
	}
	// The builder doubles as the re-optimizer: on every topology epoch the
	// surviving subgraph is re-solved through it.
	rt.rebuild = build
	return rt.run()
}

// ackLatency estimates the uncoded ACK's best-path trip time: one reliable
// control packet per hop of the minimum-ETX path, each hop costing
// ETX * size/C expected air time.
func ackLatency(sg *core.Subgraph, cfg Config) float64 {
	costs := make([]float64, len(sg.Links))
	for i, l := range sg.Links {
		costs[i] = 1 / l.Prob
	}
	// The ACK travels dst -> src, but the ETX cost is symmetric over the
	// DAG links; use the forward path's ETX.
	_, etx, ok := graph.ShortestPath(sg.ForwardGraph(costs), sg.Src, sg.Dst)
	if !ok {
		return 0
	}
	return etx * float64(cfg.AckSize) / cfg.Capacity
}

// UncappedRates returns a rate-cap vector that lets every node contend
// freely (MORE and oldMORE have no rate control).
func UncappedRates(n int) []float64 {
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = math.Inf(1)
	}
	return caps
}
