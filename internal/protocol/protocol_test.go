package protocol

import (
	"testing"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/gf256"
	"omnc/internal/topology"
	"omnc/internal/trace"
)

// diamond is the two-relay topology of Sec. 3.2 (see core tests).
func diamond(t *testing.T) *topology.Network {
	t.Helper()
	nw, err := topology.NewExplicit([][]float64{
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func fastConfig(seed int64) Config {
	return Config{
		Coding:        coding.Params{GenerationSize: 8, BlockSize: 16, Strategy: gf256.StrategyAccel},
		AirPacketSize: 8 + 1024, // air-time fidelity of the paper's packets
		Capacity:      2e4,
		Duration:      120,
		Seed:          seed,
	}
}

func TestOMNCSessionDecodesOnDiamond(t *testing.T) {
	st, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy != "omnc" {
		t.Fatalf("policy = %q", st.Policy)
	}
	if st.GenerationsDecoded == 0 {
		t.Fatal("no generation decoded in 120 s")
	}
	if st.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
	if st.Gamma <= 0 || st.RateIterations <= 0 {
		t.Fatalf("optimizer metadata missing: gamma=%v iters=%d", st.Gamma, st.RateIterations)
	}
	if st.SelectedNodes != 4 {
		t.Fatalf("selected = %d", st.SelectedNodes)
	}
	// Throughput cannot exceed the LP bound (the paper observes emulated
	// throughput below the optimized value, Sec. 5). Allow a small margin
	// for the estimate itself.
	sg, _ := core.SelectNodes(diamond(t), 0, 3)
	lpRes, _ := core.SolveLP(sg, 2e4)
	if st.Throughput > 1.1*lpRes.Gamma {
		t.Fatalf("emulated throughput %v exceeds LP optimum %v", st.Throughput, lpRes.Gamma)
	}
}

func TestOMNCEmulatedBelowOptimized(t *testing.T) {
	// Sec. 5: "the actual emulated throughput of OMNC tends to be lower
	// than the optimized throughput computed by the sUnicast framework".
	st, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Throughput > st.Gamma*1.05 {
		t.Fatalf("emulated %v should not exceed optimized %v", st.Throughput, st.Gamma)
	}
}

func TestMaxGenerationsStopsEarly(t *testing.T) {
	cfg := fastConfig(3)
	cfg.MaxGenerations = 2
	st, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.GenerationsDecoded != 2 {
		t.Fatalf("decoded %d generations, want 2", st.GenerationsDecoded)
	}
	if st.Duration >= cfg.Duration {
		t.Fatalf("session did not stop early: duration %v", st.Duration)
	}
}

func TestCBRLimitsThroughput(t *testing.T) {
	// With a CBR far below link capacity the session becomes
	// source-limited: throughput approaches the CBR rate, not the optimum.
	cfg := fastConfig(4)
	cfg.CBRRate = 1000
	cfg.Duration = 300
	st, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Throughput > cfg.CBRRate*1.05 {
		t.Fatalf("throughput %v exceeds CBR %v", st.Throughput, cfg.CBRRate)
	}
	if st.Throughput < cfg.CBRRate*0.5 {
		t.Fatalf("throughput %v far below CBR %v on an easy topology", st.Throughput, cfg.CBRRate)
	}
}

func TestQueueSamplingInSession(t *testing.T) {
	cfg := fastConfig(5)
	cfg.QueueSampleInterval = 0.05
	st, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.QueuePerNode) != 4 {
		t.Fatalf("queue stats for %d nodes", len(st.QueuePerNode))
	}
	// OMNC's matched rates keep broadcast queues small (Fig. 3: < 1 for
	// most sessions).
	if st.MeanQueue > 5 {
		t.Fatalf("OMNC mean queue = %.2f, expected small", st.MeanQueue)
	}
}

func TestUtilityMetricsOnDiamond(t *testing.T) {
	st, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), fastConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	// OMNC uses all nodes and both paths of the diamond (Sec. 5, Fig. 4).
	if st.NodeUtility < 0.99 {
		t.Fatalf("node utility = %.2f, want 1 on the diamond", st.NodeUtility)
	}
	if st.PathUtility < 0.99 {
		t.Fatalf("path utility = %.2f, want 1 on the diamond", st.PathUtility)
	}
}

func TestInnovativeAccounting(t *testing.T) {
	st, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), fastConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalReceived == 0 {
		t.Fatal("no packets received")
	}
	if st.InnovativeReceived > st.TotalReceived {
		t.Fatalf("innovative %d > total %d", st.InnovativeReceived, st.TotalReceived)
	}
	if st.InnovativeReceived == 0 {
		t.Fatal("no innovative packets despite decoding")
	}
}

func TestRunErrorsOnBadInput(t *testing.T) {
	nw := diamond(t)
	if _, err := Run(nw, 0, 0, OMNC(core.Options{}), fastConfig(8)); err == nil {
		t.Fatal("src == dst must fail")
	}
	bad := fastConfig(9)
	bad.Coding.GenerationSize = -1
	if _, err := Run(nw, 0, 3, OMNC(core.Options{}), bad); err == nil {
		t.Fatal("invalid coding params must fail")
	}
	small := fastConfig(10)
	small.AirPacketSize = 4 // cannot carry 8 coefficients
	if _, err := Run(nw, 0, 3, OMNC(core.Options{}), small); err == nil {
		t.Fatal("air packet smaller than coefficient vector must fail")
	}
}

func TestPolicySizeValidation(t *testing.T) {
	builder := func(sg *core.Subgraph, cfg Config) (*Policy, error) {
		return &Policy{Name: "bad", Caps: []float64{1}, Credit: []float64{1}}, nil
	}
	if _, err := Run(diamond(t), 0, 3, builder, fastConfig(11)); err == nil {
		t.Fatal("mis-sized policy must fail")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), fastConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), fastConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.GenerationsDecoded != b.GenerationsDecoded {
		t.Fatalf("same seed diverged: %v vs %v", a.Throughput, b.Throughput)
	}
}

func TestOMNCOnRandomNetwork(t *testing.T) {
	nw, err := topology.Generate(topology.Config{Nodes: 60, Density: 6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	for dst := 1; dst < nw.Size() && !ran; dst++ {
		sg, err := core.SelectNodes(nw, 0, dst)
		if err != nil || sg.Size() < 5 {
			continue
		}
		cfg := fastConfig(14)
		cfg.Duration = 200
		st, err := Run(nw, 0, dst, OMNC(core.Options{MaxIterations: 800}), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.GenerationsDecoded == 0 {
			t.Fatalf("dst %d: nothing decoded (gamma %v)", dst, st.Gamma)
		}
		ran = true
	}
	if !ran {
		t.Skip("no suitable session on this topology")
	}
}

func TestUncappedRates(t *testing.T) {
	caps := UncappedRates(3)
	for _, c := range caps {
		if !(c > 1e300) {
			t.Fatalf("caps = %v, want +Inf", caps)
		}
	}
}

func TestAckLatencyPositive(t *testing.T) {
	sg, err := core.SelectNodes(diamond(t), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	lat := ackLatency(sg, fastConfig(1).withDefaults())
	if lat <= 0 {
		t.Fatalf("ack latency = %v", lat)
	}
	// Two lossy hops at 64 bytes over 2e4 B/s: order of ~0.01 s.
	if lat > 0.1 {
		t.Fatalf("ack latency %v implausibly large", lat)
	}
}

func TestSessionTracing(t *testing.T) {
	buf := trace.NewBuffer()
	cfg := fastConfig(30)
	cfg.Duration = 60
	cfg.Trace = buf
	st, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no events traced")
	}
	if buf.Count(trace.EventTx) == 0 || buf.Count(trace.EventRx) == 0 {
		t.Fatal("tx/rx events missing")
	}
	if got := buf.Count(trace.EventDecode); got != st.GenerationsDecoded {
		t.Fatalf("decode events = %d, stats say %d", got, st.GenerationsDecoded)
	}
	// Innovation accounting must match the stats counters.
	if got := int64(buf.Count(trace.EventInnovative)); got != st.InnovativeReceived {
		t.Fatalf("innovative events = %d, stats say %d", got, st.InnovativeReceived)
	}
	// Event times must be within the session and non-decreasing per node is
	// not guaranteed, but global ordering by record time is.
	events := buf.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("events recorded out of order")
		}
	}
	if events[len(events)-1].Time > cfg.Duration {
		t.Fatal("event beyond session duration")
	}
}

func TestGenerationLatenciesReported(t *testing.T) {
	cfg := fastConfig(33)
	cfg.Duration = 120
	st, err := Run(diamond(t), 0, 3, OMNC(core.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.GenerationLatencies) != st.GenerationsDecoded {
		t.Fatalf("latencies = %d, decoded = %d", len(st.GenerationLatencies), st.GenerationsDecoded)
	}
	for i, l := range st.GenerationLatencies {
		if l <= 0 || l > cfg.Duration {
			t.Fatalf("latency[%d] = %v out of range", i, l)
		}
	}
}

func TestExpiredGenerationPacketsDiscarded(t *testing.T) {
	// Packets from an expired generation must not perturb the current one:
	// feed a stale packet straight into a node's Receive and check it is
	// ignored (Sec. 4: "discard packets belonging to the expired
	// generation").
	nw := diamond(t)
	sg, _ := core.SelectNodes(nw, 0, 3)
	pol, err := OMNC(core.Options{})(sg, fastConfig(50).withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := newRuntime(nw, sg, pol, fastConfig(50).withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	dst := rt.nodes[sg.Dst]
	stale := &coding.Packet{
		Generation: 99, // not the current generation
		Coeffs:     make([]byte, rt.cfg.Coding.GenerationSize),
		Payload:    make([]byte, rt.cfg.Coding.BlockSize),
	}
	stale.Coeffs[0] = 1
	before := rt.received
	var upstream int
	for local := range sg.Nodes {
		if sg.ETXDist[local] > sg.ETXDist[sg.Dst] {
			upstream = local
			break
		}
	}
	dst.Receive(upstream, stale)
	if rt.received != before {
		t.Fatal("stale-generation packet was counted as received")
	}
	if dst.dec.Rank() != 0 {
		t.Fatal("stale packet reached the decoder")
	}
}

func TestExcludedNodesNeverTransmit(t *testing.T) {
	// A policy that excludes a relay must keep it silent for the whole
	// session even though it could decode and forward.
	nw := diamond(t)
	sg, _ := core.SelectNodes(nw, 0, 3)
	var excludedLocal int
	builder := func(sg *core.Subgraph, cfg Config) (*Policy, error) {
		exclude := make([]bool, sg.Size())
		for local := range sg.Nodes {
			if local != sg.Src && local != sg.Dst {
				exclude[local] = true
				excludedLocal = local
				break
			}
		}
		return &Policy{
			Name:             "test-exclude",
			Caps:             UncappedRates(sg.Size()),
			Credit:           make([]float64, sg.Size()),
			SendWhenNonEmpty: true,
			Exclude:          exclude,
		}, nil
	}
	cfg := fastConfig(51)
	cfg.Duration = 60
	rtCfg := cfg.withDefaults()
	pol, err := builder(sg, rtCfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := newRuntime(nw, sg, pol, rtCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.run(); err != nil {
		t.Fatal(err)
	}
	if rt.mac.FramesSent(excludedLocal) != 0 {
		t.Fatalf("excluded node %d transmitted %d frames",
			excludedLocal, rt.mac.FramesSent(excludedLocal))
	}
}
