package protocol

import (
	"testing"

	"omnc/internal/core"
	"omnc/internal/topology"
)

// crossroads hosts two sessions through shared middle relays:
// S1(0) -> {2,3} -> T1(5), S2(1) -> {2,3} -> T2(6).
func crossroads(t *testing.T) *topology.Network {
	t.Helper()
	p := make([][]float64, 7)
	for i := range p {
		p[i] = make([]float64, 7)
	}
	set := func(a, b int, q float64) {
		p[a][b] = q
		p[b][a] = q
	}
	set(0, 2, 0.8)
	set(0, 3, 0.6)
	set(1, 2, 0.7)
	set(1, 3, 0.8)
	set(2, 5, 0.7)
	set(3, 5, 0.6)
	set(2, 6, 0.6)
	set(3, 6, 0.8)
	set(2, 3, 0.5)
	nw, err := topology.NewExplicit(p)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestRunConcurrentOMNCSingleSession(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(91)
	cfg.Duration = 200
	cs, err := RunConcurrentOMNC(nw, []Endpoints{{Src: 0, Dst: 5}}, core.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.PerSession) != 1 {
		t.Fatalf("sessions = %d", len(cs.PerSession))
	}
	if cs.PerSession[0].GenerationsDecoded == 0 {
		t.Fatal("single concurrent session decoded nothing")
	}
	if cs.AggregateThroughput != cs.PerSession[0].Throughput {
		t.Fatal("aggregate must equal the single session")
	}
}

func TestRunConcurrentOMNCTwoSessions(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(92)
	cfg.Duration = 300
	cs, err := RunConcurrentOMNC(nw,
		[]Endpoints{{Src: 0, Dst: 5}, {Src: 1, Dst: 6}}, core.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.PerSession) != 2 {
		t.Fatalf("sessions = %d", len(cs.PerSession))
	}
	for i, st := range cs.PerSession {
		if st.GenerationsDecoded == 0 {
			t.Fatalf("session %d decoded nothing (gamma %.0f)", i, st.Gamma)
		}
		if st.Policy != "omnc-multi" {
			t.Fatalf("policy = %q", st.Policy)
		}
	}

	// Sharing the relays must cost throughput versus running alone.
	solo, err := RunConcurrentOMNC(nw, []Endpoints{{Src: 0, Dst: 5}}, core.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cs.PerSession[0].Throughput > solo.PerSession[0].Throughput*1.1 {
		t.Fatalf("shared session (%v) outperformed solo (%v)",
			cs.PerSession[0].Throughput, solo.PerSession[0].Throughput)
	}
}

func TestRunConcurrentOMNCValidation(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(93)
	if _, err := RunConcurrentOMNC(nw, nil, core.Options{}, cfg); err == nil {
		t.Fatal("no sessions must fail")
	}
	if _, err := RunConcurrentOMNC(nw, []Endpoints{{Src: 0, Dst: 0}}, core.Options{}, cfg); err == nil {
		t.Fatal("degenerate endpoints must fail")
	}
	bad := cfg
	bad.Coding.GenerationSize = -1
	if _, err := RunConcurrentOMNC(nw, []Endpoints{{Src: 0, Dst: 5}}, core.Options{}, bad); err == nil {
		t.Fatal("bad coding params must fail")
	}
}

func TestRunConcurrentOMNCDeterministic(t *testing.T) {
	nw := crossroads(t)
	cfg := fastConfig(94)
	cfg.Duration = 150
	eps := []Endpoints{{Src: 0, Dst: 5}, {Src: 1, Dst: 6}}
	a, err := RunConcurrentOMNC(nw, eps, core.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConcurrentOMNC(nw, eps, core.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerSession {
		if a.PerSession[i].Throughput != b.PerSession[i].Throughput {
			t.Fatalf("session %d not deterministic", i)
		}
	}
}
