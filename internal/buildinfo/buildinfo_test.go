package buildinfo

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

func TestCollectReportsHost(t *testing.T) {
	info := Collect()
	if info.GoVersion != runtime.Version() {
		t.Fatalf("go version %q, want %q", info.GoVersion, runtime.Version())
	}
	if info.CPUs < 1 {
		t.Fatalf("cpus = %d", info.CPUs)
	}
	if info.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs = %d", info.GOMAXPROCS)
	}
}

func TestStringMentionsCPUs(t *testing.T) {
	s := Info{GoVersion: "go1.22.0", CPUs: 4, Version: "(devel)"}.String()
	if !strings.Contains(s, "4 cpus") {
		t.Fatalf("string %q lacks the cpu count", s)
	}
	if !strings.Contains(s, "go1.22.0") {
		t.Fatalf("string %q lacks the toolchain", s)
	}
}

func TestStringTruncatesRevision(t *testing.T) {
	s := Info{Revision: "0123456789abcdef0123", Dirty: true}.String()
	if !strings.Contains(s, "0123456789ab-dirty") {
		t.Fatalf("string %q should carry the short dirty revision", s)
	}
}

func TestJSONRoundTrips(t *testing.T) {
	var got Info
	if err := json.Unmarshal(Collect().JSON(), &got); err != nil {
		t.Fatal(err)
	}
	if got.CPUs != runtime.NumCPU() {
		t.Fatalf("cpus = %d, want %d", got.CPUs, runtime.NumCPU())
	}
}
