// Package buildinfo reports what binary is running and on what hardware:
// the Go toolchain, the module version and VCS revision when the binary was
// built from a checkout, and the machine's CPU count. Every CLI surfaces it
// behind -version and omnc-serve behind GET /healthz, so experiment results
// (BENCH re-records in particular, whose speedup gates only bind on >= 4
// CPUs) stay attributable to the build and machine that produced them.
package buildinfo

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info identifies the running build and its host.
type Info struct {
	// Module is the main module path ("omnc").
	Module string `json:"module"`
	// Version is the main module version ("(devel)" for checkouts).
	Version string `json:"version"`
	// Revision and Dirty come from the VCS stamp when present.
	Revision string `json:"revision,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// CPUs is runtime.NumCPU() — the figure BENCH speedup gates key on.
	CPUs int `json:"cpus"`
	// GOMAXPROCS is the scheduler's current parallelism bound.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// Collect gathers the build metadata embedded by the Go linker plus the
// host's CPU counts. It never fails: binaries without embedded build info
// (some test binaries) just leave the module fields blank.
func Collect() Info {
	info := Info{
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line form the CLIs print for -version.
func (i Info) String() string {
	rev := i.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Dirty {
		rev += "-dirty"
	}
	mod := i.Module
	if mod == "" {
		mod = "omnc"
	}
	return fmt.Sprintf("%s %s (rev %s, %s, %d cpus)", mod, i.Version, rev, i.GoVersion, i.CPUs)
}

// JSON renders the info as indented JSON (the /healthz payload embeds it).
func (i Info) JSON() []byte {
	buf, err := json.MarshalIndent(i, "", "  ")
	if err != nil {
		// Info is a plain struct of marshalable fields; this cannot happen.
		panic(fmt.Sprintf("buildinfo: marshal: %v", err))
	}
	return append(buf, '\n')
}
