// Package jobs is the experiment service core: a versioned, JSON-round-
// trippable Spec naming one experiment, a Validate that rejects nonsense
// before any CPU is spent, and a Run dispatcher that executes the Spec over
// the internal/experiments runners. Every surface — the five CLIs, the
// omnc-serve daemon, CI smoke jobs and tests — drives this one path, so a
// figure submitted over HTTP lands byte-identical artifacts to the same
// figure run from a shell.
//
// The package also houses the daemon's persistence: a crash-safe JSONL
// queue (queue.go) and a content-addressed results store (store.go).
package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"omnc/internal/coding"
	"omnc/internal/experiments"
	"omnc/internal/faults"
	"omnc/internal/sim"
)

// SpecVersion is the Spec layout this build understands. Decode rejects
// anything else, so a stored queue survives upgrades loudly instead of
// silently reinterpreting old jobs.
const SpecVersion = 1

// Experiment kinds accepted by Spec.Kind. Each maps to one runner in
// run.go; together they cover everything the five CLIs can execute.
const (
	// KindComparison is the paper's Sec. 5 harness (figures 2l/2r/3/4 and
	// the LP-gap summary) — omnc-fig's comparison path.
	KindComparison = "comparison"
	// KindFig1 is the rate-control convergence trace (Fig. 1).
	KindFig1 = "fig1"
	// KindDrift is the link-quality drift sweep (omnc-fig -fig drift).
	KindDrift = "drift"
	// KindMulti is the multi-unicast scaling sweep (omnc-fig -fig multi).
	KindMulti = "multi"
	// KindFaults is the fault-churn sweep (omnc-fig -fig faults).
	KindFaults = "faults"
	// KindSchemes is the coding-scheme chain sweep (omnc-fig -fig schemes).
	KindSchemes = "schemes"
	// KindSession is a single unicast session, optionally replayed over
	// independent loss realizations — omnc-sim's path.
	KindSession = "session"
	// KindTopo generates and summarizes a deployment — omnc-topo's path.
	KindTopo = "topo"
	// KindLoopback runs OMNC over real UDP sockets on the loopback
	// interface — omnc-drift's path. Wall-clock bound, not deterministic.
	KindLoopback = "loopback"
	// KindBench records the session benchmark trajectory
	// (internal/benchreport) — omnc-bench's recording path.
	KindBench = "bench"
)

// Kinds lists every accepted Spec.Kind, sorted.
func Kinds() []string {
	return []string{
		KindBench, KindComparison, KindDrift, KindFaults, KindFig1,
		KindLoopback, KindMulti, KindSchemes, KindSession, KindTopo,
	}
}

// Figures accepted by Spec.Figures for KindComparison.
var comparisonFigures = map[string]bool{"2l": true, "2r": true, "3": true, "4": true, "lpgap": true}

// Spec names one experiment completely: what to run, on what topology, with
// which protocol and coding strategy, under what fault plan, and how to
// parallelize it. The zero value of every optional field means "the
// documented default" — the same defaults the CLIs apply — so a minimal
// {"version":1,"kind":"fig1"} is a valid job. Specs round-trip through JSON
// bit-exactly and unknown fields are rejected (DisallowUnknownFields), so a
// typo'd field name fails the submit instead of silently running the wrong
// experiment.
type Spec struct {
	// Version must be SpecVersion.
	Version int `json:"version"`
	// Kind selects the experiment (see the Kind constants).
	Kind string `json:"kind"`
	// Seed makes the run reproducible; jobs with the same canonical Spec
	// land in the same content-addressed run directory.
	Seed int64 `json:"seed,omitempty"`

	// Nodes, Density and MeanQuality describe the random deployment
	// (kinds comparison/drift/multi/faults/session/topo). Zero keeps the
	// runner defaults (300 nodes, density 6, lossy PHY ~0.58).
	Nodes       int     `json:"nodes,omitempty"`
	Density     float64 `json:"density,omitempty"`
	MeanQuality float64 `json:"mean_quality,omitempty"`

	// Full selects the paper scale for comparison/drift/faults/schemes
	// (300 sessions x 800 s, 1 KB blocks) and the deeper trial count for
	// multi; the default is the laptop scale.
	Full bool `json:"full,omitempty"`
	// Sessions overrides the session count (comparison) or caps the sweep
	// width (drift/multi/faults) exactly like omnc-fig's -sessions.
	Sessions int `json:"sessions,omitempty"`
	// MinHops and MaxHops constrain endpoint placement.
	MinHops int `json:"min_hops,omitempty"`
	MaxHops int `json:"max_hops,omitempty"`
	// Duration is emulated seconds per session — except for KindLoopback,
	// where it is wall-clock seconds (default 2).
	Duration float64 `json:"duration,omitempty"`
	// Capacity is the channel capacity in bytes/second.
	Capacity float64 `json:"capacity,omitempty"`
	// CBRRate is the source workload rate in bytes/second. Zero keeps the
	// kind's default; a negative value means a backlogged (unbounded)
	// source, which the session kind's CLI spells -cbr 0.
	CBRRate float64 `json:"cbr_rate,omitempty"`
	// Trials replays the session (KindSession) or loopback run
	// (KindLoopback) under that many independent loss realizations.
	Trials int `json:"trials,omitempty"`

	// Figures selects which comparison views to render (2l, 2r, 3, 4,
	// lpgap). 2r implies the high-quality network and therefore cannot be
	// combined with the lossy-network figures in one job.
	Figures []string `json:"figures,omitempty"`

	// Protocol is the single protocol of a session job (omnc, more,
	// oldmore, etx; default omnc). Protocols restricts the comparison
	// kinds' protocol set (default: all four).
	Protocol  string   `json:"protocol,omitempty"`
	Protocols []string `json:"protocols,omitempty"`
	// MAC selects the channel model: "oracle" (default) or "csma".
	MAC string `json:"mac,omitempty"`

	// Scheme is the coding strategy: "rlnc" (default), "rlnc-e2e" or
	// "rs". Redundancy caps source emissions per generation as a factor of
	// the generation size (0 = rateless). Field selects the coefficient
	// field: "8" (GF(2^8), the default) or "16" (GF(2^16)).
	Scheme     string  `json:"scheme,omitempty"`
	Redundancy float64 `json:"redundancy,omitempty"`
	Field      string  `json:"field,omitempty"`

	// Src and Dst pin the session endpoints (KindSession); nil picks
	// random endpoints under the hop constraint, exactly like omnc-sim.
	Src *int `json:"src,omitempty"`
	Dst *int `json:"dst,omitempty"`

	// Faults schedules deterministic churn on the session (KindSession
	// only — the sweep kinds draw their own plans).
	Faults *faults.Plan `json:"faults,omitempty"`

	// Report collects the per-session observability report; on a
	// single-trial session job the report lands as a report.json artifact.
	Report bool `json:"report,omitempty"`
	// Trace records the session's protocol events as a trace.jsonl
	// artifact (KindSession, single trial only).
	Trace bool `json:"trace,omitempty"`

	// Workers bounds concurrent session emulations (0 = all cores);
	// EngineWorkers selects the per-session parallel event engine (0 =
	// serial). Results are bit-identical for every value of either.
	Workers       int `json:"workers,omitempty"`
	EngineWorkers int `json:"engine_workers,omitempty"`

	// Iters is the measured runs per benchmark for KindBench (default 5).
	Iters int `json:"iters,omitempty"`

	// Rate, GenerationSize and BlockSize parameterize KindLoopback
	// (defaults 200000 B/s, 8 blocks, 64 bytes — omnc-drift's defaults).
	Rate           float64 `json:"rate,omitempty"`
	GenerationSize int     `json:"generation_size,omitempty"`
	BlockSize      int     `json:"block_size,omitempty"`
}

// Decode parses a Spec from JSON, rejecting unknown fields and validating
// the result. This is the only correct way to accept a Spec from the
// outside world.
func Decode(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("jobs: spec: %w", err)
	}
	// A second document in the payload is a smuggled job, not whitespace.
	if dec.More() {
		return Spec{}, fmt.Errorf("jobs: spec: trailing data after the JSON document")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Encode serializes the Spec canonically (the inverse of Decode). Hash
// feeds a normalized copy of the Spec through the same encoding to form the
// run directory's content address.
func (s Spec) Encode() ([]byte, error) {
	buf, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("jobs: spec: %w", err)
	}
	return buf, nil
}

// Hash returns the Spec's content address: a hex SHA-256 prefix of the
// normalized canonical encoding. Two Specs naming the same computation —
// regardless of list order or spelled-out defaults — hash alike, so they
// share one run directory.
func (s Spec) Hash() string {
	buf, err := s.normalized().Encode()
	if err != nil {
		// Spec is a plain struct of marshalable fields; this cannot happen.
		panic(fmt.Sprintf("jobs: hash: %v", err))
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8])
}

// normalized returns the copy of the Spec that feeds the content address:
// order-insensitive lists sorted and spelled-out defaults folded to their
// zero forms. Only rewrites proven computation-invariant belong here —
// every comparison protocol runs from the same per-session seed and the
// artifacts serialize protocols in sorted order, so list order cannot
// change a landed byte.
func (s Spec) normalized() Spec {
	n := s
	if len(s.Figures) > 0 {
		n.Figures = s.SortedFigures()
	}
	if len(s.Protocols) > 0 {
		ps := append([]string(nil), s.Protocols...)
		sort.Strings(ps)
		// The full protocol set spelled out is the nil default.
		if len(ps) == 4 && ps[0] == experiments.ProtoETX && ps[1] == experiments.ProtoMORE &&
			ps[2] == experiments.ProtoOldMORE && ps[3] == experiments.ProtoOMNC {
			ps = nil
		}
		n.Protocols = ps
	}
	if n.Scheme == "rlnc" {
		n.Scheme = "" // schemeName: "" already means rlnc
	}
	if n.Field == "8" {
		n.Field = "" // field: "" already means GF(2^8)
	}
	if n.Protocol == experiments.ProtoOMNC {
		n.Protocol = "" // runSession: "" already means omnc
	}
	if n.MAC == "oracle" {
		n.MAC = "" // mac: "" already means oracle
	}
	if n.Trials == 1 {
		n.Trials = 0 // trials: both mean a single run
	}
	return n
}

// Validate checks the Spec against the same rules the CLIs enforce flag by
// flag, so a rejected job fails at submit time with the reason — before any
// topology is generated.
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("jobs: spec version %d, want %d", s.Version, SpecVersion)
	}
	switch s.Kind {
	case KindComparison, KindFig1, KindDrift, KindMulti, KindFaults,
		KindSchemes, KindSession, KindTopo, KindLoopback, KindBench:
	default:
		return fmt.Errorf("jobs: unknown kind %q (want one of %v)", s.Kind, Kinds())
	}
	if _, err := coding.ParseScheme(s.schemeName()); err != nil {
		return err
	}
	if err := coding.ValidateRedundancy(s.Redundancy); err != nil {
		return err
	}
	f, err := coding.ParseField(s.Field)
	if err != nil {
		return err
	}
	if s.scheme() == coding.SchemeRS && f != coding.Field8 {
		return fmt.Errorf("%w: scheme rs codes over GF(2^8) only", coding.ErrInvalidField)
	}
	if _, err := s.mac(); err != nil {
		return err
	}
	if s.Trials < 0 {
		return fmt.Errorf("jobs: trials %d must not be negative", s.Trials)
	}
	if s.Nodes < 0 || s.Sessions < 0 || s.MinHops < 0 || s.MaxHops < 0 || s.Iters < 0 {
		return fmt.Errorf("jobs: negative count in spec")
	}
	if s.Duration < 0 || s.Capacity < 0 || s.Density < 0 || s.Redundancy < 0 {
		return fmt.Errorf("jobs: negative magnitude in spec")
	}
	if s.MeanQuality < 0 || s.MeanQuality > 1 {
		return fmt.Errorf("jobs: mean_quality %v outside [0, 1]", s.MeanQuality)
	}
	switch s.Kind {
	case KindComparison:
		if len(s.Figures) == 0 {
			return fmt.Errorf("jobs: comparison jobs need at least one figure (2l, 2r, 3, 4, lpgap)")
		}
		hq := false
		for _, f := range s.Figures {
			if !comparisonFigures[f] {
				return fmt.Errorf("jobs: unknown figure %q (want 2l, 2r, 3, 4 or lpgap)", f)
			}
			if f == "2r" {
				hq = true
			}
		}
		if hq && len(s.Figures) > 1 {
			return fmt.Errorf("jobs: figure 2r runs on the high-quality network and cannot share a job with lossy-network figures")
		}
		for _, p := range s.Protocols {
			if !knownProtocol(p) {
				return fmt.Errorf("jobs: unknown protocol %q", p)
			}
		}
	case KindSession:
		if p := s.Protocol; p != "" && !knownProtocol(p) {
			return fmt.Errorf("jobs: unknown protocol %q", p)
		}
		if (s.Src == nil) != (s.Dst == nil) {
			return fmt.Errorf("jobs: src and dst must be set together")
		}
		if s.Src != nil && (*s.Src < 0 || *s.Dst < 0) {
			return fmt.Errorf("jobs: negative endpoint")
		}
		if s.Report && s.trials() > 1 {
			return fmt.Errorf("jobs: a report captures a single session; it cannot be combined with %d trials", s.trials())
		}
		if s.Trace && s.trials() > 1 {
			return fmt.Errorf("jobs: a trace captures a single session; it cannot be combined with %d trials", s.trials())
		}
	case KindLoopback:
		if s.GenerationSize < 0 || s.BlockSize < 0 || s.Rate < 0 {
			return fmt.Errorf("jobs: negative loopback parameter")
		}
	}
	if s.Faults != nil {
		if s.Kind != KindSession {
			return fmt.Errorf("jobs: a fault plan applies to session jobs only (kind %q draws its own)", s.Kind)
		}
		if err := s.Faults.Validate(0); err != nil {
			return err
		}
	}
	return nil
}

// Units returns how many progress units the job will report — the total a
// metrics.Progress watching the run should be created with. Zero means the
// kind reports no incremental progress. The counts mirror exactly what the
// CLIs pass to metrics.NewProgress for the same flags.
func (s Spec) Units() int {
	switch s.Kind {
	case KindComparison:
		return s.comparisonConfig().Sessions
	case KindMulti:
		counts, trials := s.multiPlan()
		return len(counts) * trials
	case KindFaults:
		sessions, churn := s.faultsPlan()
		return sessions * len(churn)
	case KindSchemes:
		return s.schemesConfig(nil).CellCount()
	case KindSession, KindLoopback:
		return s.trials()
	default:
		return 0
	}
}

// trials normalizes the replay count (0 means one run).
func (s Spec) trials() int {
	if s.Trials <= 0 {
		return 1
	}
	return s.Trials
}

// schemeName normalizes the coding-scheme name ("" means the default).
func (s Spec) schemeName() string {
	if s.Scheme == "" {
		return "rlnc"
	}
	return s.Scheme
}

// scheme parses the (already validated) coding scheme.
func (s Spec) scheme() coding.Scheme {
	v, err := coding.ParseScheme(s.schemeName())
	if err != nil {
		panic(fmt.Sprintf("jobs: scheme %q passed Validate but not ParseScheme: %v", s.Scheme, err))
	}
	return v
}

// field parses the (already validated) coefficient field.
func (s Spec) field() coding.Field {
	v, err := coding.ParseField(s.Field)
	if err != nil {
		panic(fmt.Sprintf("jobs: field %q passed Validate but not ParseField: %v", s.Field, err))
	}
	return v
}

// mac parses the channel model name.
func (s Spec) mac() (sim.Mode, error) {
	switch s.MAC {
	case "", "oracle":
		return sim.ModeOracle, nil
	case "csma":
		return sim.ModeCSMA, nil
	default:
		return sim.ModeOracle, fmt.Errorf("jobs: unknown mac %q (want oracle or csma)", s.MAC)
	}
}

func knownProtocol(name string) bool {
	switch name {
	case experiments.ProtoOMNC, experiments.ProtoMORE, experiments.ProtoOldMORE, experiments.ProtoETX:
		return true
	}
	return false
}

// comparisonConfig maps the Spec onto the Sec. 5 harness exactly the way
// omnc-fig maps its flags: Quick or Paper scale, then the overrides.
func (s Spec) comparisonConfig() experiments.Config {
	cfg := experiments.QuickConfig(s.Seed)
	if s.Full {
		cfg = experiments.PaperConfig(s.Seed)
	}
	if s.Nodes > 0 {
		cfg.Nodes = s.Nodes
	}
	if s.Density > 0 {
		cfg.Density = s.Density
	}
	if s.Sessions > 0 {
		cfg.Sessions = s.Sessions
	}
	if s.MinHops > 0 {
		cfg.MinHops = s.MinHops
	}
	if s.MaxHops > 0 {
		cfg.MaxHops = s.MaxHops
	}
	if s.Duration > 0 {
		cfg.Duration = s.Duration
	}
	if s.Capacity > 0 {
		cfg.Capacity = s.Capacity
	}
	if s.CBRRate != 0 {
		cfg.CBRRate = rateOrBacklogged(s.CBRRate)
	}
	if len(s.Protocols) > 0 {
		cfg.Protocols = append([]string(nil), s.Protocols...)
	}
	cfg.MeanQuality = s.MeanQuality
	for _, f := range s.Figures {
		if f == "2r" && cfg.MeanQuality == 0 {
			cfg.MeanQuality = 0.91
		}
		if f == "lpgap" {
			cfg.SolveLPGap = true
		}
	}
	cfg.Scheme = s.scheme()
	cfg.Redundancy = s.Redundancy
	if f := s.field(); f != cfg.Coding.Field {
		// A wider field doubles the coefficient bytes; keep the air frame
		// carrying the full coefficient vector plus the 1 KB payload.
		cfg.Coding.Field = f
		cfg.AirPacketSize = cfg.Coding.CoeffBytes() + 1024
	}
	cfg.Workers = s.Workers
	cfg.EngineWorkers = s.EngineWorkers
	cfg.Report = s.Report
	mac, _ := s.mac()
	cfg.MAC = mac
	return cfg
}

// multiPlan mirrors omnc-fig's multiFig: the session counts swept (capped
// by Sessions) and the trial count (3 at full scale, 2 otherwise).
func (s Spec) multiPlan() (counts []int, trials int) {
	counts = []int{1, 2, 4, 6}
	if s.Sessions > 0 && s.Sessions < counts[len(counts)-1] {
		kept := counts[:0]
		for _, c := range counts {
			if c <= s.Sessions {
				kept = append(kept, c)
			}
		}
		counts = kept
	}
	trials = 2
	if s.Full {
		trials = 3
	}
	return counts, trials
}

// faultsPlan mirrors omnc-fig's faultsFig: session count (capped at 4) and
// the churn ladder.
func (s Spec) faultsPlan() (sessions int, churn []float64) {
	base := s.comparisonConfig()
	sessions = base.Sessions
	if sessions > 4 {
		sessions = 4
	}
	return sessions, []float64{0, 2, 5}
}

// schemesConfig mirrors omnc-fig's schemesFig mapping.
func (s Spec) schemesConfig(progress *progressHandle) experiments.SchemesConfig {
	base := s.comparisonConfig()
	sc := experiments.SchemesConfig{
		Duration:      base.Duration,
		Capacity:      base.Capacity,
		CBRRate:       base.CBRRate,
		MAC:           base.MAC,
		RateOptions:   base.RateOptions,
		Seed:          base.Seed,
		Workers:       base.Workers,
		EngineWorkers: base.EngineWorkers,
	}
	if progress != nil {
		sc.Progress = progress.p
		sc.Ctx = progress.ctx
	}
	return sc
}

// rateOrBacklogged maps the Spec's CBR encoding onto the runners': negative
// means backlogged, which the emulation spells 0.
func rateOrBacklogged(r float64) float64 {
	if r < 0 {
		return 0
	}
	return r
}

// EffectiveComparison returns the experiments.Config the comparison-family
// kinds will run — scale selection, overrides and figure side effects
// applied. CLIs use it to print accurate preambles without duplicating the
// mapping.
func (s Spec) EffectiveComparison() experiments.Config {
	return s.comparisonConfig()
}

// MultiPlan returns the session counts and per-count trials the multi kind
// will sweep.
func (s Spec) MultiPlan() (counts []int, trials int) {
	return s.multiPlan()
}

// FaultsPlan returns the session count and churn ladder the faults kind
// will sweep.
func (s Spec) FaultsPlan() (sessions int, churn []float64) {
	return s.faultsPlan()
}

// SortedFigures returns the job's figures in stable order (the artifact
// order of the run directory).
func (s Spec) SortedFigures() []string {
	out := append([]string(nil), s.Figures...)
	sort.Strings(out)
	return out
}
