package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"omnc"
	"omnc/internal/experiments"
	"omnc/internal/metrics"
)

// Artifact is one landed file of a run: CSV series, a JSON report, a trace.
// The bytes are exactly what the equivalent CLI invocation writes — the
// golden-figure tests pin this — so a job submitted over HTTP and a figure
// regenerated in a shell are interchangeable evidence.
type Artifact struct {
	Name   string `json:"name"`
	Size   int    `json:"size"`
	SHA256 string `json:"sha256"`
	// Data is the artifact's content; process-local (the store writes it to
	// the run directory, the index serializes only the head above).
	Data []byte `json:"-"`
}

func newArtifact(name string, data []byte) Artifact {
	sum := sha256.Sum256(data)
	return Artifact{Name: name, Size: len(data), SHA256: hex.EncodeToString(sum[:]), Data: data}
}

// csvBytes renders rows exactly like the CLIs' writeCSV: encoding/csv
// defaults, "\n" record terminators.
func csvBytes(rows [][]string) ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.WriteAll(rows); err != nil {
		return nil, err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// curvesArtifact renders a per-protocol CDF family the way omnc-fig's
// writeCurves always has: protocols in sorted order (byte-stable for a fixed
// seed), 200 interpolation points, five decimals.
func curvesArtifact(name, xName string, curves map[string]*metrics.CDF) (Artifact, error) {
	protos := make([]string, 0, len(curves))
	for proto := range curves {
		protos = append(protos, proto)
	}
	sort.Strings(protos)
	rows := [][]string{{"protocol", xName, "cdf"}}
	for _, proto := range protos {
		for _, pt := range curves[proto].Points(200) {
			rows = append(rows, []string{proto, fmt.Sprintf("%.5f", pt.X), fmt.Sprintf("%.5f", pt.F)})
		}
	}
	data, err := csvBytes(rows)
	if err != nil {
		return Artifact{}, err
	}
	return newArtifact(name, data), nil
}

// fig1Artifact renders the convergence trace as fig1_convergence.csv.
func fig1Artifact(r *experiments.Fig1Result) (Artifact, error) {
	header := []string{"iteration"}
	for _, id := range r.Nodes {
		header = append(header, fmt.Sprintf("node%d_bytes_per_sec", id))
	}
	rows := [][]string{header}
	for t := 0; t < r.Iterations; t++ {
		row := []string{strconv.Itoa(t + 1)}
		for i := range r.Nodes {
			row = append(row, fmt.Sprintf("%.2f", r.Series[i][t]))
		}
		rows = append(rows, row)
	}
	data, err := csvBytes(rows)
	if err != nil {
		return Artifact{}, err
	}
	return newArtifact("fig1_convergence.csv", data), nil
}

// multiArtifact renders the scaling sweep as fig_multi.csv.
func multiArtifact(r *experiments.MultiScaling) (Artifact, error) {
	protos := append([]string(nil), r.Config.Protocols...)
	sort.Strings(protos)
	rows := [][]string{{"protocol", "sessions", "aggregate_bytes_per_sec", "jain_fairness"}}
	for _, p := range protos {
		for _, pt := range r.Points {
			rows = append(rows, []string{
				p,
				strconv.Itoa(pt.Sessions),
				fmt.Sprintf("%.5f", pt.AggregateThroughput[p]),
				fmt.Sprintf("%.5f", pt.JainFairness[p]),
			})
		}
	}
	data, err := csvBytes(rows)
	if err != nil {
		return Artifact{}, err
	}
	return newArtifact("fig_multi.csv", data), nil
}

// faultsArtifact renders the churn sweep as fig_faults.csv.
func faultsArtifact(r *experiments.FaultChurn) (Artifact, error) {
	protos := append([]string(nil), r.Config.Protocols...)
	sort.Strings(protos)
	rows := [][]string{{"protocol", "churn_per_100s", "throughput_bytes_per_sec", "mean_recovery_s"}}
	for _, p := range protos {
		for _, pt := range r.Points {
			rows = append(rows, []string{
				p,
				fmt.Sprintf("%.5f", pt.Churn),
				fmt.Sprintf("%.5f", pt.Throughput[p]),
				fmt.Sprintf("%.5f", pt.Recovery[p]),
			})
		}
	}
	data, err := csvBytes(rows)
	if err != nil {
		return Artifact{}, err
	}
	return newArtifact("fig_faults.csv", data), nil
}

// schemesArtifact renders the coding-scheme sweep as fig_schemes.csv.
func schemesArtifact(r *experiments.SchemesResult) (Artifact, error) {
	rows := [][]string{{"scheme", "redundancy", "hops", "throughput_bytes_per_sec", "generations_decoded"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Scheme.String(),
			fmt.Sprintf("%.2f", p.Redundancy),
			strconv.Itoa(p.Hops),
			fmt.Sprintf("%.5f", p.Throughput),
			fmt.Sprintf("%.5f", p.GenerationsDecoded),
		})
	}
	data, err := csvBytes(rows)
	if err != nil {
		return Artifact{}, err
	}
	return newArtifact("fig_schemes.csv", data), nil
}

// driftArtifact renders the drift sweep as fig_drift.csv. The drift figure
// never had a CSV form in the CLI (it printed summaries only), so this
// column set is the artifact's native definition: one row per jitter level,
// the full throughput summary spelled out.
func driftArtifact(r *experiments.DriftSweepResult) (Artifact, error) {
	rows := [][]string{{"jitter", "n", "mean_bytes_per_sec", "median_bytes_per_sec",
		"p10_bytes_per_sec", "p90_bytes_per_sec", "min_bytes_per_sec", "max_bytes_per_sec"}}
	for i, j := range r.Jitters {
		s := r.Throughput[i]
		rows = append(rows, []string{
			fmt.Sprintf("%.5f", j),
			strconv.Itoa(s.N),
			fmt.Sprintf("%.5f", s.Mean),
			fmt.Sprintf("%.5f", s.Median),
			fmt.Sprintf("%.5f", s.P10),
			fmt.Sprintf("%.5f", s.P90),
			fmt.Sprintf("%.5f", s.Min),
			fmt.Sprintf("%.5f", s.Max),
		})
	}
	data, err := csvBytes(rows)
	if err != nil {
		return Artifact{}, err
	}
	return newArtifact("fig_drift.csv", data), nil
}

// linksArtifact renders the deployment's directed link set as links.csv —
// byte-identical to omnc-topo's -links output.
func linksArtifact(nw *omnc.Network) (Artifact, error) {
	rows := [][]string{{"from", "to", "probability", "distance_m"}}
	for i := 0; i < nw.Size(); i++ {
		for _, j := range nw.Neighbors(i) {
			d := nw.Position(i).Distance(nw.Position(j))
			rows = append(rows, []string{
				strconv.Itoa(i), strconv.Itoa(j),
				fmt.Sprintf("%.4f", nw.Prob(i, j)),
				fmt.Sprintf("%.1f", d),
			})
		}
	}
	data, err := csvBytes(rows)
	if err != nil {
		return Artifact{}, err
	}
	return newArtifact("links.csv", data), nil
}
