package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"

	"omnc"
	"omnc/internal/benchreport"
	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/drift"
	"omnc/internal/experiments"
	"omnc/internal/graph"
	"omnc/internal/metrics"
	"omnc/internal/parallel"
	"omnc/internal/seedmix"
	"omnc/internal/trace"
	"time"
)

// RNG streams for the session kind, identical to the constants omnc-sim has
// always used: endpoint placement and per-trial loss processes draw from
// separate streams, so any surface that runs the same Spec replays the same
// session. These values are frozen — changing them changes every seeded
// result.
const (
	streamSessionPlacement int64 = 100
	streamSessionTrial     int64 = 101
	streamLoopbackTrial    int64 = 201
)

// Result is what running a Spec produces: a one-line Summary, the byte-exact
// Artifacts the equivalent CLI invocation would have written, and the typed
// in-memory results the CLIs use for their rich terminal output. Only the
// serializable head (spec, summary, src/dst, artifacts) lands in result.json;
// the typed fields are process-local.
type Result struct {
	Spec    Spec   `json:"spec"`
	Summary string `json:"summary"`
	// Src and Dst are the resolved session endpoints (KindSession only).
	Src *int `json:"src,omitempty"`
	Dst *int `json:"dst,omitempty"`
	// Artifacts are the run's landed files, in stable order.
	Artifacts []Artifact `json:"artifacts,omitempty"`

	// Typed results for in-process callers (the CLIs); never serialized.
	Comparison *experiments.Comparison       `json:"-"`
	Fig1       *experiments.Fig1Result       `json:"-"`
	Drift      *experiments.DriftSweepResult `json:"-"`
	Multi      *experiments.MultiScaling     `json:"-"`
	Faults     *experiments.FaultChurn       `json:"-"`
	Schemes    *experiments.SchemesResult    `json:"-"`
	Session    []*omnc.SessionStats          `json:"-"`
	Subgraph   *omnc.Subgraph                `json:"-"`
	Network    *omnc.Network                 `json:"-"`
	Loopback   []*drift.Result               `json:"-"`
	Bench      *benchreport.Report           `json:"-"`
}

// Artifact returns the named artifact, or nil.
func (r *Result) Artifact(name string) *Artifact {
	for i := range r.Artifacts {
		if r.Artifacts[i].Name == name {
			return &r.Artifacts[i]
		}
	}
	return nil
}

// progressHandle bundles the live-progress sink and the cancellation context
// a runner should thread into its experiment config.
type progressHandle struct {
	p   *metrics.Progress
	ctx context.Context
}

// Run validates and executes the Spec, honouring ctx at the experiment's
// natural cancellation boundaries (between sessions, cells or trials —
// completed work is never perturbed, so partial cancellation cannot change
// any result that is produced).
func Run(ctx context.Context, s Spec) (*Result, error) {
	return RunWithProgress(ctx, s, nil)
}

// RunWithProgress is Run with a live progress sink: p (when non-nil) is
// incremented once per completed unit, out of Spec.Units() total. The daemon
// snapshots it for GET /jobs/{id}; the CLIs tick it to stderr.
func RunWithProgress(ctx context.Context, s Spec, p *metrics.Progress) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	h := &progressHandle{p: p, ctx: ctx}
	switch s.Kind {
	case KindComparison:
		return runComparison(s, h)
	case KindFig1:
		return runFig1(s)
	case KindDrift:
		return runDrift(s, h)
	case KindMulti:
		return runMulti(s, h)
	case KindFaults:
		return runFaults(s, h)
	case KindSchemes:
		return runSchemes(s, h)
	case KindSession:
		return runSession(s, h)
	case KindTopo:
		return runTopo(s)
	case KindLoopback:
		return runLoopback(s, h)
	case KindBench:
		return runBench(s, h)
	}
	return nil, fmt.Errorf("jobs: unknown kind %q", s.Kind)
}

func runComparison(s Spec, h *progressHandle) (*Result, error) {
	cfg := s.comparisonConfig()
	cfg.Progress = h.p
	cfg.Ctx = h.ctx
	c, err := experiments.RunComparison(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: s, Comparison: c}
	for _, f := range s.SortedFigures() {
		switch f {
		case "2l", "2r":
			a, err := curvesArtifact("fig"+f+"_gains.csv", "gain", c.GainCDFs())
			if err != nil {
				return nil, err
			}
			res.Artifacts = append(res.Artifacts, a)
		case "3":
			a, err := curvesArtifact("fig3_queues.csv", "queue", c.QueueCDFs())
			if err != nil {
				return nil, err
			}
			res.Artifacts = append(res.Artifacts, a)
		case "4":
			a, err := curvesArtifact("fig4_node_utility.csv", "node_utility", c.NodeUtilityCDFs())
			if err != nil {
				return nil, err
			}
			res.Artifacts = append(res.Artifacts, a)
			a, err = curvesArtifact("fig4_path_utility.csv", "path_utility", c.PathUtilityCDFs())
			if err != nil {
				return nil, err
			}
			res.Artifacts = append(res.Artifacts, a)
		}
	}
	res.Summary = fmt.Sprintf("%d sessions on %d nodes; mean link quality %.3f",
		cfg.Sessions, cfg.Nodes, c.Network.MeanLinkQuality())
	if cfg.SolveLPGap {
		res.Summary += fmt.Sprintf("; emulated/optimized %s", c.LPGapSummary())
	}
	return res, nil
}

func runFig1(s Spec) (*Result, error) {
	// The convergence showcase runs on its fixed sample topology — the Spec
	// contributes nothing but the kind, exactly like omnc-fig -fig 1.
	r, err := experiments.Fig1Convergence(experiments.Fig1Config{})
	if err != nil {
		return nil, err
	}
	a, err := fig1Artifact(r)
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec: s, Fig1: r, Artifacts: []Artifact{a},
		Summary: fmt.Sprintf("converged=%v after %d iterations; gamma %.0f B/s",
			r.Converged, r.Iterations, r.Gamma),
	}, nil
}

func runDrift(s Spec, h *progressHandle) (*Result, error) {
	cfg := s.comparisonConfig()
	if cfg.Sessions > 8 {
		cfg.Sessions = 8
	}
	// Shorter generations keep per-epoch throughput measurable (the CLI's
	// driftFig applies the same override).
	cfg.Coding.GenerationSize = 16
	cfg.AirPacketSize = cfg.Coding.CoeffBytes() + 1024
	cfg.Ctx = h.ctx
	r, err := experiments.DriftSweep(experiments.DriftSweepConfig{
		Base:           cfg,
		Jitters:        []float64{0, 0.1, 0.2, 0.3, 0.4},
		Epochs:         3,
		ReinitOverhead: 5,
	})
	if err != nil {
		return nil, err
	}
	a, err := driftArtifact(r)
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec: s, Drift: r, Artifacts: []Artifact{a},
		Summary: fmt.Sprintf("%d jitter levels, %d sessions each", len(r.Jitters), cfg.Sessions),
	}, nil
}

func runMulti(s Spec, h *progressHandle) (*Result, error) {
	cfg := s.comparisonConfig()
	counts, trials := s.multiPlan()
	if len(counts) == 0 {
		return nil, fmt.Errorf("jobs: sessions %d leaves no session counts to sweep", s.Sessions)
	}
	mc := experiments.MultiConfig{
		Nodes:         cfg.Nodes,
		Density:       cfg.Density,
		MeanQuality:   cfg.MeanQuality,
		SessionCounts: counts,
		Trials:        trials,
		MinHops:       cfg.MinHops,
		MaxHops:       cfg.MaxHops,
		Duration:      cfg.Duration,
		Capacity:      cfg.Capacity,
		CBRRate:       cfg.CBRRate,
		Coding:        cfg.Coding,
		AirPacketSize: cfg.AirPacketSize,
		Protocols:     cfg.Protocols,
		MAC:           cfg.MAC,
		RateOptions:   cfg.RateOptions,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		EngineWorkers: cfg.EngineWorkers,
		Progress:      h.p,
		Ctx:           h.ctx,
	}
	r, err := experiments.RunMultiScaling(mc)
	if err != nil {
		return nil, err
	}
	a, err := multiArtifact(r)
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec: s, Multi: r, Artifacts: []Artifact{a},
		Summary: fmt.Sprintf("session counts %v, %d trials each", counts, trials),
	}, nil
}

func runFaults(s Spec, h *progressHandle) (*Result, error) {
	cfg := s.comparisonConfig()
	sessions, churn := s.faultsPlan()
	fc := experiments.FaultsConfig{
		Nodes:         cfg.Nodes,
		Density:       cfg.Density,
		MeanQuality:   cfg.MeanQuality,
		Sessions:      sessions,
		MinHops:       cfg.MinHops,
		MaxHops:       cfg.MaxHops,
		Duration:      cfg.Duration,
		Capacity:      cfg.Capacity,
		CBRRate:       cfg.CBRRate,
		Coding:        cfg.Coding,
		AirPacketSize: cfg.AirPacketSize,
		ChurnRates:    churn,
		Protocols:     cfg.Protocols,
		MAC:           cfg.MAC,
		RateOptions:   cfg.RateOptions,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		EngineWorkers: cfg.EngineWorkers,
		Progress:      h.p,
		Ctx:           h.ctx,
	}
	r, err := experiments.RunFaultChurn(fc)
	if err != nil {
		return nil, err
	}
	a, err := faultsArtifact(r)
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec: s, Faults: r, Artifacts: []Artifact{a},
		Summary: fmt.Sprintf("%d sessions x churn %v per 100 s", sessions, churn),
	}, nil
}

func runSchemes(s Spec, h *progressHandle) (*Result, error) {
	sc := s.schemesConfig(h)
	r, err := experiments.RunSchemesSweep(sc)
	if err != nil {
		return nil, err
	}
	a, err := schemesArtifact(r)
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec: s, Schemes: r, Artifacts: []Artifact{a},
		Summary: fmt.Sprintf("%d cells (schemes x redundancy x chain length)", sc.CellCount()),
	}, nil
}

// Session-kind defaults, identical to omnc-sim's flag defaults.
func (s Spec) sessionDefaults() (nodes int, density float64, minHops, maxHops int, duration, capacity, cbr float64) {
	nodes, density, minHops, maxHops = s.Nodes, s.Density, s.MinHops, s.MaxHops
	if nodes == 0 {
		nodes = 300
	}
	if density == 0 {
		density = 6
	}
	if minHops == 0 {
		minHops = 4
	}
	if maxHops == 0 {
		maxHops = 10
	}
	duration, capacity, cbr = s.Duration, s.Capacity, s.CBRRate
	if duration == 0 {
		duration = 200
	}
	if capacity == 0 {
		capacity = 2e4
	}
	if cbr == 0 {
		cbr = 1e4
	} else {
		cbr = rateOrBacklogged(cbr)
	}
	return
}

func runSession(s Spec, h *progressHandle) (*Result, error) {
	nodes, density, minHops, maxHops, duration, capacity, cbr := s.sessionDefaults()
	nw, err := omnc.GenerateNetwork(nodes, density, s.Seed)
	if err != nil {
		return nil, err
	}
	if s.MeanQuality > 0 {
		phy, err := omnc.DefaultPHY().CalibrateGain(s.MeanQuality)
		if err != nil {
			return nil, err
		}
		if nw, err = nw.WithPHY(phy); err != nil {
			return nil, err
		}
	}
	src, dst := -1, -1
	if s.Src != nil {
		src, dst = *s.Src, *s.Dst
	} else {
		if src, dst, err = pickSession(nw, s.Seed, minHops, maxHops); err != nil {
			return nil, err
		}
	}
	sg, err := omnc.SelectForwarders(nw, src, dst)
	if err != nil {
		return nil, err
	}

	cfg := omnc.SessionConfig{
		Scheme:              s.scheme(),
		Redundancy:          s.Redundancy,
		Capacity:            capacity,
		Duration:            duration,
		CBRRate:             cbr,
		Seed:                s.Seed,
		QueueSampleInterval: 0.5,
		Faults:              s.Faults,
		Report:              s.Report,
		EngineWorkers:       s.EngineWorkers,
	}
	// Rank fidelity by default: exact innovation behaviour at a fraction of
	// the arithmetic cost; air time still models full 1 KB payloads.
	cfg.Coding = omnc.DefaultCodingParams()
	cfg.Coding.BlockSize = 8
	cfg.Coding.Field = s.field()
	cfg.AirPacketSize = cfg.Coding.CoeffBytes() + 1024

	var traceBuf *bytes.Buffer
	if s.Trace {
		traceBuf = &bytes.Buffer{}
		cfg.Trace = trace.NewJSONLWriter(traceBuf)
	}

	var protoVal omnc.Protocol
	switch p := s.Protocol; p {
	case "", experiments.ProtoOMNC:
		protoVal = omnc.OMNC(omnc.RateOptions{})
	case experiments.ProtoMORE:
		protoVal = omnc.MORE()
	case experiments.ProtoOldMORE:
		protoVal = omnc.OldMORE()
	case experiments.ProtoETX:
		protoVal = omnc.ETX()
	default:
		return nil, fmt.Errorf("jobs: unknown protocol %q", p)
	}

	trials := s.trials()
	stats := make([]*omnc.SessionStats, trials)
	err = parallel.ForEachCtx(h.ctx, trials, parallel.Workers(s.Workers), func(i int) error {
		tcfg := cfg
		if trials > 1 {
			tcfg.Seed = seedmix.Derive(s.Seed, streamSessionTrial, int64(i))
		}
		st, err := omnc.Run(nw, src, dst, protoVal, tcfg)
		if err != nil {
			return fmt.Errorf("trial %d: %w", i, err)
		}
		stats[i] = st
		if h.p != nil {
			h.p.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Spec: s, Session: stats, Subgraph: sg, Network: nw,
		Src: &src, Dst: &dst,
	}
	if trials > 1 {
		tps := make([]float64, trials)
		for i, st := range stats {
			tps[i] = st.Throughput
		}
		res.Summary = fmt.Sprintf("%s, %d trials; throughput %s", stats[0].Policy, trials, metrics.Summarize(tps))
	} else {
		st := stats[0]
		res.Summary = fmt.Sprintf("%s %d -> %d; throughput %.0f bytes/s, %d generations decoded",
			st.Policy, src, dst, st.Throughput, st.GenerationsDecoded)
		if s.Report {
			if st.Report == nil {
				return nil, fmt.Errorf("jobs: reporting was requested but the session produced no report")
			}
			buf, err := json.MarshalIndent(st.Report, "", "  ")
			if err != nil {
				return nil, err
			}
			res.Artifacts = append(res.Artifacts, newArtifact("report.json", append(buf, '\n')))
		}
		if s.Trace {
			res.Artifacts = append(res.Artifacts, newArtifact("trace.jsonl", traceBuf.Bytes()))
		}
	}
	return res, nil
}

func runTopo(s Spec) (*Result, error) {
	nodes, density, _, _, _, _, _ := s.sessionDefaults()
	nw, err := omnc.GenerateNetwork(nodes, density, s.Seed)
	if err != nil {
		return nil, err
	}
	if s.MeanQuality > 0 {
		phy, err := omnc.DefaultPHY().CalibrateGain(s.MeanQuality)
		if err != nil {
			return nil, err
		}
		if nw, err = nw.WithPHY(phy); err != nil {
			return nil, err
		}
	}
	a, err := linksArtifact(nw)
	if err != nil {
		return nil, err
	}
	linkCount := 0
	for i := 0; i < nw.Size(); i++ {
		linkCount += len(nw.Neighbors(i))
	}
	return &Result{
		Spec: s, Network: nw, Artifacts: []Artifact{a},
		Summary: fmt.Sprintf("%d nodes, %d directed links, mean link quality %.3f",
			nw.Size(), linkCount, nw.MeanLinkQuality()),
	}, nil
}

func runLoopback(s Spec, h *progressHandle) (*Result, error) {
	rate := s.Rate
	if rate == 0 {
		rate = 200_000
	}
	genSize := s.GenerationSize
	if genSize == 0 {
		genSize = 8
	}
	block := s.BlockSize
	if block == 0 {
		block = 64
	}
	duration := s.Duration
	if duration == 0 {
		duration = 2
	}
	nw, err := omnc.NetworkFromMatrix([][]float64{
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	if err != nil {
		return nil, err
	}
	sg, err := core.SelectNodes(nw, 0, 3)
	if err != nil {
		return nil, err
	}
	rates := make([]float64, sg.Size())
	for i := range rates {
		rates[i] = rate
	}
	rates[sg.Dst] = 0

	trials := s.trials()
	results := make([]*drift.Result, trials)
	err = parallel.ForEachCtx(h.ctx, trials, parallel.Workers(s.Workers), func(i int) error {
		trialSeed := s.Seed
		if trials > 1 {
			trialSeed = seedmix.Derive(s.Seed, streamLoopbackTrial, int64(i))
		}
		r, err := drift.RunSession(nw, sg, drift.Config{
			Coding:     coding.Params{GenerationSize: genSize, BlockSize: block, Field: s.field()},
			Scheme:     s.scheme(),
			Redundancy: s.Redundancy,
			Rates:      rates,
			Duration:   time.Duration(duration * float64(time.Second)),
			Seed:       trialSeed,
		})
		if err != nil {
			return fmt.Errorf("trial %d: %w", i, err)
		}
		results[i] = r
		if h.p != nil {
			h.p.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var decoded, corrupted int
	for _, r := range results {
		decoded += r.GenerationsDecoded
		corrupted += r.Corrupted
	}
	return &Result{
		Spec: s, Loopback: results, Subgraph: sg, Network: nw,
		Summary: fmt.Sprintf("%d generations decoded over %d session(s), %d corrupted",
			decoded, trials, corrupted),
	}, nil
}

func runBench(s Spec, h *progressHandle) (*Result, error) {
	iters := s.Iters
	if iters == 0 {
		iters = 5
	}
	r, err := benchreport.Record(h.ctx, iters)
	if err != nil {
		return nil, err
	}
	buf, err := r.Encode()
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec: s, Bench: r, Artifacts: []Artifact{newArtifact("bench.json", buf)},
		Summary: fmt.Sprintf("%d scenarios benchmarked, %d iterations each", len(r.Benchmarks), iters),
	}, nil
}

// pickSession samples endpoints with the paper's hop constraint — the exact
// procedure (and RNG stream) omnc-sim has always used, now shared by every
// surface that runs a session job.
func pickSession(nw *omnc.Network, seed int64, minHops, maxHops int) (int, int, error) {
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}
	rng := rand.New(rand.NewSource(seedmix.Derive(seed, streamSessionPlacement)))
	for attempt := 0; attempt < 5000; attempt++ {
		src := rng.Intn(nw.Size())
		dst := rng.Intn(nw.Size())
		if src == dst {
			continue
		}
		h := graph.HopCounts(adj, src)[dst]
		if h < minHops || h > maxHops {
			continue
		}
		if _, err := omnc.SelectForwarders(nw, src, dst); err != nil {
			continue
		}
		return src, dst, nil
	}
	return 0, 0, fmt.Errorf("jobs: no session with %d-%d hops found", minHops, maxHops)
}
