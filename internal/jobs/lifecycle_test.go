package jobs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openQueue is the test helper: a fresh queue over path with fast retries.
func openQueue(t *testing.T, path string) *Queue {
	t.Helper()
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// claimAll drains the queue, returning the claim order.
func claimAll(t *testing.T, q *Queue) []string {
	t.Helper()
	var ids []string
	for {
		j, ok, err := q.Claim()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return ids
		}
		ids = append(ids, j.ID)
	}
}

func TestQueuePriorityThenFIFOClaim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q := openQueue(t, path)
	a, _ := q.SubmitPriority(sessionSpec(), 0)
	b, _ := q.SubmitPriority(Spec{Version: 1, Kind: KindFig1}, 5)
	c, _ := q.SubmitPriority(Spec{Version: 1, Kind: KindBench}, 5)
	d, _ := q.SubmitPriority(Spec{Version: 1, Kind: KindTopo}, -3)
	e, _ := q.Submit(Spec{Version: 1, Kind: KindDrift})

	want := []string{b.ID, c.ID, a.ID, e.ID, d.ID}
	if got := claimAll(t, q); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("claim order %v, want %v (priority desc, FIFO within)", got, want)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Priorities are journaled: the same order re-emerges after a restart
	// (recovery requeues the running jobs in submission order, but Claim
	// re-sorts by priority).
	q2 := openQueue(t, path)
	defer q2.Close()
	if got := claimAll(t, q2); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("claim order after reopen %v, want %v", got, want)
	}
}

func TestQueueSetPriority(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q := openQueue(t, path)
	a, _ := q.Submit(Spec{Version: 1, Kind: KindFig1})
	b, _ := q.Submit(Spec{Version: 1, Kind: KindBench})

	j, err := q.SetPriority(b.ID, 9)
	if err != nil {
		t.Fatal(err)
	}
	if j.Priority != 9 {
		t.Fatalf("priority = %d, want 9", j.Priority)
	}
	// Reprioritization is durable.
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q = openQueue(t, path)
	defer q.Close()
	if got := claimAll(t, q); fmt.Sprint(got) != fmt.Sprint([]string{b.ID, a.ID}) {
		t.Fatalf("claim order %v, want [%s %s]", got, b.ID, a.ID)
	}
	// Only pending jobs can move: a and b are running now.
	if _, err := q.SetPriority(a.ID, 1); err == nil {
		t.Fatal("SetPriority on a running job must fail")
	}
	if _, err := q.SetPriority("j99", 1); err == nil {
		t.Fatal("SetPriority on an unknown job must fail")
	}
}

// TestPriorityStaysOutOfContentAddress pins the design point: priority is
// queue metadata, so the same experiment submitted at any priority shares
// one content-addressed run directory.
func TestPriorityStaysOutOfContentAddress(t *testing.T) {
	q := openQueue(t, filepath.Join(t.TempDir(), "queue.jsonl"))
	defer q.Close()
	s := sessionSpec()
	urgent, err := q.SubmitPriority(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	casual, err := q.SubmitPriority(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if urgent.Spec.Hash() != s.Hash() || casual.Spec.Hash() != s.Hash() {
		t.Fatalf("priority leaked into the content address: %s / %s vs %s",
			urgent.Spec.Hash(), casual.Spec.Hash(), s.Hash())
	}
}

func TestQueueCancelPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q := openQueue(t, path)
	j, _ := q.Submit(Spec{Version: 1, Kind: KindFig1})

	got, err := q.Cancel(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobCanceled || got.FinishedAt == nil {
		t.Fatalf("after cancel: %+v, want canceled with FinishedAt", got)
	}
	if !got.State.Terminal() {
		t.Fatal("canceled must be terminal")
	}
	// Canceled jobs are never claimed.
	if _, ok, _ := q.Claim(); ok {
		t.Fatal("canceled job was claimed")
	}
	// Cancel is idempotent.
	if again, err := q.Cancel(j.ID); err != nil || again.State != JobCanceled {
		t.Fatalf("second cancel: %+v err=%v", again, err)
	}
	// Worker-side transitions racing the cancel identify themselves.
	if err := q.Done(j.ID, "x"); !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("Done on canceled: %v, want ErrJobCanceled", err)
	}
	if err := q.Fail(j.ID, errors.New("boom")); !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("Fail on canceled: %v, want ErrJobCanceled", err)
	}
	if err := q.Requeue(j.ID); !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("Requeue on canceled: %v, want ErrJobCanceled", err)
	}
	// The cancellation is durable: a restart must not resurrect the job.
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q2 := openQueue(t, path)
	defer q2.Close()
	fin, ok := q2.Get(j.ID)
	if !ok || fin.State != JobCanceled {
		t.Fatalf("after reopen: %+v, want canceled", fin)
	}
	if _, ok, _ := q2.Claim(); ok {
		t.Fatal("canceled job resurrected by replay")
	}
	if _, err := q2.Cancel("j42"); err == nil {
		t.Fatal("cancel of unknown job must fail")
	}
}

func TestQueueCancelRunningSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q := openQueue(t, path)
	j, _ := q.Submit(Spec{Version: 1, Kind: KindFig1})
	if _, ok, err := q.Claim(); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	got, err := q.Cancel(j.ID)
	if err != nil || got.State != JobCanceled {
		t.Fatalf("cancel running: %+v err=%v", got, err)
	}
	// The worker eventually notices and tries to close out its claim; the
	// canceled terminal record must win.
	if err := q.Requeue(j.ID); !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("requeue after cancel: %v, want ErrJobCanceled", err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash recovery requeues running jobs — but this one is canceled, not
	// running, so it stays dead.
	q2 := openQueue(t, path)
	defer q2.Close()
	fin, _ := q2.Get(j.ID)
	if fin.State != JobCanceled || fin.Requeues != 0 {
		t.Fatalf("after restart: %+v, want canceled with no requeues", fin)
	}
	// Cancel on a done job is a distinct, terminal conflict.
	d, _ := q2.Submit(Spec{Version: 1, Kind: KindBench})
	if _, ok, _ := q2.Claim(); !ok {
		t.Fatal("claim")
	}
	if err := q2.Done(d.ID, "0123456789abcdef"); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Cancel(d.ID); !errors.Is(err, ErrJobTerminal) {
		t.Fatalf("cancel done job: %v, want ErrJobTerminal", err)
	}
}

// claimWithin polls Claim until a job is claimable or the deadline passes —
// the backoff window is wall-clock, so tests wait it out.
func claimWithin(t *testing.T, q *Queue, d time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		j, ok, err := q.Claim()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatal("nothing claimable before the deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestQueueRetryBackoffThenDeadLetter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q := openQueue(t, path)
	defer q.Close()
	q.MaxRetries = 2
	q.RetryBase = 30 * time.Millisecond

	j, _ := q.Submit(Spec{Version: 1, Kind: KindFig1})
	first := claimWithin(t, q, time.Second)
	if first.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", first.Attempts)
	}
	if err := q.Fail(j.ID, Retryable(errors.New("transient io"))); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(j.ID)
	if got.State != JobPending || got.NotBefore == nil || got.Error != "transient io" {
		t.Fatalf("after retryable fail: %+v, want pending with backoff and reason", got)
	}
	if !got.NotBefore.After(time.Now()) {
		t.Fatalf("backoff deadline %v is not in the future", got.NotBefore)
	}
	// Inside the backoff window the job is invisible to Claim.
	if _, ok, _ := q.Claim(); ok {
		t.Fatal("claimed a job inside its backoff window")
	}
	// The queue's own timer wakes waiters when the window expires.
	wake := q.Wait()
	select {
	case <-wake:
	case <-time.After(2 * time.Second):
		t.Fatal("backoff expiry never woke the queue")
	}
	second := claimWithin(t, q, time.Second)
	if second.ID != j.ID || second.Attempts != 2 {
		t.Fatalf("second claim: %+v, want attempt 2 of %s", second, j.ID)
	}
	// Second retry backs off twice as long (journal says so durably).
	if err := q.Fail(j.ID, Retryable(errors.New("transient io again"))); err != nil {
		t.Fatal(err)
	}
	third := claimWithin(t, q, 2*time.Second)
	if third.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", third.Attempts)
	}
	// Retries exhausted: the same retryable error now dead-letters.
	if err := q.Fail(j.ID, Retryable(errors.New("still broken"))); err != nil {
		t.Fatal(err)
	}
	fin, _ := q.Get(j.ID)
	if fin.State != JobFailed || fin.Error != "still broken" || fin.Attempts != 3 {
		t.Fatalf("after exhausted retries: %+v, want failed at attempt 3", fin)
	}
	if _, ok, _ := q.Claim(); ok {
		t.Fatal("dead-lettered job was claimed")
	}
}

func TestQueueNonRetryableAndZeroRetriesFailTerminally(t *testing.T) {
	q := openQueue(t, filepath.Join(t.TempDir(), "queue.jsonl"))
	defer q.Close()
	q.MaxRetries = 5

	// A plain error is terminal no matter the retry budget.
	a, _ := q.Submit(Spec{Version: 1, Kind: KindFig1})
	claimWithin(t, q, time.Second)
	if err := q.Fail(a.ID, errors.New("bad spec semantics")); err != nil {
		t.Fatal(err)
	}
	if got, _ := q.Get(a.ID); got.State != JobFailed || got.Attempts != 1 {
		t.Fatalf("non-retryable fail: %+v, want failed at attempt 1", got)
	}

	// MaxRetries 0 turns even retryable failures terminal.
	q.MaxRetries = 0
	b, _ := q.Submit(Spec{Version: 1, Kind: KindBench})
	claimWithin(t, q, time.Second)
	if err := q.Fail(b.ID, Retryable(errors.New("transient"))); err != nil {
		t.Fatal(err)
	}
	if got, _ := q.Get(b.ID); got.State != JobFailed {
		t.Fatalf("retryable fail with no budget: %+v, want failed", got)
	}

	// Retryable(nil) stays nil, so success paths cannot accidentally wrap.
	if Retryable(nil) != nil {
		t.Fatal("Retryable(nil) must be nil")
	}
	if IsRetryable(errors.New("x")) {
		t.Fatal("plain errors must not read as retryable")
	}
	if !IsRetryable(fmt.Errorf("wrapped: %w", Retryable(errors.New("x")))) {
		t.Fatal("retryable marker must survive wrapping")
	}
}

// TestQueueBackoffSurvivesRestart: a retry deadline is journal state, so a
// daemon restart inside the backoff window keeps the job invisible until
// the window passes — and re-arms the wake timer.
func TestQueueBackoffSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q := openQueue(t, path)
	q.MaxRetries = 1
	q.RetryBase = 300 * time.Millisecond
	j, _ := q.Submit(Spec{Version: 1, Kind: KindFig1})
	claimWithin(t, q, time.Second)
	if err := q.Fail(j.ID, Retryable(errors.New("flaky"))); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2 := openQueue(t, path)
	defer q2.Close()
	got, _ := q2.Get(j.ID)
	if got.State != JobPending || got.NotBefore == nil || got.Attempts != 1 {
		t.Fatalf("after restart: %+v, want pending attempt-1 with backoff", got)
	}
	if _, ok, _ := q2.Claim(); ok {
		t.Fatal("restart forgave the backoff window")
	}
	wake := q2.Wait()
	select {
	case <-wake:
	case <-time.After(2 * time.Second):
		t.Fatal("reopened queue never re-armed the backoff wake")
	}
	if again := claimWithin(t, q2, time.Second); again.ID != j.ID || again.Attempts != 2 {
		t.Fatalf("claim after restart+backoff: %+v", again)
	}
}

// TestQueueReplayLifecycleOpsWithTornTail drives every new journal op —
// priority, cancel, retry — through a crash (torn final line), a recovery,
// and post-recovery appends, proving replay and truncation hold for the
// extended record set.
func TestQueueReplayLifecycleOpsWithTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q := openQueue(t, path)
	q.MaxRetries = 3
	q.RetryBase = time.Millisecond

	j1, _ := q.Submit(Spec{Version: 1, Kind: KindFig1})             // will be canceled
	j2, _ := q.SubmitPriority(Spec{Version: 1, Kind: KindBench}, 4) // will retry
	j3, _ := q.Submit(Spec{Version: 1, Kind: KindTopo})             // stays pending
	if _, err := q.SetPriority(j3.ID, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	if got := claimWithin(t, q, time.Second); got.ID != j2.ID {
		t.Fatalf("claimed %s, want the high-priority %s", got.ID, j2.ID)
	}
	if err := q.Fail(j2.ID, Retryable(errors.New("blip"))); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: a torn fragment after the lifecycle records.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"canc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q2 := openQueue(t, path)
	g1, _ := q2.Get(j1.ID)
	g2, _ := q2.Get(j2.ID)
	g3, _ := q2.Get(j3.ID)
	if g1.State != JobCanceled {
		t.Fatalf("j1 = %+v, want canceled", g1)
	}
	if g2.State != JobPending || g2.Priority != 4 || g2.Attempts != 1 || g2.Error != "blip" {
		t.Fatalf("j2 = %+v, want pending p4 attempt-1 'blip'", g2)
	}
	if g3.State != JobPending || g3.Priority != -1 {
		t.Fatalf("j3 = %+v, want pending p-1", g3)
	}
	// Post-recovery appends land on a clean boundary and survive another
	// replay intact.
	j4, err := q2.SubmitPriority(Spec{Version: 1, Kind: KindDrift}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	q3 := openQueue(t, path)
	defer q3.Close()
	if got := claimAll(t, q3); fmt.Sprint(got) != fmt.Sprint([]string{j2.ID, j4.ID, j3.ID}) {
		t.Fatalf("claim order after double replay: %v, want [%s %s %s]", got, j2.ID, j4.ID, j3.ID)
	}
}
