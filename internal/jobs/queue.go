package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// JobState is the lifecycle position of a queued job. Transitions are
// pending -> running -> done | failed | canceled; the backward edges are
// running -> pending (a requeue, taken on graceful shutdown and on crash
// recovery, or a retry after a retryable failure) and pending -> canceled
// (a cancellation before the job ever ran).
type JobState string

const (
	JobPending  JobState = "pending"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final: no transition leaves it.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// ErrJobCanceled is wrapped by transitions that lose a race against a
// cancellation: the worker that claimed the job calls Done/Fail/Requeue,
// finds the job already canceled, and can tell this benign outcome apart
// from a real state-machine violation with errors.Is.
var ErrJobCanceled = errors.New("jobs: job canceled")

// ErrJobTerminal is wrapped by Cancel when the job already finished (done
// or failed) — there is nothing left to cancel.
var ErrJobTerminal = errors.New("jobs: job already terminal")

// retryableError marks a failure as transient. See Retryable.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// Retryable wraps err so Fail treats it as transient: the job is returned
// to pending with exponential backoff instead of failing terminally, until
// its attempts exceed the queue's MaxRetries. Wrapping nil returns nil.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// IsRetryable reports whether err (or anything it wraps) was marked with
// Retryable.
func IsRetryable(err error) bool {
	var r *retryableError
	return errors.As(err, &r)
}

// Job is one queued experiment: the Spec plus its lifecycle record. Copies
// returned by the Queue are snapshots; mutating them affects nothing.
type Job struct {
	ID    string   `json:"id"`
	Spec  Spec     `json:"spec"`
	State JobState `json:"state"`
	// Priority orders dispatch: higher claims first, ties break FIFO by
	// submission order. Priority is queue metadata, deliberately outside
	// the Spec, so it never enters the content address — the same
	// experiment submitted urgent and casual lands in one run directory.
	Priority int `json:"priority,omitempty"`
	// Error is the failure reason: final in state failed, and the latest
	// attempt's reason while a retryable failure waits to re-run.
	Error string `json:"error,omitempty"`
	// Run is the results-store run ID, set only in state done.
	Run string `json:"run,omitempty"`
	// Requeues counts how many times the job was returned to pending
	// without blame (daemon restarts mid-run, graceful-shutdown drains).
	Requeues int `json:"requeues,omitempty"`
	// Attempts counts how many times the job entered running. Retries
	// after retryable failures grow it; requeues re-run the same attempt.
	Attempts int `json:"attempts,omitempty"`
	// NotBefore is the retry-backoff deadline: while set and in the
	// future, Claim skips the job.
	NotBefore   *time.Time `json:"not_before,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// journalRecord is one line of the queue's JSONL journal. The journal is the
// queue's single source of truth: every state transition is one appended,
// fsync'd line, and opening a queue replays the journal from the top. A
// crash between transitions therefore loses at most the transition being
// written, never a submitted job.
type journalRecord struct {
	Op   string    `json:"op"` // submit | start | done | fail | requeue | retry | cancel | priority
	ID   string    `json:"id"`
	Time time.Time `json:"time"`
	Spec *Spec     `json:"spec,omitempty"`  // submit only
	Err  string    `json:"error,omitempty"` // fail and retry
	Run  string    `json:"run,omitempty"`   // done only
	// Priority rides the priority op (and submit, when non-zero).
	Priority int `json:"priority,omitempty"`
	// NotBefore rides the retry op: the backoff deadline, durable so a
	// restarted daemon keeps honouring it.
	NotBefore *time.Time `json:"not_before,omitempty"`
}

// Queue is a crash-safe, disk-backed priority queue of experiment jobs.
// Dispatch order is priority-then-FIFO. All methods are safe for
// concurrent use.
type Queue struct {
	// MaxRetries is how many times a job that fails with a Retryable error
	// is re-run before failing terminally (0 = never retry). Set it before
	// the queue is used concurrently.
	MaxRetries int
	// RetryBase is the first retry's backoff delay; each further retry
	// doubles it. Set it before the queue is used concurrently.
	RetryBase time.Duration

	mu     sync.Mutex
	f      *os.File
	jobs   map[string]*Job
	order  []string // submission order, the FIFO tie-break within a priority
	seq    int
	closed bool
	timers []*time.Timer

	// wake is closed and replaced whenever a job becomes claimable, so the
	// scheduler can block on Wait instead of polling.
	wake chan struct{}
}

// OpenQueue opens (or creates) the journal at path and replays it. Jobs
// found in state running did not survive their previous process — they are
// requeued (with a journal record of their own), so a daemon killed mid-job
// re-runs the work after restart, bit-identically from the Spec's seed.
// Jobs canceled or mid-backoff stay exactly where the journal left them.
func OpenQueue(path string) (*Queue, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("jobs: queue: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: queue: %w", err)
	}
	q := &Queue{RetryBase: time.Second, f: f, jobs: make(map[string]*Job), wake: make(chan struct{})}
	if err := q.replay(); err != nil {
		f.Close()
		return nil, err
	}
	// Recover: a running job's process is gone (it was us, before a crash
	// or kill). Requeue through the journal so the recovery itself is
	// durable. Canceled jobs are terminal and stay canceled.
	for _, id := range q.order {
		switch j := q.jobs[id]; {
		case j.State == JobRunning:
			if err := q.transition(id, JobRunning, JobPending, journalRecord{Op: "requeue"}); err != nil {
				f.Close()
				return nil, err
			}
		case j.State == JobPending && j.NotBefore != nil && time.Now().Before(*j.NotBefore):
			// The restart does not forgive the backoff; re-arm its wake.
			q.armWake(*j.NotBefore)
		}
	}
	return q, nil
}

// replay rebuilds the in-memory state from the journal. Records are applied
// in order; a torn final line (crash mid-append) is tolerated, dropped AND
// truncated away, so the next append starts on a clean line boundary instead
// of concatenating onto the fragment and corrupting the journal for the
// replay after this one.
func (q *Queue) replay() error {
	if _, err := q.f.Seek(0, 0); err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	r := bufio.NewReaderSize(q.f, 1<<20)
	var off, goodEnd int64
	line := 0
	for {
		raw, rerr := r.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("jobs: queue: %w", rerr)
		}
		if len(raw) > 0 {
			line++
			off += int64(len(raw))
			if rerr == io.EOF {
				// The final line is unterminated. Each append writes record
				// plus newline in one Write before fsync, so this append
				// never completed and was never acknowledged as durable —
				// even if the fragment happens to parse, drop it.
				break
			}
			trimmed := bytes.TrimSuffix(raw, []byte("\n"))
			if len(trimmed) > 0 {
				var rec journalRecord
				if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
					// Only the final line may be torn; anything else is
					// corruption worth failing loudly over.
					if _, perr := r.Peek(1); perr == io.EOF {
						break
					}
					return fmt.Errorf("jobs: queue: journal line %d corrupt: %v", line, uerr)
				}
				if aerr := q.apply(rec); aerr != nil {
					return fmt.Errorf("jobs: queue: journal line %d: %w", line, aerr)
				}
			}
			goodEnd = off
		}
		if rerr == io.EOF {
			break
		}
	}
	if off > goodEnd {
		if err := q.f.Truncate(goodEnd); err != nil {
			return fmt.Errorf("jobs: queue: %w", err)
		}
	}
	if _, err := q.f.Seek(goodEnd, 0); err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	return nil
}

// apply folds one journal record into the in-memory state.
func (q *Queue) apply(rec journalRecord) error {
	switch rec.Op {
	case "submit":
		if rec.Spec == nil {
			return fmt.Errorf("submit without spec")
		}
		if _, dup := q.jobs[rec.ID]; dup {
			return fmt.Errorf("duplicate job id %q", rec.ID)
		}
		q.jobs[rec.ID] = &Job{ID: rec.ID, Spec: *rec.Spec, State: JobPending,
			Priority: rec.Priority, SubmittedAt: rec.Time}
		q.order = append(q.order, rec.ID)
		var n int
		if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > q.seq {
			q.seq = n
		}
	case "start", "done", "fail", "requeue", "retry", "cancel", "priority":
		j, ok := q.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("%s for unknown job %q", rec.Op, rec.ID)
		}
		switch rec.Op {
		case "start":
			j.State, j.StartedAt = JobRunning, &rec.Time
			j.Attempts++
			j.NotBefore = nil
		case "done":
			j.State, j.Run, j.FinishedAt = JobDone, rec.Run, &rec.Time
			j.Error = ""
		case "fail":
			j.State, j.Error, j.FinishedAt = JobFailed, rec.Err, &rec.Time
		case "requeue":
			j.State, j.StartedAt = JobPending, nil
			j.Requeues++
		case "retry":
			j.State, j.StartedAt = JobPending, nil
			j.Error = rec.Err
			j.NotBefore = rec.NotBefore
		case "cancel":
			j.State, j.FinishedAt = JobCanceled, &rec.Time
			j.NotBefore = nil
		case "priority":
			j.Priority = rec.Priority
		}
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// append writes one journal record durably (fsync) and folds it in.
func (q *Queue) append(rec journalRecord) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	if _, err := q.f.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	return q.apply(rec)
}

// Submit validates and enqueues a Spec at the default priority, returning
// the job snapshot.
func (q *Queue) Submit(s Spec) (Job, error) {
	return q.SubmitPriority(s, 0)
}

// SubmitPriority is Submit with a dispatch priority: higher claims first,
// FIFO within a priority. The priority is queue metadata only — it never
// enters the Spec or its content address.
func (q *Queue) SubmitPriority(s Spec, priority int) (Job, error) {
	if err := s.Validate(); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	id := fmt.Sprintf("j%d", q.seq)
	rec := journalRecord{Op: "submit", ID: id, Time: time.Now().UTC(), Spec: &s, Priority: priority}
	if err := q.append(rec); err != nil {
		return Job{}, err
	}
	q.wakeLocked()
	return *q.jobs[id], nil
}

// SetPriority reprioritizes a pending job through the journal. Running and
// terminal jobs cannot be reprioritized.
func (q *Queue) SetPriority(id string, priority int) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.transition(id, JobPending, JobPending, journalRecord{Op: "priority", Priority: priority}); err != nil {
		return Job{}, err
	}
	q.wakeLocked()
	return *q.jobs[id], nil
}

// Claim atomically moves the best pending job to running and returns it:
// the highest priority wins, ties break FIFO by submission order, and jobs
// inside their retry-backoff window are skipped. ok is false when nothing
// is claimable right now (the queue wakes Wait-ers when a backoff expires).
func (q *Queue) Claim() (Job, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	best := ""
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != JobPending {
			continue
		}
		if j.NotBefore != nil && now.Before(*j.NotBefore) {
			continue
		}
		// Strict inequality keeps the earliest submission among ties.
		if best == "" || j.Priority > q.jobs[best].Priority {
			best = id
		}
	}
	if best == "" {
		return Job{}, false, nil
	}
	if err := q.transition(best, JobPending, JobRunning, journalRecord{Op: "start"}); err != nil {
		return Job{}, false, err
	}
	return *q.jobs[best], true, nil
}

// Done marks a running job completed, recording its results-store run ID.
func (q *Queue) Done(id, runID string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.transition(id, JobRunning, JobDone, journalRecord{Op: "done", Run: runID})
}

// Fail ends a running job's attempt with the reason. A cause marked with
// Retryable sends the job back to pending with exponential backoff
// (RetryBase doubling per attempt) until its attempts exceed MaxRetries;
// everything else — and the attempt after the last retry — fails the job
// terminally.
func (q *Queue) Fail(id string, cause error) error {
	msg := "unknown failure"
	if cause != nil {
		msg = cause.Error()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok && j.State == JobRunning && IsRetryable(cause) && j.Attempts <= q.MaxRetries {
		shift := j.Attempts - 1
		if shift > 10 {
			shift = 10 // cap the doubling; backoff is already minutes-long
		}
		nb := time.Now().UTC().Add(q.RetryBase << shift).Truncate(0)
		rec := journalRecord{Op: "retry", Err: msg, NotBefore: &nb}
		if err := q.transition(id, JobRunning, JobPending, rec); err != nil {
			return err
		}
		q.armWake(nb)
		return nil
	}
	return q.transition(id, JobRunning, JobFailed, journalRecord{Op: "fail", Err: msg})
}

// Requeue returns a running job to pending — the graceful-shutdown path for
// claimed-but-unfinished work. The attempt is not charged against retries.
func (q *Queue) Requeue(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.transition(id, JobRunning, JobPending, journalRecord{Op: "requeue"}); err != nil {
		return err
	}
	q.wakeLocked()
	return nil
}

// Cancel moves a pending or running job to the terminal state canceled,
// durably: the journal records the transition, so a restart replays the
// cancellation instead of requeuing the job. Canceling an already-canceled
// job is an idempotent success; canceling a done or failed job returns an
// error wrapping ErrJobTerminal. Cancel does not interrupt a running job's
// process — the daemon pairs it with a per-job context cancel.
func (q *Queue) Cancel(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("jobs: queue: unknown job %q", id)
	}
	switch j.State {
	case JobCanceled:
		return *j, nil
	case JobDone, JobFailed:
		return Job{}, fmt.Errorf("jobs: queue: job %s is %s: %w", id, j.State, ErrJobTerminal)
	}
	if err := q.transition(id, j.State, JobCanceled, journalRecord{Op: "cancel"}); err != nil {
		return Job{}, err
	}
	return *j, nil
}

// transition enforces the state machine and journals the edge, filling the
// record's ID and Time. Callers hold q.mu (OpenQueue's recovery runs before
// the Queue escapes, so it is exempt).
func (q *Queue) transition(id string, from, to JobState, rec journalRecord) error {
	j, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: queue: unknown job %q", id)
	}
	if j.State != from {
		if j.State == JobCanceled {
			// The common benign race: a worker finishing (or draining) a
			// job that a DELETE canceled out from under it.
			return fmt.Errorf("jobs: queue: job %s cannot move to %s: %w", id, to, ErrJobCanceled)
		}
		return fmt.Errorf("jobs: queue: job %s is %s, not %s (cannot move to %s)", id, j.State, from, to)
	}
	rec.ID, rec.Time = id, time.Now().UTC()
	return q.append(rec)
}

// Get returns a snapshot of the job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of every job in submission order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	return out
}

// Wait returns a channel that is closed the next time a job becomes
// claimable (submit, requeue, reprioritize or an expired retry backoff).
// Callers re-Claim after it fires.
func (q *Queue) Wait() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.wake
}

// wakeLocked releases every Wait-er; q.mu held.
func (q *Queue) wakeLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// armWake schedules a wake for a retry-backoff deadline so blocked workers
// re-Claim when the job becomes eligible. Safe with or without q.mu held —
// the timer body takes the lock itself.
func (q *Queue) armWake(nb time.Time) {
	d := time.Until(nb) + time.Millisecond
	if d < 0 {
		d = 0
	}
	t := time.AfterFunc(d, func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		if q.closed {
			return
		}
		q.wakeLocked()
	})
	q.timers = append(q.timers, t)
}

// Close releases the journal file and stops any pending backoff wakes. The
// queue must not be used afterwards.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	for _, t := range q.timers {
		t.Stop()
	}
	q.timers = nil
	return q.f.Close()
}
