package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// JobState is the lifecycle position of a queued job. Transitions are
// strictly pending -> running -> done | failed; the only backward edge is
// running -> pending (a requeue), taken on graceful shutdown and on
// crash recovery.
type JobState string

const (
	JobPending JobState = "pending"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one queued experiment: the Spec plus its lifecycle record. Copies
// returned by the Queue are snapshots; mutating them affects nothing.
type Job struct {
	ID    string   `json:"id"`
	Spec  Spec     `json:"spec"`
	State JobState `json:"state"`
	// Error is the failure reason, set only in state failed.
	Error string `json:"error,omitempty"`
	// Run is the results-store run ID, set only in state done.
	Run string `json:"run,omitempty"`
	// Requeues counts how many times the job was returned to pending
	// (daemon restarts mid-run, graceful-shutdown drains).
	Requeues    int        `json:"requeues,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// journalRecord is one line of the queue's JSONL journal. The journal is the
// queue's single source of truth: every state transition is one appended,
// fsync'd line, and opening a queue replays the journal from the top. A
// crash between transitions therefore loses at most the transition being
// written, never a submitted job.
type journalRecord struct {
	Op   string    `json:"op"` // submit | start | done | fail | requeue
	ID   string    `json:"id"`
	Time time.Time `json:"time"`
	Spec *Spec     `json:"spec,omitempty"`  // submit only
	Err  string    `json:"error,omitempty"` // fail only
	Run  string    `json:"run,omitempty"`   // done only
}

// Queue is a crash-safe, disk-backed FIFO of experiment jobs. All methods
// are safe for concurrent use.
type Queue struct {
	mu    sync.Mutex
	f     *os.File
	jobs  map[string]*Job
	order []string // submission order, the dispatch order
	seq   int

	// wake is closed and replaced whenever a job becomes claimable, so the
	// scheduler can block on Wait instead of polling.
	wake chan struct{}
}

// OpenQueue opens (or creates) the journal at path and replays it. Jobs
// found in state running did not survive their previous process — they are
// requeued (with a journal record of their own), so a daemon killed mid-job
// re-runs the work after restart, bit-identically from the Spec's seed.
func OpenQueue(path string) (*Queue, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("jobs: queue: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: queue: %w", err)
	}
	q := &Queue{f: f, jobs: make(map[string]*Job), wake: make(chan struct{})}
	if err := q.replay(); err != nil {
		f.Close()
		return nil, err
	}
	// Recover: a running job's process is gone (it was us, before a crash
	// or kill). Requeue through the journal so the recovery itself is
	// durable.
	for _, id := range q.order {
		if q.jobs[id].State == JobRunning {
			if err := q.transition(id, JobRunning, JobPending, "requeue", "", ""); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return q, nil
}

// replay rebuilds the in-memory state from the journal. Records are applied
// in order; a torn final line (crash mid-append) is tolerated, dropped AND
// truncated away, so the next append starts on a clean line boundary instead
// of concatenating onto the fragment and corrupting the journal for the
// replay after this one.
func (q *Queue) replay() error {
	if _, err := q.f.Seek(0, 0); err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	r := bufio.NewReaderSize(q.f, 1<<20)
	var off, goodEnd int64
	line := 0
	for {
		raw, rerr := r.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("jobs: queue: %w", rerr)
		}
		if len(raw) > 0 {
			line++
			off += int64(len(raw))
			if rerr == io.EOF {
				// The final line is unterminated. Each append writes record
				// plus newline in one Write before fsync, so this append
				// never completed and was never acknowledged as durable —
				// even if the fragment happens to parse, drop it.
				break
			}
			trimmed := bytes.TrimSuffix(raw, []byte("\n"))
			if len(trimmed) > 0 {
				var rec journalRecord
				if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
					// Only the final line may be torn; anything else is
					// corruption worth failing loudly over.
					if _, perr := r.Peek(1); perr == io.EOF {
						break
					}
					return fmt.Errorf("jobs: queue: journal line %d corrupt: %v", line, uerr)
				}
				if aerr := q.apply(rec); aerr != nil {
					return fmt.Errorf("jobs: queue: journal line %d: %w", line, aerr)
				}
			}
			goodEnd = off
		}
		if rerr == io.EOF {
			break
		}
	}
	if off > goodEnd {
		if err := q.f.Truncate(goodEnd); err != nil {
			return fmt.Errorf("jobs: queue: %w", err)
		}
	}
	if _, err := q.f.Seek(goodEnd, 0); err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	return nil
}

// apply folds one journal record into the in-memory state.
func (q *Queue) apply(rec journalRecord) error {
	switch rec.Op {
	case "submit":
		if rec.Spec == nil {
			return fmt.Errorf("submit without spec")
		}
		if _, dup := q.jobs[rec.ID]; dup {
			return fmt.Errorf("duplicate job id %q", rec.ID)
		}
		q.jobs[rec.ID] = &Job{ID: rec.ID, Spec: *rec.Spec, State: JobPending, SubmittedAt: rec.Time}
		q.order = append(q.order, rec.ID)
		var n int
		if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > q.seq {
			q.seq = n
		}
	case "start", "done", "fail", "requeue":
		j, ok := q.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("%s for unknown job %q", rec.Op, rec.ID)
		}
		switch rec.Op {
		case "start":
			j.State, j.StartedAt = JobRunning, &rec.Time
		case "done":
			j.State, j.Run, j.FinishedAt = JobDone, rec.Run, &rec.Time
		case "fail":
			j.State, j.Error, j.FinishedAt = JobFailed, rec.Err, &rec.Time
		case "requeue":
			j.State, j.StartedAt = JobPending, nil
			j.Requeues++
		}
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// append writes one journal record durably (fsync) and folds it in.
func (q *Queue) append(rec journalRecord) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	if _, err := q.f.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("jobs: queue: %w", err)
	}
	return q.apply(rec)
}

// Submit validates and enqueues a Spec, returning the job snapshot.
func (q *Queue) Submit(s Spec) (Job, error) {
	if err := s.Validate(); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	id := fmt.Sprintf("j%d", q.seq)
	if err := q.append(journalRecord{Op: "submit", ID: id, Time: time.Now().UTC(), Spec: &s}); err != nil {
		return Job{}, err
	}
	q.wakeLocked()
	return *q.jobs[id], nil
}

// Claim atomically moves the oldest pending job to running and returns it.
// ok is false when nothing is pending.
func (q *Queue) Claim() (Job, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, id := range q.order {
		if q.jobs[id].State != JobPending {
			continue
		}
		if err := q.transition(id, JobPending, JobRunning, "start", "", ""); err != nil {
			return Job{}, false, err
		}
		return *q.jobs[id], true, nil
	}
	return Job{}, false, nil
}

// Done marks a running job completed, recording its results-store run ID.
func (q *Queue) Done(id, runID string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.transition(id, JobRunning, JobDone, "done", "", runID)
}

// Fail marks a running job failed with the reason.
func (q *Queue) Fail(id string, cause error) error {
	msg := "unknown failure"
	if cause != nil {
		msg = cause.Error()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.transition(id, JobRunning, JobFailed, "fail", msg, "")
}

// Requeue returns a running job to pending — the graceful-shutdown path for
// claimed-but-unfinished work.
func (q *Queue) Requeue(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.transition(id, JobRunning, JobPending, "requeue", "", ""); err != nil {
		return err
	}
	q.wakeLocked()
	return nil
}

// transition enforces the state machine and journals the edge. Callers hold
// q.mu (OpenQueue's recovery runs before the Queue escapes, so it is exempt).
func (q *Queue) transition(id string, from, to JobState, op, errMsg, runID string) error {
	j, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: queue: unknown job %q", id)
	}
	if j.State != from {
		return fmt.Errorf("jobs: queue: job %s is %s, not %s (cannot move to %s)", id, j.State, from, to)
	}
	return q.append(journalRecord{Op: op, ID: id, Time: time.Now().UTC(), Err: errMsg, Run: runID})
}

// Get returns a snapshot of the job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of every job in submission order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	return out
}

// Wait returns a channel that is closed the next time a job becomes
// claimable (submit or requeue). Callers re-Claim after it fires.
func (q *Queue) Wait() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.wake
}

// wakeLocked releases every Wait-er; q.mu held.
func (q *Queue) wakeLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// Close releases the journal file. The queue must not be used afterwards.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.f.Close()
}
