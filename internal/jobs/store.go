package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store is the results store: every completed run lands in a
// content-addressed directory root/<spec-hash> holding spec.json,
// result.json and the run's artifacts. The address is the hash of the
// canonical Spec, so re-running the same Spec would land bit-identical
// bytes; an existing landing is therefore left in place — the store is
// idempotent by construction.
type Store struct {
	root string
}

// StoredRun is the browsable head of one landed run.
type StoredRun struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	Seed      int64      `json:"seed"`
	Summary   string     `json:"summary"`
	Artifacts []Artifact `json:"artifacts,omitempty"`
}

// OpenStore opens (or creates) the store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Land writes the run's directory atomically: everything is staged under a
// temporary directory and renamed into place, so a crash mid-land leaves
// either the complete previous run or nothing — never a half-written one.
// It returns the run ID (the Spec's content address).
func (st *Store) Land(res *Result) (string, error) {
	id := res.Spec.Hash()
	tmp, err := os.MkdirTemp(st.root, ".land-*")
	if err != nil {
		return "", fmt.Errorf("jobs: store: %w", err)
	}
	defer os.RemoveAll(tmp)

	spec, err := json.MarshalIndent(res.Spec, "", "  ")
	if err != nil {
		return "", fmt.Errorf("jobs: store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "spec.json"), append(spec, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("jobs: store: %w", err)
	}
	head, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", fmt.Errorf("jobs: store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "result.json"), append(head, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("jobs: store: %w", err)
	}
	for _, a := range res.Artifacts {
		if !validArtifactName(a.Name) {
			return "", fmt.Errorf("jobs: store: artifact name %q not landable", a.Name)
		}
		if err := os.WriteFile(filepath.Join(tmp, a.Name), a.Data, 0o644); err != nil {
			return "", fmt.Errorf("jobs: store: %w", err)
		}
	}

	final := filepath.Join(st.root, id)
	// Same Spec, same bytes: an existing landing is already the content this
	// one would write, so leave it untouched. Never removing a live run
	// directory keeps relands invisible to concurrent readers, and two
	// workers landing the same Spec cannot interleave a RemoveAll between
	// each other's Renames.
	if _, err := os.Stat(final); err == nil {
		return id, nil
	}
	if err := os.Rename(tmp, final); err != nil {
		// A concurrent worker landed the same Spec between our Stat and
		// Rename; its bytes are ours, so the job still succeeded.
		if _, serr := os.Stat(final); serr == nil {
			return id, nil
		}
		return "", fmt.Errorf("jobs: store: %w", err)
	}
	return id, nil
}

// Get loads the head of a landed run.
func (st *Store) Get(id string) (StoredRun, error) {
	if !validRunID(id) {
		return StoredRun{}, fmt.Errorf("jobs: store: bad run id %q", id)
	}
	buf, err := os.ReadFile(filepath.Join(st.root, id, "result.json"))
	if err != nil {
		return StoredRun{}, fmt.Errorf("jobs: store: %w", err)
	}
	var res Result
	if err := json.Unmarshal(buf, &res); err != nil {
		return StoredRun{}, fmt.Errorf("jobs: store: run %s: %w", id, err)
	}
	return StoredRun{
		ID: id, Kind: res.Spec.Kind, Seed: res.Spec.Seed,
		Summary: res.Summary, Artifacts: res.Artifacts,
	}, nil
}

// ReadArtifact returns the bytes of one landed artifact.
func (st *Store) ReadArtifact(id, name string) ([]byte, error) {
	if !validRunID(id) {
		return nil, fmt.Errorf("jobs: store: bad run id %q", id)
	}
	if !validArtifactName(name) {
		return nil, fmt.Errorf("jobs: store: bad artifact name %q", name)
	}
	buf, err := os.ReadFile(filepath.Join(st.root, id, name))
	if err != nil {
		return nil, fmt.Errorf("jobs: store: %w", err)
	}
	return buf, nil
}

// List returns the heads of every landed run, sorted by run ID for a stable
// index.
func (st *Store) List() ([]StoredRun, error) {
	entries, err := os.ReadDir(st.root)
	if err != nil {
		return nil, fmt.Errorf("jobs: store: %w", err)
	}
	var out []StoredRun
	for _, e := range entries {
		if !e.IsDir() || !validRunID(e.Name()) {
			continue
		}
		run, err := st.Get(e.Name())
		if err != nil {
			// A run deleted or corrupted out from under us is not worth
			// failing the whole index over; skip it.
			continue
		}
		out = append(out, run)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// validRunID accepts exactly the hex addresses Land produces, keeping path
// traversal out of the store.
func validRunID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validArtifactName accepts simple file names — no separators, no dotfiles,
// and not the store's own reserved files.
func validArtifactName(name string) bool {
	if name == "" || strings.HasPrefix(name, ".") {
		return false
	}
	if name == "spec.json" || name == "result.json" {
		return false
	}
	return !strings.ContainsAny(name, "/\\")
}
