package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	src, dst := 12, 91
	specs := []Spec{
		{Version: 1, Kind: KindFig1},
		{Version: 1, Kind: KindComparison, Figures: []string{"2l"}, Sessions: 2, Duration: 60, Seed: 7, Workers: 2},
		{Version: 1, Kind: KindSession, Protocol: "more", Src: &src, Dst: &dst, Seed: 3, Scheme: "rs", Redundancy: 1.5},
		{Version: 1, Kind: KindSession, CBRRate: -1, Trials: 4},
		{Version: 1, Kind: KindTopo, Nodes: 50, MeanQuality: 0.91},
		{Version: 1, Kind: KindBench, Iters: 2},
	}
	for _, want := range specs {
		buf, err := want.Encode()
		if err != nil {
			t.Fatalf("%s: %v", want.Kind, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: round trip drifted:\n got %+v\nwant %+v", want.Kind, got, want)
		}
		if got.Hash() != want.Hash() {
			t.Fatalf("%s: hash not stable across round trip", want.Kind)
		}
		if len(got.Hash()) != 16 {
			t.Fatalf("%s: hash %q is not 16 hex chars", want.Kind, got.Hash())
		}
	}
}

// TestHashNormalization: Specs that name the same computation — list order
// permuted, defaults spelled out — must share one content address, while
// Specs naming different computations must not.
func TestHashNormalization(t *testing.T) {
	equivalent := [][2]Spec{
		{
			{Version: 1, Kind: KindComparison, Figures: []string{"2l", "3"}},
			{Version: 1, Kind: KindComparison, Figures: []string{"3", "2l"}},
		},
		{
			{Version: 1, Kind: KindComparison, Figures: []string{"2l"}, Protocols: []string{"omnc", "etx"}},
			{Version: 1, Kind: KindComparison, Figures: []string{"2l"}, Protocols: []string{"etx", "omnc"}},
		},
		{
			{Version: 1, Kind: KindComparison, Figures: []string{"2l"}},
			{Version: 1, Kind: KindComparison, Figures: []string{"2l"}, Protocols: []string{"omnc", "more", "oldmore", "etx"}},
		},
		{
			{Version: 1, Kind: KindSession},
			{Version: 1, Kind: KindSession, Scheme: "rlnc", Protocol: "omnc", MAC: "oracle", Trials: 1},
		},
	}
	for i, pair := range equivalent {
		if pair[0].Hash() != pair[1].Hash() {
			t.Errorf("pair %d: equivalent specs hash apart: %+v vs %+v", i, pair[0], pair[1])
		}
	}
	distinct := [][2]Spec{
		{
			{Version: 1, Kind: KindSession},
			{Version: 1, Kind: KindSession, Scheme: "rs"},
		},
		{
			{Version: 1, Kind: KindSession},
			{Version: 1, Kind: KindSession, Trials: 2},
		},
		{
			{Version: 1, Kind: KindComparison, Figures: []string{"2l"}},
			{Version: 1, Kind: KindComparison, Figures: []string{"3"}},
		},
	}
	for i, pair := range distinct {
		if pair[0].Hash() == pair[1].Hash() {
			t.Errorf("pair %d: different specs hash alike: %+v vs %+v", i, pair[0], pair[1])
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode([]byte(`{"version":1,"kind":"fig1","sessoins":3}`)); err == nil {
		t.Fatal("typo'd field must be rejected, not silently dropped")
	}
	if _, err := Decode([]byte(`{"version":1,"kind":"fig1"}{"version":1,"kind":"bench"}`)); err == nil {
		t.Fatal("trailing second document must be rejected")
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	src := 3
	bad := []Spec{
		{Version: 2, Kind: KindFig1},                                            // wrong version
		{Version: 1, Kind: "figment"},                                           // unknown kind
		{Version: 1, Kind: KindComparison},                                      // no figures
		{Version: 1, Kind: KindComparison, Figures: []string{"5"}},              // unknown figure
		{Version: 1, Kind: KindComparison, Figures: []string{"2r", "3"}},        // 2r is exclusive
		{Version: 1, Kind: KindComparison, Figures: []string{"2l"}, MAC: "tdm"}, // unknown mac
		{Version: 1, Kind: KindSession, Protocol: "ospf"},                       // unknown protocol
		{Version: 1, Kind: KindSession, Src: &src},                              // src without dst
		{Version: 1, Kind: KindSession, Report: true, Trials: 2},                // report needs one trial
		{Version: 1, Kind: KindSession, Trace: true, Trials: 2},                 // trace needs one trial
		{Version: 1, Kind: KindSession, Scheme: "fountain"},                     // unknown scheme
		{Version: 1, Kind: KindSession, Redundancy: 0.5},                        // sub-unit redundancy
		{Version: 1, Kind: KindSession, MeanQuality: 1.5},                       // quality outside [0,1]
		{Version: 1, Kind: KindFig1, Trials: -1},                                // negative count
		{Version: 1, Kind: KindMulti, Faults: nil, Sessions: -1},                // negative count
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) must fail validation", i, s)
		}
	}
}

func TestUnitsMatchCLIProgressTotals(t *testing.T) {
	cases := []struct {
		spec Spec
		want int
	}{
		{Spec{Version: 1, Kind: KindComparison, Figures: []string{"2l"}, Sessions: 2}, 2},
		{Spec{Version: 1, Kind: KindMulti}, 8},               // counts {1,2,4,6} x 2 trials... capped below
		{Spec{Version: 1, Kind: KindMulti, Sessions: 2}, 4},  // counts {1,2} x 2 trials
		{Spec{Version: 1, Kind: KindFaults, Sessions: 2}, 6}, // 2 sessions x churn {0,2,5}
		{Spec{Version: 1, Kind: KindSchemes}, 72},            // 4 hops x 3 schemes x 3 redundancies x 2 trials
		{Spec{Version: 1, Kind: KindSession, Trials: 5}, 5},
		{Spec{Version: 1, Kind: KindFig1}, 0}, // fig1 reports no incremental progress
		{Spec{Version: 1, Kind: KindDrift}, 0},
	}
	for _, c := range cases {
		if got := c.spec.Units(); got != c.want {
			t.Errorf("%s: Units() = %d, want %d", c.spec.Kind, got, c.want)
		}
	}
	if got := (Spec{Version: 1, Kind: KindMulti}).Units(); got != 8 {
		t.Errorf("multi default Units() = %d, want 8", got)
	}
}

// TestGoldenFig2Equivalence is the tentpole's keystone: running the golden
// figure Spec through jobs.Run must produce byte-for-byte the CSV that
// omnc-fig's pinned fixture holds — the daemon path and the CLI path are the
// same computation.
func TestGoldenFig2Equivalence(t *testing.T) {
	s := Spec{Version: 1, Kind: KindComparison, Figures: []string{"2l"},
		Sessions: 2, Duration: 60, Seed: 7, Workers: 2}
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Artifact("fig2l_gains.csv")
	if a == nil {
		t.Fatal("comparison job produced no fig2l_gains.csv artifact")
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "cmd", "omnc-fig", "testdata", "fig2l_gains.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Data, want) {
		t.Fatalf("jobs.Run drifted from the CLI golden fixture (%d vs %d bytes)", len(a.Data), len(want))
	}
}

// TestGoldenMultiEquivalence pins the multi kind against the CLI's committed
// fixture the same way.
func TestGoldenMultiEquivalence(t *testing.T) {
	s := Spec{Version: 1, Kind: KindMulti, Sessions: 2, Duration: 60, Seed: 7, Workers: 2}
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Artifact("fig_multi.csv")
	if a == nil {
		t.Fatal("multi job produced no fig_multi.csv artifact")
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "cmd", "omnc-fig", "testdata", "fig_multi.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Data, want) {
		t.Fatalf("jobs.Run drifted from the CLI golden fixture (%d vs %d bytes)", len(a.Data), len(want))
	}
}

// sessionSpec is a cheap, fully deterministic session job used by the queue
// and store tests.
func sessionSpec() Spec {
	return Spec{Version: 1, Kind: KindSession, Nodes: 120, MinHops: 2, MaxHops: 6,
		Duration: 10, Seed: 3, Protocol: "etx"}
}

func TestSessionRunDeterministic(t *testing.T) {
	s := sessionSpec()
	a, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Fatalf("same spec, different summaries:\n%s\n%s", a.Summary, b.Summary)
	}
	if a.Src == nil || b.Src == nil || *a.Src != *b.Src || *a.Dst != *b.Dst {
		t.Fatal("endpoint placement is not a pure function of the seed")
	}
}

func TestSessionReportAndTraceArtifacts(t *testing.T) {
	s := sessionSpec()
	// OMNC, not ETX: the trace must have coded-protocol events in it.
	s.Protocol = "omnc"
	s.Report = true
	s.Trace = true
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Artifact("report.json")
	if rep == nil {
		t.Fatal("no report.json artifact")
	}
	var head map[string]any
	if err := json.Unmarshal(rep.Data, &head); err != nil {
		t.Fatalf("report.json is not valid JSON: %v", err)
	}
	tr := res.Artifact("trace.jsonl")
	if tr == nil || len(tr.Data) == 0 {
		t.Fatal("no trace.jsonl artifact")
	}
}

func TestTopoLandsLinksCSV(t *testing.T) {
	res, err := Run(context.Background(), Spec{Version: 1, Kind: KindTopo, Nodes: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Artifact("links.csv")
	if a == nil {
		t.Fatal("no links.csv artifact")
	}
	if !bytes.HasPrefix(a.Data, []byte("from,to,probability,distance_m\n")) {
		t.Fatalf("links.csv header drifted: %q", a.Data[:40])
	}
}

func TestRunHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, sessionSpec()); err == nil {
		t.Fatal("cancelled context must abort the run")
	}
}

func TestQueueLifecycleAndCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "queue.jsonl")

	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := q.Submit(sessionSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Spec{Version: 1, Kind: KindFig1}); err != nil {
		t.Fatal(err)
	}
	claimed, ok, err := q.Claim()
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if claimed.ID != j1.ID || claimed.State != JobRunning {
		t.Fatalf("claimed %+v, want %s running", claimed, j1.ID)
	}
	// Crash: the process dies with j1 claimed. Reopening must requeue it.
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q, err = OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	got, ok := q.Get(j1.ID)
	if !ok || got.State != JobPending || got.Requeues != 1 {
		t.Fatalf("after crash recovery: %+v, want pending with 1 requeue", got)
	}
	// FIFO: the recovered job is claimed first, runs, and completes.
	again, ok, err := q.Claim()
	if err != nil || !ok || again.ID != j1.ID {
		t.Fatalf("re-claim: %+v ok=%v err=%v", again, ok, err)
	}
	res, err := Run(context.Background(), again.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Done(again.ID, res.Spec.Hash()); err != nil {
		t.Fatal(err)
	}
	// The re-run is bit-identical to a fresh run of the same Spec.
	fresh, err := Run(context.Background(), again.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Summary != res.Summary {
		t.Fatalf("re-run after crash drifted: %q vs %q", res.Summary, fresh.Summary)
	}
	// Illegal transitions are rejected.
	if err := q.Done(again.ID, "x"); err == nil {
		t.Fatal("done on a done job must fail")
	}
	if err := q.Requeue(j1.ID); err == nil {
		t.Fatal("requeue on a done job must fail")
	}
	// State survives another reopen verbatim.
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	final, ok := q2.Get(j1.ID)
	if !ok || final.State != JobDone || final.Run != res.Spec.Hash() {
		t.Fatalf("after reopen: %+v, want done with run %s", final, res.Spec.Hash())
	}
	if jobs := q2.List(); len(jobs) != 2 || jobs[1].State != JobPending {
		t.Fatalf("list after reopen: %+v", jobs)
	}
}

func TestQueueToleratesTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Spec{Version: 1, Kind: KindFig1}); err != nil {
		t.Fatal(err)
	}
	// Claim so the next open's crash recovery appends a requeue record of
	// its own — the first write after the torn fragment.
	if _, ok, err := q.Claim(); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unparseable final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"sub`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if jobs := q2.List(); len(jobs) != 1 || jobs[0].State != JobPending {
		t.Fatalf("after torn line: %+v", jobs)
	}
	// The fragment must be truncated away, not appended onto: everything
	// written since — the recovery requeue and this submit — must survive
	// yet another replay intact.
	if _, err := q2.Submit(Spec{Version: 1, Kind: KindBench}); err != nil {
		t.Fatal(err)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	q3, err := OpenQueue(path)
	if err != nil {
		t.Fatalf("journal corrupt after post-recovery appends: %v", err)
	}
	defer q3.Close()
	jobs := q3.List()
	if len(jobs) != 2 || jobs[0].State != JobPending || jobs[1].State != JobPending {
		t.Fatalf("after reopen: %+v", jobs)
	}
	if jobs[0].Requeues != 1 {
		t.Fatalf("recovery requeue lost: %+v", jobs[0])
	}
}

func TestQueueDropsUnterminatedFinalRecord(t *testing.T) {
	// A parseable final line with no trailing newline is still a torn append
	// (record and newline are one write): it was never acknowledged durable,
	// and keeping it would make the next append concatenate onto it.
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Spec{Version: 1, Kind: KindFig1}); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"submit","id":"j2","spec":{"version":1,"kind":"bench"}}`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	if jobs := q2.List(); len(jobs) != 1 || jobs[0].ID != "j1" {
		t.Fatalf("unterminated record must be dropped: %+v", jobs)
	}
	if _, err := q2.Submit(Spec{Version: 1, Kind: KindBench}); err != nil {
		t.Fatal(err)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	q3, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	if jobs := q3.List(); len(jobs) != 2 {
		t.Fatalf("after reopen: %+v", jobs)
	}
}

func TestQueueRejectsInvalidSpec(t *testing.T) {
	q, err := OpenQueue(filepath.Join(t.TempDir(), "queue.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Submit(Spec{Version: 1, Kind: "figment"}); err == nil {
		t.Fatal("invalid spec must be rejected at submit")
	}
}

func TestStoreLandGetList(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "runs"))
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{
		Spec:      Spec{Version: 1, Kind: KindFig1, Seed: 9},
		Summary:   "landed by test",
		Artifacts: []Artifact{newArtifact("fig1_convergence.csv", []byte("iteration\n1\n"))},
	}
	id, err := st.Land(res)
	if err != nil {
		t.Fatal(err)
	}
	if id != res.Spec.Hash() {
		t.Fatalf("run id %q, want the spec hash %q", id, res.Spec.Hash())
	}
	run, err := st.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if run.Kind != KindFig1 || run.Summary != "landed by test" || len(run.Artifacts) != 1 {
		t.Fatalf("stored head drifted: %+v", run)
	}
	data, err := st.ReadArtifact(id, "fig1_convergence.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "iteration\n1\n" {
		t.Fatalf("artifact bytes drifted: %q", data)
	}
	// Landing the same spec again replaces idempotently.
	if id2, err := st.Land(res); err != nil || id2 != id {
		t.Fatalf("re-land: id %q err %v", id2, err)
	}
	runs, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != id {
		t.Fatalf("list: %+v", runs)
	}
	// Traversal attempts are rejected.
	if _, err := st.ReadArtifact(id, "../queue.jsonl"); err == nil {
		t.Fatal("path traversal in artifact name must be rejected")
	}
	if _, err := st.ReadArtifact("../"+id, "fig1_convergence.csv"); err == nil {
		t.Fatal("path traversal in run id must be rejected")
	}
	if _, err := st.Get("zz"); err == nil {
		t.Fatal("malformed run id must be rejected")
	}
}
