package coding

import (
	"bytes"
	"math/rand"
	"testing"

	"omnc/internal/parallel"
)

// allocTolerance absorbs the rare GC that drains a sync.Pool mid-run and
// forces a one-off refill; the steady-state expectation is exactly zero.
const allocTolerance = 0.5

// skipIfRace skips zero-allocation gates under the race detector, whose
// sync.Pool deliberately drops items at random.
func skipIfRace(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under -race; alloc gate not meaningful")
	}
}

// warm primes the arena so AllocsPerRun measures the steady state, not the
// first-fill.
func warmArena(p Params) {
	pk := GetPacket(p)
	pk.Release()
}

// TestAllocsEncoderNext gates the source hot path: emitting and releasing a
// coded packet must not allocate once the arena is warm.
func TestAllocsEncoderNext(t *testing.T) {
	skipIfRace(t)
	p := testParams(16, 64)
	rng := rand.New(rand.NewSource(1))
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	warmArena(p)
	enc.Next().Release()
	avg := testing.AllocsPerRun(200, func() {
		enc.Next().Release()
	})
	if avg > allocTolerance {
		t.Errorf("Encoder.Next allocates %.2f objects per packet, want 0", avg)
	}
}

// TestAllocsRecoderNext gates the forwarder hot path: re-encoding a packet
// from the buffered subspace must not allocate.
func TestAllocsRecoderNext(t *testing.T) {
	skipIfRace(t)
	p := testParams(16, 64)
	rng := rand.New(rand.NewSource(2))
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	rec, err := NewRecoder(0, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	for i := 0; i < 8; i++ {
		pk := enc.Next()
		if _, err := rec.Add(pk); err != nil {
			t.Fatal(err)
		}
		pk.Release()
	}
	rec.Next().Release()
	avg := testing.AllocsPerRun(200, func() {
		rec.Next().Release()
	})
	if avg > allocTolerance {
		t.Errorf("Recoder.Next allocates %.2f objects per packet, want 0", avg)
	}
}

// TestAllocsDecoderAdd gates the destination hot path: absorbing a packet
// into the preallocated elimination matrix must not allocate, full or not.
func TestAllocsDecoderAdd(t *testing.T) {
	skipIfRace(t)
	p := testParams(16, 64)
	rng := rand.New(rand.NewSource(3))
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	dec, err := NewDecoder(0, p)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	warmArena(p)
	enc.Next().Release()
	avg := testing.AllocsPerRun(200, func() {
		pk := enc.Next()
		if _, err := dec.Add(pk); err != nil {
			t.Fatal(err)
		}
		pk.Release()
	})
	if avg > allocTolerance {
		t.Errorf("Encoder.Next + Decoder.Add allocates %.2f objects per packet, want 0", avg)
	}
	if !dec.Decoded() {
		t.Fatal("decoder did not reach full rank")
	}
}

// TestAllocsWireRoundTrip gates serialization: GetFrame + AppendData +
// UnmarshalPacket + PutFrame must cycle arena storage without allocating.
func TestAllocsWireRoundTrip(t *testing.T) {
	skipIfRace(t)
	p := testParams(16, 64)
	rng := rand.New(rand.NewSource(4))
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	pk := enc.Next()
	defer pk.Release()
	// Warm one frame and one unmarshal-side packet.
	frame, err := AppendData(GetFrame(p), 7, pk)
	if err != nil {
		t.Fatal(err)
	}
	_, rx, err := UnmarshalPacket(frame)
	if err != nil {
		t.Fatal(err)
	}
	rx.Release()
	PutFrame(frame)
	avg := testing.AllocsPerRun(200, func() {
		frame, err := AppendData(GetFrame(p), 7, pk)
		if err != nil {
			t.Fatal(err)
		}
		_, rx, err := UnmarshalPacket(frame)
		if err != nil {
			t.Fatal(err)
		}
		rx.Release()
		PutFrame(frame)
	})
	if avg > allocTolerance {
		t.Errorf("wire round trip allocates %.2f objects, want 0", avg)
	}
}

// TestPacketRefcount exercises the ownership contract: Retain/Release
// balance, no-op on unpooled packets, panic on over-release.
func TestPacketRefcount(t *testing.T) {
	p := testParams(4, 8)
	pk := GetPacket(p)
	if got := pk.refcount(); got != 1 {
		t.Fatalf("fresh packet refcount = %d, want 1", got)
	}
	pk.Retain()
	pk.Retain()
	if got := pk.refcount(); got != 3 {
		t.Fatalf("after two retains refcount = %d, want 3", got)
	}
	pk.Release()
	pk.Release()
	pk.Release() // final: returns to the arena
	if got := pk.refcount(); got != 0 {
		t.Fatalf("fully released packet refcount = %d, want 0", got)
	}

	over := GetPacket(p)
	over.Release()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double release did not panic")
			}
		}()
		over.Release()
	}()

	plain := &Packet{Coeffs: make([]byte, 4), Payload: make([]byte, 8)}
	plain.Retain()
	plain.Release()
	plain.Release() // no-ops: hand-built packets are not pooled
}

// TestPoolNoAliasingAcrossSessions runs many concurrent encoder/decoder
// sessions through the shared arena and checks every session decodes its own
// data. Under -race this also proves pooled buffers never alias across
// goroutines: any packet or slab handed to two sessions at once would be a
// detected data race.
func TestPoolNoAliasingAcrossSessions(t *testing.T) {
	p := testParams(12, 96)
	const sessions = 64
	err := parallel.ForEach(sessions, parallel.Workers(0), func(i int) error {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		data := make([]byte, p.GenerationSize*p.BlockSize)
		rng.Read(data)
		gen, err := NewGeneration(i, p, data)
		if err != nil {
			return err
		}
		enc := NewEncoder(gen, rng)
		rec, err := NewRecoder(i, p, rng)
		if err != nil {
			return err
		}
		dec, err := NewDecoder(i, p)
		if err != nil {
			return err
		}
		for !dec.Decoded() {
			pk := enc.Next()
			if _, err := rec.Add(pk); err != nil {
				return err
			}
			pk.Release()
			out := rec.Next()
			if out == nil {
				continue
			}
			if _, err := dec.Add(out); err != nil {
				return err
			}
			out.Release()
		}
		if !bytes.Equal(dec.Data(), gen.Data()) {
			t.Errorf("session %d: decoded data differs from source", i)
		}
		rec.Close()
		dec.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
