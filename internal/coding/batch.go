package coding

import (
	"fmt"

	"omnc/internal/gf256"
)

// BatchDecoder is the non-progressive strawman that Sec. 4 contrasts
// progressive Gauss-Jordan decoding against: it buffers raw packets and
// decodes the whole generation in one Gaussian-elimination pass once asked.
// Because it performs no on-the-fly independence check, it cannot tell when
// enough packets have arrived without attempting (and possibly wasting) a
// full elimination, and it buffers duplicate packets a progressive decoder
// would discard on arrival — the delay and memory effects the paper's
// implementation avoids. It exists for the decoding ablation
// (BenchmarkDecodeProgressive / BenchmarkDecodeBatch) and as a reference
// implementation to cross-check the progressive decoder against.
type BatchDecoder struct {
	gen     int
	params  Params
	packets []*Packet
	blocks  [][]byte
}

// NewBatchDecoder returns a batch decoder for the identified generation. The
// strawman eliminates with the GF(2^8) kernels directly, so it only supports
// the default field.
func NewBatchDecoder(generation int, params Params) (*BatchDecoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.Field != Field8 {
		return nil, fmt.Errorf("%w: batch decoder supports GF(2^8) only", ErrInvalidField)
	}
	return &BatchDecoder{gen: generation, params: params}, nil
}

// Add buffers a packet without any processing (ownership transfers).
func (d *BatchDecoder) Add(p *Packet) error {
	if p.Generation != d.gen {
		return fmt.Errorf("coding: packet generation %d, decoder generation %d", p.Generation, d.gen)
	}
	if len(p.Coeffs) != d.params.CoeffBytes() || len(p.Payload) != d.params.BlockSize {
		return fmt.Errorf("coding: malformed packet (%d coeffs, %d payload)", len(p.Coeffs), len(p.Payload))
	}
	d.packets = append(d.packets, p)
	return nil
}

// Buffered returns the number of packets held (duplicates included — the
// batch decoder cannot tell).
func (d *BatchDecoder) Buffered() int { return len(d.packets) }

// TryDecode runs one Gaussian elimination over everything buffered and
// reports whether the generation decoded. Each call re-eliminates from
// scratch; that is the point of the ablation.
func (d *BatchDecoder) TryDecode() bool {
	if d.blocks != nil {
		return true
	}
	n := d.params.GenerationSize
	if len(d.packets) < n {
		return false
	}
	st := d.params.strategy()
	// Working copies: elimination is destructive.
	coeffs := make([][]byte, len(d.packets))
	payloads := make([][]byte, len(d.packets))
	for i, p := range d.packets {
		coeffs[i] = append([]byte(nil), p.Coeffs...)
		payloads[i] = append([]byte(nil), p.Payload...)
	}

	// Forward elimination with partial "pivoting" (first non-zero).
	pivotRow := make([]int, n)
	for i := range pivotRow {
		pivotRow[i] = -1
	}
	row := 0
	for col := 0; col < n && row < len(coeffs); col++ {
		sel := -1
		for r := row; r < len(coeffs); r++ {
			if coeffs[r][col] != 0 {
				sel = r
				break
			}
		}
		if sel < 0 {
			continue
		}
		coeffs[row], coeffs[sel] = coeffs[sel], coeffs[row]
		payloads[row], payloads[sel] = payloads[sel], payloads[row]
		inv := gf256.Inv(coeffs[row][col])
		gf256.ScaleSlice(st, coeffs[row], inv)
		gf256.ScaleSlice(st, payloads[row], inv)
		for r := 0; r < len(coeffs); r++ {
			if r == row {
				continue
			}
			if f := coeffs[r][col]; f != 0 {
				gf256.MulAddSlice(st, coeffs[r], coeffs[row], f)
				gf256.MulAddSlice(st, payloads[r], payloads[row], f)
			}
		}
		pivotRow[col] = row
		row++
	}
	if row < n {
		return false // rank deficient: keep buffering
	}
	blocks := make([][]byte, n)
	for col := 0; col < n; col++ {
		blocks[col] = payloads[pivotRow[col]]
	}
	d.blocks = blocks
	return true
}

// Decoded reports whether a successful TryDecode has happened.
func (d *BatchDecoder) Decoded() bool { return d.blocks != nil }

// AppendBatch emits count re-encoded packets in one pass and appends them to
// dst. It is bit-identical to count sequential Next calls — every weight
// vector is drawn up front in emission order, consuming exactly the RNG
// sequence the sequential calls would (including the all-zero retry) — but
// the combination runs stored-rows-outer, outputs-inner, so each buffered
// row is loaded once and its coefficient draw amortized across the whole
// batch instead of being re-streamed per packet. With nothing buffered dst
// is returned unchanged (Next's nil case).
//
// The caller owns one reference per appended packet, as with Next.
func (r *Recoder) AppendBatch(dst []*Packet, count int) []*Packet {
	m := r.m
	if count <= 0 || m.rows == 0 {
		return dst
	}
	rows := m.rows
	fo := m.fops
	es := m.params.Field.elemSize()
	weights := getBuf(count * rows * es)
	defer putBuf(weights)
	for j := 0; j < count; j++ {
		wj := weights[j*rows*es : (j+1)*rows*es]
		for {
			nonZero := false
			for i := 0; i < rows; i++ {
				v := fo.randElem(r.rng)
				fo.setElem(wj, i, v)
				if v != 0 {
					nonZero = true
				}
			}
			if nonZero {
				break
			}
		}
	}
	start := len(dst)
	for j := 0; j < count; j++ {
		pk := GetPacket(m.params) // zeroed: the accumulators start empty
		pk.Generation = r.gen
		dst = append(dst, pk)
	}
	// Field addition is XOR, so accumulating row-by-row across packets is
	// exactly the per-packet accumulation reordered — identical bytes.
	for i := 0; i < rows; i++ {
		rc, rp := m.coeffs[i], m.payloads[i]
		for j := 0; j < count; j++ {
			if w := fo.elem(weights[j*rows*es:(j+1)*rows*es], i); w != 0 {
				pk := dst[start+j]
				fo.mulAdd(pk.Coeffs, rc, w)
				fo.mulAdd(pk.Payload, rp, w)
			}
		}
	}
	return dst
}

// NextBatch emits count re-encoded packets in one amortized pass; it returns
// nil when nothing has been buffered yet. See AppendBatch for the contract.
func (r *Recoder) NextBatch(count int) []*Packet {
	return r.AppendBatch(nil, count)
}

// Data returns the decoded generation after a successful TryDecode, nil
// before.
func (d *BatchDecoder) Data() []byte {
	if d.blocks == nil {
		return nil
	}
	out := make([]byte, 0, d.params.GenerationSize*d.params.BlockSize)
	for _, b := range d.blocks {
		out = append(out, b...)
	}
	return out
}
