package coding

import (
	"errors"
	"fmt"
	"math/rand"

	"omnc/internal/gf16"
	"omnc/internal/gf256"
)

// Field selects the Galois field coefficients are drawn from. The zero value
// is Field8 — GF(2^8), the paper's field — so existing configurations and
// all default-field runs are bit-identical to builds without the option.
// Field16 codes over GF(2^16): random combinations collide with probability
// ~1/65536 instead of ~1/256, at the price of doubling the coefficient
// overhead per packet (CoeffBytes).
type Field int

const (
	// Field8 is GF(2^8) with byte coefficients, the default.
	Field8 Field = iota
	// Field16 is GF(2^16) with two-byte little-endian coefficients.
	Field16

	fieldCount
)

// ErrInvalidField reports a field value or name outside the supported set.
var ErrInvalidField = errors.New("coding: invalid field")

// String returns the canonical flag spelling ("8" or "16"); it round-trips
// through ParseField.
func (f Field) String() string {
	switch f {
	case Field8:
		return "8"
	case Field16:
		return "16"
	default:
		return fmt.Sprintf("field(%d)", int(f))
	}
}

// Valid reports whether f is one of the defined fields.
func (f Field) Valid() bool { return f >= 0 && f < fieldCount }

// ParseField maps a -field flag value to its Field; the empty string keeps
// the GF(2^8) default. Unknown names return an error satisfying
// errors.Is(err, ErrInvalidField).
func ParseField(name string) (Field, error) {
	switch name {
	case "", "8":
		return Field8, nil
	case "16":
		return Field16, nil
	}
	return 0, fmt.Errorf("%w: %q (want 8 or 16)", ErrInvalidField, name)
}

// elemSize returns the packed size of one coefficient in bytes.
func (f Field) elemSize() int {
	if f == Field16 {
		return 2
	}
	return 1
}

// fieldOps is a field resolved into direct function pointers — the
// coefficient-level strategy layer beneath Encoder and rref. The Field8 ops
// wrap exactly the gf256.Kernel the code used before fields existed: same
// functions, same call sequence, same RNG draws, so default-field runs stay
// bit-identical. Coefficients and payloads are byte slices holding packed
// field elements; all values travel as uint32 to cover both element widths.
type fieldOps struct {
	field    Field
	mulAdd   func(dst, src []byte, c uint32)
	mul      func(dst, src []byte, c uint32)
	inv      func(c uint32) uint32
	elem     func(b []byte, i int) uint32
	setElem  func(b []byte, i int, v uint32)
	randElem func(rng *rand.Rand) uint32
}

var (
	// field8Ops is indexed by the raw gf256.Strategy value (0 = default).
	field8Ops  [5]fieldOps
	field16Ops fieldOps
)

func init() {
	for s := range field8Ops {
		k := gf256.KernelFor(gf256.Strategy(s))
		field8Ops[s] = fieldOps{
			field:    Field8,
			mulAdd:   func(dst, src []byte, c uint32) { k.MulAdd(dst, src, byte(c)) },
			mul:      func(dst, src []byte, c uint32) { k.Mul(dst, src, byte(c)) },
			inv:      func(c uint32) uint32 { return uint32(gf256.Inv(byte(c))) },
			elem:     func(b []byte, i int) uint32 { return uint32(b[i]) },
			setElem:  func(b []byte, i int, v uint32) { b[i] = byte(v) },
			randElem: func(rng *rand.Rand) uint32 { return uint32(byte(rng.Intn(256))) },
		}
	}
	field16Ops = fieldOps{
		field:    Field16,
		mulAdd:   func(dst, src []byte, c uint32) { gf16.MulAdd(dst, src, uint16(c)) },
		mul:      func(dst, src []byte, c uint32) { gf16.MulSlice(dst, src, uint16(c)) },
		inv:      func(c uint32) uint32 { return uint32(gf16.Inv(uint16(c))) },
		elem:     func(b []byte, i int) uint32 { return uint32(gf16.Elem(b, i)) },
		setElem:  func(b []byte, i int, v uint32) { gf16.SetElem(b, i, uint16(v)) },
		randElem: func(rng *rand.Rand) uint32 { return uint32(rng.Intn(1 << 16)) },
	}
}

// fieldOps resolves the parameter set's coefficient-arithmetic kernels.
func (p Params) fieldOps() *fieldOps {
	if p.Field == Field16 {
		return &field16Ops
	}
	s := int(p.Strategy)
	if s < 0 || s >= len(field8Ops) {
		s = 0 // KernelFor maps unknown strategies to the accel default too
	}
	return &field8Ops[s]
}
