package coding

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBatchDecoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	p := testParams(8, 32)
	data := randomData(rng, 8*32)
	gen, _ := NewGeneration(0, p, data)
	enc := NewEncoder(gen, rng)
	dec, err := NewBatchDecoder(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TryDecode() {
		t.Fatal("empty decoder cannot decode")
	}
	for i := 0; i < 8; i++ {
		if err := dec.Add(enc.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if !dec.TryDecode() {
		// With 8 random packets over GF(256) failure probability is ~2^-60;
		// add a couple more just in case and retry.
		dec.Add(enc.Next())
		dec.Add(enc.Next())
		if !dec.TryDecode() {
			t.Fatal("batch decode failed with surplus packets")
		}
	}
	if !dec.Decoded() {
		t.Fatal("Decoded() must be true after successful TryDecode")
	}
	if !bytes.Equal(dec.Data(), data) {
		t.Fatal("batch decode corrupted data")
	}
	// Idempotent once decoded.
	if !dec.TryDecode() {
		t.Fatal("TryDecode must stay true")
	}
}

func TestBatchDecoderMatchesProgressive(t *testing.T) {
	// Same packet stream into both decoders: identical output.
	rng := rand.New(rand.NewSource(82))
	p := testParams(10, 16)
	gen, _ := NewGeneration(0, p, randomData(rng, 160))
	enc := NewEncoder(gen, rng)
	prog, _ := NewDecoder(0, p)
	batch, _ := NewBatchDecoder(0, p)
	for !prog.Decoded() {
		pkt := enc.Next()
		batch.Add(pkt.Clone())
		prog.Add(pkt)
	}
	if !batch.TryDecode() {
		t.Fatal("batch decoder behind progressive")
	}
	if !bytes.Equal(batch.Data(), prog.Data()) {
		t.Fatal("decoders disagree")
	}
}

func TestBatchDecoderBuffersDuplicates(t *testing.T) {
	// Unlike the progressive decoder, the batch decoder cannot screen
	// duplicates: its buffer grows with every arrival.
	rng := rand.New(rand.NewSource(83))
	p := testParams(4, 8)
	gen, _ := NewGeneration(0, p, nil)
	enc := NewEncoder(gen, rng)
	batch, _ := NewBatchDecoder(0, p)
	pkt := enc.Next()
	for i := 0; i < 5; i++ {
		batch.Add(pkt.Clone())
	}
	if batch.Buffered() != 5 {
		t.Fatalf("buffered = %d, want 5 (duplicates kept)", batch.Buffered())
	}
	if batch.TryDecode() {
		t.Fatal("five copies of one packet cannot decode rank 4")
	}
	if batch.Data() != nil {
		t.Fatal("Data before decode must be nil")
	}
}

func TestBatchDecoderValidation(t *testing.T) {
	if _, err := NewBatchDecoder(0, testParams(0, 1)); err == nil {
		t.Fatal("invalid params must fail")
	}
	dec, _ := NewBatchDecoder(1, testParams(2, 4))
	if err := dec.Add(&Packet{Generation: 2, Coeffs: []byte{1, 0}, Payload: make([]byte, 4)}); err == nil {
		t.Fatal("wrong generation must fail")
	}
	if err := dec.Add(&Packet{Generation: 1, Coeffs: []byte{1}, Payload: make([]byte, 4)}); err == nil {
		t.Fatal("malformed packet must fail")
	}
}

// BenchmarkDecodeProgressive vs BenchmarkDecodeBatch: the Sec. 4 ablation.
// The batch decoder is charged what a real receiver without on-the-fly
// innovation checks must pay — one elimination attempt per arrival once the
// buffer could plausibly decode.
func benchDecode(b *testing.B, progressive bool) {
	rng := rand.New(rand.NewSource(84))
	p := Params{GenerationSize: 40, BlockSize: 1024}
	data := make([]byte, 40*1024)
	rng.Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, _ := NewGeneration(0, p, data)
		enc := NewEncoder(gen, rng)
		if progressive {
			dec, _ := NewDecoder(0, p)
			for !dec.Decoded() {
				dec.Add(enc.Next())
			}
		} else {
			dec, _ := NewBatchDecoder(0, p)
			for !dec.TryDecode() {
				dec.Add(enc.Next())
			}
		}
	}
}

func BenchmarkDecodeProgressive(b *testing.B) { benchDecode(b, true) }
func BenchmarkDecodeBatch(b *testing.B)       { benchDecode(b, false) }

// loadedRecoder builds a recoder holding fill innovative packets of an
// n-packet generation; two calls with the same seed produce recoders whose
// state and emission RNG agree exactly.
func loadedRecoder(tb testing.TB, seed int64, n, bs, fill int) *Recoder {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	gen, err := NewGeneration(1, testParams(n, bs), randomData(rng, n*bs/2))
	if err != nil {
		tb.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	rec, err := NewRecoder(1, testParams(n, bs), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		tb.Fatal(err)
	}
	for rec.Rank() < fill {
		p := enc.Next()
		if _, err := rec.Add(p); err != nil {
			tb.Fatal(err)
		}
		p.Release()
	}
	return rec
}

// TestNextBatchMatchesSequentialNext pins the batch contract: NextBatch(k)
// produces byte-identical packets to k sequential Next calls, and leaves the
// recoder's RNG at the same position (packets emitted afterwards agree too).
func TestNextBatchMatchesSequentialNext(t *testing.T) {
	for _, tc := range []struct{ n, bs, fill, batch int }{
		{8, 32, 1, 4},
		{8, 32, 5, 7},
		{16, 256, 16, 16},
		{4, 64, 3, 1},
	} {
		seq := loadedRecoder(t, 99, tc.n, tc.bs, tc.fill)
		bat := loadedRecoder(t, 99, tc.n, tc.bs, tc.fill)
		var want []*Packet
		for j := 0; j < tc.batch; j++ {
			want = append(want, seq.Next())
		}
		got := bat.NextBatch(tc.batch)
		if len(got) != tc.batch {
			t.Fatalf("%+v: NextBatch returned %d packets, want %d", tc, len(got), tc.batch)
		}
		for j := range want {
			if !bytes.Equal(want[j].Coeffs, got[j].Coeffs) || !bytes.Equal(want[j].Payload, got[j].Payload) {
				t.Fatalf("%+v: batch packet %d differs from sequential Next", tc, j)
			}
			if got[j].Generation != want[j].Generation {
				t.Fatalf("%+v: batch packet %d generation %d, want %d", tc, j, got[j].Generation, want[j].Generation)
			}
		}
		// Same RNG position afterwards: the next emission must still agree.
		after, afterBatch := seq.Next(), bat.Next()
		if !bytes.Equal(after.Coeffs, afterBatch.Coeffs) || !bytes.Equal(after.Payload, afterBatch.Payload) {
			t.Fatalf("%+v: RNG position diverged after the batch", tc)
		}
		after.Release()
		afterBatch.Release()
		for j := range want {
			want[j].Release()
			got[j].Release()
		}
		seq.Close()
		bat.Close()
	}
}

// TestNextBatchEmpty pins the nothing-buffered case: like Next's nil return,
// a batch from an empty recoder emits nothing.
func TestNextBatchEmpty(t *testing.T) {
	rec, err := NewRecoder(1, testParams(8, 32), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.NextBatch(5); got != nil {
		t.Fatalf("empty recoder emitted %d packets", len(got))
	}
	dst := make([]*Packet, 0, 4)
	if got := rec.AppendBatch(dst, 3); len(got) != 0 {
		t.Fatalf("empty recoder appended %d packets", len(got))
	}
	if got := rec.NextBatch(0); got != nil {
		t.Fatal("zero-count batch emitted packets")
	}
}

// TestAppendBatchAllocsSteadyState gates the amortization: with the packet
// arena warm and the caller reusing its destination slice, a whole batch
// emission allocates nothing.
func TestAppendBatchAllocsSteadyState(t *testing.T) {
	rec := loadedRecoder(t, 7, 16, 256, 16)
	defer rec.Close()
	const batch = 8
	dst := make([]*Packet, 0, batch)
	release := func() {
		for _, p := range dst {
			p.Release()
		}
		dst = dst[:0]
	}
	dst = rec.AppendBatch(dst, batch) // warm the arena
	release()
	allocs := testing.AllocsPerRun(100, func() {
		dst = rec.AppendBatch(dst, batch)
		release()
	})
	if allocs > 0 {
		t.Fatalf("AppendBatch allocates %.1f objects/op in steady state, want 0", allocs)
	}
}
