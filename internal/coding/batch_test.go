package coding

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBatchDecoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	p := testParams(8, 32)
	data := randomData(rng, 8*32)
	gen, _ := NewGeneration(0, p, data)
	enc := NewEncoder(gen, rng)
	dec, err := NewBatchDecoder(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TryDecode() {
		t.Fatal("empty decoder cannot decode")
	}
	for i := 0; i < 8; i++ {
		if err := dec.Add(enc.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if !dec.TryDecode() {
		// With 8 random packets over GF(256) failure probability is ~2^-60;
		// add a couple more just in case and retry.
		dec.Add(enc.Next())
		dec.Add(enc.Next())
		if !dec.TryDecode() {
			t.Fatal("batch decode failed with surplus packets")
		}
	}
	if !dec.Decoded() {
		t.Fatal("Decoded() must be true after successful TryDecode")
	}
	if !bytes.Equal(dec.Data(), data) {
		t.Fatal("batch decode corrupted data")
	}
	// Idempotent once decoded.
	if !dec.TryDecode() {
		t.Fatal("TryDecode must stay true")
	}
}

func TestBatchDecoderMatchesProgressive(t *testing.T) {
	// Same packet stream into both decoders: identical output.
	rng := rand.New(rand.NewSource(82))
	p := testParams(10, 16)
	gen, _ := NewGeneration(0, p, randomData(rng, 160))
	enc := NewEncoder(gen, rng)
	prog, _ := NewDecoder(0, p)
	batch, _ := NewBatchDecoder(0, p)
	for !prog.Decoded() {
		pkt := enc.Next()
		batch.Add(pkt.Clone())
		prog.Add(pkt)
	}
	if !batch.TryDecode() {
		t.Fatal("batch decoder behind progressive")
	}
	if !bytes.Equal(batch.Data(), prog.Data()) {
		t.Fatal("decoders disagree")
	}
}

func TestBatchDecoderBuffersDuplicates(t *testing.T) {
	// Unlike the progressive decoder, the batch decoder cannot screen
	// duplicates: its buffer grows with every arrival.
	rng := rand.New(rand.NewSource(83))
	p := testParams(4, 8)
	gen, _ := NewGeneration(0, p, nil)
	enc := NewEncoder(gen, rng)
	batch, _ := NewBatchDecoder(0, p)
	pkt := enc.Next()
	for i := 0; i < 5; i++ {
		batch.Add(pkt.Clone())
	}
	if batch.Buffered() != 5 {
		t.Fatalf("buffered = %d, want 5 (duplicates kept)", batch.Buffered())
	}
	if batch.TryDecode() {
		t.Fatal("five copies of one packet cannot decode rank 4")
	}
	if batch.Data() != nil {
		t.Fatal("Data before decode must be nil")
	}
}

func TestBatchDecoderValidation(t *testing.T) {
	if _, err := NewBatchDecoder(0, testParams(0, 1)); err == nil {
		t.Fatal("invalid params must fail")
	}
	dec, _ := NewBatchDecoder(1, testParams(2, 4))
	if err := dec.Add(&Packet{Generation: 2, Coeffs: []byte{1, 0}, Payload: make([]byte, 4)}); err == nil {
		t.Fatal("wrong generation must fail")
	}
	if err := dec.Add(&Packet{Generation: 1, Coeffs: []byte{1}, Payload: make([]byte, 4)}); err == nil {
		t.Fatal("malformed packet must fail")
	}
}

// BenchmarkDecodeProgressive vs BenchmarkDecodeBatch: the Sec. 4 ablation.
// The batch decoder is charged what a real receiver without on-the-fly
// innovation checks must pay — one elimination attempt per arrival once the
// buffer could plausibly decode.
func benchDecode(b *testing.B, progressive bool) {
	rng := rand.New(rand.NewSource(84))
	p := Params{GenerationSize: 40, BlockSize: 1024}
	data := make([]byte, 40*1024)
	rng.Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, _ := NewGeneration(0, p, data)
		enc := NewEncoder(gen, rng)
		if progressive {
			dec, _ := NewDecoder(0, p)
			for !dec.Decoded() {
				dec.Add(enc.Next())
			}
		} else {
			dec, _ := NewBatchDecoder(0, p)
			for !dec.TryDecode() {
				dec.Add(enc.Next())
			}
		}
	}
}

func BenchmarkDecodeProgressive(b *testing.B) { benchDecode(b, true) }
func BenchmarkDecodeBatch(b *testing.B)       { benchDecode(b, false) }
