package coding

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzSeedBuffers reproduces the hand-written wire_test vectors as a fuzz
// corpus: valid data and ACK messages, plus each rejection case the table
// test covers (truncation, bad magic/version/type, zero dimensions).
func fuzzSeedBuffers(tb testing.TB) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(72))
	mk := func(n, m int, mutate func([]byte)) []byte {
		gen, err := NewGeneration(0, testParams(n, m), nil)
		if err != nil {
			tb.Fatal(err)
		}
		buf, err := MarshalData(1, NewEncoder(gen, rng).Next())
		if err != nil {
			tb.Fatal(err)
		}
		if mutate != nil {
			mutate(buf)
		}
		return buf
	}
	return [][]byte{
		nil,
		[]byte("OMNC"),
		append([]byte("XXXX"), make([]byte, 20)...),
		mk(8, 32, nil),
		mk(40, 1024, nil),
		mk(8, 32, func(b []byte) { b[4] = 9 }),
		mk(8, 32, func(b []byte) { b[5] = 7 }),
		mk(8, 32, nil)[:30],
		mk(8, 32, func(b []byte) { b[14], b[15] = 0, 0 }),
		mk(8, 32, func(b []byte) { b[16], b[17] = 0, 0 }),
		MarshalAck(99, 1234),
	}
}

// FuzzDecodePacket hammers the wire decoder with arbitrary buffers. The
// decoder must never panic, and anything it accepts must survive a
// re-marshal/re-parse round trip unchanged (the parsed form is canonical —
// trailing garbage aside, Unmarshal(Marshal(msg)) is the identity).
func FuzzDecodePacket(f *testing.F) {
	for _, buf := range fuzzSeedBuffers(f) {
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		msg, err := Unmarshal(buf)
		if err != nil {
			if msg != nil {
				t.Fatalf("error %v must not return a message", err)
			}
			return
		}
		switch msg.Type {
		case MessageAck:
			if msg.Packet != nil {
				t.Fatal("ACK with payload")
			}
			again, err := Unmarshal(MarshalAck(msg.Session, msg.Generation))
			if err != nil {
				t.Fatalf("re-parse of re-marshaled ACK: %v", err)
			}
			if *again != *msg {
				t.Fatalf("ACK not canonical: %+v vs %+v", msg, again)
			}
		case MessageData:
			if msg.Packet == nil {
				t.Fatal("data message without packet")
			}
			out, err := MarshalData(msg.Session, msg.Packet)
			if err != nil {
				t.Fatalf("accepted packet failed to re-marshal: %v", err)
			}
			again, err := Unmarshal(out)
			if err != nil {
				t.Fatalf("re-parse of re-marshaled data: %v", err)
			}
			if again.Session != msg.Session || again.Generation != msg.Generation {
				t.Fatal("header not canonical")
			}
			if !bytes.Equal(again.Packet.Coeffs, msg.Packet.Coeffs) ||
				!bytes.Equal(again.Packet.Payload, msg.Packet.Payload) {
				t.Fatal("packet not canonical")
			}
		default:
			t.Fatalf("accepted unknown message type %d", msg.Type)
		}
	})
}

// FuzzEncodeDecodeRoundTrip drives the data path in the forward direction:
// any packet MarshalData accepts must come back identical through Unmarshal,
// even with trailing bytes appended (UDP reads can hand back oversized
// buffers).
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(71))
	gen, err := NewGeneration(7, testParams(40, 1024), randomData(rng, 100))
	if err != nil {
		f.Fatal(err)
	}
	pkt := NewEncoder(gen, rng).Next()
	f.Add(uint32(12345), uint32(7), []byte(pkt.Coeffs), []byte(pkt.Payload), byte(0))
	f.Add(uint32(0), uint32(0), []byte{1}, []byte{0}, byte(3))
	f.Add(uint32(1), uint32(1<<31), []byte{0, 0, 255}, []byte{9, 9}, byte(0))

	f.Fuzz(func(t *testing.T, session, generation uint32, coeffs, payload []byte, trailing byte) {
		pkt := &Packet{
			Generation: int(generation),
			Coeffs:     coeffs,
			Payload:    payload,
		}
		buf, err := MarshalData(session, pkt)
		if err != nil {
			// Only dimension limits may be rejected; anything else in
			// range must marshal.
			if n, m := len(coeffs), len(payload); n > 0 && n <= 0xFFFF && m > 0 && m <= 0xFFFF {
				t.Fatalf("in-range packet %dx%d rejected: %v", n, m, err)
			}
			return
		}
		if len(buf) != WireSize(Params{GenerationSize: len(coeffs), BlockSize: len(payload)}) {
			t.Fatalf("wire size %d inconsistent with WireSize", len(buf))
		}
		buf = append(buf, make([]byte, int(trailing))...)
		msg, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("marshaled packet failed to parse: %v", err)
		}
		if msg.Type != MessageData || msg.Session != session || msg.Generation != generation {
			t.Fatalf("header round trip: %+v", msg)
		}
		if msg.Packet.Generation != int(generation) {
			t.Fatalf("packet generation = %d, want %d", msg.Packet.Generation, generation)
		}
		if !bytes.Equal(msg.Packet.Coeffs, coeffs) || !bytes.Equal(msg.Packet.Payload, payload) {
			t.Fatal("round trip corrupted the packet")
		}
	})
}
