package coding

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamRoundTripExactLength(t *testing.T) {
	p := testParams(4, 16) // 64 bytes per generation, 56 usable in the first
	rng := rand.New(rand.NewSource(91))
	for _, n := range []int{0, 1, 55, 56, 57, 64, 200, 1000} {
		data := randomData(rng, n)
		gens, err := StreamSplit(data, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(gens) != StreamGenerations(n, p) {
			t.Fatalf("n=%d: %d generations, predicted %d", n, len(gens), StreamGenerations(n, p))
		}
		for i, g := range gens {
			if g.ID != i {
				t.Fatalf("generation %d has ID %d", i, g.ID)
			}
		}
		decoded := make([][]byte, len(gens))
		for i, g := range gens {
			decoded[i] = g.Data()
		}
		got, err := StreamReassemble(decoded, p)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: reassembly mismatch (%d vs %d bytes)", n, len(got), len(data))
		}
	}
}

func TestStreamRoundTripThroughCoding(t *testing.T) {
	// Full pipeline: split -> encode -> decode each generation -> reassemble.
	p := testParams(6, 32)
	rng := rand.New(rand.NewSource(92))
	data := randomData(rng, 500)
	gens, err := StreamSplit(data, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	decoded := make([][]byte, len(gens))
	for i, g := range gens {
		enc := NewEncoder(g, rng)
		dec, _ := NewDecoder(g.ID, p)
		for !dec.Decoded() {
			dec.Add(enc.Next())
		}
		decoded[i] = dec.Data()
	}
	got, err := StreamReassemble(decoded, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("coded stream round trip corrupted data")
	}
}

func TestStreamFirstGenNumbering(t *testing.T) {
	p := testParams(4, 8)
	gens, err := StreamSplit(make([]byte, 100), p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if gens[0].ID != 7 {
		t.Fatalf("first generation ID = %d, want 7", gens[0].ID)
	}
}

func TestStreamReassembleValidation(t *testing.T) {
	p := testParams(4, 8)
	if _, err := StreamReassemble(nil, p); err == nil {
		t.Fatal("no generations must fail")
	}
	if _, err := StreamReassemble([][]byte{make([]byte, 5)}, p); err == nil {
		t.Fatal("mis-sized generation must fail")
	}
	// Declared length larger than the decoded data must fail.
	bogus := make([]byte, 32)
	bogus[0] = 0xFF
	if _, err := StreamReassemble([][]byte{bogus}, p); err == nil {
		t.Fatal("oversized declared length must fail")
	}
	// Too few generations for the declared length must fail.
	gens, _ := StreamSplit(make([]byte, 100), p, 0)
	if _, err := StreamReassemble([][]byte{gens[0].Data()}, p); err == nil {
		t.Fatal("missing generations must fail")
	}
	tiny := Params{GenerationSize: 1, BlockSize: 4}
	if _, err := StreamReassemble([][]byte{make([]byte, 4)}, tiny); err == nil {
		t.Fatal("generation smaller than the header must fail")
	}
	if _, err := StreamSplit(nil, Params{GenerationSize: -1, BlockSize: 1}, 0); err == nil {
		t.Fatal("invalid params must fail")
	}
}

func TestPropertyStreamRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 2000)
		rng := rand.New(rand.NewSource(seed))
		p := testParams(2+rng.Intn(8), 8+rng.Intn(32))
		data := make([]byte, n)
		rng.Read(data)
		gens, err := StreamSplit(data, p, 0)
		if err != nil {
			return false
		}
		decoded := make([][]byte, len(gens))
		for i, g := range gens {
			decoded[i] = g.Data()
		}
		got, err := StreamReassemble(decoded, p)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
