package coding

import (
	"bytes"
	"math/rand"
	"testing"

	"omnc/internal/gf256"
)

func testParams(n, m int) Params {
	return Params{GenerationSize: n, BlockSize: m, Strategy: gf256.StrategyAccel}
}

func randomData(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{name: "default", p: DefaultParams(), wantErr: false},
		{name: "zero generation", p: testParams(0, 10), wantErr: true},
		{name: "negative generation", p: testParams(-1, 10), wantErr: true},
		{name: "oversized generation", p: testParams(256, 10), wantErr: true},
		{name: "max generation", p: testParams(255, 10), wantErr: false},
		{name: "zero block", p: testParams(4, 0), wantErr: true},
		{name: "negative block", p: testParams(4, -7), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.GenerationSize != 40 || p.BlockSize != 1024 {
		t.Fatalf("paper evaluation uses 40 x 1 KB, got %d x %d", p.GenerationSize, p.BlockSize)
	}
	if p.PacketSize() != 40+1024 {
		t.Fatalf("PacketSize = %d", p.PacketSize())
	}
}

func TestNewGenerationPadsAndSplits(t *testing.T) {
	p := testParams(3, 4)
	gen, err := NewGeneration(7, p, []byte{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if gen.ID != 7 {
		t.Fatalf("ID = %d", gen.ID)
	}
	if !bytes.Equal(gen.Block(0), []byte{1, 2, 3, 4}) {
		t.Fatalf("block 0 = %v", gen.Block(0))
	}
	if !bytes.Equal(gen.Block(1), []byte{5, 0, 0, 0}) {
		t.Fatalf("block 1 = %v", gen.Block(1))
	}
	if !bytes.Equal(gen.Block(2), []byte{0, 0, 0, 0}) {
		t.Fatalf("block 2 = %v", gen.Block(2))
	}
	want := []byte{1, 2, 3, 4, 5, 0, 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(gen.Data(), want) {
		t.Fatalf("Data() = %v", gen.Data())
	}
}

func TestNewGenerationRejectsOversizedData(t *testing.T) {
	p := testParams(2, 4)
	if _, err := NewGeneration(0, p, make([]byte, 9)); err == nil {
		t.Fatal("expected ErrDataTooLarge")
	}
	if _, err := NewGeneration(0, testParams(0, 4), nil); err == nil {
		t.Fatal("expected invalid params error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 8, 40} {
		for _, m := range []int{1, 16, 128} {
			p := testParams(n, m)
			data := randomData(rng, n*m)
			gen, err := NewGeneration(1, p, data)
			if err != nil {
				t.Fatal(err)
			}
			enc := NewEncoder(gen, rng)
			dec, err := NewDecoder(1, p)
			if err != nil {
				t.Fatal(err)
			}
			sent := 0
			for !dec.Decoded() {
				if sent > 3*n+16 {
					t.Fatalf("n=%d m=%d: not decoded after %d packets", n, m, sent)
				}
				if _, err := dec.Add(enc.Next()); err != nil {
					t.Fatal(err)
				}
				sent++
			}
			if !bytes.Equal(dec.Data(), data) {
				t.Fatalf("n=%d m=%d: decoded data mismatch", n, m)
			}
		}
	}
}

func TestDecoderRejectsWrongGeneration(t *testing.T) {
	p := testParams(2, 4)
	dec, _ := NewDecoder(1, p)
	pk := &Packet{Generation: 2, Coeffs: []byte{1, 0}, Payload: []byte{1, 2, 3, 4}}
	if _, err := dec.Add(pk); err == nil {
		t.Fatal("expected generation mismatch error")
	}
}

func TestDecoderRejectsMalformedPacket(t *testing.T) {
	p := testParams(2, 4)
	dec, _ := NewDecoder(1, p)
	if _, err := dec.Add(&Packet{Generation: 1, Coeffs: []byte{1}, Payload: []byte{1, 2, 3, 4}}); err == nil {
		t.Fatal("expected malformed coeffs error")
	}
	if _, err := dec.Add(&Packet{Generation: 1, Coeffs: []byte{1, 0}, Payload: []byte{1}}); err == nil {
		t.Fatal("expected malformed payload error")
	}
}

func TestNonInnovativePacketDiscarded(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := testParams(4, 8)
	gen, _ := NewGeneration(0, p, randomData(rng, 32))
	enc := NewEncoder(gen, rng)
	dec, _ := NewDecoder(0, p)

	pk := enc.Next()
	dup := pk.Clone()
	if inn, _ := dec.Add(pk); !inn {
		t.Fatal("first packet must be innovative")
	}
	if inn, _ := dec.Add(dup); inn {
		t.Fatal("duplicate packet must be non-innovative")
	}
	if dec.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", dec.Rank())
	}

	// A scaled copy is also non-innovative.
	pk2 := enc.Next()
	scaled := pk2.Clone()
	gf256.ScaleSlice(gf256.StrategyAccel, scaled.Coeffs, 7)
	gf256.ScaleSlice(gf256.StrategyAccel, scaled.Payload, 7)
	if inn, _ := dec.Add(pk2); !inn {
		t.Fatal("second packet must be innovative")
	}
	if inn, _ := dec.Add(scaled); inn {
		t.Fatal("scaled copy must be non-innovative")
	}
}

func TestProgressiveBlockAvailability(t *testing.T) {
	// Feed unit-vector packets: each should immediately decode one block.
	rng := rand.New(rand.NewSource(13))
	p := testParams(4, 8)
	data := randomData(rng, 32)
	gen, _ := NewGeneration(0, p, data)
	dec, _ := NewDecoder(0, p)

	for i := 0; i < 4; i++ {
		coeffs := make([]byte, 4)
		coeffs[i] = 1
		payload := append([]byte(nil), gen.Block(i)...)
		if inn, err := dec.Add(&Packet{Generation: 0, Coeffs: coeffs, Payload: payload}); err != nil || !inn {
			t.Fatalf("unit packet %d: innovative=%v err=%v", i, inn, err)
		}
		for j := 0; j <= i; j++ {
			if got := dec.Block(j); !bytes.Equal(got, gen.Block(j)) {
				t.Fatalf("after %d packets, block %d = %v, want %v", i+1, j, got, gen.Block(j))
			}
		}
		for j := i + 1; j < 4; j++ {
			if dec.Block(j) != nil {
				t.Fatalf("block %d available too early", j)
			}
		}
	}
	if !dec.Decoded() {
		t.Fatal("must be decoded after n unit packets")
	}
}

func TestBlockBoundsAndUnavailable(t *testing.T) {
	p := testParams(3, 2)
	dec, _ := NewDecoder(0, p)
	if dec.Block(-1) != nil || dec.Block(3) != nil || dec.Block(0) != nil {
		t.Fatal("out-of-range or unresolved blocks must be nil")
	}
	if dec.Data() != nil {
		t.Fatal("Data before decode must be nil")
	}
	// A mixed (non-unit) row resolves no block on its own.
	pk := &Packet{Generation: 0, Coeffs: []byte{1, 1, 0}, Payload: []byte{9, 9}}
	if inn, _ := dec.Add(pk); !inn {
		t.Fatal("packet must be innovative")
	}
	if dec.Block(0) != nil || dec.Block(1) != nil {
		t.Fatal("mixed row must not resolve a block")
	}
}

func TestRecoderEndToEnd(t *testing.T) {
	// Source -> relay (recoding) -> destination must deliver decodable
	// packets even though the destination never hears the source directly.
	rng := rand.New(rand.NewSource(14))
	p := testParams(8, 32)
	data := randomData(rng, 8*32)
	gen, _ := NewGeneration(3, p, data)
	enc := NewEncoder(gen, rng)
	relay, _ := NewRecoder(3, p, rng)
	dec, _ := NewDecoder(3, p)

	for i := 0; i < 8; i++ {
		if _, err := relay.Add(enc.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if !relay.Full() {
		t.Fatalf("relay rank = %d, want full", relay.Rank())
	}
	sent := 0
	for !dec.Decoded() {
		if sent > 40 {
			t.Fatal("destination cannot decode from recoded packets")
		}
		if _, err := dec.Add(relay.Next()); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if !bytes.Equal(dec.Data(), data) {
		t.Fatal("recoded round trip corrupted data")
	}
}

func TestRecoderPartialRankStillInnovative(t *testing.T) {
	// Two relays each holding distinct partial subspaces must both be able
	// to contribute innovative packets to the destination — the path
	// diversity effect OMNC relies on (Sec. 3.2).
	rng := rand.New(rand.NewSource(15))
	p := testParams(6, 16)
	gen, _ := NewGeneration(0, p, randomData(rng, 96))
	enc := NewEncoder(gen, rng)
	relayU, _ := NewRecoder(0, p, rng)
	relayV, _ := NewRecoder(0, p, rng)

	for i := 0; i < 3; i++ {
		relayU.Add(enc.Next())
		relayV.Add(enc.Next())
	}
	dec, _ := NewDecoder(0, p)
	for i := 0; i < 3; i++ {
		dec.Add(relayU.Next())
		dec.Add(relayV.Next())
	}
	// relayU and relayV received independent random packets, so with high
	// probability their spans differ and the union has rank 6.
	if dec.Rank() != 6 {
		t.Fatalf("rank = %d, want 6 (independent relay contributions)", dec.Rank())
	}
}

func TestRecoderEmptyEmitsNil(t *testing.T) {
	p := testParams(4, 4)
	rec, _ := NewRecoder(0, p, rand.New(rand.NewSource(1)))
	if rec.Next() != nil {
		t.Fatal("empty recoder must emit nil")
	}
	if rec.Full() || rec.Rank() != 0 {
		t.Fatal("empty recoder rank must be 0")
	}
	if rec.Generation() != 0 {
		t.Fatal("Generation() mismatch")
	}
}

func TestRecoderRejectsWrongGenerationAndMalformed(t *testing.T) {
	p := testParams(2, 2)
	rec, _ := NewRecoder(5, p, rand.New(rand.NewSource(1)))
	if _, err := rec.Add(&Packet{Generation: 4, Coeffs: []byte{1, 0}, Payload: []byte{0, 0}}); err == nil {
		t.Fatal("expected generation mismatch")
	}
	if _, err := rec.Add(&Packet{Generation: 5, Coeffs: []byte{1}, Payload: []byte{0, 0}}); err == nil {
		t.Fatal("expected malformed packet error")
	}
}

func TestIsInnovativeDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	p := testParams(4, 4)
	gen, _ := NewGeneration(0, p, randomData(rng, 16))
	enc := NewEncoder(gen, rng)
	m := newRREF(p)

	pk := enc.Next()
	m.add(pk.Coeffs, pk.Payload)

	probe := enc.Next()
	before := append([]byte(nil), probe.Coeffs...)
	_ = m.isInnovative(probe.Coeffs)
	if !bytes.Equal(probe.Coeffs, before) {
		t.Fatal("isInnovative mutated its input")
	}
	if m.rank() != 1 {
		t.Fatal("isInnovative changed the matrix")
	}

	dup := pk.Clone()
	if m.isInnovative(dup.Coeffs) {
		t.Fatal("duplicate must not be innovative")
	}
	fresh := enc.Next()
	if !m.isInnovative(fresh.Coeffs) {
		// With 4 blocks a random packet is innovative w.p. ~1-2^-24.
		t.Fatal("fresh random packet should be innovative")
	}
}

func TestDecoderExpectedOverheadSmall(t *testing.T) {
	// Random GF(2^8) coding needs n + epsilon packets; the expected
	// overhead is sum 1/(256^k - 1) < 0.005. Over many trials the average
	// number of packets needed must stay close to n.
	rng := rand.New(rand.NewSource(17))
	p := testParams(16, 4)
	total := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		gen, _ := NewGeneration(trial, p, randomData(rng, 64))
		enc := NewEncoder(gen, rng)
		dec, _ := NewDecoder(trial, p)
		for !dec.Decoded() {
			dec.Add(enc.Next())
			total++
		}
	}
	avg := float64(total) / trials
	if avg > 16.5 {
		t.Fatalf("average packets to decode = %.2f, want close to 16", avg)
	}
}

func TestPacketClone(t *testing.T) {
	pk := &Packet{Generation: 9, Coeffs: []byte{1, 2}, Payload: []byte{3, 4}}
	cl := pk.Clone()
	cl.Coeffs[0] = 99
	cl.Payload[0] = 99
	if pk.Coeffs[0] != 1 || pk.Payload[0] != 3 {
		t.Fatal("Clone must deep-copy")
	}
	if cl.Generation != 9 {
		t.Fatal("Clone lost generation")
	}
}

func TestDecoderGenerationAccessor(t *testing.T) {
	dec, _ := NewDecoder(42, testParams(2, 2))
	if dec.Generation() != 42 {
		t.Fatalf("Generation() = %d", dec.Generation())
	}
}

func TestNewDecoderRecoderValidate(t *testing.T) {
	if _, err := NewDecoder(0, testParams(0, 1)); err == nil {
		t.Fatal("NewDecoder must validate params")
	}
	if _, err := NewRecoder(0, testParams(1, 0), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("NewRecoder must validate params")
	}
}

func TestStrategiesProduceSameDecoding(t *testing.T) {
	// The choice of arithmetic kernel must never change decoding results.
	data := make([]byte, 6*8)
	rand.New(rand.NewSource(18)).Read(data)
	var outputs [][]byte
	for _, s := range []gf256.Strategy{gf256.StrategyNaive, gf256.StrategyTable, gf256.StrategyBitPlane, gf256.StrategyAccel} {
		p := Params{GenerationSize: 6, BlockSize: 8, Strategy: s}
		rng := rand.New(rand.NewSource(19)) // same packet sequence per strategy
		gen, _ := NewGeneration(0, p, data)
		enc := NewEncoder(gen, rng)
		dec, _ := NewDecoder(0, p)
		for !dec.Decoded() {
			dec.Add(enc.Next())
		}
		outputs = append(outputs, dec.Data())
	}
	for i := 1; i < len(outputs); i++ {
		if !bytes.Equal(outputs[0], outputs[i]) {
			t.Fatalf("strategy %d decoded different data", i)
		}
	}
}
