package coding

import (
	"math/rand"
	"testing"
)

// runChain pushes one generation down a lossy chain of the given scheme:
// source -> relay 1 .. relay hops-1 -> destination decoder. Each slot, the
// source and then every relay transmit one packet to the next stage; whether
// slot s on hop h delivers is decided by masks[h][s], which the caller
// precomputes ONCE and shares across schemes — so the schemes face the
// identical erasure pattern and differ only in what they put on the air.
// Returns the destination's rank after the slots run out (or full rank,
// whichever is first).
func runChain(t *testing.T, scheme Scheme, p Params, masks [][]bool, rng *rand.Rand, redundancy float64) int {
	t.Helper()
	hops := len(masks)
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(scheme, gen, rng, redundancy)
	if err != nil {
		t.Fatal(err)
	}
	relays := make([]Relay, hops-1)
	for i := range relays {
		if relays[i], err = NewRelay(scheme, 0, p, rng); err != nil {
			t.Fatal(err)
		}
		defer relays[i].Close()
	}
	dec, err := NewDecoder(0, p)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()

	// deliver hands pk to stage i: a relay for i < len(relays), else the
	// destination decoder. Neither takes ownership of the reference.
	deliver := func(i int, pk *Packet) {
		if i < len(relays) {
			if _, err := relays[i].Add(pk); err != nil {
				t.Fatal(err)
			}
			return
		}
		if _, err := dec.Add(pk); err != nil {
			t.Fatal(err)
		}
	}
	for slot := 0; slot < len(masks[0]) && !dec.Decoded(); slot++ {
		if pk := src.Next(); pk != nil { // nil once the budget is spent
			if masks[0][slot] {
				deliver(0, pk)
			}
			pk.Release()
		}
		for i, relay := range relays {
			pk := relay.Next()
			if pk == nil {
				continue // nothing buffered yet
			}
			if masks[i+1][slot] {
				deliver(i+1, pk)
			}
			pk.Release()
		}
	}
	return dec.Rank()
}

// TestMultihopSchemeOrdering is the coding-layer half of the ISSUE's headline
// claim, demonstrated without the protocol stack in the way: on a lossy
// multihop chain under the SAME precomputed per-(hop, slot) loss pattern and
// equal (rateless) redundancy, innovative delivery orders
//
//	full-recoding RLNC >= end-to-end RLNC >= source-only Reed-Solomon
//
// and recoding's edge over RS is strict in aggregate. The mechanism: a
// recoding relay's every transmission is a fresh combination of its subspace
// (innovative to any receiver that lags it, w.h.p.), while a non-recoding
// relay can only repeat stored packets verbatim — and RS repeats are the
// least useful of all, duplicating exact shard indices the receiver may
// already hold. Individual seeds can tie (ranks cap at the generation size),
// so the ordering is asserted on sums across seeds.
func TestMultihopSchemeOrdering(t *testing.T) {
	p := testParams(16, 8)
	const (
		hops     = 3
		slots    = 40
		loss     = 0.45
		seeds    = 12
		maskSeed = 977
	)
	sums := make(map[Scheme]int, int(schemeCount))
	for trial := 0; trial < seeds; trial++ {
		// One erasure pattern per trial, shared by all schemes.
		maskRNG := rand.New(rand.NewSource(int64(maskSeed + trial)))
		masks := make([][]bool, hops)
		for h := range masks {
			masks[h] = make([]bool, slots)
			for s := range masks[h] {
				masks[h][s] = maskRNG.Float64() >= loss
			}
		}
		for scheme := Scheme(0); scheme < schemeCount; scheme++ {
			rng := rand.New(rand.NewSource(int64(100*trial + int(scheme))))
			sums[scheme] += runChain(t, scheme, p, masks, rng, 0)
		}
	}
	rlnc, e2e, rs := sums[SchemeRLNC], sums[SchemeRLNCE2E], sums[SchemeRS]
	t.Logf("aggregate destination rank over %d trials: rlnc %d, rlnc-e2e %d, rs %d (cap %d)",
		seeds, rlnc, e2e, rs, seeds*p.GenerationSize)
	if rlnc < e2e {
		t.Errorf("full-recoding RLNC (%d) delivered less than end-to-end RLNC (%d)", rlnc, e2e)
	}
	if e2e < rs {
		t.Errorf("end-to-end RLNC (%d) delivered less than Reed-Solomon (%d)", e2e, rs)
	}
	if rlnc <= rs {
		t.Errorf("full-recoding RLNC (%d) did not strictly beat Reed-Solomon (%d)", rlnc, rs)
	}
}

// TestMultihopLosslessParity is the control for the ordering test: with no
// loss at all, every scheme pushes the generation through the same chain to
// full rank — the schemes differ under erasures, not in fidelity.
func TestMultihopLosslessParity(t *testing.T) {
	p := testParams(16, 8)
	const hops = 3
	masks := make([][]bool, hops)
	for h := range masks {
		masks[h] = make([]bool, 4*p.GenerationSize)
		for s := range masks[h] {
			masks[h][s] = true
		}
	}
	for scheme := Scheme(0); scheme < schemeCount; scheme++ {
		rng := rand.New(rand.NewSource(int64(7 + int(scheme))))
		if rank := runChain(t, scheme, p, masks, rng, 0); rank != p.GenerationSize {
			t.Errorf("%v: lossless chain reached rank %d, want %d", scheme, rank, p.GenerationSize)
		}
	}
}
