//go:build race

package coding

// raceEnabled reports that the race detector is active: sync.Pool then
// randomly drops items to widen interleavings, so zero-allocation gates do
// not hold.
const raceEnabled = true
