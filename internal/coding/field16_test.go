package coding

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"omnc/internal/gf16"
)

// field16Params mirrors testParams under the 16-bit field; block sizes must
// be even (Validate enforces it).
func field16Params(n, m int) Params {
	return Params{GenerationSize: n, BlockSize: m, Field: Field16}
}

func TestParseFieldRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Field
	}{
		{"", Field8},
		{"8", Field8},
		{"16", Field16},
	} {
		got, err := ParseField(tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("ParseField(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
		// String round-trips back through ParseField (the canonical
		// spelling; "" normalizes to "8").
		back, err := ParseField(got.String())
		if err != nil || back != got {
			t.Fatalf("ParseField(%v.String()) = %v, %v", got, back, err)
		}
	}
	for _, bad := range []string{"4", "32", "gf16", " 8"} {
		if _, err := ParseField(bad); !errors.Is(err, ErrInvalidField) {
			t.Fatalf("ParseField(%q) error = %v, want ErrInvalidField", bad, err)
		}
	}
	if Field(7).Valid() || Field(-1).Valid() {
		t.Fatal("out-of-range Field values must not validate")
	}
}

func TestField16ParamsValidate(t *testing.T) {
	if err := field16Params(8, 32).Validate(); err != nil {
		t.Fatalf("even block size: %v", err)
	}
	if err := field16Params(8, 33).Validate(); err == nil {
		t.Fatal("odd block size must be rejected under GF(2^16)")
	}
	p := testParams(8, 33)
	p.Field = Field(9)
	if err := p.Validate(); !errors.Is(err, ErrInvalidField) {
		t.Fatalf("invalid field error = %v, want ErrInvalidField", err)
	}
	if got := field16Params(8, 32).CoeffBytes(); got != 16 {
		t.Fatalf("CoeffBytes = %d, want 16 (two bytes per coefficient)", got)
	}
	if got := field16Params(8, 32).PacketSize(); got != 16+32 {
		t.Fatalf("PacketSize = %d, want 48", got)
	}
}

// TestField16EncodeDecodeRoundTrip mirrors TestEncodeDecodeRoundTrip: random
// data survives encode -> decode across dimensions, now with two-byte
// coefficients. The per-packet non-innovation probability is ~1/65536, so the
// packet allowance is tighter than the GF(2^8) test needs.
func TestField16EncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 8, 40} {
		for _, m := range []int{2, 16, 128} {
			p := field16Params(n, m)
			data := randomData(rng, n*m)
			gen, err := NewGeneration(1, p, data)
			if err != nil {
				t.Fatal(err)
			}
			enc := NewEncoder(gen, rng)
			dec, err := NewDecoder(1, p)
			if err != nil {
				t.Fatal(err)
			}
			sent := 0
			for !dec.Decoded() {
				if sent > n+16 {
					t.Fatalf("n=%d m=%d: not decoded after %d packets", n, m, sent)
				}
				pk := enc.Next()
				if _, err := dec.Add(pk); err != nil {
					t.Fatal(err)
				}
				pk.Release()
				sent++
			}
			if !bytes.Equal(dec.Data(), data) {
				t.Fatalf("n=%d m=%d: decoded data mismatch", n, m)
			}
			dec.Close()
		}
	}
}

// TestField16LossyChainRoundTrip pushes one generation through the recoding
// chain source -> relay -> relay -> decoder under precomputed per-hop
// erasures — the multihop scenario the field option exists for — and checks
// exact recovery of the data.
func TestField16LossyChainRoundTrip(t *testing.T) {
	const (
		n, m  = 12, 64
		hops  = 3
		slots = 120
		loss  = 0.3
	)
	p := field16Params(n, m)
	rng := rand.New(rand.NewSource(42))
	data := randomData(rng, n*m)
	gen, err := NewGeneration(0, p, data)
	if err != nil {
		t.Fatal(err)
	}
	maskRNG := rand.New(rand.NewSource(977))
	masks := make([][]bool, hops)
	for h := range masks {
		masks[h] = make([]bool, slots)
		for s := range masks[h] {
			masks[h][s] = maskRNG.Float64() >= loss
		}
	}
	enc := NewEncoder(gen, rng)
	relays := make([]*Recoder, hops-1)
	for i := range relays {
		if relays[i], err = NewRecoder(0, p, rng); err != nil {
			t.Fatal(err)
		}
		defer relays[i].Close()
	}
	dec, err := NewDecoder(0, p)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	deliver := func(i int, pk *Packet) {
		if i < len(relays) {
			if _, err := relays[i].Add(pk); err != nil {
				t.Fatal(err)
			}
			return
		}
		if _, err := dec.Add(pk); err != nil {
			t.Fatal(err)
		}
	}
	for slot := 0; slot < slots && !dec.Decoded(); slot++ {
		pk := enc.Next()
		if masks[0][slot] {
			deliver(0, pk)
		}
		pk.Release()
		for i, relay := range relays {
			out := relay.Next()
			if out == nil {
				continue
			}
			if masks[i+1][slot] {
				deliver(i+1, out)
			}
			out.Release()
		}
	}
	if !dec.Decoded() {
		t.Fatalf("chain stalled at rank %d/%d", dec.Rank(), n)
	}
	if !bytes.Equal(dec.Data(), data) {
		t.Fatal("decoded data mismatch after lossy recoding chain")
	}
}

// TestField16RankMonotone mirrors TestPropertyRankMonotone: rank never
// decreases, never exceeds the packet count, and duplicates never count.
func TestField16RankMonotone(t *testing.T) {
	n := 10
	p := field16Params(n, 8)
	rng := rand.New(rand.NewSource(5))
	gen, _ := NewGeneration(0, p, nil)
	enc := NewEncoder(gen, rng)
	dec, _ := NewDecoder(0, p)
	defer dec.Close()
	prev := 0
	for i := 0; i < 2*n; i++ {
		pk := enc.Next()
		if i%3 == 2 {
			dup := pk.Clone()
			dec.Add(pk)
			pk.Release()
			pk = dup // resend a duplicate: must not raise rank
		}
		dec.Add(pk)
		pk.Release()
		r := dec.Rank()
		if r < prev || r > i+2 || r > n {
			t.Fatalf("packet %d: rank %d (prev %d)", i, r, prev)
		}
		prev = r
	}
	if prev != n {
		t.Fatalf("final rank %d, want %d", prev, n)
	}
}

// TestField16SystematicPrefix mirrors TestProgressiveBlockAvailability and
// the RS systematic-prefix test: hand-built unit-coefficient packets decode
// their block immediately, one at a time, before the generation completes.
func TestField16SystematicPrefix(t *testing.T) {
	const n, m = 5, 8
	p := field16Params(n, m)
	rng := rand.New(rand.NewSource(3))
	data := randomData(rng, n*m)
	gen, err := NewGeneration(0, p, data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(0, p)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	for i := 0; i < n; i++ {
		pk := &Packet{Generation: 0, Coeffs: make([]byte, p.CoeffBytes()), Payload: append([]byte(nil), gen.Block(i)...)}
		gf16.SetElem(pk.Coeffs, i, 1)
		innovative, err := dec.Add(pk)
		if err != nil || !innovative {
			t.Fatalf("unit packet %d: innovative=%v err=%v", i, innovative, err)
		}
		for j := 0; j < n; j++ {
			blk := dec.Block(j)
			if j <= i {
				if !bytes.Equal(blk, gen.Block(j)) {
					t.Fatalf("after %d unit packets: block %d wrong or unavailable", i+1, j)
				}
			} else if blk != nil {
				t.Fatalf("after %d unit packets: block %d available early", i+1, j)
			}
		}
	}
	if !dec.Decoded() || !bytes.Equal(dec.Data(), data) {
		t.Fatal("systematic prefix did not complete the generation")
	}
}

// isRREF16 is isRREF lifted to two-byte coefficients.
func isRREF16(m *rref) bool {
	fo := m.fops
	for c, r := range m.pivot {
		if r < 0 {
			continue
		}
		if fo.elem(m.coeffs[r], c) != 1 {
			return false
		}
		for other := 0; other < m.rows; other++ {
			if other != r && fo.elem(m.coeffs[other], c) != 0 {
				return false
			}
		}
		for cc := 0; cc < c; cc++ {
			if fo.elem(m.coeffs[r], cc) != 0 {
				return false
			}
		}
	}
	count := 0
	for _, r := range m.pivot {
		if r >= 0 {
			count++
		}
	}
	return count == m.rows
}

// TestField16RREFInvariant mirrors TestPropertyRREFInvariant over GF(2^16).
func TestField16RREFInvariant(t *testing.T) {
	const n = 8
	p := field16Params(n, 4)
	rng := rand.New(rand.NewSource(17))
	gen, _ := NewGeneration(0, p, nil)
	enc := NewEncoder(gen, rng)
	m := newRREF(p)
	defer m.release()
	for i := 0; i < n+3; i++ {
		pk := enc.Next()
		m.add(pk.Coeffs, pk.Payload)
		pk.Release()
		if !isRREF16(m) {
			t.Fatalf("matrix left RREF after packet %d", i)
		}
	}
	if m.rank() != n {
		t.Fatalf("rank %d, want %d", m.rank(), n)
	}
}

// TestField16BatchMatchesSequential extends the NextBatch bit-identity
// contract to the wide field: the batched element-wise weight draws must
// consume the RNG exactly as sequential emission does.
func TestField16BatchMatchesSequential(t *testing.T) {
	const n, bs, fill, batch = 8, 32, 5, 6
	load := func(seed int64) *Recoder {
		rng := rand.New(rand.NewSource(seed))
		gen, err := NewGeneration(1, field16Params(n, bs), randomData(rng, n*bs/2))
		if err != nil {
			t.Fatal(err)
		}
		enc := NewEncoder(gen, rng)
		rec, err := NewRecoder(1, field16Params(n, bs), rand.New(rand.NewSource(seed+1)))
		if err != nil {
			t.Fatal(err)
		}
		for rec.Rank() < fill {
			p := enc.Next()
			if _, err := rec.Add(p); err != nil {
				t.Fatal(err)
			}
			p.Release()
		}
		return rec
	}
	seq, bat := load(99), load(99)
	defer seq.Close()
	defer bat.Close()
	var want []*Packet
	for j := 0; j < batch; j++ {
		want = append(want, seq.Next())
	}
	got := bat.NextBatch(batch)
	if len(got) != batch {
		t.Fatalf("NextBatch returned %d packets, want %d", len(got), batch)
	}
	for j := range want {
		if !bytes.Equal(want[j].Coeffs, got[j].Coeffs) || !bytes.Equal(want[j].Payload, got[j].Payload) {
			t.Fatalf("batch packet %d differs from sequential Next", j)
		}
		want[j].Release()
		got[j].Release()
	}
	after, afterBatch := seq.Next(), bat.Next()
	if !bytes.Equal(after.Coeffs, afterBatch.Coeffs) {
		t.Fatal("RNG position diverged after the batch")
	}
	after.Release()
	afterBatch.Release()
}

// TestField16SchemeRestrictions pins the GF(2^8)-only corners: the
// Reed-Solomon Cauchy construction and the batch-decoding strawman reject a
// 16-bit parameter set with the typed sentinel.
func TestField16SchemeRestrictions(t *testing.T) {
	p := field16Params(8, 32)
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRSEncoder(gen); !errors.Is(err, ErrInvalidField) {
		t.Fatalf("NewRSEncoder error = %v, want ErrInvalidField", err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSource(SchemeRS, gen, rng, 0); !errors.Is(err, ErrInvalidField) {
		t.Fatalf("NewSource(SchemeRS) error = %v, want ErrInvalidField", err)
	}
	if _, err := NewBatchDecoder(0, p); !errors.Is(err, ErrInvalidField) {
		t.Fatalf("NewBatchDecoder error = %v, want ErrInvalidField", err)
	}
	// RLNC sources and relays accept the wide field.
	if _, err := NewSource(SchemeRLNC, gen, rng, 0); err != nil {
		t.Fatalf("NewSource(SchemeRLNC): %v", err)
	}
	relay, err := NewRelay(SchemeRLNC, 0, p, rng)
	if err != nil {
		t.Fatalf("NewRelay(SchemeRLNC): %v", err)
	}
	relay.Close()
}

// TestField16WireRoundTrip: a GF(2^16) packet survives marshal -> unmarshal
// byte-for-byte. The wire format carries the coefficient vector as opaque
// bytes with an explicit length, so no format change is needed.
func TestField16WireRoundTrip(t *testing.T) {
	p := field16Params(6, 32)
	rng := rand.New(rand.NewSource(8))
	gen, err := NewGeneration(3, p, randomData(rng, 6*32))
	if err != nil {
		t.Fatal(err)
	}
	pk := NewEncoder(gen, rng).Next()
	defer pk.Release()
	buf, err := MarshalData(9, pk)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != WireSize(p) {
		t.Fatalf("wire size %d, want %d", len(buf), WireSize(p))
	}
	msg, out, err := UnmarshalPacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Release()
	if msg.Session != 9 || out.Generation != 3 {
		t.Fatalf("header mismatch: session %d generation %d", msg.Session, out.Generation)
	}
	if !bytes.Equal(out.Coeffs, pk.Coeffs) || !bytes.Equal(out.Payload, pk.Payload) {
		t.Fatal("wire round-trip altered the packet")
	}
}
