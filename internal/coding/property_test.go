package coding

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"omnc/internal/gf256"
)

// TestPropertyRoundTrip checks decode(encode(B)) == B for arbitrary data and
// dimensions.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8, data []byte) bool {
		n := int(nRaw%20) + 1
		m := int(mRaw%64) + 1
		p := testParams(n, m)
		if len(data) > n*m {
			data = data[:n*m]
		}
		rng := rand.New(rand.NewSource(seed))
		gen, err := NewGeneration(0, p, data)
		if err != nil {
			return false
		}
		enc := NewEncoder(gen, rng)
		dec, _ := NewDecoder(0, p)
		for i := 0; i < 4*n+16 && !dec.Decoded(); i++ {
			dec.Add(enc.Next())
		}
		if !dec.Decoded() {
			return false
		}
		return bytes.Equal(dec.Data(), gen.Data())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRankNeverExceedsPackets checks rank <= packets absorbed and
// rank is monotone non-decreasing.
func TestPropertyRankMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		p := testParams(n, 8)
		rng := rand.New(rand.NewSource(seed))
		gen, _ := NewGeneration(0, p, nil)
		enc := NewEncoder(gen, rng)
		dec, _ := NewDecoder(0, p)
		prev := 0
		for i := 0; i < 2*n; i++ {
			var pk *Packet
			if i%3 == 2 {
				pk = enc.Next()
				pk2 := pk.Clone()
				dec.Add(pk)
				pk = pk2 // resend a duplicate
			} else {
				pk = enc.Next()
			}
			dec.Add(pk)
			r := dec.Rank()
			if r < prev || r > i+2 || r > n {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRecodingPreservesSubspace: packets emitted by a recoder are
// always inside the subspace the recoder received, i.e. a decoder that knows
// that subspace finds them non-innovative.
func TestPropertyRecodingPreservesSubspace(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		n := 10
		k := int(kRaw%uint8(n)) + 1 // relay receives k <= n packets
		p := testParams(n, 8)
		rng := rand.New(rand.NewSource(seed))
		gen, _ := NewGeneration(0, p, nil)
		enc := NewEncoder(gen, rng)
		relay, _ := NewRecoder(0, p, rng)
		shadow := newRREF(p) // tracks exactly what the relay received
		for i := 0; i < k; i++ {
			pk := enc.Next()
			shadowPk := pk.Clone()
			relay.Add(pk)
			shadow.add(shadowPk.Coeffs, shadowPk.Payload)
		}
		for i := 0; i < 5; i++ {
			out := relay.Next()
			if out == nil {
				return false
			}
			if shadow.isInnovative(out.Coeffs) {
				return false // recoder invented information it never had
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRREFInvariant: after every insertion the matrix is in reduced
// row-echelon form: each pivot column is a unit column and pivot rows lead
// with 1.
func TestPropertyRREFInvariant(t *testing.T) {
	f := func(seed int64) bool {
		n := 8
		p := testParams(n, 4)
		rng := rand.New(rand.NewSource(seed))
		gen, _ := NewGeneration(0, p, nil)
		enc := NewEncoder(gen, rng)
		m := newRREF(p)
		for i := 0; i < n+3; i++ {
			pk := enc.Next()
			m.add(pk.Coeffs, pk.Payload)
			if !isRREF(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func isRREF(m *rref) bool {
	for c, r := range m.pivot {
		if r < 0 {
			continue
		}
		if m.coeffs[r][c] != 1 {
			return false
		}
		for other := 0; other < m.rows; other++ {
			if other != r && m.coeffs[other][c] != 0 {
				return false
			}
		}
		// Leading entries: everything left of the pivot must be zero.
		for cc := 0; cc < c; cc++ {
			if m.coeffs[r][cc] != 0 {
				return false
			}
		}
	}
	// Every installed row must be a pivot row (zero rows are never
	// installed; rows at and above m.rows are scratch).
	count := 0
	for _, r := range m.pivot {
		if r >= 0 {
			count++
		}
	}
	return count == m.rows
}

// TestPropertyDotProductConsistency: a coded payload equals the coefficient
// combination of the source blocks, byte for byte.
func TestPropertyEncoderLinearity(t *testing.T) {
	f := func(seed int64) bool {
		n, m := 5, 16
		p := testParams(n, m)
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, n*m)
		rng.Read(data)
		gen, _ := NewGeneration(0, p, data)
		enc := NewEncoder(gen, rng)
		pk := enc.Next()
		for col := 0; col < m; col++ {
			var want byte
			for row := 0; row < n; row++ {
				want ^= gf256.Mul(pk.Coeffs[row], gen.Block(row)[col])
			}
			if pk.Payload[col] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
