package coding

import (
	"fmt"
	"math/rand"

	"omnc/internal/gf256"
)

// rref is a progressive Gauss-Jordan eliminator over the augmented matrix
// [R | X]: coefficient rows next to their coded payloads, maintained in
// reduced row-echelon form. It is the shared machinery behind both the
// destination's Decoder and the forwarders' Recoder.
//
// Keeping the matrix in RREF is exactly the paper's "progressive decoding"
// (Sec. 4): a non-innovative packet reduces to an all-zero row and is
// discarded immediately; once rank reaches n the left part is the identity
// and the right part is the decoded generation.
type rref struct {
	params Params
	// pivot[c] is the index into rows of the row whose leading coefficient
	// column is c, or -1.
	pivot []int
	// rows, in insertion order. Each row is stored as coeffs+payload.
	coeffs   [][]byte
	payloads [][]byte
}

func newRREF(params Params) *rref {
	pivot := make([]int, params.GenerationSize)
	for i := range pivot {
		pivot[i] = -1
	}
	return &rref{params: params, pivot: pivot}
}

// rank returns the number of linearly independent packets absorbed.
func (m *rref) rank() int { return len(m.coeffs) }

// full reports whether the matrix spans the whole generation.
func (m *rref) full() bool { return m.rank() == m.params.GenerationSize }

// add reduces the packet against the current basis and installs it if it is
// innovative. It reports whether the packet increased the rank. The packet's
// slices are consumed (ownership transfers to the matrix).
func (m *rref) add(coeffs, payload []byte) bool {
	st := m.params.strategy()
	// Forward-eliminate: cancel every known pivot column.
	for c := 0; c < len(coeffs); c++ {
		if coeffs[c] == 0 {
			continue
		}
		r := m.pivot[c]
		if r < 0 {
			continue
		}
		f := coeffs[c]
		gf256.MulAddSlice(st, coeffs, m.coeffs[r], f)
		gf256.MulAddSlice(st, payload, m.payloads[r], f)
	}
	// Find the leading column of what remains.
	lead := -1
	for c, v := range coeffs {
		if v != 0 {
			lead = c
			break
		}
	}
	if lead < 0 {
		return false // non-innovative: reduced to the zero row
	}
	// Normalize the leading coefficient to 1.
	if f := coeffs[lead]; f != 1 {
		inv := gf256.Inv(f)
		gf256.ScaleSlice(st, coeffs, inv)
		gf256.ScaleSlice(st, payload, inv)
	}
	// Back-substitute into all existing rows to keep RREF.
	for r := range m.coeffs {
		if f := m.coeffs[r][lead]; f != 0 {
			gf256.MulAddSlice(st, m.coeffs[r], coeffs, f)
			gf256.MulAddSlice(st, m.payloads[r], payload, f)
		}
	}
	m.pivot[lead] = len(m.coeffs)
	m.coeffs = append(m.coeffs, coeffs)
	m.payloads = append(m.payloads, payload)
	return true
}

// isInnovative reports whether the packet would increase the rank, without
// modifying the matrix or the packet.
func (m *rref) isInnovative(coeffs []byte) bool {
	st := m.params.strategy()
	work := append([]byte(nil), coeffs...)
	for c := 0; c < len(work); c++ {
		if work[c] == 0 {
			continue
		}
		r := m.pivot[c]
		if r < 0 {
			return true // a free leading column remains
		}
		gf256.MulAddSlice(st, work, m.coeffs[r], work[c])
	}
	for _, v := range work {
		if v != 0 {
			return true
		}
	}
	return false
}

// combine emits a fresh random combination of the stored rows: a re-encoded
// packet whose information content is the span of everything received.
func (m *rref) combine(rng *rand.Rand) (coeffs, payload []byte) {
	if len(m.coeffs) == 0 {
		return nil, nil
	}
	st := m.params.strategy()
	coeffs = make([]byte, m.params.GenerationSize)
	payload = make([]byte, m.params.BlockSize)
	for {
		nonZero := false
		weights := make([]byte, len(m.coeffs))
		for i := range weights {
			weights[i] = byte(rng.Intn(256))
			if weights[i] != 0 {
				nonZero = true
			}
		}
		if !nonZero {
			continue
		}
		for i, w := range weights {
			if w == 0 {
				continue
			}
			gf256.MulAddSlice(st, coeffs, m.coeffs[i], w)
			gf256.MulAddSlice(st, payload, m.payloads[i], w)
		}
		return coeffs, payload
	}
}

// Decoder progressively decodes one generation at the destination node.
type Decoder struct {
	gen int
	m   *rref
}

// NewDecoder returns a decoder for the identified generation.
func NewDecoder(generation int, params Params) (*Decoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Decoder{gen: generation, m: newRREF(params)}, nil
}

// Generation returns the generation ID this decoder accepts.
func (d *Decoder) Generation() int { return d.gen }

// Add absorbs a coded packet, reporting whether it was innovative. Packets
// from other generations are rejected with an error. The packet is consumed.
func (d *Decoder) Add(p *Packet) (innovative bool, err error) {
	if p.Generation != d.gen {
		return false, fmt.Errorf("coding: packet generation %d, decoder generation %d", p.Generation, d.gen)
	}
	if len(p.Coeffs) != d.m.params.GenerationSize || len(p.Payload) != d.m.params.BlockSize {
		return false, fmt.Errorf("coding: malformed packet (%d coeffs, %d payload)", len(p.Coeffs), len(p.Payload))
	}
	return d.m.add(p.Coeffs, p.Payload), nil
}

// Rank returns the current number of independent packets.
func (d *Decoder) Rank() int { return d.m.rank() }

// Decoded reports whether the full generation has been recovered.
func (d *Decoder) Decoded() bool { return d.m.full() }

// Block returns decoded source block i, or nil if that block cannot be
// resolved yet. With progressive decoding a block is available as soon as
// its pivot row has become a unit vector, which can happen before the whole
// generation is decodable.
func (d *Decoder) Block(i int) []byte {
	if i < 0 || i >= d.m.params.GenerationSize {
		return nil
	}
	r := d.m.pivot[i]
	if r < 0 {
		return nil
	}
	row := d.m.coeffs[r]
	for c, v := range row {
		if (c == i && v != 1) || (c != i && v != 0) {
			return nil
		}
	}
	return d.m.payloads[r]
}

// Data returns the decoded generation (n*m bytes) once Decoded is true, and
// nil before that.
func (d *Decoder) Data() []byte {
	if !d.Decoded() {
		return nil
	}
	p := d.m.params
	out := make([]byte, 0, p.GenerationSize*p.BlockSize)
	for i := 0; i < p.GenerationSize; i++ {
		out = append(out, d.m.payloads[d.m.pivot[i]]...)
	}
	return out
}

// Recoder buffers innovative packets at an intermediate forwarder and emits
// re-encoded packets: fresh random combinations of everything buffered
// (Sec. 3.1, "re-encoding"). It discards non-innovative arrivals, mirroring
// the relay behaviour the paper specifies.
type Recoder struct {
	gen int
	m   *rref
	rng *rand.Rand
}

// NewRecoder returns a recoder for the identified generation.
func NewRecoder(generation int, params Params, rng *rand.Rand) (*Recoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Recoder{gen: generation, m: newRREF(params), rng: rng}, nil
}

// Generation returns the generation ID this recoder accepts.
func (r *Recoder) Generation() int { return r.gen }

// Add absorbs a packet if it is innovative and reports whether it was.
func (r *Recoder) Add(p *Packet) (innovative bool, err error) {
	if p.Generation != r.gen {
		return false, fmt.Errorf("coding: packet generation %d, recoder generation %d", p.Generation, r.gen)
	}
	if len(p.Coeffs) != r.m.params.GenerationSize || len(p.Payload) != r.m.params.BlockSize {
		return false, fmt.Errorf("coding: malformed packet (%d coeffs, %d payload)", len(p.Coeffs), len(p.Payload))
	}
	return r.m.add(p.Coeffs, p.Payload), nil
}

// Rank returns the dimension of the buffered subspace.
func (r *Recoder) Rank() int { return r.m.rank() }

// Full reports whether the recoder holds the entire generation; further
// incoming packets are necessarily non-innovative (Sec. 4, "Packet and
// Queue Management").
func (r *Recoder) Full() bool { return r.m.full() }

// Packet emits one re-encoded packet, or nil when nothing has been buffered
// yet (a forwarder with no information cannot contribute).
func (r *Recoder) Packet() *Packet {
	coeffs, payload := r.m.combine(r.rng)
	if coeffs == nil {
		return nil
	}
	return &Packet{Generation: r.gen, Coeffs: coeffs, Payload: payload}
}
