package coding

import (
	"fmt"
	"math/rand"
)

// rref is a progressive Gauss-Jordan eliminator over the augmented matrix
// [R | X]: coefficient rows next to their coded payloads, maintained in
// reduced row-echelon form. It is the shared machinery behind both the
// destination's Decoder and the forwarders' Recoder.
//
// Keeping the matrix in RREF is exactly the paper's "progressive decoding"
// (Sec. 4): a non-innovative packet reduces to an all-zero row and is
// discarded immediately; once rank reaches n the left part is the identity
// and the right part is the decoded generation.
//
// All row storage for the full generation is preallocated up front from the
// buffer arena (pool.go) as two slabs of GenerationSize+1 rows — the extra
// row is the reduction scratch — so absorbing a packet allocates nothing:
// add copies the packet into the scratch row, eliminates in place, and
// installing an innovative row is a slice-header promotion, not a copy.
// release returns the slabs to the arena.
type rref struct {
	params Params
	fops   *fieldOps
	// pivot[c] is the index into rows of the row whose leading coefficient
	// column is c, or -1.
	pivot []int
	// rows is the rank: rows [0, rows) of coeffs/payloads are installed;
	// row `rows` is the reduction scratch.
	rows int
	// coeffs and payloads are GenerationSize+1 row views into the pooled
	// slabs.
	coeffs   [][]byte
	payloads [][]byte

	coefSlab []byte // pooled backing for coeffs
	paySlab  []byte // pooled backing for payloads
	weights  []byte // pooled re-encoding weight scratch (combineInto)
}

func newRREF(params Params) *rref {
	n, bs, cb := params.GenerationSize, params.BlockSize, params.CoeffBytes()
	m := &rref{
		params:   params,
		fops:     params.fieldOps(),
		pivot:    make([]int, n),
		coeffs:   make([][]byte, n+1),
		payloads: make([][]byte, n+1),
		coefSlab: getBuf((n + 1) * cb),
		paySlab:  getBuf((n + 1) * bs),
		weights:  getBuf(cb),
	}
	for i := range m.pivot {
		m.pivot[i] = -1
	}
	for i := 0; i <= n; i++ {
		m.coeffs[i] = m.coefSlab[i*cb : (i+1)*cb]
		m.payloads[i] = m.paySlab[i*bs : (i+1)*bs]
	}
	return m
}

// release returns the row slabs to the arena. The matrix must not be used
// afterwards; any row views previously handed out (Decoder.Block,
// Decoder.Data views) become invalid.
func (m *rref) release() {
	putBuf(m.coefSlab)
	putBuf(m.paySlab)
	putBuf(m.weights)
	m.coefSlab, m.paySlab, m.weights = nil, nil, nil
	m.coeffs, m.payloads = nil, nil
}

// rank returns the number of linearly independent packets absorbed.
func (m *rref) rank() int { return m.rows }

// full reports whether the matrix spans the whole generation.
func (m *rref) full() bool { return m.rows == m.params.GenerationSize }

// add reduces the packet against the current basis and installs it if it is
// innovative. It reports whether the packet increased the rank. The packet's
// slices are only read: the matrix copies them into its own storage, so the
// caller keeps ownership.
func (m *rref) add(coeffs, payload []byte) bool {
	fo := m.fops
	n := m.params.GenerationSize
	wc, wp := m.coeffs[m.rows], m.payloads[m.rows]
	copy(wc, coeffs)
	copy(wp, payload)
	// Forward-eliminate: cancel every known pivot column.
	for c := 0; c < n; c++ {
		f := fo.elem(wc, c)
		if f == 0 {
			continue
		}
		r := m.pivot[c]
		if r < 0 {
			continue
		}
		fo.mulAdd(wc, m.coeffs[r], f)
		fo.mulAdd(wp, m.payloads[r], f)
	}
	// Find the leading column of what remains.
	lead := -1
	var leadV uint32
	for c := 0; c < n; c++ {
		if v := fo.elem(wc, c); v != 0 {
			lead, leadV = c, v
			break
		}
	}
	if lead < 0 {
		return false // non-innovative: reduced to the zero row
	}
	// Normalize the leading coefficient to 1.
	if leadV != 1 {
		inv := fo.inv(leadV)
		fo.mul(wc, wc, inv)
		fo.mul(wp, wp, inv)
	}
	// Back-substitute into all existing rows to keep RREF.
	for r := 0; r < m.rows; r++ {
		if f := fo.elem(m.coeffs[r], lead); f != 0 {
			fo.mulAdd(m.coeffs[r], wc, f)
			fo.mulAdd(m.payloads[r], wp, f)
		}
	}
	// The scratch row becomes row `rows`; the next free row is the new
	// scratch.
	m.pivot[lead] = m.rows
	m.rows++
	return true
}

// isInnovative reports whether the packet would increase the rank, without
// modifying the matrix or the packet. It borrows the scratch row, which add
// fully overwrites on its next call.
func (m *rref) isInnovative(coeffs []byte) bool {
	fo := m.fops
	n := m.params.GenerationSize
	work := m.coeffs[m.rows]
	copy(work, coeffs)
	for c := 0; c < n; c++ {
		f := fo.elem(work, c)
		if f == 0 {
			continue
		}
		r := m.pivot[c]
		if r < 0 {
			return true // a free leading column remains
		}
		fo.mulAdd(work, m.coeffs[r], f)
	}
	// A non-zero element implies a non-zero byte, whatever the width.
	for _, v := range work {
		if v != 0 {
			return true
		}
	}
	return false
}

// combineInto overwrites coeffs and payload with a fresh random combination
// of the stored rows — a re-encoded packet whose information content is the
// span of everything received — and reports whether the matrix held
// anything to combine.
func (m *rref) combineInto(rng *rand.Rand, coeffs, payload []byte) bool {
	if m.rows == 0 {
		return false
	}
	fo := m.fops
	clear(coeffs)
	clear(payload)
	weights := m.weights[:m.rows*m.params.Field.elemSize()]
	for {
		nonZero := false
		for i := 0; i < m.rows; i++ {
			v := fo.randElem(rng)
			fo.setElem(weights, i, v)
			if v != 0 {
				nonZero = true
			}
		}
		if !nonZero {
			continue
		}
		for i := 0; i < m.rows; i++ {
			w := fo.elem(weights, i)
			if w == 0 {
				continue
			}
			fo.mulAdd(coeffs, m.coeffs[i], w)
			fo.mulAdd(payload, m.payloads[i], w)
		}
		return true
	}
}

// Decoder progressively decodes one generation at the destination node.
type Decoder struct {
	gen int
	m   *rref
}

// NewDecoder returns a progressive Gauss-Jordan decoder for the identified
// generation, with its whole elimination matrix preallocated from the
// buffer arena; Close returns the storage.
func NewDecoder(generation int, params Params) (*Decoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Decoder{gen: generation, m: newRREF(params)}, nil
}

// Generation returns the generation ID this decoder accepts.
func (d *Decoder) Generation() int { return d.gen }

// Add absorbs a coded packet, reporting whether it was innovative. Packets
// from other generations are rejected with an error. The packet is only
// read — the decoder copies into its own storage — so the caller keeps
// ownership (and any pooled reference) of it.
func (d *Decoder) Add(p *Packet) (innovative bool, err error) {
	if p.Generation != d.gen {
		return false, fmt.Errorf("coding: packet generation %d, decoder generation %d", p.Generation, d.gen)
	}
	if len(p.Coeffs) != d.m.params.CoeffBytes() || len(p.Payload) != d.m.params.BlockSize {
		return false, fmt.Errorf("coding: malformed packet (%d coeffs, %d payload)", len(p.Coeffs), len(p.Payload))
	}
	return d.m.add(p.Coeffs, p.Payload), nil
}

// Rank returns the current number of independent packets.
func (d *Decoder) Rank() int { return d.m.rank() }

// Decoded reports whether the full generation has been recovered.
func (d *Decoder) Decoded() bool { return d.m.full() }

// Close returns the decoder's preallocated row storage to the buffer arena.
// The decoder must not be used afterwards, and slices previously returned
// by Block or Data become invalid: copy them first if they outlive the
// decoder. Close is optional — an unclosed decoder is reclaimed by the GC —
// but closing keeps a long-lived session allocation-free across
// generations.
func (d *Decoder) Close() { d.m.release() }

// Block returns decoded source block i, or nil if that block cannot be
// resolved yet. With progressive decoding a block is available as soon as
// its pivot row has become a unit vector, which can happen before the whole
// generation is decodable. The returned slice aliases the decoder's row
// storage: valid until Close.
func (d *Decoder) Block(i int) []byte {
	if i < 0 || i >= d.m.params.GenerationSize {
		return nil
	}
	r := d.m.pivot[i]
	if r < 0 {
		return nil
	}
	row, fo := d.m.coeffs[r], d.m.fops
	for c := 0; c < d.m.params.GenerationSize; c++ {
		v := fo.elem(row, c)
		if (c == i && v != 1) || (c != i && v != 0) {
			return nil
		}
	}
	return d.m.payloads[r]
}

// Data returns the decoded generation (n*m bytes) once Decoded is true, and
// nil before that. The returned slice is freshly allocated and remains
// valid after Close.
func (d *Decoder) Data() []byte {
	if !d.Decoded() {
		return nil
	}
	p := d.m.params
	out := make([]byte, 0, p.GenerationSize*p.BlockSize)
	for i := 0; i < p.GenerationSize; i++ {
		out = append(out, d.m.payloads[d.m.pivot[i]]...)
	}
	return out
}

// Recoder buffers innovative packets at an intermediate forwarder and emits
// re-encoded packets: fresh random combinations of everything buffered
// (Sec. 3.1, "re-encoding"). It discards non-innovative arrivals, mirroring
// the relay behaviour the paper specifies.
type Recoder struct {
	gen int
	m   *rref
	rng *rand.Rand
}

// NewRecoder returns a recoder for the identified generation, with its
// whole buffering matrix preallocated from the buffer arena; Close returns
// the storage.
func NewRecoder(generation int, params Params, rng *rand.Rand) (*Recoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Recoder{gen: generation, m: newRREF(params), rng: rng}, nil
}

// Generation returns the generation ID this recoder accepts.
func (r *Recoder) Generation() int { return r.gen }

// Add absorbs a packet if it is innovative and reports whether it was. Like
// Decoder.Add, the packet is only read; the caller keeps ownership.
func (r *Recoder) Add(p *Packet) (innovative bool, err error) {
	if p.Generation != r.gen {
		return false, fmt.Errorf("coding: packet generation %d, recoder generation %d", p.Generation, r.gen)
	}
	if len(p.Coeffs) != r.m.params.CoeffBytes() || len(p.Payload) != r.m.params.BlockSize {
		return false, fmt.Errorf("coding: malformed packet (%d coeffs, %d payload)", len(p.Coeffs), len(p.Payload))
	}
	return r.m.add(p.Coeffs, p.Payload), nil
}

// Rank returns the dimension of the buffered subspace.
func (r *Recoder) Rank() int { return r.m.rank() }

// Full reports whether the recoder holds the entire generation; further
// incoming packets are necessarily non-innovative (Sec. 4, "Packet and
// Queue Management").
func (r *Recoder) Full() bool { return r.m.full() }

// Close returns the recoder's preallocated row storage to the buffer arena.
// The recoder must not be used afterwards.
func (r *Recoder) Close() { r.m.release() }

// Next emits one re-encoded packet drawn from the packet arena — the caller
// owns one reference, as with Encoder.Next — or nil when nothing has been
// buffered yet (a forwarder with no information cannot contribute).
func (r *Recoder) Next() *Packet {
	pk := GetPacket(r.m.params)
	pk.Generation = r.gen
	if !r.m.combineInto(r.rng, pk.Coeffs, pk.Payload) {
		pk.Release()
		return nil
	}
	return pk
}
