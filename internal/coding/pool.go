package coding

import "sync"

// This file is the buffer arena behind the zero-allocation session hot path.
//
// Three kinds of hot-path storage cycle through it:
//
//   - Packets: Encoder.Next and Recoder.Next draw *Packet objects (struct
//     plus coefficient and payload buffers) from a sync.Pool; Packet.Release
//     returns them. Packets are reference counted so a broadcast MAC can
//     deliver one packet to several receivers before it is reclaimed.
//   - Elimination slabs: every Decoder/Recoder preallocates its pivot and
//     row storage for the whole generation up front as two slabs drawn from
//     the size-classed byte pool; Close returns them.
//   - Wire frames: GetFrame/PutFrame cycle serialization buffers for the
//     wire encode/decode path.
//
// The arena is package-global and safe for concurrent use: sync.Pool shards
// per P, and packet reference counts are atomic, so concurrent sessions
// (internal/parallel workers) share it without contention or aliasing.

// packetPool recycles Packet structs together with their attached buffers.
// Keeping the buffers attached to the pooled struct avoids both the
// interface boxing a []byte-valued sync.Pool would cost on every Put and a
// separate size lookup on every Get.
var packetPool = sync.Pool{New: func() interface{} { return new(Packet) }}

// bufPool is the size-classed byte-slab arena: class i holds slabs of
// exactly 1<<(i+bufClassShift) bytes. Slabs are stored via a small header
// struct so Put does not box a slice header on every call; headers
// themselves cycle through headerPool.
const (
	bufClassShift = 5  // smallest class: 32 B
	bufClasses    = 17 // largest class: 32 B << 16 = 2 MiB
)

type bufHeader struct {
	b []byte
}

var (
	bufPool    [bufClasses]sync.Pool
	headerPool = sync.Pool{New: func() interface{} { return new(bufHeader) }}
)

// bufClass returns the class index whose slab capacity is the smallest
// power of two >= n (at least the minimum class), or -1 when n is too large
// to pool.
func bufClass(n int) int {
	if n > 1<<(bufClassShift+bufClasses-1) {
		return -1
	}
	c := 0
	for 1<<(bufClassShift+c) < n {
		c++
	}
	return c
}

// getBuf returns a zeroed slice of length n backed by a pooled slab.
// Buffers whose size exceeds the largest class are allocated directly and
// simply dropped by putBuf.
func getBuf(n int) []byte {
	c := bufClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := bufPool[c].Get(); v != nil {
		h := v.(*bufHeader)
		b := h.b[:n]
		h.b = nil
		headerPool.Put(h)
		clear(b)
		return b
	}
	return make([]byte, n, 1<<(bufClassShift+c))
}

// putBuf returns a slab obtained from getBuf to its class. Slices whose
// capacity does not match a class exactly (including oversized direct
// allocations) are dropped for the GC.
func putBuf(b []byte) {
	if b == nil {
		return
	}
	c := bufClass(cap(b))
	if c < 0 || cap(b) != 1<<(bufClassShift+c) {
		return
	}
	h := headerPool.Get().(*bufHeader)
	h.b = b[:cap(b)]
	bufPool[c].Put(h)
}

// GetPacket returns a pooled packet sized for params, zeroed, with one
// reference held by the caller. Release the reference (Packet.Release) to
// return the packet to the arena; forgetting to release is safe but forfeits
// reuse.
func GetPacket(params Params) *Packet {
	pk := packetPool.Get().(*Packet)
	n, m := params.CoeffBytes(), params.BlockSize
	if cap(pk.Coeffs) >= n {
		pk.Coeffs = pk.Coeffs[:n]
		clear(pk.Coeffs)
	} else {
		pk.Coeffs = getBuf(n)
	}
	if cap(pk.Payload) >= m {
		pk.Payload = pk.Payload[:m]
		clear(pk.Payload)
	} else {
		pk.Payload = getBuf(m)
	}
	pk.Generation = 0
	pk.Session = 0
	pk.pooled = true
	pk.refs.Store(1)
	return pk
}

// Retain adds a reference to a pooled packet, keeping it alive across an
// additional owner (e.g. one scheduled MAC delivery). On packets not drawn
// from the arena it is a no-op.
func (pk *Packet) Retain() {
	if pk.pooled {
		pk.refs.Add(1)
	}
}

// Release drops one reference; the last release returns the packet and its
// buffers to the arena. On packets not drawn from the arena it is a no-op.
// Releasing more references than were held corrupts the arena, so the final
// transition is checked and panics on double release.
func (pk *Packet) Release() {
	if !pk.pooled {
		return
	}
	switch n := pk.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("coding: Packet.Release without a matching reference")
	}
	// pooled stays set: it marks arena provenance, so a stray Release on a
	// packet already back in the arena trips the refcount panic above
	// instead of silently corrupting the pool.
	packetPool.Put(pk)
}

// refcount is exposed for tests.
func (pk *Packet) refcount() int32 { return pk.refs.Load() }
