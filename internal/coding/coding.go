// Package coding implements the random linear network coding (RLC) scheme
// OMNC transmits with (Sec. 3.1 and 4 of the paper): source data is grouped
// into generations of n blocks of m bytes; coded packets carry a random
// GF(2^8) combination of the blocks together with its coefficient vector;
// intermediate forwarders re-encode buffered innovative packets; and the
// destination decodes progressively with Gauss-Jordan elimination, keeping
// its matrix in reduced row-echelon form so that innovation checks and
// decoding happen on the fly.
//
// # Packet ownership
//
// The emission hot path is allocation-free: Encoder.Next and Recoder.Next
// draw reference-counted packets from a package-global arena (pool.go).
// The caller owns exactly one reference to the returned packet and must
// call Packet.Release when done with it — or Packet.Retain first when
// handing it to an additional owner (a broadcast MAC retains once per
// scheduled delivery). Decoder.Add and Recoder.Add never take ownership:
// they copy what they need into preallocated row storage, so the caller's
// packet is untouched and still the caller's to release. Packets built by
// hand (&Packet{...}, Clone, wire.Unmarshal) are not pooled; Retain and
// Release are no-ops on them, so code can release uniformly.
package coding

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"omnc/internal/gf256"
)

// Params fixes the coding parameters of a session. The paper's evaluation
// uses 40 blocks of 1 KB per generation.
type Params struct {
	// GenerationSize is n, the number of source blocks per generation.
	GenerationSize int
	// BlockSize is m, the number of payload bytes per block.
	BlockSize int
	// Strategy selects the GF(2^8) bulk-arithmetic kernel. The zero value
	// means gf256.StrategyAccel. Ignored under Field16, which has a single
	// kernel.
	Strategy gf256.Strategy
	// Field selects the coefficient field; the zero value is Field8
	// (GF(2^8), the paper's field, bit-identical to builds without the
	// option). Field16 halves the non-innovation probability per packet at
	// the cost of doubled coefficient overhead.
	Field Field
}

// DefaultParams are the evaluation parameters from Sec. 5 of the paper:
// each generation contains 40 data blocks and each data block is 1 KB.
func DefaultParams() Params {
	return Params{GenerationSize: 40, BlockSize: 1024, Strategy: gf256.StrategyAccel}
}

// Validate reports whether the parameters identify a usable code.
func (p Params) Validate() error {
	if p.GenerationSize <= 0 {
		return fmt.Errorf("coding: generation size %d must be positive", p.GenerationSize)
	}
	if p.GenerationSize > 255 {
		// With byte coefficients the decoding matrix is over GF(2^8); more
		// than 255 blocks would make random ranks collide too often and the
		// paper never exceeds 40.
		return fmt.Errorf("coding: generation size %d exceeds 255", p.GenerationSize)
	}
	if p.BlockSize <= 0 {
		return fmt.Errorf("coding: block size %d must be positive", p.BlockSize)
	}
	if !p.Field.Valid() {
		return fmt.Errorf("%w: %d", ErrInvalidField, int(p.Field))
	}
	if p.Field == Field16 && p.BlockSize%2 != 0 {
		// GF(2^16) kernels operate on two-byte lanes; an odd block would
		// leave a dangling half element.
		return fmt.Errorf("coding: block size %d must be even under GF(2^16)", p.BlockSize)
	}
	return nil
}

func (p Params) strategy() gf256.Strategy {
	if p.Strategy == 0 {
		return gf256.StrategyAccel
	}
	return p.Strategy
}

// CoeffBytes returns the packed size of the coefficient vector in bytes:
// GenerationSize elements of the field's element width.
func (p Params) CoeffBytes() int { return p.GenerationSize * p.Field.elemSize() }

// PacketSize returns the number of bytes a coded packet occupies on the air:
// coefficient vector plus coded payload. (Headers are accounted separately
// by the simulator.)
func (p Params) PacketSize() int { return p.CoeffBytes() + p.BlockSize }

// Packet is one coded packet: a GF(2^8) linear combination of the blocks of
// one generation, carrying its combination coefficients. Packets emitted by
// Encoder.Next and Recoder.Next are pooled and reference counted — see the
// package-level ownership contract.
type Packet struct {
	// Generation identifies which generation the packet codes over.
	Generation int
	// Session tags the packet with its unicast session in multiple-unicast
	// emulations sharing one channel; single-session runs leave it zero. The
	// tag is emulator-side demultiplexing state, not part of the wire format.
	Session uint32
	// Coeffs has length GenerationSize; Coeffs[i] multiplies source block i.
	Coeffs []byte
	// Payload has length BlockSize: the coded block.
	Payload []byte

	// Arena bookkeeping (pool.go): pooled marks packets drawn from the
	// arena; refs counts outstanding owners of such packets.
	pooled bool
	refs   atomic.Int32
}

// SessionTag implements the emulator's sim.Tagged interface, letting the
// MAC route the packet straight to its session's receiver port (and shard
// same-time deliveries by session on the parallel engine).
func (pk *Packet) SessionTag() uint32 { return pk.Session }

// Clone returns a deep, unpooled copy of the packet; Release on the clone
// is a no-op.
func (pk *Packet) Clone() *Packet {
	return &Packet{
		Generation: pk.Generation,
		Session:    pk.Session,
		Coeffs:     append([]byte(nil), pk.Coeffs...),
		Payload:    append([]byte(nil), pk.Payload...),
	}
}

// Generation holds the source blocks of one generation (the matrix B in the
// paper, n rows of m bytes).
type Generation struct {
	ID     int
	params Params
	blocks [][]byte
}

// ErrDataTooLarge reports that the supplied data does not fit in a single
// generation.
var ErrDataTooLarge = errors.New("coding: data exceeds generation capacity")

// NewGeneration builds a generation from raw data, zero-padding the final
// block. Data longer than GenerationSize*BlockSize is an error.
func NewGeneration(id int, params Params, data []byte) (*Generation, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	capacity := params.GenerationSize * params.BlockSize
	if len(data) > capacity {
		return nil, fmt.Errorf("%w: %d > %d", ErrDataTooLarge, len(data), capacity)
	}
	// One backing slab for all blocks: two allocations per generation
	// instead of n+1, and the rows stay cache-adjacent for the encoder's
	// row scans.
	slab := make([]byte, capacity)
	copy(slab, data)
	blocks := make([][]byte, params.GenerationSize)
	for i := range blocks {
		blocks[i] = slab[i*params.BlockSize : (i+1)*params.BlockSize]
	}
	return &Generation{ID: id, params: params, blocks: blocks}, nil
}

// Params returns the generation's coding parameters.
func (g *Generation) Params() Params { return g.params }

// Block returns source block i (not a copy; callers must not modify it).
func (g *Generation) Block(i int) []byte { return g.blocks[i] }

// Data returns the concatenation of all blocks (length n*m, including any
// padding added by NewGeneration).
func (g *Generation) Data() []byte {
	out := make([]byte, 0, g.params.GenerationSize*g.params.BlockSize)
	for _, b := range g.blocks {
		out = append(out, b...)
	}
	return out
}

// Encoder produces random linear combinations of a generation's source
// blocks: one row of X = R * B per call (Sec. 3.1).
type Encoder struct {
	gen  *Generation
	rng  *rand.Rand
	fops *fieldOps
	// budget caps emissions per generation (the redundancy knob, set by
	// NewSource); 0 means unlimited — the rateless default.
	budget  int
	emitted int
}

// NewEncoder returns an encoder drawing coefficients from rng. The rng must
// not be shared concurrently.
func NewEncoder(gen *Generation, rng *rand.Rand) *Encoder {
	return &Encoder{gen: gen, rng: rng, fops: gen.params.fieldOps()}
}

// Next emits a fresh coded packet over the whole generation, drawn from the
// packet arena: the caller owns one reference and releases it when done
// (see the package ownership contract). Once the emission budget (if any)
// is exhausted, Next returns nil without consuming randomness.
func (e *Encoder) Next() *Packet {
	if e.budget > 0 && e.emitted >= e.budget {
		return nil
	}
	e.emitted++
	pk := GetPacket(e.gen.params)
	pk.Generation = e.gen.ID
	e.fill(pk)
	return pk
}

// fill overwrites pk with a fresh random combination of the generation.
func (e *Encoder) fill(pk *Packet) {
	fo := e.fops
	n := e.gen.params.GenerationSize
	coeffs := pk.Coeffs
	// Reject the (vanishingly unlikely) all-zero vector: it wastes a
	// transmission and is trivially non-innovative.
	for {
		nonZero := false
		for i := 0; i < n; i++ {
			v := fo.randElem(e.rng)
			fo.setElem(coeffs, i, v)
			if v != 0 {
				nonZero = true
			}
		}
		if nonZero {
			break
		}
	}
	for i := 0; i < n; i++ {
		fo.mulAdd(pk.Payload, e.gen.blocks[i], fo.elem(coeffs, i))
	}
}
