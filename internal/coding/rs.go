package coding

import (
	"fmt"

	"omnc/internal/gf256"
)

// maxRSShards is the number of distinct shards the systematic GF(2^8)
// Reed-Solomon code can produce: the n data shards plus the 256-n parity
// rows of the Cauchy generator. A rateless RS source cycles through them,
// so emission 256+k repeats shard k exactly — the structural reason
// source-only RS trails RLNC on lossy multihop paths.
const maxRSShards = 256

// RSEncoder emits the shards of a systematic Reed-Solomon code over one
// generation: shard j < n is source block j with the unit coefficient
// vector e_j, and shard r >= n is the Cauchy parity row
//
//	coeffs[c] = 1 / (x_r XOR y_c)   with x_r = r in [n, 256), y_c = c in [0, n)
//
// The x and y index sets are disjoint, so every square submatrix of the
// stacked [I; Cauchy] generator is invertible: any n distinct shards decode
// the generation (MDS). Shards ride the ordinary Packet wire format — the
// coefficient vector is explicit — so the destination's progressive
// Gauss-Jordan Decoder consumes them unchanged.
//
// RSEncoder implements Source. Like Encoder, emissions are drawn from the
// packet arena and the caller owns one reference per packet.
type RSEncoder struct {
	gen     *Generation
	kernel  gf256.Kernel
	next    int // next shard index, cycling [0, maxRSShards)
	budget  int // emissions allowed per generation; 0 = unlimited
	emitted int
}

// NewRSEncoder returns a systematic Reed-Solomon source for the
// generation. The GF(2^8) Cauchy construction caps GenerationSize at 255,
// which Params.Validate already guarantees, and ties the scheme to the
// default field: a GF(2^16) parameter set is rejected.
func NewRSEncoder(gen *Generation) (*RSEncoder, error) {
	if err := gen.params.Validate(); err != nil {
		return nil, err
	}
	if gen.params.Field != Field8 {
		return nil, fmt.Errorf("%w: Reed-Solomon is a GF(2^8) Cauchy construction", ErrInvalidField)
	}
	return &RSEncoder{gen: gen, kernel: gf256.KernelFor(gen.params.strategy())}, nil
}

// Shards returns the number of distinct shards the code can emit before it
// must repeat itself.
func (rs *RSEncoder) Shards() int { return maxRSShards }

// Next emits the next shard in sequence, cycling over the code's distinct
// shards, or nil once the emission budget is exhausted. The packet is drawn
// from the arena: the caller owns one reference.
func (rs *RSEncoder) Next() *Packet {
	if rs.budget > 0 && rs.emitted >= rs.budget {
		return nil
	}
	rs.emitted++
	shard := rs.next
	rs.next = (rs.next + 1) % maxRSShards
	pk := GetPacket(rs.gen.params)
	pk.Generation = rs.gen.ID
	rs.fill(pk, shard)
	return pk
}

// fill overwrites pk with the identified shard. GetPacket hands over zeroed
// buffers, so only the non-zero entries need writing.
func (rs *RSEncoder) fill(pk *Packet, shard int) {
	n := rs.gen.params.GenerationSize
	if shard < n {
		pk.Coeffs[shard] = 1
		copy(pk.Payload, rs.gen.blocks[shard])
		return
	}
	for c := 0; c < n; c++ {
		w := gf256.Inv(byte(shard) ^ byte(c))
		pk.Coeffs[c] = w
		rs.kernel.MulAdd(pk.Payload, rs.gen.blocks[c], w)
	}
}

// ShardCoeffs writes the coefficient vector of the identified shard into
// dst (length GenerationSize) — exposed so tests can check the generator's
// MDS structure without decoding payloads.
func (rs *RSEncoder) ShardCoeffs(dst []byte, shard int) error {
	n := rs.gen.params.GenerationSize
	if len(dst) != n {
		return fmt.Errorf("coding: coeffs length %d, generation size %d", len(dst), n)
	}
	if shard < 0 || shard >= maxRSShards {
		return fmt.Errorf("coding: shard %d outside [0, %d)", shard, maxRSShards)
	}
	clear(dst)
	if shard < n {
		dst[shard] = 1
		return nil
	}
	for c := 0; c < n; c++ {
		dst[c] = gf256.Inv(byte(shard) ^ byte(c))
	}
	return nil
}
