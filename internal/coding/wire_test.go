package coding

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWireDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := testParams(40, 1024)
	gen, _ := NewGeneration(7, p, randomData(rng, 100))
	pkt := NewEncoder(gen, rng).Next()

	buf, err := MarshalData(12345, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != WireSize(p) {
		t.Fatalf("wire size = %d, want %d", len(buf), WireSize(p))
	}
	msg, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MessageData || msg.Session != 12345 || msg.Generation != 7 {
		t.Fatalf("header = %+v", msg)
	}
	if msg.Packet.Generation != 7 {
		t.Fatalf("packet generation = %d", msg.Packet.Generation)
	}
	if !bytes.Equal(msg.Packet.Coeffs, pkt.Coeffs) || !bytes.Equal(msg.Packet.Payload, pkt.Payload) {
		t.Fatal("round trip corrupted the packet")
	}
}

func TestWireAckRoundTrip(t *testing.T) {
	buf := MarshalAck(99, 1234)
	if len(buf) != AckWireSize {
		t.Fatalf("ack size = %d", len(buf))
	}
	msg, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MessageAck || msg.Session != 99 || msg.Generation != 1234 {
		t.Fatalf("ack = %+v", msg)
	}
	if msg.Packet != nil {
		t.Fatal("ACK must carry no packet")
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
		want error
	}{
		{name: "empty", buf: nil, want: ErrTruncated},
		{name: "short", buf: []byte("OMNC"), want: ErrTruncated},
		{name: "bad magic", buf: append([]byte("XXXX"), make([]byte, 20)...), want: ErrBadMagic},
		{name: "bad version", buf: wireWith(t, func(b []byte) { b[4] = 9 }), want: ErrBadVersion},
		{name: "bad type", buf: wireWith(t, func(b []byte) { b[5] = 7 }), want: ErrBadType},
		{name: "truncated payload", buf: wireWith(t, nil)[:30], want: ErrTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Unmarshal(tt.buf)
			if !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func wireWith(t *testing.T, mutate func([]byte)) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(72))
	p := testParams(8, 32)
	gen, _ := NewGeneration(0, p, nil)
	buf, err := MarshalData(1, NewEncoder(gen, rng).Next())
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(buf)
	}
	return buf
}

func TestWireZeroDimensionsRejected(t *testing.T) {
	buf := wireWith(t, func(b []byte) { b[14], b[15] = 0, 0 })
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("zero generation size must fail")
	}
	buf = wireWith(t, func(b []byte) { b[16], b[17] = 0, 0 })
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("zero block size must fail")
	}
}

func TestMarshalDataValidation(t *testing.T) {
	if _, err := MarshalData(1, nil); err == nil {
		t.Fatal("nil packet must fail")
	}
	if _, err := MarshalData(1, &Packet{Coeffs: nil, Payload: []byte{1}}); err == nil {
		t.Fatal("empty coefficients must fail")
	}
	if _, err := MarshalData(1, &Packet{Generation: -1, Coeffs: []byte{1}, Payload: []byte{1}}); err == nil {
		t.Fatal("negative generation must fail")
	}
	big := &Packet{Coeffs: make([]byte, 70000), Payload: []byte{1}}
	if _, err := MarshalData(1, big); err == nil {
		t.Fatal("oversized coefficient vector must fail")
	}
}

// TestWireNeverPanics hammers Unmarshal with random buffers: parse errors
// are fine, panics are not.
func TestWireNeverPanics(t *testing.T) {
	f := func(raw []byte, stampMagic bool) bool {
		buf := raw
		if stampMagic && len(buf) >= 6 {
			copy(buf, wireMagic)
			buf[4] = wireVersion
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Unmarshal panicked on %v: %v", buf, r)
			}
		}()
		_, _ = Unmarshal(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestWireEndToEnd serializes a full generation's packets across the wire
// and decodes from the parsed form.
func TestWireEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := testParams(8, 64)
	data := randomData(rng, 8*64)
	gen, _ := NewGeneration(3, p, data)
	enc := NewEncoder(gen, rng)
	dec, _ := NewDecoder(3, p)
	for !dec.Decoded() {
		buf, err := MarshalData(5, enc.Next())
		if err != nil {
			t.Fatal(err)
		}
		msg, err := Unmarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Add(msg.Packet.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dec.Data(), data) {
		t.Fatal("wire round trip corrupted the generation")
	}
}
