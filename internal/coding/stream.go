package coding

import (
	"encoding/binary"
	"fmt"
)

// Stream splits an arbitrary payload into consecutive generations and
// reassembles it on the far side — the "long lived unicast session"
// workload OMNC is designed for (Sec. 3.1: "the source node continuously
// generates packet streams from a group of data blocks"). The exact
// payload length survives the round trip: the first 8 bytes of the first
// generation carry it, so zero padding in the last block is stripped on
// reassembly.

// streamHeaderLen is the length prefix prepended to the payload.
const streamHeaderLen = 8

// StreamSplit packs data into as many generations as needed under params,
// numbering them from firstGen. The inverse is StreamReassemble.
func StreamSplit(data []byte, params Params, firstGen int) ([]*Generation, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	framed := make([]byte, streamHeaderLen+len(data))
	binary.BigEndian.PutUint64(framed, uint64(len(data)))
	copy(framed[streamHeaderLen:], data)

	genBytes := params.GenerationSize * params.BlockSize
	var out []*Generation
	for off := 0; off < len(framed); off += genBytes {
		end := off + genBytes
		if end > len(framed) {
			end = len(framed)
		}
		g, err := NewGeneration(firstGen+len(out), params, framed[off:end])
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		// Zero-byte payload still needs one generation for the header.
		g, err := NewGeneration(firstGen, params, framed)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// StreamGenerations returns how many generations StreamSplit will produce
// for a payload of the given length.
func StreamGenerations(dataLen int, params Params) int {
	genBytes := params.GenerationSize * params.BlockSize
	framed := streamHeaderLen + dataLen
	n := (framed + genBytes - 1) / genBytes
	if n == 0 {
		n = 1
	}
	return n
}

// StreamReassemble inverts StreamSplit: given the decoded generation
// payloads in order (each GenerationSize*BlockSize bytes, as returned by
// Decoder.Data), it recovers the original data with padding stripped.
func StreamReassemble(decoded [][]byte, params Params) ([]byte, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(decoded) == 0 {
		return nil, fmt.Errorf("coding: no generations to reassemble")
	}
	genBytes := params.GenerationSize * params.BlockSize
	if genBytes < streamHeaderLen {
		return nil, fmt.Errorf("coding: generation too small (%d bytes) for the stream header", genBytes)
	}
	for i, d := range decoded {
		if len(d) != genBytes {
			return nil, fmt.Errorf("coding: generation %d has %d bytes, want %d", i, len(d), genBytes)
		}
	}
	total := int64(binary.BigEndian.Uint64(decoded[0]))
	if total < 0 || total > int64(len(decoded))*int64(genBytes)-streamHeaderLen {
		return nil, fmt.Errorf("coding: declared length %d exceeds decoded data", total)
	}
	need := StreamGenerations(int(total), params)
	if len(decoded) < need {
		return nil, fmt.Errorf("coding: %d generations decoded, stream needs %d", len(decoded), need)
	}
	out := make([]byte, 0, total)
	remaining := total
	for i := 0; i < need && remaining > 0; i++ {
		chunk := decoded[i]
		if i == 0 {
			chunk = chunk[streamHeaderLen:]
		}
		take := int64(len(chunk))
		if take > remaining {
			take = remaining
		}
		out = append(out, chunk[:take]...)
		remaining -= take
	}
	return out, nil
}
