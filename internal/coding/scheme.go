package coding

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Scheme selects the coding strategy a session runs: who codes, and whether
// intermediate forwarders re-encode. The zero value is SchemeRLNC, the
// paper's full-recoding scheme, so existing configurations are unchanged.
type Scheme int

const (
	// SchemeRLNC is the paper's scheme: the source emits random GF(2^8)
	// combinations and every forwarder re-encodes over its buffered
	// subspace, refreshing redundancy at each hop (Sec. 3.1).
	SchemeRLNC Scheme = iota
	// SchemeRLNCE2E is end-to-end RLNC: the source codes exactly as in
	// SchemeRLNC, but forwarders queue innovative packets verbatim and
	// never re-encode, so loss accumulates multiplicatively along the path.
	SchemeRLNCE2E
	// SchemeRS is source-only systematic Reed-Solomon over GF(2^8): the
	// source emits the n data shards followed by deterministic Cauchy
	// parity shards, cycling over the at most 256 distinct shards; relays
	// forward verbatim as in SchemeRLNCE2E. Repeated shards are exact
	// duplicates — the destination can use each shard index only once —
	// which is precisely why the scheme trails end-to-end RLNC on lossy
	// paths.
	SchemeRS

	schemeCount
)

// ErrInvalidScheme reports a scheme value or name outside the supported set.
var ErrInvalidScheme = errors.New("coding: invalid scheme")

// ErrInvalidRedundancy reports a redundancy factor outside [1, inf) (0 keeps
// the rateless default).
var ErrInvalidRedundancy = errors.New("coding: invalid redundancy")

// schemeNames are the canonical flag spellings, indexed by Scheme.
var schemeNames = [schemeCount]string{
	SchemeRLNC:    "rlnc",
	SchemeRLNCE2E: "rlnc-e2e",
	SchemeRS:      "rs",
}

// String returns the canonical name ("rlnc", "rlnc-e2e", "rs"), round-trips
// through ParseScheme, and is what the CLI -scheme flags print and accept.
func (s Scheme) String() string {
	if s >= 0 && s < schemeCount {
		return schemeNames[s]
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Valid reports whether s is one of the defined schemes.
func (s Scheme) Valid() bool { return s >= 0 && s < schemeCount }

// Recodes reports whether forwarders re-encode under this scheme; when
// false, relays queue innovative packets verbatim (ForwardBuffer) instead
// of combining them (Recoder).
func (s Scheme) Recodes() bool { return s == SchemeRLNC }

// ParseScheme maps a canonical scheme name back to its value; unknown names
// return an error satisfying errors.Is(err, ErrInvalidScheme).
func ParseScheme(name string) (Scheme, error) {
	for s, n := range schemeNames {
		if n == name {
			return Scheme(s), nil
		}
	}
	return 0, fmt.Errorf("%w: %q (want rlnc, rlnc-e2e or rs)", ErrInvalidScheme, name)
}

// ValidateRedundancy reports whether the redundancy factor is usable: 0
// keeps the rateless default (the source emits until the generation is
// acknowledged), and any factor >= 1 caps the source at
// ceil(redundancy * GenerationSize) emissions per generation. Factors in
// (0, 1) could never deliver a decodable generation and NaN is meaningless,
// so both are rejected with ErrInvalidRedundancy.
func ValidateRedundancy(r float64) error {
	if r == 0 {
		return nil
	}
	if math.IsNaN(r) || math.IsInf(r, 0) || r < 1 {
		return fmt.Errorf("%w: %v (want 0 for rateless, or a factor >= 1)", ErrInvalidRedundancy, r)
	}
	return nil
}

// EmissionBudget converts a redundancy factor into the number of coded
// packets a source may emit per generation: ceil(redundancy * n), or 0
// (unlimited) for the rateless default. Any factor >= 1 yields a budget of
// at least n, so a budget of 0 is unambiguously "no cap".
func EmissionBudget(redundancy float64, generationSize int) int {
	if redundancy <= 0 {
		return 0
	}
	return int(math.Ceil(redundancy * float64(generationSize)))
}

// Source is a per-generation packet producer at the session source. Next
// returns the next coded packet — the caller owns one pooled reference, per
// the package ownership contract — or nil once the generation's emission
// budget is exhausted (a fresh Source resets the budget).
//
// *Encoder (RLNC) and *RSEncoder implement Source.
type Source interface {
	Next() *Packet
}

// Relay is the per-generation forwarding component at an intermediate node:
// it absorbs innovative arrivals and emits packets for the next hop. Add
// never takes ownership of its argument (it copies, or retains, what it
// needs); Next transfers one reference of the returned packet to the
// caller, or returns nil when the relay has nothing to send.
//
// *Recoder (re-encoding, SchemeRLNC) and *ForwardBuffer (verbatim
// forwarding, SchemeRLNCE2E/SchemeRS) implement Relay.
type Relay interface {
	Generation() int
	Add(*Packet) (bool, error)
	Rank() int
	Full() bool
	Next() *Packet
	Close()
}

// NewSource returns the scheme's source-side packet producer for one
// generation, capped at EmissionBudget(redundancy, n) emissions (0 =
// rateless). Under the default SchemeRLNC with redundancy 0 the returned
// Source is exactly NewEncoder's encoder — same RNG draw sequence,
// bit-identical emissions.
func NewSource(scheme Scheme, gen *Generation, rng *rand.Rand, redundancy float64) (Source, error) {
	if !scheme.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrInvalidScheme, int(scheme))
	}
	if err := ValidateRedundancy(redundancy); err != nil {
		return nil, err
	}
	budget := EmissionBudget(redundancy, gen.params.GenerationSize)
	switch scheme {
	case SchemeRS:
		rs, err := NewRSEncoder(gen)
		if err != nil {
			return nil, err
		}
		rs.budget = budget
		return rs, nil
	default: // SchemeRLNC, SchemeRLNCE2E: the source side is identical.
		enc := NewEncoder(gen, rng)
		enc.budget = budget
		return enc, nil
	}
}

// NewRelay returns the scheme's forwarder-side component for one
// generation: a re-encoding Recoder under SchemeRLNC, a verbatim
// ForwardBuffer otherwise. rng is only consumed by the recoding scheme.
func NewRelay(scheme Scheme, generation int, params Params, rng *rand.Rand) (Relay, error) {
	if !scheme.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrInvalidScheme, int(scheme))
	}
	if scheme.Recodes() {
		return NewRecoder(generation, params, rng)
	}
	return NewForwardBuffer(generation, params)
}
