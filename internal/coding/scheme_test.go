package coding

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSchemeStringParseRoundTrip(t *testing.T) {
	for s := Scheme(0); s < schemeCount; s++ {
		got, err := ParseScheme(s.String())
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseScheme(%q) = %v, want %v", s.String(), got, s)
		}
	}
	for _, name := range []string{"", "RLNC", "rlnc ", "fountain", "rs256", "scheme(1)"} {
		if _, err := ParseScheme(name); !errors.Is(err, ErrInvalidScheme) {
			t.Errorf("ParseScheme(%q) = %v, want ErrInvalidScheme", name, err)
		}
	}
}

func TestSchemeValidRecodes(t *testing.T) {
	cases := []struct {
		scheme  Scheme
		valid   bool
		recodes bool
	}{
		{SchemeRLNC, true, true},
		{SchemeRLNCE2E, true, false},
		{SchemeRS, true, false},
		{Scheme(-1), false, false},
		{schemeCount, false, false},
	}
	for _, c := range cases {
		if got := c.scheme.Valid(); got != c.valid {
			t.Errorf("%v.Valid() = %v, want %v", c.scheme, got, c.valid)
		}
		if got := c.scheme.Recodes(); got != c.recodes {
			t.Errorf("%v.Recodes() = %v, want %v", c.scheme, got, c.recodes)
		}
	}
}

func TestValidateRedundancy(t *testing.T) {
	for _, ok := range []float64{0, 1, 1.5, 2.5, 100} {
		if err := ValidateRedundancy(ok); err != nil {
			t.Errorf("ValidateRedundancy(%v) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []float64{0.5, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := ValidateRedundancy(bad); !errors.Is(err, ErrInvalidRedundancy) {
			t.Errorf("ValidateRedundancy(%v) = %v, want ErrInvalidRedundancy", bad, err)
		}
	}
}

func TestEmissionBudget(t *testing.T) {
	cases := []struct {
		redundancy float64
		n, want    int
	}{
		{0, 16, 0},     // rateless: no cap
		{1, 16, 16},    // exactly one generation's worth
		{1.5, 16, 24},  // exact product
		{2.01, 16, 33}, // rounds up, never starves the decoder
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := EmissionBudget(c.redundancy, c.n); got != c.want {
			t.Errorf("EmissionBudget(%v, %d) = %d, want %d", c.redundancy, c.n, got, c.want)
		}
	}
}

// TestNewSourceMatchesEncoder pins the bit-identity contract behind the
// default configuration: the rateless RLNC Source is exactly NewEncoder's
// encoder — same RNG draw sequence, byte-identical emissions.
func TestNewSourceMatchesEncoder(t *testing.T) {
	p := testParams(8, 16)
	data := randomData(rand.New(rand.NewSource(9)), p.GenerationSize*p.BlockSize)
	mk := func() *Generation {
		gen, err := NewGeneration(0, p, data)
		if err != nil {
			t.Fatal(err)
		}
		return gen
	}
	src, err := NewSource(SchemeRLNC, mk(), rand.New(rand.NewSource(21)), 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(mk(), rand.New(rand.NewSource(21)))
	for i := 0; i < 3*p.GenerationSize; i++ {
		a, b := src.Next(), enc.Next()
		if !bytes.Equal(a.Coeffs, b.Coeffs) || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("emission %d differs between NewSource(SchemeRLNC) and NewEncoder", i)
		}
		a.Release()
		b.Release()
	}
}

// TestNewSourceBudget checks the redundancy knob on every scheme: a factor-r
// source emits exactly ceil(r*n) packets and then returns nil forever, and a
// fresh Source for the next generation starts with a full budget again.
func TestNewSourceBudget(t *testing.T) {
	p := testParams(8, 16)
	const redundancy = 1.5
	want := EmissionBudget(redundancy, p.GenerationSize)
	for s := Scheme(0); s < schemeCount; s++ {
		for round := 0; round < 2; round++ { // fresh Source = fresh budget
			gen, err := NewGeneration(round, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			src, err := NewSource(s, gen, rand.New(rand.NewSource(5)), redundancy)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < want; i++ {
				pk := src.Next()
				if pk == nil {
					t.Fatalf("%v round %d: source dried up after %d of %d emissions", s, round, i, want)
				}
				pk.Release()
			}
			for i := 0; i < 3; i++ {
				if pk := src.Next(); pk != nil {
					pk.Release()
					t.Fatalf("%v round %d: emission past the budget of %d", s, round, want)
				}
			}
		}
	}
}

func TestNewSourceNewRelayValidation(t *testing.T) {
	p := testParams(8, 16)
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSource(schemeCount, gen, rng, 0); !errors.Is(err, ErrInvalidScheme) {
		t.Errorf("NewSource(out of range) = %v, want ErrInvalidScheme", err)
	}
	if _, err := NewSource(SchemeRS, gen, rng, 0.5); !errors.Is(err, ErrInvalidRedundancy) {
		t.Errorf("NewSource(redundancy 0.5) = %v, want ErrInvalidRedundancy", err)
	}
	if _, err := NewRelay(Scheme(-1), 0, p, rng); !errors.Is(err, ErrInvalidScheme) {
		t.Errorf("NewRelay(out of range) = %v, want ErrInvalidScheme", err)
	}
}

// TestRSSystematicPrefix checks the systematic half of the code: the first n
// shards are the source blocks verbatim under unit coefficient vectors.
func TestRSSystematicPrefix(t *testing.T) {
	p := testParams(8, 32)
	rng := rand.New(rand.NewSource(31))
	gen, err := NewGeneration(0, p, randomData(rng, p.GenerationSize*p.BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRSEncoder(gen)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < p.GenerationSize; j++ {
		pk := rs.Next()
		for c, w := range pk.Coeffs {
			want := byte(0)
			if c == j {
				want = 1
			}
			if w != want {
				t.Fatalf("shard %d coeff %d = %d, want %d", j, c, w, want)
			}
		}
		if !bytes.Equal(pk.Payload, gen.Block(j)) {
			t.Fatalf("shard %d payload is not source block %d", j, j)
		}
		pk.Release()
	}
}

// TestRSCycleRepeatsExactly checks the rateless extension: emission
// maxRSShards+k is byte-identical to emission k — the code has exactly
// maxRSShards distinct shards and repeats them verbatim, which is the
// structural reason SchemeRS trails RLNC on lossy paths.
func TestRSCycleRepeatsExactly(t *testing.T) {
	p := testParams(4, 8)
	rng := rand.New(rand.NewSource(33))
	gen, err := NewGeneration(0, p, randomData(rng, p.GenerationSize*p.BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRSEncoder(gen)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Shards() != maxRSShards {
		t.Fatalf("Shards() = %d, want %d", rs.Shards(), maxRSShards)
	}
	first := make([]*Packet, 3)
	for i := range first {
		first[i] = rs.Next()
	}
	for i := 3; i < maxRSShards; i++ {
		rs.Next().Release()
	}
	for i := range first {
		again := rs.Next()
		if !bytes.Equal(again.Coeffs, first[i].Coeffs) || !bytes.Equal(again.Payload, first[i].Payload) {
			t.Fatalf("emission %d is not a verbatim repeat of emission %d", maxRSShards+i, i)
		}
		again.Release()
		first[i].Release()
	}
}

// TestRSMDSDecodesFromAnyShards is the MDS property the Cauchy construction
// guarantees: ANY n distinct shards — random subsets mixing data and parity
// rows — decode the generation exactly.
func TestRSMDSDecodesFromAnyShards(t *testing.T) {
	p := testParams(8, 32)
	rng := rand.New(rand.NewSource(37))
	gen, err := NewGeneration(0, p, randomData(rng, p.GenerationSize*p.BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRSEncoder(gen)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*Packet, maxRSShards)
	for i := range shards {
		shards[i] = rs.Next()
	}
	defer func() {
		for _, pk := range shards {
			pk.Release()
		}
	}()
	for trial := 0; trial < 25; trial++ {
		subset := rng.Perm(maxRSShards)[:p.GenerationSize]
		dec, err := NewDecoder(0, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range subset {
			innovative, err := dec.Add(shards[idx])
			if err != nil {
				t.Fatal(err)
			}
			if !innovative {
				t.Fatalf("trial %d: shard %d of subset %v is dependent — generator is not MDS", trial, idx, subset)
			}
		}
		if !dec.Decoded() {
			t.Fatalf("trial %d: %d distinct shards did not decode", trial, p.GenerationSize)
		}
		if !bytes.Equal(dec.Data(), gen.Data()) {
			t.Fatalf("trial %d: decoded data differs from source", trial)
		}
		dec.Close()
	}
}

// TestRSShardCoeffsMatchesEmission checks the test hook against the real
// emissions and its argument validation.
func TestRSShardCoeffsMatchesEmission(t *testing.T) {
	p := testParams(8, 16)
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRSEncoder(gen)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, p.GenerationSize)
	for shard := 0; shard < maxRSShards; shard++ {
		pk := rs.Next()
		if err := rs.ShardCoeffs(dst, shard); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, pk.Coeffs) {
			t.Fatalf("ShardCoeffs(%d) differs from the emitted vector", shard)
		}
		pk.Release()
	}
	if err := rs.ShardCoeffs(dst, -1); err == nil {
		t.Error("negative shard index accepted")
	}
	if err := rs.ShardCoeffs(dst, maxRSShards); err == nil {
		t.Error("out-of-range shard index accepted")
	}
	if err := rs.ShardCoeffs(dst[:3], 0); err == nil {
		t.Error("short destination accepted")
	}
}

// TestForwardBufferCycles checks the store rotation: with k stored packets,
// every run of k consecutive Next calls returns each exactly once, and the
// stream never dries up — the property that lets a non-recoding relay push a
// generation through arbitrary downstream loss.
func TestForwardBufferCycles(t *testing.T) {
	p := testParams(8, 16)
	rng := rand.New(rand.NewSource(41))
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	fb, err := NewForwardBuffer(0, p)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if fb.Next() != nil {
		t.Fatal("empty store emitted a packet")
	}
	const k = 5
	stored := make(map[*Packet]bool, k)
	for i := 0; i < k; i++ {
		pk := enc.Next()
		innovative, err := fb.Add(pk)
		if err != nil {
			t.Fatal(err)
		}
		if !innovative {
			t.Fatalf("random packet %d not innovative", i)
		}
		stored[pk] = true
		pk.Release()
	}
	if fb.Queued() != k {
		t.Fatalf("Queued() = %d, want %d", fb.Queued(), k)
	}
	for round := 0; round < 4; round++ {
		seen := make(map[*Packet]bool, k)
		for i := 0; i < k; i++ {
			pk := fb.Next()
			if pk == nil {
				t.Fatalf("round %d: store dried up at packet %d", round, i)
			}
			if !stored[pk] {
				t.Fatalf("round %d: emitted a packet that was never stored", round)
			}
			if seen[pk] {
				t.Fatalf("round %d: packet repeated before the rotation completed", round)
			}
			seen[pk] = true
			pk.Release()
		}
	}
}

// TestForwardBufferRejects checks the relay's input filtering: wrong
// generation and malformed packets error, dependent packets are dropped as
// non-innovative, and a full relay stops absorbing.
func TestForwardBufferRejects(t *testing.T) {
	p := testParams(4, 8)
	rng := rand.New(rand.NewSource(43))
	gen, err := NewGeneration(7, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	fb, err := NewForwardBuffer(7, p)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if fb.Generation() != 7 {
		t.Fatalf("Generation() = %d, want 7", fb.Generation())
	}
	pk := enc.Next()
	wrongGen := pk.Clone()
	wrongGen.Generation = 8
	if _, err := fb.Add(wrongGen); err == nil {
		t.Error("wrong-generation packet accepted")
	}
	short := &Packet{Generation: 7, Coeffs: make([]byte, 2), Payload: make([]byte, p.BlockSize)}
	if _, err := fb.Add(short); err == nil {
		t.Error("malformed packet accepted")
	}
	if innovative, err := fb.Add(pk); err != nil || !innovative {
		t.Fatalf("first packet: innovative=%v err=%v", innovative, err)
	}
	if innovative, err := fb.Add(pk); err != nil || innovative {
		t.Fatalf("exact duplicate: innovative=%v err=%v, want false nil", innovative, err)
	}
	if fb.Queued() != 1 {
		t.Fatalf("duplicate changed the store: Queued() = %d", fb.Queued())
	}
	pk.Release()
	for fb.Rank() < p.GenerationSize {
		pk := enc.Next()
		if _, err := fb.Add(pk); err != nil {
			t.Fatal(err)
		}
		pk.Release()
	}
	if !fb.Full() {
		t.Fatal("rank n but not Full")
	}
}

// TestForwardBufferRefcounts pins the ownership contract on the pooled
// arena: Add retains for the store, Next retains one more for the caller,
// Close releases the store — after which every reference the test holds is
// the only one left.
func TestForwardBufferRefcounts(t *testing.T) {
	p := testParams(4, 8)
	rng := rand.New(rand.NewSource(47))
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	fb, err := NewForwardBuffer(0, p)
	if err != nil {
		t.Fatal(err)
	}
	pk := enc.Next() // caller ref: 1
	if got := pk.refcount(); got != 1 {
		t.Fatalf("fresh emission refcount = %d, want 1", got)
	}
	if _, err := fb.Add(pk); err != nil { // store ref: 2
		t.Fatal(err)
	}
	if got := pk.refcount(); got != 2 {
		t.Fatalf("after Add refcount = %d, want 2", got)
	}
	out := fb.Next() // caller's forwarding ref: 3
	if out != pk {
		t.Fatal("Next returned a different packet than was stored")
	}
	if got := pk.refcount(); got != 3 {
		t.Fatalf("after Next refcount = %d, want 3", got)
	}
	fb.Close() // store drops its ref: 2
	if got := pk.refcount(); got != 2 {
		t.Fatalf("after Close refcount = %d, want 2", got)
	}
	out.Release()
	pk.Release()
	if got := pk.refcount(); got != 0 {
		t.Fatalf("after releasing all handles refcount = %d, want 0", got)
	}
}

// FuzzParseScheme hammers the -scheme flag parser: it must never panic, an
// accepted name must round-trip through String, and a rejected one must fail
// with the typed sentinel.
func FuzzParseScheme(f *testing.F) {
	for s := Scheme(0); s < schemeCount; s++ {
		f.Add(s.String())
	}
	f.Add("")
	f.Add("fountain")
	f.Add("RLNC")
	f.Add("rlnc-e2e ")
	f.Fuzz(func(t *testing.T, name string) {
		s, err := ParseScheme(name)
		if err != nil {
			if !errors.Is(err, ErrInvalidScheme) {
				t.Fatalf("rejection is not ErrInvalidScheme: %v", err)
			}
			return
		}
		if !s.Valid() {
			t.Fatalf("ParseScheme(%q) accepted invalid scheme %d", name, int(s))
		}
		if s.String() != name {
			t.Fatalf("ParseScheme(%q) = %v does not round-trip", name, s)
		}
	})
}

// TestAllocsRSEncoderNext gates the Reed-Solomon source hot path: emitting
// and releasing a shard — systematic and parity alike — must not allocate
// once the arena is warm. This is the scheme layer's half of the pooled-arena
// contract the ISSUE's bench gate enforces end to end.
func TestAllocsRSEncoderNext(t *testing.T) {
	skipIfRace(t)
	p := testParams(16, 64)
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRSEncoder(gen)
	if err != nil {
		t.Fatal(err)
	}
	warmArena(p)
	rs.Next().Release()
	avg := testing.AllocsPerRun(300, func() {
		rs.Next().Release()
	})
	if avg > allocTolerance {
		t.Errorf("RSEncoder.Next allocates %.2f objects per shard, want 0", avg)
	}
}

// TestAllocsRSDecode gates the destination under SchemeRS: absorbing a
// Reed-Solomon shard into the progressive decoder must not allocate.
func TestAllocsRSDecode(t *testing.T) {
	skipIfRace(t)
	p := testParams(16, 64)
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRSEncoder(gen)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(0, p)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	warmArena(p)
	rs.Next().Release()
	avg := testing.AllocsPerRun(200, func() {
		pk := rs.Next()
		if _, err := dec.Add(pk); err != nil {
			t.Fatal(err)
		}
		pk.Release()
	})
	if avg > allocTolerance {
		t.Errorf("RSEncoder.Next + Decoder.Add allocates %.2f objects per shard, want 0", avg)
	}
	if !dec.Decoded() {
		t.Fatal("decoder did not reach full rank")
	}
}

// TestAllocsForwardBufferNext gates the non-recoding relay hot path: cycling
// a stored packet out of the buffer must not allocate in the steady state
// (the rotation appends into capacity the compaction already created).
func TestAllocsForwardBufferNext(t *testing.T) {
	skipIfRace(t)
	p := testParams(16, 64)
	rng := rand.New(rand.NewSource(53))
	gen, err := NewGeneration(0, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(gen, rng)
	fb, err := NewForwardBuffer(0, p)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	for i := 0; i < 8; i++ {
		pk := enc.Next()
		if _, err := fb.Add(pk); err != nil {
			t.Fatal(err)
		}
		pk.Release()
	}
	// A full rotation plus one settles the queue's capacity.
	for i := 0; i < 9; i++ {
		fb.Next().Release()
	}
	avg := testing.AllocsPerRun(300, func() {
		fb.Next().Release()
	})
	if avg > allocTolerance {
		t.Errorf("ForwardBuffer.Next allocates %.2f objects per packet, want 0", avg)
	}
}
