package coding

import "fmt"

// ForwardBuffer is the non-recoding relay: it stores innovative packets and
// transmits them verbatim, cycling through the store, for the schemes whose
// relays must not combine (SchemeRLNCE2E, SchemeRS). Innovation is judged
// with the same progressive Gauss-Jordan filter the Recoder uses, but over
// the coefficient vectors only — payload row storage is degenerate
// (BlockSize 0), so the filter costs O(n^2) bytes regardless of block size.
//
// Cycling matters on lossy paths: a relay buffers at most GenerationSize
// innovative packets per generation, so forwarding each exactly once could
// never complete a generation through downstream loss. Like the Recoder —
// whose re-encoded stream is endless — a ForwardBuffer keeps retransmitting
// its stored packets round-robin at whatever rate the policy grants, the
// difference being purely informational: a repeated verbatim packet is only
// useful to a receiver that missed that exact packet, where a fresh random
// recombination is innovative with high probability.
//
// Ownership: Add retains one reference on packets it stores (the caller
// keeps its own, per the package contract that Add never takes ownership),
// Next retains one more for the caller — the store keeps holding its own —
// and Close releases the store. Stored packets are never mutated, so a
// packet held by several ForwardBuffers at once (one broadcast, many
// receivers) is safe to share, even while in flight again.
//
// ForwardBuffer implements Relay.
type ForwardBuffer struct {
	gen    int
	params Params
	filter *rref
	queue  []*Packet
	head   int
}

// NewForwardBuffer returns a verbatim-forwarding relay for the identified
// generation; Close releases its filter storage and stored packets.
func NewForwardBuffer(generation int, params Params) (*ForwardBuffer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	// The filter only eliminates coefficient vectors; a zero BlockSize
	// makes its payload rows empty slices and every payload MulAdd a no-op.
	fp := params
	fp.BlockSize = 0
	return &ForwardBuffer{gen: generation, params: params, filter: newRREF(fp)}, nil
}

// Generation returns the generation ID this relay accepts.
func (f *ForwardBuffer) Generation() int { return f.gen }

// Add stores the packet for forwarding if it is innovative and reports
// whether it was. The caller keeps its own reference: Add retains one more
// for the store.
func (f *ForwardBuffer) Add(p *Packet) (innovative bool, err error) {
	if p.Generation != f.gen {
		return false, fmt.Errorf("coding: packet generation %d, relay generation %d", p.Generation, f.gen)
	}
	if len(p.Coeffs) != f.params.CoeffBytes() || len(p.Payload) != f.params.BlockSize {
		return false, fmt.Errorf("coding: malformed packet (%d coeffs, %d payload)", len(p.Coeffs), len(p.Payload))
	}
	if !f.filter.add(p.Coeffs, nil) {
		return false, nil
	}
	p.Retain()
	f.queue = append(f.queue, p)
	return true, nil
}

// Rank returns the dimension of the subspace seen so far.
func (f *ForwardBuffer) Rank() int { return f.filter.rank() }

// Full reports whether the relay has seen the entire generation; further
// arrivals are necessarily non-innovative.
func (f *ForwardBuffer) Full() bool { return f.filter.full() }

// Queued returns the number of distinct packets in the forwarding store.
func (f *ForwardBuffer) Queued() int { return len(f.queue) - f.head }

// Next returns the least-recently-sent stored packet and moves it to the
// back of the rotation, retaining a reference for the caller (the store
// keeps its own). It returns nil only while the store is empty — before the
// first innovative arrival, or after Close.
func (f *ForwardBuffer) Next() *Packet {
	if f.head >= len(f.queue) {
		return nil
	}
	p := f.queue[f.head]
	f.queue[f.head] = nil
	f.head++
	f.queue = append(f.queue, p)
	// The live window [head, len) holds at most GenerationSize packets;
	// compacting once the dead prefix outgrows it bounds the slice at
	// roughly twice the store size.
	if f.head > len(f.queue)-f.head {
		n := copy(f.queue, f.queue[f.head:])
		for i := n; i < len(f.queue); i++ {
			f.queue[i] = nil
		}
		f.queue, f.head = f.queue[:n], 0
	}
	p.Retain()
	return p
}

// Close releases the filter's row storage and every stored packet.
// The relay must not be used afterwards.
func (f *ForwardBuffer) Close() {
	for ; f.head < len(f.queue); f.head++ {
		f.queue[f.head].Release()
		f.queue[f.head] = nil
	}
	f.queue, f.head = nil, 0
	f.filter.release()
}
