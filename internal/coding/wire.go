package coding

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format. OMNC's packets travel over UDP in the paper's testbed; this
// is the serialization a deployment would put on the air:
//
//	offset  size  field
//	0       4     magic "OMNC"
//	4       1     version (1)
//	5       1     message type (1 = coded data, 2 = generation ACK)
//	6       4     session ID, big endian
//	10      4     generation ID, big endian
//
// Data messages continue with:
//
//	14      2     generation size n, big endian
//	16      2     block size m, big endian
//	18      n     coding coefficient vector
//	18+n    m     coded payload
//
// ACK messages end at offset 14. All multi-byte integers are big endian.
const (
	wireMagic   = "OMNC"
	wireVersion = 1

	// MessageData identifies a coded data packet.
	MessageData = 1
	// MessageAck identifies the destination's uncoded generation ACK
	// (Sec. 3.1: sent back over best-path routing once a generation
	// decodes).
	MessageAck = 2

	commonHeaderLen = 14
	dataHeaderLen   = commonHeaderLen + 4
)

// Wire-format errors.
var (
	// ErrTruncated reports a buffer too short for its declared contents.
	ErrTruncated = errors.New("coding: truncated message")
	// ErrBadMagic reports a buffer that is not an OMNC message.
	ErrBadMagic = errors.New("coding: bad magic")
	// ErrBadVersion reports an unsupported wire version.
	ErrBadVersion = errors.New("coding: unsupported wire version")
	// ErrBadType reports an unknown message type.
	ErrBadType = errors.New("coding: unknown message type")
)

// Message is a parsed wire message.
type Message struct {
	// Type is MessageData or MessageAck.
	Type byte
	// Session identifies the unicast session.
	Session uint32
	// Generation is the generation ID.
	Generation uint32
	// Packet carries the coded payload for data messages; nil for ACKs.
	Packet *Packet
}

// WireSize returns the serialized size in bytes of a data packet under the
// given parameters.
func WireSize(p Params) int {
	return dataHeaderLen + p.CoeffBytes() + p.BlockSize
}

// AckWireSize is the serialized size of an ACK message.
const AckWireSize = commonHeaderLen

// MarshalData serializes a coded packet for the identified session into a
// fresh buffer. The zero-allocation path is GetFrame + AppendData, which
// reuses arena frames.
func MarshalData(session uint32, pkt *Packet) ([]byte, error) {
	return AppendData(nil, session, pkt)
}

// AppendData appends the wire encoding of a coded packet to dst (growing it
// only when dst lacks capacity) and returns the extended slice. Passing a
// frame from GetFrame sliced to length zero makes serialization
// allocation-free.
func AppendData(dst []byte, session uint32, pkt *Packet) ([]byte, error) {
	if pkt == nil {
		return nil, fmt.Errorf("coding: nil packet")
	}
	n, m := len(pkt.Coeffs), len(pkt.Payload)
	if n == 0 || n > 0xFFFF || m == 0 || m > 0xFFFF {
		return nil, fmt.Errorf("coding: packet dimensions %dx%d not encodable", n, m)
	}
	if pkt.Generation < 0 || int64(pkt.Generation) > int64(^uint32(0)) {
		return nil, fmt.Errorf("coding: generation %d not encodable", pkt.Generation)
	}
	off := len(dst)
	total := off + dataHeaderLen + n + m
	if cap(dst) >= total {
		dst = dst[:total]
	} else {
		grown := make([]byte, total)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[off:]
	writeCommon(buf, MessageData, session, uint32(pkt.Generation))
	binary.BigEndian.PutUint16(buf[14:], uint16(n))
	binary.BigEndian.PutUint16(buf[16:], uint16(m))
	copy(buf[dataHeaderLen:], pkt.Coeffs)
	copy(buf[dataHeaderLen+n:], pkt.Payload)
	return dst, nil
}

// GetFrame returns a zero-length wire buffer from the arena with capacity
// for one serialized data packet under params. Return it with PutFrame when
// the frame has left the transmit path.
func GetFrame(params Params) []byte {
	return getBuf(WireSize(params))[:0]
}

// PutFrame returns a frame obtained from GetFrame to the arena. The caller
// must not use the slice afterwards.
func PutFrame(frame []byte) { putBuf(frame) }

// MarshalAck serializes a generation ACK.
func MarshalAck(session uint32, generation uint32) []byte {
	buf := make([]byte, commonHeaderLen)
	writeCommon(buf, MessageAck, session, generation)
	return buf
}

func writeCommon(buf []byte, msgType byte, session, generation uint32) {
	copy(buf, wireMagic)
	buf[4] = wireVersion
	buf[5] = msgType
	binary.BigEndian.PutUint32(buf[6:], session)
	binary.BigEndian.PutUint32(buf[10:], generation)
}

// parseHeader validates the common header and the data-message dimensions.
// For data messages, n and m are the coefficient and payload lengths and
// the packet body starts at dataHeaderLen; for ACKs both are zero.
func parseHeader(buf []byte) (msg Message, n, m int, err error) {
	if len(buf) < commonHeaderLen {
		return msg, 0, 0, ErrTruncated
	}
	if string(buf[:4]) != wireMagic {
		return msg, 0, 0, ErrBadMagic
	}
	if buf[4] != wireVersion {
		return msg, 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[4])
	}
	msg.Type = buf[5]
	msg.Session = binary.BigEndian.Uint32(buf[6:])
	msg.Generation = binary.BigEndian.Uint32(buf[10:])
	switch msg.Type {
	case MessageAck:
		return msg, 0, 0, nil
	case MessageData:
		if len(buf) < dataHeaderLen {
			return msg, 0, 0, ErrTruncated
		}
		n = int(binary.BigEndian.Uint16(buf[14:]))
		m = int(binary.BigEndian.Uint16(buf[16:]))
		if n == 0 || m == 0 {
			return msg, 0, 0, fmt.Errorf("coding: zero packet dimensions %dx%d", n, m)
		}
		if len(buf) < dataHeaderLen+n+m {
			return msg, 0, 0, ErrTruncated
		}
		return msg, n, m, nil
	default:
		return msg, 0, 0, fmt.Errorf("%w: %d", ErrBadType, msg.Type)
	}
}

// UnmarshalPacket parses a wire message, decoding data packets into a
// packet drawn from the arena: nothing in the result aliases buf, so the
// receive buffer can be reused (or returned with PutFrame) immediately, and
// the caller owns one reference to the returned packet. ACK messages yield
// a nil packet.
func UnmarshalPacket(buf []byte) (Message, *Packet, error) {
	msg, n, m, err := parseHeader(buf)
	if err != nil || msg.Type == MessageAck {
		return msg, nil, err
	}
	pk := GetPacket(Params{GenerationSize: n, BlockSize: m})
	pk.Generation = int(msg.Generation)
	copy(pk.Coeffs, buf[dataHeaderLen:dataHeaderLen+n])
	copy(pk.Payload, buf[dataHeaderLen+n:dataHeaderLen+n+m])
	msg.Packet = pk
	return msg, pk, nil
}

// Unmarshal parses a wire message. The returned Message's packet slices
// alias the input buffer; clone if the buffer is reused, or use
// UnmarshalPacket for the non-aliasing arena-backed path.
func Unmarshal(buf []byte) (*Message, error) {
	msg, n, m, err := parseHeader(buf)
	if err != nil {
		return nil, err
	}
	if msg.Type == MessageData {
		msg.Packet = &Packet{
			Generation: int(msg.Generation),
			Coeffs:     buf[dataHeaderLen : dataHeaderLen+n],
			Payload:    buf[dataHeaderLen+n : dataHeaderLen+n+m],
		}
	}
	return &msg, nil
}
