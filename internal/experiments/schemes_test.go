package experiments

import (
	"errors"
	"testing"

	"omnc/internal/coding"
)

func TestChainNetwork(t *testing.T) {
	nw, err := ChainNetwork(3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 4 {
		t.Fatalf("3-hop chain has %d nodes, want 4", nw.Size())
	}
	for i := 0; i < 3; i++ {
		if p := nw.Prob(i, i+1); p != 0.7 {
			t.Fatalf("link %d-%d quality %v, want 0.7", i, i+1, p)
		}
	}
	if p := nw.Prob(0, 2); p != 0 {
		t.Fatalf("chain has a shortcut 0-2 with quality %v", p)
	}
	if _, err := ChainNetwork(0, 0.7); err == nil {
		t.Fatal("zero-hop chain must fail")
	}
	if _, err := ChainNetwork(2, 1.5); err == nil {
		t.Fatal("quality above 1 must fail")
	}
}

func TestRunSchemesSweepValidation(t *testing.T) {
	if _, err := RunSchemesSweep(SchemesConfig{Schemes: []coding.Scheme{coding.Scheme(9)}}); !errors.Is(err, coding.ErrInvalidScheme) {
		t.Fatalf("bad scheme: err = %v, want ErrInvalidScheme", err)
	}
	if _, err := RunSchemesSweep(SchemesConfig{Redundancies: []float64{0.2}}); !errors.Is(err, coding.ErrInvalidRedundancy) {
		t.Fatalf("bad redundancy: err = %v, want ErrInvalidRedundancy", err)
	}
}

// smallSchemesConfig keeps the sweep fast: two chain lengths, one redundancy
// level, two trials.
func smallSchemesConfig(seed int64) SchemesConfig {
	return SchemesConfig{
		Hops:         []int{1, 3},
		Redundancies: []float64{0},
		Trials:       2,
		Duration:     60,
		Seed:         seed,
	}
}

// TestRunSchemesSweepRecodingGain: the headline claim of the strategy layer —
// on a lossy chain of 3 or more hops, in-network recoding (full RLNC) must
// strictly beat source-only Reed-Solomon, whose relays can only repeat stored
// shards.
func TestRunSchemesSweepRecodingGain(t *testing.T) {
	res, err := RunSchemesSweep(smallSchemesConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	rlnc := res.Point(coding.SchemeRLNC, 0, 3)
	rs := res.Point(coding.SchemeRS, 0, 3)
	if rlnc == nil || rs == nil {
		t.Fatal("sweep is missing the 3-hop rateless cells")
	}
	if rlnc.Throughput <= rs.Throughput {
		t.Fatalf("full-recoding RLNC (%v B/s) must strictly beat source-only RS (%v B/s) on the 3-hop chain",
			rlnc.Throughput, rs.Throughput)
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 {
			t.Fatalf("scheme %s hops %d delivered nothing", p.Scheme, p.Hops)
		}
	}
}

// TestRunSchemesSweepWorkersInvariant: like every runner, the sweep is
// bit-identical for any Workers setting.
func TestRunSchemesSweepWorkersInvariant(t *testing.T) {
	cfgSerial := smallSchemesConfig(11)
	cfgSerial.Workers = 1
	a, err := RunSchemesSweep(cfgSerial)
	if err != nil {
		t.Fatal(err)
	}
	cfgParallel := smallSchemesConfig(11)
	cfgParallel.Workers = 4
	b, err := RunSchemesSweep(cfgParallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across worker counts: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestSchemesCellCount(t *testing.T) {
	cfg := smallSchemesConfig(1)
	if got, want := cfg.CellCount(), 2*3*1*2; got != want {
		t.Fatalf("CellCount = %d, want %d", got, want)
	}
}
