package experiments

import (
	"context"
	"fmt"
	"math"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/metrics"
	"omnc/internal/parallel"
	"omnc/internal/protocol"
	"omnc/internal/seedmix"
	"omnc/internal/sim"
	"omnc/internal/topology"
)

// SchemesConfig describes the coding-scheme experiment: OMNC throughput on a
// lossy relay chain as the coding scheme, the source redundancy factor, and
// the chain length vary. The chain isolates what the strategy layer changes —
// whether relays re-encode (full RLNC), forward innovative packets verbatim
// (end-to-end RLNC), or forward pre-computed Reed-Solomon shards — because on
// a chain every delivered byte crossed every hop.
type SchemesConfig struct {
	// Hops are the chain lengths to sweep (number of links; hops+1 nodes).
	// Default {1, 2, 3, 4}.
	Hops []int
	// PerHopQuality is the delivery probability of each chain link.
	// Default 0.72 — lossy enough that multi-hop forwarding visibly decays.
	PerHopQuality float64
	// Schemes to compare; nil means all three.
	Schemes []coding.Scheme
	// Redundancies are the source emission caps to sweep, as factors of the
	// generation size (0 = rateless). Default {0, 1.5, 2.5}.
	Redundancies []float64
	// Trials averages each cell over independent seeds. Default 2.
	Trials int
	// Duration, Capacity and CBRRate parameterize each emulated session.
	Duration float64
	Capacity float64
	CBRRate  float64
	// Coding parameters and on-air frame size, as in Config.
	Coding        coding.Params
	AirPacketSize int
	// MAC selects the channel model.
	MAC sim.Mode
	// RateOptions tunes OMNC's rate controller.
	RateOptions core.Options
	// Seed makes the whole experiment reproducible.
	Seed int64
	// Workers bounds concurrent cell emulation; results are bit-identical
	// for every worker count (trial seeds derive from the cell index, and
	// results land in index-addressed slots).
	Workers int
	// EngineWorkers selects each cell's event engine (protocol.Config
	// EngineWorkers); results are bit-identical for every value.
	EngineWorkers int
	// Progress, when non-nil, is incremented once per completed cell.
	Progress *metrics.Progress
	// Ctx, when non-nil, cancels the sweep between cells (Config.Ctx
	// semantics). Nil means context.Background().
	Ctx context.Context
}

func (c SchemesConfig) withDefaults() SchemesConfig {
	if len(c.Hops) == 0 {
		c.Hops = []int{1, 2, 3, 4}
	}
	if c.PerHopQuality == 0 {
		c.PerHopQuality = 0.72
	}
	if len(c.Schemes) == 0 {
		c.Schemes = []coding.Scheme{coding.SchemeRLNC, coding.SchemeRLNCE2E, coding.SchemeRS}
	}
	if len(c.Redundancies) == 0 {
		c.Redundancies = []float64{0, 1.5, 2.5}
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.Duration == 0 {
		c.Duration = 200
	}
	if c.Capacity == 0 {
		c.Capacity = 2e4
	}
	if c.CBRRate == 0 {
		c.CBRRate = 1e4
	}
	if c.Coding.GenerationSize == 0 {
		c.Coding = coding.Params{GenerationSize: 16, BlockSize: 8}
	}
	if c.AirPacketSize == 0 {
		c.AirPacketSize = c.Coding.CoeffBytes() + 1024
	}
	return c
}

// CellCount returns how many (hops, scheme, redundancy, trial) emulations the
// sweep will run — the Progress total.
func (c SchemesConfig) CellCount() int {
	c = c.withDefaults()
	return len(c.Hops) * len(c.Schemes) * len(c.Redundancies) * c.Trials
}

// SchemesPoint is one cell of the sweep, averaged over the trials.
type SchemesPoint struct {
	Scheme     coding.Scheme
	Redundancy float64
	Hops       int
	// Throughput is the mean decoded bytes/second at the chain's end.
	Throughput float64
	// GenerationsDecoded is the mean count of fully decoded generations.
	GenerationsDecoded float64
}

// SchemesResult is the outcome of RunSchemesSweep.
type SchemesResult struct {
	Config SchemesConfig
	Points []SchemesPoint
}

// Point returns the swept cell for (scheme, redundancy, hops), or nil.
func (r *SchemesResult) Point(s coding.Scheme, redundancy float64, hops int) *SchemesPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Scheme == s && p.Redundancy == redundancy && p.Hops == hops {
			return p
		}
	}
	return nil
}

// schemeCell is one (hops, scheme, redundancy, trial) emulation waiting to
// run. Cells are enumerated in a fixed nested order so the trial-seed stream
// is a pure function of the configuration.
type schemeCell struct {
	hopIdx, schemeIdx, redIdx, trial int
}

// ChainNetwork builds an explicit relay chain 0-1-...-hops where every link
// delivers with probability quality, symmetric, no shortcuts. It is exported
// for tests that want to emulate schemes on the exact topology of the sweep.
func ChainNetwork(hops int, quality float64) (*topology.Network, error) {
	if hops < 1 {
		return nil, fmt.Errorf("experiments: chain needs at least 1 hop, got %d", hops)
	}
	if quality <= 0 || quality > 1 {
		return nil, fmt.Errorf("experiments: per-hop quality %v outside (0, 1]", quality)
	}
	n := hops + 1
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
	}
	for i := 0; i < hops; i++ {
		p[i][i+1] = quality
		p[i+1][i] = quality
	}
	return topology.NewExplicit(p)
}

// RunSchemesSweep emulates OMNC unicast on lossy chains of every requested
// length under every (scheme, redundancy) combination. Like the other
// runners it is deterministic for every Workers and EngineWorkers setting.
func RunSchemesSweep(cfg SchemesConfig) (*SchemesResult, error) {
	cfg = cfg.withDefaults()
	for _, s := range cfg.Schemes {
		if !s.Valid() {
			return nil, fmt.Errorf("%w: %d", coding.ErrInvalidScheme, int(s))
		}
	}
	for _, r := range cfg.Redundancies {
		if err := coding.ValidateRedundancy(r); err != nil {
			return nil, err
		}
	}

	// One network per chain length, shared by every scheme and trial so the
	// comparison is paired.
	nets := make([]*topology.Network, len(cfg.Hops))
	for i, hops := range cfg.Hops {
		nw, err := ChainNetwork(hops, cfg.PerHopQuality)
		if err != nil {
			return nil, err
		}
		nets[i] = nw
	}

	var cells []schemeCell
	for hi := range cfg.Hops {
		for si := range cfg.Schemes {
			for ri := range cfg.Redundancies {
				for tr := 0; tr < cfg.Trials; tr++ {
					cells = append(cells, schemeCell{hopIdx: hi, schemeIdx: si, redIdx: ri, trial: tr})
				}
			}
		}
	}

	type cellResult struct {
		throughput float64
		decoded    float64
	}
	results := make([]cellResult, len(cells))
	err := parallel.ForEachCtx(ctxOrBackground(cfg.Ctx), len(cells), parallel.Workers(cfg.Workers), func(i int) error {
		cell := cells[i]
		hops := cfg.Hops[cell.hopIdx]
		nw := nets[cell.hopIdx]
		pcfg := protocol.Config{
			Coding:        cfg.Coding,
			Scheme:        cfg.Schemes[cell.schemeIdx],
			Redundancy:    cfg.Redundancies[cell.redIdx],
			AirPacketSize: cfg.AirPacketSize,
			Capacity:      cfg.Capacity,
			Duration:      cfg.Duration,
			CBRRate:       cfg.CBRRate,
			Seed:          seedmix.Derive(cfg.Seed, streamSchemesTrial, int64(i)),
			MAC:           cfg.MAC,
			EngineWorkers: cfg.EngineWorkers,
		}
		st, err := protocol.Run(nw, 0, hops, protocol.OMNC(cfg.RateOptions), pcfg)
		if err != nil {
			return fmt.Errorf("experiments: scheme %s redundancy %v hops %d: %w",
				cfg.Schemes[cell.schemeIdx], cfg.Redundancies[cell.redIdx], hops, err)
		}
		results[i] = cellResult{throughput: st.Throughput, decoded: float64(st.GenerationsDecoded)}
		if cfg.Progress != nil {
			cfg.Progress.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &SchemesResult{Config: cfg}
	for hi, hops := range cfg.Hops {
		for si, scheme := range cfg.Schemes {
			for ri, red := range cfg.Redundancies {
				pt := SchemesPoint{Scheme: scheme, Redundancy: red, Hops: hops}
				n := 0
				for i, cell := range cells {
					if cell.hopIdx == hi && cell.schemeIdx == si && cell.redIdx == ri {
						pt.Throughput += results[i].throughput
						pt.GenerationsDecoded += results[i].decoded
						n++
					}
				}
				if n == 0 {
					return nil, fmt.Errorf("experiments: no cells for scheme %s hops %d", scheme, hops)
				}
				pt.Throughput /= float64(n)
				pt.GenerationsDecoded /= float64(n)
				// Means of finite throughputs are finite; guard anyway so a
				// broken cell shows up as an error, not a NaN in a CSV.
				if math.IsNaN(pt.Throughput) || math.IsInf(pt.Throughput, 0) {
					return nil, fmt.Errorf("experiments: non-finite throughput for scheme %s hops %d", scheme, hops)
				}
				out.Points = append(out.Points, pt)
			}
		}
	}
	return out, nil
}
