package experiments

import (
	"reflect"
	"testing"

	"omnc/internal/coding"
	"omnc/internal/gf256"
	"omnc/internal/metrics"
)

// tinyMultiConfig keeps multi-unicast scaling tests fast on one CPU.
func tinyMultiConfig(seed int64) MultiConfig {
	return MultiConfig{
		Nodes:         120,
		Density:       6,
		SessionCounts: []int{1, 2},
		Trials:        2,
		MinHops:       4,
		MaxHops:       10,
		Duration:      80,
		Capacity:      2e4,
		CBRRate:       1e4,
		Coding:        coding.Params{GenerationSize: 16, BlockSize: 4, Strategy: gf256.StrategyAccel},
		AirPacketSize: 16 + 1024,
		Seed:          seed,
	}
}

func TestRunMultiScalingProducesAllSeries(t *testing.T) {
	sc, err := RunMultiScaling(tinyMultiConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Points) != 2 {
		t.Fatalf("points = %d", len(sc.Points))
	}
	for _, pt := range sc.Points {
		for _, name := range []string{ProtoOMNC, ProtoMORE, ProtoOldMORE, ProtoETX} {
			agg, ok := pt.AggregateThroughput[name]
			if !ok || agg <= 0 {
				t.Fatalf("%d sessions: %s aggregate = %v", pt.Sessions, name, agg)
			}
			j, ok := pt.JainFairness[name]
			if !ok || j <= 0 || j > 1 {
				t.Fatalf("%d sessions: %s Jain = %v", pt.Sessions, name, j)
			}
		}
	}
	// One session is perfectly fair by definition.
	for _, name := range []string{ProtoOMNC, ProtoETX} {
		if j := sc.Points[0].JainFairness[name]; j != 1 {
			t.Fatalf("%s Jain at one session = %v, want 1", name, j)
		}
	}
}

func TestRunMultiScalingParallelMatchesSerial(t *testing.T) {
	cfg := tinyMultiConfig(8)
	cfg.Workers = 1
	serial, err := RunMultiScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunMultiScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Points, par.Points) {
		t.Fatalf("worker count changed results:\nserial: %+v\nparallel: %+v",
			serial.Points, par.Points)
	}
}

func TestRunMultiScalingDeterministic(t *testing.T) {
	cfg := tinyMultiConfig(9)
	a, err := RunMultiScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("repeated runs diverge")
	}
}

func TestRunMultiScalingProgress(t *testing.T) {
	cfg := tinyMultiConfig(10)
	cfg.Protocols = []string{ProtoETX}
	p := metrics.NewProgress(len(cfg.SessionCounts) * cfg.Trials)
	cfg.Progress = p
	if _, err := RunMultiScaling(cfg); err != nil {
		t.Fatal(err)
	}
	if p.Done() != p.Total() {
		t.Fatalf("progress = %d/%d", p.Done(), p.Total())
	}
}

func TestRunMultiScalingRejectsBadCount(t *testing.T) {
	cfg := tinyMultiConfig(11)
	cfg.SessionCounts = []int{0}
	if _, err := RunMultiScaling(cfg); err == nil {
		t.Fatal("zero session count must fail")
	}
}
