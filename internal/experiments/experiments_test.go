package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"omnc/internal/coding"
	"omnc/internal/gf256"
	"omnc/internal/metrics"
)

// tinyConfig keeps comparison tests fast on one CPU.
func tinyConfig(seed int64) Config {
	return Config{
		Nodes:               120,
		Density:             6,
		Sessions:            4,
		MinHops:             4,
		MaxHops:             10,
		Duration:            120,
		Capacity:            2e4,
		CBRRate:             1e4,
		Coding:              coding.Params{GenerationSize: 16, BlockSize: 4, Strategy: gf256.StrategyAccel},
		AirPacketSize:       16 + 1024,
		QueueSampleInterval: 0.5,
		Seed:                seed,
	}
}

func TestRunComparisonProducesAllSeries(t *testing.T) {
	cfg := tinyConfig(3)
	cfg.SolveLPGap = true
	c, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sessions) != cfg.Sessions {
		t.Fatalf("ran %d sessions, want %d", len(c.Sessions), cfg.Sessions)
	}
	for i, s := range c.Sessions {
		if s.Hops < cfg.MinHops || s.Hops > cfg.MaxHops {
			t.Fatalf("session %d hops = %d outside [%d,%d]", i, s.Hops, cfg.MinHops, cfg.MaxHops)
		}
		for _, name := range []string{ProtoOMNC, ProtoMORE, ProtoOldMORE, ProtoETX} {
			if _, ok := s.ByProtocol[name]; !ok {
				t.Fatalf("session %d missing protocol %s", i, name)
			}
		}
		if s.LPGamma <= 0 {
			t.Fatalf("session %d LP gamma = %v", i, s.LPGamma)
		}
	}

	gains := c.GainCDFs()
	if len(gains) != 3 {
		t.Fatalf("gain curves = %d, want 3", len(gains))
	}
	for name, cdf := range gains {
		if cdf.Len() == 0 {
			t.Fatalf("%s gain CDF empty", name)
		}
	}
	queues := c.QueueCDFs()
	if len(queues) != 4 {
		t.Fatalf("queue curves = %d, want 4", len(queues))
	}
	if len(c.NodeUtilityCDFs()) != 3 || len(c.PathUtilityCDFs()) != 3 {
		t.Fatal("utility curves missing")
	}
	if c.MeanRateIterations() <= 0 {
		t.Fatal("mean rate iterations must be positive")
	}
	gap := c.LPGapSummary()
	if gap.N == 0 {
		t.Fatal("LP gap summary empty")
	}
	// Sec. 5: emulated throughput stays below the optimized value.
	if gap.Mean > 1.0 {
		t.Fatalf("emulated/optimized ratio %v > 1", gap.Mean)
	}
}

func TestRunComparisonSubsetOfProtocols(t *testing.T) {
	cfg := tinyConfig(5)
	cfg.Sessions = 2
	cfg.Protocols = []string{ProtoETX}
	c, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.GainCDFs()) != 0 {
		t.Fatal("gain CDFs need coded protocols")
	}
	if len(c.QueueCDFs()) != 1 {
		t.Fatal("queue CDFs should cover ETX only")
	}
	if c.MeanRateIterations() != 0 {
		t.Fatal("no OMNC sessions -> no iterations")
	}
}

func TestRunComparisonUnknownProtocol(t *testing.T) {
	cfg := tinyConfig(6)
	cfg.Sessions = 1
	cfg.Protocols = []string{"bogus"}
	if _, err := RunComparison(cfg); err == nil {
		t.Fatal("unknown protocol must fail")
	}
}

func TestRunComparisonImpossibleHops(t *testing.T) {
	cfg := tinyConfig(7)
	cfg.Nodes = 30
	cfg.MinHops = 25
	cfg.MaxHops = 26
	cfg.Sessions = 1
	if _, err := RunComparison(cfg); err == nil {
		t.Fatal("unsatisfiable hop constraint must fail")
	}
}

func TestRunComparisonDeterministic(t *testing.T) {
	cfg := tinyConfig(8)
	cfg.Sessions = 2
	cfg.Protocols = []string{ProtoOMNC}
	a, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sessions {
		sa, sb := a.Sessions[i], b.Sessions[i]
		if sa.Src != sb.Src || sa.Dst != sb.Dst {
			t.Fatal("session placement not deterministic")
		}
		if sa.ByProtocol[ProtoOMNC].Throughput != sb.ByProtocol[ProtoOMNC].Throughput {
			t.Fatal("throughput not deterministic")
		}
	}
}

// TestRunComparisonParallelMatchesSerial is the determinism contract of the
// parallel runner: for the same seed, a RunComparison fanned out over eight
// workers must be indistinguishable — session by session, CDF by CDF — from
// the strictly serial run. The configs derive from QuickConfig (the paper's
// topology and air frames) with the session count and emulated time scaled
// down so the three-seed sweep stays test-suite-sized.
func TestRunComparisonParallelMatchesSerial(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := QuickConfig(seed)
		cfg.Sessions = 4
		cfg.Duration = 60
		cfg.SolveLPGap = true

		serialCfg := cfg
		serialCfg.Workers = 1
		serial, err := RunComparison(serialCfg)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		parCfg := cfg
		parCfg.Workers = 8
		par, err := RunComparison(parCfg)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}

		if len(serial.Sessions) != len(par.Sessions) {
			t.Fatalf("seed %d: %d serial vs %d parallel sessions",
				seed, len(serial.Sessions), len(par.Sessions))
		}
		for i := range serial.Sessions {
			if !reflect.DeepEqual(serial.Sessions[i], par.Sessions[i]) {
				t.Fatalf("seed %d session %d diverges:\nserial:   %+v\nparallel: %+v",
					seed, i, serial.Sessions[i], par.Sessions[i])
			}
		}
		for name, cmp := range map[string][2]interface{}{
			"gain CDFs":         {serial.GainCDFs(), par.GainCDFs()},
			"queue CDFs":        {serial.QueueCDFs(), par.QueueCDFs()},
			"node utility":      {serial.NodeUtilityCDFs(), par.NodeUtilityCDFs()},
			"path utility":      {serial.PathUtilityCDFs(), par.PathUtilityCDFs()},
			"rate iterations":   {serial.RateIterationsSummary(), par.RateIterationsSummary()},
			"LP gap":            {serial.LPGapSummary(), par.LPGapSummary()},
			"network (pointer)": {serial.Network.MeanLinkQuality(), par.Network.MeanLinkQuality()},
		} {
			if !reflect.DeepEqual(cmp[0], cmp[1]) {
				t.Fatalf("seed %d: %s diverge between serial and parallel", seed, name)
			}
		}
	}
}

// TestRunComparisonDefaultWorkers checks the zero value fans out (and still
// succeeds) — Workers: 0 must behave like "all cores", not like zero
// workers.
func TestRunComparisonDefaultWorkers(t *testing.T) {
	cfg := tinyConfig(11)
	cfg.Sessions = 2
	cfg.Protocols = []string{ProtoETX}
	c, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sessions) != 2 {
		t.Fatalf("sessions = %d", len(c.Sessions))
	}
}

// TestRunComparisonProgress verifies every completed trial ticks the shared
// progress counter exactly once.
func TestRunComparisonProgress(t *testing.T) {
	cfg := tinyConfig(12)
	cfg.Sessions = 3
	cfg.Protocols = []string{ProtoETX}
	cfg.Workers = 4
	cfg.Progress = metrics.NewProgress(cfg.Sessions)
	if _, err := RunComparison(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Progress.Done() != cfg.Sessions {
		t.Fatalf("progress = %s, want %d", cfg.Progress, cfg.Sessions)
	}
	if cfg.Progress.Fraction() != 1 {
		t.Fatalf("fraction = %v", cfg.Progress.Fraction())
	}
}

// TestRunComparisonProgressNeverOvercounts watches the counter while the
// parallel runner is live: Done must never pass Total mid-sweep (Fraction no
// longer clamps, so an over-count would surface as a fraction above 1) and
// must land exactly on Total at the end.
func TestRunComparisonProgressNeverOvercounts(t *testing.T) {
	cfg := tinyConfig(13)
	cfg.Sessions = 4
	cfg.Protocols = []string{ProtoETX}
	cfg.Workers = 4
	p := metrics.NewProgress(cfg.Sessions)
	cfg.Progress = p
	stop := make(chan struct{})
	watched := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				watched <- nil
				return
			default:
				if p.Done() > p.Total() {
					watched <- fmt.Errorf("mid-sweep progress %s over-counted (fraction %v)", p, p.Fraction())
					return
				}
			}
		}
	}()
	_, err := RunComparison(cfg)
	close(stop)
	if werr := <-watched; werr != nil {
		t.Fatal(werr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if p.Done() != p.Total() || p.Fraction() != 1 {
		t.Fatalf("final progress = %s (fraction %v), want exactly total", p, p.Fraction())
	}
}

// TestTrialSeedsDecorrelated pins the property the SplitMix64 derivation was
// introduced for: RNGs seeded from distinct trial indices open with distinct
// first draws (the old additive seed+7919*idx offsets fed math/rand source
// states that were nearly collinear across trials).
func TestTrialSeedsDecorrelated(t *testing.T) {
	const trials = 2048
	seeds := make(map[int64]int, trials)
	firsts := make(map[int64]int, trials)
	for i := 0; i < trials; i++ {
		s := TrialSeed(42, i)
		if prev, ok := seeds[s]; ok {
			t.Fatalf("trials %d and %d derive the same seed %d", prev, i, s)
		}
		seeds[s] = i
		first := rand.New(rand.NewSource(s)).Int63()
		if prev, ok := firsts[first]; ok {
			t.Fatalf("trials %d and %d share first draw %d", prev, i, first)
		}
		firsts[first] = i
	}
	if TrialSeed(42, 0) == TrialSeed(43, 0) {
		t.Fatal("different experiment seeds must derive different trial seeds")
	}
}

func TestHighQualityVariantRaisesQuality(t *testing.T) {
	cfg := tinyConfig(9)
	cfg.Sessions = 1
	cfg.MeanQuality = 0.91
	cfg.Protocols = []string{ProtoETX}
	c, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if q := c.Network.MeanLinkQuality(); q < 0.85 {
		t.Fatalf("network quality = %.3f, want ~0.91", q)
	}
}

func TestQuickAndPaperConfigs(t *testing.T) {
	q := QuickConfig(1)
	p := PaperConfig(1)
	if q.Nodes != p.Nodes || q.Density != p.Density {
		t.Fatal("quick config must keep the paper's topology")
	}
	if q.Sessions >= p.Sessions || q.Duration >= p.Duration {
		t.Fatal("quick config must be smaller than paper scale")
	}
	if p.Sessions != 300 || p.Duration != 800 || p.Coding.GenerationSize != 40 || p.Coding.BlockSize != 1024 {
		t.Fatalf("paper config drifted: %+v", p)
	}
	if q.AirPacketSize != 40+1024 {
		t.Fatal("quick config must keep full-fidelity air packets")
	}
}

func TestFig1Convergence(t *testing.T) {
	res, err := Fig1Convergence(Fig1Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("rate control did not converge in %d iterations", res.Iterations)
	}
	if len(res.Nodes) == 0 || len(res.Series) != len(res.Nodes) {
		t.Fatalf("series/nodes mismatch: %d vs %d", len(res.Series), len(res.Nodes))
	}
	for i, series := range res.Series {
		if len(series) != res.Iterations {
			t.Fatalf("node %d series length %d != iterations %d", i, len(series), res.Iterations)
		}
		for t2, v := range series {
			if v < 0 || v > 1e5 {
				t.Fatalf("node %d rate out of range at iteration %d: %v", i, t2, v)
			}
		}
		// Convergence: the last few recovered rates barely move.
		last := series[len(series)-1]
		prev := series[len(series)-5]
		if diff := last - prev; diff > 0.05e5 || diff < -0.05e5 {
			t.Fatalf("node %d still moving at the end: %v -> %v", i, prev, last)
		}
	}
	if res.Gamma <= 0 {
		t.Fatalf("gamma = %v", res.Gamma)
	}
}

func TestFig1SampleTopologyShape(t *testing.T) {
	nw := Fig1SampleTopology()
	if nw.Size() != 6 {
		t.Fatalf("size = %d", nw.Size())
	}
	if nw.Prob(0, 5) != 0 {
		t.Fatal("source must not reach the destination directly")
	}
}

func TestDriftSweep(t *testing.T) {
	cfg := tinyConfig(40)
	cfg.Sessions = 2
	cfg.Duration = 120
	res, err := DriftSweep(DriftSweepConfig{
		Base:           cfg,
		Jitters:        []float64{0, 0.3},
		Epochs:         2,
		ReinitOverhead: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Throughput) != 2 {
		t.Fatalf("levels = %d", len(res.Throughput))
	}
	for i, s := range res.Throughput {
		if s.N != 2 {
			t.Fatalf("level %d has %d sessions", i, s.N)
		}
		if s.Mean <= 0 {
			t.Fatalf("level %d mean throughput %v", i, s.Mean)
		}
	}
}

func TestRateIterationsSummary(t *testing.T) {
	cfg := tinyConfig(44)
	cfg.Sessions = 2
	cfg.Protocols = []string{ProtoOMNC}
	c, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := c.RateIterationsSummary()
	if s.N != 2 || s.Mean <= 0 {
		t.Fatalf("iterations summary = %+v", s)
	}
	if c.MeanRateIterations() != s.Mean {
		t.Fatal("MeanRateIterations must match the summary")
	}
}
