package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/graph"
	"omnc/internal/metrics"
	"omnc/internal/parallel"
	"omnc/internal/protocol"
	"omnc/internal/routing"
	"omnc/internal/seedmix"
	"omnc/internal/sim"
	"omnc/internal/topology"
)

// MultiConfig describes the multi-unicast scaling experiment: how aggregate
// throughput and inter-session fairness evolve as more unicast sessions
// contend on one shared channel — the multiple-unicast scenario the paper's
// conclusion points to. Zero fields inherit the defaults documented on
// Config.
type MultiConfig struct {
	// Nodes and Density describe the random deployment.
	Nodes   int
	Density float64
	// MeanQuality calibrates transmit power; 0 keeps the lossy default.
	MeanQuality float64
	// SessionCounts are the x-axis points: each entry is a number of
	// concurrent sessions to emulate. Default {1, 2, 4, 6}.
	SessionCounts []int
	// Trials is how many independent placements are averaged per session
	// count. Default 3.
	Trials int
	// MinHops and MaxHops constrain endpoint placement.
	MinHops, MaxHops int
	// Duration, Capacity and CBRRate parameterize each emulated cell.
	Duration float64
	Capacity float64
	CBRRate  float64
	// Coding parameters and on-air frame size, as in Config.
	Coding        coding.Params
	AirPacketSize int
	// Protocols to run; nil means all four.
	Protocols []string
	// MAC selects the channel model.
	MAC sim.Mode
	// RateOptions tunes OMNC's joint rate controller.
	RateOptions core.Options
	// Seed makes the whole experiment reproducible.
	Seed int64
	// Workers bounds concurrent cell emulation; results are bit-identical
	// for every worker count (each cell is seeded from (Seed, cell index)
	// and lands in a slice slot addressed by that index).
	Workers int
	// EngineWorkers selects each cell's event engine (protocol.Config
	// EngineWorkers): 0 serial, N >= 1 the parallel engine with N workers.
	// Results are bit-identical for every value.
	EngineWorkers int
	// Progress, when non-nil, is incremented once per completed cell.
	Progress *metrics.Progress
	// Ctx, when non-nil, cancels the sweep between cells (Config.Ctx
	// semantics). Nil means context.Background().
	Ctx context.Context
}

func (c MultiConfig) withDefaults() MultiConfig {
	base := Config{
		Nodes:         c.Nodes,
		Density:       c.Density,
		MinHops:       c.MinHops,
		MaxHops:       c.MaxHops,
		Duration:      c.Duration,
		Capacity:      c.Capacity,
		Coding:        c.Coding,
		AirPacketSize: c.AirPacketSize,
		Protocols:     c.Protocols,
	}.withDefaults()
	c.Nodes = base.Nodes
	c.Density = base.Density
	c.MinHops = base.MinHops
	c.MaxHops = base.MaxHops
	c.Duration = base.Duration
	c.Capacity = base.Capacity
	c.Coding = base.Coding
	c.AirPacketSize = base.AirPacketSize
	c.Protocols = base.Protocols
	if len(c.SessionCounts) == 0 {
		c.SessionCounts = []int{1, 2, 4, 6}
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	return c
}

// MultiPoint is one x-axis point of the scaling experiment: per-protocol
// aggregate throughput and Jain fairness at a fixed session count, averaged
// over the trials.
type MultiPoint struct {
	// Sessions is the number of concurrent sessions at this point.
	Sessions int
	// AggregateThroughput maps protocol name to the mean (over trials) sum
	// of per-session throughputs, in bytes/second.
	AggregateThroughput map[string]float64
	// JainFairness maps protocol name to the mean Jain index over trials.
	JainFairness map[string]float64
}

// MultiScaling is the outcome of RunMultiScaling.
type MultiScaling struct {
	Config  MultiConfig
	Network *topology.Network
	Points  []MultiPoint
}

// multiCell is one (session count, trial) emulation waiting to run: the
// placed endpoint list plus the indices that address its result slot.
type multiCell struct {
	count, trial int
	sessions     []protocol.Endpoints
}

// multiCellResult carries one cell's per-protocol outcome.
type multiCellResult struct {
	aggregate map[string]float64
	jain      map[string]float64
}

// RunMultiScaling generates one deployment, places SessionCounts[i] disjoint
// unicast sessions per trial, and emulates every requested protocol on each
// cell with all of the cell's sessions contending on one shared engine. OMNC
// allocates rates jointly across the cell's sessions; the baselines contend
// uncoordinated.
//
// Like RunComparison it is deterministic for every Workers setting: placement
// is serial (one RNG stream per cell, derived from the seed and the cell's
// position), and emulation writes into index-addressed slots.
func RunMultiScaling(cfg MultiConfig) (*MultiScaling, error) {
	cfg = cfg.withDefaults()
	nw, err := topology.Generate(topology.Config{
		Nodes:   cfg.Nodes,
		Density: cfg.Density,
		PHY:     topology.DefaultPHY(),
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if cfg.MeanQuality > 0 {
		phy, err := topology.DefaultPHY().CalibrateGain(cfg.MeanQuality)
		if err != nil {
			return nil, err
		}
		if nw, err = nw.WithPHY(phy); err != nil {
			return nil, err
		}
	}

	cells, err := placeMultiCells(nw, cfg)
	if err != nil {
		return nil, err
	}

	results := make([]multiCellResult, len(cells))
	err = parallel.ForEachCtx(ctxOrBackground(cfg.Ctx), len(cells), parallel.Workers(cfg.Workers), func(i int) error {
		res, err := runMultiCell(nw, cells[i], cfg, i)
		if err != nil {
			return fmt.Errorf("experiments: %d sessions, trial %d: %w",
				cells[i].count, cells[i].trial, err)
		}
		results[i] = *res
		if cfg.Progress != nil {
			cfg.Progress.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &MultiScaling{Config: cfg, Network: nw}
	for _, count := range cfg.SessionCounts {
		pt := MultiPoint{
			Sessions:            count,
			AggregateThroughput: make(map[string]float64, len(cfg.Protocols)),
			JainFairness:        make(map[string]float64, len(cfg.Protocols)),
		}
		trials := 0
		for i, cell := range cells {
			if cell.count != count {
				continue
			}
			trials++
			for _, name := range cfg.Protocols {
				pt.AggregateThroughput[name] += results[i].aggregate[name]
				pt.JainFairness[name] += results[i].jain[name]
			}
		}
		if trials == 0 {
			return nil, fmt.Errorf("experiments: no feasible placement for %d sessions", count)
		}
		for _, name := range cfg.Protocols {
			pt.AggregateThroughput[name] /= float64(trials)
			pt.JainFairness[name] /= float64(trials)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// placeMultiCells samples each cell's endpoint list from its own RNG stream,
// derived from (Seed, session count position, trial) — so adding a trial or a
// count never perturbs another cell's placement. Pairs within a cell are
// distinct (ValidateSessions would reject duplicates) and each must admit a
// forwarder subgraph.
func placeMultiCells(nw *topology.Network, cfg MultiConfig) ([]multiCell, error) {
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}
	var cells []multiCell
	for ci, count := range cfg.SessionCounts {
		if count <= 0 {
			return nil, fmt.Errorf("experiments: session count %d must be positive", count)
		}
		for tr := 0; tr < cfg.Trials; tr++ {
			rng := rand.New(rand.NewSource(seedmix.Derive(cfg.Seed, streamMultiPlacement, int64(ci)*1e6+int64(tr))))
			sessions, err := placeEndpoints(nw, adj, rng, count, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: %d sessions, trial %d: %w", count, tr, err)
			}
			cells = append(cells, multiCell{count: count, trial: tr, sessions: sessions})
		}
	}
	return cells, nil
}

// placeEndpoints samples count distinct feasible (src, dst) pairs.
func placeEndpoints(nw *topology.Network, adj [][]int, rng *rand.Rand, count int, cfg MultiConfig) ([]protocol.Endpoints, error) {
	var sessions []protocol.Endpoints
	seen := make(map[protocol.Endpoints]bool, count)
	attempts := 0
	maxAttempts := 500 * count
	for len(sessions) < count {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("only %d of %d feasible sessions found in %d attempts",
				len(sessions), count, attempts)
		}
		src := rng.Intn(nw.Size())
		dst := rng.Intn(nw.Size())
		ep := protocol.Endpoints{Src: src, Dst: dst}
		if src == dst || seen[ep] {
			continue
		}
		hops := graph.HopCounts(adj, src)[dst]
		if hops < cfg.MinHops || hops > cfg.MaxHops {
			continue
		}
		if _, err := core.SelectNodes(nw, src, dst); err != nil {
			continue
		}
		seen[ep] = true
		sessions = append(sessions, ep)
	}
	return sessions, nil
}

// runMultiCell emulates one cell under every requested protocol.
func runMultiCell(nw *topology.Network, cell multiCell, cfg MultiConfig, idx int) (*multiCellResult, error) {
	pcfg := protocol.Config{
		Coding:        cfg.Coding,
		AirPacketSize: cfg.AirPacketSize,
		Capacity:      cfg.Capacity,
		Duration:      cfg.Duration,
		CBRRate:       cfg.CBRRate,
		Seed:          seedmix.Derive(cfg.Seed, streamMultiTrial, int64(idx)),
		MAC:           cfg.MAC,
		EngineWorkers: cfg.EngineWorkers,
	}
	res := &multiCellResult{
		aggregate: make(map[string]float64, len(cfg.Protocols)),
		jain:      make(map[string]float64, len(cfg.Protocols)),
	}
	for _, name := range cfg.Protocols {
		proto, err := multiProtocol(name, cfg.RateOptions)
		if err != nil {
			return nil, err
		}
		ms, err := protocol.RunMulti(nw, cell.sessions, proto, pcfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		res.aggregate[name] = ms.AggregateThroughput
		res.jain[name] = ms.JainFairness
	}
	return res, nil
}

// multiProtocol maps a protocol name to its multi-session-capable Protocol
// value.
func multiProtocol(name string, opts core.Options) (protocol.Protocol, error) {
	switch name {
	case ProtoOMNC:
		return protocol.NewProtocol("omnc", protocol.OMNC(opts)).
			WithMulti(protocol.OMNCMulti(opts)), nil
	case ProtoMORE:
		return protocol.NewProtocol("more", routing.MORE()), nil
	case ProtoOldMORE:
		return protocol.NewProtocol("oldmore", routing.OldMORE()), nil
	case ProtoETX:
		return routing.ETXProtocol(), nil
	default:
		return protocol.Protocol{}, fmt.Errorf("unknown protocol %q", name)
	}
}
