package experiments

import (
	"fmt"
	"math/rand"

	"omnc/internal/core"
	"omnc/internal/graph"
	"omnc/internal/metrics"
	"omnc/internal/parallel"
	"omnc/internal/protocol"
	"omnc/internal/seedmix"
	"omnc/internal/topology"
)

// DriftSweepConfig parameterizes the link-dynamics experiment (an extension
// beyond the paper's static evaluation; Sec. 4 discusses the re-initiation
// cost qualitatively).
type DriftSweepConfig struct {
	// Base supplies topology, session and protocol settings; only OMNC
	// runs (the sweep studies OMNC's re-initiation trade-off).
	Base Config
	// Jitters are the per-epoch link-quality perturbation magnitudes to
	// sweep (0 = static network).
	Jitters []float64
	// Epochs per session.
	Epochs int
	// ReinitOverhead is the seconds charged per re-initiation.
	ReinitOverhead float64
}

// DriftSweepResult maps each jitter level to the distribution of session
// throughputs.
type DriftSweepResult struct {
	Jitters []float64
	// Throughput[i] summarizes session throughputs at Jitters[i].
	Throughput []metrics.Summary
}

// DriftSweep measures OMNC throughput across sessions as link-quality drift
// intensifies, with node selection and rate control re-initiated each
// epoch.
func DriftSweep(cfg DriftSweepConfig) (*DriftSweepResult, error) {
	base := cfg.Base.withDefaults()
	if len(cfg.Jitters) == 0 {
		cfg.Jitters = []float64{0, 0.15, 0.3}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 3
	}
	nw, err := topology.Generate(topology.Config{
		Nodes:   base.Nodes,
		Density: base.Density,
		PHY:     topology.DefaultPHY(),
		Seed:    base.Seed,
	})
	if err != nil {
		return nil, err
	}
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}

	// Fixed session set across jitter levels, so the sweep is paired.
	type pair struct{ src, dst int }
	var pairs []pair
	rng := rand.New(rand.NewSource(seedmix.Derive(base.Seed, streamDriftPairs)))
	attempts := 0
	for len(pairs) < base.Sessions && attempts < 200*base.Sessions {
		attempts++
		src, dst := rng.Intn(nw.Size()), rng.Intn(nw.Size())
		if src == dst {
			continue
		}
		h := graph.HopCounts(adj, src)[dst]
		if h < base.MinHops || h > base.MaxHops {
			continue
		}
		if _, err := core.SelectNodes(nw, src, dst); err != nil {
			continue
		}
		pairs = append(pairs, pair{src, dst})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: no sessions for the drift sweep")
	}

	// The sweep is a flat grid of (jitter level, session) cells; every cell
	// is an independent emulation, so all of them share one worker pool.
	// Each cell's protocol and drift seeds are derived from its coordinates
	// and results land in slots addressed by them, keeping the sweep
	// bit-identical across worker counts (same guarantee as RunComparison).
	tps := make([][]float64, len(cfg.Jitters))
	for ji := range tps {
		tps[ji] = make([]float64, len(pairs))
	}
	cells := len(cfg.Jitters) * len(pairs)
	err = parallel.ForEachCtx(ctxOrBackground(base.Ctx), cells, parallel.Workers(base.Workers), func(i int) error {
		ji, si := i/len(pairs), i%len(pairs)
		p := pairs[si]
		pcfg := protocol.Config{
			Coding:        base.Coding,
			AirPacketSize: base.AirPacketSize,
			Capacity:      base.Capacity,
			Duration:      base.Duration,
			CBRRate:       base.CBRRate,
			MAC:           base.MAC,
			Seed:          TrialSeed(base.Seed, si),
			EngineWorkers: base.EngineWorkers,
		}
		ds, err := protocol.RunWithDrift(nw, p.src, p.dst,
			protocol.OMNC(base.RateOptions), pcfg, protocol.DriftConfig{
				Epochs:         cfg.Epochs,
				Jitter:         cfg.Jitters[ji],
				ReinitOverhead: cfg.ReinitOverhead,
				Seed:           seedmix.Derive(base.Seed, streamDriftTrial, int64(ji), int64(si)),
			})
		if err != nil {
			return fmt.Errorf("experiments: drift session %d->%d: %w", p.src, p.dst, err)
		}
		tps[ji][si] = ds.Throughput
		if base.Progress != nil {
			base.Progress.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &DriftSweepResult{Jitters: cfg.Jitters}
	for ji := range cfg.Jitters {
		out.Throughput = append(out.Throughput, metrics.Summarize(tps[ji]))
	}
	return out, nil
}
