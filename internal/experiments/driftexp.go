package experiments

import (
	"fmt"
	"math/rand"

	"omnc/internal/core"
	"omnc/internal/graph"
	"omnc/internal/metrics"
	"omnc/internal/protocol"
	"omnc/internal/topology"
)

// DriftSweepConfig parameterizes the link-dynamics experiment (an extension
// beyond the paper's static evaluation; Sec. 4 discusses the re-initiation
// cost qualitatively).
type DriftSweepConfig struct {
	// Base supplies topology, session and protocol settings; only OMNC
	// runs (the sweep studies OMNC's re-initiation trade-off).
	Base Config
	// Jitters are the per-epoch link-quality perturbation magnitudes to
	// sweep (0 = static network).
	Jitters []float64
	// Epochs per session.
	Epochs int
	// ReinitOverhead is the seconds charged per re-initiation.
	ReinitOverhead float64
}

// DriftSweepResult maps each jitter level to the distribution of session
// throughputs.
type DriftSweepResult struct {
	Jitters []float64
	// Throughput[i] summarizes session throughputs at Jitters[i].
	Throughput []metrics.Summary
}

// DriftSweep measures OMNC throughput across sessions as link-quality drift
// intensifies, with node selection and rate control re-initiated each
// epoch.
func DriftSweep(cfg DriftSweepConfig) (*DriftSweepResult, error) {
	base := cfg.Base.withDefaults()
	if len(cfg.Jitters) == 0 {
		cfg.Jitters = []float64{0, 0.15, 0.3}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 3
	}
	nw, err := topology.Generate(topology.Config{
		Nodes:   base.Nodes,
		Density: base.Density,
		PHY:     topology.DefaultPHY(),
		Seed:    base.Seed,
	})
	if err != nil {
		return nil, err
	}
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}

	// Fixed session set across jitter levels, so the sweep is paired.
	type pair struct{ src, dst int }
	var pairs []pair
	rng := rand.New(rand.NewSource(base.Seed + 5000))
	attempts := 0
	for len(pairs) < base.Sessions && attempts < 200*base.Sessions {
		attempts++
		src, dst := rng.Intn(nw.Size()), rng.Intn(nw.Size())
		if src == dst {
			continue
		}
		h := graph.HopCounts(adj, src)[dst]
		if h < base.MinHops || h > base.MaxHops {
			continue
		}
		if _, err := core.SelectNodes(nw, src, dst); err != nil {
			continue
		}
		pairs = append(pairs, pair{src, dst})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: no sessions for the drift sweep")
	}

	pcfg := protocol.Config{
		Coding:        base.Coding,
		AirPacketSize: base.AirPacketSize,
		Capacity:      base.Capacity,
		Duration:      base.Duration,
		CBRRate:       base.CBRRate,
		MAC:           base.MAC,
	}
	out := &DriftSweepResult{Jitters: cfg.Jitters}
	for ji, jitter := range cfg.Jitters {
		var tps []float64
		for si, p := range pairs {
			pcfg.Seed = base.Seed + int64(si)*7919
			ds, err := protocol.RunWithDrift(nw, p.src, p.dst,
				protocol.OMNC(base.RateOptions), pcfg, protocol.DriftConfig{
					Epochs:         cfg.Epochs,
					Jitter:         jitter,
					ReinitOverhead: cfg.ReinitOverhead,
					Seed:           base.Seed + int64(ji)*131 + int64(si),
				})
			if err != nil {
				return nil, fmt.Errorf("experiments: drift session %d->%d: %w", p.src, p.dst, err)
			}
			tps = append(tps, ds.Throughput)
		}
		out.Throughput = append(out.Throughput, metrics.Summarize(tps))
	}
	return out, nil
}
