package experiments

import (
	"fmt"

	"omnc/internal/core"
	"omnc/internal/topology"
)

// Fig1Config parameterizes the convergence showcase of Fig. 1.
type Fig1Config struct {
	// Capacity is the channel capacity; the paper uses 1e5 bytes/second.
	Capacity float64
	// MaxIterations bounds the run (the paper's trace spans ~50
	// iterations).
	MaxIterations int
	// RateOptions overrides the remaining controller knobs.
	RateOptions core.Options
}

// Fig1Result is the convergence trace: per-iteration recovered broadcast
// rates for every transmitting node of the sample topology.
type Fig1Result struct {
	// Nodes are the sample-topology node IDs, index-aligned with the rate
	// series.
	Nodes []int
	// Series[i] is the broadcast-rate trace (bytes/second) of Nodes[i],
	// one entry per iteration.
	Series [][]float64
	// Iterations and Converged summarize the run.
	Iterations int
	Converged  bool
	// Gamma is the final throughput estimate.
	Gamma float64
}

// Fig1SampleTopology returns the tagged-probability sample topology used
// for the convergence showcase. The paper does not print its sample
// topology's matrix, so this is our stand-in with the same character: a
// source, two tiers of partially overlapping relays, and a destination,
// all links of intermediate quality.
func Fig1SampleTopology() *topology.Network {
	nw, err := topology.NewExplicit([][]float64{
		// S     r1   r2   r3   r4    T
		{0, 0.8, 0.6, 0, 0, 0},
		{0.8, 0, 0.5, 0.7, 0.5, 0},
		{0.6, 0.5, 0, 0, 0.8, 0},
		{0, 0.7, 0, 0, 0.4, 0.9},
		{0, 0.5, 0.8, 0.4, 0, 0.7},
		{0, 0, 0, 0.9, 0.7, 0},
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: sample topology: %v", err)) // static matrix: cannot fail
	}
	return nw
}

// Fig1Convergence runs the distributed rate-control algorithm on the sample
// topology with trace recording and returns the per-node rate series,
// regenerating Fig. 1.
func Fig1Convergence(cfg Fig1Config) (*Fig1Result, error) {
	if cfg.Capacity == 0 {
		cfg.Capacity = 1e5 // the paper's Fig. 1 setting
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 400
	}
	nw := Fig1SampleTopology()
	sg, err := core.SelectNodes(nw, 0, 5)
	if err != nil {
		return nil, err
	}
	opts := cfg.RateOptions
	opts.Capacity = cfg.Capacity
	opts.MaxIterations = cfg.MaxIterations
	opts.RecordTrace = true
	res, err := core.NewRateController(sg, opts).Run()
	if err != nil {
		return nil, err
	}

	out := &Fig1Result{
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Gamma:      res.Gamma,
	}
	for local, id := range sg.Nodes {
		if local == sg.Dst {
			continue // the destination never transmits
		}
		series := make([]float64, len(res.Trace))
		for t, snap := range res.Trace {
			series[t] = snap.B[local]
		}
		out.Nodes = append(out.Nodes, id)
		out.Series = append(out.Series, series)
	}
	return out, nil
}
