// Package experiments reproduces the evaluation of Sec. 5: every table and
// figure has a runner that regenerates its series. The shared RunComparison
// harness emulates the same randomly placed unicast sessions under all four
// protocols (OMNC, MORE, oldMORE, ETX routing); the figure-specific views
// derive the distributions the paper plots:
//
//	Fig. 1  — Fig1Convergence: broadcast-rate trace of the distributed
//	          rate-control algorithm on a sample topology.
//	Fig. 2  — Comparison.GainCDFs: CDF of throughput gain over ETX, on the
//	          lossy (mean p ~ 0.58) and high-quality (~0.91) networks.
//	Fig. 3  — Comparison.QueueCDFs: CDF of per-session time-averaged queue
//	          size.
//	Fig. 4  — Comparison.NodeUtilityCDFs / PathUtilityCDFs.
//	Sec. 5  — Comparison.MeanRateIterations (paper: 91) and LPGapSummary
//	          (emulated vs optimized throughput).
package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/gf256"
	"omnc/internal/graph"
	"omnc/internal/metrics"
	"omnc/internal/parallel"
	"omnc/internal/protocol"
	"omnc/internal/routing"
	"omnc/internal/seedmix"
	"omnc/internal/sim"
	"omnc/internal/topology"
)

// RNG stream identifiers mixed with Config.Seed via seedmix.Derive. Every
// random process in the harness draws from its own derived stream, so
// changing one (say, adding a trial) never perturbs another.
const (
	streamPlacement int64 = iota + 1
	streamTrial
	streamDriftPairs
	streamDriftTrial
	streamMultiPlacement
	streamMultiTrial
	streamFaultsPlacement
	streamFaultsPlan
	streamFaultsTrial
	streamSchemesTrial
)

// TrialSeed derives the deterministic protocol seed of trial idx under the
// experiment seed. It is exposed so tests and tools can reproduce a single
// trial out of a sweep without replaying the whole experiment.
func TrialSeed(seed int64, idx int) int64 {
	return seedmix.Derive(seed, streamTrial, int64(idx))
}

// Protocol names accepted by Config.Protocols.
const (
	ProtoOMNC    = "omnc"
	ProtoMORE    = "more"
	ProtoOldMORE = "oldmore"
	ProtoETX     = "etx"
)

// Config describes one comparison experiment (a Fig. 2/3/4-style run).
type Config struct {
	// Nodes and Density describe the random deployment (paper: 300 at
	// density 6).
	Nodes   int
	Density float64
	// MeanQuality calibrates transmit power to a target mean link quality;
	// 0 keeps the default lossy PHY (~0.58). The high-quality experiment
	// uses 0.91.
	MeanQuality float64
	// Sessions is the number of random unicast sessions (paper: 300).
	Sessions int
	// MinHops and MaxHops constrain endpoint placement (paper: 4 to 10).
	MinHops, MaxHops int
	// Duration is the emulated seconds per session (paper: 800).
	Duration float64
	// Capacity is the channel capacity in bytes/second; the paper's CBR of
	// 1e4 B/s is "half of the channel capacity", so C = 2e4.
	Capacity float64
	// CBRRate is the source workload rate (paper: 1e4 B/s).
	CBRRate float64
	// Coding parameters; the AirPacketSize is always the paper's full
	// 40-coefficient + 1 KB frame so air times stay faithful even when
	// BlockSize is shrunk for speed.
	Coding        coding.Params
	AirPacketSize int
	// Scheme selects the coding strategy for every emulated session
	// (default: full-recoding RLNC); Redundancy caps source emissions per
	// generation (0 = rateless). See coding.Scheme.
	Scheme     coding.Scheme
	Redundancy float64
	// QueueSampleInterval enables Fig. 3's queue sampling when positive.
	QueueSampleInterval float64
	// Protocols to run; nil means all four.
	Protocols []string
	// MAC selects the channel model (default: the ideal oracle scheduler).
	MAC sim.Mode
	// RateOptions tunes OMNC's rate controller.
	RateOptions core.Options
	// SolveLPGap additionally computes the centralized sUnicast optimum
	// per session (the Sec. 5 optimized-vs-emulated comparison).
	SolveLPGap bool
	// Seed makes the whole experiment reproducible.
	Seed int64
	// Workers bounds how many sessions are emulated concurrently: 1 runs
	// strictly serially, anything else (including the zero value) uses one
	// worker per available CPU. Results are bit-identical for every worker
	// count — each trial runs on its own sim.Engine with an RNG stream
	// derived from (Seed, trial index) and lands in a slice slot addressed
	// by its trial index.
	Workers int
	// EngineWorkers selects each session's event engine: 0 the serial
	// engine, N >= 1 the conservative parallel engine with N workers
	// (protocol.Config EngineWorkers). Orthogonal to Workers — that fans
	// sessions out, this parallelizes inside one session — and results are
	// bit-identical for every value.
	EngineWorkers int
	// Progress, when non-nil, is incremented once per completed session so
	// callers can report sweep progress from another goroutine.
	Progress *metrics.Progress
	// Report enables per-session observability reports (protocol.Config
	// Report); each Stats in SessionResult.ByProtocol then carries one.
	Report bool
	// Ctx, when non-nil, cancels the sweep cooperatively: no new session is
	// dispatched once it is done, and the runner returns the context's
	// error. Sessions already emulating run to completion — cancellation is
	// a session-boundary affair, which keeps every completed result
	// bit-identical to an uncancelled run's. Nil means context.Background().
	Ctx context.Context
}

// ctxOrBackground normalizes an optional per-sweep context.
func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// PaperConfig returns the full-scale evaluation settings of Sec. 5.
// Expect hours of CPU time; QuickConfig is the scaled-down default.
func PaperConfig(seed int64) Config {
	return Config{
		Nodes:               300,
		Density:             6,
		Sessions:            300,
		MinHops:             4,
		MaxHops:             10,
		Duration:            800,
		Capacity:            2e4,
		CBRRate:             1e4,
		Coding:              coding.Params{GenerationSize: 40, BlockSize: 1024, Strategy: gf256.StrategyAccel},
		AirPacketSize:       40 + 1024,
		QueueSampleInterval: 0.5,
		Seed:                seed,
	}
}

// QuickConfig returns a laptop-scale variant of PaperConfig: the same
// topology and per-packet fidelity, but fewer sessions, shorter emulated
// time, and a 8-byte payload fidelity (air times still use the 1 KB frame;
// innovation arithmetic is exact because it depends only on coefficients).
func QuickConfig(seed int64) Config {
	cfg := PaperConfig(seed)
	cfg.Sessions = 30
	cfg.Duration = 200
	cfg.Coding.BlockSize = 8
	return cfg
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 300
	}
	if c.Density == 0 {
		c.Density = 6
	}
	if c.Sessions == 0 {
		c.Sessions = 30
	}
	if c.MinHops == 0 {
		c.MinHops = 4
	}
	if c.MaxHops == 0 {
		c.MaxHops = 10
	}
	if c.Duration == 0 {
		c.Duration = 200
	}
	if c.Capacity == 0 {
		c.Capacity = 2e4
	}
	if c.Coding.GenerationSize == 0 {
		c.Coding = coding.Params{GenerationSize: 40, BlockSize: 8, Strategy: gf256.StrategyAccel}
	}
	if c.AirPacketSize == 0 {
		c.AirPacketSize = c.Coding.CoeffBytes() + 1024
	}
	if len(c.Protocols) == 0 {
		c.Protocols = []string{ProtoOMNC, ProtoMORE, ProtoOldMORE, ProtoETX}
	}
	return c
}

// SessionResult holds one session's endpoints and per-protocol statistics.
type SessionResult struct {
	Src, Dst int
	Hops     int
	// ByProtocol maps protocol name to its session statistics.
	ByProtocol map[string]*protocol.Stats
	// LPGamma is the centralized sUnicast optimum (bytes/s) when
	// Config.SolveLPGap is set.
	LPGamma float64
}

// Comparison is the outcome of RunComparison.
type Comparison struct {
	Config   Config
	Network  *topology.Network
	Sessions []SessionResult
}

// trial is one placed session waiting to be emulated: endpoints, hop count,
// and the forwarder subgraph the placement phase already selected.
type trial struct {
	src, dst, hops int
	sg             *core.Subgraph
}

// RunComparison generates the deployment, samples sessions under the hop
// constraint, and emulates every requested protocol on each session.
//
// It runs in two phases. Placement is serial: a single RNG stream samples
// endpoint candidates, so the accepted session list depends only on the
// seed. Emulation fans the placed trials out over Config.Workers goroutines;
// each trial owns a private discrete-event engine and an RNG stream derived
// from (Seed, trial index), and writes its result into the slot addressed by
// its trial index — so the returned Comparison is bit-identical whether the
// trials ran on one worker or thirty-two.
func RunComparison(cfg Config) (*Comparison, error) {
	cfg = cfg.withDefaults()
	nw, err := topology.Generate(topology.Config{
		Nodes:   cfg.Nodes,
		Density: cfg.Density,
		PHY:     topology.DefaultPHY(),
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if cfg.MeanQuality > 0 {
		phy, err := topology.DefaultPHY().CalibrateGain(cfg.MeanQuality)
		if err != nil {
			return nil, err
		}
		if nw, err = nw.WithPHY(phy); err != nil {
			return nil, err
		}
	}

	trials, err := placeSessions(nw, cfg)
	if err != nil {
		return nil, err
	}

	out := &Comparison{Config: cfg, Network: nw}
	out.Sessions = make([]SessionResult, len(trials))
	err = parallel.ForEachCtx(ctxOrBackground(cfg.Ctx), len(trials), parallel.Workers(cfg.Workers), func(i int) error {
		tr := trials[i]
		res, err := runSession(nw, tr.sg, tr.src, tr.dst, cfg, i)
		if err != nil {
			return fmt.Errorf("experiments: session %d->%d: %w", tr.src, tr.dst, err)
		}
		res.Hops = tr.hops
		out.Sessions[i] = *res
		if cfg.Progress != nil {
			cfg.Progress.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// placeSessions samples (src, dst) candidates from the placement RNG stream
// until Config.Sessions pairs satisfy the hop constraint and have a feasible
// forwarder subgraph. It is deliberately serial: one RNG stream consumed in
// a fixed order is what makes the trial list a pure function of the seed.
func placeSessions(nw *topology.Network, cfg Config) ([]trial, error) {
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}
	rng := rand.New(rand.NewSource(seedmix.Derive(cfg.Seed, streamPlacement)))

	var trials []trial
	attempts := 0
	maxAttempts := 200 * cfg.Sessions
	for len(trials) < cfg.Sessions {
		attempts++
		if attempts > maxAttempts {
			if len(trials) == 0 {
				return nil, fmt.Errorf("experiments: no session satisfying %d-%d hops found in %d attempts",
					cfg.MinHops, cfg.MaxHops, attempts)
			}
			break
		}
		src := rng.Intn(nw.Size())
		dst := rng.Intn(nw.Size())
		if src == dst {
			continue
		}
		hops := graph.HopCounts(adj, src)[dst]
		if hops < cfg.MinHops || hops > cfg.MaxHops {
			continue
		}
		sg, err := core.SelectNodes(nw, src, dst)
		if err != nil {
			continue
		}
		trials = append(trials, trial{src: src, dst: dst, hops: hops, sg: sg})
	}
	return trials, nil
}

func runSession(nw *topology.Network, sg *core.Subgraph, src, dst int, cfg Config, idx int) (*SessionResult, error) {
	pcfg := protocol.Config{
		Coding:              cfg.Coding,
		Scheme:              cfg.Scheme,
		Redundancy:          cfg.Redundancy,
		AirPacketSize:       cfg.AirPacketSize,
		Capacity:            cfg.Capacity,
		Duration:            cfg.Duration,
		CBRRate:             cfg.CBRRate,
		Seed:                TrialSeed(cfg.Seed, idx),
		QueueSampleInterval: cfg.QueueSampleInterval,
		MAC:                 cfg.MAC,
		Report:              cfg.Report,
		EngineWorkers:       cfg.EngineWorkers,
	}
	res := &SessionResult{Src: src, Dst: dst, ByProtocol: make(map[string]*protocol.Stats, len(cfg.Protocols))}
	for _, name := range cfg.Protocols {
		var (
			st  *protocol.Stats
			err error
		)
		switch name {
		case ProtoOMNC:
			st, err = protocol.Run(nw, src, dst, protocol.OMNC(cfg.RateOptions), pcfg)
		case ProtoMORE:
			st, err = protocol.Run(nw, src, dst, routing.MORE(), pcfg)
		case ProtoOldMORE:
			st, err = protocol.Run(nw, src, dst, routing.OldMORE(), pcfg)
		case ProtoETX:
			st, err = routing.RunETX(nw, src, dst, pcfg)
		default:
			return nil, fmt.Errorf("unknown protocol %q", name)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		res.ByProtocol[name] = st
	}
	if cfg.SolveLPGap {
		lpRes, err := core.SolveLP(sg, cfg.Capacity)
		if err != nil {
			return nil, fmt.Errorf("lp: %w", err)
		}
		res.LPGamma = lpRes.Gamma
	}
	return res, nil
}

// throughputs collects per-session throughputs of one protocol.
func (c *Comparison) throughputs(name string) []float64 {
	out := make([]float64, 0, len(c.Sessions))
	for _, s := range c.Sessions {
		if st, ok := s.ByProtocol[name]; ok {
			out = append(out, st.Throughput)
		}
	}
	return out
}

// GainCDFs returns Fig. 2's series: the CDF of throughput gain over ETX
// routing for every coded protocol that was run. Gains are paired per
// session — only sessions where both the coded protocol and the ETX
// baseline ran contribute — so the slices handed to metrics.Gains are
// parallel by construction.
func (c *Comparison) GainCDFs() map[string]*metrics.CDF {
	out := make(map[string]*metrics.CDF)
	for _, name := range []string{ProtoOMNC, ProtoMORE, ProtoOldMORE} {
		var tp, base []float64
		for _, s := range c.Sessions {
			st, ok := s.ByProtocol[name]
			bst, bok := s.ByProtocol[ProtoETX]
			if ok && bok {
				tp = append(tp, st.Throughput)
				base = append(base, bst.Throughput)
			}
		}
		if len(tp) > 0 {
			out[name] = metrics.NewCDF(metrics.Gains(tp, base))
		}
	}
	return out
}

// QueueCDFs returns Fig. 3's series: the CDF over sessions of the per-node
// time-averaged queue size.
func (c *Comparison) QueueCDFs() map[string]*metrics.CDF {
	out := make(map[string]*metrics.CDF)
	for _, name := range []string{ProtoOMNC, ProtoMORE, ProtoOldMORE, ProtoETX} {
		var samples []float64
		for _, s := range c.Sessions {
			if st, ok := s.ByProtocol[name]; ok {
				samples = append(samples, st.MeanQueue)
			}
		}
		if len(samples) > 0 {
			out[name] = metrics.NewCDF(samples)
		}
	}
	return out
}

// NodeUtilityCDFs returns the first half of Fig. 4.
func (c *Comparison) NodeUtilityCDFs() map[string]*metrics.CDF {
	return c.utilityCDFs(func(st *protocol.Stats) float64 { return st.NodeUtility })
}

// PathUtilityCDFs returns the second half of Fig. 4.
func (c *Comparison) PathUtilityCDFs() map[string]*metrics.CDF {
	return c.utilityCDFs(func(st *protocol.Stats) float64 { return st.PathUtility })
}

func (c *Comparison) utilityCDFs(metric func(*protocol.Stats) float64) map[string]*metrics.CDF {
	out := make(map[string]*metrics.CDF)
	for _, name := range []string{ProtoOMNC, ProtoMORE, ProtoOldMORE} {
		var samples []float64
		for _, s := range c.Sessions {
			if st, ok := s.ByProtocol[name]; ok {
				samples = append(samples, metric(st))
			}
		}
		if len(samples) > 0 {
			out[name] = metrics.NewCDF(samples)
		}
	}
	return out
}

// ReportTotals aggregates one protocol's per-session reports across the
// comparison (Config.Report runs only).
type ReportTotals struct {
	Sessions       int
	TxFrames       int64
	RxPackets      int64
	Innovative     int64
	Discarded      int64
	AirtimeSeconds float64
	Replans        int
}

// ReportTotals sums the session reports per protocol. The map is empty when
// the comparison ran without Config.Report.
func (c *Comparison) ReportTotals() map[string]ReportTotals {
	out := make(map[string]ReportTotals)
	for _, s := range c.Sessions {
		for name, st := range s.ByProtocol {
			if st.Report == nil {
				continue
			}
			t := out[name]
			t.Sessions++
			t.TxFrames += st.Report.TotalTx()
			t.RxPackets += st.Report.TotalRx()
			t.Innovative += st.Report.TotalInnovative()
			t.Discarded += st.Report.TotalDiscarded()
			t.AirtimeSeconds += st.Report.MAC.AirtimeSeconds
			t.Replans += st.Report.Faults.Replans
			out[name] = t
		}
	}
	return out
}

// MeanRateIterations returns the average iteration count of OMNC's
// distributed rate controller across sessions (the paper reports 91).
func (c *Comparison) MeanRateIterations() float64 {
	return c.RateIterationsSummary().Mean
}

// RateIterationsSummary returns the distribution of OMNC rate-control
// iteration counts across sessions.
func (c *Comparison) RateIterationsSummary() metrics.Summary {
	var iters []float64
	for _, s := range c.Sessions {
		if st, ok := s.ByProtocol[ProtoOMNC]; ok && st.RateIterations > 0 {
			iters = append(iters, float64(st.RateIterations))
		}
	}
	return metrics.Summarize(iters)
}

// LPGapSummary summarizes emulated-OMNC / optimized-gamma ratios (Sec. 5
// observes emulated throughput below the optimized value). Requires
// Config.SolveLPGap.
func (c *Comparison) LPGapSummary() metrics.Summary {
	var ratios []float64
	for _, s := range c.Sessions {
		st, ok := s.ByProtocol[ProtoOMNC]
		if !ok || s.LPGamma <= 0 {
			continue
		}
		ratios = append(ratios, st.Throughput/s.LPGamma)
	}
	return metrics.Summarize(ratios)
}
