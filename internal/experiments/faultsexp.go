package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/faults"
	"omnc/internal/metrics"
	"omnc/internal/parallel"
	"omnc/internal/protocol"
	"omnc/internal/routing"
	"omnc/internal/seedmix"
	"omnc/internal/sim"
	"omnc/internal/topology"
	"omnc/internal/trace"
)

// FaultsConfig describes the fault-churn experiment: how throughput and
// time-to-recover degrade as node churn and link instability rise, for every
// protocol. Each churn rate spawns a random fault plan per placed session
// (endpoints protected); rate 0 is the fault-free baseline and takes the
// exact nil-plan path, so its numbers are bit-identical to RunComparison's.
type FaultsConfig struct {
	// Nodes and Density describe the random deployment.
	Nodes   int
	Density float64
	// MeanQuality calibrates transmit power; 0 keeps the lossy default.
	MeanQuality float64
	// Sessions is how many placed (src, dst) pairs are averaged per churn
	// rate.
	Sessions int
	// MinHops and MaxHops constrain endpoint placement.
	MinHops, MaxHops int
	// Duration, Capacity and CBRRate parameterize each emulated session.
	Duration float64
	Capacity float64
	CBRRate  float64
	// Coding parameters and on-air frame size, as in Config.
	Coding        coding.Params
	AirPacketSize int
	// ChurnRates are the x-axis points in crashes (and flap/burst episodes)
	// per 100 emulated seconds. Default {0, 2, 5}.
	ChurnRates []float64
	// MeanDowntime is the mean crash-to-recover delay in seconds. Default
	// Duration/8.
	MeanDowntime float64
	// Protocols to run; nil means all four.
	Protocols []string
	// MAC selects the channel model.
	MAC sim.Mode
	// RateOptions tunes OMNC's rate controller.
	RateOptions core.Options
	// Seed makes the whole experiment reproducible.
	Seed int64
	// Workers bounds concurrent cell emulation; results are bit-identical
	// for every worker count (fault plans and trial seeds derive from the
	// cell index, and results land in index-addressed slots).
	Workers int
	// EngineWorkers selects each cell's event engine (protocol.Config
	// EngineWorkers): 0 serial, N >= 1 the parallel engine with N workers.
	// Results are bit-identical for every value.
	EngineWorkers int
	// Progress, when non-nil, is incremented once per completed cell.
	Progress *metrics.Progress
	// Ctx, when non-nil, cancels the sweep between cells (Config.Ctx
	// semantics). Nil means context.Background().
	Ctx context.Context
}

func (c FaultsConfig) withDefaults() FaultsConfig {
	base := Config{
		Nodes:         c.Nodes,
		Density:       c.Density,
		MinHops:       c.MinHops,
		MaxHops:       c.MaxHops,
		Duration:      c.Duration,
		Capacity:      c.Capacity,
		Coding:        c.Coding,
		AirPacketSize: c.AirPacketSize,
		Protocols:     c.Protocols,
	}.withDefaults()
	c.Nodes = base.Nodes
	c.Density = base.Density
	c.MinHops = base.MinHops
	c.MaxHops = base.MaxHops
	c.Duration = base.Duration
	c.Capacity = base.Capacity
	c.Coding = base.Coding
	c.AirPacketSize = base.AirPacketSize
	c.Protocols = base.Protocols
	if c.Sessions == 0 {
		c.Sessions = 3
	}
	if len(c.ChurnRates) == 0 {
		c.ChurnRates = []float64{0, 2, 5}
	}
	if c.MeanDowntime == 0 {
		c.MeanDowntime = c.Duration / 8
	}
	return c
}

// FaultPoint is one churn level of the experiment: per-protocol mean
// throughput and mean time-to-recover, averaged over the placed sessions.
type FaultPoint struct {
	// Churn is the fault intensity in events per 100 s per process.
	Churn float64
	// Throughput maps protocol name to mean decoded bytes/second.
	Throughput map[string]float64
	// Recovery maps protocol name to the mean time in seconds from a crash
	// inside the session's forwarder set to the next completed generation —
	// how long re-optimization takes to restore progress. Zero when the
	// churn level produced no crashes.
	Recovery map[string]float64
}

// FaultChurn is the outcome of RunFaultChurn.
type FaultChurn struct {
	Config  FaultsConfig
	Network *topology.Network
	Points  []FaultPoint
}

// faultCell is one (placed session, churn level) emulation waiting to run.
type faultCell struct {
	pair     int // index into the placed pairs
	churnIdx int
	src, dst int
	sg       *core.Subgraph
}

// faultCellResult carries one cell's per-protocol outcome.
type faultCellResult struct {
	throughput map[string]float64
	recovery   map[string]float64
	crashes    int
}

// RunFaultChurn generates one deployment, places Sessions endpoint pairs,
// and emulates every (pair, churn rate) cell under each requested protocol
// with a randomized fault plan of that intensity. Session endpoints never
// crash (a dead source or destination measures the plan, not the protocol);
// everything else in the forwarder set is fair game for crashes, and the
// forwarder links for flap and burst episodes.
//
// Like the other runners it is deterministic for every Workers setting.
func RunFaultChurn(cfg FaultsConfig) (*FaultChurn, error) {
	cfg = cfg.withDefaults()
	nw, err := topology.Generate(topology.Config{
		Nodes:   cfg.Nodes,
		Density: cfg.Density,
		PHY:     topology.DefaultPHY(),
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if cfg.MeanQuality > 0 {
		phy, err := topology.DefaultPHY().CalibrateGain(cfg.MeanQuality)
		if err != nil {
			return nil, err
		}
		if nw, err = nw.WithPHY(phy); err != nil {
			return nil, err
		}
	}

	cells, err := placeFaultCells(nw, cfg)
	if err != nil {
		return nil, err
	}

	results := make([]faultCellResult, len(cells))
	err = parallel.ForEachCtx(ctxOrBackground(cfg.Ctx), len(cells), parallel.Workers(cfg.Workers), func(i int) error {
		res, err := runFaultCell(nw, cells[i], cfg, i)
		if err != nil {
			return fmt.Errorf("experiments: session %d->%d at churn %v: %w",
				cells[i].src, cells[i].dst, cfg.ChurnRates[cells[i].churnIdx], err)
		}
		results[i] = *res
		if cfg.Progress != nil {
			cfg.Progress.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &FaultChurn{Config: cfg, Network: nw}
	for ci, churn := range cfg.ChurnRates {
		pt := FaultPoint{
			Churn:      churn,
			Throughput: make(map[string]float64, len(cfg.Protocols)),
			Recovery:   make(map[string]float64, len(cfg.Protocols)),
		}
		pairs, crashed := 0, 0
		for i, cell := range cells {
			if cell.churnIdx != ci {
				continue
			}
			pairs++
			if results[i].crashes > 0 {
				crashed++
			}
			for _, name := range cfg.Protocols {
				pt.Throughput[name] += results[i].throughput[name]
				pt.Recovery[name] += results[i].recovery[name]
			}
		}
		if pairs == 0 {
			return nil, fmt.Errorf("experiments: no cells at churn %v", churn)
		}
		for _, name := range cfg.Protocols {
			pt.Throughput[name] /= float64(pairs)
			// Recovery averages over the sessions that saw a crash; a
			// crash-free cell contributes nothing to either side.
			if crashed > 0 {
				pt.Recovery[name] /= float64(crashed)
			}
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// placeFaultCells samples the endpoint pairs serially (one RNG stream, so
// placement is a pure function of the seed) and crosses them with the churn
// rates.
func placeFaultCells(nw *topology.Network, cfg FaultsConfig) ([]faultCell, error) {
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}
	rng := rand.New(rand.NewSource(seedmix.Derive(cfg.Seed, streamFaultsPlacement)))
	mcfg := MultiConfig{MinHops: cfg.MinHops, MaxHops: cfg.MaxHops}
	pairs, err := placeEndpoints(nw, adj, rng, cfg.Sessions, mcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: fault placement: %w", err)
	}
	var cells []faultCell
	for pi, ep := range pairs {
		sg, err := core.SelectNodes(nw, ep.Src, ep.Dst)
		if err != nil {
			return nil, fmt.Errorf("experiments: session %d->%d: %w", ep.Src, ep.Dst, err)
		}
		for ci := range cfg.ChurnRates {
			cells = append(cells, faultCell{pair: pi, churnIdx: ci, src: ep.Src, dst: ep.Dst, sg: sg})
		}
	}
	return cells, nil
}

// cellPlan builds the cell's randomized fault plan: crash candidates are the
// forwarder set minus the endpoints, episode candidates its undirected links.
// Churn 0 returns nil — the exact fault-free path, bit-identical to a run
// without the subsystem.
func cellPlan(cell faultCell, cfg FaultsConfig, idx int) (*faults.Plan, error) {
	churn := cfg.ChurnRates[cell.churnIdx]
	if churn <= 0 {
		return nil, nil
	}
	var candidates []int
	for _, nid := range cell.sg.Nodes {
		if nid != cell.src && nid != cell.dst {
			candidates = append(candidates, nid)
		}
	}
	seen := make(map[[2]int]bool, len(cell.sg.Links))
	var links [][2]int
	for _, l := range cell.sg.Links {
		a, b := cell.sg.Nodes[l.From], cell.sg.Nodes[l.To]
		if a > b {
			a, b = b, a
		}
		if !seen[[2]int{a, b}] {
			seen[[2]int{a, b}] = true
			links = append(links, [2]int{a, b})
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	rate := churn / 100
	return faults.RandomPlan(faults.RandomPlanConfig{
		Nodes:        candidates,
		Links:        links,
		Horizon:      cfg.Duration,
		CrashRate:    rate,
		MeanDowntime: cfg.MeanDowntime,
		FlapRate:     rate,
		BurstRate:    rate,
		Seed:         seedmix.Derive(cfg.Seed, streamFaultsPlan, int64(idx)),
	})
}

// runFaultCell emulates one cell under every requested protocol.
func runFaultCell(nw *topology.Network, cell faultCell, cfg FaultsConfig, idx int) (*faultCellResult, error) {
	plan, err := cellPlan(cell, cfg, idx)
	if err != nil {
		return nil, err
	}
	res := &faultCellResult{
		throughput: make(map[string]float64, len(cfg.Protocols)),
		recovery:   make(map[string]float64, len(cfg.Protocols)),
	}
	if plan != nil {
		for _, ev := range plan.Events {
			if ev.Kind == faults.NodeCrash {
				res.crashes++
			}
		}
	}
	for _, name := range cfg.Protocols {
		buf := trace.NewBuffer()
		pcfg := protocol.Config{
			Coding:        cfg.Coding,
			AirPacketSize: cfg.AirPacketSize,
			Capacity:      cfg.Capacity,
			Duration:      cfg.Duration,
			CBRRate:       cfg.CBRRate,
			Seed:          seedmix.Derive(cfg.Seed, streamFaultsTrial, int64(idx)),
			MAC:           cfg.MAC,
			Trace:         buf,
			Faults:        plan,
			EngineWorkers: cfg.EngineWorkers,
		}
		var st *protocol.Stats
		switch name {
		case ProtoOMNC:
			st, err = protocol.Run(nw, cell.src, cell.dst, protocol.OMNC(cfg.RateOptions), pcfg)
		case ProtoMORE:
			st, err = protocol.Run(nw, cell.src, cell.dst, routing.MORE(), pcfg)
		case ProtoOldMORE:
			st, err = protocol.Run(nw, cell.src, cell.dst, routing.OldMORE(), pcfg)
		case ProtoETX:
			st, err = routing.RunETX(nw, cell.src, cell.dst, pcfg)
		default:
			return nil, fmt.Errorf("unknown protocol %q", name)
		}
		switch {
		case errors.Is(err, protocol.ErrDestinationDown):
			// Endpoints are protected from crashes, so this cannot happen
			// from the plan itself; treat it as a dead session if it does.
			res.throughput[name] = 0
			res.recovery[name] = cfg.Duration
			continue
		case err != nil:
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		res.throughput[name] = st.Throughput
		res.recovery[name] = meanRecovery(buf.Events(), cfg.Duration)
	}
	return res, nil
}

// meanRecovery averages, over the crash events in the trace, the delay until
// the next completed generation — the visible cost of losing a forwarder and
// re-optimizing around it. A crash never followed by a decode counts the
// remaining horizon.
func meanRecovery(events []trace.Event, horizon float64) float64 {
	var crashes []float64
	var decodes []float64
	for _, e := range events {
		switch e.Type {
		case trace.EventNodeCrash:
			crashes = append(crashes, e.Time)
		case trace.EventDecode:
			decodes = append(decodes, e.Time)
		}
	}
	if len(crashes) == 0 {
		return 0
	}
	sum := 0.0
	for _, tc := range crashes {
		i := sort.SearchFloat64s(decodes, tc)
		if i < len(decodes) {
			sum += decodes[i] - tc
		} else {
			sum += horizon - tc
		}
	}
	return sum / float64(len(crashes))
}
