// Package cliflags is the shared scaffold of the omnc command-line tools.
// Every CLI used to carry the same boilerplate — profiling flags, a
// hand-rolled error exit, its own copy of the -scheme/-redundancy and
// -workers/-engine-workers blocks — five times over. This package holds it
// once: an App that owns flag parsing, -version, profiling and
// interrupt-aware context plumbing, plus composable flag groups that build
// the corresponding fields of a jobs.Spec.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"omnc/internal/buildinfo"
	"omnc/internal/jobs"
	"omnc/internal/metrics"
	"omnc/internal/profiling"
)

// App is one CLI's shared scaffold. Construct with New before defining
// command-specific flags, then hand main's body to Main.
type App struct {
	// Name prefixes error output ("omnc-sim: ...").
	Name string

	version *bool
	prof    *profiling.Flags
}

// New registers the scaffold's flags (-version plus the profiling block) on
// fs and returns the App. Pass flag.CommandLine from a real main.
func New(name string, fs *flag.FlagSet) *App {
	return &App{
		Name:    name,
		version: fs.Bool("version", false, "print build information and exit"),
		prof:    profiling.RegisterFlags(fs),
	}
}

// Main parses the command line and executes run with the full scaffold:
// -version short-circuits to build info; profiling starts and stops around
// the run; SIGINT/SIGTERM cancel run's context so every tool drains the same
// way. It exits the process with the run's status.
func (a *App) Main(run func(ctx context.Context) error) {
	flag.Parse()
	os.Exit(a.RunParsed(run))
}

// RunParsed is Main after flag parsing — separated so tests can drive the
// scaffold without exiting the process.
func (a *App) RunParsed(run func(ctx context.Context) error) int {
	if *a.version {
		fmt.Println(buildinfo.Collect())
		return 0
	}
	stopProf, err := a.prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", a.Name, err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err = run(ctx)
	stop()
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", a.Name, err)
		return 1
	}
	return 0
}

// CodingFlags is the -scheme/-redundancy/-field block every tool shares.
type CodingFlags struct {
	Scheme     string
	Redundancy float64
	Field      string
}

// RegisterCoding adds the coding-scheme flag block to fs. The scheme and
// redundancy usage strings vary slightly per tool, so the caller supplies
// them; -field reads the same everywhere.
func RegisterCoding(fs *flag.FlagSet, schemeUsage, redundancyUsage string) *CodingFlags {
	c := &CodingFlags{}
	fs.StringVar(&c.Scheme, "scheme", "rlnc", schemeUsage)
	fs.Float64Var(&c.Redundancy, "redundancy", 0, redundancyUsage)
	fs.StringVar(&c.Field, "field", "8", "coefficient field: 8 (GF(2^8), the paper's) or 16 (GF(2^16))")
	return c
}

// Apply writes the block into the Spec, normalizing the default scheme and
// field names to the Spec's zero values so flag-built and hand-written specs
// hash alike.
func (c *CodingFlags) Apply(s *jobs.Spec) {
	if c.Scheme != "" && c.Scheme != "rlnc" {
		s.Scheme = c.Scheme
	} else {
		s.Scheme = ""
	}
	s.Redundancy = c.Redundancy
	if c.Field != "" && c.Field != "8" {
		s.Field = c.Field
	} else {
		s.Field = ""
	}
}

// PoolFlags is the -workers/-engine-workers block.
type PoolFlags struct {
	Workers       int
	EngineWorkers int
}

// RegisterPool adds the worker-pool flag block to fs. engine controls
// whether the tool exposes -engine-workers (omnc-drift's loopback sessions
// have no event engine to parallelize).
func RegisterPool(fs *flag.FlagSet, engine bool) *PoolFlags {
	p := &PoolFlags{}
	fs.IntVar(&p.Workers, "workers", 0, "concurrent session emulations (0 = all cores, 1 = serial); results are identical either way")
	if engine {
		fs.IntVar(&p.EngineWorkers, "engine-workers", 0, "parallel event-engine workers per session (0 = serial engine); results are identical either way")
	}
	return p
}

// Apply writes the block into the Spec.
func (p *PoolFlags) Apply(s *jobs.Spec) {
	s.Workers = p.Workers
	s.EngineWorkers = p.EngineWorkers
}

// StartProgressTicker reports sweep progress to stderr every five seconds
// until the returned stop func is called. A nil Progress returns a no-op.
func StartProgressTicker(name string, p *metrics.Progress) func() {
	if p == nil {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(5 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				fmt.Fprintf(os.Stderr, "%s: %s done\n", name, p)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}
