// Package sessionbench pins the session-benchmark scenario shared by the
// BenchmarkSession* benchmarks and cmd/omnc-bench, so the trajectory the
// repo records in BENCH_<n>.json measures exactly the same workload as
//
//	go test -bench='^BenchmarkSession' -benchmem
//
// Any change here shifts both at once; the recorded baselines in
// cmd/omnc-bench stay comparable only as long as this file does not change.
package sessionbench

import (
	"omnc"
	"omnc/internal/coding"
	"omnc/internal/gf256"
	"omnc/internal/protocol"
	"omnc/internal/topology"
)

// Scenario is one benchmarked session: a protocol with its fixed seed on
// the strip network.
type Scenario struct {
	// Name is the stable benchmark identifier ("SessionOMNC", ...) used in
	// BENCH_<n>.json and as the Benchmark* suffix.
	Name string
	// Seed feeds the session RNG; each protocol keeps its own so the
	// recorded numbers are individually reproducible.
	Seed  int64
	Proto omnc.Protocol
}

// Scenarios lists the benchmarked protocols in recorded order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "SessionOMNC", Seed: 41, Proto: omnc.OMNC(omnc.RateOptions{})},
		{Name: "SessionMORE", Seed: 42, Proto: omnc.MORE()},
		{Name: "SessionETX", Seed: 43, Proto: omnc.ETX()},
	}
}

// MultiScenario is one benchmarked multi-unicast workload: two sessions of
// one protocol contending on the shared engine over the strip network.
type MultiScenario struct {
	// Name is the stable benchmark identifier ("MultiSessionOMNC", ...)
	// used in BENCH_<n>.json and as the Benchmark* suffix.
	Name string
	// Seed feeds the shared engine and both sessions' derived RNG streams.
	Seed  int64
	Proto omnc.Protocol
	// Sessions are the contending endpoint pairs.
	Sessions []omnc.Endpoints
}

// MultiScenarios lists the benchmarked multi-session workloads in recorded
// order. Two sessions cross the strip in opposite rows, so they share relay
// neighbourhoods and genuinely contend.
func MultiScenarios() []MultiScenario {
	sessions := []omnc.Endpoints{{Src: 0, Dst: 10}, {Src: 1, Dst: 11}}
	return []MultiScenario{
		{Name: "MultiSessionOMNC", Seed: 51, Proto: omnc.OMNC(omnc.RateOptions{}), Sessions: sessions},
		{Name: "MultiSessionETX", Seed: 53, Proto: omnc.ETX(), Sessions: sessions},
	}
}

// Run executes the multi-session workload on nw.
func (s MultiScenario) Run(nw *topology.Network) (*protocol.MultiStats, error) {
	return omnc.RunMulti(nw, s.Sessions, s.Proto, Config(s.Seed))
}

// Network returns the fixed session-benchmark topology: a 12-node strip
// with the paper's lossy PHY, wide enough that OMNC selects a multi-relay
// subgraph but small enough that one session run stays cheap. Src and dst
// sit four strip segments apart.
func Network() (nw *topology.Network, src, dst int, err error) {
	positions := make([]topology.Point, 0, 12)
	for i := 0; i < 6; i++ {
		positions = append(positions,
			topology.Point{X: float64(i) * 55, Y: 0},
			topology.Point{X: float64(i)*55 + 27, Y: 45},
		)
	}
	nw, err = topology.FromPositions(positions, topology.DefaultPHY())
	return nw, 0, 10, err
}

// Config bounds the session by decoded generations, not wall-clock, so
// every benchmark iteration does identical coding work.
func Config(seed int64) protocol.Config {
	return protocol.Config{
		Coding:         coding.Params{GenerationSize: 16, BlockSize: 256, Strategy: gf256.StrategyAccel},
		AirPacketSize:  16 + 1024,
		Capacity:       2e4,
		Duration:       600,
		MaxGenerations: 4,
		Seed:           seed,
	}
}

// Run executes one session of the scenario on nw.
func (s Scenario) Run(nw *topology.Network, src, dst int) (*protocol.Stats, error) {
	return omnc.Run(nw, src, dst, s.Proto, Config(s.Seed))
}
