// Package sessionbench pins the session-benchmark scenario shared by the
// BenchmarkSession* benchmarks and cmd/omnc-bench, so the trajectory the
// repo records in BENCH_<n>.json measures exactly the same workload as
//
//	go test -bench='^BenchmarkSession' -benchmem
//
// Any change here shifts both at once; the recorded baselines in
// cmd/omnc-bench stay comparable only as long as this file does not change.
package sessionbench

import (
	"omnc"
	"omnc/internal/coding"
	"omnc/internal/gf256"
	"omnc/internal/protocol"
	"omnc/internal/topology"
)

// Scenario is one benchmarked session: a protocol with its fixed seed on
// the strip network.
type Scenario struct {
	// Name is the stable benchmark identifier ("SessionOMNC", ...) used in
	// BENCH_<n>.json and as the Benchmark* suffix.
	Name string
	// Seed feeds the session RNG; each protocol keeps its own so the
	// recorded numbers are individually reproducible.
	Seed  int64
	Proto omnc.Protocol
}

// Scenarios lists the benchmarked protocols in recorded order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "SessionOMNC", Seed: 41, Proto: omnc.OMNC(omnc.RateOptions{})},
		{Name: "SessionMORE", Seed: 42, Proto: omnc.MORE()},
		{Name: "SessionETX", Seed: 43, Proto: omnc.ETX()},
	}
}

// SchemeScenario is one benchmarked coding-scheme session: the OMNC protocol
// on the strip network under a non-default coding strategy. The entries
// prove the strategy layer rides the pooled arena — their allocs/op must
// stay close to the default RLNC session's even though the Reed-Solomon
// encoder and the verbatim ForwardBuffer replace the random encoder and the
// Recoder on the hot path.
type SchemeScenario struct {
	// Name is the stable benchmark identifier ("SessionScheme/rs", ...)
	// used in BENCH_<n>.json and as the Benchmark* suffix.
	Name       string
	Scheme     coding.Scheme
	Redundancy float64
}

// schemeSeed keeps every SchemeScenario on the same placement and loss
// process, so the entries differ only by strategy.
const schemeSeed = 71

// SchemeScenarios lists the benchmarked coding schemes in recorded order;
// the rlnc entry is the in-report reference the others gate against.
func SchemeScenarios() []SchemeScenario {
	return []SchemeScenario{
		{Name: "SessionScheme/rlnc", Scheme: coding.SchemeRLNC},
		{Name: "SessionScheme/rlnc-e2e", Scheme: coding.SchemeRLNCE2E},
		{Name: "SessionScheme/rs", Scheme: coding.SchemeRS},
	}
}

// SchemeConfig is Config under an explicit coding scheme and redundancy.
func SchemeConfig(scheme coding.Scheme, redundancy float64) protocol.Config {
	cfg := Config(schemeSeed)
	cfg.Scheme = scheme
	cfg.Redundancy = redundancy
	return cfg
}

// Run executes one scheme session on nw.
func (s SchemeScenario) Run(nw *topology.Network, src, dst int) (*protocol.Stats, error) {
	return omnc.Run(nw, src, dst, omnc.OMNC(omnc.RateOptions{}), SchemeConfig(s.Scheme, s.Redundancy))
}

// FieldScenario is one benchmarked coefficient-field session: the OMNC
// protocol on the strip network coding over a non-default field. The entry
// proves the field strategy layer rides the pooled arena and the solver
// workspaces — a wider field doubles coefficient traffic but must not add
// per-packet allocations.
type FieldScenario struct {
	// Name is the stable benchmark identifier ("SessionField/16") used in
	// BENCH_<n>.json and as the Benchmark* suffix.
	Name  string
	Field coding.Field
}

// fieldSeed keeps every FieldScenario on the same placement and loss
// process, so the entries differ only by coefficient field.
const fieldSeed = 81

// FieldScenarios lists the benchmarked non-default fields in recorded order.
func FieldScenarios() []FieldScenario {
	return []FieldScenario{
		{Name: "SessionField/16", Field: coding.Field16},
	}
}

// FieldConfig is Config under an explicit coefficient field; the air frame
// grows with the coefficient vector so air times stay faithful.
func FieldConfig(f coding.Field) protocol.Config {
	cfg := Config(fieldSeed)
	cfg.Coding.Field = f
	cfg.AirPacketSize = cfg.Coding.CoeffBytes() + 1024
	return cfg
}

// Run executes one field session on nw.
func (s FieldScenario) Run(nw *topology.Network, src, dst int) (*protocol.Stats, error) {
	return omnc.Run(nw, src, dst, omnc.OMNC(omnc.RateOptions{}), FieldConfig(s.Field))
}

// MultiScenario is one benchmarked multi-unicast workload: two sessions of
// one protocol contending on the shared engine over the strip network.
type MultiScenario struct {
	// Name is the stable benchmark identifier ("MultiSessionOMNC", ...)
	// used in BENCH_<n>.json and as the Benchmark* suffix.
	Name string
	// Seed feeds the shared engine and both sessions' derived RNG streams.
	Seed  int64
	Proto omnc.Protocol
	// Sessions are the contending endpoint pairs.
	Sessions []omnc.Endpoints
}

// MultiScenarios lists the benchmarked multi-session workloads in recorded
// order. Two sessions cross the strip in opposite rows, so they share relay
// neighbourhoods and genuinely contend.
func MultiScenarios() []MultiScenario {
	sessions := []omnc.Endpoints{{Src: 0, Dst: 10}, {Src: 1, Dst: 11}}
	return []MultiScenario{
		{Name: "MultiSessionOMNC", Seed: 51, Proto: omnc.OMNC(omnc.RateOptions{}), Sessions: sessions},
		{Name: "MultiSessionETX", Seed: 53, Proto: omnc.ETX(), Sessions: sessions},
	}
}

// Run executes the multi-session workload on nw.
func (s MultiScenario) Run(nw *topology.Network) (*protocol.MultiStats, error) {
	return omnc.RunMulti(nw, s.Sessions, s.Proto, Config(s.Seed))
}

// ScaledMultiScenario is the parallel-engine scaling workload behind
// BenchmarkMultiSessionScaled* and the BENCH_4.json speedup record: many
// sessions contending on one shared engine with full-size 1 KB blocks, so
// per-session decode work (which the parallel engine shards) dominates the
// serial MAC bookkeeping. EngineWorkers picks the engine: 0 the serial
// reference, N >= 1 the conservative parallel engine. The emulated results
// are bit-identical for every EngineWorkers value — only wall-clock varies.
type ScaledMultiScenario struct {
	// Name is the stable benchmark identifier used in BENCH_4.json and as
	// the Benchmark* suffix.
	Name string
	// EngineWorkers is protocol.Config EngineWorkers for every session.
	EngineWorkers int
}

// scaledSeed keeps every ScaledMultiScenario on the same emulation, so the
// serial and parallel entries time identical work.
const scaledSeed = 61

// ScaledMultiScenarios lists the BENCH_4 scaling ladder in recorded order:
// the serial baseline, then the parallel engine at 2, 4 and 8 workers.
func ScaledMultiScenarios() []ScaledMultiScenario {
	return []ScaledMultiScenario{
		{Name: "MultiSessionScaled/serial", EngineWorkers: 0},
		{Name: "MultiSessionScaled/workers=2", EngineWorkers: 2},
		{Name: "MultiSessionScaled/workers=4", EngineWorkers: 4},
		{Name: "MultiSessionScaled/workers=8", EngineWorkers: 8},
	}
}

// ScaledNetwork returns the scaling-benchmark topology: sixteen
// radio-isolated copies of the Network() strip (stacked 200 m apart, beyond
// the 100 m PHY range), one session crossing each copy. Isolation keeps the
// per-session oracle rate allocations alike, so sessions transmit near
// lockstep and their same-timestamp deliveries form multi-shard rounds —
// the workload shape the parallel engine accelerates.
func ScaledNetwork() (nw *topology.Network, sessions []omnc.Endpoints, err error) {
	const strips = 16
	positions := make([]topology.Point, 0, strips*12)
	for s := 0; s < strips; s++ {
		yBase := float64(s) * 200
		for i := 0; i < 6; i++ {
			positions = append(positions,
				topology.Point{X: float64(i) * 55, Y: yBase},
				topology.Point{X: float64(i)*55 + 27, Y: yBase + 45},
			)
		}
	}
	nw, err = topology.FromPositions(positions, topology.DefaultPHY())
	if err != nil {
		return nil, nil, err
	}
	for s := 0; s < strips; s++ {
		sessions = append(sessions, omnc.Endpoints{Src: s * 12, Dst: s*12 + 10})
	}
	return nw, sessions, nil
}

// ScaledConfig is the scaling-benchmark session configuration: the paper's
// full 1 KB blocks (decode arithmetic at real cost, unlike the rank-fidelity
// shortcuts elsewhere) with the generation count bounded so every run does
// identical work.
func ScaledConfig(engineWorkers int) protocol.Config {
	return protocol.Config{
		Coding:         coding.Params{GenerationSize: 32, BlockSize: 1024, Strategy: gf256.StrategyAccel},
		AirPacketSize:  32 + 1024,
		Capacity:       8e4,
		Duration:       600,
		MaxGenerations: 2,
		Seed:           scaledSeed,
		EngineWorkers:  engineWorkers,
		// Align frame completions on a 10 ms grid so the sessions'
		// deliveries share calendar buckets — the parallel engine's unit of
		// concurrency. Identical for every EngineWorkers value.
		TimeQuantum: 1e-2,
	}
}

// Run executes the scaled multi-session workload on nw with the scenario's
// engine selection. MORE keeps the measured work purely emulation + coding
// (no rate-control preamble diluting the parallel section).
func (s ScaledMultiScenario) Run(nw *topology.Network, sessions []omnc.Endpoints) (*protocol.MultiStats, error) {
	return omnc.RunMulti(nw, sessions, omnc.MORE(), ScaledConfig(s.EngineWorkers))
}

// Network returns the fixed session-benchmark topology: a 12-node strip
// with the paper's lossy PHY, wide enough that OMNC selects a multi-relay
// subgraph but small enough that one session run stays cheap. Src and dst
// sit four strip segments apart.
func Network() (nw *topology.Network, src, dst int, err error) {
	positions := make([]topology.Point, 0, 12)
	for i := 0; i < 6; i++ {
		positions = append(positions,
			topology.Point{X: float64(i) * 55, Y: 0},
			topology.Point{X: float64(i)*55 + 27, Y: 45},
		)
	}
	nw, err = topology.FromPositions(positions, topology.DefaultPHY())
	return nw, 0, 10, err
}

// Config bounds the session by decoded generations, not wall-clock, so
// every benchmark iteration does identical coding work.
func Config(seed int64) protocol.Config {
	return protocol.Config{
		Coding:         coding.Params{GenerationSize: 16, BlockSize: 256, Strategy: gf256.StrategyAccel},
		AirPacketSize:  16 + 1024,
		Capacity:       2e4,
		Duration:       600,
		MaxGenerations: 4,
		Seed:           seed,
	}
}

// Run executes one session of the scenario on nw.
func (s Scenario) Run(nw *topology.Network, src, dst int) (*protocol.Stats, error) {
	return omnc.Run(nw, src, dst, s.Proto, Config(s.Seed))
}
