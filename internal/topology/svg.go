package topology

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SVGOptions controls RenderSVG.
type SVGOptions struct {
	// Width is the output width in pixels (height follows the deployment's
	// aspect ratio). Default 800.
	Width int
	// Highlight marks nodes to draw emphasized (e.g. a session's selected
	// forwarders); nil draws everything uniformly.
	Highlight []int
	// Src and Dst mark session endpoints (-1 = none).
	Src, Dst int
	// ShowLinks draws every link, colored by reception probability.
	ShowLinks bool
}

// RenderSVG writes the deployment as a standalone SVG document: nodes at
// their positions, links colored from red (lossy) to green (clean). It is
// the visual companion to cmd/omnc-topo for inspecting deployments and
// selected forwarder subgraphs.
func (nw *Network) RenderSVG(w io.Writer, opts SVGOptions) error {
	if opts.Width <= 0 {
		opts.Width = 800
	}
	minX, minY, maxX, maxY := nw.bounds()
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	const margin = 20.0
	scale := (float64(opts.Width) - 2*margin) / spanX
	height := int(spanY*scale + 2*margin)
	px := func(p Point) (float64, float64) {
		return margin + (p.X-minX)*scale, margin + (p.Y-minY)*scale
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, height, opts.Width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	if opts.ShowLinks {
		for i := 0; i < nw.Size(); i++ {
			for _, j := range nw.Neighbors(i) {
				if j < i {
					continue // draw each undirected link once
				}
				x1, y1 := px(nw.Position(i))
				x2, y2 := px(nw.Position(j))
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" opacity="0.6"/>`+"\n",
					x1, y1, x2, y2, qualityColor(nw.Prob(i, j)))
			}
		}
	}

	highlighted := make(map[int]bool, len(opts.Highlight))
	for _, v := range opts.Highlight {
		highlighted[v] = true
	}
	// Deterministic node order for stable output.
	order := make([]int, nw.Size())
	for i := range order {
		order[i] = i
	}
	sort.Ints(order)
	for _, i := range order {
		x, y := px(nw.Position(i))
		r, fill := 3.0, "#888"
		switch {
		case i == opts.Src:
			r, fill = 7, "#1f77b4"
		case i == opts.Dst:
			r, fill = 7, "#d62728"
		case highlighted[i]:
			r, fill = 5, "#2ca02c"
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"><title>node %d</title></circle>`+"\n",
			x, y, r, fill, i)
	}
	fmt.Fprint(&b, "</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// bounds returns the deployment's bounding box.
func (nw *Network) bounds() (minX, minY, maxX, maxY float64) {
	first := nw.Position(0)
	minX, minY, maxX, maxY = first.X, first.Y, first.X, first.Y
	for i := 1; i < nw.Size(); i++ {
		p := nw.Position(i)
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return minX, minY, maxX, maxY
}

// qualityColor maps a reception probability to a red-to-green ramp.
func qualityColor(p float64) string {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	r := int(220 * (1 - p))
	g := int(180 * p)
	return fmt.Sprintf("#%02x%02x40", r, g)
}
