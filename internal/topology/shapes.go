package topology

import "fmt"

// Line deploys n nodes on a straight line with the given spacing in meters
// — the classic multi-hop chain used in tests and examples.
func Line(n int, spacing float64, phy PHY) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: line needs at least 2 nodes, got %d", n)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("topology: non-positive spacing %v", spacing)
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: float64(i) * spacing}
	}
	return FromPositions(pts, phy)
}

// Grid deploys rows x cols nodes on a regular lattice with the given
// spacing in meters. Node (r, c) has index r*cols + c.
func Grid(rows, cols int, spacing float64, phy PHY) (*Network, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: grid %dx%d too small", rows, cols)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("topology: non-positive spacing %v", spacing)
	}
	pts := make([]Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return FromPositions(pts, phy)
}
