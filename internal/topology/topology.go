// Package topology generates the random lossy wireless networks the paper
// evaluates on (Sec. 5): nodes deployed uniformly at random with a target
// density, and a PHY model that maps link distance to one-way reception
// probability.
//
// The paper's Drift testbed uses an empirical distance-to-probability map
// from real-world urban-mesh traces (Camp et al.). We substitute a smooth
// parametric curve with the same qualitative shape — a near-perfect plateau
// close to the transmitter, a wide band of intermediate qualities, and
// reception probability 0.2 at the transmission range — calibrated so that
// a density-6 deployment has a mean link quality of about 0.58, matching
// the paper's lossy topology, with a transmit-power knob that raises the
// mean to about 0.91 for the high-quality experiment. See DESIGN.md.
package topology

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// RangeProbability is the reception probability that defines transmission
// (and interference) range: "we define transmission range as the distance
// where packet reception probability is below a small threshold" (Sec. 3.2).
const RangeProbability = 0.2

// Point is a node position in meters.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between two points.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// PHY maps link distance to one-way reception probability at a given
// transmit power. The curve is a logistic in distance,
//
//	p(d) = 1 / (1 + exp((d/gain - mid) / width))
//
// which plateaus near 1 for short links and decays through a wide
// intermediate-quality band, the shape measured by the urban-mesh traces the
// paper's testbed replays.
type PHY struct {
	// Range is the transmission/interference range in meters: the distance
	// at which reception probability equals RangeProbability at unit power.
	Range float64
	// Width controls how wide the intermediate-quality band is, as a
	// fraction of Range.
	Width float64
	// Gain is the transmit-power gain; 1 reproduces the lossy topology,
	// larger values shorten effective distances and raise link qualities
	// ("the transmission power of each node is increased", Sec. 5).
	Gain float64
}

// DefaultPHY returns the PHY used throughout the evaluation: 100 m range and
// a band width calibrated so the mean neighbour link quality is ~0.58.
func DefaultPHY() PHY {
	return PHY{Range: 100, Width: 0.18, Gain: 1}
}

// ErrInvalidPHY is the sentinel every PHY parameter failure matches:
// errors.Is(err, ErrInvalidPHY) detects a rejected model regardless of which
// parameter was at fault.
var ErrInvalidPHY = errors.New("topology: invalid PHY")

// Validate reports whether the PHY defines a usable reception-probability
// model: positive transmission range and band width, non-negative gain (zero
// gain means unit power). Failures wrap ErrInvalidPHY.
func (p PHY) Validate() error {
	if !(p.Range > 0) {
		return fmt.Errorf("%w: non-positive range %v", ErrInvalidPHY, p.Range)
	}
	if !(p.Width > 0) {
		return fmt.Errorf("%w: non-positive width %v", ErrInvalidPHY, p.Width)
	}
	if p.Gain < 0 || math.IsNaN(p.Gain) {
		return fmt.Errorf("%w: negative gain %v", ErrInvalidPHY, p.Gain)
	}
	return nil
}

// mid returns the logistic midpoint implied by the p(Range) = 0.2 boundary
// condition: mid = Range - width*ln(4).
func (p PHY) mid() float64 {
	return p.Range - p.Width*p.Range*math.Log(1/RangeProbability-1)
}

// Prob returns the reception probability at distance d.
func (p PHY) Prob(d float64) float64 {
	gain := p.Gain
	if gain <= 0 {
		gain = 1
	}
	w := p.Width * p.Range
	x := (d/gain - p.mid()) / w
	pr := 1 / (1 + math.Exp(x))
	if pr < 0 {
		return 0
	}
	if pr > 1 {
		return 1
	}
	return pr
}

// MeanNeighborQuality returns the analytic mean link quality over neighbours
// uniformly distributed in the range disk (distance density 2d/R^2),
// evaluated numerically. Used for power calibration.
func (p PHY) MeanNeighborQuality() float64 {
	const steps = 2000
	sum := 0.0
	for i := 0; i < steps; i++ {
		d := (float64(i) + 0.5) / steps * p.Range
		sum += p.Prob(d) * 2 * d / (p.Range * p.Range)
	}
	return sum * p.Range / steps
}

// CalibrateGain returns a PHY whose Gain is adjusted (by bisection) so that
// MeanNeighborQuality is targetMean. Targets outside (RangeProbability, 1)
// are an error.
func (p PHY) CalibrateGain(targetMean float64) (PHY, error) {
	if targetMean <= RangeProbability || targetMean >= 1 {
		return p, fmt.Errorf("topology: target mean quality %.3f out of range (%.2f, 1)", targetMean, RangeProbability)
	}
	lo, hi := 0.05, 100.0
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		q := p
		q.Gain = mid
		if q.MeanNeighborQuality() < targetMean {
			lo = mid
		} else {
			hi = mid
		}
	}
	out := p
	out.Gain = math.Sqrt(lo * hi)
	return out, nil
}

// Config describes a random deployment.
type Config struct {
	// Nodes is the deployment size. The paper uses 300.
	Nodes int
	// Density is the expected number of nodes (including the node itself)
	// inside a range disk. The paper uses 6, i.e. 5 expected neighbours.
	Density float64
	// PHY is the reception-probability model. Zero value means DefaultPHY.
	PHY PHY
	// Seed makes the deployment reproducible.
	Seed int64
}

// DefaultConfig is the paper's evaluation topology: 300 nodes at density 6.
func DefaultConfig(seed int64) Config {
	return Config{Nodes: 300, Density: 6, PHY: DefaultPHY(), Seed: seed}
}

// Network is a generated deployment: node positions plus the derived lossy
// link structure. Links exist between nodes within range; each directed link
// (i,j) has one-way reception probability Prob(i,j). Interference range
// equals transmission range (Sec. 3.2).
type Network struct {
	phy       PHY
	positions []Point
	neighbors [][]int     // adjacency: nodes within range, sorted
	prob      [][]float64 // prob[i][j] > 0 iff j in neighbors[i]
}

// Generate deploys the network described by cfg.
func Generate(cfg Config) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Density <= 1 {
		return nil, fmt.Errorf("topology: density %.2f must exceed 1", cfg.Density)
	}
	phy := cfg.PHY
	if phy == (PHY{}) {
		phy = DefaultPHY()
	} else if err := phy.Validate(); err != nil {
		return nil, err
	}
	// Side length such that the expected disk occupancy is Density:
	// N * pi R^2 / L^2 = Density.
	side := phy.Range * math.Sqrt(float64(cfg.Nodes)*math.Pi/cfg.Density)
	rng := rand.New(rand.NewSource(cfg.Seed))
	positions := make([]Point, cfg.Nodes)
	for i := range positions {
		positions[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return FromPositions(positions, phy)
}

// FromPositions builds a network from explicit node positions, deriving
// links from the PHY model. Useful for hand-crafted topologies in tests and
// examples.
func FromPositions(positions []Point, phy PHY) (*Network, error) {
	if len(positions) < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", len(positions))
	}
	if err := phy.Validate(); err != nil {
		return nil, err
	}
	n := len(positions)
	nw := &Network{
		phy:       phy,
		positions: append([]Point(nil), positions...),
		neighbors: make([][]int, n),
		prob:      make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		nw.prob[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := positions[i].Distance(positions[j])
			if d > phy.Range {
				continue
			}
			p := phy.Prob(d)
			if p <= 0 {
				continue
			}
			nw.prob[i][j] = p
			nw.prob[j][i] = p
			nw.neighbors[i] = append(nw.neighbors[i], j)
			nw.neighbors[j] = append(nw.neighbors[j], i)
		}
	}
	return nw, nil
}

// NewExplicit builds a network directly from a link-probability matrix,
// bypassing geometry entirely. prob must be square; prob[i][j] > 0 declares
// a directed link. Positions default to a unit line so that String and
// plotting helpers still work. This is the entry point for the paper's
// hand-drawn sample topologies (e.g. the one behind Fig. 1).
func NewExplicit(prob [][]float64) (*Network, error) {
	n := len(prob)
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", n)
	}
	nw := &Network{
		phy:       DefaultPHY(),
		positions: make([]Point, n),
		neighbors: make([][]int, n),
		prob:      make([][]float64, n),
	}
	for i := range prob {
		if len(prob[i]) != n {
			return nil, fmt.Errorf("topology: row %d has %d entries, want %d", i, len(prob[i]), n)
		}
		nw.positions[i] = Point{X: float64(i)}
		nw.prob[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := prob[i][j]
			if i == j || p <= 0 {
				continue
			}
			if p > 1 {
				return nil, fmt.Errorf("topology: prob[%d][%d] = %.3f exceeds 1", i, j, p)
			}
			nw.prob[i][j] = p
			nw.neighbors[i] = append(nw.neighbors[i], j)
		}
	}
	return nw, nil
}

// Size returns the number of nodes.
func (nw *Network) Size() int { return len(nw.positions) }

// Position returns the coordinates of node i.
func (nw *Network) Position(i int) Point { return nw.positions[i] }

// PHYModel returns the PHY the network was built with.
func (nw *Network) PHYModel() PHY { return nw.phy }

// Neighbors returns the nodes within range of i (callers must not modify
// the returned slice).
func (nw *Network) Neighbors(i int) []int { return nw.neighbors[i] }

// Prob returns the one-way reception probability of link (i,j); 0 if j is
// out of range of i.
func (nw *Network) Prob(i, j int) float64 { return nw.prob[i][j] }

// InRange reports whether i and j can hear (and hence interfere with) each
// other.
func (nw *Network) InRange(i, j int) bool { return i != j && nw.prob[i][j] > 0 }

// MeanLinkQuality returns the average reception probability across all
// directed links. The paper's lossy topology averages 0.58; the high-power
// variant 0.91.
func (nw *Network) MeanLinkQuality() float64 {
	sum, count := 0.0, 0
	for i := range nw.prob {
		for _, j := range nw.neighbors[i] {
			sum += nw.prob[i][j]
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// MeanDegree returns the average neighbour count (the paper's "density"
// minus one).
func (nw *Network) MeanDegree() float64 {
	total := 0
	for _, ns := range nw.neighbors {
		total += len(ns)
	}
	return float64(total) / float64(len(nw.neighbors))
}

// WithPHY returns a copy of the network re-evaluated under a different PHY
// (same positions, same neighbour geometry determined by phy.Range). Used to
// raise transmit power on an existing deployment.
func (nw *Network) WithPHY(phy PHY) (*Network, error) {
	return FromPositions(nw.positions, phy)
}
