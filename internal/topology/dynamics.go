package topology

import (
	"fmt"
	"math/rand"
)

// PerturbQuality returns a copy of the network whose link reception
// probabilities are multiplied by independent factors drawn uniformly from
// [1-jitter, 1+jitter] (clamped to (0, 1]), modelling the link-quality
// variation that Sec. 4 of the paper discusses: "in cases where link
// qualities change significantly, the node selection and rate allocation
// have to be re-initiated". Link symmetry and the neighbour geometry are
// preserved — quality drifts, the deployment does not move.
func (nw *Network) PerturbQuality(seed int64, jitter float64) (*Network, error) {
	if jitter < 0 || jitter >= 1 {
		return nil, fmt.Errorf("topology: jitter %v outside [0, 1)", jitter)
	}
	rng := rand.New(rand.NewSource(seed))
	out := nw.clone()
	n := nw.Size()
	for i := 0; i < n; i++ {
		for _, j := range nw.neighbors[i] {
			if j < i {
				continue // perturb each undirected pair once
			}
			factor := 1 + (rng.Float64()*2-1)*jitter
			p := nw.prob[i][j] * factor
			if p <= 0.01 {
				p = 0.01
			}
			if p > 1 {
				p = 1
			}
			out.prob[i][j] = p
			out.prob[j][i] = p
		}
	}
	return out, nil
}

// WithoutNodes returns a copy of the network in which the given nodes have
// failed: all their links are removed (they remain as isolated positions so
// node indices stay stable). Used for failure injection.
func (nw *Network) WithoutNodes(failed ...int) (*Network, error) {
	dead := make(map[int]bool, len(failed))
	for _, v := range failed {
		if v < 0 || v >= nw.Size() {
			return nil, fmt.Errorf("topology: node %d out of range [0,%d)", v, nw.Size())
		}
		dead[v] = true
	}
	out := &Network{
		phy:       nw.phy,
		positions: append([]Point(nil), nw.positions...),
		neighbors: make([][]int, nw.Size()),
		prob:      make([][]float64, nw.Size()),
	}
	for i := 0; i < nw.Size(); i++ {
		out.prob[i] = make([]float64, nw.Size())
	}
	for i := 0; i < nw.Size(); i++ {
		if dead[i] {
			continue
		}
		for _, j := range nw.neighbors[i] {
			if dead[j] {
				continue
			}
			out.neighbors[i] = append(out.neighbors[i], j)
			out.prob[i][j] = nw.prob[i][j]
		}
	}
	return out, nil
}

// WithoutLinks returns a copy of the network in which the given undirected
// links have been severed: both directions are removed from the neighbour
// lists and their reception probabilities zeroed. Pairs naming non-adjacent
// nodes are accepted (the link is already absent). Used by the
// fault-injection layer to compute the effective topology during link-flap
// episodes.
func (nw *Network) WithoutLinks(pairs ...[2]int) (*Network, error) {
	cut := make(map[[2]int]bool, len(pairs))
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if a < 0 || a >= nw.Size() || b < 0 || b >= nw.Size() {
			return nil, fmt.Errorf("topology: link (%d,%d) out of range [0,%d)", a, b, nw.Size())
		}
		if a == b {
			return nil, fmt.Errorf("topology: link endpoints coincide (%d)", a)
		}
		if a > b {
			a, b = b, a
		}
		cut[[2]int{a, b}] = true
	}
	out := &Network{
		phy:       nw.phy,
		positions: append([]Point(nil), nw.positions...),
		neighbors: make([][]int, nw.Size()),
		prob:      make([][]float64, nw.Size()),
	}
	for i := 0; i < nw.Size(); i++ {
		out.prob[i] = make([]float64, nw.Size())
	}
	for i := 0; i < nw.Size(); i++ {
		for _, j := range nw.neighbors[i] {
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			if cut[[2]int{a, b}] {
				continue
			}
			out.neighbors[i] = append(out.neighbors[i], j)
			out.prob[i][j] = nw.prob[i][j]
		}
	}
	return out, nil
}

// clone deep-copies the network.
func (nw *Network) clone() *Network {
	out := &Network{
		phy:       nw.phy,
		positions: append([]Point(nil), nw.positions...),
		neighbors: make([][]int, nw.Size()),
		prob:      make([][]float64, nw.Size()),
	}
	for i := range nw.neighbors {
		out.neighbors[i] = append([]int(nil), nw.neighbors[i]...)
		out.prob[i] = append([]float64(nil), nw.prob[i]...)
	}
	return out
}
