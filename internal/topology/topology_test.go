package topology

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPointDistance(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 3, Y: 4}
	if d := a.Distance(b); d != 5 {
		t.Fatalf("Distance = %v, want 5", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestPHYBoundaryCondition(t *testing.T) {
	phy := DefaultPHY()
	// By construction p(Range) must equal RangeProbability.
	if got := phy.Prob(phy.Range); math.Abs(got-RangeProbability) > 1e-9 {
		t.Fatalf("Prob(Range) = %v, want %v", got, RangeProbability)
	}
}

func TestPHYMonotoneDecreasing(t *testing.T) {
	phy := DefaultPHY()
	prev := 1.1
	for d := 0.0; d <= phy.Range*1.5; d += 1 {
		p := phy.Prob(d)
		if p > prev {
			t.Fatalf("Prob not monotone at d=%v: %v > %v", d, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("Prob(%v) = %v out of [0,1]", d, p)
		}
		prev = p
	}
	if phy.Prob(0) < 0.95 {
		t.Fatalf("Prob(0) = %v, want near-perfect plateau", phy.Prob(0))
	}
}

func TestPHYZeroGainTreatedAsUnit(t *testing.T) {
	phy := DefaultPHY()
	var zero PHY
	zero.Range = phy.Range
	zero.Width = phy.Width
	zero.Gain = 0
	if zero.Prob(50) != phy.Prob(50) {
		t.Fatal("Gain=0 must behave like Gain=1")
	}
}

func TestDefaultPHYMeanIsLossy(t *testing.T) {
	// Sec. 5: "Most links have intermediate qualities (average reception
	// probability is 0.58)". Calibration target: within a few points.
	mean := DefaultPHY().MeanNeighborQuality()
	if mean < 0.53 || mean > 0.63 {
		t.Fatalf("default mean neighbour quality = %.3f, want ~0.58", mean)
	}
}

func TestCalibrateGainHighQuality(t *testing.T) {
	phy, err := DefaultPHY().CalibrateGain(0.91)
	if err != nil {
		t.Fatal(err)
	}
	if got := phy.MeanNeighborQuality(); math.Abs(got-0.91) > 0.01 {
		t.Fatalf("calibrated mean = %.3f, want 0.91", got)
	}
	if phy.Gain <= 1 {
		t.Fatalf("raising quality requires gain > 1, got %v", phy.Gain)
	}
}

func TestCalibrateGainRejectsBadTargets(t *testing.T) {
	if _, err := DefaultPHY().CalibrateGain(0.1); err == nil {
		t.Fatal("target below RangeProbability must fail")
	}
	if _, err := DefaultPHY().CalibrateGain(1.0); err == nil {
		t.Fatal("target of 1 must fail")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Nodes: 1, Density: 6}); err == nil {
		t.Fatal("single node must fail")
	}
	if _, err := Generate(Config{Nodes: 10, Density: 0.5}); err == nil {
		t.Fatal("density <= 1 must fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(DefaultConfig(42))
	for i := 0; i < a.Size(); i++ {
		if a.Position(i) != b.Position(i) {
			t.Fatalf("node %d position differs between identical seeds", i)
		}
	}
	c, _ := Generate(DefaultConfig(43))
	same := true
	for i := 0; i < a.Size(); i++ {
		if a.Position(i) != c.Position(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical deployments")
	}
}

func TestGenerateDensity(t *testing.T) {
	nw, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 300 {
		t.Fatalf("Size = %d", nw.Size())
	}
	// Density 6 means ~5 expected neighbours; border effects push the
	// realized mean a little lower.
	deg := nw.MeanDegree()
	if deg < 3.4 || deg > 6.5 {
		t.Fatalf("mean degree = %.2f, want ~5 (density 6)", deg)
	}
}

func TestGenerateMeanLinkQuality(t *testing.T) {
	nw, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	q := nw.MeanLinkQuality()
	if q < 0.5 || q > 0.68 {
		t.Fatalf("mean link quality = %.3f, want ~0.58 (lossy topology)", q)
	}
}

func TestWithPHYRaisesQuality(t *testing.T) {
	nw, err := Generate(DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	high, err := DefaultPHY().CalibrateGain(0.91)
	if err != nil {
		t.Fatal(err)
	}
	hq, err := nw.WithPHY(high)
	if err != nil {
		t.Fatal(err)
	}
	if hq.MeanLinkQuality() <= nw.MeanLinkQuality() {
		t.Fatal("raised power must raise mean link quality")
	}
	if hq.MeanLinkQuality() < 0.85 {
		t.Fatalf("high-power quality = %.3f, want ~0.91", hq.MeanLinkQuality())
	}
	// Geometry (neighbour sets) must be unchanged: range is a constant.
	for i := 0; i < nw.Size(); i++ {
		a, b := nw.Neighbors(i), hq.Neighbors(i)
		if len(a) != len(b) {
			t.Fatalf("node %d neighbour count changed with power", i)
		}
	}
}

func TestNetworkSymmetryAndRange(t *testing.T) {
	nw, err := Generate(DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.Size(); i++ {
		if nw.InRange(i, i) {
			t.Fatal("node must not be in range of itself")
		}
		for _, j := range nw.Neighbors(i) {
			if nw.Prob(i, j) <= 0 || nw.Prob(i, j) > 1 {
				t.Fatalf("Prob(%d,%d) = %v", i, j, nw.Prob(i, j))
			}
			if nw.Prob(i, j) != nw.Prob(j, i) {
				t.Fatalf("geometric link (%d,%d) must be symmetric", i, j)
			}
			if !nw.InRange(j, i) {
				t.Fatalf("InRange not symmetric for (%d,%d)", i, j)
			}
			if nw.Position(i).Distance(nw.Position(j)) > nw.PHYModel().Range {
				t.Fatalf("neighbour (%d,%d) beyond range", i, j)
			}
		}
	}
}

func TestFromPositionsValidation(t *testing.T) {
	if _, err := FromPositions([]Point{{}}, DefaultPHY()); err == nil {
		t.Fatal("one position must fail")
	}
	if _, err := FromPositions([]Point{{}, {X: 1}}, PHY{Range: 0}); err == nil {
		t.Fatal("zero range must fail")
	}
}

func TestFromPositionsLine(t *testing.T) {
	// Three nodes in a line, spaced 60 m with 100 m range: ends are out of
	// range of each other, middle hears both.
	pts := []Point{{X: 0}, {X: 60}, {X: 120}}
	nw, err := FromPositions(pts, DefaultPHY())
	if err != nil {
		t.Fatal(err)
	}
	if !nw.InRange(0, 1) || !nw.InRange(1, 2) {
		t.Fatal("adjacent nodes must be linked")
	}
	if nw.InRange(0, 2) {
		t.Fatal("distant nodes must not be linked")
	}
	if len(nw.Neighbors(1)) != 2 {
		t.Fatalf("middle node neighbours = %v", nw.Neighbors(1))
	}
}

func TestNewExplicit(t *testing.T) {
	nw, err := NewExplicit([][]float64{
		{0, 0.8, 0},
		{0.5, 0, 0.9},
		{0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Prob(0, 1) != 0.8 || nw.Prob(1, 0) != 0.5 || nw.Prob(1, 2) != 0.9 {
		t.Fatal("explicit probabilities not preserved")
	}
	if nw.Prob(0, 2) != 0 || nw.Prob(2, 1) != 0 {
		t.Fatal("absent links must have probability 0")
	}
	if nw.MeanLinkQuality() == 0 {
		t.Fatal("mean quality of explicit network must be positive")
	}
}

func TestNewExplicitValidation(t *testing.T) {
	if _, err := NewExplicit([][]float64{{0}}); err == nil {
		t.Fatal("1x1 must fail")
	}
	if _, err := NewExplicit([][]float64{{0, 1}, {1}}); err == nil {
		t.Fatal("ragged matrix must fail")
	}
	if _, err := NewExplicit([][]float64{{0, 2}, {1, 0}}); err == nil {
		t.Fatal("probability > 1 must fail")
	}
}

func TestPropertyProbWithinUnitInterval(t *testing.T) {
	phy := DefaultPHY()
	f := func(d float64) bool {
		d = math.Abs(d)
		p := phy.Prob(d)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHigherGainNeverHurts(t *testing.T) {
	base := DefaultPHY()
	boosted := base
	boosted.Gain = 2
	f := func(d float64) bool {
		d = math.Abs(math.Mod(d, 200))
		return boosted.Prob(d) >= base.Prob(d)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLineTopology(t *testing.T) {
	nw, err := Line(5, 70, DefaultPHY())
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 5 {
		t.Fatalf("size = %d", nw.Size())
	}
	// 70 m spacing, 100 m range: adjacent nodes linked, two apart not.
	if !nw.InRange(0, 1) || !nw.InRange(3, 4) {
		t.Fatal("adjacent line nodes must link")
	}
	if nw.InRange(0, 2) {
		t.Fatal("nodes 140 m apart must not link")
	}
	if _, err := Line(1, 70, DefaultPHY()); err == nil {
		t.Fatal("1-node line must fail")
	}
	if _, err := Line(3, 0, DefaultPHY()); err == nil {
		t.Fatal("zero spacing must fail")
	}
}

func TestGridTopology(t *testing.T) {
	nw, err := Grid(3, 4, 80, DefaultPHY())
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 12 {
		t.Fatalf("size = %d", nw.Size())
	}
	// Node (1,1) = index 5: neighbours at 80 m (4-connected), diagonals at
	// ~113 m are out of range.
	if len(nw.Neighbors(5)) != 4 {
		t.Fatalf("interior grid node has %d neighbours, want 4", len(nw.Neighbors(5)))
	}
	// Corner (0,0) has 2.
	if len(nw.Neighbors(0)) != 2 {
		t.Fatalf("corner has %d neighbours, want 2", len(nw.Neighbors(0)))
	}
	if _, err := Grid(1, 1, 80, DefaultPHY()); err == nil {
		t.Fatal("1x1 grid must fail")
	}
	if _, err := Grid(2, 2, -1, DefaultPHY()); err == nil {
		t.Fatal("negative spacing must fail")
	}
}

func TestRenderSVG(t *testing.T) {
	nw, err := Generate(Config{Nodes: 40, Density: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	err = nw.RenderSVG(&buf, SVGOptions{
		Width:     400,
		Highlight: []int{1, 2},
		Src:       0,
		Dst:       5,
		ShowLinks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a well-formed SVG document")
	}
	if strings.Count(svg, "<circle") != 40 {
		t.Fatalf("circles = %d, want 40", strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, "<line") {
		t.Fatal("no links drawn")
	}
	if !strings.Contains(svg, "#1f77b4") || !strings.Contains(svg, "#d62728") {
		t.Fatal("endpoint markers missing")
	}
	// Deterministic output.
	var buf2 strings.Builder
	nw.RenderSVG(&buf2, SVGOptions{Width: 400, Highlight: []int{1, 2}, Src: 0, Dst: 5, ShowLinks: true})
	if buf2.String() != svg {
		t.Fatal("SVG output not deterministic")
	}
}

func TestQualityColorRamp(t *testing.T) {
	if qualityColor(0) == qualityColor(1) {
		t.Fatal("color ramp must distinguish loss extremes")
	}
	if qualityColor(-1) != qualityColor(0) || qualityColor(2) != qualityColor(1) {
		t.Fatal("color ramp must clamp")
	}
}
