// Package profiling wires the standard pprof profilers into the CLIs with a
// shared flag vocabulary: -cpuprofile and -memprofile write profiles the way
// `go test` does, and -pprof-http serves the live net/http/pprof endpoints
// for long experiment sweeps. Everything here is stdlib; a binary that never
// sets the flags pays nothing.
package profiling

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profiling destinations a CLI registered.
type Flags struct {
	// CPUProfile is a path to write a CPU profile to (empty = off).
	CPUProfile string
	// MemProfile is a path to write a heap profile to at stop (empty = off).
	MemProfile string
	// HTTPAddr is a listen address for the net/http/pprof endpoints
	// (empty = off).
	HTTPAddr string
}

// RegisterFlags registers the three profiling flags on fs (use
// flag.CommandLine in a main) and returns the struct they fill after
// fs.Parse.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this path")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this path on exit")
	fs.StringVar(&f.HTTPAddr, "pprof-http", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return f
}

// Start begins whatever the parsed flags requested and returns a stop
// function that must run before process exit: it finishes the CPU profile
// and captures the heap profile. With no flags set, Start and the returned
// stop are no-ops. Failures to open a requested destination are returned
// immediately — a profile the user asked for must not vanish silently.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if f.HTTPAddr != "" {
		ln, err := net.Listen("tcp", f.HTTPAddr)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("pprof-http: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving http://%s/debug/pprof/\n", ln.Addr())
		// The listener lives for the rest of the process; Serve only returns
		// on listener failure, which there is no caller to report to.
		go http.Serve(ln, nil) //nolint:errcheck
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
			cpuFile = nil
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(mf); err != nil {
				mf.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			if err := mf.Close(); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
