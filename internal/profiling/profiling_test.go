package profiling

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNoFlagsIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample; an empty
	// profile is still valid, so this is best-effort, not asserted.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestBadDestinationFailsLoudly(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof")
	if err := fs.Parse([]string{"-cpuprofile", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Start(); err == nil {
		t.Fatal("unopenable cpuprofile path must fail Start")
	}
}

func TestHTTPEndpointServes(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-pprof-http", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer stop()
	// Start logs the bound address but does not return it; hit the index via
	// a fresh listen probe instead: bind :0 again to prove the environment
	// permits loopback HTTP, then verify the pprof mux is registered.
	req, err := http.NewRequest("GET", "http://127.0.0.1/debug/pprof/", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	http.DefaultServeMux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "profile") {
		t.Fatalf("pprof index looks wrong:\n%s", rec.Body.String())
	}
}
