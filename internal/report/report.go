// Package report defines the structured per-session report of an emulated
// run: aggregated, machine-readable counters where package trace is the raw
// event log. A Report is assembled once, at session Finish, from counter
// hooks that follow the fault-overlay discipline — nil until enabled, no
// extra RNG draws, nothing but an integer bump on the hot path — so a run
// with reporting disabled is bit-identical to a build without the feature.
//
// The report is JSON-encodable end to end; `omnc-sim -report out.json` dumps
// it for offline inspection and the aggregate views in internal/experiments
// sum it per protocol.
package report

// Histogram is a fixed-bucket histogram: Bounds are ascending upper bucket
// edges, Counts[i] counts samples v <= Bounds[i] (and above Bounds[i-1]),
// and Counts[len(Bounds)] is the overflow bucket. The bucket layout is fixed
// at construction so Observe never allocates.
type Histogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	N      int64     `json:"n"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// DefaultLatencyBounds bucket generation-completion latencies in seconds.
var DefaultLatencyBounds = []float64{0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60, 120}

// DefaultQueueBounds bucket broadcast-queue lengths in packets.
var DefaultQueueBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}

// NewHistogram builds an empty histogram over the given ascending bucket
// bounds (copied; the input is not retained).
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one sample. It performs no allocation.
func (h *Histogram) Observe(v float64) {
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Mean returns the sample mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// NodeCounters aggregates one node's session activity. Node is the
// subgraph-local index; in shared (multi-unicast) placement the counters are
// this session's share of the physical node's traffic, except AirtimeSeconds
// and MeanQueue, which describe the physical node on the shared channel.
type NodeCounters struct {
	Node           int     `json:"node"`
	TxFrames       int64   `json:"tx_frames"`
	RxPackets      int64   `json:"rx_packets"`
	Innovative     int64   `json:"innovative"`
	Discarded      int64   `json:"discarded"`
	AirtimeSeconds float64 `json:"airtime_s"`
	MeanQueue      float64 `json:"mean_queue"`
}

// LinkDelivery is one cell of the per-link delivery matrix; links with zero
// deliveries are omitted.
type LinkDelivery struct {
	From      int   `json:"from"`
	To        int   `json:"to"`
	Delivered int64 `json:"delivered"`
}

// RankPoint is one step of the destination's rank progress: the decoder's
// rank right after an innovative reception. The series is the aggregated
// form of the trace's innovative events at the destination.
type RankPoint struct {
	Time       float64 `json:"t"`
	Generation int     `json:"gen"`
	Rank       int     `json:"rank"`
}

// MACStats aggregates the channel-level view of the session's nodes: frames
// and bytes handed to the air, summed air occupancy, and the mean
// token-bucket fill observed at transmission attempts of rate-capped nodes
// (CSMA mode only; the oracle scheduler has no token buckets).
type MACStats struct {
	FramesSent         int64   `json:"frames_sent"`
	BytesSent          int64   `json:"bytes_sent"`
	AirtimeSeconds     float64 `json:"airtime_s"`
	MeanTokenOccupancy float64 `json:"mean_token_occupancy"`
}

// FaultSummary counts the topology epochs a session lived through. Epochs is
// the injector's total; the per-kind counts tally every event the session
// observed (a plan event outside the session's subgraph still re-solves its
// rates, so it counts).
type FaultSummary struct {
	Epochs     int `json:"epochs"`
	Crashes    int `json:"crashes"`
	Recoveries int `json:"recoveries"`
	LinkFlaps  int `json:"link_flaps"`
	Bursts     int `json:"bursts"`
	Replans    int `json:"replans"`
}

// Report is the structured summary of one emulated session.
type Report struct {
	Protocol           string         `json:"protocol"`
	Seed               int64          `json:"seed"`
	Duration           float64        `json:"duration_s"`
	GenerationsDecoded int            `json:"generations_decoded"`
	Throughput         float64        `json:"throughput_bytes_per_s"`
	Nodes              []NodeCounters `json:"nodes"`
	Links              []LinkDelivery `json:"links,omitempty"`
	MAC                MACStats       `json:"mac"`
	GenerationLatency  *Histogram     `json:"generation_latency,omitempty"`
	QueueLength        *Histogram     `json:"queue_length,omitempty"`
	RankTimeline       []RankPoint    `json:"rank_timeline,omitempty"`
	Faults             FaultSummary   `json:"faults"`
}

// TotalTx sums the per-node transmitted frames.
func (r *Report) TotalTx() int64 { return r.sum(func(n NodeCounters) int64 { return n.TxFrames }) }

// TotalRx sums the per-node received packets.
func (r *Report) TotalRx() int64 { return r.sum(func(n NodeCounters) int64 { return n.RxPackets }) }

// TotalInnovative sums the per-node innovative receptions.
func (r *Report) TotalInnovative() int64 {
	return r.sum(func(n NodeCounters) int64 { return n.Innovative })
}

// TotalDiscarded sums the per-node discarded receptions.
func (r *Report) TotalDiscarded() int64 {
	return r.sum(func(n NodeCounters) int64 { return n.Discarded })
}

func (r *Report) sum(f func(NodeCounters) int64) int64 {
	var total int64
	for _, n := range r.Nodes {
		total += f(n)
	}
	return total
}
