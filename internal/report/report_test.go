package report

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 9} {
		h.Observe(v)
	}
	// v <= 1 -> bucket 0; 1 < v <= 2 -> bucket 1; 2 < v <= 4 -> bucket 2;
	// v > 4 -> overflow.
	want := []int64{2, 2, 2, 1}
	if !reflect.DeepEqual(h.Counts, want) {
		t.Fatalf("counts = %v, want %v", h.Counts, want)
	}
	if h.N != 7 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Min != 0.5 || h.Max != 9 {
		t.Fatalf("min/max = %v/%v", h.Min, h.Max)
	}
	if got, want := h.Mean(), (0.5+1+1.5+2+3+4+9)/7; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 2)
	if h.Mean() != 0 || h.N != 0 {
		t.Fatalf("empty histogram = %+v", h)
	}
	if len(h.Counts) != 3 {
		t.Fatalf("counts len = %d, want len(bounds)+1", len(h.Counts))
	}
}

func TestHistogramNegativeSamples(t *testing.T) {
	// The queue histogram's first bound is 0; negative values (never produced
	// by the MAC, but the type must not misbehave) land in bucket 0 and set
	// Min below zero.
	h := NewHistogram(0, 1)
	h.Observe(-2)
	h.Observe(0)
	if h.Counts[0] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Min != -2 || h.Max != 0 {
		t.Fatalf("min/max = %v/%v", h.Min, h.Max)
	}
}

func TestHistogramDoesNotAliasBounds(t *testing.T) {
	bounds := []float64{1, 2}
	h := NewHistogram(bounds...)
	bounds[0] = 100
	h.Observe(1.5)
	if h.Counts[1] != 1 {
		t.Fatal("histogram must copy its bounds")
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	h := NewHistogram(DefaultQueueBounds...)
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 64)
	for i := range samples {
		samples[i] = rng.Float64() * 200
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range samples {
			h.Observe(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f per run, want 0", allocs)
	}
}

func TestReportTotals(t *testing.T) {
	r := &Report{Nodes: []NodeCounters{
		{Node: 0, TxFrames: 10, RxPackets: 0, Innovative: 0, Discarded: 0},
		{Node: 1, TxFrames: 5, RxPackets: 9, Innovative: 7, Discarded: 2},
		{Node: 2, TxFrames: 0, RxPackets: 12, Innovative: 8, Discarded: 4},
	}}
	if r.TotalTx() != 15 || r.TotalRx() != 21 || r.TotalInnovative() != 15 || r.TotalDiscarded() != 6 {
		t.Fatalf("totals = %d/%d/%d/%d", r.TotalTx(), r.TotalRx(), r.TotalInnovative(), r.TotalDiscarded())
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds...)
	h.Observe(0.7)
	h.Observe(3)
	in := &Report{
		Protocol:           "omnc",
		Seed:               7,
		Duration:           60,
		GenerationsDecoded: 4,
		Throughput:         1234.5,
		Nodes: []NodeCounters{
			{Node: 0, TxFrames: 100, AirtimeSeconds: 1.5},
			{Node: 1, RxPackets: 90, Innovative: 80, Discarded: 10, MeanQueue: 2.25},
		},
		Links:             []LinkDelivery{{From: 0, To: 1, Delivered: 90}},
		MAC:               MACStats{FramesSent: 100, BytesSent: 104800, AirtimeSeconds: 1.5, MeanTokenOccupancy: 0.4},
		GenerationLatency: h,
		RankTimeline:      []RankPoint{{Time: 1.5, Generation: 0, Rank: 1}},
		Faults:            FaultSummary{Epochs: 2, Crashes: 1, Replans: 2},
	}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("round trip drifted:\n in=%+v\nout=%+v", in, &out)
	}
}

func TestReportJSONOmitsEmptySections(t *testing.T) {
	buf, err := json.Marshal(&Report{Protocol: "etx"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"links", "generation_latency", "queue_length", "rank_timeline"} {
		if jsonHasKey(buf, key) {
			t.Fatalf("empty report must omit %q: %s", key, buf)
		}
	}
}

func jsonHasKey(buf []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}
