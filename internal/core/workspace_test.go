package core

import (
	"reflect"
	"testing"

	"omnc/internal/topology"
)

// The pooled rate-solve workspace must be invisible in the results: a solve
// that draws recycled scratch from ratePool has to produce bit-identical
// numbers to one that allocates everything fresh (Options.FreshWorkspace is
// the oracle). The runs interleave so the pooled solves always see dirty
// workspaces left behind by earlier solves of different sizes.

func reuseSubgraphs(t *testing.T) []*Subgraph {
	t.Helper()
	var sgs []*Subgraph
	for _, seed := range []int64{3, 7, 19} {
		nw, err := topology.Generate(topology.Config{Nodes: 50, Density: 6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for dst := 1; dst < nw.Size() && len(sgs) < 2*(int(seed)%3+1); dst++ {
			sg, err := SelectNodes(nw, 0, dst)
			if err != nil || sg.Size() < 4 {
				continue
			}
			sgs = append(sgs, sg)
		}
	}
	if len(sgs) < 4 {
		t.Fatal("not enough subgraphs for the reuse property")
	}
	return sgs
}

func TestRunPooledMatchesFresh(t *testing.T) {
	sgs := reuseSubgraphs(t)
	opts := Options{MaxIterations: 400}
	for round := 0; round < 3; round++ {
		for i, sg := range sgs {
			fresh := opts
			fresh.FreshWorkspace = true
			want, err := NewRateController(sg, fresh).Run()
			if err != nil {
				t.Fatalf("round %d sg %d fresh: %v", round, i, err)
			}
			got, err := NewRateController(sg, opts).Run()
			if err != nil {
				t.Fatalf("round %d sg %d pooled: %v", round, i, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d sg %d: pooled solve diverged from fresh:\n got %+v\nwant %+v",
					round, i, got, want)
			}
		}
	}
}

func TestMultiRunPooledMatchesFresh(t *testing.T) {
	sgs := reuseSubgraphs(t)
	sessions := []MultiSession{{Subgraph: sgs[0]}, {Subgraph: sgs[1]}, {Subgraph: sgs[2]}}
	opts := Options{MaxIterations: 300}
	fresh := opts
	fresh.FreshWorkspace = true
	mcF, err := NewMultiRateController(sessions, fresh)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mcF.Run()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		// Dirty the pool with single-session solves of other sizes first.
		if _, err := NewRateController(sgs[3], opts).Run(); err != nil {
			t.Fatal(err)
		}
		mc, err := NewMultiRateController(sessions, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: pooled joint solve diverged from fresh:\n got %+v\nwant %+v",
				round, got, want)
		}
	}
}
