// Package core implements the paper's primary contribution: the sUnicast
// optimization framework (Sec. 3.2) and the distributed rate-control
// algorithm of Table 1 (Sec. 3.3), together with the decentralized node
// selection procedure (Sec. 4) that precedes them.
package core

import (
	"fmt"
	"math"

	"omnc/internal/graph"
	"omnc/internal/topology"
)

// Link is a directed link of the selected forwarder subgraph, in local node
// indices, annotated with its one-way reception probability p_ij.
type Link struct {
	From, To int
	Prob     float64
}

// Subgraph is the outcome of node selection for one unicast session: the
// forwarders that may contribute to the session and the directed links
// between them. Links always point strictly closer (in ETX distance) to the
// destination, so the subgraph is a DAG.
type Subgraph struct {
	// Nodes maps local index -> original network node ID. Nodes[Src] is the
	// session source, Nodes[Dst] the destination.
	Nodes []int
	// Src and Dst are local indices (Src is always 0).
	Src, Dst int
	// Links are the directed forwarding links, local indices.
	Links []Link
	// ETXDist[i] is the ETX distance from local node i to the destination.
	ETXDist []float64
	// neighbors[i] lists local nodes within interference range of i
	// (regardless of link direction); this drives the broadcast MAC
	// constraint (4).
	neighbors [][]int
	// out[i] / in[i] index Links leaving/entering local node i.
	out, in [][]int
}

// ErrUnreachable reports that no forwarder subgraph connects the session
// endpoints.
type ErrUnreachable struct {
	Src, Dst int
}

func (e *ErrUnreachable) Error() string {
	return fmt.Sprintf("core: destination %d unreachable from source %d", e.Dst, e.Src)
}

// Is matches the graph.ErrNoRoute sentinel.
func (e *ErrUnreachable) Is(target error) bool { return target == graph.ErrNoRoute }

// SelectNodes runs the decentralized node selection procedure of Sec. 4 on
// the full network: every node computes its ETX distance to the destination,
// and a node is selected as a potential forwarder if it is strictly closer
// to the destination than the source and lies on some strictly-decreasing
// path from the source. Links of the subgraph connect selected nodes within
// range whose ETX distance strictly decreases.
func SelectNodes(net *topology.Network, src, dst int) (*Subgraph, error) {
	n := net.Size()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("core: endpoints (%d,%d) out of range [0,%d)", src, dst, n)
	}
	if src == dst {
		return nil, fmt.Errorf("core: source equals destination (%d)", src)
	}

	// ETX distance of every node to the destination: Dijkstra from dst over
	// reversed links with cost ETX = 1/p (Sec. 4; [9]).
	rev := graph.New(n)
	for u := 0; u < n; u++ {
		for _, v := range net.Neighbors(u) {
			// Edge v->u in the reversed graph stands for real link u->v.
			rev.AddEdge(v, u, 1/net.Prob(u, v))
		}
	}
	etx, _ := graph.Dijkstra(rev, dst)
	if math.IsInf(etx[src], 1) {
		return nil, &ErrUnreachable{Src: src, Dst: dst}
	}

	// Candidates: strictly closer to the destination than the source, plus
	// the source itself.
	candidate := make([]bool, n)
	candidate[src] = true
	for v := 0; v < n; v++ {
		if v != src && etx[v] < etx[src] {
			candidate[v] = true
		}
	}

	// Keep only candidates reachable from the source along strictly
	// ETX-decreasing candidate links; unreachable candidates can never hear
	// session packets and would inflate the optimization for nothing.
	reach := make([]bool, n)
	queue := []int{src}
	reach[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if candidate[v] && !reach[v] && etx[v] < etx[u] {
				reach[v] = true
				queue = append(queue, v)
			}
		}
	}
	if !reach[dst] {
		return nil, &ErrUnreachable{Src: src, Dst: dst}
	}
	// And only candidates that can still reach the destination along
	// decreasing links (prune dead ends).
	useful := make([]bool, n)
	useful[dst] = true
	queue = []int{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range net.Neighbors(v) {
			if reach[u] && !useful[u] && etx[v] < etx[u] {
				useful[u] = true
				queue = append(queue, u)
			}
		}
	}

	sg := &Subgraph{}
	local := make(map[int]int, n)
	add := func(v int) int {
		if li, ok := local[v]; ok {
			return li
		}
		li := len(sg.Nodes)
		local[v] = li
		sg.Nodes = append(sg.Nodes, v)
		sg.ETXDist = append(sg.ETXDist, etx[v])
		return li
	}
	sg.Src = add(src)
	for v := 0; v < n; v++ {
		if useful[v] && reach[v] {
			add(v)
		}
	}
	sg.Dst = local[dst]

	k := len(sg.Nodes)
	sg.neighbors = make([][]int, k)
	sg.out = make([][]int, k)
	sg.in = make([][]int, k)
	for li, u := range sg.Nodes {
		for _, v := range net.Neighbors(u) {
			lj, ok := local[v]
			if !ok {
				continue
			}
			sg.neighbors[li] = append(sg.neighbors[li], lj)
			if etx[v] < etx[u] {
				idx := len(sg.Links)
				sg.Links = append(sg.Links, Link{From: li, To: lj, Prob: net.Prob(u, v)})
				sg.out[li] = append(sg.out[li], idx)
				sg.in[lj] = append(sg.in[lj], idx)
			}
		}
	}
	if len(sg.out[sg.Src]) == 0 {
		return nil, &ErrUnreachable{Src: src, Dst: dst}
	}
	return sg, nil
}

// Masked returns a view of the subgraph with crashed nodes and severed links
// removed from the forwarding structure. down[i] marks local node i as
// crashed; linkDown (may be nil) reports whether the undirected link between
// two local nodes is inside a flap episode. Crashed nodes lose their
// interference neighbourhood too — a dead radio neither forwards nor
// contends — but flapped links keep interfering (the radios still transmit;
// only delivery fails), so linkDown filters Links, not neighbors.
//
// Nodes, Src, Dst and ETXDist are shared with the receiver (read-only by
// convention); Links, neighbors, out and in are rebuilt. The mask never
// re-runs node selection: the optimization re-solves over the surviving
// structure of the original selection, which is exactly the information a
// deployed session has mid-run.
func (sg *Subgraph) Masked(down []bool, linkDown func(i, j int) bool) *Subgraph {
	isDown := func(i int) bool { return down != nil && i < len(down) && down[i] }
	out := &Subgraph{
		Nodes:   sg.Nodes,
		Src:     sg.Src,
		Dst:     sg.Dst,
		ETXDist: sg.ETXDist,
	}
	k := sg.Size()
	out.neighbors = make([][]int, k)
	out.out = make([][]int, k)
	out.in = make([][]int, k)
	for i := 0; i < k; i++ {
		if isDown(i) {
			continue
		}
		for _, j := range sg.neighbors[i] {
			if !isDown(j) {
				out.neighbors[i] = append(out.neighbors[i], j)
			}
		}
	}
	for _, l := range sg.Links {
		if isDown(l.From) || isDown(l.To) {
			continue
		}
		if linkDown != nil && linkDown(l.From, l.To) {
			continue
		}
		idx := len(out.Links)
		out.Links = append(out.Links, l)
		out.out[l.From] = append(out.out[l.From], idx)
		out.in[l.To] = append(out.in[l.To], idx)
	}
	return out
}

// Size returns the number of selected nodes.
func (sg *Subgraph) Size() int { return len(sg.Nodes) }

// Neighbors returns the local indices within interference range of local
// node i.
func (sg *Subgraph) Neighbors(i int) []int { return sg.neighbors[i] }

// Out returns indices into Links of links leaving local node i.
func (sg *Subgraph) Out(i int) []int { return sg.out[i] }

// In returns indices into Links of links entering local node i.
func (sg *Subgraph) In(i int) []int { return sg.in[i] }

// ForwardGraph returns the subgraph as a digraph with the provided per-link
// costs (len(costs) == len(Links)); nil costs mean unit costs.
func (sg *Subgraph) ForwardGraph(costs []float64) *graph.Digraph {
	g := graph.New(sg.Size())
	sg.forwardEdges(g, costs)
	return g
}

// ForwardGraphInto is ForwardGraph rebuilding into an existing digraph,
// reusing its adjacency storage. Edges are inserted in Links order either
// way, so the resulting graph — and every Dijkstra tie-break downstream — is
// identical to a freshly built one.
func (sg *Subgraph) ForwardGraphInto(g *graph.Digraph, costs []float64) {
	g.Reset(sg.Size())
	sg.forwardEdges(g, costs)
}

func (sg *Subgraph) forwardEdges(g *graph.Digraph, costs []float64) {
	for i, l := range sg.Links {
		c := 1.0
		if costs != nil {
			c = costs[i]
		}
		g.AddEdge(l.From, l.To, c)
	}
}

// PathCount returns the number of distinct source-to-destination paths in
// the forwarder DAG (the denominator of the paper's path-utility ratio,
// Fig. 4).
func (sg *Subgraph) PathCount() float64 {
	return graph.CountPaths(sg.ForwardGraph(nil), sg.Src, sg.Dst)
}
