package core

import (
	"errors"
	"math"
	"testing"

	"omnc/internal/topology"
)

// diamond builds the two-relay scenario of Sec. 3.2: S reaches relays u and
// v, which are out of range of each other, and both reach T.
//
// Local analysis of the sUnicast LP on this topology (C = 1):
// maximize x_Su + x_Sv subject to x_Su <= min(0.8 b_S, 0.7 b_u),
// x_Sv <= min(0.6 b_S, 0.9 b_v), b_u + b_S <= 1, b_v + b_S <= 1,
// b_u + b_v <= 1; the optimum is gamma* = 49/75 = 0.65333 at b_S = 7/15.
func diamond(t *testing.T) *topology.Network {
	t.Helper()
	nw, err := topology.NewExplicit([][]float64{
		// S     u    v    T
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestSelectNodesDiamond(t *testing.T) {
	sg, err := SelectNodes(diamond(t), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Size() != 4 {
		t.Fatalf("selected %d nodes, want 4", sg.Size())
	}
	if sg.Nodes[sg.Src] != 0 || sg.Nodes[sg.Dst] != 3 {
		t.Fatalf("endpoints mapped to %d,%d", sg.Nodes[sg.Src], sg.Nodes[sg.Dst])
	}
	if len(sg.Links) != 4 {
		t.Fatalf("links = %d, want 4", len(sg.Links))
	}
	// Every link must strictly decrease ETX distance (DAG property).
	for _, l := range sg.Links {
		if sg.ETXDist[l.To] >= sg.ETXDist[l.From] {
			t.Fatalf("link %v does not decrease ETX distance", l)
		}
	}
	if got := sg.PathCount(); got != 2 {
		t.Fatalf("PathCount = %v, want 2", got)
	}
}

func TestSelectNodesErrors(t *testing.T) {
	nw := diamond(t)
	if _, err := SelectNodes(nw, 0, 0); err == nil {
		t.Fatal("src == dst must fail")
	}
	if _, err := SelectNodes(nw, -1, 3); err == nil {
		t.Fatal("out-of-range src must fail")
	}
	if _, err := SelectNodes(nw, 0, 9); err == nil {
		t.Fatal("out-of-range dst must fail")
	}
	// Disconnected destination.
	iso, err := topology.NewExplicit([][]float64{
		{0, 0.9, 0},
		{0.9, 0, 0},
		{0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	var unreach *ErrUnreachable
	if _, err := SelectNodes(iso, 0, 2); !errors.As(err, &unreach) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestSelectNodesPrunesFartherNodes(t *testing.T) {
	// A node farther from the destination than the source must never be
	// selected (Sec. 3.2 node selection).
	nw, err := topology.NewExplicit([][]float64{
		// S     far   mid   T
		{0, 0.9, 0.9, 0},
		{0.9, 0, 0.9, 0}, // "far" has no link toward T
		{0.9, 0.9, 0, 0.9},
		{0, 0, 0.9, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := SelectNodes(nw, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sg.Nodes {
		if v == 1 {
			t.Fatal("node 1 (farther than source) must be pruned")
		}
	}
}

func TestSelectNodesOnRandomNetwork(t *testing.T) {
	nw, err := topology.Generate(topology.Config{Nodes: 80, Density: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for dst := 1; dst < 40 && found < 5; dst++ {
		sg, err := SelectNodes(nw, 0, dst)
		if err != nil {
			continue // disconnected pair: fine on sparse random graphs
		}
		found++
		seen := make(map[int]bool)
		for _, v := range sg.Nodes {
			if seen[v] {
				t.Fatal("duplicate node in subgraph")
			}
			seen[v] = true
		}
		for _, l := range sg.Links {
			if sg.ETXDist[l.To] >= sg.ETXDist[l.From] {
				t.Fatal("non-decreasing link in forwarder DAG")
			}
			if l.Prob <= 0 || l.Prob > 1 {
				t.Fatalf("link probability %v", l.Prob)
			}
		}
		// Neighbour lists must be consistent with links.
		for li, l := range sg.Links {
			ok := false
			for _, j := range sg.Neighbors(l.From) {
				if j == l.To {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("link %d endpoints are not neighbours", li)
			}
		}
	}
	if found == 0 {
		t.Fatal("no reachable session found on the random network")
	}
}

func TestSolveLPDiamondOptimum(t *testing.T) {
	sg, err := SelectNodes(diamond(t), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 1e5
	res, err := SolveLP(sg, capacity)
	if err != nil {
		t.Fatal(err)
	}
	want := 49.0 / 75.0 * capacity
	if math.Abs(res.Gamma-want) > 1 {
		t.Fatalf("LP gamma = %v, want %v", res.Gamma, want)
	}
	// b_T must be zero; all rates within bounds.
	if res.B[sg.Dst] > 1e-9 {
		t.Fatalf("destination broadcast rate = %v, want 0", res.B[sg.Dst])
	}
	checkFeasible(t, sg, res.B, res.X, res.Gamma, capacity)
}

// checkFeasible asserts constraints (2)-(5) hold for a rate allocation.
func checkFeasible(t *testing.T, sg *Subgraph, b, x []float64, gamma, capacity float64) {
	t.Helper()
	const tol = 1e-6 * 1e5
	for i := 0; i < sg.Size(); i++ {
		// (2) flow conservation.
		net := 0.0
		for _, li := range sg.Out(i) {
			net += x[li]
		}
		for _, li := range sg.In(i) {
			net -= x[li]
		}
		want := 0.0
		switch i {
		case sg.Src:
			want = gamma
		case sg.Dst:
			want = -gamma
		}
		if math.Abs(net-want) > tol {
			t.Fatalf("node %d: net flow %v, want %v", i, net, want)
		}
		// (4) MAC constraint.
		if i != sg.Src {
			load := b[i]
			for _, j := range sg.Neighbors(i) {
				load += b[j]
			}
			if load > capacity+tol {
				t.Fatalf("node %d: MAC load %v exceeds capacity", i, load)
			}
		}
	}
	// (5) broadcast support.
	for li, l := range sg.Links {
		if x[li] > b[l.From]*l.Prob+tol {
			t.Fatalf("link %d: x=%v exceeds b*p=%v", li, x[li], b[l.From]*l.Prob)
		}
	}
	// (3) non-negativity.
	for li, v := range x {
		if v < -tol {
			t.Fatalf("x[%d] = %v negative", li, v)
		}
	}
	for i, v := range b {
		if v < -tol {
			t.Fatalf("b[%d] = %v negative", i, v)
		}
	}
}

func TestSolveLPValidation(t *testing.T) {
	sg, _ := SelectNodes(diamond(t), 0, 3)
	if _, err := SolveLP(sg, 0); err == nil {
		t.Fatal("zero capacity must fail")
	}
	if _, err := SolveLP(&Subgraph{Nodes: []int{0, 1}}, 1); err == nil {
		t.Fatal("linkless subgraph must fail")
	}
}

func TestRateControllerConvergesOnDiamond(t *testing.T) {
	sg, err := SelectNodes(diamond(t), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 1e5
	rc := NewRateController(sg, Options{Capacity: capacity, MaxIterations: 2000})
	res, err := rc.Run()
	if err != nil {
		t.Fatal(err)
	}
	lpRes, err := SolveLP(sg, capacity)
	if err != nil {
		t.Fatal(err)
	}
	// The distributed algorithm approaches the LP optimum (Sec. 3.3 proves
	// convergence; finite iterations leave a gap).
	if res.Gamma < 0.75*lpRes.Gamma || res.Gamma > 1.1*lpRes.Gamma {
		t.Fatalf("distributed gamma %v too far from LP optimum %v", res.Gamma, lpRes.Gamma)
	}
	if res.B[sg.Dst] > 1e-6 {
		t.Fatalf("destination rate %v, want 0", res.B[sg.Dst])
	}
	for i, v := range res.B {
		if v < 0 || v > capacity {
			t.Fatalf("b[%d] = %v outside [0, C]", i, v)
		}
	}
}

func TestRateControllerTrace(t *testing.T) {
	sg, _ := SelectNodes(diamond(t), 0, 3)
	rc := NewRateController(sg, Options{Capacity: 1e5, MaxIterations: 50, RecordTrace: true})
	res, err := rc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Iterations {
		t.Fatalf("trace length %d != iterations %d", len(res.Trace), res.Iterations)
	}
	for i, snap := range res.Trace {
		if snap.Iteration != i+1 {
			t.Fatalf("trace[%d].Iteration = %d", i, snap.Iteration)
		}
		if len(snap.B) != sg.Size() {
			t.Fatalf("trace snapshot has %d rates", len(snap.B))
		}
	}
}

func TestRateControllerNoTraceByDefault(t *testing.T) {
	sg, _ := SelectNodes(diamond(t), 0, 3)
	res, err := NewRateController(sg, Options{MaxIterations: 30}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace recorded without RecordTrace")
	}
}

func TestRateControllerEmptySubgraph(t *testing.T) {
	sg := &Subgraph{Nodes: []int{0, 1}, Dst: 1}
	if _, err := NewRateController(sg, Options{}).Run(); err == nil {
		t.Fatal("linkless subgraph must fail")
	}
}

func TestRateControllerMatchesLPOnRandomSessions(t *testing.T) {
	nw, err := topology.Generate(topology.Config{Nodes: 60, Density: 6, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 1e5
	checked := 0
	for dst := 1; dst < nw.Size() && checked < 3; dst++ {
		sg, err := SelectNodes(nw, 0, dst)
		if err != nil || sg.Size() < 4 {
			continue
		}
		lpRes, err := SolveLP(sg, capacity)
		if err != nil || lpRes.Gamma < 1 {
			continue
		}
		res, err := NewRateController(sg, Options{Capacity: capacity, MaxIterations: 3000}).Run()
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.Gamma / lpRes.Gamma
		if ratio < 0.6 || ratio > 1.15 {
			t.Fatalf("dst %d: distributed/LP gamma ratio = %.3f (%v vs %v)",
				dst, ratio, res.Gamma, lpRes.Gamma)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no suitable session found")
	}
}

func TestRescaleFeasible(t *testing.T) {
	sg, _ := SelectNodes(diamond(t), 0, 3)
	const capacity = 1e5
	// Deliberately infeasible: everyone at capacity.
	b := make([]float64, sg.Size())
	for i := range b {
		b[i] = capacity
	}
	b[sg.Dst] = 0
	scaled, factor := RescaleFeasible(sg, b, capacity)
	if factor >= 1 {
		t.Fatalf("factor = %v, want < 1 for infeasible input", factor)
	}
	for i := 0; i < sg.Size(); i++ {
		if i == sg.Src {
			continue
		}
		load := scaled[i]
		for _, j := range sg.Neighbors(i) {
			load += scaled[j]
		}
		if load > capacity*(1+1e-9) {
			t.Fatalf("node %d still violates MAC after rescale: %v", i, load)
		}
	}
	// A strictly interior vector is scaled *up* to the constraint
	// boundary: finite subgradient runs undershoot the optimum, and the
	// optimum saturates the bottleneck receiver.
	small := make([]float64, sg.Size())
	small[sg.Src] = capacity / 10
	up, factor := RescaleFeasible(sg, small, capacity)
	if factor <= 1 {
		t.Fatalf("interior input should scale up, got factor %v", factor)
	}
	for i, v := range up {
		if v > capacity+1e-9 {
			t.Fatalf("b[%d] = %v exceeds channel capacity", i, v)
		}
	}
	// An all-zero vector is returned unchanged.
	zero := make([]float64, sg.Size())
	_, factor = RescaleFeasible(sg, zero, capacity)
	if factor != 1 {
		t.Fatalf("zero vector rescaled by %v", factor)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Capacity != 1e5 || o.StepA != 1 || o.StepB != 0.5 || o.StepC != 0.05 {
		t.Fatalf("step defaults wrong: %+v", o)
	}
	if o.MaxIterations != 400 || o.Window != 10 || o.Sigma != 0.5 {
		t.Fatalf("loop defaults wrong: %+v", o)
	}
	// Explicit values survive.
	o = Options{Capacity: 5, StepA: 2, MaxIterations: 7}.withDefaults()
	if o.Capacity != 5 || o.StepA != 2 || o.MaxIterations != 7 {
		t.Fatalf("explicit options overridden: %+v", o)
	}
}

func TestSolveLPDualsIdentifyBottleneck(t *testing.T) {
	// On the diamond the binding MAC constraint at the optimum is the
	// relay u's receiver constraint (b_u + b_S = C at b_S = 7/15): its
	// congestion price must be positive; strong duality ties prices to the
	// optimum.
	sg, err := SelectNodes(diamond(t), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 1e5
	res, err := SolveLP(sg, capacity)
	if err != nil {
		t.Fatal(err)
	}
	positive := 0
	for i, beta := range res.Beta {
		if beta < -1e-9 {
			t.Fatalf("negative congestion price at node %d: %v", i, beta)
		}
		if beta > 1e-9 {
			positive++
			// Complementary slackness: a priced receiver is saturated.
			load := res.B[i]
			for _, j := range sg.Neighbors(i) {
				load += res.B[j]
			}
			if load < capacity*(1-1e-6) {
				t.Fatalf("node %d priced (%v) but not saturated (%v)", i, beta, load)
			}
		}
	}
	if positive == 0 {
		t.Fatal("no congested receiver priced at the optimum")
	}
	if res.Beta[sg.Src] != 0 {
		t.Fatal("the source has no receiver constraint to price")
	}
	// Lambda prices: every flow-carrying link's support constraint is
	// tight, so lambda may be positive there; unused links are free.
	for li, l := range sg.Links {
		if res.Lambda[li] < -1e-9 {
			t.Fatalf("negative link price on %v", l)
		}
	}
}

// TestPropertyRateControlPipelineInvariants checks, across random sessions,
// the two invariants the protocol relies on: SupportingRates makes every
// link's constraint (5) hold against the recovered flows, and
// RescaleFeasible then restores the MAC constraint (4) at every receiver.
func TestPropertyRateControlPipelineInvariants(t *testing.T) {
	nw, err := topology.Generate(topology.Config{Nodes: 120, Density: 6, Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 2e4
	checked := 0
	for dst := 1; dst < nw.Size() && checked < 6; dst++ {
		sg, err := SelectNodes(nw, 0, dst)
		if err != nil || sg.Size() < 4 {
			continue
		}
		res, err := NewRateController(sg, Options{Capacity: capacity}).Run()
		if err != nil {
			t.Fatal(err)
		}
		supported := res.SupportingRates(sg)
		for li, l := range sg.Links {
			if res.X[li] > supported[l.From]*l.Prob*(1+1e-9) {
				t.Fatalf("dst %d link %d: x=%v > b*p=%v after SupportingRates",
					dst, li, res.X[li], supported[l.From]*l.Prob)
			}
			if supported[l.From] < res.B[l.From] {
				t.Fatal("SupportingRates must never lower a rate")
			}
		}
		caps, scale := RescaleFeasible(sg, supported, capacity)
		if scale <= 0 {
			t.Fatalf("dst %d: non-positive rescale factor %v", dst, scale)
		}
		for i := 0; i < sg.Size(); i++ {
			if i == sg.Src {
				continue
			}
			load := caps[i]
			for _, j := range sg.Neighbors(i) {
				load += caps[j]
			}
			if load > capacity*(1+1e-9) {
				t.Fatalf("dst %d node %d: load %v exceeds capacity after rescale", dst, i, load)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no usable sessions")
	}
}
