package core

import (
	"testing"

	"omnc/internal/topology"
)

// twoCorridors builds a 8-node network hosting two unicast sessions whose
// forwarder sets interfere in the middle: S1(0)->r(2,3)->T1(5) and
// S2(1)->r(2,3)->T2(6) share relays 2 and 3.
func twoCorridors(t *testing.T) *topology.Network {
	t.Helper()
	p := make([][]float64, 7)
	for i := range p {
		p[i] = make([]float64, 7)
	}
	set := func(a, b int, q float64) {
		p[a][b] = q
		p[b][a] = q
	}
	set(0, 2, 0.8)
	set(0, 3, 0.6)
	set(1, 2, 0.7)
	set(1, 3, 0.8)
	set(2, 5, 0.7)
	set(3, 5, 0.6)
	set(2, 6, 0.6)
	set(3, 6, 0.8)
	set(2, 3, 0.5) // the shared relays hear each other
	nw, err := topology.NewExplicit(p)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestMultiRateControllerValidation(t *testing.T) {
	if _, err := NewMultiRateController(nil, Options{}); err == nil {
		t.Fatal("no sessions must fail")
	}
	if _, err := NewMultiRateController([]MultiSession{{Subgraph: &Subgraph{}}}, Options{}); err == nil {
		t.Fatal("linkless subgraph must fail")
	}
}

func TestMultiRateControllerSingleSessionMatchesSolo(t *testing.T) {
	nw := twoCorridors(t)
	sg, err := SelectNodes(nw, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Capacity: 2e4, MaxIterations: 2000}
	solo, err := NewRateController(sg, opts).Run()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMultiRateController([]MultiSession{{Subgraph: sg}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(joint.PerSession) != 1 {
		t.Fatalf("sessions = %d", len(joint.PerSession))
	}
	ratio := joint.PerSession[0].Gamma / solo.Gamma
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("single-session multi gamma %v deviates from solo %v",
			joint.PerSession[0].Gamma, solo.Gamma)
	}
}

func TestMultiRateControllerSharesCapacity(t *testing.T) {
	nw := twoCorridors(t)
	sg1, err := SelectNodes(nw, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	sg2, err := SelectNodes(nw, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Capacity: 2e4, MaxIterations: 3000}

	solo1, err := NewRateController(sg1, opts).Run()
	if err != nil {
		t.Fatal(err)
	}
	solo2, err := NewRateController(sg2, opts).Run()
	if err != nil {
		t.Fatal(err)
	}

	mc, err := NewMultiRateController([]MultiSession{{Subgraph: sg1}, {Subgraph: sg2}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := joint.PerSession[0].Gamma, joint.PerSession[1].Gamma
	if g1 <= 0 || g2 <= 0 {
		t.Fatalf("joint rates must be positive: %v, %v", g1, g2)
	}
	// Interfering sessions must each get less than they would alone...
	if g1 > solo1.Gamma*1.02 || g2 > solo2.Gamma*1.02 {
		t.Fatalf("joint gammas (%v, %v) exceed solo gammas (%v, %v)",
			g1, g2, solo1.Gamma, solo2.Gamma)
	}
	// ...but proportional fairness (sum of ln gamma) keeps both alive: no
	// session is starved below a quarter of its solo rate on this
	// symmetric-ish topology.
	if g1 < solo1.Gamma/4 || g2 < solo2.Gamma/4 {
		t.Fatalf("a session was starved: joint (%v, %v) vs solo (%v, %v)",
			g1, g2, solo1.Gamma, solo2.Gamma)
	}
}

func TestMultiRateControllerAggregateFeasible(t *testing.T) {
	nw := twoCorridors(t)
	sg1, _ := SelectNodes(nw, 0, 5)
	sg2, _ := SelectNodes(nw, 1, 6)
	const capacity = 2e4
	opts := Options{Capacity: capacity, MaxIterations: 3000}
	mc, err := NewMultiRateController([]MultiSession{{Subgraph: sg1}, {Subgraph: sg2}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate load at every receiver must respect the shared constraint
	// (4) up to subgradient slack.
	netRate := make(map[int]float64) // network node -> summed broadcast rate
	for si, sg := range []*Subgraph{sg1, sg2} {
		for local, id := range sg.Nodes {
			netRate[id] += joint.PerSession[si].B[local]
		}
	}
	for _, sg := range []*Subgraph{sg1, sg2} {
		for local, id := range sg.Nodes {
			if local == sg.Src {
				continue
			}
			load := netRate[id]
			for _, j := range sg.Neighbors(local) {
				load += netRate[sg.Nodes[j]]
			}
			_ = load
			// Duplicate neighbour contributions across the two subgraphs
			// make this a loose sanity bound rather than an exact check.
			if load > 3*capacity {
				t.Fatalf("node %d aggregate load %v wildly exceeds capacity", id, load)
			}
		}
	}
	if joint.Iterations <= 0 {
		t.Fatal("iterations not reported")
	}
}
