package core

import (
	"fmt"

	"omnc/internal/lp"
)

// LPResult is the centralized optimum of the sUnicast program (1)-(5).
type LPResult struct {
	// Gamma is the optimal throughput in bytes/second.
	Gamma float64
	// B[i] is the optimal broadcast rate of local node i in bytes/second.
	B []float64
	// X[l] is the optimal information rate on Links[l] in bytes/second.
	X []float64
	// Beta[i] is the shadow price of node i's MAC constraint (4) — the
	// paper's "congestion price charged on node i" (Sec. 3.3) — in
	// throughput units per unit of capacity. Zero at the source (no
	// receiver constraint there) and at uncongested receivers.
	Beta []float64
	// Lambda[l] is the shadow price of link l's broadcast-support
	// constraint (5), the centralized counterpart of the distributed
	// algorithm's Lagrange multipliers.
	Lambda []float64
	// Iterations is the simplex pivot count.
	Iterations int
}

// SolveLP solves sUnicast centrally with the simplex solver, for validating
// the distributed algorithm and for the paper's optimized-vs-emulated
// throughput comparison (Sec. 5). capacity is C in bytes/second.
//
// Variable layout: [gamma, x_0..x_{L-1}, b_0..b_{K-1}], all >= 0.
func SolveLP(sg *Subgraph, capacity float64) (*LPResult, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: non-positive capacity %v", capacity)
	}
	k := sg.Size()
	nl := len(sg.Links)
	if nl == 0 {
		return nil, fmt.Errorf("core: subgraph has no links")
	}
	// Solve in capacity units (all rates normalized by C, bounds of 1):
	// mixing O(1) probabilities and O(C) capacities in one dense tableau
	// degrades pivot conditioning badly on larger subgraphs.
	nVars := 1 + nl + k
	xVar := func(l int) int { return 1 + l }
	bVar := func(i int) int { return 1 + nl + i }

	p := &lp.Problem{Objective: make([]float64, nVars)}
	p.Objective[0] = 1 // maximize gamma (1)

	// Flow conservation (2): sum_j x_ij - sum_j x_ji - phi(i)*gamma = 0,
	// with phi(S) = +1, phi(T) = -1, else 0. The destination row is the
	// negated sum of the others, so it is omitted to keep rows independent.
	for i := 0; i < k; i++ {
		if i == sg.Dst {
			continue
		}
		row := make([]float64, nVars)
		for _, li := range sg.Out(i) {
			row[xVar(li)] += 1
		}
		for _, li := range sg.In(i) {
			row[xVar(li)] -= 1
		}
		if i == sg.Src {
			row[0] = -1
		}
		p.AEq = append(p.AEq, row)
		p.BEq = append(p.BEq, 0)
	}

	// Broadcast MAC constraint (4): for every receiver i != S,
	// b_i + sum_{j in N(i)} b_j <= C (= 1 in capacity units).
	macRow := make([]int, k) // local node -> inequality row index, -1 for src
	for i := range macRow {
		macRow[i] = -1
	}
	for i := 0; i < k; i++ {
		if i == sg.Src {
			continue
		}
		row := make([]float64, nVars)
		row[bVar(i)] = 1
		for _, j := range sg.Neighbors(i) {
			row[bVar(j)] += 1
		}
		macRow[i] = len(p.AUb)
		p.AUb = append(p.AUb, row)
		p.BUb = append(p.BUb, 1)
	}

	// Broadcast support constraint (5): x_ij <= b_i * p_ij.
	supportRow := make([]int, nl)
	for li, l := range sg.Links {
		row := make([]float64, nVars)
		row[xVar(li)] = 1
		row[bVar(l.From)] = -l.Prob
		supportRow[li] = len(p.AUb)
		p.AUb = append(p.AUb, row)
		p.BUb = append(p.BUb, 0)
	}

	// The destination does not transmit: b_T <= 0 pins it at zero, and a
	// loose upper bound b_i <= 1 keeps the source's rate (otherwise only
	// constrained through its neighbours) bounded.
	for i := 0; i < k; i++ {
		row := make([]float64, nVars)
		row[bVar(i)] = 1
		bound := 1.0
		if i == sg.Dst {
			bound = 0
		}
		p.AUb = append(p.AUb, row)
		p.BUb = append(p.BUb, bound)
	}

	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: sUnicast LP: %w", err)
	}
	out := &LPResult{
		Gamma:      sol.X[0] * capacity,
		B:          make([]float64, k),
		X:          make([]float64, nl),
		Iterations: sol.Iterations,
	}
	for i := 0; i < k; i++ {
		out.B[i] = sol.X[bVar(i)] * capacity
	}
	for l := 0; l < nl; l++ {
		out.X[l] = sol.X[xVar(l)] * capacity
	}
	// Shadow prices: duals are per capacity unit of slack; gamma is also in
	// capacity units, so the prices carry over unscaled.
	out.Beta = make([]float64, k)
	for i := 0; i < k; i++ {
		if macRow[i] >= 0 {
			out.Beta[i] = sol.DualsUb[macRow[i]]
		}
	}
	out.Lambda = make([]float64, nl)
	for li := 0; li < nl; li++ {
		out.Lambda[li] = sol.DualsUb[supportRow[li]]
	}
	return out, nil
}
