package core

import (
	"fmt"
	"math"
)

// Options tunes the distributed rate-control algorithm (Table 1). The zero
// value of any field selects the documented default.
type Options struct {
	// Capacity is the MAC channel capacity C in bytes/second. The paper's
	// convergence showcase uses 1e5. Default 1e5.
	Capacity float64
	// StepA, StepB, StepC parameterize the diminishing step size
	// theta(t) = A / (B + C*t). The paper quotes A=1, B=0.5, C=10 for its
	// Fig. 1 run on raw byte rates; this implementation normalizes all
	// rates by the channel capacity (so the dual variables live on their
	// natural O(1/gamma) scale), under which the equivalent decay is much
	// slower. Defaults: A=1, B=0.5, C=0.05.
	StepA, StepB, StepC float64
	// Sigma is the proximal constant of SUB2's quadratic regularizer
	// (Sec. 3.3); smaller values take more aggressive b updates.
	// Default 0.5.
	Sigma float64
	// MaxIterations bounds the optimization loop. Default 400.
	MaxIterations int
	// Tolerance is the convergence threshold on the recovered broadcast
	// rates: the loop stops when no averaged rate moved by more than
	// Tolerance (relative to capacity) over the last Window iterations.
	// Default 1e-3.
	Tolerance float64
	// Window is the stability window for convergence detection. Default 10.
	Window int
	// RecordTrace enables per-iteration snapshots (used to draw Fig. 1).
	RecordTrace bool
	// FreshWorkspace disables solver-workspace reuse: every Run allocates
	// its scratch storage instead of drawing it from the package pool. The
	// results are bit-identical either way — pooled scratch is re-zeroed on
	// acquisition — which is exactly what the solver-reuse property tests
	// assert by running both modes. Production runs leave this false.
	FreshWorkspace bool
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 1e5
	}
	if o.StepA <= 0 {
		o.StepA = 1
	}
	if o.StepB <= 0 {
		o.StepB = 0.5
	}
	if o.StepC <= 0 {
		o.StepC = 0.05
	}
	if o.Sigma <= 0 {
		o.Sigma = 0.5
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 400
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-3
	}
	if o.Window <= 0 {
		o.Window = 10
	}
	return o
}

// Snapshot is one iteration of the optimization trace.
type Snapshot struct {
	Iteration int
	// B are the recovered (running-average) broadcast rates in bytes/s,
	// indexed by local node.
	B []float64
	// Gamma is the current recovered throughput estimate in bytes/s.
	Gamma float64
}

// Result is the outcome of the rate-control algorithm for one session.
type Result struct {
	// B[i] is the optimized broadcast/encoding rate of local node i in
	// bytes/second (the paper's rate vector b, after primal recovery).
	B []float64
	// X[l] is the information flow rate on Links[l] in bytes/second (the
	// multipath routing scheme, after primal recovery).
	X []float64
	// Gamma is the optimized end-to-end throughput estimate in
	// bytes/second.
	Gamma float64
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the stability criterion was met before
	// MaxIterations.
	Converged bool
	// Trace holds per-iteration snapshots when Options.RecordTrace is set.
	Trace []Snapshot
}

// RateController runs the distributed rate-control algorithm of Table 1 on
// a selected subgraph. The implementation mirrors the message-passing
// structure of the paper — every update of node i uses only quantities
// available at i or advertised by its neighbours — but executes the rounds
// in a single process.
type RateController struct {
	sg   *Subgraph
	opts Options
}

// NewRateController returns a controller for the subgraph.
func NewRateController(sg *Subgraph, opts Options) *RateController {
	return &RateController{sg: sg, opts: opts.withDefaults()}
}

// Run executes the algorithm until convergence or MaxIterations.
//
// All rates are normalized internally by the channel capacity C so the
// subgradient steps of (8) and (15) operate on O(1) quantities; results are
// scaled back to bytes/second.
func (rc *RateController) Run() (*Result, error) {
	sg := rc.sg
	o := rc.opts
	k := sg.Size()
	nl := len(sg.Links)
	if nl == 0 {
		return nil, fmt.Errorf("core: subgraph has no links")
	}

	// All scratch storage comes from the pooled workspace (workspace.go):
	// acquisition re-zeroes every slice, so the solve below is byte-for-byte
	// the same computation as with freshly made slices, without the
	// per-iteration (and per-replan) allocations.
	ws := getRateWorkspace(o.FreshWorkspace)
	defer putRateWorkspace(ws, o.FreshWorkspace)

	// Step 1 of Table 1: primal variables at small positive values, duals
	// at zero. Everything below is in capacity units (C == 1).
	const initRate = 0.01
	b := f64(&ws.b, k)
	for i := range b {
		b[i] = initRate
	}
	b[sg.Dst] = 0 // the destination never transmits for this session
	lambda := f64(&ws.lambda, nl)
	beta := f64(&ws.beta, k) // beta[Src] stays 0: (4) holds for i != S

	// Running sums for primal recovery (13) and (18). Plain 1/t averaging
	// over the whole history would let the crude early iterates dominate
	// for thousands of rounds, so the averages restart at every
	// power-of-two iteration: at any time they cover at least the latest
	// half of the run, which remains a valid ergodic primal recovery in the
	// sense of Sherali-Choi while converging much faster in practice.
	sumX := f64(&ws.sumX, nl)
	sumB := f64(&ws.sumB, k)
	avgB := f64(&ws.avgB, k)
	prevAvgB := f64(&ws.prevAvgB, k)
	avgX := f64(&ws.avgX, nl)
	epochStart := 1
	nextRestart := 2
	// Full-history sums drive the reported Fig. 1 trace: they converge more
	// slowly but without the visible jumps the epoch restarts would cause.
	traceSumX := f64(&ws.traceSumX, nl)
	traceSumB := f64(&ws.traceSumB, k)

	res := &Result{}
	stable := 0
	for t := 1; t <= o.MaxIterations; t++ {
		if t == nextRestart {
			for i := range sumX {
				sumX[i] = 0
			}
			for i := range sumB {
				sumB[i] = 0
			}
			epochStart = t
			nextRestart *= 2
			stable = 0
		}
		span := float64(t - epochStart + 1)
		theta := o.StepA / (o.StepB + o.StepC*float64(t))

		// --- Step 3, SUB1: shortest path under link costs lambda, then
		// gamma = U'^{-1}(p_min) with U = ln, i.e. gamma = 1/p_min (12).
		sg.ForwardGraphInto(&ws.g, lambda)
		path, pMin, ok := ws.pf.ShortestPath(&ws.g, sg.Src, sg.Dst)
		if !ok {
			return nil, &ErrUnreachable{Src: sg.Nodes[sg.Src], Dst: sg.Nodes[sg.Dst]}
		}
		gamma := 1.0 // cap at capacity: gamma in (0, C]
		if pMin > 1 {
			gamma = 1 / pMin
		}
		xt := f64(&ws.xt, nl)
		onPath := pathLinkIndicesInto(sg, path, ints(&ws.onPath, len(path)))
		for _, li := range onPath {
			xt[li] = gamma
		}
		for li := range sumX {
			sumX[li] += xt[li]
			avgX[li] = sumX[li] / span // primal recovery (13)
			traceSumX[li] += xt[li]
		}

		// --- Step 4, SUB2: proximal update of b (17) and congestion price
		// update (15). w_i = sum_j lambda_ij p_ij over out-links of i.
		w := f64(&ws.w, k)
		for li, l := range sg.Links {
			w[l.From] += lambda[li] * l.Prob
		}
		newB := f64(&ws.newB, k)
		for i := 0; i < k; i++ {
			if i == sg.Dst {
				continue
			}
			grad := w[i] - beta[i]
			for _, j := range sg.Neighbors(i) {
				grad -= beta[j]
			}
			nb := b[i] + grad/(2*o.Sigma)*theta
			// Loose bounds 0 <= b_i <= C keep iterates bounded (Sec. 3.3).
			if nb < 0 {
				nb = 0
			}
			if nb > 1 {
				nb = 1
			}
			newB[i] = nb
		}
		copy(b, newB)
		for i := 0; i < k; i++ {
			if i == sg.Src {
				continue // no receiver constraint at the source
			}
			viol := b[i] - 1 // b_i + sum_{j in N(i)} b_j - C
			for _, j := range sg.Neighbors(i) {
				viol += b[j]
			}
			beta[i] = math.Max(0, beta[i]+theta*viol)
		}
		copy(prevAvgB, avgB)
		for i := 0; i < k; i++ {
			sumB[i] += b[i]
			avgB[i] = sumB[i] / span // primal recovery (18)
			traceSumB[i] += b[i]
		}

		// --- Step 5: Lagrange multiplier update (8) with the raw iterates.
		for li, l := range sg.Links {
			slack := b[l.From]*l.Prob - xt[li]
			lambda[li] = math.Max(0, lambda[li]-theta*slack)
		}

		if o.RecordTrace {
			snap := Snapshot{Iteration: t, B: make([]float64, k)}
			tAvgX := make([]float64, nl)
			for li := range traceSumX {
				tAvgX[li] = traceSumX[li] / float64(t)
			}
			for i := range traceSumB {
				snap.B[i] = traceSumB[i] / float64(t) * o.Capacity
			}
			snap.Gamma = recoveredGamma(sg, tAvgX) * o.Capacity
			res.Trace = append(res.Trace, snap)
		}

		// Convergence: recovered rates stable for Window iterations within
		// the current averaging epoch (epoch restarts reset the counter).
		maxDelta := 0.0
		for i := range avgB {
			if d := math.Abs(avgB[i] - prevAvgB[i]); d > maxDelta {
				maxDelta = d
			}
		}
		res.Iterations = t
		if t-epochStart >= 1 && maxDelta < o.Tolerance {
			stable++
			if stable >= o.Window {
				res.Converged = true
				break
			}
		} else {
			stable = 0
		}
	}

	res.B = make([]float64, k)
	for i := range avgB {
		res.B[i] = avgB[i] * o.Capacity
	}
	res.X = make([]float64, nl)
	for li := range avgX {
		res.X[li] = avgX[li] * o.Capacity
	}
	res.Gamma = recoveredGamma(sg, avgX) * o.Capacity
	return res, nil
}

// SupportingRates returns a copy of r.B raised where necessary so that the
// broadcast-support constraint (5) holds against the recovered flows:
// b_i >= x_ij / p_ij for every out-link. The rate vector and the flow
// vector are recovered by independent ergodic averages, and on degenerate
// sessions (multiple primal optima) the raw b iterates can sit at zero for
// nodes whose recovered flows still carry traffic; a protocol driving
// transmitters from such a vector would silence forwarders the routing
// scheme depends on. The result generally violates the MAC constraint (4)
// slightly and should be passed through RescaleFeasible.
func (r *Result) SupportingRates(sg *Subgraph) []float64 {
	b := append([]float64(nil), r.B...)
	for li, l := range sg.Links {
		if need := r.X[li] / l.Prob; need > b[l.From] {
			b[l.From] = need
		}
	}
	return b
}

// recoveredGamma reads the throughput off the recovered flows: the net flow
// out of the source.
func recoveredGamma(sg *Subgraph, x []float64) float64 {
	g := 0.0
	for _, li := range sg.Out(sg.Src) {
		g += x[li]
	}
	for _, li := range sg.In(sg.Src) {
		g -= x[li]
	}
	return g
}

// pathLinkIndices maps a node path to the indices of its links.
func pathLinkIndices(sg *Subgraph, path []int) []int {
	return pathLinkIndicesInto(sg, path, make([]int, 0, len(path)-1))
}

// pathLinkIndicesInto is pathLinkIndices appending into a caller-supplied
// buffer (which must be empty) so hot loops can reuse storage.
func pathLinkIndicesInto(sg *Subgraph, path, idx []int) []int {
	for h := 0; h+1 < len(path); h++ {
		from, to := path[h], path[h+1]
		for _, li := range sg.Out(from) {
			if sg.Links[li].To == to {
				idx = append(idx, li)
				break
			}
		}
	}
	return idx
}

// RescaleFeasible scales the broadcast-rate vector b (bytes/s) by the
// largest factor that keeps the broadcast MAC constraint (4) satisfied at
// every receiver: "feasible schedules can be generated by rescaling the
// broadcast rate" (Sec. 3.2). An infeasible vector is scaled down to the
// boundary; a strictly interior vector — the usual outcome of finitely many
// subgradient iterations, whose recovered averages undershoot the optimum —
// is scaled up to it, which preserves the optimized rate *proportions* while
// reclaiming the idle capacity the optimum would use. Individual rates are
// additionally clamped to the channel capacity. It returns the scaled copy
// and the factor applied.
func RescaleFeasible(sg *Subgraph, b []float64, capacity float64) ([]float64, float64) {
	scale := math.Inf(1)
	for i := 0; i < sg.Size(); i++ {
		if i == sg.Src {
			continue
		}
		load := b[i]
		for _, j := range sg.Neighbors(i) {
			load += b[j]
		}
		if load > 0 {
			if s := capacity / load; s < scale {
				scale = s
			}
		}
	}
	if math.IsInf(scale, 1) {
		scale = 1 // nothing transmits anywhere near a receiver
	}
	out := make([]float64, len(b))
	for i, v := range b {
		out[i] = v * scale
		if out[i] > capacity {
			out[i] = capacity
		}
	}
	return out, scale
}
