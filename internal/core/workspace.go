package core

import (
	"sync"

	"omnc/internal/graph"
)

// rateWorkspace owns every piece of scratch storage one rate-control Run
// consumes: the primal/dual vectors and recovery sums, SUB1's forwarder
// digraph and Dijkstra scratch, and the per-iteration temporaries. Runs draw
// a workspace from a package-level pool and return it on exit — the same
// arena discipline internal/coding/pool.go applies to packets — so the
// Lagrangian solve allocates nothing per iteration and topology-epoch
// replans recycle the previous epoch's storage instead of re-paying it.
//
// Every slice is re-zeroed on acquisition (f64/ints below), so a pooled
// workspace is indistinguishable from freshly made storage and results stay
// bit-identical with Options.FreshWorkspace set — the property the solver
// reuse tests pin.
type rateWorkspace struct {
	b, lambda, beta      []float64
	sumX, sumB, avgB     []float64
	prevAvgB, avgX       []float64
	traceSumX, traceSumB []float64
	xt, w, newB          []float64
	onPath               []int
	g                    graph.Digraph
	pf                   graph.PathFinder
}

var ratePool = sync.Pool{New: func() any { return new(rateWorkspace) }}

// getRateWorkspace returns a workspace: pooled by default, freshly allocated
// when fresh is set (the fresh-allocate oracle of the reuse property tests).
func getRateWorkspace(fresh bool) *rateWorkspace {
	if fresh {
		return new(rateWorkspace)
	}
	return ratePool.Get().(*rateWorkspace)
}

// putRateWorkspace recycles the workspace unless it was a fresh oracle.
func putRateWorkspace(ws *rateWorkspace, fresh bool) {
	if !fresh {
		ratePool.Put(ws)
	}
}

// f64 returns a zeroed float64 slice of length n backed by *buf, growing it
// when needed. Semantically identical to make([]float64, n); the reuse is
// invisible to the caller.
func f64(buf *[]float64, n int) []float64 {
	s := *buf
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

// ints returns an empty int slice with capacity at least n backed by *buf.
func ints(buf *[]int, n int) []int {
	s := *buf
	if cap(s) < n {
		s = make([]int, 0, n)
	}
	*buf = s[:0]
	return *buf
}
