package core

import (
	"fmt"
	"math"
)

// The multiple-unicast extension the paper's conclusion points to ("the
// rate control framework can be flexibly extended to other scenarios such
// as the multiple-unicast case"): several concurrent sessions share the
// wireless channel, so the broadcast MAC constraint (4) couples them at
// every common receiver. The decomposition of Sec. 3.3 extends naturally —
// each session runs its own SUB1/SUB2 with private Lagrange multipliers,
// while the congestion prices beta are shared across sessions at each node,
// priced against the *aggregate* neighbourhood load. The objective becomes
// proportional fairness, sum of ln(gamma_s), which SUB1 already implements
// per session via U = ln.

// MultiSession is one unicast session of a multiple-unicast problem, with
// its selected forwarder subgraph.
type MultiSession struct {
	// Subgraph is the session's forwarder set (local indices private to
	// the session).
	Subgraph *Subgraph
}

// MultiResult is the outcome of the multiple-unicast rate control.
type MultiResult struct {
	// PerSession holds each session's rate allocation, index-aligned with
	// the input sessions.
	PerSession []*Result
	// Iterations is the number of joint iterations executed.
	Iterations int
	// Converged reports whether every session's recovered rates
	// stabilized.
	Converged bool
}

// MultiRateController jointly allocates rates to several unicast sessions
// over the same physical network.
type MultiRateController struct {
	sessions []MultiSession
	opts     Options
}

// NewMultiRateController builds a joint controller. All subgraphs must
// reference nodes of the same network (their Nodes fields hold the shared
// network IDs).
func NewMultiRateController(sessions []MultiSession, opts Options) (*MultiRateController, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("core: no sessions")
	}
	for i, s := range sessions {
		if s.Subgraph == nil || len(s.Subgraph.Links) == 0 {
			return nil, fmt.Errorf("core: session %d has no forwarder links", i)
		}
	}
	return &MultiRateController{sessions: sessions, opts: opts.withDefaults()}, nil
}

// Run executes the joint algorithm: per-session SUB1 (shortest path under
// private lambda) and SUB2 (proximal rate update), with congestion prices
// maintained per *network node* against the aggregate load of all sessions.
func (mc *MultiRateController) Run() (*MultiResult, error) {
	o := mc.opts
	nSess := len(mc.sessions)

	// Map each session's local nodes onto shared network-node slots.
	type sessState struct {
		sg      *Subgraph
		lambda  []float64
		b       []float64 // raw iterate, capacity units
		sumB    []float64
		avgB    []float64
		prevAvg []float64
		sumX    []float64
		avgX    []float64
	}
	states := make([]*sessState, nSess)
	// Shared congestion price per network node that acts as a receiver in
	// any session.
	beta := make(map[int]float64)
	for si, s := range mc.sessions {
		sg := s.Subgraph
		st := &sessState{
			sg:      sg,
			lambda:  make([]float64, len(sg.Links)),
			b:       make([]float64, sg.Size()),
			sumB:    make([]float64, sg.Size()),
			avgB:    make([]float64, sg.Size()),
			prevAvg: make([]float64, sg.Size()),
			sumX:    make([]float64, len(sg.Links)),
			avgX:    make([]float64, len(sg.Links)),
		}
		for i := range st.b {
			st.b[i] = 0.01
		}
		st.b[sg.Dst] = 0
		states[si] = st
		for local, id := range sg.Nodes {
			if local != sg.Src {
				beta[id] = 0
			}
		}
	}

	// aggregate load at network node id: sum over sessions of
	// (own rate + in-range rates), all in capacity units.
	loadAt := func(id int) float64 {
		load := 0.0
		for _, st := range states {
			for local, nid := range st.sg.Nodes {
				if nid == id {
					load += st.b[local]
					for _, j := range st.sg.Neighbors(local) {
						load += st.b[j]
					}
				}
			}
		}
		return load
	}

	// Shared per-iteration scratch — SUB1's digraph and Dijkstra storage
	// plus the xt/w temporaries — comes from the pooled workspace. Sessions
	// run sequentially within an iteration and each re-zeroes the slices it
	// borrows (f64), so one workspace serves them all with results identical
	// to fresh allocation (Options.FreshWorkspace is the oracle).
	ws := getRateWorkspace(o.FreshWorkspace)
	defer putRateWorkspace(ws, o.FreshWorkspace)

	epochStart := 1
	nextRestart := 2
	stable := 0
	res := &MultiResult{PerSession: make([]*Result, nSess)}
	iterations := 0
	for t := 1; t <= o.MaxIterations; t++ {
		iterations = t
		if t == nextRestart {
			for _, st := range states {
				for i := range st.sumB {
					st.sumB[i] = 0
				}
				for i := range st.sumX {
					st.sumX[i] = 0
				}
			}
			epochStart = t
			nextRestart *= 2
			stable = 0
		}
		span := float64(t - epochStart + 1)
		theta := o.StepA / (o.StepB + o.StepC*float64(t))

		maxDelta := 0.0
		for _, st := range states {
			sg := st.sg
			// SUB1: session-private shortest path and gamma.
			sg.ForwardGraphInto(&ws.g, st.lambda)
			path, pMin, ok := ws.pf.ShortestPath(&ws.g, sg.Src, sg.Dst)
			if !ok {
				return nil, &ErrUnreachable{Src: sg.Nodes[sg.Src], Dst: sg.Nodes[sg.Dst]}
			}
			gamma := 1.0
			if pMin > 1 {
				gamma = 1 / pMin
			}
			xt := f64(&ws.xt, len(sg.Links))
			for _, li := range pathLinkIndicesInto(sg, path, ints(&ws.onPath, len(path))) {
				xt[li] = gamma
			}
			for li := range st.sumX {
				st.sumX[li] += xt[li]
				st.avgX[li] = st.sumX[li] / span
			}

			// SUB2: proximal update against shared congestion prices.
			w := f64(&ws.w, sg.Size())
			for li, l := range sg.Links {
				w[l.From] += st.lambda[li] * l.Prob
			}
			for i := 0; i < sg.Size(); i++ {
				if i == sg.Dst {
					continue
				}
				grad := w[i]
				if i != sg.Src {
					grad -= beta[sg.Nodes[i]]
				}
				for _, j := range sg.Neighbors(i) {
					if j != sg.Src {
						grad -= beta[sg.Nodes[j]]
					}
				}
				nb := st.b[i] + grad/(2*o.Sigma)*theta
				if nb < 0 {
					nb = 0
				}
				if nb > 1 {
					nb = 1
				}
				st.b[i] = nb
			}
			copy(st.prevAvg, st.avgB)
			for i := range st.b {
				st.sumB[i] += st.b[i]
				st.avgB[i] = st.sumB[i] / span
				if d := math.Abs(st.avgB[i] - st.prevAvg[i]); d > maxDelta {
					maxDelta = d
				}
			}

			// Private multiplier update (8).
			for li, l := range sg.Links {
				slack := st.b[l.From]*l.Prob - xt[li]
				st.lambda[li] = math.Max(0, st.lambda[li]-theta*slack)
			}
		}

		// Shared congestion price update (15) against aggregate load.
		for id := range beta {
			viol := loadAt(id) - 1
			beta[id] = math.Max(0, beta[id]+theta*viol)
		}

		if t-epochStart >= 1 && maxDelta < o.Tolerance {
			stable++
			if stable >= o.Window {
				res.Converged = true
				break
			}
		} else {
			stable = 0
		}
	}

	res.Iterations = iterations
	for si, st := range states {
		r := &Result{
			B:          make([]float64, st.sg.Size()),
			X:          make([]float64, len(st.sg.Links)),
			Iterations: iterations,
			Converged:  res.Converged,
		}
		for i := range st.avgB {
			r.B[i] = st.avgB[i] * o.Capacity
		}
		for li := range st.avgX {
			r.X[li] = st.avgX[li] * o.Capacity
		}
		r.Gamma = recoveredGamma(st.sg, st.avgX) * o.Capacity
		res.PerSession[si] = r
	}
	return res, nil
}
