package faults

import (
	"math/rand"
	"sort"

	"omnc/internal/seedmix"
	"omnc/internal/sim"
	"omnc/internal/topology"
	"omnc/internal/trace"
)

// Injector executes a validated Plan as first-class discrete events on a
// sim.Engine, drives the MAC-level consequences (crashed nodes' ports
// detach, flapped links stop delivering, bursty links run their
// Gilbert–Elliott chain as a reception-probability overlay), and notifies
// subscribers at every topology epoch so protocols can re-optimize
// mid-session.
//
// An epoch is a change of the effective topology: a crash, a recovery, or a
// link episode starting or ending. Intra-episode Gilbert–Elliott state flips
// do not bump the epoch — they are channel noise, not topology.
//
// The injector addresses plan events by network node ID; mapNode translates
// those to the engine's MAC addresses (the identity in a full-network
// emulation, the subgraph-local index in an exclusive session). Events whose
// nodes fall outside the mapping still update the injector's own down/link
// state — the plan describes the whole network — but touch no MAC port.
type Injector struct {
	eng     sim.Engine
	mac     *sim.MAC
	rec     trace.Recorder
	mapNode func(int) (int, bool)
	rng     *rand.Rand // Gilbert–Elliott sojourn draws

	epoch    int
	down     map[int]bool
	linkOut  map[[2]int]bool
	recovers map[int][]float64 // per node: scheduled recovery times, sorted
	subs     []func(Event)
}

// NewInjector schedules every event of the plan on the engine. The plan must
// already be validated against the network; rec may be nil.
func NewInjector(eng sim.Engine, mac *sim.MAC, plan *Plan, mapNode func(int) (int, bool), rec trace.Recorder) *Injector {
	inj := &Injector{
		eng:      eng,
		mac:      mac,
		rec:      rec,
		mapNode:  mapNode,
		rng:      rand.New(rand.NewSource(seedmix.Derive(plan.Seed, streamGE))),
		down:     make(map[int]bool),
		linkOut:  make(map[[2]int]bool),
		recovers: make(map[int][]float64),
	}
	for _, ev := range plan.Events {
		if ev.Kind == NodeRecover {
			inj.recovers[ev.Node] = append(inj.recovers[ev.Node], ev.At)
		}
	}
	for n := range inj.recovers {
		sort.Float64s(inj.recovers[n])
	}
	now := eng.Now()
	for _, ev := range plan.Events {
		ev := ev
		delay := ev.At - now
		if delay < 0 {
			delay = 0
		}
		eng.Schedule(delay, func() { inj.fire(ev) })
	}
	return inj
}

// Subscribe registers fn to run after every topology epoch, in subscription
// order, with the MAC already reflecting the new topology.
func (inj *Injector) Subscribe(fn func(Event)) { inj.subs = append(inj.subs, fn) }

// Epoch returns the number of topology changes executed so far.
func (inj *Injector) Epoch() int { return inj.epoch }

// NodeDown reports whether the node is currently crashed.
func (inj *Injector) NodeDown(node int) bool { return inj.down[node] }

// LinkDown reports whether the undirected link (a, b) is inside a flap
// episode. Burst episodes degrade a link but do not take it down.
func (inj *Injector) LinkDown(a, b int) bool { return inj.linkOut[linkKey(a, b)] }

// WillRecover reports whether the plan schedules a recovery of node after
// the current simulated time — the difference between a session stalling
// through an outage and failing for good.
func (inj *Injector) WillRecover(node int) bool {
	times := inj.recovers[node]
	now := inj.eng.Now()
	i := sort.SearchFloat64s(times, now)
	for i < len(times) {
		if times[i] > now {
			return true
		}
		i++
	}
	return false
}

// EffectiveNetwork returns base with the currently-crashed nodes and flapped
// links removed — the topology a fresh route computation should see.
func (inj *Injector) EffectiveNetwork(base *topology.Network) (*topology.Network, error) {
	nw := base
	if len(inj.down) > 0 {
		failed := make([]int, 0, len(inj.down))
		for v := range inj.down {
			failed = append(failed, v)
		}
		sort.Ints(failed)
		var err error
		if nw, err = nw.WithoutNodes(failed...); err != nil {
			return nil, err
		}
	}
	if len(inj.linkOut) > 0 {
		pairs := make([][2]int, 0, len(inj.linkOut))
		for k := range inj.linkOut {
			pairs = append(pairs, k)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		var err error
		if nw, err = nw.WithoutLinks(pairs...); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// emit records a fault event when tracing is enabled. Node carries the
// network node ID (or the link's From endpoint), From the link's To endpoint
// for link events, and Generation the epoch the event produced.
func (inj *Injector) emit(t trace.EventType, node, from int) {
	if inj.rec == nil {
		return
	}
	inj.rec.Record(trace.Event{
		Time:       inj.eng.Now(),
		Type:       t,
		Node:       node,
		From:       from,
		Generation: inj.epoch,
	})
}

// notify bumps the epoch and runs the subscribers.
func (inj *Injector) notify(ev Event) {
	inj.epoch++
	for _, fn := range inj.subs {
		fn(ev)
	}
}

// fire executes one plan event.
func (inj *Injector) fire(ev Event) {
	switch ev.Kind {
	case NodeCrash:
		inj.down[ev.Node] = true
		if macID, ok := inj.mapNode(ev.Node); ok {
			inj.mac.SetNodeDown(macID, true)
		}
		inj.emit(trace.EventNodeCrash, ev.Node, -1)
		inj.notify(ev)
	case NodeRecover:
		delete(inj.down, ev.Node)
		if macID, ok := inj.mapNode(ev.Node); ok {
			inj.mac.SetNodeDown(macID, false)
		}
		inj.emit(trace.EventNodeRecover, ev.Node, -1)
		inj.notify(ev)
	case LinkFlap:
		inj.linkOut[linkKey(ev.From, ev.To)] = true
		inj.setLinkFactor(ev.From, ev.To, 0)
		inj.emit(trace.EventLinkDown, ev.From, ev.To)
		inj.notify(ev)
		end := ev
		end.Kind = LinkRestore
		inj.eng.Schedule(ev.Duration, func() {
			delete(inj.linkOut, linkKey(end.From, end.To))
			inj.clearLinkFactor(end.From, end.To)
			inj.emit(trace.EventLinkUp, end.From, end.To)
			inj.notify(end)
		})
	case BurstLoss:
		inj.startBurst(ev)
	}
}

// startBurst opens a Gilbert–Elliott episode: the link starts in the Bad
// state and alternates with exponential sojourns until the episode expires.
func (inj *Injector) startBurst(ev Event) {
	factor := ev.BadFactor
	if factor <= 0 {
		factor = 0.05
	}
	meanGood, meanBad := ev.MeanGood, ev.MeanBad
	if meanGood <= 0 {
		meanGood = 0.5
	}
	if meanBad <= 0 {
		meanBad = 0.1
	}
	until := inj.eng.Now() + ev.Duration
	inj.setLinkFactor(ev.From, ev.To, factor)
	inj.emit(trace.EventBurstStart, ev.From, ev.To)
	inj.notify(ev)

	// The chain's state flips are channel noise: they adjust the overlay
	// factor but bump no epoch.
	var flip func(bad bool)
	flip = func(bad bool) {
		if inj.eng.Now() >= until {
			inj.clearLinkFactor(ev.From, ev.To)
			end := ev
			end.Kind = BurstEnd
			inj.emit(trace.EventBurstEnd, ev.From, ev.To)
			inj.notify(end)
			return
		}
		if bad {
			inj.setLinkFactor(ev.From, ev.To, factor)
		} else {
			inj.clearLinkFactor(ev.From, ev.To)
		}
		mean := meanGood
		if bad {
			mean = meanBad
		}
		sojourn := inj.rng.ExpFloat64() * mean
		if remaining := until - inj.eng.Now(); sojourn > remaining {
			sojourn = remaining
		}
		inj.eng.Schedule(sojourn, func() { flip(!bad) })
	}
	sojourn := inj.rng.ExpFloat64() * meanBad
	if sojourn > ev.Duration {
		sojourn = ev.Duration
	}
	inj.eng.Schedule(sojourn, func() { flip(false) })
}

// setLinkFactor applies a reception-probability multiplier to both
// directions of the link, mapped onto the MAC's address space.
func (inj *Injector) setLinkFactor(a, b int, factor float64) {
	ma, okA := inj.mapNode(a)
	mb, okB := inj.mapNode(b)
	if !okA || !okB {
		return
	}
	inj.mac.SetLinkFactor(ma, mb, factor)
	inj.mac.SetLinkFactor(mb, ma, factor)
}

func (inj *Injector) clearLinkFactor(a, b int) {
	ma, okA := inj.mapNode(a)
	mb, okB := inj.mapNode(b)
	if !okA || !okB {
		return
	}
	inj.mac.ClearLinkFactor(ma, mb)
	inj.mac.ClearLinkFactor(mb, ma)
}
