package faults

import (
	"errors"
	"testing"
)

// FuzzDecodeFaultPlan throws arbitrary bytes at the plan decoder. The
// contract under test: DecodePlan never panics, and every rejection — parse
// failure or semantic violation — wraps ErrInvalidPlan so callers can match
// it with errors.Is. An accepted plan must re-encode and decode to an
// equally valid plan (the validator is deterministic).
func FuzzDecodeFaultPlan(f *testing.F) {
	seeds := []string{
		`{"events": []}`,
		`{"seed": 7, "events": [{"at": 1, "kind": "crash", "node": 2}, {"at": 3, "kind": "recover", "node": 2}]}`,
		`{"events": [{"at": 0, "kind": "flap", "from": 0, "to": 1, "dur": 2}]}`,
		`{"events": [{"at": 0.5, "kind": "burst", "from": 3, "to": 4, "dur": 1, "bad_factor": 0.2, "mean_good": 0.4, "mean_bad": 0.1}]}`,
		// Malformed inputs the decoder must reject without panicking.
		`{"events": [{"at": 5, "kind": "crash", "node": 1}, {"at": 4, "kind": "crash", "node": 2}]}`,
		`{"events": [{"at": 1, "kind": "recover", "node": 9}]}`,
		`{"events": [{"at": 1, "kind": "flap", "from": 2, "to": 2, "dur": 1}]}`,
		`{"events": [{"at": 1, "kind": "flap", "from": 1, "to": 2, "dur": 1e999}]}`,
		`{"events": [{"at": -3, "kind": "crash", "node": 0}]}`,
		`{"events": [{"at": 1, "kind": "burst", "from": 1, "to": 2, "dur": 1, "bad_factor": 2}]}`,
		`{"events": [{"at": 1, "kind": "flap-end", "from": 1, "to": 2, "dur": 1}]}`,
		`{"events"`,
		`[]`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePlan(data)
		if err != nil {
			if !errors.Is(err, ErrInvalidPlan) {
				t.Fatalf("rejection %v does not wrap ErrInvalidPlan", err)
			}
			return
		}
		// Accepted: the plan must survive a round trip and still validate.
		out, err := p.Encode()
		if err != nil {
			t.Fatalf("accepted plan failed to encode: %v", err)
		}
		again, err := DecodePlan(out)
		if err != nil {
			t.Fatalf("accepted plan failed to re-decode: %v", err)
		}
		if err := again.Validate(0); err != nil {
			t.Fatalf("re-decoded plan no longer validates: %v", err)
		}
	})
}
