// Package faults is the deterministic fault-injection subsystem: a Plan is
// an ordered set of timed fault events — node crashes and recoveries, link
// flaps (hard outages), and bursty-loss episodes (a two-state
// Gilbert–Elliott overlay on the Bernoulli PHY) — that an Injector executes
// as first-class discrete events on a sim.Engine. The protocol layer
// subscribes to the injector's topology epochs and re-optimizes mid-session:
// OMNC re-runs its rate solve, MORE/oldMORE recompute credits, ETX
// re-routes, and a session whose destination dies for good finishes with a
// typed error instead of hanging.
//
// Everything is reproducible: a plan fires at fixed simulated times, and the
// only randomness — Gilbert–Elliott sojourn times and RandomPlan sampling —
// is seeded through internal/seedmix streams.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Kind classifies fault events.
type Kind string

// Fault-event kinds accepted in input plans.
const (
	// NodeCrash removes a node from the network: its transmitter falls
	// silent mid-frame, its receiver stops absorbing deliveries, and its
	// volatile protocol state (buffered packets, decoder rank) is lost.
	NodeCrash Kind = "crash"
	// NodeRecover brings a crashed node back with empty volatile state.
	NodeRecover Kind = "recover"
	// LinkFlap takes the undirected link (From, To) down hard for Duration
	// seconds: no delivery in either direction, though the radios still
	// interfere.
	LinkFlap Kind = "flap"
	// BurstLoss runs a two-state Gilbert–Elliott episode on the undirected
	// link (From, To) for Duration seconds: the link alternates between a
	// Good state (nominal Bernoulli reception) and a Bad state whose
	// reception probability is multiplied by BadFactor, with exponential
	// sojourn times of mean MeanGood and MeanBad seconds.
	BurstLoss Kind = "burst"
)

// Kinds synthesized by the Injector when an episode ends. They appear in
// subscriber notifications and traces but are invalid in input plans.
const (
	LinkRestore Kind = "flap-end"
	BurstEnd    Kind = "burst-end"
)

// Event is one timed fault.
type Event struct {
	// At is the simulated time in seconds the event fires.
	At float64 `json:"at"`
	// Kind selects the fault type.
	Kind Kind `json:"kind"`
	// Node is the network node ID of a crash or recover.
	Node int `json:"node,omitempty"`
	// From and To are the endpoints of a link flap or burst episode; the
	// link is undirected (both directions are affected).
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Duration is the episode length in seconds (flap and burst only).
	Duration float64 `json:"dur,omitempty"`
	// BadFactor multiplies the link's reception probability while a burst
	// episode sits in the Bad state; 0 selects the default 0.05.
	BadFactor float64 `json:"bad_factor,omitempty"`
	// MeanGood and MeanBad are the mean Gilbert–Elliott sojourn times in
	// seconds; 0 selects the defaults (0.5 s good, 0.1 s bad).
	MeanGood float64 `json:"mean_good,omitempty"`
	MeanBad  float64 `json:"mean_bad,omitempty"`
}

// Plan is an ordered fault schedule. The zero value (no events) is valid and
// injects nothing.
type Plan struct {
	// Seed drives the plan's only random process, the Gilbert–Elliott
	// sojourn draws of burst episodes.
	Seed int64 `json:"seed,omitempty"`
	// Events fire in order; times must be non-decreasing.
	Events []Event `json:"events"`
}

// ErrInvalidPlan matches any rejected fault plan: malformed JSON,
// out-of-order or overlapping events, out-of-range nodes, non-finite times.
// Match with errors.Is.
var ErrInvalidPlan = errors.New("faults: invalid plan")

// linkKey returns the canonical (unordered) key of a link.
func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Validate checks the plan's structure. nodes is the network size; pass 0 to
// skip the range checks (DecodePlan does, since the target network is not
// known yet). Failures wrap ErrInvalidPlan.
//
// Rules: event times are finite, non-negative and non-decreasing; a node may
// only crash while up and recover while down (overlapping or unmatched
// crash/recover pairs are rejected); flap and burst episodes need a positive
// finite Duration and may not overlap an earlier episode on the same
// undirected link; Gilbert–Elliott parameters are finite, with BadFactor in
// [0, 1).
func (p *Plan) Validate(nodes int) error {
	if p == nil {
		return nil
	}
	bad := func(i int, format string, args ...interface{}) error {
		return fmt.Errorf("%w: event %d: %s", ErrInvalidPlan, i, fmt.Sprintf(format, args...))
	}
	checkNode := func(i, v int, what string) error {
		if v < 0 || (nodes > 0 && v >= nodes) {
			return bad(i, "%s %d out of range [0,%d)", what, v, nodes)
		}
		return nil
	}
	prev := 0.0
	down := make(map[int]bool)
	episodeEnd := make(map[[2]int]float64)
	for i, ev := range p.Events {
		if math.IsNaN(ev.At) || math.IsInf(ev.At, 0) || ev.At < 0 {
			return bad(i, "time %v is not a finite non-negative number", ev.At)
		}
		if ev.At < prev {
			return bad(i, "time %v precedes event %d at %v (events must be ordered)", ev.At, i-1, prev)
		}
		prev = ev.At
		switch ev.Kind {
		case NodeCrash:
			if err := checkNode(i, ev.Node, "node"); err != nil {
				return err
			}
			if down[ev.Node] {
				return bad(i, "node %d crashes while already down (overlapping crash)", ev.Node)
			}
			down[ev.Node] = true
		case NodeRecover:
			if err := checkNode(i, ev.Node, "node"); err != nil {
				return err
			}
			if !down[ev.Node] {
				return bad(i, "node %d recovers while up (unmatched recover)", ev.Node)
			}
			delete(down, ev.Node)
		case LinkFlap, BurstLoss:
			if err := checkNode(i, ev.From, "link endpoint"); err != nil {
				return err
			}
			if err := checkNode(i, ev.To, "link endpoint"); err != nil {
				return err
			}
			if ev.From == ev.To {
				return bad(i, "link endpoints coincide (%d)", ev.From)
			}
			if !(ev.Duration > 0) || math.IsInf(ev.Duration, 0) {
				return bad(i, "episode duration %v must be positive and finite", ev.Duration)
			}
			key := linkKey(ev.From, ev.To)
			if end, busy := episodeEnd[key]; busy && ev.At < end {
				return bad(i, "episode on link (%d,%d) overlaps one ending at %v", ev.From, ev.To, end)
			}
			episodeEnd[key] = ev.At + ev.Duration
			if ev.Kind == BurstLoss {
				if ev.BadFactor < 0 || ev.BadFactor >= 1 || math.IsNaN(ev.BadFactor) {
					return bad(i, "bad factor %v outside [0,1)", ev.BadFactor)
				}
				if ev.MeanGood < 0 || math.IsNaN(ev.MeanGood) || math.IsInf(ev.MeanGood, 0) {
					return bad(i, "mean good sojourn %v must be finite and non-negative", ev.MeanGood)
				}
				if ev.MeanBad < 0 || math.IsNaN(ev.MeanBad) || math.IsInf(ev.MeanBad, 0) {
					return bad(i, "mean bad sojourn %v must be finite and non-negative", ev.MeanBad)
				}
			}
		default:
			return bad(i, "unknown kind %q", ev.Kind)
		}
	}
	return nil
}

// DecodePlan parses a JSON fault plan and validates its structure (range
// checks against a concrete network happen at install time). It never
// panics; all failures wrap ErrInvalidPlan.
func DecodePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidPlan, err)
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return &p, nil
}

// Encode serializes the plan as JSON (the inverse of DecodePlan).
func (p *Plan) Encode() ([]byte, error) {
	return json.Marshal(p)
}
