package faults

import (
	"errors"
	"reflect"
	"testing"
)

func TestValidateAcceptsWellFormedPlan(t *testing.T) {
	p := &Plan{Seed: 3, Events: []Event{
		{At: 1, Kind: NodeCrash, Node: 4},
		{At: 2, Kind: LinkFlap, From: 1, To: 2, Duration: 3},
		{At: 2, Kind: BurstLoss, From: 2, To: 5, Duration: 4, BadFactor: 0.1},
		{At: 6, Kind: NodeRecover, Node: 4},
		{At: 7, Kind: LinkFlap, From: 2, To: 1, Duration: 1}, // first flap ended at 5
	}}
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(0); err != nil {
		t.Fatalf("range checks disabled: %v", err)
	}
}

func TestValidateNilAndEmptyPlans(t *testing.T) {
	var p *Plan
	if err := p.Validate(5); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if err := new(Plan).Validate(5); err != nil {
		t.Fatalf("empty plan: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	inf := 1.0
	for i := 0; i < 12; i++ {
		inf *= 1e30 // +Inf without importing math
	}
	cases := map[string]*Plan{
		"out of order": {Events: []Event{
			{At: 5, Kind: NodeCrash, Node: 1},
			{At: 4, Kind: NodeRecover, Node: 1},
		}},
		"negative time": {Events: []Event{{At: -1, Kind: NodeCrash, Node: 1}}},
		"infinite time": {Events: []Event{{At: inf, Kind: NodeCrash, Node: 1}}},
		"double crash": {Events: []Event{
			{At: 1, Kind: NodeCrash, Node: 1},
			{At: 2, Kind: NodeCrash, Node: 1},
		}},
		"unmatched recover": {Events: []Event{{At: 1, Kind: NodeRecover, Node: 1}}},
		"node out of range": {Events: []Event{{At: 1, Kind: NodeCrash, Node: 7}}},
		"negative node":     {Events: []Event{{At: 1, Kind: NodeCrash, Node: -2}}},
		"self link":         {Events: []Event{{At: 1, Kind: LinkFlap, From: 2, To: 2, Duration: 1}}},
		"zero duration":     {Events: []Event{{At: 1, Kind: LinkFlap, From: 1, To: 2}}},
		"overlapping episodes": {Events: []Event{
			{At: 1, Kind: LinkFlap, From: 1, To: 2, Duration: 5},
			{At: 3, Kind: BurstLoss, From: 2, To: 1, Duration: 1}, // same unordered link
		}},
		"bad factor one":   {Events: []Event{{At: 1, Kind: BurstLoss, From: 1, To: 2, Duration: 1, BadFactor: 1}}},
		"negative sojourn": {Events: []Event{{At: 1, Kind: BurstLoss, From: 1, To: 2, Duration: 1, MeanGood: -1}}},
		"unknown kind":     {Events: []Event{{At: 1, Kind: "meteor", Node: 1}}},
		"synthesized kind": {Events: []Event{{At: 1, Kind: LinkRestore, From: 1, To: 2, Duration: 1}}},
	}
	for name, p := range cases {
		err := p.Validate(5)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("%s: error %v does not wrap ErrInvalidPlan", name, err)
		}
	}
}

func TestDecodePlanRoundTrip(t *testing.T) {
	p := &Plan{Seed: 11, Events: []Event{
		{At: 1.5, Kind: NodeCrash, Node: 3},
		{At: 2, Kind: BurstLoss, From: 1, To: 4, Duration: 2.5, BadFactor: 0.2, MeanGood: 0.4, MeanBad: 0.05},
		{At: 9, Kind: NodeRecover, Node: 3},
	}}
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodePlanRejectsMalformedInput(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":     `{"events": [`,
		"wrong type":   `{"events": [{"at": "soon", "kind": "crash"}]}`,
		"invalid plan": `{"events": [{"at": 2, "kind": "recover", "node": 1}]}`,
	} {
		if _, err := DecodePlan([]byte(doc)); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("%s: error %v does not wrap ErrInvalidPlan", name, err)
		}
	}
}

func TestRandomPlanDeterministicAndValid(t *testing.T) {
	cfg := RandomPlanConfig{
		Nodes:     []int{2, 3, 5, 8},
		Links:     [][2]int{{2, 3}, {3, 5}, {5, 8}},
		Horizon:   100,
		CrashRate: 0.05, FlapRate: 0.05, BurstRate: 0.05,
		BadFactor: 0.1,
		Seed:      42,
	}
	a, err := RandomPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config, different plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("rates 0.05 over 100 s produced no events")
	}
	if err := a.Validate(9); err != nil {
		t.Fatal(err)
	}
	// Only input kinds may appear, and candidates are respected.
	nodeOK := map[int]bool{2: true, 3: true, 5: true, 8: true}
	for _, ev := range a.Events {
		switch ev.Kind {
		case NodeCrash, NodeRecover:
			if !nodeOK[ev.Node] {
				t.Fatalf("event targets non-candidate node %d", ev.Node)
			}
		case LinkFlap, BurstLoss:
			if !nodeOK[ev.From] || !nodeOK[ev.To] {
				t.Fatalf("episode targets non-candidate link (%d,%d)", ev.From, ev.To)
			}
		default:
			t.Fatalf("random plan emitted kind %q", ev.Kind)
		}
	}
	// A different seed must give a different schedule.
	cfg.Seed = 43
	c, err := RandomPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds, identical plans")
	}
}

func TestRandomPlanRejectsBadHorizon(t *testing.T) {
	if _, err := RandomPlan(RandomPlanConfig{}); !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("zero horizon: %v", err)
	}
}
