package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"omnc/internal/seedmix"
)

// RNG streams derived from RandomPlanConfig.Seed via seedmix.Derive: each
// fault process samples from its own stream, so tuning one rate never
// perturbs another's schedule.
const (
	streamCrash int64 = iota + 1
	streamFlap
	streamBurst
	streamGE // the Injector's Gilbert–Elliott sojourn stream
)

// RandomPlanConfig parameterizes RandomPlan. Rates are Poisson intensities
// in events per second; zero disables that fault process.
type RandomPlanConfig struct {
	// Nodes are the candidate node IDs for crash/recover events. Protected
	// nodes (say, a session's endpoints) are simply left out.
	Nodes []int
	// Links are the candidate undirected links for flap and burst episodes.
	Links [][2]int
	// Horizon bounds event start times in seconds.
	Horizon float64
	// CrashRate is the node-crash intensity; MeanDowntime the mean
	// exponential crash-to-recover delay (a recovery drawn past the horizon
	// is dropped: the node stays down).
	CrashRate    float64
	MeanDowntime float64
	// FlapRate and MeanFlap drive hard link outages.
	FlapRate float64
	MeanFlap float64
	// BurstRate and MeanBurst drive Gilbert–Elliott episodes with the given
	// Bad-state factor (0 selects the Injector default).
	BurstRate float64
	MeanBurst float64
	BadFactor float64
	// Seed makes the plan reproducible.
	Seed int64
}

// RandomPlan samples a valid fault plan: exponential inter-arrival times per
// fault process, crashes only of currently-up candidates (each paired with a
// recovery when the drawn downtime fits the horizon), and episodes that
// never overlap on a link. The result always passes Validate.
func RandomPlan(cfg RandomPlanConfig) (*Plan, error) {
	if !(cfg.Horizon > 0) {
		return nil, fmt.Errorf("%w: horizon %v must be positive", ErrInvalidPlan, cfg.Horizon)
	}
	if cfg.MeanDowntime <= 0 {
		cfg.MeanDowntime = cfg.Horizon / 5
	}
	if cfg.MeanFlap <= 0 {
		cfg.MeanFlap = cfg.Horizon / 10
	}
	if cfg.MeanBurst <= 0 {
		cfg.MeanBurst = cfg.Horizon / 10
	}
	p := &Plan{Seed: seedmix.Derive(cfg.Seed, streamGE)}

	// Crashes: each drawn arrival picks an up candidate uniformly; its
	// recovery lands MeanDowntime later in expectation.
	if cfg.CrashRate > 0 && len(cfg.Nodes) > 0 {
		rng := rand.New(rand.NewSource(seedmix.Derive(cfg.Seed, streamCrash)))
		downUntil := make(map[int]float64, len(cfg.Nodes))
		for t := rng.ExpFloat64() / cfg.CrashRate; t < cfg.Horizon; t += rng.ExpFloat64() / cfg.CrashRate {
			node := cfg.Nodes[rng.Intn(len(cfg.Nodes))]
			if until, down := downUntil[node]; down && t < until {
				continue // still down: no overlapping crash
			}
			up := t + rng.ExpFloat64()*cfg.MeanDowntime
			p.Events = append(p.Events, Event{At: t, Kind: NodeCrash, Node: node})
			if up < cfg.Horizon {
				p.Events = append(p.Events, Event{At: up, Kind: NodeRecover, Node: node})
				downUntil[node] = up
			} else {
				downUntil[node] = cfg.Horizon // stays down for good
			}
		}
	}

	// Link episodes: flaps and bursts share one non-overlap budget per link
	// (Validate rejects overlapping episodes regardless of kind).
	busyUntil := make(map[[2]int]float64, len(cfg.Links))
	episode := func(stream int64, rate, mean float64, kind Kind) {
		if rate <= 0 || len(cfg.Links) == 0 {
			return
		}
		rng := rand.New(rand.NewSource(seedmix.Derive(cfg.Seed, stream)))
		for t := rng.ExpFloat64() / rate; t < cfg.Horizon; t += rng.ExpFloat64() / rate {
			l := cfg.Links[rng.Intn(len(cfg.Links))]
			dur := rng.ExpFloat64() * mean
			if dur <= 0 {
				continue
			}
			key := linkKey(l[0], l[1])
			if t < busyUntil[key] {
				continue // would overlap the running episode
			}
			busyUntil[key] = t + dur
			ev := Event{At: t, Kind: kind, From: l[0], To: l[1], Duration: dur}
			if kind == BurstLoss {
				ev.BadFactor = cfg.BadFactor
			}
			p.Events = append(p.Events, ev)
		}
	}
	episode(streamFlap, cfg.FlapRate, cfg.MeanFlap, LinkFlap)
	episode(streamBurst, cfg.BurstRate, cfg.MeanBurst, BurstLoss)

	// Merge the per-process schedules into one time-ordered plan. The sort
	// is stable so equal-time events keep their generation order (crash
	// before its own recovery in particular).
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	if err := p.Validate(0); err != nil {
		// The construction maintains every invariant; a failure is a bug.
		return nil, err
	}
	return p, nil
}
