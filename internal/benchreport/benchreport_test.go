package benchreport

import (
	"context"
	"strings"
	"testing"
)

// TestCheckCommittedReports re-validates every committed BENCH_<n>.json the
// way CI does — the library move out of cmd/omnc-bench must not loosen a
// single gate.
func TestCheckCommittedReports(t *testing.T) {
	for _, name := range []string{"BENCH_2.json", "BENCH_3.json", "BENCH_4.json", "BENCH_5.json"} {
		if err := CheckFile("../../" + name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCheckRejectsGarbage(t *testing.T) {
	if err := Check([]byte("{")); err == nil {
		t.Fatal("malformed JSON must fail")
	}
	if err := Check([]byte(`{"schema":"omnc-bench/v999"}`)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema must fail, got %v", err)
	}
}

func TestRecordRejectsZeroIters(t *testing.T) {
	if _, err := Record(context.Background(), 0); err == nil {
		t.Fatal("zero iterations must fail")
	}
}

func TestRecordHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Record(ctx, 1); err == nil {
		t.Fatal("cancelled context must abort the recording")
	}
}
