package benchreport

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestCheckCommittedReports re-validates every committed BENCH_<n>.json the
// way CI does — the library move out of cmd/omnc-bench must not loosen a
// single gate.
func TestCheckCommittedReports(t *testing.T) {
	for _, name := range []string{"BENCH_2.json", "BENCH_3.json", "BENCH_4.json", "BENCH_5.json", "BENCH_6.json"} {
		if err := CheckFile("../../" + name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// mutateCommitted loads BENCH_6.json, applies mut, and returns the
// re-serialized report — a passing report one edit away from the case under
// test, so each gate is exercised in isolation.
func mutateCommitted(t *testing.T, mut func(*Report)) []byte {
	t.Helper()
	buf, err := os.ReadFile("../../BENCH_6.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	mut(&rep)
	out, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func (r *Report) result(name string) *Result {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// TestCheckFieldVintageGates pins the BENCH_6 vintage: once field entries
// are present, the OMNC session must hold the absolute workspace-era alloc
// ceiling (far below the fraction-of-baseline gate) and every field entry
// must stay within fieldAllocGate of it.
func TestCheckFieldVintageGates(t *testing.T) {
	overCeiling := mutateCommitted(t, func(rep *Report) {
		// Over the absolute ceiling but still far under the 50%-of-baseline
		// gate (36498), so only the new gate can catch it.
		rep.result("SessionOMNC").AllocsPerOp = omncAllocCeiling + 1
	})
	if err := Check(overCeiling); err == nil || !strings.Contains(err.Error(), "workspace-era ceiling") {
		t.Fatalf("OMNC over the absolute ceiling must fail the ceiling gate, got %v", err)
	}

	fieldOverGate := mutateCommitted(t, func(rep *Report) {
		omnc := rep.result("SessionOMNC")
		rep.result("SessionField/16").AllocsPerOp = int64(float64(omnc.AllocsPerOp)*fieldAllocGate) + 1
	})
	if err := Check(fieldOverGate); err == nil || !strings.Contains(err.Error(), "SessionField/16") {
		t.Fatalf("field entry over %gx OMNC must fail its gate, got %v", fieldAllocGate, err)
	}

	// Dropping the field entries reverts the report to an earlier vintage:
	// neither new gate applies, so a pre-BENCH_6 allocs/op level passes again.
	earlierVintage := mutateCommitted(t, func(rep *Report) {
		kept := rep.Benchmarks[:0]
		for _, r := range rep.Benchmarks {
			if !strings.HasPrefix(r.Name, "SessionField/") {
				kept = append(kept, r)
			}
		}
		rep.Benchmarks = kept
		rep.result("SessionOMNC").AllocsPerOp = omncAllocCeiling + 1
	})
	if err := Check(earlierVintage); err != nil {
		t.Fatalf("report without field entries must not carry the ceiling gate: %v", err)
	}
}

func TestCheckRejectsGarbage(t *testing.T) {
	if err := Check([]byte("{")); err == nil {
		t.Fatal("malformed JSON must fail")
	}
	if err := Check([]byte(`{"schema":"omnc-bench/v999"}`)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema must fail, got %v", err)
	}
}

func TestRecordRejectsZeroIters(t *testing.T) {
	if _, err := Record(context.Background(), 0); err == nil {
		t.Fatal("zero iterations must fail")
	}
}

func TestRecordHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Record(ctx, 1); err == nil {
		t.Fatal("cancelled context must abort the recording")
	}
}
