// Package benchreport records and validates the repo's session benchmark
// trajectory (the BENCH_<n>.json reports at the repo root). It is the
// library behind cmd/omnc-bench and the jobs service's "bench" kind: both
// surfaces run the exact scenarios behind `go test -bench='^Benchmark
// (Multi)?Session'` (see internal/sessionbench) and emit ns/op, allocs/op
// and B/op next to the recorded baselines, so the allocation wins stay
// auditable numbers instead of claims — and a BENCH re-record on a >= 4-CPU
// machine can be queued as a daemon job whose landed report carries the
// recording machine's CPU count.
package benchreport

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"omnc/internal/sessionbench"
)

// SchemaVersion identifies the report layout. Bump only when a field
// changes meaning; adding fields is backward compatible.
const SchemaVersion = "omnc-bench/v1"

// Report is the top-level BENCH_<n>.json document.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	// CPUs is runtime.NumCPU() on the recording machine. The parallel-engine
	// speedup gate only binds when this is >= 4; the determinism gate binds
	// regardless. Absent (0) in reports recorded before BENCH_4.json.
	CPUs       int      `json:"cpus,omitempty"`
	Iterations int      `json:"iterations"`
	Benchmarks []Result `json:"benchmarks"`
}

// Result is one session benchmark with its recorded baseline.
type Result struct {
	Name        string   `json:"name"`
	NsPerOp     int64    `json:"ns_per_op"`
	AllocsPerOp int64    `json:"allocs_per_op"`
	BytesPerOp  int64    `json:"bytes_per_op"`
	Throughput  float64  `json:"throughput_bytes_per_s"`
	Baseline    Baseline `json:"baseline"`
}

// Baseline is a frozen earlier measurement of the same scenario.
type Baseline struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// baselines freezes the pre-pooling numbers (go test -bench Session
// -benchtime=5x on the commit before the arena landed). They stay valid as
// long as internal/sessionbench's scenario is unchanged.
var baselines = map[string]Baseline{
	"SessionOMNC": {NsPerOp: 22093928, AllocsPerOp: 72996, BytesPerOp: 3804190},
	"SessionMORE": {NsPerOp: 9651859, AllocsPerOp: 30166, BytesPerOp: 1692928},
	"SessionETX":  {NsPerOp: 980601, AllocsPerOp: 14319, BytesPerOp: 626320},
}

// multiBaselines freezes the first recorded measurements of the
// multi-unicast scenarios (two contending sessions on one shared engine,
// BENCH_3.json). Unlike the single-session baselines they are not
// pre-optimization numbers — the multi path was born on the pooled hot path
// — so Check holds reports near them instead of far below them.
var multiBaselines = map[string]Baseline{
	"MultiSessionOMNC": {NsPerOp: 21043627, AllocsPerOp: 34732, BytesPerOp: 1378872},
	"MultiSessionETX":  {NsPerOp: 1933779, AllocsPerOp: 2713, BytesPerOp: 123209},
}

// allocGate is the acceptance threshold Check re-asserts: current
// allocs/op must be at most this fraction of baseline on the OMNC session.
const allocGate = 0.5

// multiAllocGate bounds multi-session drift: allocs/op may exceed the
// recorded baseline by at most this factor.
const multiAllocGate = 1.25

// speedupGate is the minimum serial-ns/op over four-worker-ns/op ratio the
// scaled scenario must show, enforced only for reports recorded on a
// machine with at least four CPUs (a single-CPU recorder cannot exhibit
// wall-clock parallel speedup no matter how parallel the round structure).
const speedupGate = 2.0

// schemeAllocGate bounds the non-default coding schemes: their session
// allocs/op may exceed the in-report default-RLNC scheme entry by at most
// this factor. The non-recoding relays queue pooled packets instead of
// re-encoding, and the RS encoder writes into arena packets — neither may
// cost per-packet allocations.
const schemeAllocGate = 2.0

// omncAllocCeiling is the absolute allocs/op bound the pooled OMNC session
// must hold once a report carries field entries (the BENCH_6.json vintage,
// recorded with the solver-workspace arena): rate-control replans reuse
// pooled LP tableaus and credit vectors, so a whole session stays under two
// thousand allocations regardless of replan count.
const omncAllocCeiling = 2000

// fieldAllocGate bounds the non-default coefficient fields: their session
// allocs/op may exceed the in-report default-field OMNC session by at most
// this factor. GF(2^16) doubles coefficient bytes and builds per-scalar
// tables on the stack — neither may show up as heap allocations.
const fieldAllocGate = 2.0

// Record benchmarks every scenario and assembles the report. It honors ctx
// between scenarios: a cancelled recording returns the context's error
// rather than a half-comparable report.
func Record(ctx context.Context, iters int) (*Report, error) {
	if iters < 1 {
		return nil, fmt.Errorf("need at least 1 iteration, got %d", iters)
	}
	rep := &Report{
		Schema:     SchemaVersion,
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Iterations: iters,
	}
	for _, s := range sessionbench.Scenarios() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := Measure(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	for _, s := range sessionbench.MultiScenarios() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := MeasureMulti(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	for _, s := range sessionbench.ScaledMultiScenarios() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := MeasureScaled(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	for _, s := range sessionbench.SchemeScenarios() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := MeasureScheme(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	for _, s := range sessionbench.FieldScenarios() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := MeasureField(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	return rep, nil
}

// Encode serializes the report the way the committed BENCH_<n>.json files
// are stored: indented JSON with a trailing newline.
func (r *Report) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// MeasureScheme is Measure for one coding-scheme session; scheme entries
// carry no frozen baseline — Check gates them against the in-report
// default-RLNC entry instead.
func MeasureScheme(s sessionbench.SchemeScenario, iters int) (Result, error) {
	nw, src, dst, err := sessionbench.Network()
	if err != nil {
		return Result{}, err
	}
	st, err := s.Run(nw, src, dst)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if st, err = s.Run(nw, src, dst); err != nil {
			return Result{}, err
		}
		if st.GenerationsDecoded == 0 {
			return Result{}, fmt.Errorf("session decoded nothing")
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return Result{
		Name:        s.Name,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Throughput:  st.Throughput,
	}, nil
}

// MeasureField is Measure for one coefficient-field session; field entries
// carry no frozen baseline — Check gates them against the in-report
// default-field SessionOMNC entry instead.
func MeasureField(s sessionbench.FieldScenario, iters int) (Result, error) {
	nw, src, dst, err := sessionbench.Network()
	if err != nil {
		return Result{}, err
	}
	st, err := s.Run(nw, src, dst)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if st, err = s.Run(nw, src, dst); err != nil {
			return Result{}, err
		}
		if st.GenerationsDecoded == 0 {
			return Result{}, fmt.Errorf("session decoded nothing")
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return Result{
		Name:        s.Name,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Throughput:  st.Throughput,
	}, nil
}

// Measure runs one warmup session (arena fill, lazy tables) and then iters
// timed sessions, deriving allocs/op and B/op from MemStats deltas — the
// same quantities testing.B reports with -benchmem.
func Measure(s sessionbench.Scenario, iters int) (Result, error) {
	nw, src, dst, err := sessionbench.Network()
	if err != nil {
		return Result{}, err
	}
	st, err := s.Run(nw, src, dst)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if st, err = s.Run(nw, src, dst); err != nil {
			return Result{}, err
		}
		if st.GenerationsDecoded == 0 {
			return Result{}, fmt.Errorf("session decoded nothing")
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return Result{
		Name:        s.Name,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Throughput:  st.Throughput,
		Baseline:    baselines[s.Name],
	}, nil
}

// MeasureMulti is Measure for a multi-unicast workload: one warmup, then
// iters timed runs of all contending sessions on one shared engine.
func MeasureMulti(s sessionbench.MultiScenario, iters int) (Result, error) {
	nw, _, _, err := sessionbench.Network()
	if err != nil {
		return Result{}, err
	}
	ms, err := s.Run(nw)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if ms, err = s.Run(nw); err != nil {
			return Result{}, err
		}
		for j, st := range ms.PerSession {
			if st.Throughput <= 0 {
				return Result{}, fmt.Errorf("session %d delivered nothing", j)
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return Result{
		Name:        s.Name,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Throughput:  ms.AggregateThroughput,
		Baseline:    multiBaselines[s.Name],
	}, nil
}

// MeasureScaled is MeasureMulti for the parallel-engine scaling workload:
// sixteen sessions on radio-isolated strips with the scenario's engine
// worker count. The emulated throughput must come out identical for every
// worker count — Check enforces that.
func MeasureScaled(s sessionbench.ScaledMultiScenario, iters int) (Result, error) {
	nw, sessions, err := sessionbench.ScaledNetwork()
	if err != nil {
		return Result{}, err
	}
	ms, err := s.Run(nw, sessions)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if ms, err = s.Run(nw, sessions); err != nil {
			return Result{}, err
		}
		for j, st := range ms.PerSession {
			if st.Throughput <= 0 {
				return Result{}, fmt.Errorf("session %d delivered nothing", j)
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return Result{
		Name:        s.Name,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Throughput:  ms.AggregateThroughput,
	}, nil
}

// CheckFile validates a committed report file (see Check).
func CheckFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return Check(buf)
}

// Check validates a serialized report: schema identity, one entry per
// scenario with sane fields, and every regression gate the report's vintage
// carries — the OMNC allocation gate always, the multi-session drift gate
// when multi entries are present, ladder throughput equality (plus the
// four-worker speedup when the recorder had >= 4 CPUs), and the
// coding-scheme arena gate.
func Check(buf []byte) error {
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Schema != SchemaVersion {
		return fmt.Errorf("schema %q, want %q", rep.Schema, SchemaVersion)
	}
	if rep.GoVersion == "" {
		return fmt.Errorf("missing go_version")
	}
	if rep.Iterations < 1 {
		return fmt.Errorf("iterations %d, want >= 1", rep.Iterations)
	}
	byName := map[string]Result{}
	for _, r := range rep.Benchmarks {
		if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 || r.BytesPerOp <= 0 {
			return fmt.Errorf("%s: non-positive measurement %+v", r.Name, r)
		}
		if r.Throughput <= 0 {
			return fmt.Errorf("%s: non-positive throughput", r.Name)
		}
		byName[r.Name] = r
	}
	for _, s := range sessionbench.Scenarios() {
		r, ok := byName[s.Name]
		if !ok {
			return fmt.Errorf("missing benchmark %s", s.Name)
		}
		if r.Baseline != baselines[s.Name] {
			return fmt.Errorf("%s: baseline %+v drifted from recorded %+v", s.Name, r.Baseline, baselines[s.Name])
		}
	}
	omncRes := byName["SessionOMNC"]
	limit := int64(float64(omncRes.Baseline.AllocsPerOp) * allocGate)
	if omncRes.AllocsPerOp > limit {
		return fmt.Errorf("SessionOMNC allocs/op %d exceeds gate %d (%.0f%% of baseline %d)",
			omncRes.AllocsPerOp, limit, allocGate*100, omncRes.Baseline.AllocsPerOp)
	}
	// Multi-unicast entries appeared in BENCH_3.json; a report that carries
	// any of them must carry all of them, with unchanged baselines and
	// allocs/op within the drift gate. Earlier reports stay valid.
	hasMulti := false
	for name := range multiBaselines {
		if _, ok := byName[name]; ok {
			hasMulti = true
			break
		}
	}
	if hasMulti {
		for _, s := range sessionbench.MultiScenarios() {
			r, ok := byName[s.Name]
			if !ok {
				return fmt.Errorf("missing benchmark %s", s.Name)
			}
			if r.Baseline != multiBaselines[s.Name] {
				return fmt.Errorf("%s: baseline %+v drifted from recorded %+v", s.Name, r.Baseline, multiBaselines[s.Name])
			}
			mlimit := int64(float64(r.Baseline.AllocsPerOp) * multiAllocGate)
			if r.AllocsPerOp > mlimit {
				return fmt.Errorf("%s allocs/op %d exceeds gate %d (%.0f%% of baseline %d)",
					s.Name, r.AllocsPerOp, mlimit, multiAllocGate*100, r.Baseline.AllocsPerOp)
			}
		}
	}
	// The parallel-engine scaling ladder appeared in BENCH_4.json. A report
	// carrying any rung must carry all of them with identical emulated
	// throughput (the engines are bit-identical by contract — divergence is
	// a determinism bug, never noise), must declare the recording machine's
	// CPU count, and — when that machine could actually run rounds in
	// parallel (cpus >= 4) — must show the speedup the parallel engine
	// exists for.
	scaled := sessionbench.ScaledMultiScenarios()
	hasScaled := false
	for _, s := range scaled {
		if _, ok := byName[s.Name]; ok {
			hasScaled = true
			break
		}
	}
	if hasScaled {
		var serial, four Result
		var tp float64
		for i, s := range scaled {
			r, ok := byName[s.Name]
			if !ok {
				return fmt.Errorf("missing benchmark %s", s.Name)
			}
			if i == 0 {
				tp = r.Throughput
			} else if r.Throughput != tp {
				return fmt.Errorf("%s: emulated throughput %v differs from %s's %v — parallel engine diverged from serial",
					s.Name, r.Throughput, scaled[0].Name, tp)
			}
			switch s.EngineWorkers {
			case 0:
				serial = r
			case 4:
				four = r
			}
		}
		if rep.CPUs < 1 {
			return fmt.Errorf("report carries the scaling ladder but no cpus field")
		}
		if rep.CPUs >= 4 {
			ratio := float64(serial.NsPerOp) / float64(four.NsPerOp)
			if ratio < speedupGate {
				return fmt.Errorf("scaled speedup %.2fx at 4 workers below gate %.1fx (serial %d ns/op, workers=4 %d ns/op, cpus=%d)",
					ratio, speedupGate, serial.NsPerOp, four.NsPerOp, rep.CPUs)
			}
		}
	}
	// Coding-scheme entries appeared in BENCH_5.json: a report carrying any
	// of them must carry all of them, and the non-recoding strategies must
	// stay within schemeAllocGate of the in-report default-RLNC session —
	// the arena-use proof for the strategy layer. Earlier reports stay valid.
	schemes := sessionbench.SchemeScenarios()
	hasSchemes := false
	for _, s := range schemes {
		if _, ok := byName[s.Name]; ok {
			hasSchemes = true
			break
		}
	}
	if hasSchemes {
		ref, ok := byName["SessionScheme/rlnc"]
		if !ok {
			return fmt.Errorf("scheme entries present but the SessionScheme/rlnc reference is missing")
		}
		for _, s := range schemes {
			r, ok := byName[s.Name]
			if !ok {
				return fmt.Errorf("missing benchmark %s", s.Name)
			}
			slimit := int64(float64(ref.AllocsPerOp) * schemeAllocGate)
			if r.AllocsPerOp > slimit {
				return fmt.Errorf("%s allocs/op %d exceeds gate %d (%.0f%% of SessionScheme/rlnc's %d)",
					s.Name, r.AllocsPerOp, slimit, schemeAllocGate*100, ref.AllocsPerOp)
			}
		}
	}
	// Coefficient-field entries appeared in BENCH_6.json, recorded with the
	// solver-workspace arena. A report carrying any of them must carry all of
	// them within fieldAllocGate of the in-report default-field OMNC session,
	// and the OMNC session itself must hold the absolute workspace-era
	// allocation ceiling — a far tighter bound than the fraction-of-baseline
	// gate above. Earlier reports stay valid.
	fields := sessionbench.FieldScenarios()
	hasFields := false
	for _, s := range fields {
		if _, ok := byName[s.Name]; ok {
			hasFields = true
			break
		}
	}
	if hasFields {
		if omncRes.AllocsPerOp > omncAllocCeiling {
			return fmt.Errorf("SessionOMNC allocs/op %d exceeds the workspace-era ceiling %d",
				omncRes.AllocsPerOp, omncAllocCeiling)
		}
		for _, s := range fields {
			r, ok := byName[s.Name]
			if !ok {
				return fmt.Errorf("missing benchmark %s", s.Name)
			}
			flimit := int64(float64(omncRes.AllocsPerOp) * fieldAllocGate)
			if r.AllocsPerOp > flimit {
				return fmt.Errorf("%s allocs/op %d exceeds gate %d (%.0f%% of SessionOMNC's %d)",
					s.Name, r.AllocsPerOp, flimit, fieldAllocGate*100, omncRes.AllocsPerOp)
			}
		}
	}
	return nil
}
