package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulMatchesSlowMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			got := Mul(byte(a), byte(b))
			want := mulSlow(byte(a), byte(b))
			if got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestAddIsXOR(t *testing.T) {
	if Add(0x57, 0x83) != 0x57^0x83 {
		t.Fatalf("Add(0x57,0x83) = %#x, want %#x", Add(0x57, 0x83), 0x57^0x83)
	}
	if Sub(0x57, 0x83) != Add(0x57, 0x83) {
		t.Fatal("Sub must equal Add in characteristic 2")
	}
}

func TestKnownRijndaelProducts(t *testing.T) {
	// Classic AES test vector: 0x57 * 0x83 = 0xC1 in Rijndael's field.
	tests := []struct {
		a, b, want byte
	}{
		{0x57, 0x83, 0xC1},
		{0x57, 0x13, 0xFE},
		{0x02, 0x80, 0x1B}, // reduction case: x * x^7 = x^8 = poly tail
		{0x01, 0xAB, 0xAB},
		{0x00, 0xFF, 0x00},
	}
	for _, tt := range tests {
		if got := Mul(tt.a, tt.b); got != tt.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	commutative := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(commutative, cfg); err != nil {
		t.Errorf("multiplication not commutative: %v", err)
	}

	associative := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(associative, cfg); err != nil {
		t.Errorf("multiplication not associative: %v", err)
	}

	distributive := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distributive, cfg); err != nil {
		t.Errorf("multiplication not distributive over addition: %v", err)
	}

	identity := func(a byte) bool { return Mul(a, 1) == a && Add(a, 0) == a }
	if err := quick.Check(identity, cfg); err != nil {
		t.Errorf("identity elements broken: %v", err)
	}

	inverse := func(a byte) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1
	}
	if err := quick.Check(inverse, cfg); err != nil {
		t.Errorf("multiplicative inverse broken: %v", err)
	}

	selfInverseAdd := func(a byte) bool { return Add(a, a) == 0 }
	if err := quick.Check(selfInverseAdd, cfg); err != nil {
		t.Errorf("addition not self-inverse: %v", err)
	}
}

func TestDivInvPow(t *testing.T) {
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%d,%d)*%d != %d", a, b, b, a)
			}
		}
		if Div(0, byte(a)) != 0 {
			t.Fatalf("Div(0,%d) != 0", a)
		}
	}
	for a := 1; a < 256; a++ {
		p := byte(1)
		for n := 0; n < 10; n++ {
			if got := Pow(byte(a), n); got != p {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, p)
			}
			p = Mul(p, byte(a))
		}
	}
	if Pow(0, 0) != 1 || Pow(0, 5) != 0 {
		t.Fatal("Pow with zero base broken")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	assertPanics(t, "Div", func() { Div(1, 0) })
	assertPanics(t, "Inv", func() { Inv(0) })
	assertPanics(t, "Log", func() { Log(0) })
	assertPanics(t, "Pow", func() { Pow(3, -1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("Exp must reduce negative exponents mod 255")
	}
	if Exp(255) != Exp(0) {
		t.Fatal("Exp must reduce exponents mod 255")
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	seen := make(map[byte]bool, 255)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255 (repeat at %d)", i)
		}
		seen[x] = true
		x = mulSlow(x, generator)
	}
	if x != 1 {
		t.Fatal("generator order is not 255")
	}
}

var allStrategies = []Strategy{StrategyNaive, StrategyTable, StrategyBitPlane, StrategyAccel}

func TestMulSliceStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 100, 1024} {
		src := make([]byte, n)
		rng.Read(src)
		for c := 0; c < 256; c += 17 {
			want := make([]byte, n)
			for i, v := range src {
				want[i] = Mul(byte(c), v)
			}
			for _, s := range allStrategies {
				dst := make([]byte, n)
				MulSlice(s, dst, src, byte(c))
				if !bytes.Equal(dst, want) {
					t.Fatalf("MulSlice(%v, c=%d, n=%d) mismatch", s, c, n)
				}
			}
		}
	}
}

func TestMulAddSliceStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 8, 16, 33, 257} {
		src := make([]byte, n)
		base := make([]byte, n)
		rng.Read(src)
		rng.Read(base)
		for c := 0; c < 256; c += 13 {
			want := make([]byte, n)
			copy(want, base)
			for i, v := range src {
				want[i] ^= Mul(byte(c), v)
			}
			for _, s := range allStrategies {
				dst := make([]byte, n)
				copy(dst, base)
				MulAddSlice(s, dst, src, byte(c))
				if !bytes.Equal(dst, want) {
					t.Fatalf("MulAddSlice(%v, c=%d, n=%d) mismatch", s, c, n)
				}
			}
		}
	}
}

func TestMulSliceSpecialCoefficients(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	dst := make([]byte, len(src))
	MulSlice(StrategyAccel, dst, src, 0)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("MulSlice by 0 must zero dst")
		}
	}
	MulSlice(StrategyAccel, dst, src, 1)
	if !bytes.Equal(dst, src) {
		t.Fatal("MulSlice by 1 must copy src")
	}
	// MulAdd by zero must be a no-op.
	before := append([]byte(nil), dst...)
	MulAddSlice(StrategyAccel, dst, src, 0)
	if !bytes.Equal(dst, before) {
		t.Fatal("MulAddSlice by 0 must not modify dst")
	}
}

func TestScaleSliceInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := make([]byte, 100)
	rng.Read(s)
	want := make([]byte, 100)
	for i, v := range s {
		want[i] = Mul(0xAB, v)
	}
	ScaleSlice(StrategyAccel, s, 0xAB)
	if !bytes.Equal(s, want) {
		t.Fatal("ScaleSlice mismatch")
	}
}

func TestMulSliceAliasedInPlace(t *testing.T) {
	for _, s := range allStrategies {
		src := []byte{0, 1, 2, 3, 250, 251, 252, 253, 254, 255, 17}
		want := make([]byte, len(src))
		for i, v := range src {
			want[i] = Mul(0x9D, v)
		}
		MulSlice(s, src, src, 0x9D)
		if !bytes.Equal(src, want) {
			t.Fatalf("in-place MulSlice(%v) mismatch", s)
		}
	}
}

func TestDotProduct(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	want := Add(Add(Mul(1, 4), Mul(2, 5)), Mul(3, 6))
	if got := DotProduct(a, b); got != want {
		t.Fatalf("DotProduct = %d, want %d", got, want)
	}
	if DotProduct(nil, nil) != 0 {
		t.Fatal("empty DotProduct must be 0")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	assertPanics(t, "MulSlice", func() { MulSlice(StrategyTable, make([]byte, 2), make([]byte, 3), 5) })
	assertPanics(t, "MulAddSlice", func() { MulAddSlice(StrategyTable, make([]byte, 2), make([]byte, 3), 5) })
	assertPanics(t, "DotProduct", func() { DotProduct(make([]byte, 2), make([]byte, 3)) })
}

func TestBitPlaneConsts(t *testing.T) {
	for c := 0; c < 256; c++ {
		ck := bitPlaneConsts(byte(c))
		for k := 0; k < 8; k++ {
			want := mulSlow(byte(c), byte(1)<<uint(k))
			if ck[k] != want {
				t.Fatalf("bitPlaneConsts(%d)[%d] = %d, want %d", c, k, ck[k], want)
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyAccel.String() != "accel" || StrategyBitPlane.String() != "bitplane" ||
		StrategyTable.String() != "table" || StrategyNaive.String() != "naive" {
		t.Fatal("Strategy.String names changed")
	}
	if Strategy(0).String() != "Strategy(0)" {
		t.Fatal("unknown Strategy.String format changed")
	}
}

func benchMulAdd(b *testing.B, s Strategy, n int) {
	src := make([]byte, n)
	dst := make([]byte, n)
	rng := rand.New(rand.NewSource(4))
	rng.Read(src)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(s, dst, src, 0xA7)
	}
}

func BenchmarkMulAddNaive1K(b *testing.B)    { benchMulAdd(b, StrategyNaive, 1024) }
func BenchmarkMulAddTable1K(b *testing.B)    { benchMulAdd(b, StrategyTable, 1024) }
func BenchmarkMulAddBitPlane1K(b *testing.B) { benchMulAdd(b, StrategyBitPlane, 1024) }
func BenchmarkMulAddAccel1K(b *testing.B)    { benchMulAdd(b, StrategyAccel, 1024) }

func TestNibbleTables(t *testing.T) {
	for c := 0; c < 256; c += 7 {
		lo, hi := nibbleTables(byte(c))
		for v := 0; v < 256; v++ {
			got := lo[v&0xF] ^ hi[v>>4]
			if got != Mul(byte(c), byte(v)) {
				t.Fatalf("nibble mul %d*%d = %d, want %d", c, v, got, Mul(byte(c), byte(v)))
			}
		}
	}
}
