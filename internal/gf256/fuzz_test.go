package gf256

import (
	"bytes"
	"testing"
)

// refMulAdd is the byte-at-a-time reference: shift-and-reduce multiplication
// with no tables and no word tricks, so it shares no machinery with the
// kernels under test.
func refMulAdd(dst, src []byte, c byte) {
	for i := range src {
		dst[i] ^= mulSlow(c, src[i])
	}
}

func refMul(dst, src []byte, c byte) {
	for i := range src {
		dst[i] = mulSlow(c, src[i])
	}
}

// FuzzGFKernels differentially tests every bulk kernel — nibble, bit-plane
// wide XOR, full table, naive log/exp, and the c==1 xorSlice fast path —
// against the byte-at-a-time reference, across random lengths (word loops
// plus tails), random buffer alignments (the wide kernels read 8-byte words
// at arbitrary offsets) and dst==src aliasing (the in-place Scale pattern;
// partial overlap stays forbidden by contract).
func FuzzGFKernels(f *testing.F) {
	f.Add([]byte{}, byte(0), uint8(0), false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(1), uint8(1), false)
	f.Add(bytes.Repeat([]byte{0xFF}, 64), byte(0x53), uint8(7), true)
	f.Add([]byte{0x80, 0x00, 0x1B, 0xCA}, byte(0x02), uint8(3), false)
	f.Add(bytes.Repeat([]byte{0xAA, 0x55}, 100), byte(0xFE), uint8(5), true)

	strategies := []Strategy{StrategyAccel, StrategyBitPlane, StrategyTable, StrategyNaive}
	f.Fuzz(func(t *testing.T, data []byte, c byte, offset uint8, alias bool) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		// Rebase the operands at a fuzzed offset inside larger backings so
		// the 8-byte word loops see every alignment class.
		off := int(offset % 16)
		srcBack := make([]byte, off+len(data))
		copy(srcBack[off:], data)
		src := srcBack[off : off+len(data)]
		dstInit := make([]byte, len(data))
		for i := range dstInit {
			dstInit[i] = byte(i*131) ^ c
		}

		wantAdd := append([]byte(nil), dstInit...)
		refMulAdd(wantAdd, src, c)
		wantMul := make([]byte, len(data))
		refMul(wantMul, src, c)
		wantScale := append([]byte(nil), src...)
		refMul(wantScale, wantScale, c)

		for _, s := range strategies {
			k := KernelFor(s)

			dst := make([]byte, off+len(data))[off:]
			copy(dst, dstInit)
			MulAddSlice(s, dst, src, c)
			if !bytes.Equal(dst, wantAdd) {
				t.Fatalf("%v MulAddSlice(c=%#x, n=%d, off=%d) = %x, want %x", s, c, len(data), off, dst, wantAdd)
			}

			copy(dst, dstInit)
			k.MulAdd(dst, src, c)
			if !bytes.Equal(dst, wantAdd) {
				t.Fatalf("%v Kernel.MulAdd(c=%#x, n=%d, off=%d) = %x, want %x", s, c, len(data), off, dst, wantAdd)
			}

			copy(dst, dstInit)
			MulSlice(s, dst, src, c)
			if !bytes.Equal(dst, wantMul) {
				t.Fatalf("%v MulSlice(c=%#x, n=%d, off=%d) = %x, want %x", s, c, len(data), off, dst, wantMul)
			}

			copy(dst, dstInit)
			k.Mul(dst, src, c)
			if !bytes.Equal(dst, wantMul) {
				t.Fatalf("%v Kernel.Mul(c=%#x, n=%d, off=%d) = %x, want %x", s, c, len(data), off, dst, wantMul)
			}

			if alias {
				// dst == src exactly: the one aliasing shape the contract
				// permits, exercised by Scale and in-place elimination.
				buf := make([]byte, off+len(data))[off:]
				copy(buf, src)
				k.Scale(buf, c)
				if !bytes.Equal(buf, wantScale) {
					t.Fatalf("%v Scale(c=%#x, n=%d, off=%d) = %x, want %x", s, c, len(data), off, buf, wantScale)
				}
				copy(buf, src)
				MulAddSlice(s, buf, buf, c)
				wantSelf := append([]byte(nil), src...)
				refMulAdd(wantSelf, src, c)
				if !bytes.Equal(buf, wantSelf) {
					t.Fatalf("%v MulAddSlice self-alias(c=%#x, n=%d, off=%d) = %x, want %x", s, c, len(data), off, buf, wantSelf)
				}
			}
		}
	})
}
