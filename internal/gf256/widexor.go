package gf256

import "encoding/binary"

// The wide-XOR strategy exploits that multiplication by a fixed c is
// GF(2)-linear in the bits of the operand:
//
//	c*x = XOR over k in 0..7 with bit k of x set of (c * x^k mod Poly)
//
// Packing 8 data bytes into a uint64 lets one loop iteration apply the k-th
// bit plane to all 8 bytes at once: extract bit k of every lane, expand it to
// a full byte mask, and XOR in the broadcast constant c*2^k. This mirrors the
// paper's SSE2 loop (Sec. 4, "Accelerated network coding"), which widens the
// datapath instead of performing per-byte table lookups.

const (
	lsbMask   = 0x0101010101010101 // LSB of each byte lane
	broadcast = 0x0101010101010101 // multiplying a byte by this broadcasts it
)

// bitPlaneConsts returns c * 2^k mod Poly for k = 0..7, the per-plane
// constants of the linear map x -> c*x.
func bitPlaneConsts(c byte) [8]byte {
	var ck [8]byte
	v := c
	for k := 0; k < 8; k++ {
		ck[k] = v
		hi := v & 0x80
		v <<= 1
		if hi != 0 {
			v ^= byte(Poly & 0xFF)
		}
	}
	return ck
}

func mulAddWideXOR(dst, src []byte, c byte) {
	ck := bitPlaneConsts(c)
	var bc [8]uint64
	for k := 0; k < 8; k++ {
		bc[k] = uint64(ck[k]) * broadcast
	}
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		var acc uint64
		for k := 0; k < 8; k++ {
			mask := ((w >> uint(k)) & lsbMask) * 0xFF
			acc ^= mask & bc[k]
		}
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^acc)
	}
	for ; i < n; i++ {
		dst[i] ^= mulTable[c][src[i]]
	}
}

func mulWideXOR(dst, src []byte, c byte) {
	ck := bitPlaneConsts(c)
	var bc [8]uint64
	for k := 0; k < 8; k++ {
		bc[k] = uint64(ck[k]) * broadcast
	}
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		var acc uint64
		for k := 0; k < 8; k++ {
			mask := ((w >> uint(k)) & lsbMask) * 0xFF
			acc ^= mask & bc[k]
		}
		binary.LittleEndian.PutUint64(dst[i:], acc)
	}
	for ; i < n; i++ {
		dst[i] = mulTable[c][src[i]]
	}
}

func leUint64(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }
func putLeUint64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// The nibble strategy is the scalar analogue of the PSHUFB technique used by
// SIMD GF(2^8) kernels (and the spirit of the paper's SSE2 loop): split each
// operand byte into two 4-bit halves and resolve each half against a 16-entry
// table that lives in L1 (or registers), instead of a 64 KiB product table.
//
//	c*x = loTab[x & 0xF] ^ hiTab[x >> 4]
//
// because multiplication by c is linear over GF(2) and x = (x & 0xF) ^ (x & 0xF0).

// nibbleTables returns the two 16-entry half-byte product tables for c.
func nibbleTables(c byte) (lo, hi [16]byte) {
	for v := 0; v < 16; v++ {
		lo[v] = mulTable[c][v]
		hi[v] = mulTable[c][v<<4]
	}
	return lo, hi
}

func mulAddNibble(dst, src []byte, c byte) {
	lo, hi := nibbleTables(c)
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= lo[s[0]&0xF] ^ hi[s[0]>>4]
		d[1] ^= lo[s[1]&0xF] ^ hi[s[1]>>4]
		d[2] ^= lo[s[2]&0xF] ^ hi[s[2]>>4]
		d[3] ^= lo[s[3]&0xF] ^ hi[s[3]>>4]
		d[4] ^= lo[s[4]&0xF] ^ hi[s[4]>>4]
		d[5] ^= lo[s[5]&0xF] ^ hi[s[5]>>4]
		d[6] ^= lo[s[6]&0xF] ^ hi[s[6]>>4]
		d[7] ^= lo[s[7]&0xF] ^ hi[s[7]>>4]
	}
	for ; i < n; i++ {
		dst[i] ^= lo[src[i]&0xF] ^ hi[src[i]>>4]
	}
}

func mulNibble(dst, src []byte, c byte) {
	lo, hi := nibbleTables(c)
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = lo[s[0]&0xF] ^ hi[s[0]>>4]
		d[1] = lo[s[1]&0xF] ^ hi[s[1]>>4]
		d[2] = lo[s[2]&0xF] ^ hi[s[2]>>4]
		d[3] = lo[s[3]&0xF] ^ hi[s[3]>>4]
		d[4] = lo[s[4]&0xF] ^ hi[s[4]>>4]
		d[5] = lo[s[5]&0xF] ^ hi[s[5]>>4]
		d[6] = lo[s[6]&0xF] ^ hi[s[6]>>4]
		d[7] = lo[s[7]&0xF] ^ hi[s[7]>>4]
	}
	for ; i < n; i++ {
		dst[i] = lo[src[i]&0xF] ^ hi[src[i]>>4]
	}
}
