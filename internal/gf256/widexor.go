package gf256

import "encoding/binary"

// The wide-XOR strategy exploits that multiplication by a fixed c is
// GF(2)-linear in the bits of the operand:
//
//	c*x = XOR over k in 0..7 with bit k of x set of (c * x^k mod Poly)
//
// Packing 8 data bytes into a uint64 lets one loop iteration apply the k-th
// bit plane to all 8 bytes at once: extract bit k of every lane, expand it to
// a full byte mask, and XOR in the broadcast constant c*2^k. This mirrors the
// paper's SSE2 loop (Sec. 4, "Accelerated network coding"), which widens the
// datapath instead of performing per-byte table lookups.

const (
	lsbMask   = 0x0101010101010101 // LSB of each byte lane
	broadcast = 0x0101010101010101 // multiplying a byte by this broadcasts it
)

// bitPlaneConsts returns c * 2^k mod Poly for k = 0..7, the per-plane
// constants of the linear map x -> c*x.
func bitPlaneConsts(c byte) [8]byte {
	var ck [8]byte
	v := c
	for k := 0; k < 8; k++ {
		ck[k] = v
		hi := v & 0x80
		v <<= 1
		if hi != 0 {
			v ^= byte(Poly & 0xFF)
		}
	}
	return ck
}

// planeConsts are the eight broadcast bit-plane constants of x -> c*x,
// hoisted into distinct locals so the compiler keeps them in registers
// across the word loop instead of reloading an array element per plane.
type planeConsts struct {
	b0, b1, b2, b3, b4, b5, b6, b7 uint64
}

func broadcastPlanes(c byte) planeConsts {
	ck := bitPlaneConsts(c)
	return planeConsts{
		b0: uint64(ck[0]) * broadcast,
		b1: uint64(ck[1]) * broadcast,
		b2: uint64(ck[2]) * broadcast,
		b3: uint64(ck[3]) * broadcast,
		b4: uint64(ck[4]) * broadcast,
		b5: uint64(ck[5]) * broadcast,
		b6: uint64(ck[6]) * broadcast,
		b7: uint64(ck[7]) * broadcast,
	}
}

// mulWord applies all eight bit planes of x -> c*x to one 8-lane word. The
// unrolled plane sequence is pure AND/SHIFT/MUL/XOR on registers — the shape
// a vectorizing backend turns into mask-and-select lanes, and scalar Go
// executes without a loop-carried counter.
func mulWord(w uint64, p *planeConsts) uint64 {
	acc := ((w >> 0) & lsbMask) * 0xFF & p.b0
	acc ^= ((w >> 1) & lsbMask) * 0xFF & p.b1
	acc ^= ((w >> 2) & lsbMask) * 0xFF & p.b2
	acc ^= ((w >> 3) & lsbMask) * 0xFF & p.b3
	acc ^= ((w >> 4) & lsbMask) * 0xFF & p.b4
	acc ^= ((w >> 5) & lsbMask) * 0xFF & p.b5
	acc ^= ((w >> 6) & lsbMask) * 0xFF & p.b6
	acc ^= ((w >> 7) & lsbMask) * 0xFF & p.b7
	return acc
}

func mulAddWideXOR(dst, src []byte, c byte) {
	p := broadcastPlanes(c)
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8] // full-slice exprs: one bounds check per word
		d := dst[i : i+8 : i+8]
		w := binary.LittleEndian.Uint64(s)
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^mulWord(w, &p))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= mulTable[c][src[i]]
	}
}

func mulWideXOR(dst, src []byte, c byte) {
	p := broadcastPlanes(c)
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		binary.LittleEndian.PutUint64(d, mulWord(binary.LittleEndian.Uint64(s), &p))
	}
	for i := n; i < len(src); i++ {
		dst[i] = mulTable[c][src[i]]
	}
}

func leUint64(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }
func putLeUint64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// The nibble strategy is the scalar analogue of the PSHUFB technique used by
// SIMD GF(2^8) kernels (and the spirit of the paper's SSE2 loop): split each
// operand byte into two 4-bit halves and resolve each half against a 16-entry
// table that lives in L1 (or registers), instead of a 64 KiB product table.
//
//	c*x = loTab[x & 0xF] ^ hiTab[x >> 4]
//
// because multiplication by c is linear over GF(2) and x = (x & 0xF) ^ (x & 0xF0).

// nibbleTables returns the two 16-entry half-byte product tables for c.
func nibbleTables(c byte) (lo, hi [16]byte) {
	for v := 0; v < 16; v++ {
		lo[v] = mulTable[c][v]
		hi[v] = mulTable[c][v<<4]
	}
	return lo, hi
}

func mulAddNibble(dst, src []byte, c byte) {
	lo, hi := nibbleTables(c)
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= lo[s[0]&0xF] ^ hi[s[0]>>4]
		d[1] ^= lo[s[1]&0xF] ^ hi[s[1]>>4]
		d[2] ^= lo[s[2]&0xF] ^ hi[s[2]>>4]
		d[3] ^= lo[s[3]&0xF] ^ hi[s[3]>>4]
		d[4] ^= lo[s[4]&0xF] ^ hi[s[4]>>4]
		d[5] ^= lo[s[5]&0xF] ^ hi[s[5]>>4]
		d[6] ^= lo[s[6]&0xF] ^ hi[s[6]>>4]
		d[7] ^= lo[s[7]&0xF] ^ hi[s[7]>>4]
	}
	for ; i < n; i++ {
		dst[i] ^= lo[src[i]&0xF] ^ hi[src[i]>>4]
	}
}

func mulNibble(dst, src []byte, c byte) {
	lo, hi := nibbleTables(c)
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = lo[s[0]&0xF] ^ hi[s[0]>>4]
		d[1] = lo[s[1]&0xF] ^ hi[s[1]>>4]
		d[2] = lo[s[2]&0xF] ^ hi[s[2]>>4]
		d[3] = lo[s[3]&0xF] ^ hi[s[3]>>4]
		d[4] = lo[s[4]&0xF] ^ hi[s[4]>>4]
		d[5] = lo[s[5]&0xF] ^ hi[s[5]>>4]
		d[6] = lo[s[6]&0xF] ^ hi[s[6]>>4]
		d[7] = lo[s[7]&0xF] ^ hi[s[7]>>4]
	}
	for ; i < n; i++ {
		dst[i] = lo[src[i]&0xF] ^ hi[src[i]>>4]
	}
}
