// Package gf256 implements arithmetic over the Galois field GF(2^8) using
// Rijndael's reduction polynomial x^8 + x^4 + x^3 + x + 1 (0x11B), the field
// OMNC uses for random linear network coding (Sec. 3.1 and 4 of the paper).
//
// Besides scalar operations, the package provides bulk slice operations in
// three implementations with identical semantics and very different speeds:
//
//   - StrategyNaive:   per-byte log/exp table lookups, the paper's
//     "traditional lookup-table approach" baseline.
//   - StrategyTable:   a 64 KiB full product table, a stronger baseline.
//   - StrategyWideXOR: word-wide (8 bytes per step) bit-plane XOR
//     multiplication. This is the portable substitute for the paper's SSE2
//     loop-based acceleration; like SSE2 it widens the data path so several
//     bytes are processed per operation.
//
// All operations are safe for concurrent use; the tables are immutable after
// package initialization.
package gf256

import "fmt"

// Poly is Rijndael's irreducible polynomial with the leading x^8 bit,
// used to reduce products back into the field.
const Poly = 0x11B

// generator is a primitive element of GF(2^8) under Poly. 0x03 generates the
// full multiplicative group, which makes the log/exp tables total.
const generator = 0x03

var (
	expTable [512]byte // exp[i] = g^i, doubled to avoid a mod-255 per multiply
	logTable [256]byte // log[x] = i such that g^i = x; log[0] is unused
	mulTable [256][256]byte
	invTable [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		x = mulSlow(x, generator)
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[int(logTable[a])+int(logTable[b])]
		}
	}
	for a := 1; a < 256; a++ {
		invTable[a] = expTable[255-int(logTable[a])]
	}
}

// mulSlow multiplies two field elements by shift-and-reduce ("Russian
// peasant"); it is only used to build the tables.
func mulSlow(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= byte(Poly & 0xFF)
		}
		b >>= 1
	}
	return p
}

// Add returns a + b in GF(2^8). Addition and subtraction coincide (XOR).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8); identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Div returns a / b in GF(2^8). Division by zero panics, mirroring the
// behaviour of integer division: it is a programming error, not a data error.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invTable[a]
}

// Pow returns a raised to the power n (n >= 0) in GF(2^8).
func Pow(a byte, n int) byte {
	if n < 0 {
		panic("gf256: negative exponent")
	}
	if a == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	if n == 0 {
		return 1
	}
	return expTable[(int(logTable[a])*n)%255]
}

// Exp returns g^i for the field generator g; i is reduced mod 255.
func Exp(i int) byte {
	i %= 255
	if i < 0 {
		i += 255
	}
	return expTable[i]
}

// Log returns log_g(a). Log(0) panics since zero is outside the
// multiplicative group.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Strategy selects a bulk-operation implementation.
type Strategy int

const (
	// StrategyAccel is the default: half-byte (nibble) table multiplication,
	// the scalar analogue of the PSHUFB/SSE2 technique the paper accelerates
	// coding with. The two 16-entry tables stay in L1 or registers.
	StrategyAccel Strategy = iota + 1
	// StrategyBitPlane is 64-bit-wide bit-plane XOR multiplication, an
	// alternative wide-datapath kernel kept for the acceleration ablation.
	StrategyBitPlane
	// StrategyTable uses the 64 KiB full product table, one byte at a time.
	StrategyTable
	// StrategyNaive uses log/exp lookups per byte, the paper's baseline
	// ("traditional lookup-table approach").
	StrategyNaive
)

// String returns the strategy name for logs and benchmarks.
func (s Strategy) String() string {
	switch s {
	case StrategyAccel:
		return "accel"
	case StrategyBitPlane:
		return "bitplane"
	case StrategyTable:
		return "table"
	case StrategyNaive:
		return "naive"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// MulAddSlice computes dst[i] ^= c * src[i] for all i using the given
// strategy. dst and src must have equal length and must not overlap
// partially (identical slices are fine). This is the inner loop of both
// encoding and Gauss-Jordan elimination.
func MulAddSlice(strategy Strategy, dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		xorSlice(dst, src)
		return
	}
	switch strategy {
	case StrategyNaive:
		mulAddNaive(dst, src, c)
	case StrategyTable:
		mulAddTable(dst, src, c)
	case StrategyBitPlane:
		mulAddWideXOR(dst, src, c)
	default:
		mulAddNibble(dst, src, c)
	}
}

// MulSlice computes dst[i] = c * src[i] for all i using the given strategy.
func MulSlice(strategy Strategy, dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch {
	case c == 0:
		for i := range dst {
			dst[i] = 0
		}
	case c == 1:
		copy(dst, src)
	default:
		switch strategy {
		case StrategyNaive:
			logC := int(logTable[c])
			for i, v := range src {
				if v == 0 {
					dst[i] = 0
				} else {
					dst[i] = expTable[logC+int(logTable[v])]
				}
			}
		case StrategyTable:
			row := &mulTable[c]
			for i, v := range src {
				dst[i] = row[v]
			}
		case StrategyBitPlane:
			mulWideXOR(dst, src, c)
		default:
			mulNibble(dst, src, c)
		}
	}
}

// ScaleSlice multiplies the slice in place by c.
func ScaleSlice(strategy Strategy, s []byte, c byte) {
	MulSlice(strategy, s, s, c)
}

// DotProduct returns the inner product of a and b over GF(2^8).
func DotProduct(a, b []byte) byte {
	if len(a) != len(b) {
		panic("gf256: DotProduct length mismatch")
	}
	var acc byte
	for i := range a {
		acc ^= mulTable[a[i]][b[i]]
	}
	return acc
}

func xorSlice(dst, src []byte) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := leUint64(dst[i:])
		s := leUint64(src[i:])
		putLeUint64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

func mulAddNaive(dst, src []byte, c byte) {
	logC := int(logTable[c])
	for i, v := range src {
		if v != 0 {
			dst[i] ^= expTable[logC+int(logTable[v])]
		}
	}
}

func mulAddTable(dst, src []byte, c byte) {
	row := &mulTable[c]
	for i, v := range src {
		dst[i] ^= row[v]
	}
}

// Kernel is a strategy resolved once into direct function pointers, so hot
// loops (Gauss-Jordan elimination, re-encoding) skip the per-call strategy
// dispatch of MulAddSlice/MulSlice. The zero Kernel is invalid; obtain one
// from KernelFor.
type Kernel struct {
	strategy Strategy
	mulAdd   func(dst, src []byte, c byte)
	mul      func(dst, src []byte, c byte)
}

// KernelFor resolves the strategy's bulk kernels.
func KernelFor(strategy Strategy) Kernel {
	k := Kernel{strategy: strategy}
	switch strategy {
	case StrategyNaive:
		k.mulAdd, k.mul = mulAddNaive, mulNaive
	case StrategyTable:
		k.mulAdd, k.mul = mulAddTable, mulSliceTable
	case StrategyBitPlane:
		k.mulAdd, k.mul = mulAddWideXOR, mulWideXOR
	default:
		k.strategy = StrategyAccel
		k.mulAdd, k.mul = mulAddNibble, mulNibble
	}
	return k
}

// Strategy returns the strategy the kernel was resolved from.
func (k Kernel) Strategy() Strategy { return k.strategy }

// MulAdd computes dst[i] ^= c * src[i]; the Kernel counterpart of
// MulAddSlice.
func (k Kernel) MulAdd(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: Kernel.MulAdd length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
	default:
		k.mulAdd(dst, src, c)
	}
}

// Mul computes dst[i] = c * src[i]; the Kernel counterpart of MulSlice.
func (k Kernel) Mul(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: Kernel.Mul length mismatch")
	}
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		k.mul(dst, src, c)
	}
}

// Scale multiplies the slice in place by c.
func (k Kernel) Scale(s []byte, c byte) { k.Mul(s, s, c) }

// mulNaive is MulSlice's naive path as a direct kernel.
func mulNaive(dst, src []byte, c byte) {
	logC := int(logTable[c])
	for i, v := range src {
		if v == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[logC+int(logTable[v])]
		}
	}
}

// mulSliceTable is MulSlice's full-table path as a direct kernel.
func mulSliceTable(dst, src []byte, c byte) {
	row := &mulTable[c]
	for i, v := range src {
		dst[i] = row[v]
	}
}
