package metrics

import (
	"fmt"
	"sync/atomic"
)

// Progress is a goroutine-safe completion counter for long-running
// experiment sweeps. The parallel trial executor increments it from every
// worker; reporting code (CLI tickers, logs) reads it from any goroutine
// without synchronizing with the workers.
//
// The zero value is usable as an untracked counter; NewProgress attaches an
// expected total so readers can render fractions.
type Progress struct {
	done  atomic.Int64
	total int64
}

// NewProgress returns a counter expecting total completions.
func NewProgress(total int) *Progress {
	return &Progress{total: int64(total)}
}

// Add records n more completed trials.
func (p *Progress) Add(n int) { p.done.Add(int64(n)) }

// Done returns the number of completed trials so far.
func (p *Progress) Done() int { return int(p.done.Load()) }

// Total returns the expected number of trials (0 if unknown).
func (p *Progress) Total() int { return int(p.total) }

// Fraction returns done/total, or 0 when the total is unknown. A value
// above 1 means a worker over-counted — a bug the reader should see, not
// have clamped away.
func (p *Progress) Fraction() float64 {
	if p.total <= 0 {
		return 0
	}
	return float64(p.done.Load()) / float64(p.total)
}

// String renders "done/total" (or just the count when the total is
// unknown).
func (p *Progress) String() string {
	if p.total <= 0 {
		return fmt.Sprintf("%d", p.Done())
	}
	return fmt.Sprintf("%d/%d", p.Done(), p.Total())
}
