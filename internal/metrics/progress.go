package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Progress is a goroutine-safe completion counter for long-running
// experiment sweeps. The parallel trial executor increments it from every
// worker; reporting code (CLI tickers, logs) reads it from any goroutine
// without synchronizing with the workers.
//
// The zero value is usable as an untracked counter; NewProgress attaches an
// expected total so readers can render fractions.
type Progress struct {
	done  atomic.Int64
	total int64
	// start anchors Snapshot's rate and ETA; zero (the zero-value Progress)
	// means no rate is derivable.
	start time.Time
}

// NewProgress returns a counter expecting total completions. The counter's
// clock starts now: Snapshot rates measure from construction, which is when
// the sweeps that use Progress begin dispatching work.
func NewProgress(total int) *Progress {
	return &Progress{total: int64(total), start: time.Now()}
}

// Add records n more completed trials.
func (p *Progress) Add(n int) { p.done.Add(int64(n)) }

// Done returns the number of completed trials so far.
func (p *Progress) Done() int { return int(p.done.Load()) }

// Total returns the expected number of trials (0 if unknown).
func (p *Progress) Total() int { return int(p.total) }

// Fraction returns done/total, or 0 when the total is unknown. A value
// above 1 means a worker over-counted — a bug the reader should see, not
// have clamped away.
func (p *Progress) Fraction() float64 {
	if p.total <= 0 {
		return 0
	}
	return float64(p.done.Load()) / float64(p.total)
}

// Snapshot is a point-in-time view of a Progress counter, shaped for
// progress endpoints and tickers: completion counts, the completion rate
// since the counter was created, and the remaining-time estimate that rate
// implies.
type Snapshot struct {
	// Done and Total mirror the counter; Total is 0 when unknown.
	Done  int `json:"done"`
	Total int `json:"total,omitempty"`
	// Fraction is Done/Total. Like Progress.Fraction it is NOT clamped: a
	// value above 1 means a worker over-counted, and readers must see that
	// bug rather than a soothing 100%.
	Fraction float64 `json:"fraction"`
	// RatePerSec is completions per second since the counter's creation
	// (0 when nothing completed yet or the counter never started a clock).
	RatePerSec float64 `json:"rate_per_sec"`
	// ETASeconds estimates the remaining seconds at RatePerSec. It is 0
	// when unknowable (no total, no completions yet) and 0 — not negative —
	// when Done already reached or overshot Total.
	ETASeconds float64 `json:"eta_seconds"`
	// ElapsedSeconds is the time since the counter's creation.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// Snapshot captures the counter's current state. It is safe to call from any
// goroutine while workers keep adding.
func (p *Progress) Snapshot() Snapshot {
	s := Snapshot{
		Done:     p.Done(),
		Total:    p.Total(),
		Fraction: p.Fraction(),
	}
	if p.start.IsZero() {
		return s
	}
	elapsed := time.Since(p.start).Seconds()
	s.ElapsedSeconds = elapsed
	if elapsed > 0 && s.Done > 0 {
		s.RatePerSec = float64(s.Done) / elapsed
	}
	if s.RatePerSec > 0 && s.Total > 0 {
		if remaining := s.Total - s.Done; remaining > 0 {
			s.ETASeconds = float64(remaining) / s.RatePerSec
		}
	}
	return s
}

// String renders "done/total" (or just the count when the total is
// unknown).
func (p *Progress) String() string {
	if p.total <= 0 {
		return fmt.Sprintf("%d", p.Done())
	}
	return fmt.Sprintf("%d/%d", p.Done(), p.Total())
}
