package metrics

import (
	"sync"
	"testing"
)

func TestProgressCounts(t *testing.T) {
	p := NewProgress(10)
	if p.Done() != 0 || p.Total() != 10 || p.Fraction() != 0 {
		t.Fatalf("fresh progress = %s", p)
	}
	p.Add(3)
	p.Add(1)
	if p.Done() != 4 {
		t.Fatalf("done = %d", p.Done())
	}
	if p.Fraction() != 0.4 {
		t.Fatalf("fraction = %v", p.Fraction())
	}
	if p.String() != "4/10" {
		t.Fatalf("string = %q", p.String())
	}
}

func TestProgressUnknownTotal(t *testing.T) {
	var p Progress
	p.Add(7)
	if p.Fraction() != 0 {
		t.Fatal("unknown total has no fraction")
	}
	if p.String() != "7" {
		t.Fatalf("string = %q", p.String())
	}
}

func TestProgressFractionReportsOvercount(t *testing.T) {
	// Over-counting past the total is a worker bug; Fraction must surface
	// it rather than clamp it to 1.
	p := NewProgress(2)
	p.Add(5)
	if p.Fraction() != 2.5 {
		t.Fatalf("fraction = %v, want the true 2.5", p.Fraction())
	}
}

func TestProgressConcurrentAdds(t *testing.T) {
	const workers, per = 16, 1000
	p := NewProgress(workers * per)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Add(1)
			}
		}()
	}
	wg.Wait()
	if p.Done() != workers*per {
		t.Fatalf("done = %d, want %d", p.Done(), workers*per)
	}
	if p.Fraction() != 1 {
		t.Fatalf("fraction = %v", p.Fraction())
	}
}

func TestSnapshotZeroTotal(t *testing.T) {
	// A total-less counter (the zero value) still snapshots: counts flow
	// through, but no fraction, rate or ETA can be derived.
	var p Progress
	p.Add(3)
	s := p.Snapshot()
	if s.Done != 3 || s.Total != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Fraction != 0 || s.RatePerSec != 0 || s.ETASeconds != 0 || s.ElapsedSeconds != 0 {
		t.Fatalf("zero-value progress must not invent rates: %+v", s)
	}
}

func TestSnapshotRateAndETA(t *testing.T) {
	p := NewProgress(10)
	p.Add(4)
	s := p.Snapshot()
	if s.Done != 4 || s.Total != 10 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Fraction != 0.4 {
		t.Fatalf("fraction = %v", s.Fraction)
	}
	if s.ElapsedSeconds <= 0 {
		t.Fatalf("elapsed = %v", s.ElapsedSeconds)
	}
	if s.RatePerSec <= 0 {
		t.Fatalf("rate = %v", s.RatePerSec)
	}
	// ETA must agree with the rate: remaining / rate.
	want := 6 / s.RatePerSec
	if diff := s.ETASeconds - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("eta = %v, want %v", s.ETASeconds, want)
	}
}

func TestSnapshotSurfacesOvercount(t *testing.T) {
	// The PR-5 watcher semantics: an over-count is a worker bug that the
	// reader must see. Snapshot keeps Fraction > 1 and reports a zero —
	// never negative — ETA.
	p := NewProgress(2)
	p.Add(5)
	s := p.Snapshot()
	if s.Fraction != 2.5 {
		t.Fatalf("fraction = %v, want the true 2.5", s.Fraction)
	}
	if s.ETASeconds != 0 {
		t.Fatalf("eta = %v, want 0 for overshot work (never negative)", s.ETASeconds)
	}
}

func TestSnapshotNoCompletionsYet(t *testing.T) {
	p := NewProgress(5)
	s := p.Snapshot()
	if s.RatePerSec != 0 || s.ETASeconds != 0 {
		t.Fatalf("no completions must mean no rate and no ETA: %+v", s)
	}
}
