package metrics

import (
	"sync"
	"testing"
)

func TestProgressCounts(t *testing.T) {
	p := NewProgress(10)
	if p.Done() != 0 || p.Total() != 10 || p.Fraction() != 0 {
		t.Fatalf("fresh progress = %s", p)
	}
	p.Add(3)
	p.Add(1)
	if p.Done() != 4 {
		t.Fatalf("done = %d", p.Done())
	}
	if p.Fraction() != 0.4 {
		t.Fatalf("fraction = %v", p.Fraction())
	}
	if p.String() != "4/10" {
		t.Fatalf("string = %q", p.String())
	}
}

func TestProgressUnknownTotal(t *testing.T) {
	var p Progress
	p.Add(7)
	if p.Fraction() != 0 {
		t.Fatal("unknown total has no fraction")
	}
	if p.String() != "7" {
		t.Fatalf("string = %q", p.String())
	}
}

func TestProgressFractionReportsOvercount(t *testing.T) {
	// Over-counting past the total is a worker bug; Fraction must surface
	// it rather than clamp it to 1.
	p := NewProgress(2)
	p.Add(5)
	if p.Fraction() != 2.5 {
		t.Fatalf("fraction = %v, want the true 2.5", p.Fraction())
	}
}

func TestProgressConcurrentAdds(t *testing.T) {
	const workers, per = 16, 1000
	p := NewProgress(workers * per)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Add(1)
			}
		}()
	}
	wg.Wait()
	if p.Done() != workers*per {
		t.Fatalf("done = %d, want %d", p.Done(), workers*per)
	}
	if p.Fraction() != 1 {
		t.Fatalf("fraction = %v", p.Fraction())
	}
}
