package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{9, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); got != tt.want {
			t.Fatalf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c := NewCDF(in)
	in[0] = 100
	if c.At(3) != 1 {
		t.Fatal("CDF must copy its input")
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Fatal("empty CDF At must be 0")
	}
	if !math.IsNaN(c.Mean()) || !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty CDF stats must be NaN")
	}
	if c.Points(5) != nil {
		t.Fatal("empty CDF Points must be nil")
	}
}

func TestQuantiles(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if c.Quantile(0.5) != 5 {
		t.Fatalf("median = %v", c.Quantile(0.5))
	}
	if c.Quantile(0.1) != 1 {
		t.Fatalf("p10 = %v", c.Quantile(0.1))
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 10 {
		t.Fatalf("extremes = %v, %v", c.Quantile(0), c.Quantile(1))
	}
	if c.Min() != 1 || c.Max() != 10 {
		t.Fatal("Min/Max wrong")
	}
}

func TestMean(t *testing.T) {
	c := NewCDF([]float64{2, 4, 6})
	if c.Mean() != 4 {
		t.Fatalf("mean = %v", c.Mean())
	}
}

func TestPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 10 {
		t.Fatalf("x range = [%v, %v]", pts[0].X, pts[10].X)
	}
	if pts[0].F != 0.5 || pts[10].F != 1 {
		t.Fatalf("F values = %v, %v", pts[0].F, pts[10].F)
	}
	if c.Points(1) != nil {
		t.Fatal("n < 2 must return nil")
	}
}

func TestPointsSingleSample(t *testing.T) {
	// One sample collapses the range (lo == hi): every point sits at the
	// sample with F = 1, and nothing divides by the zero span.
	c := NewCDF([]float64{7})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.X != 7 || p.F != 1 {
			t.Fatalf("point %d = %+v, want X=7 F=1", i, p)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "mean=2.500") {
		t.Fatalf("String() = %q", s.String())
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.String() != "n=0" {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestGains(t *testing.T) {
	got := Gains([]float64{10, 20, 30}, []float64{5, 0, 10})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("gains = %v", got)
	}
	if Gains(nil, nil) != nil {
		t.Fatal("empty gains must be nil")
	}
}

func TestGainsMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mismatched lengths must panic, not silently truncate")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "Gains sample mismatch") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	Gains([]float64{10, 20}, []float64{5})
}

func TestASCIIPlot(t *testing.T) {
	curves := map[string]*CDF{
		"omnc": NewCDF([]float64{1, 2, 3}),
		"more": NewCDF([]float64{0.5, 1, 1.5}),
	}
	out := ASCIIPlot("Fig 2", "gain", 4, curves)
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "omnc") || !strings.Contains(out, "more") {
		t.Fatalf("plot missing elements:\n%s", out)
	}
	if !strings.Contains(out, "gain") {
		t.Fatal("plot missing x label")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 18 {
		t.Fatalf("plot has %d lines", len(lines))
	}
}

func TestASCIIPlotXAxisAlignment(t *testing.T) {
	// The xMax label must end under the last column of the axis for any
	// rendered width — 4 chars ("4.00"), 6 ("123.45"), 9 ("123456.78").
	for _, xMax := range []float64{4, 123.45, 123456.78} {
		out := ASCIIPlot("t", "x", xMax, map[string]*CDF{"c": NewCDF([]float64{1})})
		lines := strings.Split(out, "\n")
		var axis, labels string
		for i, line := range lines {
			if strings.Contains(line, "----") {
				axis, labels = line, lines[i+1]
				break
			}
		}
		if axis == "" {
			t.Fatalf("xMax=%v: no axis line in plot:\n%s", xMax, out)
		}
		label := strings.Split(strings.TrimPrefix(labels, "      0"), "  (")[0]
		want := fmt.Sprintf("%.2f", xMax)
		if strings.TrimLeft(label, " ") != want {
			t.Fatalf("xMax=%v: label = %q, want %q", xMax, label, want)
		}
		// "      0" + padding + label spans exactly the axis width.
		if got, wantLen := 7+len(label), len(axis); got != wantLen {
			t.Fatalf("xMax=%v: label line width %d != axis width %d\n%s", xMax, got, wantLen, out)
		}
	}
}

func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(samples)
		prev := -1.0
		for x := -30.0; x <= 30; x += 1.5 {
			f := c.At(x)
			if f < prev || f < 0 || f > 1 {
				return false
			}
			prev = f
		}
		return c.At(c.Max()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyQuantileInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := make([]float64, 30)
		for i := range samples {
			samples[i] = rng.Float64() * 100
		}
		c := NewCDF(samples)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			v := c.Quantile(q)
			// At(Quantile(q)) >= q by nearest-rank construction.
			if c.At(v) < q-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortedInvariant(t *testing.T) {
	c := NewCDF([]float64{5, 3, 8, 1})
	if !sort.Float64sAreSorted(c.sorted) {
		t.Fatal("internal samples must stay sorted")
	}
}

func TestJainIndexEqualRates(t *testing.T) {
	for _, n := range []int{1, 2, 5, 100} {
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 42.5
		}
		if got := JainIndex(rates); math.Abs(got-1) > 1e-12 {
			t.Fatalf("n=%d: Jain index of equal rates = %v, want 1", n, got)
		}
	}
}

func TestJainIndexOneHot(t *testing.T) {
	for _, n := range []int{2, 3, 10} {
		rates := make([]float64, n)
		rates[n/2] = 1e4
		if got, want := JainIndex(rates), 1/float64(n); math.Abs(got-want) > 1e-12 {
			t.Fatalf("n=%d: Jain index of one-hot rates = %v, want %v", n, got, want)
		}
	}
}

func TestJainIndexEdgeCases(t *testing.T) {
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("Jain index of no rates = %v, want 0", got)
	}
	if got := JainIndex([]float64{}); got != 0 {
		t.Fatalf("Jain index of empty rates = %v, want 0", got)
	}
	if got := JainIndex([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("Jain index of all-zero rates = %v, want 0", got)
	}
	if got := JainIndex([]float64{5, -1}); got != 0 {
		t.Fatalf("Jain index with a negative rate = %v, want 0", got)
	}
	if got := JainIndex([]float64{5, math.NaN()}); got != 0 {
		t.Fatalf("Jain index with NaN = %v, want 0", got)
	}
}

func TestPropertyJainIndexRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rates := make([]float64, 1+rng.Intn(20))
		for i := range rates {
			rates[i] = rng.Float64() * 1e5
		}
		j := JainIndex(rates)
		// 1/n <= J <= 1 for any non-degenerate rate vector.
		lo := 1 / float64(len(rates))
		return j >= lo-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJainIndexScaleInvariant(t *testing.T) {
	rates := []float64{100, 250, 75, 300}
	scaled := make([]float64, len(rates))
	for i, r := range rates {
		scaled[i] = r * 7.3
	}
	if a, b := JainIndex(rates), JainIndex(scaled); math.Abs(a-b) > 1e-12 {
		t.Fatalf("Jain index not scale invariant: %v vs %v", a, b)
	}
}
