// Package metrics computes the evaluation statistics of Sec. 5: empirical
// CDFs (every figure in the paper is a CDF), summary statistics, and the
// derived per-session metrics — throughput gain over ETX routing, node
// utility ratio and path utility ratio.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over float64
// samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied; the input is not retained).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by the nearest-rank
// method.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.sorted[rank]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Min and Max return the extreme samples.
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Points returns n evenly spaced (x, F(x)) pairs spanning the sample range,
// the series the paper's figures plot. n must be at least 2.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, F: c.At(x)}
	}
	return pts
}

// Point is one (x, F(x)) sample of a CDF curve.
type Point struct {
	X float64
	F float64
}

// Summary condenses a sample set the way the paper quotes results
// ("the average throughput gain of OMNC and MORE are 2.45 and 1.67").
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P10    float64
	P90    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) Summary {
	c := NewCDF(samples)
	if c.Len() == 0 {
		return Summary{}
	}
	return Summary{
		N:      c.Len(),
		Mean:   c.Mean(),
		Median: c.Quantile(0.5),
		P10:    c.Quantile(0.1),
		P90:    c.Quantile(0.9),
		Min:    c.Min(),
		Max:    c.Max(),
	}
}

// String formats the summary on one line.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f p10=%.3f p90=%.3f min=%.3f max=%.3f",
		s.N, s.Mean, s.Median, s.P10, s.P90, s.Min, s.Max)
}

// Gains divides each protocol throughput by the matching baseline
// throughput, skipping pairs where the baseline is not positive (the
// paper's throughput-gain metric is undefined there). The slices must be
// parallel — element i of both describes the same session — so mismatched
// lengths are a caller bug and panic rather than silently truncating the
// gain distribution.
func Gains(protocol, baseline []float64) []float64 {
	if len(protocol) != len(baseline) {
		panic(fmt.Sprintf("metrics: Gains sample mismatch: len(protocol)=%d len(baseline)=%d",
			len(protocol), len(baseline)))
	}
	var out []float64
	for i := range protocol {
		if baseline[i] > 0 {
			out = append(out, protocol[i]/baseline[i])
		}
	}
	return out
}

// ASCIIPlot renders one or more CDF curves as a fixed-width text chart:
// x spans [0, xMax], y is the cumulative fraction. It is how cmd/omnc-fig
// presents the paper's figures in a terminal.
func ASCIIPlot(title, xLabel string, xMax float64, curves map[string]*CDF) string {
	const width, height = 60, 16
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	markers := []byte{'o', '+', 'x', '*', '#', '@'}
	for ci, name := range names {
		c := curves[name]
		if c.Len() == 0 {
			continue
		}
		mark := markers[ci%len(markers)]
		for col := 0; col < width; col++ {
			x := xMax * float64(col) / float64(width-1)
			f := c.At(x)
			row := height - 1 - int(f*float64(height-1)+0.5)
			if row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	for i, row := range grid {
		y := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", y, string(row))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", width))
	// Right-align the xMax label with the axis end: the padding depends on
	// the rendered width of the label, not a fixed guess.
	xMaxLabel := fmt.Sprintf("%.2f", xMax)
	pad := width - 1 - len(xMaxLabel)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "      0%s%s  (%s)\n", strings.Repeat(" ", pad), xMaxLabel, xLabel)
	for ci, name := range names {
		fmt.Fprintf(&b, "      %c = %s (%s)\n", markers[ci%len(markers)], name, Summarize(curves[name].sorted))
	}
	return b.String()
}

// JainIndex is Jain's fairness index over per-session rates,
// (sum x)^2 / (n * sum x^2): 1 when every session receives the same rate,
// 1/n when a single session takes everything. An empty sample or all-zero
// rates yield 0 (no traffic to be fair about). Negative rates are invalid
// and also yield 0.
func JainIndex(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range rates {
		if x < 0 || math.IsNaN(x) {
			return 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(rates)) * sumSq)
}
