package lp

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomFeasibleProblem builds a bounded, feasible LP: box constraints keep
// it bounded, a couple of random inequality rows and one equality row make
// the tableau non-trivial.
func randomFeasibleProblem(rng *rand.Rand, n int) *Problem {
	p := &Problem{Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = rng.Float64()
	}
	for j := 0; j < n; j++ { // x_j <= box
		row := make([]float64, n)
		row[j] = 1
		p.AUb = append(p.AUb, row)
		p.BUb = append(p.BUb, 1+rng.Float64())
	}
	for i := 0; i < 2; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()
		}
		p.AUb = append(p.AUb, row)
		p.BUb = append(p.BUb, float64(n)/2)
	}
	eq := make([]float64, n)
	eq[0], eq[n-1] = 1, 1
	p.AEq = append(p.AEq, eq)
	p.BEq = append(p.BEq, 0.5)
	return p
}

// TestSolvePooledMatchesFresh pins the workspace contract: a solve on a
// recycled (dirty) workspace is bit-identical to one on a fresh workspace.
// Solving problems of varying sizes back to back leaves stale tableau
// contents behind for the next pooled solve to overwrite.
func TestSolvePooledMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		p := randomFeasibleProblem(rng, 2+rng.Intn(9))
		want, errW := p.solveWith(new(workspace))
		got, errG := p.Solve()
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: fresh err %v, pooled err %v", trial, errW, errG)
		}
		if errW != nil {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: pooled solve diverged from fresh:\n got %+v\nwant %+v",
				trial, got, want)
		}
	}
}

// TestSolveAllocsSteadyState gates the workspace's purpose: once the pool is
// warm, a solve allocates only the Solution and its result slices — not the
// tableau. The bound leaves headroom for the solution escapes (X, duals,
// the Solution and tableau headers) but is far below the old per-solve
// tableau cost.
func TestSolveAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	p := randomFeasibleProblem(rng, 8)
	if _, err := p.Solve(); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := p.Solve(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("pooled Solve allocates %.0f objects/op, want <= 8", allocs)
	}
}
