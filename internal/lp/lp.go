// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize    c'x
//	subject to  A_ub x <= b_ub
//	            A_eq x  = b_eq
//	            x >= 0
//
// It exists to solve the paper's sUnicast program (1)-(5) centrally, both to
// validate the distributed rate-control algorithm of Table 1 and to measure
// the "optimized throughput" that Sec. 5 compares emulated throughput
// against. Problem sizes are modest (a few hundred variables after node
// selection), so a dense tableau with Bland's anti-cycling rule is plenty.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Tolerance for pivoting and feasibility decisions.
const eps = 1e-9

// Errors returned by Solve.
var (
	// ErrInfeasible reports that no x satisfies the constraints.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded reports that the objective can grow without bound.
	ErrUnbounded = errors.New("lp: unbounded")
)

// Problem is a linear program in inequality/equality form. All variables are
// implicitly non-negative.
type Problem struct {
	// Objective holds c: Solve maximizes Objective . x.
	Objective []float64
	// AUb/BUb hold the inequality rows A_ub x <= b_ub.
	AUb [][]float64
	BUb []float64
	// AEq/BEq hold the equality rows A_eq x = b_eq.
	AEq [][]float64
	BEq []float64
}

// Solution is the optimum of a Problem.
type Solution struct {
	// X is the optimizer (length = len(Objective)).
	X []float64
	// Value is the attained objective c'x.
	Value float64
	// DualsUb are the shadow prices of the inequality rows: the marginal
	// objective gain per unit of b_ub slack. Non-negative at an optimum.
	DualsUb []float64
	// DualsEq are the shadow prices of the equality rows (free sign).
	DualsEq []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.Objective)
	if n == 0 {
		return errors.New("lp: empty objective")
	}
	if len(p.AUb) != len(p.BUb) {
		return fmt.Errorf("lp: %d inequality rows, %d bounds", len(p.AUb), len(p.BUb))
	}
	if len(p.AEq) != len(p.BEq) {
		return fmt.Errorf("lp: %d equality rows, %d bounds", len(p.AEq), len(p.BEq))
	}
	for i, row := range p.AUb {
		if len(row) != n {
			return fmt.Errorf("lp: inequality row %d has %d entries, want %d", i, len(row), n)
		}
	}
	for i, row := range p.AEq {
		if len(row) != n {
			return fmt.Errorf("lp: equality row %d has %d entries, want %d", i, len(row), n)
		}
	}
	return nil
}

// workspace owns the solver's scratch storage: the dense tableau (one flat
// float64 slab carved into row views), the right-hand side, the basis, and
// the two phase cost vectors. Solve draws a workspace from a package pool
// and recycles it on return, so repeated solves — the LP-gap figure solves
// one program per session, and replans re-solve per epoch — stop paying the
// tableau allocation. Acquisition re-zeroes everything it reuses, so a
// pooled solve is numerically byte-identical to a fresh one (the property
// TestSolvePooledMatchesFresh pins).
type workspace struct {
	slab           []float64
	rows           [][]float64
	b              []float64
	basis          []int
	phase1, phase2 []float64
}

var wsPool = sync.Pool{New: func() any { return new(workspace) }}

// fslice returns a zeroed float64 slice of length n backed by *buf.
func fslice(buf *[]float64, n int) []float64 {
	s := *buf
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

// tableau carves the workspace into an m x cols tableau with zeroed storage.
func (ws *workspace) tableau(m, cols int) *tableau {
	a := ws.rows
	if cap(a) < m {
		a = make([][]float64, m)
	}
	a = a[:m]
	ws.rows = a
	slab := fslice(&ws.slab, m*cols)
	for i := 0; i < m; i++ {
		a[i] = slab[i*cols : (i+1)*cols]
	}
	basis := ws.basis
	if cap(basis) < m {
		basis = make([]int, m)
	}
	basis = basis[:m]
	ws.basis = basis
	return &tableau{a: a, b: fslice(&ws.b, m), basis: basis, cols: cols}
}

// Solve maximizes the problem. It returns ErrInfeasible or ErrUnbounded for
// degenerate inputs.
func (p *Problem) Solve() (*Solution, error) {
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)
	return p.solveWith(ws)
}

// solveWith is Solve on an explicit workspace; tests pass a fresh workspace
// to prove pooled and fresh solves agree bit for bit.
func (p *Problem) solveWith(ws *workspace) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Objective)
	mUb, mEq := len(p.AUb), len(p.AEq)
	m := mUb + mEq

	// Columns: n structural + mUb slacks + m artificials.
	nSlack := mUb
	nArt := m
	cols := n + nSlack + nArt

	// Build tableau rows with non-negative right-hand sides.
	t := ws.tableau(m, cols)
	a, b, basis := t.a, t.b, t.basis
	for i := 0; i < mUb; i++ {
		copy(a[i], p.AUb[i])
		a[i][n+i] = 1 // slack
		b[i] = p.BUb[i]
	}
	for i := 0; i < mEq; i++ {
		r := mUb + i
		copy(a[r], p.AEq[i])
		b[r] = p.BEq[i]
	}
	for i := 0; i < m; i++ {
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
		}
		a[i][n+nSlack+i] = 1 // artificial
		basis[i] = n + nSlack + i
	}

	// Phase 1: minimize the sum of artificials, i.e. maximize -(sum).
	phase1 := fslice(&ws.phase1, cols)
	for j := n + nSlack; j < cols; j++ {
		phase1[j] = -1
	}
	it1, err := t.optimize(phase1, cols)
	if err != nil {
		// Phase 1 is bounded by construction; unbounded means a bug.
		return nil, err
	}
	if t.objective(phase1) < -eps {
		return nil, ErrInfeasible
	}
	// Drive any lingering artificial variables out of the basis.
	t.expelArtificials(n + nSlack)

	// Phase 2: maximize the real objective over structural + slack columns,
	// freezing artificial columns at zero.
	phase2 := fslice(&ws.phase2, cols)
	copy(phase2, p.Objective)
	it2, err := t.optimize(phase2, n+nSlack)
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = t.b[i]
		}
	}
	value := 0.0
	for j, c := range p.Objective {
		value += c * x[j]
	}
	sol := &Solution{X: x, Value: value, Iterations: it1 + it2}

	// Shadow prices: y = c_B B^{-1}. The tableau's columns already hold
	// B^{-1} A, so the dual of inequality row i is the reduced objective
	// over its slack column, and the dual of an equality row is read off
	// its (possibly non-basic) artificial column. Each b[i] was negated
	// during normalization when it was negative, flipping the row's sign.
	readDual := func(col int, flipped bool) float64 {
		y := 0.0
		for r := 0; r < m; r++ {
			y += phase2[t.basis[r]] * t.a[r][col]
		}
		if flipped {
			return -y
		}
		return y
	}
	sol.DualsUb = make([]float64, mUb)
	for i := 0; i < mUb; i++ {
		sol.DualsUb[i] = readDual(n+i, p.BUb[i] < 0)
	}
	sol.DualsEq = make([]float64, mEq)
	for i := 0; i < mEq; i++ {
		sol.DualsEq[i] = readDual(n+nSlack+mUb+i, p.BEq[i] < 0)
	}
	return sol, nil
}

// tableau is a dense simplex tableau with an explicit basis.
type tableau struct {
	a     [][]float64
	b     []float64
	basis []int
	cols  int
}

// objective evaluates c over the current basic solution.
func (t *tableau) objective(c []float64) float64 {
	v := 0.0
	for i, bv := range t.basis {
		v += c[bv] * t.b[i]
	}
	return v
}

// optimize runs primal simplex maximizing c, considering only columns
// j < colLimit for entering. It uses Dantzig pricing with a Bland fallback
// after a pivot budget, which suffices for the problem sizes at hand.
func (t *tableau) optimize(c []float64, colLimit int) (int, error) {
	m := len(t.a)
	// Reduced costs require c_B B^{-1} A; with an explicit tableau the rows
	// are already B^{-1}A, so z_j - c_j = sum_i cB_i a_ij - c_j.
	iterations := 0
	maxIter := 200 * (m + t.cols)
	for {
		iterations++
		if iterations > maxIter {
			return iterations, errors.New("lp: iteration limit exceeded (cycling?)")
		}
		bland := iterations > 20*(m+t.cols)
		// Pricing.
		enter := -1
		best := eps
		for j := 0; j < colLimit; j++ {
			zj := -c[j]
			for i := 0; i < m; i++ {
				zj += c[t.basis[i]] * t.a[i][j]
			}
			if -zj > best { // improving column: reduced cost c_j - z_j > 0
				if bland {
					enter = j
					break
				}
				best = -zj
				enter = j
			}
		}
		if enter < 0 {
			return iterations, nil // optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t.a[i][enter] > eps {
				r := t.b[i] / t.a[i][enter]
				if r < bestRatio-eps || (math.Abs(r-bestRatio) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return iterations, ErrUnbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	m := len(t.a)
	pv := t.a[row][col]
	inv := 1 / pv
	for j := 0; j < t.cols; j++ {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	t.a[row][col] = 1 // exact
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.b[i] -= f * t.b[row]
		t.a[i][col] = 0 // exact
	}
	t.basis[row] = col
}

// expelArtificials pivots basic artificial variables (all at value zero
// after a feasible phase 1) out of the basis where possible.
func (t *tableau) expelArtificials(artStart int) {
	for i, bv := range t.basis {
		if bv < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
		// If the row is all zeros over real columns it is redundant; the
		// artificial stays basic at zero, which is harmless.
	}
}
