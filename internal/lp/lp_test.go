package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
	p := &Problem{
		Objective: []float64{3, 2},
		AUb:       [][]float64{{1, 1}, {1, 3}},
		BUb:       []float64{4, 6},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 12) {
		t.Fatalf("value = %v, want 12", sol.Value)
	}
	if !approx(sol.X[0], 4) || !approx(sol.X[1], 0) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestClassicTwoVariable(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21.
	p := &Problem{
		Objective: []float64{5, 4},
		AUb:       [][]float64{{6, 4}, {1, 2}},
		BUb:       []float64{24, 6},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 21) || !approx(sol.X[0], 3) || !approx(sol.X[1], 1.5) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// max x + y s.t. x + y = 3, x <= 2 -> any split with x<=2; obj = 3.
	p := &Problem{
		Objective: []float64{1, 1},
		AUb:       [][]float64{{1, 0}},
		BUb:       []float64{2},
		AEq:       [][]float64{{1, 1}},
		BEq:       []float64{3},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 3) {
		t.Fatalf("value = %v, want 3", sol.Value)
	}
	if sol.X[0] > 2+1e-9 {
		t.Fatalf("x = %v violates bound", sol.X)
	}
}

func TestNegativeRHSNormalized(t *testing.T) {
	// Equality with negative rhs: x - y = -2, x + y <= 4, max x ->
	// y = x + 2, x + (x+2) <= 4 -> x <= 1.
	p := &Problem{
		Objective: []float64{1, 0},
		AUb:       [][]float64{{1, 1}},
		BUb:       []float64{4},
		AEq:       [][]float64{{1, -1}},
		BEq:       []float64{-2},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1) || !approx(sol.X[1], 3) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x = 5 cannot both hold.
	p := &Problem{
		Objective: []float64{1},
		AUb:       [][]float64{{1}},
		BUb:       []float64{1},
		AEq:       [][]float64{{1}},
		BEq:       []float64{5},
	}
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only -x <= 1: unbounded above.
	p := &Problem{
		Objective: []float64{1},
		AUb:       [][]float64{{-1}},
		BUb:       []float64{1},
	}
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := (&Problem{}).Solve(); err == nil {
		t.Fatal("empty objective must fail")
	}
	p := &Problem{Objective: []float64{1}, AUb: [][]float64{{1, 2}}, BUb: []float64{1}}
	if _, err := p.Solve(); err == nil {
		t.Fatal("ragged inequality row must fail")
	}
	p = &Problem{Objective: []float64{1}, AUb: [][]float64{{1}}, BUb: []float64{1, 2}}
	if _, err := p.Solve(); err == nil {
		t.Fatal("row/bound count mismatch must fail")
	}
	p = &Problem{Objective: []float64{1}, AEq: [][]float64{{1, 2}}, BEq: []float64{1}}
	if _, err := p.Solve(); err == nil {
		t.Fatal("ragged equality row must fail")
	}
	p = &Problem{Objective: []float64{1}, AEq: [][]float64{{1}}, BEq: []float64{1, 2}}
	if _, err := p.Solve(); err == nil {
		t.Fatal("equality count mismatch must fail")
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Degenerate vertex (redundant constraints meeting at one point); the
	// anti-cycling fallback must still terminate at the optimum.
	p := &Problem{
		Objective: []float64{1, 1},
		AUb: [][]float64{
			{1, 0}, {0, 1}, {1, 1}, {2, 2},
		},
		BUb: []float64{1, 1, 2, 4},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 2) {
		t.Fatalf("value = %v, want 2", sol.Value)
	}
}

func TestMaxFlowAsLP(t *testing.T) {
	// Max flow on the diamond 0->1->3, 0->2->3, caps 1 each: value 2.
	// Variables: f01, f02, f13, f23.
	p := &Problem{
		Objective: []float64{1, 1, 0, 0},
		AUb: [][]float64{
			{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1},
		},
		BUb: []float64{1, 1, 1, 1},
		AEq: [][]float64{
			{1, 0, -1, 0}, // node 1 conservation
			{0, 1, 0, -1}, // node 2 conservation
		},
		BEq: []float64{0, 0},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 2) {
		t.Fatalf("max flow = %v, want 2", sol.Value)
	}
}

func TestRandomLPsSatisfyConstraints(t *testing.T) {
	// Random feasible bounded LPs: returned solutions must satisfy every
	// constraint and beat random feasible points.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() // non-negative rows + positive rhs => bounded, feasible at 0
			}
			p.AUb = append(p.AUb, row)
			p.BUb = append(p.BUb, 1+rng.Float64()*5)
		}
		// Ensure boundedness: every variable capped.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AUb = append(p.AUb, row)
			p.BUb = append(p.BUb, 10)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, row := range p.AUb {
			lhs := 0.0
			for j := range row {
				lhs += row[j] * sol.X[j]
			}
			if lhs > p.BUb[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated (%v > %v)", trial, i, lhs, p.BUb[i])
			}
		}
		for j, v := range sol.X {
			if v < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, v)
			}
		}
		// Compare against random feasible points (rejection sampling).
		for probe := 0; probe < 50; probe++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 3
			}
			feasible := true
			val := 0.0
			for i, row := range p.AUb {
				lhs := 0.0
				for j := range row {
					lhs += row[j] * x[j]
				}
				if lhs > p.BUb[i] {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			for j := range x {
				val += p.Objective[j] * x[j]
			}
			if val > sol.Value+1e-6 {
				t.Fatalf("trial %d: random point beats 'optimum' (%v > %v)", trial, val, sol.Value)
			}
		}
	}
}

func TestIterationsReported(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 1},
		AUb:       [][]float64{{1, 1}},
		BUb:       []float64{1},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iterations <= 0 {
		t.Fatal("Iterations must be positive")
	}
}

func TestDualsStrongDuality(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6: primal optimum 21,
	// dual optimum b'y must equal it (strong duality), with known
	// y = (0.75, 0.5).
	p := &Problem{
		Objective: []float64{5, 4},
		AUb:       [][]float64{{6, 4}, {1, 2}},
		BUb:       []float64{24, 6},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.DualsUb[0], 0.75) || !approx(sol.DualsUb[1], 0.5) {
		t.Fatalf("duals = %v, want (0.75, 0.5)", sol.DualsUb)
	}
	dualValue := 24*sol.DualsUb[0] + 6*sol.DualsUb[1]
	if !approx(dualValue, sol.Value) {
		t.Fatalf("strong duality violated: %v != %v", dualValue, sol.Value)
	}
}

func TestDualsEquality(t *testing.T) {
	// max x + y s.t. x + y = 3, x <= 2. The equality's dual must be 1
	// (objective rises 1:1 with b_eq) and the inequality's 0 (slack).
	p := &Problem{
		Objective: []float64{1, 1},
		AUb:       [][]float64{{1, 0}},
		BUb:       []float64{2},
		AEq:       [][]float64{{1, 1}},
		BEq:       []float64{3},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.DualsEq[0], 1) {
		t.Fatalf("equality dual = %v, want 1", sol.DualsEq[0])
	}
	if !approx(sol.DualsUb[0], 0) {
		t.Fatalf("slack inequality dual = %v, want 0", sol.DualsUb[0])
	}
}

func TestDualsComplementarySlackness(t *testing.T) {
	// Random bounded feasible LPs: y_i > 0 only on tight rows, and strong
	// duality holds.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(4)
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64() + 0.1
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64()
			}
			p.AUb = append(p.AUb, row)
			p.BUb = append(p.BUb, 1+rng.Float64()*5)
		}
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AUb = append(p.AUb, row)
			p.BUb = append(p.BUb, 10)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dualValue := 0.0
		for i, y := range sol.DualsUb {
			if y < -1e-7 {
				t.Fatalf("trial %d: negative dual %v", trial, y)
			}
			lhs := 0.0
			for j := range p.AUb[i] {
				lhs += p.AUb[i][j] * sol.X[j]
			}
			if y > 1e-7 && lhs < p.BUb[i]-1e-6 {
				t.Fatalf("trial %d: dual %v on slack row (%v < %v)", trial, y, lhs, p.BUb[i])
			}
			dualValue += y * p.BUb[i]
		}
		if math.Abs(dualValue-sol.Value) > 1e-6 {
			t.Fatalf("trial %d: strong duality violated: %v != %v", trial, dualValue, sol.Value)
		}
	}
}
