package sim

import (
	"math"
	"testing"

	"omnc/internal/topology"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	n := e.Run(10)
	if n != 3 {
		t.Fatalf("executed %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v", got)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10 (clock advances to until)", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run(2)
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("simultaneous events reordered: %v", got)
		}
	}
}

func TestEngineRunUntilStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5, func() { fired = true })
	e.Run(4)
	if fired {
		t.Fatal("event beyond until executed")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(6)
	if !fired {
		t.Fatal("event not executed on second Run")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	e.Run(100)
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

// queueTx is a simple frame queue for tests.
type queueTx struct {
	frames []*Frame
}

func (q *queueTx) Dequeue() *Frame {
	if len(q.frames) == 0 {
		return nil
	}
	f := q.frames[0]
	q.frames = q.frames[1:]
	return f
}

func (q *queueTx) QueueLen() int { return len(q.frames) }

func (q *queueTx) push(f *Frame) { q.frames = append(q.frames, f) }

// countRx counts received payloads.
type countRx struct {
	n     int
	froms []int
	last  interface{}
}

func (c *countRx) Receive(from int, payload interface{}) {
	c.n++
	c.froms = append(c.froms, from)
	c.last = payload
}

// chain is a 3-node line medium with configurable probabilities.
func chain(p01, p12 float64) Medium {
	nw, err := topology.NewExplicit([][]float64{
		{0, p01, 0},
		{p01, 0, p12},
		{0, p12, 0},
	})
	if err != nil {
		panic(err)
	}
	return nw
}

func TestMACValidation(t *testing.T) {
	if _, err := NewMAC(NewEngine(), chain(1, 1), Config{Capacity: 0}); err == nil {
		t.Fatal("zero capacity must fail")
	}
}

func TestPerfectBroadcastDelivery(t *testing.T) {
	eng := NewEngine()
	mac, err := NewMAC(eng, chain(1, 1), Config{Capacity: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tx := &queueTx{}
	rx1, rx2 := &countRx{}, &countRx{}
	mac.RegisterTransmitter(0, tx, math.Inf(1))
	mac.RegisterReceiver(1, rx1)
	mac.RegisterReceiver(2, rx2)
	tx.push(&Frame{Size: 100, Broadcast: true, Payload: "hello"})
	mac.Wake(0)
	eng.Run(10)
	if rx1.n != 1 {
		t.Fatalf("in-range receiver got %d frames", rx1.n)
	}
	if rx2.n != 0 {
		t.Fatal("out-of-range receiver must hear nothing")
	}
	if rx1.last != "hello" {
		t.Fatalf("payload = %v", rx1.last)
	}
	if mac.FramesSent(0) != 1 || mac.BytesSent(0) != 100 {
		t.Fatalf("tx stats: %d frames, %d bytes", mac.FramesSent(0), mac.BytesSent(0))
	}
	if mac.Delivered(0, 1) != 1 {
		t.Fatalf("link stat = %d", mac.Delivered(0, 1))
	}
}

func TestTransmissionTiming(t *testing.T) {
	// One uncapped transmitter alone: the frame rides at channel rate, so
	// a 100-byte frame at 1000 B/s takes 0.1 s of air time, preceded by at
	// most one contention slot (64/1000 = 0.064 s) of jitter.
	eng := NewEngine()
	mac, _ := NewMAC(eng, chain(1, 1), Config{Capacity: 1000, Seed: 1})
	tx := &queueTx{}
	rx := &countRx{}
	mac.RegisterTransmitter(0, tx, math.Inf(1))
	mac.RegisterReceiver(1, rx)
	tx.push(&Frame{Size: 100, Broadcast: true})
	mac.Wake(0)
	eng.Run(0.099)
	if rx.n != 0 {
		t.Fatal("frame delivered before air time elapsed")
	}
	eng.Run(0.2)
	if rx.n != 1 {
		t.Fatal("frame not delivered after air time plus one slot")
	}
}

func TestRateCapSlowsTransmissions(t *testing.T) {
	// Capped at 100 B/s with randomized pacing (+/-50% of the 1 s token
	// interval), ten 100-byte frames take roughly 10 s; an uncapped node
	// would finish in ~1 s.
	eng := NewEngine()
	mac, _ := NewMAC(eng, chain(1, 1), Config{Capacity: 1000, Seed: 1})
	tx := &queueTx{}
	rx := &countRx{}
	mac.RegisterTransmitter(0, tx, 100)
	mac.RegisterReceiver(1, rx)
	for i := 0; i < 10; i++ {
		tx.push(&Frame{Size: 100, Broadcast: true})
	}
	mac.Wake(0)
	eng.Run(0.4)
	if rx.n != 0 {
		t.Fatalf("at t=0.4 received %d frames, want 0 (token not refilled)", rx.n)
	}
	eng.Run(16)
	if rx.n != 10 {
		t.Fatalf("received %d frames, want all 10", rx.n)
	}
	// Long-run rate must respect the cap: 10 frames of 100 B at 100 B/s
	// cannot finish much before t = 9.
	if eng.Now() < 16 {
		t.Fatalf("engine stopped early at %v", eng.Now())
	}
}

func TestLossyBroadcastStatistics(t *testing.T) {
	// p = 0.5 link: out of 2000 broadcasts, deliveries should be ~1000.
	eng := NewEngine()
	mac, _ := NewMAC(eng, chain(0.5, 1), Config{Capacity: 1e6, Seed: 7})
	tx := &queueTx{}
	rx := &countRx{}
	mac.RegisterTransmitter(0, tx, math.Inf(1))
	mac.RegisterReceiver(1, rx)
	const frames = 2000
	for i := 0; i < frames; i++ {
		tx.push(&Frame{Size: 10, Broadcast: true})
	}
	mac.Wake(0)
	eng.Run(1000)
	ratio := float64(rx.n) / frames
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("delivery ratio %.3f, want ~0.5", ratio)
	}
}

func TestReliableUnicastRetransmits(t *testing.T) {
	eng := NewEngine()
	mac, _ := NewMAC(eng, chain(0.3, 1), Config{Capacity: 1e6, Seed: 3})
	tx := &queueTx{}
	rx := &countRx{}
	mac.RegisterTransmitter(0, tx, math.Inf(1))
	mac.RegisterReceiver(1, rx)
	const frames = 300
	for i := 0; i < frames; i++ {
		tx.push(&Frame{Size: 10, Dest: 1, Reliable: true})
	}
	mac.Wake(0)
	eng.Run(4000)
	if rx.n != frames {
		t.Fatalf("reliable unicast delivered %d/%d", rx.n, frames)
	}
	// Expected attempts per frame = 1/(0.3 * 0.3) = 11.1: MAC reliability
	// pays for forward data AND reverse ACK delivery (the ETX metric's
	// two-way ratio).
	perFrame := float64(mac.FramesSent(0)) / frames
	if perFrame < 9 || perFrame > 13.5 {
		t.Fatalf("attempts per frame = %.2f, want ~11.1 (two-way ETX)", perFrame)
	}
	if mac.Dropped(0) != 0 {
		t.Fatalf("dropped %d frames", mac.Dropped(0))
	}
}

func TestReliableUnicastGivesUpAfterMaxRetries(t *testing.T) {
	eng := NewEngine()
	// Probability 0 link: delivery impossible.
	nw, _ := topology.NewExplicit([][]float64{
		{0, 0.0001, 0},
		{0.0001, 0, 1},
		{0, 1, 0},
	})
	mac, _ := NewMAC(eng, nw, Config{Capacity: 1e6, Seed: 3, MaxRetries: 5})
	tx := &queueTx{}
	rx := &countRx{}
	mac.RegisterTransmitter(0, tx, math.Inf(1))
	mac.RegisterReceiver(1, rx)
	tx.push(&Frame{Size: 10, Dest: 1, Reliable: true})
	mac.Wake(0)
	eng.Run(100)
	if mac.FramesSent(0) != 5 {
		t.Fatalf("sent %d attempts, want 5", mac.FramesSent(0))
	}
	if mac.Dropped(0) != 1 {
		t.Fatalf("dropped = %d, want 1", mac.Dropped(0))
	}
}

func TestFairShareBetweenInterferingTransmitters(t *testing.T) {
	// Nodes 0 and 2 hear each other and share receiver 1: carrier sensing
	// serializes them and random contention splits the channel evenly.
	nw, _ := topology.NewExplicit([][]float64{
		{0, 1, 0.9},
		{1, 0, 1},
		{0.9, 1, 0},
	})
	eng := NewEngine()
	mac, _ := NewMAC(eng, nw, Config{Capacity: 1000, Seed: 5})
	txA, txB := &queueTx{}, &queueTx{}
	rx := &countRx{}
	mac.RegisterTransmitter(0, txA, math.Inf(1))
	mac.RegisterTransmitter(2, txB, math.Inf(1))
	mac.RegisterReceiver(1, rx)
	const each = 50
	for i := 0; i < each; i++ {
		txA.push(&Frame{Size: 100, Broadcast: true})
		txB.push(&Frame{Size: 100, Broadcast: true})
	}
	mac.Wake(0)
	mac.Wake(2)
	// Total 10000 bytes through a shared 1000 B/s neighbourhood: at least
	// 10 s of air time plus contention jitter.
	eng.Run(9.9)
	done := mac.BytesSent(0) + mac.BytesSent(2)
	if done > 10000-100 {
		t.Fatalf("finished too fast for shared capacity: %d bytes by t=9.9", done)
	}
	eng.Run(16)
	if got := mac.BytesSent(0) + mac.BytesSent(2); got != 10000 {
		t.Fatalf("sent %d bytes, want 10000", got)
	}
	// Fairness: random contention splits the channel roughly evenly.
	if diff := math.Abs(float64(mac.BytesSent(0) - mac.BytesSent(2))); diff > 2000 {
		t.Fatalf("unfair split: %d vs %d", mac.BytesSent(0), mac.BytesSent(2))
	}
	// Carrier sensing keeps mutually in-range transmitters collision-free.
	if mac.Collided(1) != 0 {
		t.Fatalf("%d collisions between coordinated transmitters", mac.Collided(1))
	}
}

func TestHiddenTerminalsCollide(t *testing.T) {
	// Nodes 0 and 2 cannot hear each other but share receiver 1: both
	// saturate the channel, so nearly every reception at 1 is destroyed by
	// interference — "a node cannot receive packets if it falls in the
	// range of an interfering node" (Sec. 5).
	nw, _ := topology.NewExplicit([][]float64{
		{0, 1, 0},
		{1, 0, 1},
		{0, 1, 0},
	})
	eng := NewEngine()
	mac, _ := NewMAC(eng, nw, Config{Capacity: 1000, Seed: 6, Mode: ModeCSMA})
	txA, txB := &queueTx{}, &queueTx{}
	rx := &countRx{}
	mac.RegisterTransmitter(0, txA, math.Inf(1))
	mac.RegisterTransmitter(2, txB, math.Inf(1))
	mac.RegisterReceiver(1, rx)
	const each = 100
	for i := 0; i < each; i++ {
		txA.push(&Frame{Size: 100, Broadcast: true})
		txB.push(&Frame{Size: 100, Broadcast: true})
	}
	mac.Wake(0)
	mac.Wake(2)
	eng.Run(60)
	if mac.Collided(1) < 150 {
		t.Fatalf("collisions = %d, want most of %d receptions jammed", mac.Collided(1), 2*each)
	}
	if rx.n > each/2 {
		t.Fatalf("received %d frames despite saturated hidden terminals", rx.n)
	}
}

func TestNonInterferingTransmittersFullRate(t *testing.T) {
	// 0->1 and 2->3 are disjoint neighbourhoods: both run at capacity.
	nw, _ := topology.NewExplicit([][]float64{
		{0, 1, 0, 0},
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	eng := NewEngine()
	mac, _ := NewMAC(eng, nw, Config{Capacity: 1000, Seed: 5})
	txA, txB := &queueTx{}, &queueTx{}
	mac.RegisterTransmitter(0, txA, math.Inf(1))
	mac.RegisterTransmitter(2, txB, math.Inf(1))
	mac.RegisterReceiver(1, &countRx{})
	mac.RegisterReceiver(3, &countRx{})
	for i := 0; i < 10; i++ {
		txA.push(&Frame{Size: 100, Broadcast: true})
		txB.push(&Frame{Size: 100, Broadcast: true})
	}
	mac.Wake(0)
	mac.Wake(2)
	eng.Run(1.8) // 1000 bytes each at full rate: 1 s air + jitter
	if mac.BytesSent(0) != 1000 || mac.BytesSent(2) != 1000 {
		t.Fatalf("parallel transmitters sent %d and %d bytes by t=1.8",
			mac.BytesSent(0), mac.BytesSent(2))
	}
}

func TestQueueSampling(t *testing.T) {
	eng := NewEngine()
	mac, _ := NewMAC(eng, chain(1, 1), Config{Capacity: 100, Seed: 1, QueueSampleInterval: 0.01})
	tx := &queueTx{}
	mac.RegisterTransmitter(0, tx, math.Inf(1))
	mac.RegisterReceiver(1, &countRx{})
	// 10 frames of 100 bytes at 100 B/s: ~1 s each plus contention jitter;
	// the queue drains linearly 10, 9, ..., so its time average over the
	// busy period is ~5.5 (slightly higher while jitter stretches the
	// drain past the 10 s window).
	for i := 0; i < 10; i++ {
		tx.push(&Frame{Size: 100, Broadcast: true})
	}
	mac.Wake(0)
	eng.Run(10)
	avg := mac.TimeAvgQueue(0)
	if avg < 4.5 || avg > 7.5 {
		t.Fatalf("time-averaged queue = %.2f, want ~5.5-6.5", avg)
	}
	if mac.TimeAvgQueue(1) != 0 {
		t.Fatal("non-transmitting node must have zero queue")
	}
}

func TestQueueSamplingDisabled(t *testing.T) {
	eng := NewEngine()
	mac, _ := NewMAC(eng, chain(1, 1), Config{Capacity: 100, Seed: 1})
	if mac.TimeAvgQueue(0) != 0 {
		t.Fatal("sampling disabled must report 0")
	}
}

func TestLinkStats(t *testing.T) {
	eng := NewEngine()
	mac, _ := NewMAC(eng, chain(1, 1), Config{Capacity: 1e6, Seed: 1})
	tx := &queueTx{}
	mac.RegisterTransmitter(0, tx, math.Inf(1))
	mac.RegisterReceiver(1, &countRx{})
	for i := 0; i < 4; i++ {
		tx.push(&Frame{Size: 10, Broadcast: true})
	}
	mac.Wake(0)
	eng.Run(10)
	stats := mac.LinkStats()
	if len(stats) != 1 || stats[0].From != 0 || stats[0].To != 1 || stats[0].Delivered != 4 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestCappedSharePrioritizedUnderContention(t *testing.T) {
	// A rate-capped node (100 B/s token bucket) next to an uncapped one:
	// the capped node transmits only its allocation; the uncapped one
	// absorbs the remaining air time.
	nw, _ := topology.NewExplicit([][]float64{
		{0, 1, 0.9},
		{1, 0, 1},
		{0.9, 1, 0},
	})
	eng := NewEngine()
	mac, _ := NewMAC(eng, nw, Config{Capacity: 1000, Seed: 9})
	capped, uncapped := &queueTx{}, &queueTx{}
	mac.RegisterTransmitter(0, capped, 100)
	mac.RegisterTransmitter(2, uncapped, math.Inf(1))
	mac.RegisterReceiver(1, &countRx{})
	for i := 0; i < 200; i++ {
		capped.push(&Frame{Size: 100, Broadcast: true})
		uncapped.push(&Frame{Size: 100, Broadcast: true})
	}
	mac.Wake(0)
	mac.Wake(2)
	eng.Run(10)
	// In 10 s: capped ~ 1000 bytes (its token rate); uncapped takes most
	// of the rest, discounted by contention jitter.
	if b := mac.BytesSent(0); math.Abs(float64(b)-1000) > 300 {
		t.Fatalf("capped node sent %d bytes, want ~1000", b)
	}
	if b := mac.BytesSent(2); b < 5500 || b > 9200 {
		t.Fatalf("uncapped node sent %d bytes, want most of the channel", b)
	}
}

func TestReceptionAccountingBalances(t *testing.T) {
	// Every broadcast offered to a registered receiver must land in exactly
	// one of three buckets: delivered, noise-lost, or (CSMA) collided.
	for _, mode := range []Mode{ModeOracle, ModeCSMA} {
		mode := mode
		name := "oracle"
		if mode == ModeCSMA {
			name = "csma"
		}
		t.Run(name, func(t *testing.T) {
			nw, _ := topology.NewExplicit([][]float64{
				{0, 0.6, 0.4},
				{0.6, 0, 0.7},
				{0.4, 0.7, 0},
			})
			eng := NewEngine()
			mac, _ := NewMAC(eng, nw, Config{Capacity: 1e5, Seed: 12, Mode: mode})
			txA, txB := &queueTx{}, &queueTx{}
			rx := &countRx{}
			mac.RegisterTransmitter(0, txA, math.Inf(1))
			mac.RegisterTransmitter(1, txB, math.Inf(1))
			mac.RegisterReceiver(2, rx)
			const each = 200
			for i := 0; i < each; i++ {
				txA.push(&Frame{Size: 50, Broadcast: true})
				txB.push(&Frame{Size: 50, Broadcast: true})
			}
			mac.Wake(0)
			mac.Wake(1)
			eng.Run(10)
			offered := mac.FramesSent(0) + mac.FramesSent(1) // both in range of 2
			accounted := mac.Delivered(0, 2) + mac.Delivered(1, 2) + mac.Lost(2) + mac.Collided(2)
			if offered != accounted {
				t.Fatalf("offered %d != delivered+lost+collided %d", offered, accounted)
			}
			if int64(rx.n) != mac.Delivered(0, 2)+mac.Delivered(1, 2) {
				t.Fatalf("receiver saw %d, MAC delivered %d", rx.n,
					mac.Delivered(0, 2)+mac.Delivered(1, 2))
			}
			if mode == ModeOracle && mac.Collided(2) != 0 {
				t.Fatal("oracle mode must never collide")
			}
		})
	}
}

func TestUnknownModeRejected(t *testing.T) {
	if _, err := NewMAC(NewEngine(), chain(1, 1), Config{Capacity: 1, Mode: Mode(99)}); err == nil {
		t.Fatal("unknown mode must fail")
	}
}
