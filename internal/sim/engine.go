// Package sim is the in-process substitute for the paper's Drift emulation
// testbed (Sec. 5): a discrete-event simulator whose PHY and MAC follow the
// models Drift implements — per-link Bernoulli packet loss from the
// distance-probability map, and an idealized collision-free MAC in which
// transmitters within range of a common receiver share the channel capacity
// ("interfering nodes can optimally multiplex the channel").
//
// Protocol logic stays outside this package: protocols register Transmitter
// queues and Receiver callbacks with the MAC and react to deliveries.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. Time is in seconds, starting at 0.
// Engines are not safe for concurrent use; the whole simulation runs on one
// goroutine, which is also how Drift serializes its model computations.
type Engine struct {
	now     float64
	seq     uint64
	stopped bool
	queue   eventQueue
}

// NewEngine returns an engine at time zero with an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay seconds of simulated time. Negative delays
// panic: they would reorder causality.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.seq++
	heap.Push(&e.queue, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run executes events in timestamp order until the calendar empties, the
// next event lies beyond until, or Stop is called from inside an event; the
// clock finishes at min(until, last event time) unless stopped. It returns
// the number of events executed.
func (e *Engine) Run(until float64) int {
	executed := 0
	for e.queue.Len() > 0 && !e.stopped {
		if e.queue[0].at > until {
			break
		}
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		ev.fn()
		executed++
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return executed
}

// Stop halts the run loop after the current event; pending events stay
// queued and the clock stays at the stopping event's time. Used when a
// session reaches its goal before the wall-clock horizon.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
