// Package sim is the in-process substitute for the paper's Drift emulation
// testbed (Sec. 5): a discrete-event simulator whose PHY and MAC follow the
// models Drift implements — per-link Bernoulli packet loss from the
// distance-probability map, and an idealized collision-free MAC in which
// transmitters within range of a common receiver share the channel capacity
// ("interfering nodes can optimally multiplex the channel").
//
// Protocol logic stays outside this package: protocols register Transmitter
// queues and Receiver callbacks with the MAC and react to deliveries.
package sim

import "fmt"

// Handler is a scheduled callback bound to its own state. Scheduling a
// handler (ScheduleHandler) is the allocation-free alternative to Schedule:
// converting an existing pointer to the interface allocates nothing, whereas
// every closure passed to Schedule is a fresh heap object. Hot paths keep a
// free list of handler structs and recycle them from inside Fire.
type Handler interface {
	// Fire runs the event at its scheduled time.
	Fire()
}

// Event is a scheduled callback: either a typed handler or a plain closure.
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events
	h   Handler
	fn  func()
}

// before orders events by timestamp, then by scheduling order. It is a
// strict total order (seq is unique), so the execution sequence does not
// depend on heap internals.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is a discrete-event scheduler. Time is in seconds, starting at 0.
// Engines are not safe for concurrent use; the whole simulation runs on one
// goroutine, which is also how Drift serializes its model computations.
//
// The calendar is a hand-rolled binary heap of event values: unlike
// container/heap, pushing and popping moves no events through interface{},
// so scheduling allocates only when the backing array grows.
type Engine struct {
	now     float64
	seq     uint64
	stopped bool
	queue   []event
}

// NewEngine returns an engine at time zero with an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay seconds of simulated time. Negative delays
// panic: they would reorder causality. Each call allocates the closure; on
// hot paths prefer ScheduleHandler with a recycled Handler.
func (e *Engine) Schedule(delay float64, fn func()) {
	e.push(delay, event{fn: fn})
}

// ScheduleHandler runs h.Fire after delay seconds of simulated time. The
// handler may be recycled from inside Fire; the engine keeps no reference
// after firing.
func (e *Engine) ScheduleHandler(delay float64, h Handler) {
	e.push(delay, event{h: h})
}

func (e *Engine) push(delay float64, ev event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.seq++
	ev.at = e.now + delay
	ev.seq = e.seq
	e.queue = append(e.queue, ev)
	// Sift up.
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The queue must be non-empty.
func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // drop handler/closure references for the GC
	e.queue = q[:n]
	q = e.queue
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q[l].before(q[least]) {
			least = l
		}
		if r < n && q[r].before(q[least]) {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// Run executes events in timestamp order until the calendar empties, the
// next event lies beyond until, or Stop is called from inside an event; the
// clock finishes at min(until, last event time) unless stopped. It returns
// the number of events executed.
func (e *Engine) Run(until float64) int {
	executed := 0
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > until {
			break
		}
		ev := e.pop()
		e.now = ev.at
		if ev.h != nil {
			ev.h.Fire()
		} else {
			ev.fn()
		}
		executed++
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return executed
}

// Stop halts the run loop after the current event; pending events stay
// queued and the clock stays at the stopping event's time. Used when a
// session reaches its goal before the wall-clock horizon.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
