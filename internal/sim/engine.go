// Package sim is the in-process substitute for the paper's Drift emulation
// testbed (Sec. 5): a discrete-event simulator whose PHY and MAC follow the
// models Drift implements — per-link Bernoulli packet loss from the
// distance-probability map, and an idealized collision-free MAC in which
// transmitters within range of a common receiver share the channel capacity
// ("interfering nodes can optimally multiplex the channel").
//
// Protocol logic stays outside this package: protocols register Transmitter
// queues and Receiver callbacks with the MAC and react to deliveries.
package sim

import "fmt"

// Handler is a scheduled callback bound to its own state. Scheduling a
// handler (ScheduleHandler) is the allocation-free alternative to Schedule:
// converting an existing pointer to the interface allocates nothing, whereas
// every closure passed to Schedule is a fresh heap object. Hot paths keep a
// free list of handler structs and recycle them from inside Fire.
type Handler interface {
	// Fire runs the event at its scheduled time.
	Fire()
}

// Sharded marks a handler as safe to run concurrently with handlers of
// other shards at the same timestamp. Handlers with equal Shard() values
// always execute in scheduling order on a single worker; handlers with
// different shards may interleave arbitrarily, so a sharded Fire must only
// touch state owned by its shard, plus concurrency-safe infrastructure
// (atomics, sync.Pool). Side effects on shared state — MAC wake-ups, trace
// recording, run termination — must instead be deferred through the shard's
// engine view (Schedule/ScheduleHandler at delay 0), which the parallel
// engine merges deterministically at the bucket barrier. Sharded handlers
// must never call Engine.Stop directly; the parallel engine panics if one
// does.
type Sharded interface {
	Handler
	// Shard returns the handler's ownership domain (session tag).
	Shard() uint32
}

// Engine is a discrete-event scheduler. Time is in seconds, starting at 0.
// Two implementations exist: SerialEngine runs everything on the calling
// goroutine (how Drift serializes its model computations), and
// ParallelEngine drains same-timestamp buckets with a worker pool while
// preserving the exact serial execution order per shard. Both produce
// bit-identical simulations for workloads that follow the Sharded contract.
type Engine interface {
	// Now returns the current simulation time in seconds.
	Now() float64
	// Schedule runs fn after delay seconds of simulated time. Negative
	// delays panic: they would reorder causality.
	Schedule(delay float64, fn func())
	// ScheduleHandler runs h.Fire after delay seconds of simulated time.
	// The handler may be recycled from inside Fire; the engine keeps no
	// reference after firing.
	ScheduleHandler(delay float64, h Handler)
	// Run executes events in timestamp order until the calendar empties,
	// the next event lies beyond until, or Stop is called from inside an
	// event; the clock finishes at min(until, last event time) unless
	// stopped. It returns the number of events executed.
	Run(until float64) int
	// Stop halts the run loop; pending events stay queued and the clock
	// stays at the stopping event's time.
	Stop()
	// Pending returns the number of queued events.
	Pending() int
}

// Event is a scheduled callback: either a typed handler or a plain closure.
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events
	h   Handler
	fn  func()
}

// before orders events by timestamp, then by scheduling order. It is a
// strict total order (seq is unique), so the execution sequence does not
// depend on heap internals.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// calendar is the event queue shared by both engines: a hand-rolled binary
// heap of event values. Unlike container/heap, pushing and popping moves no
// events through interface{}, so scheduling allocates only when the backing
// array grows.
type calendar struct {
	now   float64
	seq   uint64
	queue []event
}

func (c *calendar) push(delay float64, ev event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	c.seq++
	ev.at = c.now + delay
	ev.seq = c.seq
	c.queue = append(c.queue, ev)
	// Sift up.
	q := c.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The queue must be non-empty.
func (c *calendar) pop() event {
	q := c.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // drop handler/closure references for the GC
	c.queue = q[:n]
	q = c.queue
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q[l].before(q[least]) {
			least = l
		}
		if r < n && q[r].before(q[least]) {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// SerialEngine executes the whole simulation on one goroutine. It is not
// safe for concurrent use.
type SerialEngine struct {
	cal     calendar
	stopped bool
}

var _ Engine = (*SerialEngine)(nil)

// NewEngine returns a serial engine at time zero with an empty calendar.
func NewEngine() *SerialEngine {
	return &SerialEngine{}
}

// Now returns the current simulation time in seconds.
func (e *SerialEngine) Now() float64 { return e.cal.now }

// Schedule runs fn after delay seconds of simulated time. Negative delays
// panic: they would reorder causality. Each call allocates the closure; on
// hot paths prefer ScheduleHandler with a recycled Handler.
func (e *SerialEngine) Schedule(delay float64, fn func()) {
	e.cal.push(delay, event{fn: fn})
}

// ScheduleHandler runs h.Fire after delay seconds of simulated time. The
// handler may be recycled from inside Fire; the engine keeps no reference
// after firing.
func (e *SerialEngine) ScheduleHandler(delay float64, h Handler) {
	e.cal.push(delay, event{h: h})
}

// Run executes events in timestamp order until the calendar empties, the
// next event lies beyond until, or Stop is called from inside an event; the
// clock finishes at min(until, last event time) unless stopped. It returns
// the number of events executed.
func (e *SerialEngine) Run(until float64) int {
	executed := 0
	for len(e.cal.queue) > 0 && !e.stopped {
		if e.cal.queue[0].at > until {
			break
		}
		ev := e.cal.pop()
		e.cal.now = ev.at
		if ev.h != nil {
			ev.h.Fire()
		} else {
			ev.fn()
		}
		executed++
	}
	if e.cal.now < until && !e.stopped {
		e.cal.now = until
	}
	return executed
}

// Stop halts the run loop after the current event; pending events stay
// queued and the clock stays at the stopping event's time. Used when a
// session reaches its goal before the wall-clock horizon.
func (e *SerialEngine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *SerialEngine) Pending() int { return len(e.cal.queue) }
