// Conservative time-bucketed parallel engine. Events at distinct
// timestamps stay strictly ordered; events at the SAME timestamp that
// implement Sharded run concurrently on a bounded worker pool, one worker
// per shard, with a barrier before the clock moves on. The design follows
// Akita's parallel engine (same-time events between barriers) but adds a
// determinism contract strong enough for bit-identical replay:
//
//   - The calendar orders events by (time, sequence number), exactly like
//     SerialEngine. A "round" is the maximal run of CONSECUTIVE sharded
//     events at the head of the current bucket; unsharded events between
//     or after them run inline on the engine goroutine, so mixed buckets
//     preserve the serial interleaving of serial-only handlers.
//   - Within a round, events are grouped by shard preserving calendar
//     order; each group executes in order on one worker. Events of
//     different shards may interleave in wall-clock time, but by the
//     Sharded contract they touch disjoint state, so the interleaving is
//     unobservable.
//   - Side effects a sharded handler wants to have on the calendar
//     (Schedule, ScheduleHandler) are buffered per EVENT in its shard's
//     engine view, then merged at the barrier in (event calendar position,
//     call order) — which is precisely the order the serial engine would
//     have assigned sequence numbers in. Same seed, any worker count, and
//     the calendar evolves identically to SerialEngine's, so the whole
//     simulation is bit-identical.
//
// Conservative, not optimistic: handlers here are arbitrary Go closures
// over shared pools, RNGs, and GF(256) scratch — there is no way to
// checkpoint and roll them back, so a Time-Warp style optimistic scheduler
// cannot be retrofitted. The conservative barrier costs only the bucket
// synchronization, and lossy-MAC workloads put hundreds of same-time
// deliveries in each bucket, which is where the parallelism lives.
package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// deferredOp is one buffered calendar mutation from a sharded handler.
type deferredOp struct {
	delay float64
	h     Handler
	fn    func()
}

// shardView is the Engine handed to one shard's handlers. Outside a
// parallel round it forwards straight to the engine; while its shard's
// events execute inside a round it buffers Schedule/ScheduleHandler into
// the current event's effect list for the deterministic barrier merge.
// A view is only ever used by the goroutine currently running its shard
// (the engine goroutine between rounds, the shard's worker during one).
type shardView struct {
	eng *ParallelEngine
	cur *[]deferredOp // non-nil only while this shard executes in a round
}

var _ Engine = (*shardView)(nil)

func (v *shardView) Now() float64 { return v.eng.cal.now }

func (v *shardView) Schedule(delay float64, fn func()) {
	if v.cur != nil {
		if delay < 0 {
			panic(fmt.Sprintf("sim: negative delay %v", delay))
		}
		*v.cur = append(*v.cur, deferredOp{delay: delay, fn: fn})
		return
	}
	v.eng.Schedule(delay, fn)
}

func (v *shardView) ScheduleHandler(delay float64, h Handler) {
	if v.cur != nil {
		if delay < 0 {
			panic(fmt.Sprintf("sim: negative delay %v", delay))
		}
		*v.cur = append(*v.cur, deferredOp{delay: delay, h: h})
		return
	}
	v.eng.ScheduleHandler(delay, h)
}

func (v *shardView) Run(until float64) int { return v.eng.Run(until) }

func (v *shardView) Stop() {
	if v.cur != nil {
		// A deferred Stop would diverge from SerialEngine (which halts
		// immediately); refusing loudly keeps the contract honest. Route
		// termination through Schedule(0, eng.Stop) instead, which both
		// engines order identically.
		panic("sim: Stop called from a sharded handler; defer it via Schedule(0, ...)")
	}
	v.eng.Stop()
}

func (v *shardView) Pending() int { return v.eng.Pending() }

// ViewFor returns the Engine a shard's handlers should schedule through:
// a buffering view on a ParallelEngine, the engine itself otherwise.
func ViewFor(e Engine, shard uint32) Engine {
	if pe, ok := e.(*ParallelEngine); ok {
		return pe.View(shard)
	}
	return e
}

// roundTask is one shard's slice of the current round, sent to a worker.
type roundTask struct {
	shard uint32
	idxs  []int
}

// ParallelEngine is a conservative time-bucketed scheduler with the same
// observable behaviour as SerialEngine for workloads that follow the
// Sharded contract. All Engine methods must be called from the engine
// goroutine (or through shard views); only views are worker-safe.
type ParallelEngine struct {
	cal     calendar
	stopped bool
	workers int

	views map[uint32]*shardView

	// Round scratch, reused across rounds.
	round    []event
	effects  [][]deferredOp
	groupIdx map[uint32]int
	groups   []roundTask
	idxPool  [][]int

	inRound bool // set while workers own the round scratch

	tasks chan roundTask
	wg    sync.WaitGroup

	panicMu  sync.Mutex
	panicVal any
}

var _ Engine = (*ParallelEngine)(nil)

// NewParallelEngine returns a parallel engine at time zero. workers bounds
// the goroutines draining each round; values < 1 mean GOMAXPROCS.
func NewParallelEngine(workers int) *ParallelEngine {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelEngine{
		workers:  workers,
		views:    make(map[uint32]*shardView),
		groupIdx: make(map[uint32]int),
	}
}

// Workers returns the worker-pool bound.
func (e *ParallelEngine) Workers() int { return e.workers }

// View returns the buffering Engine view for shard, creating it on first
// use. Views must be created before Run (they are registered in a map the
// workers read concurrently).
func (e *ParallelEngine) View(shard uint32) Engine {
	if v, ok := e.views[shard]; ok {
		return v
	}
	v := &shardView{eng: e}
	e.views[shard] = v
	return v
}

// Now returns the current simulation time in seconds.
func (e *ParallelEngine) Now() float64 { return e.cal.now }

// Schedule runs fn after delay seconds. Calling it from inside a parallel
// round (i.e. from a sharded handler that bypassed its view) panics: such
// a call would race on the calendar and break the determinism contract.
func (e *ParallelEngine) Schedule(delay float64, fn func()) {
	if e.inRound {
		panic("sim: Schedule on ParallelEngine from a parallel round; use the shard's view")
	}
	e.cal.push(delay, event{fn: fn})
}

// ScheduleHandler runs h.Fire after delay seconds. Same round restriction
// as Schedule.
func (e *ParallelEngine) ScheduleHandler(delay float64, h Handler) {
	if e.inRound {
		panic("sim: ScheduleHandler on ParallelEngine from a parallel round; use the shard's view")
	}
	e.cal.push(delay, event{h: h})
}

// Run executes events until the calendar empties, the next event lies
// beyond until, or Stop is called; identical semantics to
// SerialEngine.Run, including the executed-event count and final clock.
func (e *ParallelEngine) Run(until float64) int {
	executed := 0
	for len(e.cal.queue) > 0 && !e.stopped {
		t := e.cal.queue[0].at
		if t > until {
			break
		}
		// Drain the bucket at time t. Consecutive sharded events form
		// parallel rounds; everything else runs inline in calendar order.
		for len(e.cal.queue) > 0 && !e.stopped && e.cal.queue[0].at == t {
			if _, ok := e.cal.queue[0].h.(Sharded); ok {
				executed += e.runRound(t)
				continue
			}
			ev := e.cal.pop()
			e.cal.now = ev.at
			if ev.h != nil {
				ev.h.Fire()
			} else {
				ev.fn()
			}
			executed++
		}
	}
	if e.cal.now < until && !e.stopped {
		e.cal.now = until
	}
	e.stopPool()
	if p := e.panicVal; p != nil {
		e.panicVal = nil
		panic(p)
	}
	return executed
}

// runRound pops the maximal run of consecutive sharded events at time t,
// executes them grouped by shard, and merges their buffered effects back
// into the calendar in serial order.
func (e *ParallelEngine) runRound(t float64) int {
	e.cal.now = t
	e.round = e.round[:0]
	for len(e.cal.queue) > 0 && e.cal.queue[0].at == t {
		if _, ok := e.cal.queue[0].h.(Sharded); !ok {
			break
		}
		e.round = append(e.round, e.cal.pop())
	}
	n := len(e.round)
	for len(e.effects) < n {
		e.effects = append(e.effects, nil)
	}

	// Group calendar positions by shard, preserving order within each.
	clear(e.groupIdx)
	e.groups = e.groups[:0]
	for i := 0; i < n; i++ {
		shard := e.round[i].h.(Sharded).Shard()
		gi, ok := e.groupIdx[shard]
		if !ok {
			gi = len(e.groups)
			e.groupIdx[shard] = gi
			var idxs []int
			if len(e.idxPool) > 0 {
				idxs = e.idxPool[len(e.idxPool)-1][:0]
				e.idxPool = e.idxPool[:len(e.idxPool)-1]
			}
			e.groups = append(e.groups, roundTask{shard: shard, idxs: idxs})
		}
		e.groups[gi].idxs = append(e.groups[gi].idxs, i)
	}

	e.inRound = true
	if e.workers == 1 || len(e.groups) == 1 {
		for _, g := range e.groups {
			e.runGroupLocked(g)
		}
	} else {
		e.startPool()
		e.wg.Add(len(e.groups))
		for _, g := range e.groups {
			e.tasks <- g
		}
		e.wg.Wait()
	}
	e.inRound = false

	if p := e.panicVal; p != nil {
		e.stopPool()
		e.panicVal = nil
		panic(p)
	}

	// Barrier merge: replay buffered effects in (calendar position, call
	// order) — the exact order SerialEngine would have pushed them in.
	for i := 0; i < n; i++ {
		for _, op := range e.effects[i] {
			e.cal.push(op.delay, event{h: op.h, fn: op.fn})
		}
		e.effects[i] = e.effects[i][:0]
		e.round[i] = event{} // drop handler references for the GC
	}
	for _, g := range e.groups {
		e.idxPool = append(e.idxPool, g.idxs)
	}
	return n
}

// runGroupLocked executes one shard's events in calendar order, routing
// each event's calendar mutations into its own effect buffer. Runs on a
// worker goroutine (or inline when the round is trivially serial).
func (e *ParallelEngine) runGroupLocked(g roundTask) {
	defer func() {
		if r := recover(); r != nil {
			e.panicMu.Lock()
			if e.panicVal == nil {
				e.panicVal = r
			}
			e.panicMu.Unlock()
		}
	}()
	v := e.views[g.shard]
	for _, i := range g.idxs {
		if v != nil {
			v.cur = &e.effects[i]
		}
		e.round[i].h.Fire()
		if v != nil {
			v.cur = nil
		}
	}
}

func (e *ParallelEngine) startPool() {
	if e.tasks != nil {
		return
	}
	ch := make(chan roundTask)
	e.tasks = ch
	for i := 0; i < e.workers; i++ {
		go func() {
			for g := range ch {
				e.runGroupLocked(g)
				e.wg.Done()
			}
		}()
	}
}

func (e *ParallelEngine) stopPool() {
	if e.tasks != nil {
		close(e.tasks)
		e.tasks = nil
	}
}

// Stop halts the run loop; pending events stay queued and the clock stays
// at the stopping event's time. Must be called from the engine goroutine
// (serial-context events); sharded handlers defer it via their view.
func (e *ParallelEngine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *ParallelEngine) Pending() int { return len(e.cal.queue) }
