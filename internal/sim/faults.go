package sim

// Fault-injection hooks. The MAC keeps two overlays that internal/faults
// drives: downNodes marks crashed nodes (their ports stay registered but are
// detached from the channel — no transmissions, no receptions, no presence in
// the oracle allocation), and linkMod multiplies directed links' reception
// probabilities (link flaps pin a link to zero; Gilbert–Elliott bursts swing
// it between nominal and degraded).
//
// Both maps stay nil until the first fault fires, so fault-free runs pay only
// nil-map lookups — which allocate nothing and consume no randomness — and
// remain bit-identical to a MAC without the feature.

// isDown reports whether node is currently crashed.
func (m *MAC) isDown(node int) bool {
	return m.downNodes != nil && m.downNodes[node]
}

// probNow is the effective reception probability of directed link (i, j):
// the medium's PHY probability times the fault overlay's factor, if any.
func (m *MAC) probNow(i, j int) float64 {
	p := m.medium.Prob(i, j)
	if m.linkMod != nil {
		if f, ok := m.linkMod[[2]int{i, j}]; ok {
			p *= f
		}
	}
	return p
}

// SetNodeDown crashes or recovers node. Crashing detaches the node's ports
// from the channel: an in-flight frame falls silent (its completion event
// observes the down state and retires the payload without delivery), a parked
// retransmission frame is released immediately, and the node neither receives
// nor participates in the oracle's rate allocation. Recovering re-attaches the
// ports and wakes the node's transmitter.
func (m *MAC) SetNodeDown(node int, down bool) {
	if down {
		if m.downNodes == nil {
			m.downNodes = make(map[int]bool)
		}
		m.downNodes[node] = true
		// A frame parked for retransmission (current set, not on the air) is
		// never completed, so its payload reference must be dropped here; a
		// busy frame's completion handler does its own down-aware cleanup.
		if !m.busy[node] && m.current[node] != nil {
			retire(m.current[node])
			m.current[node] = nil
		}
		return
	}
	delete(m.downNodes, node)
	m.Wake(node)
}

// SetLinkFactor installs a reception-probability multiplier on directed link
// (i, j). Factor 0 silences the link; factors in (0, 1) degrade it.
func (m *MAC) SetLinkFactor(i, j int, factor float64) {
	if m.linkMod == nil {
		m.linkMod = make(map[[2]int]float64)
	}
	m.linkMod[[2]int{i, j}] = factor
}

// ClearLinkFactor restores the nominal PHY probability of directed link
// (i, j).
func (m *MAC) ClearLinkFactor(i, j int) {
	delete(m.linkMod, [2]int{i, j})
}
