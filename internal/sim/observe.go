package sim

import "omnc/internal/report"

// Observation is the MAC's opt-in measurement overlay. Like the fault
// overlays it is nil until enabled, so the default run pays one pointer
// nil-check per hook and nothing else — no allocation, no RNG draw, no
// change to event timing. Enabled, every hook is a slice-indexed add.
type Observation struct {
	airtime  []float64 // per node: scheduled air occupancy in seconds
	tokenSum []float64 // per node: token-bucket fill summed at attempts
	tokenN   []int64   // per node: attempts observed with a token bucket
	queue    *report.Histogram
}

// EnableObservation arms the measurement overlay. Call before driving the
// engine; idempotent. It only allocates counters — a run with observation
// enabled is bit-identical to one without.
func (m *MAC) EnableObservation() {
	if m.obs != nil {
		return
	}
	n := m.medium.Size()
	m.obs = &Observation{
		airtime:  make([]float64, n),
		tokenSum: make([]float64, n),
		tokenN:   make([]int64, n),
		queue:    report.NewHistogram(report.DefaultQueueBounds...),
	}
}

// Airtime returns node's accumulated scheduled air occupancy in seconds, or
// 0 when observation is disabled. Oracle-mode frames occupy the channel for
// Size/rate at their allocated share; CSMA frames for Size/Capacity.
func (m *MAC) Airtime(node int) float64 {
	if m.obs == nil {
		return 0
	}
	return m.obs.airtime[node]
}

// TokenObservations returns the sum and count of token-bucket fill samples
// observed at node's transmission attempts (CSMA rate-capped nodes only;
// zero otherwise or when observation is disabled).
func (m *MAC) TokenObservations(node int) (sum float64, n int64) {
	if m.obs == nil {
		return 0, 0
	}
	return m.obs.tokenSum[node], m.obs.tokenN[node]
}

// QueueHistogram returns the histogram of per-transmitter queue lengths
// accumulated by the periodic sampler, or nil when observation is disabled
// (or sampling is off).
func (m *MAC) QueueHistogram() *report.Histogram {
	if m.obs == nil {
		return nil
	}
	return m.obs.queue
}
