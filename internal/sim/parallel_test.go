package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// The parallel engine's correctness claim is behavioural equivalence with
// the serial engine for programs that follow the Sharded contract. The
// tests here run the same scheduling program on both engines and demand
// identical observations: per-shard execution order, executed counts,
// clocks, pending counts, Stop semantics and panic behaviour. The fuzz
// target generalizes the fixed programs to randomized schedules with
// duplicate timestamps, nested same-time scheduling and mid-bucket stops.

// fuzzSpec is one event of a generated scheduling program: fire at delay
// (relative to its scheduling time), optionally schedule children from
// inside the event, optionally stop the engine (unsharded events only).
type fuzzSpec struct {
	id       int
	delay    float64
	shard    int // 0..fuzzShards-1, or -1 for unsharded
	stop     bool
	children []*fuzzSpec
}

const fuzzShards = 4

// decodeSpecs turns fuzz bytes into a program: a forest of event specs.
// Each spec consumes three bytes; children nest up to depth 3.
func decodeSpecs(data []byte, nextID *int, depth int) []*fuzzSpec {
	var out []*fuzzSpec
	for len(data) >= 3 {
		sp := &fuzzSpec{id: *nextID}
		*nextID++
		sp.delay = float64(data[0]%4) * 0.25 // duplicate timestamps by design
		shard := int(data[1] % (fuzzShards + 1))
		if shard == fuzzShards {
			sp.shard = -1
			sp.stop = data[2]&1 == 1 && depth == 0 // stop only from top-level serial events
		} else {
			sp.shard = shard
		}
		nChildren := 0
		if depth < 3 {
			nChildren = int(data[2]>>1) % 3
		}
		data = data[3:]
		for c := 0; c < nChildren && len(data) >= 3; c++ {
			consumed := 3 * specSize(data, depth+1)
			sp.children = decodeSpecs(data[:consumed], nextID, depth+1)
			data = data[consumed:]
		}
		out = append(out, sp)
	}
	return out
}

// specSize reports how many 3-byte records the first spec of data consumes
// (itself plus its nested children).
func specSize(data []byte, depth int) int {
	if len(data) < 3 {
		return 0
	}
	n := 1
	nChildren := 0
	if depth < 3 {
		nChildren = int(data[2]>>1) % 3
	}
	rest := data[3:]
	for c := 0; c < nChildren && len(rest) >= 3; c++ {
		k := specSize(rest, depth+1)
		n += k
		rest = rest[3*k:]
	}
	return n
}

// fuzzRun executes one program on one engine and logs execution order per
// shard (index fuzzShards holds the unsharded/serial log). Sharded events
// only append to their own shard's log, which is exactly the state-ownership
// discipline the Sharded contract demands.
type fuzzRun struct {
	eng   Engine
	views [fuzzShards]Engine
	logs  [fuzzShards + 1][]int
}

type fuzzSerialEvent struct {
	r  *fuzzRun
	sp *fuzzSpec
}

func (h *fuzzSerialEvent) Fire() {
	h.r.logs[fuzzShards] = append(h.r.logs[fuzzShards], h.sp.id)
	for _, c := range h.sp.children {
		h.r.schedule(h.r.eng, c)
	}
	if h.sp.stop {
		h.r.eng.Stop()
	}
}

type fuzzShardedEvent struct {
	r  *fuzzRun
	sp *fuzzSpec
}

func (h *fuzzShardedEvent) Shard() uint32 { return uint32(h.sp.shard) }

func (h *fuzzShardedEvent) Fire() {
	h.r.logs[h.sp.shard] = append(h.r.logs[h.sp.shard], h.sp.id)
	// Children are scheduled through the shard's view — the contract for
	// calendar access from a sharded handler (nested same-time Schedule
	// calls land in the event's effect buffer on the parallel engine).
	for _, c := range h.sp.children {
		h.r.schedule(h.r.views[h.sp.shard], c)
	}
}

// schedule arms sp on the given engine handle, alternating between the
// closure and handler forms so both Schedule paths are exercised.
func (r *fuzzRun) schedule(eng Engine, sp *fuzzSpec) {
	if sp.shard < 0 {
		h := &fuzzSerialEvent{r: r, sp: sp}
		if sp.id%2 == 0 {
			eng.ScheduleHandler(sp.delay, h)
		} else {
			eng.Schedule(sp.delay, h.Fire)
		}
		return
	}
	eng.ScheduleHandler(sp.delay, &fuzzShardedEvent{r: r, sp: sp})
}

// runProgram executes the program on eng until the horizon and returns the
// observations to compare.
func runProgram(eng Engine, specs []*fuzzSpec, until float64) (r *fuzzRun, executed, pending int, now float64) {
	r = &fuzzRun{eng: eng}
	for s := 0; s < fuzzShards; s++ {
		r.views[s] = ViewFor(eng, uint32(s))
	}
	for _, sp := range specs {
		r.schedule(eng, sp)
	}
	executed = eng.Run(until)
	return r, executed, eng.Pending(), eng.Now()
}

// diffEngines runs the program on the serial engine and on parallel engines
// at several worker counts and reports the first divergence.
func diffEngines(t *testing.T, data []byte, until float64) {
	t.Helper()
	nextID := 0
	specs := decodeSpecs(data, &nextID, 0)
	ref, refExec, refPend, refNow := runProgram(NewEngine(), specs, until)
	for _, workers := range []int{1, 2, 8} {
		nextID = 0
		specs := decodeSpecs(data, &nextID, 0)
		got, exec, pend, now := runProgram(NewParallelEngine(workers), specs, until)
		label := fmt.Sprintf("workers=%d", workers)
		if exec != refExec {
			t.Errorf("%s: executed %d events, serial executed %d", label, exec, refExec)
		}
		if pend != refPend {
			t.Errorf("%s: %d pending events, serial left %d", label, pend, refPend)
		}
		if now != refNow {
			t.Errorf("%s: clock at %v, serial at %v", label, now, refNow)
		}
		for s := 0; s <= fuzzShards; s++ {
			if !reflect.DeepEqual(ref.logs[s], got.logs[s]) {
				t.Errorf("%s: shard %d execution order diverged:\nserial:   %v\nparallel: %v",
					label, s, ref.logs[s], got.logs[s])
			}
		}
	}
}

func TestParallelEngineMatchesSerial(t *testing.T) {
	// A handcrafted program: duplicate timestamps across shards, nested
	// same-time scheduling, serial events interleaved between sharded runs,
	// and a tail beyond the horizon.
	progs := map[string][]byte{
		"same-bucket-shards": {0, 0, 4, 0, 1, 4, 0, 2, 4, 0, 0, 4},
		"nested-zero-delay":  {0, 0, 6, 0, 1, 2, 0, 4, 0, 1, 2, 4, 0, 3, 4},
		"serial-interleaved": {1, 0, 0, 1, 4, 0, 1, 1, 0, 1, 4, 0, 1, 2, 0},
		"stop-mid-bucket":    {2, 0, 0, 2, 4, 1, 2, 1, 0, 2, 4, 1, 2, 3, 0},
		"beyond-horizon":     {3, 0, 0, 200, 1, 0, 3, 2, 0},
		"deep-nesting":       {0, 0, 6, 0, 1, 6, 0, 2, 6, 0, 3, 4, 1, 0, 2, 2, 1, 0},
		"all-serial":         {0, 4, 0, 1, 4, 2, 0, 4, 0, 2, 4, 0},
		"single-shard-storm": {0, 1, 6, 0, 1, 6, 0, 1, 6, 0, 1, 0, 0, 1, 4, 0, 1, 2},
	}
	for name, prog := range progs {
		prog := prog
		t.Run(name, func(t *testing.T) { diffEngines(t, prog, 10) })
	}
}

func TestParallelEngineNegativeDelayPanics(t *testing.T) {
	recovered := func(fn func()) (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		fn()
		return ""
	}

	serialMsg := recovered(func() { NewEngine().Schedule(-1, func() {}) })
	parallelMsg := recovered(func() { NewParallelEngine(2).Schedule(-1, func() {}) })
	if serialMsg == "" || serialMsg != parallelMsg {
		t.Fatalf("negative-delay panics differ: serial %q, parallel %q", serialMsg, parallelMsg)
	}

	// From inside a parallel round, via the shard view: the panic must
	// carry the same message and propagate out of Run.
	eng := NewParallelEngine(2)
	view := eng.View(0)
	eng.ScheduleHandler(0, &hookSharded{shard: 0, fn: func() { view.Schedule(-0.5, func() {}) }})
	// A second shard keeps the round genuinely parallel.
	eng.ScheduleHandler(0, &hookSharded{shard: 1, fn: func() {}})
	roundMsg := recovered(func() { eng.Run(1) })
	wantMsg := recovered(func() { NewEngine().Schedule(-0.5, func() {}) })
	if roundMsg != wantMsg {
		t.Fatalf("in-round negative delay: got panic %q, serial panics %q", roundMsg, wantMsg)
	}
}

func TestParallelEngineShardedStopPanics(t *testing.T) {
	eng := NewParallelEngine(2)
	view := eng.View(0)
	eng.ScheduleHandler(0, &hookSharded{shard: 0, fn: view.Stop})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Stop from a sharded handler did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "Stop") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	eng.Run(1)
}

func TestParallelEngineRawScheduleFromRoundPanics(t *testing.T) {
	eng := NewParallelEngine(2)
	eng.ScheduleHandler(0, &hookSharded{shard: 0, fn: func() {
		eng.Schedule(0, func() {}) // bypassing the view: contract violation
	}})
	defer func() {
		if recover() == nil {
			t.Fatal("raw Schedule from a parallel round did not panic")
		}
	}()
	eng.Run(1)
}

func TestParallelEngineDeferredStopViaSchedule(t *testing.T) {
	// The sanctioned termination pattern: a sharded handler defers Stop
	// through Schedule(0, ...). Both engines must execute the same events.
	prog := func(eng Engine) (fired []string) {
		view := ViewFor(eng, 0)
		eng.ScheduleHandler(0, &hookSharded{shard: 0, fn: func() {
			fired = append(fired, "sharded")
			view.Schedule(0, func() {
				fired = append(fired, "stop")
				eng.Stop()
			})
		}})
		eng.Schedule(1, func() { fired = append(fired, "late") })
		eng.Run(10)
		return fired
	}
	serial := prog(NewEngine())
	parallel := prog(NewParallelEngine(4))
	want := []string{"sharded", "stop"}
	if !reflect.DeepEqual(serial, want) || !reflect.DeepEqual(parallel, serial) {
		t.Fatalf("deferred stop: serial %v, parallel %v, want %v", serial, parallel, want)
	}
}

func TestParallelEngineRunResumes(t *testing.T) {
	// Run can be called repeatedly with an advancing horizon; the pool is
	// torn down and rebuilt between calls.
	eng := NewParallelEngine(2)
	var fired []int
	for i := 0; i < 4; i++ {
		i := i
		eng.ScheduleHandler(float64(i), &hookSharded{shard: uint32(i % 2), fn: func() {
			fired = append(fired, i)
		}})
	}
	if n := eng.Run(1.5); n != 2 {
		t.Fatalf("first horizon executed %d events, want 2", n)
	}
	if n := eng.Run(10); n != 2 {
		t.Fatalf("second horizon executed %d events, want 2", n)
	}
	if !reflect.DeepEqual(fired, []int{0, 1, 2, 3}) {
		t.Fatalf("events fired %v", fired)
	}
}

// hookSharded is a minimal Sharded handler for the contract tests.
type hookSharded struct {
	shard uint32
	fn    func()
}

func (h *hookSharded) Shard() uint32 { return h.shard }
func (h *hookSharded) Fire()         { h.fn() }

// FuzzEngineOrder feeds randomized scheduling programs — duplicate
// timestamps, nested same-time Schedule calls, Stop mid-bucket — into both
// engines and demands identical execution order (per shard), executed
// counts, clocks and leftover calendars. CI runs this target in the fuzz
// smoke step.
func FuzzEngineOrder(f *testing.F) {
	f.Add([]byte{0, 0, 4, 0, 1, 4, 0, 2, 4})                            // one bucket, three shards
	f.Add([]byte{0, 0, 6, 0, 1, 2, 0, 4, 0, 1, 2, 4, 0, 3, 4})          // nested zero-delay
	f.Add([]byte{2, 0, 0, 2, 4, 1, 2, 1, 0, 2, 4, 1})                   // stop mid-bucket
	f.Add([]byte{1, 0, 0, 1, 4, 0, 1, 1, 0, 1, 4, 0, 1, 2, 0})          // serial interleaved
	f.Add([]byte{0, 1, 6, 0, 1, 6, 0, 1, 0, 0, 1, 4, 3, 2, 2, 0, 4, 1}) // shard storm + stop
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512] // bound program size, not coverage
		}
		diffEngines(t, data, 5)
	})
}
