package sim

import (
	"math"
	"testing"

	"omnc/internal/topology"
)

// stubPort is a canned transmitter/receiver port for mux tests.
type stubPort struct {
	frames []*Frame
	queue  int
	got    []int // senders of received payloads
}

func (p *stubPort) Dequeue() *Frame {
	if len(p.frames) == 0 {
		return nil
	}
	f := p.frames[0]
	p.frames = p.frames[1:]
	return f
}

func (p *stubPort) QueueLen() int { return p.queue }

func (p *stubPort) Receive(from int, payload interface{}) { p.got = append(p.got, from) }

func frameOf(tag int) *Frame { return &Frame{Size: 100, Broadcast: true, Payload: tag} }

func TestTxMuxRoundRobin(t *testing.T) {
	a := &stubPort{frames: []*Frame{frameOf(1), frameOf(2)}}
	b := &stubPort{frames: []*Frame{frameOf(10)}}
	mux := &txMux{ports: []Transmitter{a, b}, caps: []float64{1, 1}}
	var tags []int
	for {
		f := mux.Dequeue()
		if f == nil {
			break
		}
		tags = append(tags, f.Payload.(int))
	}
	// a, then b, then back to a: the mux resumes after the last producer.
	want := []int{1, 10, 2}
	if len(tags) != len(want) {
		t.Fatalf("dequeued %v, want %v", tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("dequeued %v, want %v", tags, want)
		}
	}
}

func TestTxMuxSkipsIdlePorts(t *testing.T) {
	idle := &stubPort{}
	busy := &stubPort{frames: []*Frame{frameOf(7)}}
	mux := &txMux{ports: []Transmitter{idle, busy}, caps: []float64{1, 1}}
	f := mux.Dequeue()
	if f == nil || f.Payload.(int) != 7 {
		t.Fatalf("mux did not skip the idle port: %+v", f)
	}
}

func TestTxMuxQueueLenSums(t *testing.T) {
	mux := &txMux{ports: []Transmitter{&stubPort{queue: 2}, &stubPort{queue: 3}}}
	if got := mux.QueueLen(); got != 5 {
		t.Fatalf("QueueLen = %d, want 5", got)
	}
}

func TestTxMuxCapSum(t *testing.T) {
	mux := &txMux{caps: []float64{100, 250}}
	if got := mux.capSum(); got != 350 {
		t.Fatalf("capSum = %v, want 350", got)
	}
	mux.caps = append(mux.caps, math.Inf(1))
	if got := mux.capSum(); !math.IsInf(got, 1) {
		t.Fatalf("capSum with an uncapped port = %v, want +Inf", got)
	}
}

func TestRxFanoutDeliversToAllPorts(t *testing.T) {
	a, b := &stubPort{}, &stubPort{}
	fan := &rxFanout{ports: []Receiver{a, b}}
	fan.Receive(4, "payload")
	if len(a.got) != 1 || len(b.got) != 1 || a.got[0] != 4 || b.got[0] != 4 {
		t.Fatalf("fanout delivered a=%v b=%v", a.got, b.got)
	}
}

// TestAttachPromotesOnSecondPort checks the component API against a live
// MAC: one port binds directly, a second port at the same node promotes to
// multiplexing, and both ports' frames reach a fanned-out receiver pair.
func TestAttachPromotesOnSecondPort(t *testing.T) {
	nw, err := topology.NewExplicit([][]float64{
		{0, 1},
		{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	mac, err := NewMAC(eng, nw, Config{Capacity: 1e4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := &stubPort{frames: []*Frame{frameOf(1)}}
	b := &stubPort{frames: []*Frame{frameOf(2)}}
	mac.AttachTransmitter(0, a, math.Inf(1))
	mac.AttachTransmitter(0, b, math.Inf(1))
	rx1, rx2 := &stubPort{}, &stubPort{}
	mac.AttachReceiver(1, rx1)
	mac.AttachReceiver(1, rx2)
	mac.Wake(0)
	eng.Run(10)
	if mac.FramesSent(0) != 2 {
		t.Fatalf("FramesSent = %d, want 2 (one per port)", mac.FramesSent(0))
	}
	if len(rx1.got) != 2 || len(rx2.got) != 2 {
		t.Fatalf("fanout receptions rx1=%d rx2=%d, want 2 each", len(rx1.got), len(rx2.got))
	}
}
