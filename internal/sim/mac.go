package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Medium exposes the lossy-link structure the MAC operates over. Both
// *topology.Network and protocol-level subgraph adapters satisfy it.
type Medium interface {
	// Size returns the number of nodes.
	Size() int
	// Prob returns the one-way reception probability of link (i,j); zero
	// means out of range.
	Prob(i, j int) float64
	// Neighbors lists the nodes within (interference = transmission) range
	// of i.
	Neighbors(i int) []int
}

// Frame is one link-layer transmission unit.
type Frame struct {
	// Size in bytes; determines air time.
	Size int
	// Broadcast frames are offered to every in-range receiver with
	// independent per-link loss draws; unicast frames only to Dest.
	Broadcast bool
	// Dest is the unicast destination node (ignored for broadcasts).
	Dest int
	// Reliable unicast frames are retransmitted by the MAC until received
	// or MaxRetries attempts are spent — the paper's ETX baseline assumes
	// "reliability is guaranteed by MAC layer re-transmissions" (Sec. 5).
	// MAC-layer reliability needs link-layer acknowledgements, so an
	// attempt succeeds only if the data survives the forward link AND the
	// ACK survives the reverse link — the two-way delivery ratio the ETX
	// metric of De Couto et al. is defined over. Broadcast frames carry no
	// ACKs (the coded protocols' resilience makes them unnecessary).
	Reliable bool
	// AckSize adds the link-layer ACK's air time to each reliable-unicast
	// attempt.
	AckSize int
	// Payload travels opaquely to receivers. If it implements Releasable,
	// the MAC manages its lifetime: enqueueing the frame transfers one
	// reference to the MAC, which releases it when the frame retires (after
	// its final attempt); each successful delivery additionally retains the
	// payload before the Receive callback and releases it after the callback
	// returns, so receivers that need the payload beyond Receive must retain
	// it themselves.
	Payload interface{}
}

// Releasable is a reference-counted payload (e.g. a pooled *coding.Packet).
// The MAC retains payloads per scheduled delivery and releases them when
// frames retire, letting pooled packets cycle without garbage.
type Releasable interface {
	Retain()
	Release()
}

// Tagged is a payload that knows which session it belongs to. When every
// receiver port at a node attached with AttachSessionReceiver, the MAC
// routes Tagged payloads straight to the matching port and shards the
// hand-off event by the tag, enabling the parallel engine to run
// deliveries of different sessions concurrently.
type Tagged interface {
	SessionTag() uint32
}

// Transmitter supplies frames to the MAC. Implementations must call
// MAC.Wake after enqueueing work while idle.
type Transmitter interface {
	// Dequeue pops the next frame to send, or nil when idle.
	Dequeue() *Frame
	// QueueLen reports the backlog (pending frames) for queue statistics.
	QueueLen() int
}

// Receiver consumes delivered frames.
type Receiver interface {
	// Receive handles a successfully received payload. from is the
	// transmitting node.
	Receive(from int, payload interface{})
}

// Mode selects the channel-access model.
type Mode int

const (
	// ModeOracle is the paper's ideal scheduling scheme (Sec. 5): an
	// omniscient scheduler lets interfering nodes "optimally multiplex the
	// channel" with no collisions; concurrently active transmitters split
	// every receiver neighbourhood's capacity max-min fairly, honouring
	// per-node rate caps. This is the default and the model behind all
	// paper-figure experiments.
	ModeOracle Mode = iota + 1
	// ModeCSMA is a decentralized contention model kept for the MAC
	// sensitivity ablation: transmitters carrier-sense one another within
	// range, hidden terminals collide at common receivers ("a node cannot
	// receive packets if it falls in the range of an interfering node"),
	// and rate caps pace transmissions with randomized intervals.
	ModeCSMA
)

// Config parameterizes the MAC model.
type Config struct {
	// Capacity is the channel capacity C in bytes/second (Sec. 3.2 assumes
	// every link alone has MAC-layer capacity C).
	Capacity float64
	// Mode selects the channel-access model; zero value means ModeOracle.
	Mode Mode
	// MaxRetries bounds reliable-unicast retransmissions. Default 100.
	MaxRetries int
	// Seed drives the loss process and contention jitter.
	Seed int64
	// QueueSampleInterval is the period of queue-size sampling in seconds;
	// 0 disables sampling. Fig. 3 samples broadcast queue sizes.
	QueueSampleInterval float64
	// TimeQuantum, when positive, rounds every frame-completion time up to
	// the next multiple of this many seconds. Completions of concurrently
	// active transmitters then share calendar buckets, which is what lets
	// the parallel engine batch their deliveries into multi-shard rounds —
	// the conservative-DES analogue of choosing a barrier window. It is a
	// timing-model parameter like SlotBytes: results remain deterministic
	// and engine-independent for any fixed value, but differ from the
	// continuous-time default (0 = off; all paper experiments keep 0).
	TimeQuantum float64
	// SlotBytes sets the CSMA contention-jitter scale: before
	// (re)attempting a transmission a node waits a uniform random time of
	// up to SlotBytes/Capacity seconds. Default 64.
	SlotBytes int
}

// LinkStat counts deliveries on a directed link.
type LinkStat struct {
	From, To  int
	Delivered int64
}

// MAC emulates the wireless channel access of the paper's Drift testbed:
// every transmission is subject to the PHY's per-link Bernoulli loss, and
// channel competition among neighbouring nodes follows the configured Mode.
// Per-node rate caps carry OMNC's allocated broadcast rates; uncapped nodes
// (MORE, oldMORE, ETX) take whatever the channel gives them.
type MAC struct {
	eng    Engine
	medium Medium
	cfg    Config
	rng    *rand.Rand

	tx       map[int]Transmitter
	rx       map[int]Receiver
	caps     map[int]float64
	busy     map[int]bool
	current  map[int]*Frame
	attempts map[int]int
	txStart  map[int]float64 // CSMA: start of current/last transmission
	txEnd    map[int]float64 // CSMA: end of current/last transmission
	tokens   map[int]float64 // CSMA: byte bucket for rate-capped nodes
	tokenAt  map[int]float64 // CSMA: last bucket refill time
	pending  map[int]bool    // CSMA: a retry event is already scheduled
	order    []int           // registered transmitter nodes, stable order
	sites    []int           // registered receiver nodes (constraint sites)

	// Component ports (component.go): per-node multiplexers created by
	// Attach{Transmitter,Receiver} when several sessions share a node.
	txm map[int]*txMux
	rxm map[int]*rxFanout

	// Fault-injection overlays (faults.go): crashed nodes whose ports are
	// detached from the channel, and per-directed-link reception-probability
	// multipliers (flaps and Gilbert–Elliott bursts). Both stay nil until
	// the first fault fires, so fault-free runs take the nil fast path
	// everywhere and remain bit-identical to a MAC without the feature.
	downNodes map[int]bool
	linkMod   map[[2]int]float64

	// Measurement overlay (observe.go): airtime, token-occupancy and
	// queue-length accumulators behind EnableObservation. Same nil-until-
	// enabled contract as the fault overlays above.
	obs *Observation

	// eventFree recycles macEvent structs: every event the MAC schedules —
	// transmission attempts, completions, deliveries, queue samples — is one
	// fixed struct drawn from this free list, so the steady-state per-frame
	// path allocates nothing. The simulation is single-goroutine, so a plain
	// slice suffices.
	eventFree []*macEvent

	// Oracle-mode allocation scratch: progressiveFill runs once per frame,
	// so its working state is preallocated per MAC (node-indexed slices
	// instead of maps) and the per-site coverage sets — which depend only on
	// the static medium and registrations — are computed once.
	fillActive   []int
	fillRates    []float64
	fillFrozen   []bool
	fillIsActive []bool
	siteCover    [][]int
	siteCoverOf  [][]int // transmitter -> indices of sites covering it
	siteRemain   []float64
	siteActiveN  []int // per-site count of active, unfrozen members
	fillTouched  []int // sites covering >= 1 active node this allocation
	fillOrderLen int   // registrations seen when siteCover was built
	fillSitesLen int

	// statistics
	framesSent    map[int]int64
	bytesSent     map[int]int64
	delivered     map[[2]int]int64
	collided      map[int]int64
	lost          map[int]int64
	queueSumTime  map[int]float64
	lastSampleAt  float64
	samplingSince float64
	dropped       map[int]int64
}

// NewMAC builds a MAC over the medium. Register transmitters and receivers,
// then drive the engine.
func NewMAC(eng Engine, medium Medium, cfg Config) (*MAC, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("sim: non-positive capacity %v", cfg.Capacity)
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeOracle
	}
	if cfg.Mode != ModeOracle && cfg.Mode != ModeCSMA {
		return nil, fmt.Errorf("sim: unknown MAC mode %d", cfg.Mode)
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 100
	}
	if cfg.SlotBytes <= 0 {
		cfg.SlotBytes = 64
	}
	m := &MAC{
		eng:          eng,
		medium:       medium,
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		tx:           make(map[int]Transmitter),
		rx:           make(map[int]Receiver),
		caps:         make(map[int]float64),
		busy:         make(map[int]bool),
		current:      make(map[int]*Frame),
		attempts:     make(map[int]int),
		txStart:      make(map[int]float64),
		txEnd:        make(map[int]float64),
		tokens:       make(map[int]float64),
		tokenAt:      make(map[int]float64),
		pending:      make(map[int]bool),
		txm:          make(map[int]*txMux),
		rxm:          make(map[int]*rxFanout),
		framesSent:   make(map[int]int64),
		bytesSent:    make(map[int]int64),
		delivered:    make(map[[2]int]int64),
		collided:     make(map[int]int64),
		lost:         make(map[int]int64),
		queueSumTime: make(map[int]float64),
		dropped:      make(map[int]int64),
	}
	if cfg.QueueSampleInterval > 0 {
		m.samplingSince = eng.Now()
		m.lastSampleAt = eng.Now()
		m.scheduleSample()
	}
	return m, nil
}

// macEvent is the MAC's fixed event struct: one pooled type covers every
// callback the MAC schedules, replacing the per-event closures that used to
// dominate the simulator's allocation profile.
type macEvent struct {
	m       *MAC
	kind    uint8
	node    int         // transmitter, receiver, or sampled node
	from    int         // evDeliver: transmitting node
	payload interface{} // evDeliver: delivered payload
}

const (
	evCSMATry  uint8 = iota + 1 // clear pending, then attempt transmission
	evTryStart                  // oracle-mode (re)attempt
	evComplete                  // finish the in-flight frame
	evDeliver                   // hand a payload to a receiver
	evSample                    // periodic queue-size sample
)

// Fire dispatches the event. The struct is recycled before the callback runs
// so the callback can immediately draw it again when scheduling follow-ups.
func (e *macEvent) Fire() {
	m, kind, node, from, payload := e.m, e.kind, e.node, e.from, e.payload
	e.payload = nil
	m.putEvent(e)
	switch kind {
	case evCSMATry:
		m.pending[node] = false
		m.tryStart(node)
	case evTryStart:
		m.tryStart(node)
	case evComplete:
		m.complete(node)
	case evDeliver:
		// The receiver may have crashed between the reception draw and this
		// zero-delay hand-off (fault events at the same timestamp fire
		// first): the payload is dropped, not delivered to a dead node.
		if !m.isDown(node) {
			m.rx[node].Receive(from, payload)
		}
		if rel, ok := payload.(Releasable); ok {
			rel.Release()
		}
	case evSample:
		m.sample()
	}
}

func (m *MAC) getEvent(kind uint8, node int) *macEvent {
	var e *macEvent
	if n := len(m.eventFree); n > 0 {
		e = m.eventFree[n-1]
		m.eventFree = m.eventFree[:n-1]
	} else {
		e = &macEvent{m: m}
	}
	e.kind = kind
	e.node = node
	return e
}

func (m *MAC) putEvent(e *macEvent) { m.eventFree = append(m.eventFree, e) }

// scheduleEvent arms a pooled event after delay seconds.
func (m *MAC) scheduleEvent(delay float64, kind uint8, node int) {
	m.eng.ScheduleHandler(delay, m.getEvent(kind, node))
}

// retire drops the MAC's ownership reference on a frame's payload once the
// frame has left the air for good.
func retire(f *Frame) {
	if rel, ok := f.Payload.(Releasable); ok {
		rel.Release()
	}
}

// RegisterTransmitter attaches a frame source to node. rateCap limits the
// node's long-run transmission rate in bytes/second; pass math.Inf(1) for
// uncapped contention.
func (m *MAC) RegisterTransmitter(node int, t Transmitter, rateCap float64) {
	if _, dup := m.tx[node]; !dup {
		m.order = append(m.order, node)
	}
	m.tx[node] = t
	m.caps[node] = rateCap
	m.tokens[node] = 0
	m.tokenAt[node] = m.eng.Now()
	m.txStart[node] = -1
	m.txEnd[node] = -1
}

// RegisterReceiver attaches a frame sink to node. Registered receivers are
// the constraint sites of the oracle model's neighbourhood sharing.
func (m *MAC) RegisterReceiver(node int, r Receiver) {
	if _, dup := m.rx[node]; !dup {
		m.sites = append(m.sites, node)
	}
	m.rx[node] = r
	if _, isTx := m.tx[node]; !isTx {
		m.txStart[node] = -1
		m.txEnd[node] = -1
	}
}

// Wake notifies the MAC that node may have frames pending. Idempotent;
// cheap when the node is already transmitting or scheduled. Crashed nodes
// stay silent.
func (m *MAC) Wake(node int) {
	if m.isDown(node) {
		return
	}
	if m.cfg.Mode == ModeCSMA {
		m.scheduleTry(node, 0)
		return
	}
	if !m.busy[node] {
		m.tryStart(node)
	}
}

// airBytes is the channel occupancy of one attempt.
func airBytes(f *Frame) int {
	b := f.Size
	if f.Reliable && !f.Broadcast {
		b += f.AckSize
	}
	return b
}

// effectiveCap is the node's rate cap clamped to the channel capacity.
func (m *MAC) effectiveCap(node int) float64 {
	limit := m.caps[node]
	if limit > m.cfg.Capacity {
		return m.cfg.Capacity
	}
	return limit
}

// slotTime is the CSMA contention jitter scale.
func (m *MAC) slotTime() float64 {
	return float64(m.cfg.SlotBytes) / m.cfg.Capacity
}

// scheduleTry arms a single CSMA tryStart for node after base plus random
// jitter.
func (m *MAC) scheduleTry(node int, base float64) {
	if m.pending[node] || m.busy[node] || m.tx[node] == nil || m.isDown(node) {
		return
	}
	m.pending[node] = true
	delay := base + m.rng.Float64()*m.slotTime()
	m.scheduleEvent(delay, evCSMATry, node)
}

// tryStart begins the next transmission of node if the mode's access rules
// allow one.
func (m *MAC) tryStart(node int) {
	t := m.tx[node]
	if t == nil || m.busy[node] || m.isDown(node) {
		return
	}
	frame := m.current[node]
	if frame == nil {
		frame = t.Dequeue()
		if frame == nil {
			return
		}
		m.current[node] = frame
		m.attempts[node] = 0
	}
	need := float64(airBytes(frame))

	if m.cfg.Mode == ModeCSMA {
		// Token pacing for rate-capped nodes.
		if rate := m.effectiveCap(node); !math.IsInf(rate, 1) {
			if rate <= 0 {
				return // rate zero: never transmits
			}
			now := m.eng.Now()
			m.tokens[node] += (now - m.tokenAt[node]) * rate
			m.tokenAt[node] = now
			if m.tokens[node] > need {
				m.tokens[node] = need // burst of one frame
			}
			if m.obs != nil {
				m.obs.tokenSum[node] += m.tokens[node]
				m.obs.tokenN[node]++
			}
			if m.tokens[node] < need {
				// Randomize the pacing interval (mean-preserving, +/-50%):
				// deterministic waits phase-lock transmitters that share a
				// period, turning hidden-terminal overlap into a
				// persistent collision train.
				wait := (need - m.tokens[node]) / rate * (0.5 + m.rng.Float64())
				m.scheduleTry(node, wait)
				return
			}
		}
		// Carrier sense: defer while any in-range node transmits. Their
		// completion handler re-arms us.
		for _, v := range m.medium.Neighbors(node) {
			if m.busy[v] {
				return
			}
		}
		if !math.IsInf(m.caps[node], 1) {
			m.tokens[node] -= need
		}
		m.busy[node] = true
		m.txStart[node] = m.eng.Now()
		m.txEnd[node] = m.eng.Now() + need/m.cfg.Capacity
		m.scheduleEvent(m.quantize(need/m.cfg.Capacity), evComplete, node)
		if m.obs != nil {
			m.obs.airtime[node] += need / m.cfg.Capacity
		}
		return
	}

	// Oracle mode: the ideal scheduler multiplexes interfering nodes with
	// no collisions; the node's long-run rate is its max-min fair share of
	// the neighbourhood constraints, at most its cap, and the frame simply
	// occupies its share for Size/rate seconds.
	rate := m.allocate(node)
	if rate <= 0 {
		m.scheduleEvent(need/m.cfg.Capacity, evTryStart, node)
		return
	}
	m.busy[node] = true
	m.scheduleEvent(m.quantize(need/rate), evComplete, node)
	if m.obs != nil {
		m.obs.airtime[node] += need / rate
	}
}

// quantize rounds a completion delay so the absolute completion time lands
// on the TimeQuantum grid (no-op when the quantum is 0, the default).
func (m *MAC) quantize(delay float64) float64 {
	q := m.cfg.TimeQuantum
	if q <= 0 {
		return delay
	}
	now := m.eng.Now()
	t := math.Ceil((now+delay)/q) * q
	if t < now+delay {
		t = now + delay // guard against float rounding shrinking the delay
	}
	return t - now
}

// complete finishes node's in-flight frame: draws receptions, handles
// reliable retransmission, and chains the next attempt.
func (m *MAC) complete(node int) {
	frame := m.current[node]
	csma := m.cfg.Mode == ModeCSMA
	start, end := m.txStart[node], m.txEnd[node]
	m.busy[node] = false
	if m.isDown(node) {
		// The transmitter crashed mid-frame: the transmission falls silent.
		// Nothing was delivered, nothing is counted, and the frame's payload
		// ownership returns to the pool. Neighbours that deferred to us under
		// CSMA still need re-arming — the channel just went quiet.
		retire(frame)
		m.current[node] = nil
		if csma {
			for _, v := range m.medium.Neighbors(node) {
				m.scheduleTry(v, 0)
			}
		}
		return
	}
	m.framesSent[node]++
	m.bytesSent[node] += int64(airBytes(frame))
	m.attempts[node]++

	if frame.Broadcast {
		for _, j := range m.medium.Neighbors(node) {
			if m.rx[j] == nil || m.isDown(j) {
				continue
			}
			if csma && m.interfered(j, node, start, end) {
				m.collided[j]++
				continue
			}
			if m.rng.Float64() < m.probNow(node, j) {
				m.deliver(node, j, frame.Payload)
			} else {
				m.lost[j]++
			}
		}
		retire(frame)
		m.current[node] = nil
	} else {
		dest := frame.Dest
		success := false
		if m.isDown(dest) {
			m.lost[dest]++
		} else if csma && m.interfered(dest, node, start, end) {
			m.collided[dest]++
		} else if m.rng.Float64() < m.probNow(node, dest) {
			success = true
		} else {
			m.lost[dest]++
		}
		if success && frame.Reliable {
			// The transmitter only learns of success through the reverse
			// ACK; a lost ACK forces a retransmission even though the data
			// arrived (duplicates are suppressed upstream; the delivery
			// counts once, on the attempt whose ACK returns).
			success = m.rng.Float64() < m.probNow(dest, node)
		}
		switch {
		case success && m.rx[dest] != nil:
			m.deliver(node, dest, frame.Payload)
			retire(frame)
			m.current[node] = nil
		case frame.Reliable && m.attempts[node] < m.cfg.MaxRetries:
			// Keep the frame as current: retransmit next round.
		default:
			if frame.Reliable {
				m.dropped[node]++
			}
			retire(frame)
			m.current[node] = nil
		}
	}

	if csma {
		// Chain our next attempt and re-arm neighbours that deferred to
		// us. Jitter decorrelates the contenders; whoever fires first wins
		// the channel and the rest re-sense.
		m.scheduleTry(node, 0)
		for _, v := range m.medium.Neighbors(node) {
			m.scheduleTry(v, 0)
		}
		return
	}
	m.tryStart(node)
}

// deliverEvent hands one payload to a session-tagged receiver port. Unlike
// the untagged evDeliver (a *macEvent from the MAC's free list, recycled on
// the engine goroutine only), deliverEvent implements Sharded: the parallel
// engine fires it on the shard's worker, so the struct recycles through a
// sync.Pool, which is safe from any goroutine.
type deliverEvent struct {
	m       *MAC
	rcv     Receiver
	node    int
	from    int
	shard   uint32
	payload interface{}
}

var deliverEventPool = sync.Pool{New: func() interface{} { return new(deliverEvent) }}

// Shard implements Sharded: deliveries of different sessions at the same
// timestamp may run concurrently.
func (e *deliverEvent) Shard() uint32 { return e.shard }

// Fire implements Handler. The struct is recycled before the callback runs,
// mirroring macEvent.Fire; Pool puts/gets of distinct objects are safe even
// while other shards fire concurrently.
func (e *deliverEvent) Fire() {
	m, rcv, node, from, payload := e.m, e.rcv, e.node, e.from, e.payload
	e.m, e.rcv, e.payload = nil, nil, nil
	deliverEventPool.Put(e)
	// The receiver may have crashed between the reception draw and this
	// zero-delay hand-off (fault events at the same timestamp fire first):
	// the payload is dropped, not delivered to a dead node.
	if !m.isDown(node) {
		rcv.Receive(from, payload)
	}
	if rel, ok := payload.(Releasable); ok {
		rel.Release()
	}
}

func (m *MAC) deliver(from, to int, payload interface{}) {
	m.delivered[[2]int{from, to}]++
	if tp, ok := payload.(Tagged); ok {
		if fan := m.rxm[to]; fan != nil && !fan.mixed {
			port := fan.portFor(tp.SessionTag())
			if port == nil {
				// No session at this node wants the frame. The ports'
				// own filters would have dropped it without side
				// effects, so skipping the event entirely is
				// behaviourally identical (the link delivery above is
				// still counted).
				return
			}
			if rel, ok := payload.(Releasable); ok {
				rel.Retain() // held until the Receive callback returns
			}
			e := deliverEventPool.Get().(*deliverEvent)
			e.m, e.rcv, e.node, e.from, e.shard, e.payload =
				m, port, to, from, tp.SessionTag(), payload
			m.eng.ScheduleHandler(0, e)
			return
		}
	}
	if rel, ok := payload.(Releasable); ok {
		rel.Retain() // held until the Receive callback returns
	}
	e := m.getEvent(evDeliver, to)
	e.from = from
	e.payload = payload
	m.eng.ScheduleHandler(0, e)
}

// overlaps reports whether node v's current or last CSMA transmission
// intersects the interval [start, end).
func (m *MAC) overlaps(v int, start, end float64) bool {
	s, e := m.txStart[v], m.txEnd[v]
	if s < 0 {
		return false
	}
	if m.busy[v] {
		return s < end
	}
	return e > start && s < end
}

// interfered reports whether receiver j was jammed during [start, end) by
// any transmitter other than from — including j itself (half-duplex).
func (m *MAC) interfered(j, from int, start, end float64) bool {
	if m.overlaps(j, start, end) {
		return true // j was transmitting: cannot receive
	}
	for _, v := range m.medium.Neighbors(j) {
		if v != from && m.overlaps(v, start, end) {
			return true
		}
	}
	return false
}

// allocate computes the oracle-mode max-min fair rate of node among the
// currently active transmitters (mid-frame or backlogged), subject to the
// per-receiver constraint (4) and per-node caps.
func (m *MAC) allocate(node int) float64 {
	m.ensureFillScratch()
	active := m.fillActive[:0]
	for _, u := range m.order {
		if m.isDown(u) {
			continue
		}
		if u == node || m.busy[u] || m.current[u] != nil || m.tx[u].QueueLen() > 0 {
			active = append(active, u)
			m.fillIsActive[u] = true
		}
	}
	m.fillActive = active
	m.progressiveFill(active)
	for _, u := range active {
		m.fillIsActive[u] = false
	}
	return m.fillRates[node]
}

// ensureFillScratch sizes the allocation scratch and computes the static
// per-site coverage: registered receiver v covers itself and every
// registered transmitter within range. Rebuilt only when registrations
// change.
func (m *MAC) ensureFillScratch() {
	if m.fillRates != nil && m.fillOrderLen == len(m.order) && m.fillSitesLen == len(m.sites) {
		return
	}
	n := m.medium.Size()
	m.fillRates = make([]float64, n)
	m.fillFrozen = make([]bool, n)
	m.fillIsActive = make([]bool, n)
	m.fillActive = make([]int, 0, len(m.order))
	m.siteRemain = make([]float64, len(m.sites))
	m.siteActiveN = make([]int, len(m.sites))
	m.fillTouched = make([]int, 0, len(m.sites))
	m.siteCover = m.siteCover[:0]
	m.siteCoverOf = make([][]int, n)
	for si, v := range m.sites {
		var cover []int
		for _, u := range m.order {
			if u == v || m.medium.Prob(u, v) > 0 {
				cover = append(cover, u)
				m.siteCoverOf[u] = append(m.siteCoverOf[u], si)
			}
		}
		m.siteCover = append(m.siteCover, cover)
	}
	m.fillOrderLen = len(m.order)
	m.fillSitesLen = len(m.sites)
}

// progressiveFill implements max-min fair filling with caps: all active
// rates grow together until a receiver neighbourhood saturates or a cap
// binds; saturated participants freeze and filling continues. Results land
// in fillRates; only entries of active nodes are meaningful.
func (m *MAC) progressiveFill(active []int) {
	rates, frozen, isActive := m.fillRates, m.fillFrozen, m.fillIsActive
	for _, u := range active {
		rates[u] = 0
		frozen[u] = false
	}
	for i := range m.siteRemain {
		m.siteRemain[i] = m.cfg.Capacity
	}

	// Each site's active-and-unfrozen membership count is maintained
	// incrementally as nodes freeze, and the fill rounds visit only the
	// sites covering at least one active transmitter; sites outside every
	// active neighbourhood keep n = 0 and remain = Capacity throughout, so
	// skipping them leaves the filled rates bit-identical while the cost
	// tracks the active set instead of the whole network.
	touched := m.fillTouched[:0]
	for _, u := range active {
		for _, si := range m.siteCoverOf[u] {
			if m.siteActiveN[si] == 0 {
				touched = append(touched, si)
			}
			m.siteActiveN[si]++
		}
	}
	m.fillTouched = touched

	unfrozen := len(active)
	freeze := func(u int) {
		frozen[u] = true
		unfrozen--
		for _, si := range m.siteCoverOf[u] {
			m.siteActiveN[si]--
		}
	}

	for unfrozen > 0 {
		inc := math.Inf(1)
		for _, u := range active {
			if frozen[u] {
				continue
			}
			if room := m.effectiveCap(u) - rates[u]; room < inc {
				inc = room
			}
		}
		for _, si := range touched {
			if n := m.siteActiveN[si]; n > 0 {
				if share := m.siteRemain[si] / float64(n); share < inc {
					inc = share
				}
			}
		}
		if inc <= 1e-12 || math.IsInf(inc, 1) {
			if math.IsInf(inc, 1) {
				// No constraint covers the unfrozen nodes; cap them at
				// channel capacity.
				for _, u := range active {
					if !frozen[u] {
						rates[u] = m.cfg.Capacity
					}
				}
			}
			break
		}
		for _, u := range active {
			if !frozen[u] {
				rates[u] += inc
			}
		}
		for _, si := range touched {
			m.siteRemain[si] -= inc * float64(m.siteActiveN[si])
		}
		for _, u := range active {
			if !frozen[u] && rates[u] >= m.effectiveCap(u)-1e-12 {
				freeze(u)
			}
		}
		for _, si := range touched {
			if m.siteRemain[si] <= 1e-9*m.cfg.Capacity {
				for _, u := range m.siteCover[si] {
					if isActive[u] && !frozen[u] {
						freeze(u)
					}
				}
			}
		}
	}

	// Leave the counts zeroed for the next allocation.
	for _, si := range touched {
		m.siteActiveN[si] = 0
	}
}

// scheduleSample arms the periodic queue sampler.
func (m *MAC) scheduleSample() {
	m.scheduleEvent(m.cfg.QueueSampleInterval, evSample, 0)
}

// sample records one queue-size observation per transmitter and re-arms
// itself.
func (m *MAC) sample() {
	dt := m.eng.Now() - m.lastSampleAt
	for _, u := range m.order {
		q := float64(m.tx[u].QueueLen())
		if m.busy[u] {
			// A frame on the air still occupies the queue's head slot.
			q++
		}
		m.queueSumTime[u] += q * dt
		if m.obs != nil {
			m.obs.queue.Observe(q)
		}
	}
	m.lastSampleAt = m.eng.Now()
	m.scheduleSample()
}

// TimeAvgQueue returns the time-averaged queue length of node since the MAC
// was created (Fig. 3's metric), or 0 if sampling is disabled.
func (m *MAC) TimeAvgQueue(node int) float64 {
	elapsed := m.lastSampleAt - m.samplingSince
	if elapsed <= 0 {
		return 0
	}
	return m.queueSumTime[node] / elapsed
}

// FramesSent returns the number of frames node put on the air (including
// retransmissions).
func (m *MAC) FramesSent(node int) int64 { return m.framesSent[node] }

// BytesSent returns the air bytes node transmitted (data plus ACK
// overhead).
func (m *MAC) BytesSent(node int) int64 { return m.bytesSent[node] }

// Delivered returns successful deliveries on directed link (from, to).
func (m *MAC) Delivered(from, to int) int64 { return m.delivered[[2]int{from, to}] }

// Collided returns receptions destroyed at node by concurrent in-range
// transmissions (CSMA mode only; the oracle scheduler never collides).
func (m *MAC) Collided(node int) int64 { return m.collided[node] }

// Lost returns receptions at node lost to channel noise (the PHY's
// Bernoulli process), excluding interference.
func (m *MAC) Lost(node int) int64 { return m.lost[node] }

// Dropped returns reliable-unicast frames abandoned after MaxRetries.
func (m *MAC) Dropped(node int) int64 { return m.dropped[node] }

// LinkStats snapshots all per-link delivery counters.
func (m *MAC) LinkStats() []LinkStat {
	out := make([]LinkStat, 0, len(m.delivered))
	for k, v := range m.delivered {
		out = append(out, LinkStat{From: k[0], To: k[1], Delivered: v})
	}
	return out
}
