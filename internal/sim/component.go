package sim

import "math"

// Component/port attachment.
//
// The engine (engine.go) owns time and the event calendar; the MAC (mac.go)
// owns the shared medium. A component — one protocol session's logic at one
// physical node — plugs into the medium through up to two ports: a
// Transmitter port supplying frames, and a Receiver port absorbing
// deliveries. Attach is additive: the first port at a node binds directly
// (so a single-tenant session pays nothing for the indirection), and any
// further port promotes the node to a multiplexer, letting several
// independent sessions coexist at the same physical node on one engine.
//
//   - Transmitter ports share the node's air time round-robin; the node's
//     rate cap is the sum of the per-port caps (any uncapped port makes the
//     node uncapped), mirroring how a joint rate controller budgets the sum
//     of per-session allocations against the same neighbourhood constraint.
//   - Receiver ports all observe every delivery, in attach order. Ports must
//     demultiplex by payload (e.g. a session tag): the medium is a broadcast
//     channel and does not know which session a frame belongs to.
//
// Register{Transmitter,Receiver} remain the low-level single-tenant binding;
// Attach{Transmitter,Receiver} are the component API built on top of it.

// txMux shares one physical node's transmitter slot among several ports.
type txMux struct {
	ports []Transmitter
	caps  []float64
	next  int
}

// Dequeue implements Transmitter: round-robin over the attached ports,
// resuming after the last port that produced a frame.
func (x *txMux) Dequeue() *Frame {
	for i := 0; i < len(x.ports); i++ {
		k := (x.next + i) % len(x.ports)
		if f := x.ports[k].Dequeue(); f != nil {
			x.next = (k + 1) % len(x.ports)
			return f
		}
	}
	return nil
}

// QueueLen implements Transmitter: the node's backlog is the sum over ports.
func (x *txMux) QueueLen() int {
	n := 0
	for _, p := range x.ports {
		n += p.QueueLen()
	}
	return n
}

// capSum is the node's aggregate rate budget: the sum of per-port caps, or
// unbounded as soon as any port contends freely.
func (x *txMux) capSum() float64 {
	sum := 0.0
	for _, c := range x.caps {
		if math.IsInf(c, 1) {
			return math.Inf(1)
		}
		sum += c
	}
	return sum
}

// rxFanout delivers every reception at a node to all attached receiver
// ports, in attach order. When every port declared a session tag
// (AttachSessionReceiver), the MAC instead resolves the single matching
// port at schedule time — see MAC.deliver — which both skips the fan-out
// and gives the parallel engine a shard to run the delivery on.
type rxFanout struct {
	ports []Receiver
	tags  []uint32
	mixed bool // true if any port attached without a tag
}

// Receive implements Receiver.
func (x *rxFanout) Receive(from int, payload interface{}) {
	for _, p := range x.ports {
		p.Receive(from, payload)
	}
}

// portFor returns the receiver port registered under tag, or nil if no
// port at this node claims it. Only meaningful when !mixed.
func (x *rxFanout) portFor(tag uint32) Receiver {
	for i, t := range x.tags {
		if t == tag {
			return x.ports[i]
		}
	}
	return nil
}

// AttachTransmitter adds a transmitter port to node. The first port binds
// directly (identical to RegisterTransmitter); subsequent ports promote the
// node to round-robin multiplexing with a summed rate cap.
func (m *MAC) AttachTransmitter(node int, t Transmitter, rateCap float64) {
	mux := m.txm[node]
	if mux == nil {
		mux = &txMux{}
		m.txm[node] = mux
	}
	mux.ports = append(mux.ports, t)
	mux.caps = append(mux.caps, rateCap)
	if len(mux.ports) == 1 {
		m.RegisterTransmitter(node, t, rateCap)
		return
	}
	m.RegisterTransmitter(node, mux, mux.capSum())
}

// SetPortCap updates the rate cap of an already-attached transmitter port
// without re-registering it — RegisterTransmitter resets the node's token
// bucket and carrier-sense history, which must survive a mid-run rate change
// (fault-driven re-optimization adjusts caps while frames are in flight).
// No-op if the port was never attached at node.
func (m *MAC) SetPortCap(node int, port Transmitter, rateCap float64) {
	mux := m.txm[node]
	if mux == nil {
		if m.tx[node] == port {
			m.caps[node] = rateCap
		}
		return
	}
	for i, p := range mux.ports {
		if p == port {
			mux.caps[i] = rateCap
			if len(mux.ports) == 1 {
				m.caps[node] = rateCap
			} else {
				m.caps[node] = mux.capSum()
			}
			return
		}
	}
}

// AttachReceiver adds a receiver port to node. The first port binds directly
// (identical to RegisterReceiver); subsequent ports promote the node to
// fan-out delivery. Ports are expected to self-filter by payload.
func (m *MAC) AttachReceiver(node int, r Receiver) {
	m.attachReceiver(node, r, 0, false)
}

// AttachSessionReceiver adds a receiver port that only wants payloads whose
// SessionTag matches tag. The MAC routes Tagged payloads straight to the
// matching port (dropping deliveries no port claims — behaviourally
// identical to the ports' own filters, which have no side effects on a
// mismatch) and marks the hand-off event with the tag as its shard, letting
// the parallel engine run deliveries of different sessions concurrently.
// A node mixing tagged and untagged ports falls back to full fan-out.
func (m *MAC) AttachSessionReceiver(node int, r Receiver, tag uint32) {
	m.attachReceiver(node, r, tag, true)
}

func (m *MAC) attachReceiver(node int, r Receiver, tag uint32, tagged bool) {
	fan := m.rxm[node]
	if fan == nil {
		fan = &rxFanout{}
		m.rxm[node] = fan
	}
	fan.ports = append(fan.ports, r)
	fan.tags = append(fan.tags, tag)
	if !tagged {
		fan.mixed = true
	}
	if len(fan.ports) == 1 {
		m.RegisterReceiver(node, r)
		return
	}
	m.RegisterReceiver(node, fan)
}
