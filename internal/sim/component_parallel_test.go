package sim

import (
	"math"
	"reflect"
	"testing"

	"omnc/internal/topology"
)

// Edge-case tests for the component layer under the parallel engine: tagged
// receiver promotion with same-bucket deliveries, deliverEvent pool reuse
// across buckets, mixed tagged/untagged fallback, and faults landing on the
// exact bucket a delivery fires in. Each scenario runs on the serial engine
// and on a parallel engine and must produce identical observations; CI runs
// this package under -race, which checks the pool and free-list discipline.

// sessionPayload is a Tagged, Releasable payload with per-instance reference
// counting. Counts are touched by the engine goroutine (enqueue/retire) and
// by at most one shard worker (the tag's), strictly alternating across round
// barriers, so plain ints are race-safe here — exactly the free-list
// argument the MAC relies on.
type sessionPayload struct {
	tag      uint32
	id       int
	retains  int
	releases int
}

func (p *sessionPayload) SessionTag() uint32 { return p.tag }
func (p *sessionPayload) Retain()            { p.retains++ }
func (p *sessionPayload) Release()           { p.releases++ }

// tagRecorder records received payload ids; one instance per session tag, so
// it is only ever touched by that tag's shard worker.
type tagRecorder struct {
	frames []*Frame
	got    []int
}

func (r *tagRecorder) Dequeue() *Frame {
	if len(r.frames) == 0 {
		return nil
	}
	f := r.frames[0]
	r.frames = r.frames[1:]
	return f
}

func (r *tagRecorder) QueueLen() int { return len(r.frames) }

func (r *tagRecorder) Receive(from int, payload interface{}) {
	r.got = append(r.got, payload.(*sessionPayload).id)
}

func twoNodeMAC(t *testing.T, eng Engine) *MAC {
	t.Helper()
	nw, err := topology.NewExplicit([][]float64{
		{0, 1},
		{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	mac, err := NewMAC(eng, nw, Config{Capacity: 1e4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return mac
}

func taggedFrames(tag uint32, n, firstID int) ([]*Frame, []*sessionPayload) {
	frames := make([]*Frame, n)
	payloads := make([]*sessionPayload, n)
	for i := range frames {
		p := &sessionPayload{tag: tag, id: firstID + i}
		p.Retain() // the reference transferred to the MAC on enqueue
		payloads[i] = p
		frames[i] = &Frame{Size: 100, Broadcast: true, Payload: p}
	}
	return frames, payloads
}

// runTaggedScenario drives nFrames frames per session from node 0 to tagged
// receiver ports at node 1 and returns each port's reception order.
func runTaggedScenario(t *testing.T, eng Engine, nFrames int) (got1, got2 []int, payloads []*sessionPayload) {
	t.Helper()
	mac := twoNodeMAC(t, eng)
	f1, p1 := taggedFrames(1, nFrames, 100)
	f2, p2 := taggedFrames(2, nFrames, 200)
	tx1 := &tagRecorder{frames: f1}
	tx2 := &tagRecorder{frames: f2}
	mac.AttachTransmitter(0, tx1, math.Inf(1))
	mac.AttachTransmitter(0, tx2, math.Inf(1))
	rx1 := &tagRecorder{}
	rx2 := &tagRecorder{}
	// First attach binds direct; the second promotes node 1 to the tagged
	// fan-out, which the MAC then bypasses per delivery via portFor.
	mac.AttachSessionReceiver(1, rx1, 1)
	mac.AttachSessionReceiver(1, rx2, 2)
	mac.Wake(0)
	eng.Run(100)
	return rx1.got, rx2.got, append(p1, p2...)
}

// TestTaggedPromoteSameBucketDelivery: two sessions' frames alternate out of
// one transmitter mux, so consecutive deliveries of DIFFERENT tags land in
// the calendar back to back — on the parallel engine each pair forms a
// two-shard round. Every port must see exactly its own session's payloads,
// in the same order the serial engine delivers them.
func TestTaggedPromoteSameBucketDelivery(t *testing.T) {
	const nFrames = 8
	s1, s2, _ := runTaggedScenario(t, NewEngine(), nFrames)
	want1 := make([]int, nFrames)
	want2 := make([]int, nFrames)
	for i := 0; i < nFrames; i++ {
		want1[i], want2[i] = 100+i, 200+i
	}
	if !reflect.DeepEqual(s1, want1) || !reflect.DeepEqual(s2, want2) {
		t.Fatalf("serial tagged delivery: rx1=%v rx2=%v", s1, s2)
	}
	for _, workers := range []int{1, 4} {
		p1, p2, _ := runTaggedScenario(t, NewParallelEngine(workers), nFrames)
		if !reflect.DeepEqual(p1, s1) || !reflect.DeepEqual(p2, s2) {
			t.Fatalf("workers=%d diverged: rx1=%v rx2=%v (serial %v / %v)",
				workers, p1, p2, s1, s2)
		}
	}
}

// TestDeliverEventPoolReuseAcrossBuckets: enough frames that deliverEvent
// structs cycle through the sync.Pool across many round barriers. Reference
// counts must balance exactly — every payload retired once by the MAC and
// retained/released once per delivery — on both engines. Run under -race
// this also checks that pool recycling from shard workers is clean.
func TestDeliverEventPoolReuseAcrossBuckets(t *testing.T) {
	const nFrames = 40
	check := func(eng Engine, label string) {
		t.Helper()
		g1, g2, payloads := runTaggedScenario(t, eng, nFrames)
		if len(g1) != nFrames || len(g2) != nFrames {
			t.Fatalf("%s: rx1 got %d, rx2 got %d deliveries, want %d each",
				label, len(g1), len(g2), nFrames)
		}
		for _, p := range payloads {
			// One retain at enqueue + one per delivery; one release at frame
			// retirement + one per delivery. Links are lossless, broadcast,
			// one in-range receiver -> exactly one delivery each.
			if p.retains != 2 || p.releases != 2 {
				t.Fatalf("%s: payload %d refcounts retain=%d release=%d, want 2/2",
					label, p.id, p.retains, p.releases)
			}
		}
	}
	check(NewEngine(), "serial")
	check(NewParallelEngine(4), "workers=4")
}

// TestMixedTaggedUntaggedFallsBackToFanout: a node mixing a tagged and an
// untagged receiver port must fall back to full fan-out (every port sees
// every delivery, inline on the engine goroutine) — identically on both
// engines.
func TestMixedTaggedUntaggedFallsBackToFanout(t *testing.T) {
	run := func(eng Engine) (tagged, untagged int) {
		mac := twoNodeMAC(t, eng)
		frames, _ := taggedFrames(1, 4, 0)
		tx := &tagRecorder{frames: frames}
		mac.AttachTransmitter(0, tx, math.Inf(1))
		rxTagged := &tagRecorder{}
		rxPlain := &tagRecorder{}
		mac.AttachSessionReceiver(1, rxTagged, 1)
		mac.AttachReceiver(1, rxPlain) // untagged: poisons tagged routing
		mac.Wake(0)
		eng.Run(100)
		return len(rxTagged.got), len(rxPlain.got)
	}
	st, su := run(NewEngine())
	if st != 4 || su != 4 {
		t.Fatalf("serial mixed fan-out: tagged=%d untagged=%d, want 4/4", st, su)
	}
	pt, pu := run(NewParallelEngine(4))
	if pt != st || pu != su {
		t.Fatalf("parallel mixed fan-out diverged: tagged=%d untagged=%d (serial %d/%d)",
			pt, pu, st, su)
	}
}

// TestFaultOnDeliveryBucketBoundary: a crash scheduled at the exact
// timestamp a delivery fires in must suppress that delivery — the injector's
// fault events always run in serial context before the bucket's sharded
// hand-offs — and must do so identically on both engines, with the payload
// still released.
func TestFaultOnDeliveryBucketBoundary(t *testing.T) {
	// Probe the delivery timestamp on the serial engine first.
	probeEng := NewEngine()
	probeMAC := twoNodeMAC(t, probeEng)
	frames, _ := taggedFrames(1, 1, 0)
	probeMAC.AttachTransmitter(0, &tagRecorder{frames: frames}, math.Inf(1))
	var deliveredAt float64 = -1
	probeMAC.AttachSessionReceiver(1, recvFunc(func(int, interface{}) {
		deliveredAt = probeEng.Now()
	}), 1)
	probeMAC.Wake(0)
	probeEng.Run(100)
	if deliveredAt < 0 {
		t.Fatal("probe run delivered nothing")
	}

	run := func(eng Engine) (got int, p *sessionPayload) {
		mac := twoNodeMAC(t, eng)
		frames, payloads := taggedFrames(1, 1, 0)
		mac.AttachTransmitter(0, &tagRecorder{frames: frames}, math.Inf(1))
		rx := &tagRecorder{}
		mac.AttachSessionReceiver(1, rx, 1)
		mac.Wake(0)
		// Crash the receiver in the delivery's own bucket.
		eng.Schedule(deliveredAt, func() { mac.SetNodeDown(1, true) })
		eng.Run(100)
		return len(rx.got), payloads[0]
	}
	sGot, sPay := run(NewEngine())
	if sGot != 0 {
		t.Fatalf("serial: crashed node still received %d deliveries", sGot)
	}
	if sPay.retains != sPay.releases {
		t.Fatalf("serial: payload leaked on boundary crash: retain=%d release=%d",
			sPay.retains, sPay.releases)
	}
	pGot, pPay := run(NewParallelEngine(4))
	if pGot != sGot || pPay.retains != sPay.retains || pPay.releases != sPay.releases {
		t.Fatalf("parallel diverged on boundary crash: got=%d refs=%d/%d (serial got=%d refs=%d/%d)",
			pGot, pPay.retains, pPay.releases, sGot, sPay.retains, sPay.releases)
	}
}

// recvFunc adapts a function to Receiver for probes.
type recvFunc func(int, interface{})

func (f recvFunc) Receive(from int, payload interface{}) { f(from, payload) }
