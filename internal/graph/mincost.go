package graph

import (
	"fmt"
	"math"
)

// FlowEdge describes one directed edge of a min-cost flow problem.
type FlowEdge struct {
	From, To int
	Capacity int64   // integral capacity (callers scale real rates)
	Cost     float64 // cost per unit of flow, must be non-negative
}

// FlowResult is the outcome of a min-cost flow computation.
type FlowResult struct {
	// Flow[i] is the flow routed on the i-th input edge.
	Flow []int64
	// Sent is the total amount routed (== demand when feasible).
	Sent int64
	// Cost is the total cost of the routed flow.
	Cost float64
}

// MinCostFlow routes up to demand units from src to dst at minimum total
// cost, using successive shortest augmenting paths with Johnson potentials
// (Dijkstra on reduced costs). Edge costs must be non-negative. If less than
// demand can be routed, the maximum feasible amount is routed and reported
// in Sent.
//
// This solver realizes the oldMORE baseline's transmission plan: a min-cost
// formulation in the spirit of Lun et al. that concentrates flow on the
// cheapest (highest-quality) links and prunes lossy detours — the behaviour
// Fig. 4 of the paper contrasts with OMNC's path diversity.
func MinCostFlow(n int, edges []FlowEdge, src, dst int, demand int64) (*FlowResult, error) {
	if src == dst {
		return nil, fmt.Errorf("graph: min-cost flow src == dst == %d", src)
	}
	if demand <= 0 {
		return nil, fmt.Errorf("graph: non-positive demand %d", demand)
	}
	for _, e := range edges {
		if e.Cost < 0 {
			return nil, fmt.Errorf("graph: negative edge cost %.3f on (%d,%d)", e.Cost, e.From, e.To)
		}
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
		if e.Capacity < 0 {
			return nil, fmt.Errorf("graph: negative capacity %d on (%d,%d)", e.Capacity, e.From, e.To)
		}
	}

	// Residual network in arrays: forward edges at even indices, their
	// reverses at odd indices.
	type residual struct {
		to   int
		cap  int64
		cost float64
	}
	res := make([]residual, 0, 2*len(edges))
	head := make([][]int, n) // node -> indices into res
	for _, e := range edges {
		head[e.From] = append(head[e.From], len(res))
		res = append(res, residual{to: e.To, cap: e.Capacity, cost: e.Cost})
		head[e.To] = append(head[e.To], len(res))
		res = append(res, residual{to: e.From, cap: 0, cost: -e.Cost})
	}

	potential := make([]float64, n)
	dist := make([]float64, n)
	prevEdge := make([]int, n)
	result := &FlowResult{Flow: make([]int64, len(edges))}

	for result.Sent < demand {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = Inf
			prevEdge[i] = -1
		}
		dist[src] = 0
		pq := pqueue{{node: src, dist: 0}}
		for len(pq) > 0 {
			it := pq.pop()
			if it.dist > dist[it.node] {
				continue
			}
			for _, ei := range head[it.node] {
				e := res[ei]
				if e.cap <= 0 {
					continue
				}
				rc := e.cost + potential[it.node] - potential[e.to]
				if rc < 0 {
					rc = 0 // clamp float noise
				}
				if nd := it.dist + rc; nd < dist[e.to]-1e-15 {
					dist[e.to] = nd
					prevEdge[e.to] = ei
					pq.push(pqItem{node: e.to, dist: nd})
				}
			}
		}
		if math.IsInf(dist[dst], 1) {
			break // routed all that is feasible
		}
		for i := range potential {
			if !math.IsInf(dist[i], 1) {
				potential[i] += dist[i]
			}
		}
		// Bottleneck along the augmenting path.
		push := demand - result.Sent
		for v := dst; v != src; {
			ei := prevEdge[v]
			if res[ei].cap < push {
				push = res[ei].cap
			}
			v = res[ei^1].to
		}
		for v := dst; v != src; {
			ei := prevEdge[v]
			res[ei].cap -= push
			res[ei^1].cap += push
			if ei%2 == 0 {
				result.Flow[ei/2] += push
				result.Cost += float64(push) * res[ei].cost
			} else {
				result.Flow[ei/2] -= push
				result.Cost -= float64(push) * res[ei^1].cost
			}
			v = res[ei^1].to
		}
		result.Sent += push
	}
	return result, nil
}
