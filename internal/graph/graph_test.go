package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDijkstraSimpleChain(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	dist, parent := Dijkstra(g, 0)
	want := []float64{0, 1, 3, 6}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
	if parent[0] != 0 || parent[1] != 0 || parent[2] != 1 || parent[3] != 2 {
		t.Fatalf("parents = %v", parent)
	}
}

func TestDijkstraPrefersCheaperDetour(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2, 10)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	path, cost, ok := ShortestPath(g, 0, 2)
	if !ok || cost != 2 {
		t.Fatalf("cost = %v, ok = %v", cost, ok)
	}
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Fatalf("path = %v", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	dist, parent := Dijkstra(g, 0)
	if !math.IsInf(dist[2], 1) || parent[2] != -1 {
		t.Fatalf("node 2 should be unreachable: dist=%v parent=%v", dist[2], parent[2])
	}
	if _, _, ok := ShortestPath(g, 0, 2); ok {
		t.Fatal("ShortestPath to unreachable node must report !ok")
	}
}

func TestShortestPathTrivial(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5)
	path, cost, ok := ShortestPath(g, 0, 0)
	if !ok || cost != 0 || len(path) != 1 || path[0] != 0 {
		t.Fatalf("self path = %v cost %v ok %v", path, cost, ok)
	}
}

func TestHopCounts(t *testing.T) {
	//    0 - 1 - 2
	//        |
	//        3       4 (isolated)
	adj := [][]int{{1}, {0, 2, 3}, {1}, {1}, {}}
	hops := HopCounts(adj, 0)
	want := []int{0, 1, 2, 2, -1}
	for i, w := range want {
		if hops[i] != w {
			t.Fatalf("hops[%d] = %d, want %d", i, hops[i], w)
		}
	}
}

func TestDijkstraAgainstBellmanFordRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(15)
		g := New(n)
		type edge struct {
			u, v int
			c    float64
		}
		var edges []edge
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.3 {
					c := rng.Float64() * 10
					g.AddEdge(u, v, c)
					edges = append(edges, edge{u, v, c})
				}
			}
		}
		// Bellman-Ford reference.
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = Inf
		}
		ref[0] = 0
		for it := 0; it < n; it++ {
			for _, e := range edges {
				if !math.IsInf(ref[e.u], 1) && ref[e.u]+e.c < ref[e.v] {
					ref[e.v] = ref[e.u] + e.c
				}
			}
		}
		dist, _ := Dijkstra(g, 0)
		for i := range dist {
			if math.Abs(dist[i]-ref[i]) > 1e-9 && !(math.IsInf(dist[i], 1) && math.IsInf(ref[i], 1)) {
				t.Fatalf("trial %d node %d: dijkstra %v, bellman-ford %v", trial, i, dist[i], ref[i])
			}
		}
	}
}

func TestCountPathsDiamond(t *testing.T) {
	// 0 -> {1,2} -> 3: two paths; plus direct 0->3: three total.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	if got := CountPaths(g, 0, 3); got != 2 {
		t.Fatalf("CountPaths = %v, want 2", got)
	}
	g.AddEdge(0, 3, 1)
	if got := CountPaths(g, 0, 3); got != 3 {
		t.Fatalf("CountPaths = %v, want 3", got)
	}
	if got := CountPaths(g, 3, 0); got != 0 {
		t.Fatalf("reverse CountPaths = %v, want 0", got)
	}
}

func TestCountPathsLayeredGrowth(t *testing.T) {
	// k layers of 2 parallel nodes: 2^k paths.
	const k = 10
	g := New(2*k + 2)
	src, dst := 2*k, 2*k+1
	prev := []int{src}
	for layer := 0; layer < k; layer++ {
		a, b := 2*layer, 2*layer+1
		for _, p := range prev {
			g.AddEdge(p, a, 1)
			g.AddEdge(p, b, 1)
		}
		prev = []int{a, b}
	}
	for _, p := range prev {
		g.AddEdge(p, dst, 1)
	}
	if got := CountPaths(g, src, dst); got != math.Pow(2, k) {
		t.Fatalf("CountPaths = %v, want 2^%d", got, k)
	}
}

func TestMinCostFlowSinglePath(t *testing.T) {
	edges := []FlowEdge{
		{From: 0, To: 1, Capacity: 10, Cost: 1},
		{From: 1, To: 2, Capacity: 10, Cost: 1},
	}
	res, err := MinCostFlow(3, edges, 0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 5 || res.Cost != 10 {
		t.Fatalf("sent %d cost %v", res.Sent, res.Cost)
	}
	if res.Flow[0] != 5 || res.Flow[1] != 5 {
		t.Fatalf("flows = %v", res.Flow)
	}
}

func TestMinCostFlowPrefersCheapPathThenSpills(t *testing.T) {
	// Cheap path capacity 3, expensive path capacity 10; demand 5 must use
	// 3 cheap + 2 expensive.
	edges := []FlowEdge{
		{From: 0, To: 1, Capacity: 3, Cost: 1},
		{From: 1, To: 3, Capacity: 3, Cost: 1},
		{From: 0, To: 2, Capacity: 10, Cost: 5},
		{From: 2, To: 3, Capacity: 10, Cost: 5},
	}
	res, err := MinCostFlow(4, edges, 0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 5 {
		t.Fatalf("sent = %d", res.Sent)
	}
	if res.Flow[0] != 3 || res.Flow[2] != 2 {
		t.Fatalf("flows = %v", res.Flow)
	}
	if want := 3.0*2 + 2.0*10; math.Abs(res.Cost-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", res.Cost, want)
	}
}

func TestMinCostFlowInfeasibleDemand(t *testing.T) {
	edges := []FlowEdge{{From: 0, To: 1, Capacity: 2, Cost: 1}}
	res, err := MinCostFlow(2, edges, 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 2 {
		t.Fatalf("sent = %d, want max feasible 2", res.Sent)
	}
}

func TestMinCostFlowDisconnected(t *testing.T) {
	res, err := MinCostFlow(3, []FlowEdge{{From: 0, To: 1, Capacity: 5, Cost: 1}}, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 0 {
		t.Fatalf("sent = %d into disconnected sink", res.Sent)
	}
}

func TestMinCostFlowValidation(t *testing.T) {
	if _, err := MinCostFlow(2, nil, 0, 0, 1); err == nil {
		t.Fatal("src == dst must fail")
	}
	if _, err := MinCostFlow(2, nil, 0, 1, 0); err == nil {
		t.Fatal("zero demand must fail")
	}
	if _, err := MinCostFlow(2, []FlowEdge{{From: 0, To: 1, Capacity: 1, Cost: -1}}, 0, 1, 1); err == nil {
		t.Fatal("negative cost must fail")
	}
	if _, err := MinCostFlow(2, []FlowEdge{{From: 0, To: 5, Capacity: 1, Cost: 1}}, 0, 1, 1); err == nil {
		t.Fatal("out-of-range edge must fail")
	}
	if _, err := MinCostFlow(2, []FlowEdge{{From: 0, To: 1, Capacity: -2, Cost: 1}}, 0, 1, 1); err == nil {
		t.Fatal("negative capacity must fail")
	}
}

func TestMinCostFlowConservation(t *testing.T) {
	// Random graphs: flow conservation and capacity constraints must hold.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(8)
		var edges []FlowEdge
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.35 {
					edges = append(edges, FlowEdge{
						From: u, To: v,
						Capacity: int64(1 + rng.Intn(10)),
						Cost:     rng.Float64() * 4,
					})
				}
			}
		}
		res, err := MinCostFlow(n, edges, 0, n-1, int64(1+rng.Intn(12)))
		if err != nil {
			t.Fatal(err)
		}
		net := make([]int64, n)
		for i, e := range edges {
			f := res.Flow[i]
			if f < 0 || f > e.Capacity {
				t.Fatalf("trial %d: flow %d outside [0,%d] on edge %d", trial, f, e.Capacity, i)
			}
			net[e.From] -= f
			net[e.To] += f
		}
		for v := 0; v < n; v++ {
			switch v {
			case 0:
				if net[v] != -res.Sent {
					t.Fatalf("trial %d: source imbalance %d", trial, net[v])
				}
			case n - 1:
				if net[v] != res.Sent {
					t.Fatalf("trial %d: sink imbalance %d", trial, net[v])
				}
			default:
				if net[v] != 0 {
					t.Fatalf("trial %d: node %d imbalance %d", trial, v, net[v])
				}
			}
		}
	}
}

func TestPropertyShortestPathTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					g.AddEdge(u, v, rng.Float64()*5)
				}
			}
		}
		dist, _ := Dijkstra(g, 0)
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, e := range g.Edges(u) {
				if dist[e.To] > dist[u]+e.Cost+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestErrNoPathMessage(t *testing.T) {
	err := &ErrNoPath{Src: 3, Dst: 9}
	if err.Error() != "graph: no path from 3 to 9" {
		t.Fatalf("message = %q", err.Error())
	}
}
