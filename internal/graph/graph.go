// Package graph provides the graph algorithms the OMNC stack is built on:
// Dijkstra shortest paths (used with the ETX metric for routing, node
// selection, and SUB1 of the rate controller), BFS hop counts (session
// placement), a min-cost flow solver (the oldMORE baseline's transmission
// plan), and path counting in forwarder DAGs (the path-utility metric of
// Fig. 4).
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Edge is a directed, weighted link.
type Edge struct {
	To   int
	Cost float64
}

// Digraph is a directed graph with float64 edge costs, stored as adjacency
// lists.
type Digraph struct {
	adj [][]Edge
}

// New returns an empty digraph on n nodes.
func New(n int) *Digraph {
	return &Digraph{adj: make([][]Edge, n)}
}

// N returns the node count.
func (g *Digraph) N() int { return len(g.adj) }

// AddEdge inserts the directed edge u -> v. Costs must be non-negative for
// Dijkstra-based queries.
func (g *Digraph) AddEdge(u, v int, cost float64) {
	g.adj[u] = append(g.adj[u], Edge{To: v, Cost: cost})
}

// Reset empties the digraph and resizes it to n nodes, keeping the adjacency
// storage of earlier edges for reuse. A Reset digraph behaves exactly like
// New(n) but allocates nothing once its lists have grown to the working-set
// size — the rate controller rebuilds its forwarder graph every iteration
// through this path.
func (g *Digraph) Reset(n int) {
	if cap(g.adj) < n {
		adj := make([][]Edge, n)
		copy(adj, g.adj[:cap(g.adj)])
		g.adj = adj
	}
	g.adj = g.adj[:n]
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
}

// Edges returns the out-edges of u (not a copy).
func (g *Digraph) Edges(u int) []Edge { return g.adj[u] }

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

type pqItem struct {
	node int
	dist float64
}

// pqueue is a binary min-heap of pqItem ordered by dist. It replicates
// container/heap's sift-up/sift-down exactly — same comparisons, same swaps —
// so the pop order among equal-distance items (and therefore every Dijkstra
// parent array built on it) is bit-identical to the boxed container/heap
// implementation it replaced, without the per-push interface allocation.
type pqueue []pqItem

func (q *pqueue) push(it pqItem) {
	*q = append(*q, it)
	// Sift up (container/heap's up).
	h := *q
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (q *pqueue) pop() pqItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift down over h[:n] (container/heap's down).
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	*q = h[:n]
	return it
}

// PathFinder owns the scratch storage of Dijkstra queries — distance and
// parent arrays, the priority queue, and the reconstructed path — so a hot
// loop (SUB1 of the rate controller runs one query per iteration) can reuse
// it across calls instead of reallocating. The zero value is ready to use.
// A PathFinder must not be shared between goroutines.
type PathFinder struct {
	dist   []float64
	parent []int
	pq     pqueue
	path   []int
}

// grow resizes the scratch arrays to n nodes.
func (f *PathFinder) grow(n int) {
	if cap(f.dist) < n {
		f.dist = make([]float64, n)
		f.parent = make([]int, n)
	}
	f.dist = f.dist[:n]
	f.parent = f.parent[:n]
}

// dijkstra fills f.dist and f.parent from src.
func (f *PathFinder) dijkstra(g *Digraph, src int) {
	n := g.N()
	f.grow(n)
	dist, parent := f.dist, f.parent
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	f.pq = f.pq[:0]
	f.pq.push(pqItem{node: src, dist: 0})
	for len(f.pq) > 0 {
		it := f.pq.pop()
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.Cost; nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = it.node
				f.pq.push(pqItem{node: e.To, dist: nd})
			}
		}
	}
}

// ShortestPath is the reusing counterpart of the package-level ShortestPath:
// the returned path aliases the finder's scratch storage and is only valid
// until the next call on this finder (copy it to keep it).
func (f *PathFinder) ShortestPath(g *Digraph, src, dst int) (path []int, cost float64, ok bool) {
	f.dijkstra(g, src)
	if math.IsInf(f.dist[dst], 1) {
		return nil, Inf, false
	}
	f.path = f.path[:0]
	for at := dst; ; at = f.parent[at] {
		f.path = append(f.path, at)
		if at == src {
			break
		}
	}
	reverse(f.path)
	return f.path, f.dist[dst], true
}

// Dijkstra returns the shortest distance from src to every node and the
// predecessor array (parent[src] == src; parent of unreachable nodes is -1).
func Dijkstra(g *Digraph, src int) (dist []float64, parent []int) {
	var f PathFinder
	f.dijkstra(g, src)
	return f.dist, f.parent
}

// ShortestPath returns the minimum-cost path from src to dst as a node
// sequence (src first), its total cost, and whether dst is reachable.
func ShortestPath(g *Digraph, src, dst int) (path []int, cost float64, ok bool) {
	var f PathFinder
	path, cost, ok = f.ShortestPath(g, src, dst)
	if ok {
		path = append([]int(nil), path...) // detach from the local finder
	}
	return path, cost, ok
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// HopCounts returns BFS hop distances from src over an adjacency structure
// (unreachable nodes get -1). Used to place sessions with the paper's
// 4-to-10-hop constraint.
func HopCounts(neighbors [][]int, src int) []int {
	hops := make([]int, len(neighbors))
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range neighbors[u] {
			if hops[v] < 0 {
				hops[v] = hops[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return hops
}

// ErrNoRoute is the sentinel every routability failure matches: both
// *ErrNoPath (no path in a digraph) and *core.ErrUnreachable (no forwarder
// subgraph) satisfy errors.Is(err, ErrNoRoute), so callers can detect
// disconnected endpoints without knowing which layer rejected them.
var ErrNoRoute = errors.New("no route between the session endpoints")

// ErrNoPath reports that the requested flow cannot be routed.
type ErrNoPath struct {
	Src, Dst int
}

func (e *ErrNoPath) Error() string {
	return fmt.Sprintf("graph: no path from %d to %d", e.Src, e.Dst)
}

// Is matches the ErrNoRoute sentinel.
func (e *ErrNoPath) Is(target error) bool { return target == ErrNoRoute }

// CountPaths counts directed src->dst paths in an acyclic digraph by dynamic
// programming; counts are float64 because forwarder DAGs can hold
// exponentially many paths. If the graph has a cycle reachable between src
// and dst the result is meaningless; OMNC forwarder graphs are DAGs by
// construction (every link points strictly closer to the destination).
func CountPaths(g *Digraph, src, dst int) float64 {
	memo := make([]float64, g.N())
	state := make([]int8, g.N()) // 0 unvisited, 1 in progress, 2 done
	var dfs func(u int) float64
	dfs = func(u int) float64 {
		if u == dst {
			return 1
		}
		switch state[u] {
		case 1:
			return 0 // cycle guard: treat as no path
		case 2:
			return memo[u]
		}
		state[u] = 1
		total := 0.0
		for _, e := range g.adj[u] {
			total += dfs(e.To)
		}
		state[u] = 2
		memo[u] = total
		return total
	}
	return dfs(src)
}
