// Package graph provides the graph algorithms the OMNC stack is built on:
// Dijkstra shortest paths (used with the ETX metric for routing, node
// selection, and SUB1 of the rate controller), BFS hop counts (session
// placement), a min-cost flow solver (the oldMORE baseline's transmission
// plan), and path counting in forwarder DAGs (the path-utility metric of
// Fig. 4).
package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Edge is a directed, weighted link.
type Edge struct {
	To   int
	Cost float64
}

// Digraph is a directed graph with float64 edge costs, stored as adjacency
// lists.
type Digraph struct {
	adj [][]Edge
}

// New returns an empty digraph on n nodes.
func New(n int) *Digraph {
	return &Digraph{adj: make([][]Edge, n)}
}

// N returns the node count.
func (g *Digraph) N() int { return len(g.adj) }

// AddEdge inserts the directed edge u -> v. Costs must be non-negative for
// Dijkstra-based queries.
func (g *Digraph) AddEdge(u, v int, cost float64) {
	g.adj[u] = append(g.adj[u], Edge{To: v, Cost: cost})
}

// Edges returns the out-edges of u (not a copy).
func (g *Digraph) Edges(u int) []Edge { return g.adj[u] }

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

type pqItem struct {
	node int
	dist float64
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int            { return len(q) }
func (q priorityQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra returns the shortest distance from src to every node and the
// predecessor array (parent[src] == src; parent of unreachable nodes is -1).
func Dijkstra(g *Digraph, src int) (dist []float64, parent []int) {
	n := g.N()
	dist = make([]float64, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	pq := &priorityQueue{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.Cost; nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = it.node
				heap.Push(pq, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return dist, parent
}

// ShortestPath returns the minimum-cost path from src to dst as a node
// sequence (src first), its total cost, and whether dst is reachable.
func ShortestPath(g *Digraph, src, dst int) (path []int, cost float64, ok bool) {
	dist, parent := Dijkstra(g, src)
	if math.IsInf(dist[dst], 1) {
		return nil, Inf, false
	}
	for at := dst; ; at = parent[at] {
		path = append(path, at)
		if at == src {
			break
		}
	}
	reverse(path)
	return path, dist[dst], true
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// HopCounts returns BFS hop distances from src over an adjacency structure
// (unreachable nodes get -1). Used to place sessions with the paper's
// 4-to-10-hop constraint.
func HopCounts(neighbors [][]int, src int) []int {
	hops := make([]int, len(neighbors))
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range neighbors[u] {
			if hops[v] < 0 {
				hops[v] = hops[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return hops
}

// ErrNoRoute is the sentinel every routability failure matches: both
// *ErrNoPath (no path in a digraph) and *core.ErrUnreachable (no forwarder
// subgraph) satisfy errors.Is(err, ErrNoRoute), so callers can detect
// disconnected endpoints without knowing which layer rejected them.
var ErrNoRoute = errors.New("no route between the session endpoints")

// ErrNoPath reports that the requested flow cannot be routed.
type ErrNoPath struct {
	Src, Dst int
}

func (e *ErrNoPath) Error() string {
	return fmt.Sprintf("graph: no path from %d to %d", e.Src, e.Dst)
}

// Is matches the ErrNoRoute sentinel.
func (e *ErrNoPath) Is(target error) bool { return target == ErrNoRoute }

// CountPaths counts directed src->dst paths in an acyclic digraph by dynamic
// programming; counts are float64 because forwarder DAGs can hold
// exponentially many paths. If the graph has a cycle reachable between src
// and dst the result is meaningless; OMNC forwarder graphs are DAGs by
// construction (every link points strictly closer to the destination).
func CountPaths(g *Digraph, src, dst int) float64 {
	memo := make([]float64, g.N())
	state := make([]int8, g.N()) // 0 unvisited, 1 in progress, 2 done
	var dfs func(u int) float64
	dfs = func(u int) float64 {
		if u == dst {
			return 1
		}
		switch state[u] {
		case 1:
			return 0 // cycle guard: treat as no path
		case 2:
			return memo[u]
		}
		state[u] = 1
		total := 0.0
		for _, e := range g.adj[u] {
			total += dfs(e.To)
		}
		state[u] = 2
		memo[u] = total
		return total
	}
	return dfs(src)
}
