package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("positive counts pass through")
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 500
			counts := make([]atomic.Int32, n)
			if err := ForEach(n, workers, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("index %d ran %d times", i, c)
				}
			}
		})
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 8, func(int) error { t.Fatal("must not run"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-5, 8, func(int) error { t.Fatal("must not run"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := ForEach(10, 1, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 {
		t.Fatalf("serial run executed %d trials, want 4", ran)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Several trials fail; the reported error must be the lowest failing
	// index regardless of which worker saw its failure first.
	for trial := 0; trial < 20; trial++ {
		err := ForEach(100, 8, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-1" {
			t.Fatalf("err = %v, want fail-1", err)
		}
	}
}

func TestForEachStopsDispatchAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(1_000_000, 4, func(i int) error {
		ran.Add(1)
		return errors.New("stop")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n > 16 {
		t.Fatalf("ran %d trials after early failure", n)
	}
}

func TestForEachCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 1000, 4, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("cancellation dispatched all %d indices", got)
	}
}

func TestForEachCtxCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := ForEachCtx(ctx, 100, 1, func(i int) error {
		ran++
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d indices, want 3 (cancel checked before each dispatch)", ran)
	}
}

func TestForEachCtxRealErrorBeatsCancellation(t *testing.T) {
	// A genuine fn failure must win over the cancellation it triggered:
	// callers distinguish "work failed" from "caller gave up".
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEachCtx(ctx, 50, 4, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fn error", err)
	}
}

func TestForEachCtxBackgroundMatchesForEach(t *testing.T) {
	var a, b atomic.Int64
	if err := ForEach(64, 4, func(i int) error { a.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachCtx(context.Background(), 64, 4, func(i int) error { b.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if a.Load() != b.Load() {
		t.Fatalf("sums diverged: %d vs %d", a.Load(), b.Load())
	}
}
