// Package parallel runs independent, index-addressed trials on a bounded
// worker pool. It is the execution layer of the experiment harness: callers
// write results into pre-sized slices at the trial index, so the output is
// byte-identical no matter how many workers raced to produce it.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values above zero are used as
// given, anything else means one worker per available CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(0) … fn(n-1), running at most workers calls
// concurrently (workers <= 1 runs serially on the calling goroutine, exactly
// like a plain loop). Indices are handed out in order from a shared atomic
// counter.
//
// On failure, ForEach returns the error from the lowest failing index —
// deterministically, independent of scheduling: indices above the lowest
// known failure stop being dispatched, but every index below it still runs,
// so a lower-indexed failure can never be masked by a later one that a
// faster worker happened to hit first.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done, no
// further index is dispatched and the context's error is returned (unless an
// fn at a lower index already failed — the lowest-failing-index contract
// holds, with cancellation ranking below every real failure). Indices
// already running are not interrupted; fn owns its own promptness.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup

		// bound is the lowest failing index seen so far (n = none); indices
		// at or above it are not worth starting.
		bound atomic.Int64

		mu       sync.Mutex
		firstErr error
		errIdx   = n
	)
	bound.Store(int64(n))
	record := func(i int, err error) {
		for {
			cur := bound.Load()
			if int64(i) >= cur || bound.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
		mu.Lock()
		if i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n || int64(i) >= bound.Load() {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
