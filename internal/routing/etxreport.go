package routing

import (
	"omnc/internal/faults"
	"omnc/internal/protocol"
	"omnc/internal/report"
)

// etxObs is the ETX session's report collector, nil unless Config.Report is
// set. ETX has no coding, so its report carries no generation-latency
// histogram or rank timeline — node counters, the delivery matrix, the MAC
// section and the fault summary are shared with the coded protocols.
type etxObs struct {
	faults report.FaultSummary
}

// observeFault tallies one topology event the live session processed; only
// episode starts count, matching the coded runtime's bookkeeping.
func (o *etxObs) observeFault(kind faults.Kind) {
	switch kind {
	case faults.NodeCrash:
		o.faults.Crashes++
	case faults.NodeRecover:
		o.faults.Recoveries++
	case faults.LinkFlap:
		o.faults.LinkFlaps++
	case faults.BurstLoss:
		o.faults.Bursts++
	}
}

// buildReport assembles the ETX session's Report at Finish time.
func (s *etxSession) buildReport(st *protocol.Stats) *report.Report {
	r := &report.Report{
		Protocol:           st.Policy,
		Seed:               s.cfg.Seed,
		Duration:           st.Duration,
		GenerationsDecoded: st.GenerationsDecoded,
		Throughput:         st.Throughput,
		Faults:             s.obs.faults,
	}
	if s.env.Faults != nil {
		r.Faults.Epochs = s.env.Faults.Epoch()
	}

	mac := s.env.MAC
	r.Nodes = make([]report.NodeCounters, s.sg.Size())
	for i := range r.Nodes {
		nc := report.NodeCounters{
			Node:           i,
			TxFrames:       s.sentAt[i],
			RxPackets:      s.recvAt[i],
			AirtimeSeconds: mac.Airtime(s.macID(i)),
		}
		if !s.shared {
			nc.MeanQueue = mac.TimeAvgQueue(i)
		}
		r.Nodes[i] = nc
	}

	if s.shared {
		// On the shared channel per-link MAC counters aggregate every
		// session; attribute deliveries from the session's own per-hop
		// reception counts along the current path.
		for h := 0; h+1 < len(s.path); h++ {
			if d := s.recvAt[s.path[h+1]]; d > 0 {
				r.Links = append(r.Links, report.LinkDelivery{From: s.path[h], To: s.path[h+1], Delivered: d})
			}
		}
	} else {
		for _, l := range s.sg.Links {
			if d := mac.Delivered(l.From, l.To); d > 0 {
				r.Links = append(r.Links, report.LinkDelivery{From: l.From, To: l.To, Delivered: d})
			}
		}
	}

	var tokenSum float64
	var tokenN int64
	for i := 0; i < s.sg.Size(); i++ {
		id := s.macID(i)
		r.MAC.FramesSent += mac.FramesSent(id)
		r.MAC.BytesSent += mac.BytesSent(id)
		r.MAC.AirtimeSeconds += mac.Airtime(id)
		sum, n := mac.TokenObservations(id)
		tokenSum += sum
		tokenN += n
	}
	if tokenN > 0 {
		r.MAC.MeanTokenOccupancy = tokenSum / float64(tokenN)
	}
	if !s.shared {
		r.QueueLength = mac.QueueHistogram()
	}
	return r
}
