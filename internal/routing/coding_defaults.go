package routing

import "omnc/internal/coding"

// defaultCoding mirrors protocol's default coding parameters (the paper's
// 40 x 1 KB generations) for the ETX runtime, which does not code but uses
// the parameters for packet sizing and generation accounting.
func defaultCoding() coding.Params { return coding.DefaultParams() }
