// Package routing implements the three baselines the paper evaluates OMNC
// against (Sec. 5): MORE (SIGCOMM'07), its technical-report precursor
// oldMORE built on the min-cost formulation of Lun et al., and traditional
// best-path routing on the ETX metric. MORE and oldMORE reuse the coded
// session runtime of internal/protocol — the paper likewise runs all coding
// protocols on shared encoding/decoding modules — while ETX routing has its
// own store-and-forward runtime.
package routing

import (
	"fmt"
	"math"
	"sort"

	"omnc/internal/core"
	"omnc/internal/protocol"
)

// MOREPlan is the outcome of MORE's centralized heuristic: per-node expected
// transmission counts and the TX-credit increments that drive forwarding.
type MOREPlan struct {
	// Z[i] is the expected number of transmissions local node i makes per
	// source packet.
	Z []float64
	// Credit[i] is the TX credit a forwarder gains per packet heard from
	// upstream.
	Credit []float64
}

// ComputeMOREPlan runs MORE's expected-transmission-count heuristic on a
// selected subgraph. Nodes are ordered by ETX distance to the destination;
// a packet travelling from node i is charged to the closest downstream
// neighbour that hears it, and node i must transmit until some downstream
// neighbour hears (z_i = L_i / (1 - prod(1-p))). The heuristic is "oblivious
// of the channel status" (Sec. 5) — it fixes how many packets to send, not
// when the channel can carry them, which is exactly the congestion blind
// spot OMNC's Fig. 3 exposes.
func ComputeMOREPlan(sg *core.Subgraph) (*MOREPlan, error) {
	k := sg.Size()
	z := make([]float64, k)
	load := make([]float64, k) // L_i: expected packets node i must forward

	// Downstream neighbours of each node, closest to the destination first.
	downstream := make([][]core.Link, k)
	for i := 0; i < k; i++ {
		for _, li := range sg.Out(i) {
			downstream[i] = append(downstream[i], sg.Links[li])
		}
		links := downstream[i]
		sort.Slice(links, func(a, b int) bool {
			return sg.ETXDist[links[a].To] < sg.ETXDist[links[b].To]
		})
	}

	// Process nodes farthest-from-destination first (the source is the
	// farthest by construction of node selection).
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return sg.ETXDist[order[a]] > sg.ETXDist[order[b]]
	})

	load[sg.Src] = 1 // one unit: per source packet
	for _, i := range order {
		if i == sg.Dst || len(downstream[i]) == 0 {
			continue
		}
		// Probability at least one downstream neighbour hears a
		// transmission.
		miss := 1.0
		for _, l := range downstream[i] {
			miss *= 1 - l.Prob
		}
		hear := 1 - miss
		if hear <= 0 {
			continue
		}
		z[i] = load[i] / hear
		// Charge each transmission to the closest neighbour that heard it:
		// neighbour j accrues p_ij * prod over closer neighbours (1-p_ik).
		closerMiss := 1.0
		for _, l := range downstream[i] {
			load[l.To] += z[i] * l.Prob * closerMiss
			closerMiss *= 1 - l.Prob
		}
	}
	if z[sg.Src] <= 0 {
		return nil, fmt.Errorf("routing: MORE heuristic found no usable downstream for the source")
	}

	// TX credit: transmissions owed per packet heard from upstream,
	// credit_i = z_i / (expected receptions from upstream per source
	// packet).
	credit := make([]float64, k)
	recv := make([]float64, k)
	for _, l := range sg.Links {
		recv[l.To] += z[l.From] * l.Prob
	}
	for i := 0; i < k; i++ {
		if i == sg.Src || i == sg.Dst || recv[i] <= 0 {
			continue
		}
		credit[i] = z[i] / recv[i]
	}
	return &MOREPlan{Z: z, Credit: credit}, nil
}

// MORE returns the policy builder for the MORE baseline: the heuristic's TX
// credits drive forwarding, every reception from upstream earns credit, and
// nothing limits transmission rates — nodes contend for whatever the MAC
// gives them.
func MORE() protocol.Builder {
	return func(sg *core.Subgraph, cfg protocol.Config) (*protocol.Policy, error) {
		plan, err := ComputeMOREPlan(sg)
		if err != nil {
			return nil, err
		}
		clampCredits(plan.Credit)
		return &protocol.Policy{
			Name:                 "more",
			Caps:                 protocol.UncappedRates(sg.Size()),
			Credit:               plan.Credit,
			CreditOnAnyReception: true,
		}, nil
	}
}

// maxCredit guards against degenerate credit explosions on near-dead links.
const maxCredit = 64

func clampCredits(credit []float64) {
	for i, c := range credit {
		if math.IsInf(c, 1) || c > maxCredit {
			credit[i] = maxCredit
		}
	}
}
