package routing

import (
	"testing"

	"omnc/internal/core"
	"omnc/internal/protocol"
	"omnc/internal/topology"
)

// twoFlows hosts two sessions through shared middle relays:
// S1(0) -> {2,3} -> T1(5), S2(1) -> {2,3} -> T2(6).
func twoFlows(t *testing.T) *topology.Network {
	t.Helper()
	p := make([][]float64, 7)
	for i := range p {
		p[i] = make([]float64, 7)
	}
	set := func(a, b int, q float64) {
		p[a][b] = q
		p[b][a] = q
	}
	set(0, 2, 0.8)
	set(0, 3, 0.6)
	set(1, 2, 0.7)
	set(1, 3, 0.8)
	set(2, 5, 0.7)
	set(3, 5, 0.6)
	set(2, 6, 0.6)
	set(3, 6, 0.8)
	set(2, 3, 0.5)
	nw, err := topology.NewExplicit(p)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestRunMultiAllProtocols runs two contending sessions under each of the
// four protocols on one shared engine; every session of every protocol must
// deliver data. This doubles as the race-detector exercise for the shared
// Env (CI runs the suite with -race).
func TestRunMultiAllProtocols(t *testing.T) {
	nw := twoFlows(t)
	eps := []protocol.Endpoints{{Src: 0, Dst: 5}, {Src: 1, Dst: 6}}
	protos := []protocol.Protocol{
		protocol.NewProtocol("omnc", protocol.OMNC(core.Options{})).
			WithMulti(protocol.OMNCMulti(core.Options{})),
		protocol.NewProtocol("more", MORE()),
		protocol.NewProtocol("oldmore", OldMORE()),
		ETXProtocol(),
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			cfg := fastConfig(31)
			cfg.Duration = 300
			cs, err := protocol.RunMulti(nw, eps, proto, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(cs.PerSession) != 2 {
				t.Fatalf("sessions = %d", len(cs.PerSession))
			}
			for i, st := range cs.PerSession {
				if st.Policy != proto.Name() {
					t.Fatalf("session %d policy = %q, want %q", i, st.Policy, proto.Name())
				}
				if st.Throughput <= 0 {
					t.Fatalf("session %d delivered nothing", i)
				}
			}
			if cs.AggregateThroughput <= 0 {
				t.Fatal("aggregate throughput zero")
			}
			if cs.JainFairness <= 0 || cs.JainFairness > 1 {
				t.Fatalf("Jain index = %v outside (0,1]", cs.JainFairness)
			}
		})
	}
}

// TestRunMultiETXMatchesSolo: a single ETX session through RunMulti contends
// with nobody, so its throughput must match the exclusive RunETX path on the
// same subgraph and seed within the tolerance the different RNG placement
// allows (shared mode binds components at network IDs, so loss draws differ;
// the long-run rate does not).
func TestRunMultiETXSingleSession(t *testing.T) {
	nw := twoFlows(t)
	cfg := fastConfig(32)
	cfg.Duration = 400
	cs, err := protocol.RunMulti(nw, []protocol.Endpoints{{Src: 0, Dst: 5}}, ETXProtocol(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := RunETX(nw, 0, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi := cs.PerSession[0].Throughput
	if multi <= 0 || solo.Throughput <= 0 {
		t.Fatalf("throughputs multi=%v solo=%v", multi, solo.Throughput)
	}
	if multi < 0.8*solo.Throughput || multi > 1.2*solo.Throughput {
		t.Fatalf("lone multi session (%v) far from exclusive run (%v)", multi, solo.Throughput)
	}
}
