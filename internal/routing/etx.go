package routing

import (
	"fmt"
	"math"
	"sort"

	"omnc/internal/core"
	"omnc/internal/faults"
	"omnc/internal/graph"
	"omnc/internal/protocol"
	"omnc/internal/sim"
	"omnc/internal/topology"
	"omnc/internal/trace"
)

// macAckBytes is the link-layer acknowledgement size charged to every
// reliable-unicast attempt (an 802.11 ACK frame is 14 bytes).
const macAckBytes = 14

// etxSession is the traditional high-throughput single-path baseline
// (Sec. 5, "ETX routing"): Dijkstra on the ETX metric picks one path, each
// hop forwards store-and-forward with MAC-layer retransmissions providing
// per-hop reliability, and nodes contend for channel shares like everyone
// else. No coding, no multipath. It implements protocol.Session, so it runs
// exclusively (RunETX) or as one of N contending sessions on a shared Env
// (protocol.RunMulti with the ETX protocol).
type etxSession struct {
	id       uint32 // session tag on the shared channel (0 when exclusive)
	shared   bool
	cfg      protocol.Config
	env      *protocol.Env
	eng      sim.Engine // the session's engine view (Env.SessionEngine)
	sg       *core.Subgraph
	path     []int       // local node indices, source first
	nextHop  map[int]int // local index -> next local index
	appBytes int

	// Fault handling: localOf maps network IDs to subgraph-local indices
	// for injector events; relays and the attached sets let a re-route
	// reuse or lazily attach per-hop components; stalled silences the
	// session while no route survives; failure carries the typed
	// abnormal-termination cause.
	localOf    map[int]int
	relays     map[int]*etxRelay
	attachedTx map[int]bool
	attachedRx map[int]bool
	stalled    bool
	failure    error

	srcSent    int64
	delivered  int64
	target     int64 // stop after this many delivered packets (0 = none)
	done       bool
	finishedAt float64
	sentAt     []int64 // per-local-node frames this session sent (shared or reporting runs)
	recvAt     []int64 // per-local-node session deliveries (shared or reporting runs)

	// obs is the report collector (etxreport.go), nil unless Config.Report
	// is set — the same nil-until-enabled contract as the fault overlays.
	obs *etxObs
}

// etxPacket is one uncoded application packet on the shared channel, tagged
// with its session for demultiplexing.
type etxPacket struct {
	session uint32
	seq     int64
}

// SessionTag implements sim.Tagged: the MAC routes the packet straight to
// its session's port and shards same-time deliveries by session.
func (p etxPacket) SessionTag() uint32 { return p.session }

// etxWake defers a MAC wake-up from a receive callback to serial engine
// context, coalesced per bucket: waking the MAC mutates shared channel
// state, which a Receive callback must not do while other sessions'
// callbacks run concurrently in a parallel round. Wake is idempotent, so
// one deferred call per bucket is equivalent to several inline ones.
type etxWake struct {
	s      *etxSession
	local  int
	queued bool
}

// Fire implements sim.Handler.
func (w *etxWake) Fire() {
	w.queued = false
	w.s.env.MAC.Wake(w.s.macID(w.local))
}

// deferWake schedules the coalesced wake-up at delay zero on the session's
// engine view.
func (s *etxSession) deferWake(w *etxWake) {
	if w.queued {
		return
	}
	w.queued = true
	s.eng.ScheduleHandler(0, w)
}

// ETXProtocol wraps ETX routing as a protocol.Protocol for the unified Run
// and RunMulti entry points.
func ETXProtocol() protocol.Protocol {
	return protocol.CustomProtocol("etx", RunETX).WithMulti(ETXMulti())
}

// ETXMulti returns the multi-session constructor for ETX routing: one
// store-and-forward path per session, all contending on the shared Env.
func ETXMulti() protocol.MultiBuilder {
	return func(env *protocol.Env, net *topology.Network, specs []protocol.SessionSpec, cfg protocol.Config) ([]protocol.Session, error) {
		out := make([]protocol.Session, len(specs))
		for i, sp := range specs {
			s, err := attachETX(env, sp.Subgraph, cfg, uint32(sp.ID), true, sp.Src, sp.Dst)
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	}
}

// RunETX emulates one unicast session under ETX routing and returns its
// statistics. The session runs over the same selected subgraph and channel
// model as the coded protocols so that throughput gains (Fig. 2) compare
// like with like.
func RunETX(net *topology.Network, src, dst int, cfg protocol.Config) (*protocol.Stats, error) {
	cfg = applyDefaults(cfg)
	sg, err := core.SelectNodes(net, src, dst)
	if err != nil {
		return nil, err
	}
	env, err := protocol.NewEnv(protocol.NewMedium(net, sg), cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		// The exclusive medium addresses nodes by subgraph-local index.
		localOf := make(map[int]int, len(sg.Nodes))
		for local, nid := range sg.Nodes {
			localOf[nid] = local
		}
		mapNode := func(id int) (int, bool) {
			l, ok := localOf[id]
			return l, ok
		}
		if err := env.InstallFaults(cfg.Faults, net.Size(), mapNode, cfg.Trace); err != nil {
			return nil, err
		}
	}
	s, err := attachETX(env, sg, cfg, 0, false, src, dst)
	if err != nil {
		return nil, err
	}
	s.Start()
	env.Eng.Run(cfg.Duration)
	st := s.Finish(cfg.Duration)
	if s.failure != nil {
		return nil, s.failure
	}
	return st, nil
}

// attachETX computes the minimum-ETX path over the subgraph and attaches the
// session's per-hop components (source, relays, sink) to the Env's medium.
// In shared placement components bind at network IDs and filter deliveries
// by session tag.
func attachETX(env *protocol.Env, sg *core.Subgraph, cfg protocol.Config, id uint32, shared bool, netSrc, netDst int) (*etxSession, error) {
	costs := make([]float64, len(sg.Links))
	for i, l := range sg.Links {
		costs[i] = 1 / l.Prob
	}
	path, _, ok := graph.ShortestPath(sg.ForwardGraph(costs), sg.Src, sg.Dst)
	if !ok {
		return nil, &graph.ErrNoPath{Src: netSrc, Dst: netDst}
	}
	s := &etxSession{
		id:       id,
		shared:   shared,
		cfg:      cfg,
		env:      env,
		sg:       sg,
		path:     path,
		nextHop:  make(map[int]int, len(path)),
		appBytes: cfg.AirPacketSize - cfg.Coding.GenerationSize,
	}
	if cfg.MaxGenerations > 0 {
		s.target = int64(cfg.MaxGenerations) * int64(cfg.Coding.GenerationSize)
	}
	if shared || cfg.Report {
		s.sentAt = make([]int64, sg.Size())
		s.recvAt = make([]int64, sg.Size())
	}
	if cfg.Report {
		s.obs = &etxObs{}
	}
	for h := 0; h+1 < len(path); h++ {
		s.nextHop[path[h]] = path[h+1]
	}
	s.relays = make(map[int]*etxRelay)
	s.attachedTx = make(map[int]bool)
	s.attachedRx = make(map[int]bool)
	s.localOf = make(map[int]int, len(sg.Nodes))
	for local, nid := range sg.Nodes {
		s.localOf[nid] = local
	}
	s.eng = env.SessionEngine(id)
	s.attachPath()
	if env.Faults != nil {
		env.Faults.Subscribe(s.onFault)
	}
	env.AddSession()
	return s, nil
}

// attachPath makes sure every hop of the current path has its components on
// the medium; ports attach at most once per node (a re-route revives the
// existing relay rather than stacking a second port).
func (s *etxSession) attachPath() {
	for h, v := range s.path {
		switch {
		case h == 0:
			if !s.attachedTx[v] {
				s.env.MAC.AttachTransmitter(s.macID(v), &etxSource{s: s, local: v}, math.Inf(1))
				s.attachedTx[v] = true
			}
		case h == len(s.path)-1:
			if !s.attachedRx[v] {
				s.env.MAC.AttachSessionReceiver(s.macID(v), &etxSink{s: s, local: v}, s.id)
				s.attachedRx[v] = true
			}
		default:
			r := s.relays[v]
			if r == nil {
				r = &etxRelay{s: s, local: v}
				r.wake = etxWake{s: s, local: v}
				s.relays[v] = r
			}
			if !s.attachedTx[v] {
				s.env.MAC.AttachTransmitter(s.macID(v), r, math.Inf(1))
				s.attachedTx[v] = true
			}
			if !s.attachedRx[v] {
				s.env.MAC.AttachSessionReceiver(s.macID(v), r, s.id)
				s.attachedRx[v] = true
			}
		}
	}
}

// onFault is ETX's topology-epoch subscriber: a crashed relay loses its
// store-and-forward buffer, a destination crash with no scheduled recovery
// fails the session, and any connectivity change re-runs Dijkstra over the
// surviving links.
func (s *etxSession) onFault(ev faults.Event) {
	if s.done {
		return
	}
	if s.obs != nil {
		s.obs.observeFault(ev.Kind)
	}
	switch ev.Kind {
	case faults.NodeCrash:
		if local, ok := s.localOf[ev.Node]; ok {
			if local == s.sg.Dst && !s.env.Faults.WillRecover(ev.Node) {
				s.fail(fmt.Errorf("%w: node %d crashed with no recovery before the horizon",
					protocol.ErrDestinationDown, ev.Node))
				return
			}
			if r := s.relays[local]; r != nil {
				r.queue = r.queue[:0] // the relay's buffer died with it
			}
		}
	case faults.BurstLoss, faults.BurstEnd:
		return // degraded, not disconnected: the route stands, MAC retries cope
	}
	s.reroute()
}

// fail terminates the session abnormally with a typed cause.
func (s *etxSession) fail(err error) {
	if s.done {
		return
	}
	s.done = true
	s.failure = err
	s.finishedAt = s.env.Eng.Now()
	s.env.SessionDone()
}

// reroute re-runs the minimum-ETX path computation over the links that
// survive the current faults. No surviving route stalls the session until a
// later epoch restores one; a new route drops the old relays' buffers (ETX
// has no end-to-end recovery — per-hop MAC retries are its only reliability)
// and wakes the hops that have work.
func (s *etxSession) reroute() {
	// Emit and count in lockstep with the coded runtime's replan() so trace
	// and report stay reconcilable across all four protocols.
	if s.cfg.Trace != nil {
		s.cfg.Trace.Record(trace.Event{
			Time: s.env.Eng.Now(),
			Type: trace.EventReplan,
			Node: s.sg.Src,
			From: -1,
		})
	}
	if s.obs != nil {
		s.obs.faults.Replans++
	}
	inj := s.env.Faults
	g := graph.New(s.sg.Size())
	for _, l := range s.sg.Links {
		a, b := s.sg.Nodes[l.From], s.sg.Nodes[l.To]
		if inj.NodeDown(a) || inj.NodeDown(b) || inj.LinkDown(a, b) {
			continue
		}
		g.AddEdge(l.From, l.To, 1/l.Prob)
	}
	path, _, ok := graph.ShortestPath(g, s.sg.Src, s.sg.Dst)
	if !ok {
		s.stalled = true
		return
	}
	s.stalled = false
	s.path = path
	for k := range s.nextHop {
		delete(s.nextHop, k)
	}
	for h := 0; h+1 < len(path); h++ {
		s.nextHop[path[h]] = path[h+1]
	}
	s.attachPath()
	for local, r := range s.relays {
		if _, on := s.nextHop[local]; !on {
			r.queue = r.queue[:0] // off the new path: buffered packets are orphaned
		}
	}
	s.env.MAC.Wake(s.macID(path[0]))
	// Wake in sorted order: these calls schedule MAC events, and same-time
	// ties resolve in insertion order, so map iteration here would leak
	// scheduling nondeterminism into the run.
	locals := make([]int, 0, len(s.relays))
	for local := range s.relays {
		locals = append(locals, local)
	}
	sort.Ints(locals)
	for _, local := range locals {
		if _, on := s.nextHop[local]; on && len(s.relays[local].queue) > 0 {
			s.env.MAC.Wake(s.macID(local))
		}
	}
}

// macID maps a subgraph-local node index to its address on the Env's medium.
func (s *etxSession) macID(local int) int {
	if s.shared {
		return s.sg.Nodes[local]
	}
	return local
}

// Start implements protocol.Session.
func (s *etxSession) Start() { s.env.MAC.Wake(s.macID(s.path[0])) }

// Err implements protocol.Session.
func (s *etxSession) Err() error { return s.failure }

// Finish implements protocol.Session.
func (s *etxSession) Finish(until float64) *protocol.Stats {
	duration := until
	if s.done && s.finishedAt > 0 {
		duration = s.finishedAt
	}
	st := &protocol.Stats{
		Policy:        "etx",
		Duration:      duration,
		SelectedNodes: s.sg.Size(),
	}
	if duration > 0 {
		st.Throughput = float64(s.delivered) * float64(s.appBytes) / duration
	}
	st.GenerationsDecoded = int(s.delivered) / s.cfg.Coding.GenerationSize

	if s.shared {
		// Per-session attribution from the session's own counters; queue
		// statistics are a property of the shared channel and stay zero. The
		// destination is excluded from the utility denominator, so it must
		// not count as involved either.
		involved := 0
		for i, f := range s.sentAt {
			if i == s.sg.Dst {
				continue
			}
			if f > 0 {
				involved++
			}
		}
		if nonDst := s.sg.Size() - 1; nonDst > 0 {
			st.NodeUtility = float64(involved) / float64(nonDst)
		}
		used := graph.New(s.sg.Size())
		for h := 0; h+1 < len(s.path); h++ {
			if s.recvAt[s.path[h+1]] > 0 {
				used.AddEdge(s.path[h], s.path[h+1], 1)
			}
		}
		if total := s.sg.PathCount(); total > 0 {
			st.PathUtility = graph.CountPaths(used, s.sg.Src, s.sg.Dst) / total
		}
		if s.obs != nil {
			st.Report = s.buildReport(st)
		}
		return st
	}

	mac := s.env.MAC
	st.QueuePerNode = make([]float64, s.sg.Size())
	involved, queueSum := 0, 0.0
	for i := range st.QueuePerNode {
		st.QueuePerNode[i] = mac.TimeAvgQueue(i)
		if i == s.sg.Dst {
			continue // the destination never transmits and sits outside the denominator
		}
		if mac.FramesSent(i) > 0 {
			involved++
			queueSum += st.QueuePerNode[i]
		}
	}
	if involved > 0 {
		st.MeanQueue = queueSum / float64(involved)
	}
	if nonDst := s.sg.Size() - 1; nonDst > 0 {
		st.NodeUtility = float64(involved) / float64(nonDst)
	}
	used := graph.New(s.sg.Size())
	for _, l := range s.sg.Links {
		if mac.Delivered(l.From, l.To) > 0 {
			used.AddEdge(l.From, l.To, 1)
		}
	}
	if total := s.sg.PathCount(); total > 0 {
		st.PathUtility = graph.CountPaths(used, s.sg.Src, s.sg.Dst) / total
	}
	if s.obs != nil {
		st.Report = s.buildReport(st)
	}
	return st
}

// applyDefaults mirrors protocol.Config defaults for the ETX runtime, which
// bypasses protocol.Run.
func applyDefaults(cfg protocol.Config) protocol.Config {
	if cfg.Coding.GenerationSize == 0 && cfg.Coding.BlockSize == 0 {
		cfg.Coding = defaultCoding()
	}
	if cfg.AirPacketSize <= 0 {
		cfg.AirPacketSize = cfg.Coding.PacketSize()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 2e4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 60
	}
	return cfg
}

// etxSource emits uncoded packets paced by the CBR workload.
type etxSource struct {
	s     *etxSession
	local int
}

func (src *etxSource) Dequeue() *sim.Frame {
	s := src.s
	if s.done || s.stalled {
		return nil
	}
	if s.cfg.CBRRate > 0 {
		ready := float64(s.srcSent+1) * float64(s.appBytes) / s.cfg.CBRRate
		if s.env.Eng.Now() < ready {
			macID := s.macID(src.local)
			s.env.Eng.Schedule(ready-s.env.Eng.Now(), func() { s.env.MAC.Wake(macID) })
			return nil
		}
	}
	s.srcSent++
	if s.sentAt != nil {
		s.sentAt[src.local]++
	}
	return &sim.Frame{
		Size:     s.appBytes,
		Dest:     s.macID(s.nextHop[src.local]),
		Reliable: true,
		AckSize:  macAckBytes,
		Payload:  etxPacket{session: s.id, seq: s.srcSent},
	}
}

// QueueLen reports the source's link-layer queue. The CBR backlog is an
// application-layer quantity: like the coded protocols' sources (which
// encode on demand), it is not part of the broadcast-queue metric Fig. 3
// samples, so the source reports an empty queue; relays report their real
// store-and-forward backlog.
func (src *etxSource) QueueLen() int { return 0 }

// etxRelay stores and forwards packets hop by hop.
type etxRelay struct {
	s     *etxSession
	local int
	queue []etxPacket
	wake  etxWake // deferred MAC wake-up, coalesced per bucket
}

func (r *etxRelay) Receive(from int, payload interface{}) {
	s := r.s
	p, ok := payload.(etxPacket)
	if !ok || p.session != s.id || s.done {
		return
	}
	if _, on := s.nextHop[r.local]; !on {
		return // a stale in-flight frame reached a relay the route left behind
	}
	if s.recvAt != nil {
		s.recvAt[r.local]++
	}
	r.queue = append(r.queue, p)
	s.deferWake(&r.wake)
}

func (r *etxRelay) Dequeue() *sim.Frame {
	s := r.s
	if s.done || s.stalled || len(r.queue) == 0 {
		return nil
	}
	if _, on := s.nextHop[r.local]; !on {
		return nil // off the current path: nowhere to forward
	}
	payload := r.queue[0]
	r.queue = r.queue[1:]
	if s.sentAt != nil {
		s.sentAt[r.local]++
	}
	return &sim.Frame{
		Size:     s.appBytes,
		Dest:     s.macID(s.nextHop[r.local]),
		Reliable: true,
		AckSize:  macAckBytes,
		Payload:  payload,
	}
}

func (r *etxRelay) QueueLen() int { return len(r.queue) }

// etxSink counts delivered packets at the destination.
type etxSink struct {
	s     *etxSession
	local int
}

func (k *etxSink) Receive(from int, payload interface{}) {
	s := k.s
	p, ok := payload.(etxPacket)
	if !ok || p.session != s.id || s.done {
		return
	}
	if s.recvAt != nil {
		s.recvAt[k.local]++
	}
	s.delivered++
	// A generation's worth of delivered packets is ETX's analogue of a
	// decode: it keeps trace-derived metrics (time-to-recover under faults)
	// comparable across the four protocols.
	if gs := int64(s.cfg.Coding.GenerationSize); s.cfg.Trace != nil && s.delivered%gs == 0 {
		// Receive runs in shard context on the parallel engine: capture the
		// event here, record it in serial context at the bucket barrier.
		ev := trace.Event{
			Time:       s.env.Eng.Now(),
			Type:       trace.EventDecode,
			Node:       k.local,
			From:       -1,
			Generation: int(s.delivered/gs) - 1,
		}
		rec := s.cfg.Trace
		s.eng.Schedule(0, func() { rec.Record(ev) })
	}
	if s.target > 0 && s.delivered >= s.target {
		s.done = true
		s.finishedAt = s.env.Eng.Now()
		// SessionDone touches the Env's shared finished counter and may
		// Stop the engine; both must happen in serial engine context.
		s.eng.Schedule(0, s.env.SessionDone)
	}
}
