package routing

import (
	"math"

	"omnc/internal/core"
	"omnc/internal/graph"
	"omnc/internal/protocol"
	"omnc/internal/sim"
	"omnc/internal/topology"
)

// macAckBytes is the link-layer acknowledgement size charged to every
// reliable-unicast attempt (an 802.11 ACK frame is 14 bytes).
const macAckBytes = 14

// etxSession is the traditional high-throughput single-path baseline
// (Sec. 5, "ETX routing"): Dijkstra on the ETX metric picks one path, each
// hop forwards store-and-forward with MAC-layer retransmissions providing
// per-hop reliability, and nodes contend for channel shares like everyone
// else. No coding, no multipath. It implements protocol.Session, so it runs
// exclusively (RunETX) or as one of N contending sessions on a shared Env
// (protocol.RunMulti with the ETX protocol).
type etxSession struct {
	id       uint32 // session tag on the shared channel (0 when exclusive)
	shared   bool
	cfg      protocol.Config
	env      *protocol.Env
	sg       *core.Subgraph
	path     []int       // local node indices, source first
	nextHop  map[int]int // local index -> next local index
	appBytes int

	srcSent    int64
	delivered  int64
	target     int64 // stop after this many delivered packets (0 = none)
	done       bool
	finishedAt float64
	sentAt     []int64 // shared: per-local-node frames this session sent
	recvAt     []int64 // shared: per-local-node session deliveries
}

// etxPacket is one uncoded application packet on the shared channel, tagged
// with its session for demultiplexing.
type etxPacket struct {
	session uint32
	seq     int64
}

// ETXProtocol wraps ETX routing as a protocol.Protocol for the unified Run
// and RunMulti entry points.
func ETXProtocol() protocol.Protocol {
	return protocol.CustomProtocol("etx", RunETX).WithMulti(ETXMulti())
}

// ETXMulti returns the multi-session constructor for ETX routing: one
// store-and-forward path per session, all contending on the shared Env.
func ETXMulti() protocol.MultiBuilder {
	return func(env *protocol.Env, net *topology.Network, specs []protocol.SessionSpec, cfg protocol.Config) ([]protocol.Session, error) {
		out := make([]protocol.Session, len(specs))
		for i, sp := range specs {
			s, err := attachETX(env, sp.Subgraph, cfg, uint32(sp.ID), true, sp.Src, sp.Dst)
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	}
}

// RunETX emulates one unicast session under ETX routing and returns its
// statistics. The session runs over the same selected subgraph and channel
// model as the coded protocols so that throughput gains (Fig. 2) compare
// like with like.
func RunETX(net *topology.Network, src, dst int, cfg protocol.Config) (*protocol.Stats, error) {
	cfg = applyDefaults(cfg)
	sg, err := core.SelectNodes(net, src, dst)
	if err != nil {
		return nil, err
	}
	env, err := protocol.NewEnv(protocol.NewMedium(net, sg), cfg)
	if err != nil {
		return nil, err
	}
	s, err := attachETX(env, sg, cfg, 0, false, src, dst)
	if err != nil {
		return nil, err
	}
	s.Start()
	env.Eng.Run(cfg.Duration)
	return s.Finish(cfg.Duration), nil
}

// attachETX computes the minimum-ETX path over the subgraph and attaches the
// session's per-hop components (source, relays, sink) to the Env's medium.
// In shared placement components bind at network IDs and filter deliveries
// by session tag.
func attachETX(env *protocol.Env, sg *core.Subgraph, cfg protocol.Config, id uint32, shared bool, netSrc, netDst int) (*etxSession, error) {
	costs := make([]float64, len(sg.Links))
	for i, l := range sg.Links {
		costs[i] = 1 / l.Prob
	}
	path, _, ok := graph.ShortestPath(sg.ForwardGraph(costs), sg.Src, sg.Dst)
	if !ok {
		return nil, &graph.ErrNoPath{Src: netSrc, Dst: netDst}
	}
	s := &etxSession{
		id:       id,
		shared:   shared,
		cfg:      cfg,
		env:      env,
		sg:       sg,
		path:     path,
		nextHop:  make(map[int]int, len(path)),
		appBytes: cfg.AirPacketSize - cfg.Coding.GenerationSize,
	}
	if cfg.MaxGenerations > 0 {
		s.target = int64(cfg.MaxGenerations) * int64(cfg.Coding.GenerationSize)
	}
	if shared {
		s.sentAt = make([]int64, sg.Size())
		s.recvAt = make([]int64, sg.Size())
	}
	for h := 0; h+1 < len(path); h++ {
		s.nextHop[path[h]] = path[h+1]
	}
	for h, v := range path {
		switch {
		case h == 0:
			env.MAC.AttachTransmitter(s.macID(v), &etxSource{s: s, local: v}, math.Inf(1))
		case h == len(path)-1:
			env.MAC.AttachReceiver(s.macID(v), &etxSink{s: s, local: v})
		default:
			relay := &etxRelay{s: s, local: v}
			env.MAC.AttachTransmitter(s.macID(v), relay, math.Inf(1))
			env.MAC.AttachReceiver(s.macID(v), relay)
		}
	}
	env.AddSession()
	return s, nil
}

// macID maps a subgraph-local node index to its address on the Env's medium.
func (s *etxSession) macID(local int) int {
	if s.shared {
		return s.sg.Nodes[local]
	}
	return local
}

// Start implements protocol.Session.
func (s *etxSession) Start() { s.env.MAC.Wake(s.macID(s.path[0])) }

// Finish implements protocol.Session.
func (s *etxSession) Finish(until float64) *protocol.Stats {
	duration := until
	if s.done && s.finishedAt > 0 {
		duration = s.finishedAt
	}
	st := &protocol.Stats{
		Policy:        "etx",
		Duration:      duration,
		SelectedNodes: s.sg.Size(),
	}
	if duration > 0 {
		st.Throughput = float64(s.delivered) * float64(s.appBytes) / duration
	}
	st.GenerationsDecoded = int(s.delivered) / s.cfg.Coding.GenerationSize

	if s.shared {
		// Per-session attribution from the session's own counters; queue
		// statistics are a property of the shared channel and stay zero.
		involved := 0
		for _, f := range s.sentAt {
			if f > 0 {
				involved++
			}
		}
		if nonDst := s.sg.Size() - 1; nonDst > 0 {
			st.NodeUtility = float64(involved) / float64(nonDst)
		}
		used := graph.New(s.sg.Size())
		for h := 0; h+1 < len(s.path); h++ {
			if s.recvAt[s.path[h+1]] > 0 {
				used.AddEdge(s.path[h], s.path[h+1], 1)
			}
		}
		if total := s.sg.PathCount(); total > 0 {
			st.PathUtility = graph.CountPaths(used, s.sg.Src, s.sg.Dst) / total
		}
		return st
	}

	mac := s.env.MAC
	st.QueuePerNode = make([]float64, s.sg.Size())
	involved, queueSum := 0, 0.0
	for i := range st.QueuePerNode {
		st.QueuePerNode[i] = mac.TimeAvgQueue(i)
		if mac.FramesSent(i) > 0 {
			involved++
			queueSum += st.QueuePerNode[i]
		}
	}
	if involved > 0 {
		st.MeanQueue = queueSum / float64(involved)
	}
	if nonDst := s.sg.Size() - 1; nonDst > 0 {
		st.NodeUtility = float64(involved) / float64(nonDst)
	}
	used := graph.New(s.sg.Size())
	for _, l := range s.sg.Links {
		if mac.Delivered(l.From, l.To) > 0 {
			used.AddEdge(l.From, l.To, 1)
		}
	}
	if total := s.sg.PathCount(); total > 0 {
		st.PathUtility = graph.CountPaths(used, s.sg.Src, s.sg.Dst) / total
	}
	return st
}

// applyDefaults mirrors protocol.Config defaults for the ETX runtime, which
// bypasses protocol.Run.
func applyDefaults(cfg protocol.Config) protocol.Config {
	if cfg.Coding.GenerationSize == 0 && cfg.Coding.BlockSize == 0 {
		cfg.Coding = defaultCoding()
	}
	if cfg.AirPacketSize <= 0 {
		cfg.AirPacketSize = cfg.Coding.PacketSize()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 2e4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 60
	}
	return cfg
}

// etxSource emits uncoded packets paced by the CBR workload.
type etxSource struct {
	s     *etxSession
	local int
}

func (src *etxSource) Dequeue() *sim.Frame {
	s := src.s
	if s.done {
		return nil
	}
	if s.cfg.CBRRate > 0 {
		ready := float64(s.srcSent+1) * float64(s.appBytes) / s.cfg.CBRRate
		if s.env.Eng.Now() < ready {
			macID := s.macID(src.local)
			s.env.Eng.Schedule(ready-s.env.Eng.Now(), func() { s.env.MAC.Wake(macID) })
			return nil
		}
	}
	s.srcSent++
	if s.sentAt != nil {
		s.sentAt[src.local]++
	}
	return &sim.Frame{
		Size:     s.appBytes,
		Dest:     s.macID(s.nextHop[src.local]),
		Reliable: true,
		AckSize:  macAckBytes,
		Payload:  etxPacket{session: s.id, seq: s.srcSent},
	}
}

// QueueLen reports the source's link-layer queue. The CBR backlog is an
// application-layer quantity: like the coded protocols' sources (which
// encode on demand), it is not part of the broadcast-queue metric Fig. 3
// samples, so the source reports an empty queue; relays report their real
// store-and-forward backlog.
func (src *etxSource) QueueLen() int { return 0 }

// etxRelay stores and forwards packets hop by hop.
type etxRelay struct {
	s     *etxSession
	local int
	queue []etxPacket
}

func (r *etxRelay) Receive(from int, payload interface{}) {
	s := r.s
	p, ok := payload.(etxPacket)
	if !ok || p.session != s.id || s.done {
		return
	}
	if s.recvAt != nil {
		s.recvAt[r.local]++
	}
	r.queue = append(r.queue, p)
	s.env.MAC.Wake(s.macID(r.local))
}

func (r *etxRelay) Dequeue() *sim.Frame {
	s := r.s
	if s.done || len(r.queue) == 0 {
		return nil
	}
	payload := r.queue[0]
	r.queue = r.queue[1:]
	if s.sentAt != nil {
		s.sentAt[r.local]++
	}
	return &sim.Frame{
		Size:     s.appBytes,
		Dest:     s.macID(s.nextHop[r.local]),
		Reliable: true,
		AckSize:  macAckBytes,
		Payload:  payload,
	}
}

func (r *etxRelay) QueueLen() int { return len(r.queue) }

// etxSink counts delivered packets at the destination.
type etxSink struct {
	s     *etxSession
	local int
}

func (k *etxSink) Receive(from int, payload interface{}) {
	s := k.s
	p, ok := payload.(etxPacket)
	if !ok || p.session != s.id || s.done {
		return
	}
	if s.recvAt != nil {
		s.recvAt[k.local]++
	}
	s.delivered++
	if s.target > 0 && s.delivered >= s.target {
		s.done = true
		s.finishedAt = s.env.Eng.Now()
		s.env.SessionDone()
	}
}
