package routing

import (
	"math"

	"omnc/internal/core"
	"omnc/internal/graph"
	"omnc/internal/protocol"
	"omnc/internal/sim"
	"omnc/internal/topology"
)

// macAckBytes is the link-layer acknowledgement size charged to every
// reliable-unicast attempt (an 802.11 ACK frame is 14 bytes).
const macAckBytes = 14

// etxRuntime is the traditional high-throughput single-path baseline
// (Sec. 5, "ETX routing"): Dijkstra on the ETX metric picks one path, each
// hop forwards store-and-forward with MAC-layer retransmissions providing
// per-hop reliability, and nodes contend for channel shares like everyone
// else. No coding, no multipath.
type etxRuntime struct {
	cfg      protocol.Config
	eng      *sim.Engine
	mac      *sim.MAC
	sg       *core.Subgraph
	path     []int       // local node indices, source first
	nextHop  map[int]int // local index -> next local index
	appBytes int

	srcSent    int64
	delivered  int64
	target     int64 // stop after this many delivered packets (0 = none)
	done       bool
	finishedAt float64
}

// ETXProtocol wraps ETX routing as a protocol.Protocol for the unified Run
// entry point.
func ETXProtocol() protocol.Protocol { return protocol.CustomProtocol("etx", RunETX) }

// RunETX emulates one unicast session under ETX routing and returns its
// statistics. The session runs over the same selected subgraph and channel
// model as the coded protocols so that throughput gains (Fig. 2) compare
// like with like.
func RunETX(net *topology.Network, src, dst int, cfg protocol.Config) (*protocol.Stats, error) {
	cfg = applyDefaults(cfg)
	sg, err := core.SelectNodes(net, src, dst)
	if err != nil {
		return nil, err
	}
	costs := make([]float64, len(sg.Links))
	for i, l := range sg.Links {
		costs[i] = 1 / l.Prob
	}
	path, _, ok := graph.ShortestPath(sg.ForwardGraph(costs), sg.Src, sg.Dst)
	if !ok {
		return nil, &graph.ErrNoPath{Src: src, Dst: dst}
	}

	eng := sim.NewEngine()
	mac, err := sim.NewMAC(eng, protocol.NewMedium(net, sg), sim.Config{
		Capacity:            cfg.Capacity,
		Mode:                cfg.MAC,
		Seed:                cfg.Seed,
		QueueSampleInterval: cfg.QueueSampleInterval,
	})
	if err != nil {
		return nil, err
	}
	rt := &etxRuntime{
		cfg:      cfg,
		eng:      eng,
		mac:      mac,
		sg:       sg,
		path:     path,
		nextHop:  make(map[int]int, len(path)),
		appBytes: cfg.AirPacketSize - cfg.Coding.GenerationSize,
	}
	if cfg.MaxGenerations > 0 {
		rt.target = int64(cfg.MaxGenerations) * int64(cfg.Coding.GenerationSize)
	}
	for h := 0; h+1 < len(path); h++ {
		rt.nextHop[path[h]] = path[h+1]
	}
	for h, v := range path {
		switch {
		case h == 0:
			mac.RegisterTransmitter(v, &etxSource{rt: rt, local: v}, math.Inf(1))
		case h == len(path)-1:
			mac.RegisterReceiver(v, &etxSink{rt: rt})
		default:
			relay := &etxRelay{rt: rt, local: v}
			mac.RegisterTransmitter(v, relay, math.Inf(1))
			mac.RegisterReceiver(v, relay)
		}
	}

	mac.Wake(path[0])
	eng.Run(cfg.Duration)

	duration := cfg.Duration
	if rt.done && rt.finishedAt > 0 {
		duration = rt.finishedAt
	}
	st := &protocol.Stats{
		Policy:        "etx",
		Duration:      duration,
		SelectedNodes: sg.Size(),
	}
	if duration > 0 {
		st.Throughput = float64(rt.delivered) * float64(rt.appBytes) / duration
	}
	st.GenerationsDecoded = int(rt.delivered) / cfg.Coding.GenerationSize

	st.QueuePerNode = make([]float64, sg.Size())
	involved, queueSum := 0, 0.0
	for i := range st.QueuePerNode {
		st.QueuePerNode[i] = mac.TimeAvgQueue(i)
		if mac.FramesSent(i) > 0 {
			involved++
			queueSum += st.QueuePerNode[i]
		}
	}
	if involved > 0 {
		st.MeanQueue = queueSum / float64(involved)
	}
	if nonDst := sg.Size() - 1; nonDst > 0 {
		st.NodeUtility = float64(involved) / float64(nonDst)
	}
	used := graph.New(sg.Size())
	for _, l := range sg.Links {
		if mac.Delivered(l.From, l.To) > 0 {
			used.AddEdge(l.From, l.To, 1)
		}
	}
	if total := sg.PathCount(); total > 0 {
		st.PathUtility = graph.CountPaths(used, sg.Src, sg.Dst) / total
	}
	return st, nil
}

// applyDefaults mirrors protocol.Config defaults for the ETX runtime, which
// bypasses protocol.Run.
func applyDefaults(cfg protocol.Config) protocol.Config {
	if cfg.Coding.GenerationSize == 0 && cfg.Coding.BlockSize == 0 {
		cfg.Coding = defaultCoding()
	}
	if cfg.AirPacketSize <= 0 {
		cfg.AirPacketSize = cfg.Coding.PacketSize()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 2e4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 60
	}
	return cfg
}

// etxSource emits uncoded packets paced by the CBR workload.
type etxSource struct {
	rt    *etxRuntime
	local int
}

func (s *etxSource) Dequeue() *sim.Frame {
	rt := s.rt
	if rt.done {
		return nil
	}
	if rt.cfg.CBRRate > 0 {
		ready := float64(rt.srcSent+1) * float64(rt.appBytes) / rt.cfg.CBRRate
		if rt.eng.Now() < ready {
			local := s.local
			rt.eng.Schedule(ready-rt.eng.Now(), func() { rt.mac.Wake(local) })
			return nil
		}
	}
	rt.srcSent++
	return &sim.Frame{
		Size:     rt.appBytes,
		Dest:     rt.nextHop[s.local],
		Reliable: true,
		AckSize:  macAckBytes,
		Payload:  rt.srcSent,
	}
}

// QueueLen reports the source's link-layer queue. The CBR backlog is an
// application-layer quantity: like the coded protocols' sources (which
// encode on demand), it is not part of the broadcast-queue metric Fig. 3
// samples, so the source reports an empty queue; relays report their real
// store-and-forward backlog.
func (s *etxSource) QueueLen() int { return 0 }

// etxRelay stores and forwards packets hop by hop.
type etxRelay struct {
	rt    *etxRuntime
	local int
	queue []interface{}
}

func (r *etxRelay) Receive(from int, payload interface{}) {
	if r.rt.done {
		return
	}
	r.queue = append(r.queue, payload)
	r.rt.mac.Wake(r.local)
}

func (r *etxRelay) Dequeue() *sim.Frame {
	if r.rt.done || len(r.queue) == 0 {
		return nil
	}
	payload := r.queue[0]
	r.queue = r.queue[1:]
	return &sim.Frame{
		Size:     r.rt.appBytes,
		Dest:     r.rt.nextHop[r.local],
		Reliable: true,
		AckSize:  macAckBytes,
		Payload:  payload,
	}
}

func (r *etxRelay) QueueLen() int { return len(r.queue) }

// etxSink counts delivered packets at the destination.
type etxSink struct {
	rt *etxRuntime
}

func (s *etxSink) Receive(from int, payload interface{}) {
	rt := s.rt
	if rt.done {
		return
	}
	rt.delivered++
	if rt.target > 0 && rt.delivered >= rt.target {
		rt.done = true
		rt.finishedAt = rt.eng.Now()
		rt.eng.Stop()
	}
}
