package routing

import (
	"fmt"
	"math"

	"omnc/internal/core"
	"omnc/internal/graph"
	"omnc/internal/protocol"
)

// flowScale converts link probabilities into integral min-cost-flow
// capacities.
const flowScale = 1000

// oldMOREDemandFraction sets how much of the max feasible flow the min-cost
// plan routes. The Lun et al. formulation minimizes expected transmissions
// for a target rate rather than maximizing rate, so the plan concentrates on
// the cheapest (highest-quality) links and ignores lossy detours — the
// best-path bias that Fig. 4 shows pruning most nodes and paths. A small
// fraction keeps the plan close to the uncapacitated min-cost solution
// (essentially the single best path, spilling only at bottlenecks).
const oldMOREDemandFraction = 0.35

// OldMOREPlan is the transmission plan of the MORE technical-report
// precursor: a min-cost flow in the spirit of Lun et al. [17], which
// minimizes expected transmissions and therefore "favors high-quality
// paths" and "tends to prune a large number of nodes associated with low
// quality links" (Sec. 5).
type OldMOREPlan struct {
	// Z[i] is the relative transmission rate of local node i.
	Z []float64
	// Credit[i] is the TX credit per innovative packet received.
	Credit []float64
	// Exclude[i] marks nodes the plan prunes entirely.
	Exclude []bool
}

// ComputeOldMOREPlan derives the min-cost transmission plan on a selected
// subgraph: link cost is the expected transmission count 1/p_ij, link
// capacity is proportional to p_ij, and the plan routes a fixed fraction of
// the maximum feasible flow at minimum cost. Per-node transmission rates
// follow from the flows (z_i = sum_j x_ij / p_ij).
func ComputeOldMOREPlan(sg *core.Subgraph) (*OldMOREPlan, error) {
	k := sg.Size()
	edges := make([]graph.FlowEdge, len(sg.Links))
	for i, l := range sg.Links {
		edges[i] = graph.FlowEdge{
			From:     l.From,
			To:       l.To,
			Capacity: int64(math.Max(1, math.Round(l.Prob*flowScale))),
			Cost:     1 / l.Prob,
		}
	}
	// First pass: measure the maximum feasible flow.
	probe, err := graph.MinCostFlow(k, edges, sg.Src, sg.Dst, int64(k)*flowScale)
	if err != nil {
		return nil, fmt.Errorf("routing: oldMORE max-flow probe: %w", err)
	}
	if probe.Sent <= 0 {
		return nil, fmt.Errorf("routing: oldMORE found no feasible flow")
	}
	demand := int64(math.Max(1, math.Floor(oldMOREDemandFraction*float64(probe.Sent))))
	res, err := graph.MinCostFlow(k, edges, sg.Src, sg.Dst, demand)
	if err != nil {
		return nil, fmt.Errorf("routing: oldMORE min-cost plan: %w", err)
	}

	z := make([]float64, k)
	for i, l := range sg.Links {
		f := float64(res.Flow[i]) / float64(demand)
		z[l.From] += f / l.Prob
	}
	exclude := make([]bool, k)
	for i := 0; i < k; i++ {
		if i != sg.Src && i != sg.Dst && z[i] <= 1e-12 {
			exclude[i] = true
		}
	}
	// Credit per packet heard from upstream: normalize by the expected
	// reception rate implied by the plan's transmission rates, so the
	// credit loop is stationary (each reception spawns exactly the planned
	// number of transmissions, like MORE's TX-credit rule).
	recv := make([]float64, k)
	for _, l := range sg.Links {
		if !exclude[l.From] {
			recv[l.To] += z[l.From] * l.Prob
		}
	}
	credit := make([]float64, k)
	for i := 0; i < k; i++ {
		if i == sg.Src || i == sg.Dst || exclude[i] || recv[i] <= 0 {
			continue
		}
		credit[i] = z[i] / recv[i]
	}
	clampCredits(credit)
	return &OldMOREPlan{Z: z, Credit: credit, Exclude: exclude}, nil
}

// OldMORE returns the policy builder for the oldMORE baseline: min-cost
// flow transmission plan, credits per innovative packet, no rate control,
// pruned nodes silent.
func OldMORE() protocol.Builder {
	return func(sg *core.Subgraph, cfg protocol.Config) (*protocol.Policy, error) {
		plan, err := ComputeOldMOREPlan(sg)
		if err != nil {
			return nil, err
		}
		return &protocol.Policy{
			Name:   "oldmore",
			Caps:   protocol.UncappedRates(sg.Size()),
			Credit: plan.Credit,
			// The min-cost plan fixes transmission rates relative to
			// reception rates (z_i per unit flow), so credit accrues on
			// every packet heard from upstream, like MORE; a full-rank
			// relay keeps forwarding as long as upstream keeps sending.
			CreditOnAnyReception: true,
			Exclude:              plan.Exclude,
		}, nil
	}
}
