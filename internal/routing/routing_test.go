package routing

import (
	"math"
	"sort"
	"testing"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/gf256"
	"omnc/internal/protocol"
	"omnc/internal/topology"
)

func diamond(t *testing.T) *topology.Network {
	t.Helper()
	nw, err := topology.NewExplicit([][]float64{
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func fastConfig(seed int64) protocol.Config {
	return protocol.Config{
		Coding:        coding.Params{GenerationSize: 8, BlockSize: 16, Strategy: gf256.StrategyAccel},
		AirPacketSize: 8 + 1024,
		Capacity:      2e4,
		Duration:      120,
		Seed:          seed,
	}
}

func TestComputeMOREPlanDiamond(t *testing.T) {
	sg, err := core.SelectNodes(diamond(t), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ComputeMOREPlan(sg)
	if err != nil {
		t.Fatal(err)
	}
	// Source must transmit until either relay hears:
	// z_src = 1 / (1 - (1-0.8)(1-0.6)) = 1/0.92.
	if got, want := plan.Z[sg.Src], 1/0.92; math.Abs(got-want) > 1e-9 {
		t.Fatalf("z_src = %v, want %v", got, want)
	}
	// Both relays carry load; the destination transmits nothing.
	if plan.Z[sg.Dst] != 0 {
		t.Fatalf("z_dst = %v", plan.Z[sg.Dst])
	}
	for i := 0; i < sg.Size(); i++ {
		if i == sg.Src || i == sg.Dst {
			continue
		}
		if plan.Z[i] <= 0 {
			t.Fatalf("relay %d has zero transmission count", i)
		}
		if plan.Credit[i] <= 0 {
			t.Fatalf("relay %d has zero credit", i)
		}
	}
}

func TestMOREPlanLoadSplitsByProximity(t *testing.T) {
	// The closest relay to the destination absorbs the charge when both
	// hear: relay v (ETX 1/0.9) is closer than u (1/0.7), so v's load
	// includes the "both heard" mass.
	sg, _ := core.SelectNodes(diamond(t), 0, 3)
	plan, _ := ComputeMOREPlan(sg)
	var u, v int
	for i, id := range sg.Nodes {
		switch id {
		case 1:
			u = i
		case 2:
			v = i
		}
	}
	zSrc := 1 / 0.92
	// v hears: p=0.6 (v is closest downstream of src).
	wantLv := zSrc * 0.6
	// u hears and v does not: 0.8 * 0.4.
	wantLu := zSrc * 0.8 * 0.4
	gotLu := plan.Z[u] * (1 - (1 - 0.7)) // z_u = L_u / p_ut
	gotLv := plan.Z[v] * (1 - (1 - 0.9))
	if math.Abs(gotLu-wantLu) > 1e-9 {
		t.Fatalf("L_u = %v, want %v", gotLu, wantLu)
	}
	if math.Abs(gotLv-wantLv) > 1e-9 {
		t.Fatalf("L_v = %v, want %v", gotLv, wantLv)
	}
}

func TestMORESessionDecodes(t *testing.T) {
	st, err := protocol.Run(diamond(t), 0, 3, MORE(), fastConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy != "more" {
		t.Fatalf("policy = %q", st.Policy)
	}
	if st.GenerationsDecoded == 0 {
		t.Fatal("MORE decoded nothing")
	}
}

func TestOldMOREPrunesLossySidePath(t *testing.T) {
	// Side path so weak that 80% of max flow fits on the good path alone:
	// the min-cost plan must silence relay v entirely. The side relay's
	// weak hop is its *first* one, so node selection still keeps it (its
	// remaining ETX to the destination is small) but min-cost routing has
	// no use for it.
	nw, err := topology.NewExplicit([][]float64{
		{0, 0.8, 0.15, 0},
		{0.8, 0, 0, 0.8},
		{0.15, 0, 0, 0.9},
		{0, 0.8, 0.9, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := core.SelectNodes(nw, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ComputeOldMOREPlan(sg)
	if err != nil {
		t.Fatal(err)
	}
	prunedV := false
	for i, id := range sg.Nodes {
		if id == 2 && plan.Exclude[i] {
			prunedV = true
		}
	}
	if !prunedV {
		t.Fatalf("oldMORE must prune the lossy relay: exclude=%v z=%v", plan.Exclude, plan.Z)
	}
}

func TestOldMOREConcentratesOnBestPath(t *testing.T) {
	// On the balanced diamond the min-cost demand fits on one path, so the
	// plan prunes the worse relay — the best-path bias of Sec. 5.
	sg, _ := core.SelectNodes(diamond(t), 0, 3)
	plan, err := ComputeOldMOREPlan(sg)
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for i := range plan.Exclude {
		if plan.Exclude[i] {
			pruned++
		}
	}
	if pruned != 1 {
		t.Fatalf("pruned %d nodes on the diamond, want exactly the worse relay", pruned)
	}
}

func TestOldMORESpillsWhenBestPathSaturates(t *testing.T) {
	// Three parallel equal relays: the min-cost demand (35% of max flow)
	// exceeds any single relay's capacity, so at least two relays carry
	// flow.
	nw, err := topology.NewExplicit([][]float64{
		{0, 0.5, 0.5, 0.5, 0},
		{0.5, 0, 0, 0, 0.5},
		{0.5, 0, 0, 0, 0.5},
		{0.5, 0, 0, 0, 0.5},
		{0, 0.5, 0.5, 0.5, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := core.SelectNodes(nw, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ComputeOldMOREPlan(sg)
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for i := range plan.Exclude {
		if i != sg.Src && i != sg.Dst && !plan.Exclude[i] {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("only %d relays carry flow, want at least 2", active)
	}
}

func TestOldMORESessionDecodes(t *testing.T) {
	st, err := protocol.Run(diamond(t), 0, 3, OldMORE(), fastConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy != "oldmore" {
		t.Fatalf("policy = %q", st.Policy)
	}
	if st.GenerationsDecoded == 0 {
		t.Fatal("oldMORE decoded nothing")
	}
}

func TestETXChainThroughput(t *testing.T) {
	// Chain S - r - T with p = 0.5 per hop, C = 2e4. S and r share r's
	// neighbourhood, so each gets ~C/2; an attempt succeeds only when data
	// and ACK both survive (p^2 = 0.25), so goodput per hop = C/2 * 0.25.
	nw, err := topology.NewExplicit([][]float64{
		{0, 0.5, 0},
		{0.5, 0, 0.5},
		{0, 0.5, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(23)
	cfg.Duration = 400
	st, err := RunETX(nw, 0, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Capacity / 8
	if st.Throughput < 0.7*want || st.Throughput > 1.3*want {
		t.Fatalf("ETX chain throughput %v, want ~%v", st.Throughput, want)
	}
	if st.Policy != "etx" {
		t.Fatalf("policy = %q", st.Policy)
	}
}

func TestETXDiamondUsesSinglePath(t *testing.T) {
	st, err := RunETX(diamond(t), 0, 3, fastConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	if st.Throughput <= 0 {
		t.Fatal("ETX delivered nothing")
	}
	// Single-path: at most the path's nodes transmit (2 of 3 non-dst), and
	// only one of the two diamond paths carries traffic.
	if st.NodeUtility > 0.67+1e-9 {
		t.Fatalf("node utility %v too high for single-path routing", st.NodeUtility)
	}
	if st.PathUtility > 0.5+1e-9 {
		t.Fatalf("path utility %v too high for single-path routing", st.PathUtility)
	}
}

func TestETXMaxGenerationsStops(t *testing.T) {
	cfg := fastConfig(25)
	cfg.MaxGenerations = 1
	st, err := RunETX(diamond(t), 0, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.GenerationsDecoded < 1 {
		t.Fatalf("generations = %d", st.GenerationsDecoded)
	}
	if st.Duration >= cfg.Duration {
		t.Fatal("ETX session did not stop early")
	}
}

func TestETXRespectsCBR(t *testing.T) {
	cfg := fastConfig(26)
	cfg.CBRRate = 500
	cfg.Duration = 300
	st, err := RunETX(diamond(t), 0, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Throughput > cfg.CBRRate*1.05 {
		t.Fatalf("ETX throughput %v exceeds CBR %v", st.Throughput, cfg.CBRRate)
	}
}

// TestProtocolOrdering reproduces the paper's headline shape on one lossy
// session: network coding with rate control beats uncoded best-path
// routing. The diamond here has uniformly weak (p = 0.5) links — the lossy
// regime where "the benefits of OMNC are best demonstrated" (Sec. 5); on
// high-quality links the paper itself reports gains near or below 1.
func TestProtocolOrdering(t *testing.T) {
	nw, err := topology.NewExplicit([][]float64{
		{0, 0.5, 0.5, 0},
		{0.5, 0, 0, 0.5},
		{0.5, 0, 0, 0.5},
		{0, 0.5, 0.5, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(27)
	cfg.Duration = 400
	cfg.Coding.GenerationSize = 16 // amortize per-generation ramp-up
	cfg.AirPacketSize = 16 + 1024

	etx, err := RunETX(nw, 0, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	omnc, err := protocol.Run(nw, 0, 3, protocol.OMNC(core.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if omnc.Throughput <= etx.Throughput {
		t.Fatalf("OMNC (%v) must beat ETX (%v) on the lossy diamond",
			omnc.Throughput, etx.Throughput)
	}
}

func TestClampCredits(t *testing.T) {
	credit := []float64{0.5, math.Inf(1), 1e9}
	clampCredits(credit)
	if credit[0] != 0.5 {
		t.Fatal("small credit modified")
	}
	if credit[1] != maxCredit || credit[2] != maxCredit {
		t.Fatalf("credits not clamped: %v", credit)
	}
}

// TestPropertyMOREMassConservation: MORE's heuristic transmits each packet
// until some node closer to the destination hears it, so on connected
// subgraphs every unit of source load must eventually be charged to the
// destination: L_dst = 1.
func TestPropertyMOREMassConservation(t *testing.T) {
	nw, err := topology.Generate(topology.Config{Nodes: 100, Density: 6, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for dst := 1; dst < nw.Size() && checked < 8; dst++ {
		sg, err := core.SelectNodes(nw, 0, dst)
		if err != nil || sg.Size() < 4 {
			continue
		}
		plan, err := ComputeMOREPlan(sg)
		if err != nil {
			continue
		}
		// Recompute the load reaching the destination from the plan.
		loadDst := moreLoadAtDestination(sg, plan)
		if math.Abs(loadDst-1) > 1e-6 {
			t.Fatalf("dst %d: destination load = %v, want 1", dst, loadDst)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no usable sessions")
	}
}

// moreLoadAtDestination replays the charge rule to compute L_dst.
func moreLoadAtDestination(sg *core.Subgraph, plan *MOREPlan) float64 {
	type link = core.Link
	downstream := make([][]link, sg.Size())
	for i := 0; i < sg.Size(); i++ {
		for _, li := range sg.Out(i) {
			downstream[i] = append(downstream[i], sg.Links[li])
		}
		links := downstream[i]
		sort.Slice(links, func(a, b int) bool {
			return sg.ETXDist[links[a].To] < sg.ETXDist[links[b].To]
		})
	}
	load := 0.0
	for i := 0; i < sg.Size(); i++ {
		if i == sg.Dst {
			continue
		}
		closerMiss := 1.0
		for _, l := range downstream[i] {
			if l.To == sg.Dst {
				load += plan.Z[i] * l.Prob * closerMiss
			}
			closerMiss *= 1 - l.Prob
		}
	}
	return load
}
