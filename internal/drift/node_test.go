package drift

import (
	"net"
	"testing"

	"omnc/internal/coding"
)

// nodeUnderTest builds an emuNode in the given role without starting its
// loops: handle and completeGeneration only touch the emulator through
// nodeAddrs, which stays empty here, so the node can be driven directly.
func nodeUnderTest(t *testing.T, local int) *emuNode {
	t.Helper()
	_, sg := diamond(t)
	cfg := Config{Coding: coding.Params{GenerationSize: 4, BlockSize: 16}, Seed: 9}
	n, err := newEmuNode(local, sg, &emulator{sg: sg, nodeAddrs: make([]*net.UDPAddr, sg.Size())}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.conn.Close() })
	return n
}

func TestResetGenerationWiresRoles(t *testing.T) {
	_, sg := diamond(t)
	src := nodeUnderTest(t, sg.Src)
	if src.enc == nil || src.gen == nil || src.rec != nil || src.dec != nil {
		t.Fatalf("source wiring: enc=%v gen=%v rec=%v dec=%v", src.enc, src.gen, src.rec, src.dec)
	}
	dst := nodeUnderTest(t, sg.Dst)
	if dst.dec == nil || dst.enc != nil || dst.rec != nil {
		t.Fatalf("destination wiring: dec=%v enc=%v rec=%v", dst.dec, dst.enc, dst.rec)
	}
	if string(dst.expect) != string(generationData(dst.cfg, 0)) {
		t.Fatal("destination expects the wrong generation data")
	}
	var relayLocal int
	for i := 0; i < sg.Size(); i++ {
		if i != sg.Src && i != sg.Dst {
			relayLocal = i
			break
		}
	}
	relay := nodeUnderTest(t, relayLocal)
	if relay.rec == nil || relay.enc != nil || relay.dec != nil {
		t.Fatalf("relay wiring: rec=%v enc=%v dec=%v", relay.rec, relay.enc, relay.dec)
	}
}

func TestHandleAckAdvancesGeneration(t *testing.T) {
	_, sg := diamond(t)
	n := nodeUnderTest(t, sg.Src)
	oldEnc := n.enc
	n.handle(&coding.Message{Type: coding.MessageAck, Generation: 3})
	if n.currentGen != 3 {
		t.Fatalf("currentGen = %d after ACK for 3", n.currentGen)
	}
	if n.enc == oldEnc {
		t.Fatal("ACK did not rebuild the source encoder")
	}
	// A stale ACK (same or older generation) must be ignored.
	n.handle(&coding.Message{Type: coding.MessageAck, Generation: 2})
	if n.currentGen != 3 {
		t.Fatalf("stale ACK rewound the generation to %d", n.currentGen)
	}
}

func TestHandleDataFillsRelayAndIgnoresWrongGeneration(t *testing.T) {
	_, sg := diamond(t)
	var relayLocal int
	for i := 0; i < sg.Size(); i++ {
		if i != sg.Src && i != sg.Dst {
			relayLocal = i
			break
		}
	}
	relay := nodeUnderTest(t, relayLocal)
	src := nodeUnderTest(t, sg.Src)

	// A current-generation packet lands in the recoder.
	pkt := src.enc.Next()
	relay.handle(&coding.Message{Type: coding.MessageData, Generation: 0, Packet: pkt})
	if relay.nextPacket() == nil {
		t.Fatal("relay cannot re-encode after an innovative reception")
	}

	// A wrong-generation packet is dropped before touching the recoder.
	stale := src.enc.Next()
	stale.Generation = 7
	before := relay.rec
	relay.handle(&coding.Message{Type: coding.MessageData, Generation: 7, Packet: stale})
	if relay.rec != before {
		t.Fatal("wrong-generation packet rewired the recoder")
	}

	// The source ignores data packets entirely.
	src.handle(&coding.Message{Type: coding.MessageData, Generation: 0, Packet: relay.nextPacket()})
	if src.decoded != 0 || src.corrupted != 0 {
		t.Fatal("source counted a decode")
	}
}

func TestDestinationDecodesAndVerifies(t *testing.T) {
	_, sg := diamond(t)
	dst := nodeUnderTest(t, sg.Dst)
	src := nodeUnderTest(t, sg.Src)

	// Feed encoder output until the full rank decodes; completeGeneration
	// verifies the payload against the deterministic source data and moves
	// both counters and the generation forward.
	for i := 0; i < 32 && dst.decoded == 0; i++ {
		dst.handle(&coding.Message{Type: coding.MessageData, Generation: 0, Packet: src.enc.Next()})
	}
	if dst.decoded != 1 || dst.corrupted != 0 {
		t.Fatalf("decoded=%d corrupted=%d", dst.decoded, dst.corrupted)
	}
	if dst.currentGen != 1 {
		t.Fatalf("generation did not advance: %d", dst.currentGen)
	}
	if string(dst.expect) != string(generationData(dst.cfg, 1)) {
		t.Fatal("destination still expects generation 0 data")
	}
}
