// Package drift is a miniature of the paper's Drift emulation testbed
// (Sec. 5): protocol nodes run against *real* operating-system transport
// (UDP sockets on the loopback interface, the stand-in for Drift's Gigabit
// Ethernet), while the wireless PHY is a model — a channel-emulator process
// receives every "broadcast" datagram and forwards it to each in-range
// receiver's socket with an independent per-link loss draw.
//
// Where internal/sim runs virtual time for large parameter sweeps, this
// package runs wall-clock time over real sockets: it validates that the
// coding stack, the wire format of internal/coding, and the rate-paced
// forwarding discipline survive an actual network path. Scenarios are kept
// small (seconds of wall time) so the test suite stays fast.
package drift

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/topology"
)

// Config parameterizes one emulated session over real sockets.
type Config struct {
	// Coding are the RLC parameters; keep generations small (the session
	// runs in wall-clock time).
	Coding coding.Params
	// Scheme selects the coding strategy (full-recoding RLNC by default);
	// non-recoding schemes make relays forward innovative packets verbatim
	// over the real sockets.
	Scheme coding.Scheme
	// Redundancy caps the source at ceil(Redundancy * GenerationSize)
	// packets per generation; 0 is rateless.
	Redundancy float64
	// Rates[i] is the broadcast pacing rate of local node i in
	// bytes/second (from the rate controller; destination ignored).
	Rates []float64
	// Duration is the wall-clock run time.
	Duration time.Duration
	// Seed drives the channel's loss process.
	Seed int64
}

// Result summarizes a real-socket session.
type Result struct {
	// GenerationsDecoded counts fully decoded generations; the decoded
	// payloads were verified against the source data byte for byte.
	GenerationsDecoded int
	// DatagramsForwarded counts channel-emulator deliveries (post-loss).
	DatagramsForwarded int64
	// DatagramsDropped counts PHY loss draws that failed.
	DatagramsDropped int64
	// Corrupted counts decoded generations whose data failed verification
	// (always 0 unless something is broken).
	Corrupted int
}

// RunSession emulates one OMNC unicast session over loopback UDP: one
// goroutine per node with its own socket, a channel-emulator goroutine
// applying the PHY model of the supplied subgraph, rate-paced re-encoding
// forwarders, and a verified progressive decoder at the destination.
func RunSession(net_ *topology.Network, sg *core.Subgraph, cfg Config) (*Result, error) {
	if err := cfg.Coding.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Scheme.Valid() {
		return nil, fmt.Errorf("%w: %d", coding.ErrInvalidScheme, int(cfg.Scheme))
	}
	if err := coding.ValidateRedundancy(cfg.Redundancy); err != nil {
		return nil, err
	}
	if len(cfg.Rates) != sg.Size() {
		return nil, fmt.Errorf("drift: %d rates for %d nodes", len(cfg.Rates), sg.Size())
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}

	em, err := newEmulator(net_, sg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer em.close()

	nodes := make([]*emuNode, sg.Size())
	for i := range nodes {
		n, err := newEmuNode(i, sg, em, cfg)
		if err != nil {
			em.close()
			return nil, err
		}
		nodes[i] = n
	}
	em.nodeAddrs = make([]*net.UDPAddr, len(nodes))
	for i, n := range nodes {
		em.nodeAddrs[i] = n.addr()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		em.run(stop)
	}()
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.run(stop)
		}()
	}

	time.Sleep(cfg.Duration)
	close(stop)
	// Unblock reads.
	em.conn.SetReadDeadline(time.Now())
	for _, n := range nodes {
		n.conn.SetReadDeadline(time.Now())
	}
	wg.Wait()
	for _, n := range nodes {
		n.conn.Close()
	}

	dst := nodes[sg.Dst]
	res := &Result{
		GenerationsDecoded: dst.decoded,
		Corrupted:          dst.corrupted,
		DatagramsForwarded: em.forwarded,
		DatagramsDropped:   em.dropped,
	}
	return res, nil
}

// emulator is the channel process: every node broadcast arrives here and is
// forwarded per-link with loss.
type emulator struct {
	net       *topology.Network
	sg        *core.Subgraph
	conn      *net.UDPConn
	nodeAddrs []*net.UDPAddr

	mu        sync.Mutex
	rng       *rand.Rand
	forwarded int64
	dropped   int64
}

func newEmulator(net_ *topology.Network, sg *core.Subgraph, seed int64) (*emulator, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("drift: channel socket: %w", err)
	}
	return &emulator{
		net:  net_,
		sg:   sg,
		conn: conn,
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

func (em *emulator) close() { em.conn.Close() }

func (em *emulator) addr() *net.UDPAddr { return em.conn.LocalAddr().(*net.UDPAddr) }

// run forwards datagrams until stop closes. Datagram layout: one byte
// sender (local node index) followed by a coding wire message.
func (em *emulator) run(stop <-chan struct{}) {
	buf := make([]byte, 65536)
	for {
		select {
		case <-stop:
			return
		default:
		}
		em.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _, err := em.conn.ReadFromUDP(buf)
		if err != nil {
			continue // deadline or shutdown
		}
		if n < 1 {
			continue
		}
		sender := int(buf[0])
		if sender < 0 || sender >= em.sg.Size() {
			continue
		}
		payload := make([]byte, n-1)
		copy(payload, buf[1:n])
		senderNet := em.sg.Nodes[sender]
		for _, j := range em.sg.Neighbors(sender) {
			p := em.net.Prob(senderNet, em.sg.Nodes[j])
			em.mu.Lock()
			hit := em.rng.Float64() < p
			em.mu.Unlock()
			if !hit {
				em.mu.Lock()
				em.dropped++
				em.mu.Unlock()
				continue
			}
			if _, err := em.conn.WriteToUDP(payload, em.nodeAddrs[j]); err == nil {
				em.mu.Lock()
				em.forwarded++
				em.mu.Unlock()
			}
		}
	}
}

// counters returns the forwarding statistics safely.
func (em *emulator) counters() (forwarded, dropped int64) {
	em.mu.Lock()
	defer em.mu.Unlock()
	return em.forwarded, em.dropped
}
