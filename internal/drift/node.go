package drift

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"omnc/internal/coding"
	"omnc/internal/core"
)

// emuNode is one protocol node with a real UDP socket: the source encodes
// and paces fresh packets; relays re-encode innovative receptions and pace
// their own stream; the destination progressively decodes and ACKs new
// generations over the loopback control path (a second datagram type).
type emuNode struct {
	local int
	sg    *core.Subgraph
	em    *emulator
	cfg   Config
	conn  *net.UDPConn
	rng   *rand.Rand

	mu         sync.Mutex
	currentGen int
	gen        *coding.Generation
	enc        coding.Source
	rec        coding.Relay
	dec        *coding.Decoder
	expect     []byte // destination: the source data to verify against

	decoded   int
	corrupted int
}

// The session carries its verification data out of band: the source
// derives each generation's payload deterministically from the shared seed
// so the destination can check integrity without a side channel.
func generationData(cfg Config, gen int) []byte {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(gen)*0x9E3779B9))
	data := make([]byte, cfg.Coding.GenerationSize*cfg.Coding.BlockSize)
	rng.Read(data)
	return data
}

func newEmuNode(local int, sg *core.Subgraph, em *emulator, cfg Config) (*emuNode, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("drift: node %d socket: %w", local, err)
	}
	n := &emuNode{
		local: local,
		sg:    sg,
		em:    em,
		cfg:   cfg,
		conn:  conn,
		rng:   rand.New(rand.NewSource(cfg.Seed + int64(local)*131)),
	}
	if err := n.resetGeneration(0); err != nil {
		conn.Close()
		return nil, err
	}
	return n, nil
}

func (n *emuNode) addr() *net.UDPAddr { return n.conn.LocalAddr().(*net.UDPAddr) }

func (n *emuNode) isSrc() bool { return n.local == n.sg.Src }
func (n *emuNode) isDst() bool { return n.local == n.sg.Dst }

func (n *emuNode) resetGeneration(gen int) error {
	n.currentGen = gen
	switch {
	case n.isSrc():
		g, err := coding.NewGeneration(gen, n.cfg.Coding, generationData(n.cfg, gen))
		if err != nil {
			return err
		}
		n.gen = g
		enc, err := coding.NewSource(n.cfg.Scheme, g, n.rng, n.cfg.Redundancy)
		if err != nil {
			return err
		}
		n.enc = enc
	case n.isDst():
		dec, err := coding.NewDecoder(gen, n.cfg.Coding)
		if err != nil {
			return err
		}
		n.dec = dec
		n.expect = generationData(n.cfg, gen)
	default:
		if n.rec != nil {
			n.rec.Close() // the expired generation's slabs and queue return to the arena
		}
		rec, err := coding.NewRelay(n.cfg.Scheme, gen, n.cfg.Coding, n.rng)
		if err != nil {
			return err
		}
		n.rec = rec
	}
	return nil
}

// run services the node until stop closes: a pacing loop transmits at the
// allocated rate; the socket loop absorbs receptions.
func (n *emuNode) run(stop <-chan struct{}) {
	var wg sync.WaitGroup
	if !n.isDst() && n.cfg.Rates[n.local] > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.paceLoop(stop)
		}()
	}
	n.receiveLoop(stop)
	wg.Wait()
}

// paceLoop broadcasts one coded packet every packetSize/rate seconds — the
// OMNC discipline: encode/re-encode on demand, transmit at the allotted
// rate.
func (n *emuNode) paceLoop(stop <-chan struct{}) {
	wireBytes := coding.WireSize(n.cfg.Coding)
	interval := time.Duration(float64(wireBytes) / n.cfg.Rates[n.local] * float64(time.Second))
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	buf := make([]byte, 1, 1+wireBytes)
	buf[0] = byte(n.local)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		pkt := n.nextPacket()
		if pkt == nil {
			continue
		}
		wire, err := coding.MarshalData(0, pkt)
		pkt.Release() // marshalled onto the wire; the pooled reference is done
		if err != nil {
			continue
		}
		buf = append(buf[:1], wire...)
		n.conn.WriteToUDP(buf, n.em.addr())
	}
}

func (n *emuNode) nextPacket() *coding.Packet {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isSrc() {
		return n.enc.Next()
	}
	if n.rec == nil {
		return nil
	}
	return n.rec.Next()
}

// receiveLoop absorbs datagrams from the channel emulator.
func (n *emuNode) receiveLoop(stop <-chan struct{}) {
	buf := make([]byte, 65536)
	for {
		select {
		case <-stop:
			return
		default:
		}
		n.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			continue
		}
		msg, err := coding.Unmarshal(buf[:sz])
		if err != nil {
			continue
		}
		n.handle(msg)
	}
}

func (n *emuNode) handle(msg *coding.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch msg.Type {
	case coding.MessageAck:
		// Generation turnover: everyone flushes and moves on.
		if int(msg.Generation) > n.currentGen {
			n.resetGeneration(int(msg.Generation))
		}
	case coding.MessageData:
		if msg.Packet.Generation != n.currentGen {
			return
		}
		pkt := msg.Packet.Clone() // the read buffer is reused
		switch {
		case n.isSrc():
			// The source ignores data packets.
		case n.isDst():
			if innovative, err := n.dec.Add(pkt); err == nil && innovative && n.dec.Decoded() {
				n.completeGeneration()
			}
		default:
			if n.rec != nil && !n.rec.Full() {
				n.rec.Add(pkt)
			}
		}
	}
}

// completeGeneration verifies the decode and broadcasts the ACK (via the
// channel emulator's control path: sent reliably to every node's socket
// directly, modelling the paper's best-path uncoded ACK).
func (n *emuNode) completeGeneration() {
	if string(n.dec.Data()) == string(n.expect) {
		n.decoded++
	} else {
		n.corrupted++
	}
	next := n.currentGen + 1
	n.resetGeneration(next)
	ack := coding.MarshalAck(0, uint32(next))
	for i, addr := range n.em.nodeAddrs {
		if i == n.local || addr == nil {
			continue
		}
		n.conn.WriteToUDP(ack, addr)
	}
}
