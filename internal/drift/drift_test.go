package drift

import (
	"testing"
	"time"

	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/topology"
)

func diamond(t *testing.T) (*topology.Network, *core.Subgraph) {
	t.Helper()
	nw, err := topology.NewExplicit([][]float64{
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := core.SelectNodes(nw, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	return nw, sg
}

func TestRunSessionOverRealSockets(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	nw, sg := diamond(t)
	// Small generations and generous pacing so several generations decode
	// within a second of wall time.
	rates := make([]float64, sg.Size())
	for i := range rates {
		rates[i] = 200_000 // bytes/s over loopback
	}
	rates[sg.Dst] = 0
	res, err := RunSession(nw, sg, Config{
		Coding:   coding.Params{GenerationSize: 8, BlockSize: 64},
		Rates:    rates,
		Duration: 1200 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GenerationsDecoded == 0 {
		t.Fatalf("nothing decoded over real sockets: %+v", res)
	}
	if res.Corrupted != 0 {
		t.Fatalf("%d corrupted generations", res.Corrupted)
	}
	if res.DatagramsForwarded == 0 {
		t.Fatal("channel emulator forwarded nothing")
	}
	// The diamond's links average ~0.75, so the loss process must have
	// dropped a noticeable share of datagrams.
	total := res.DatagramsForwarded + res.DatagramsDropped
	lossRate := float64(res.DatagramsDropped) / float64(total)
	if lossRate < 0.05 || lossRate > 0.6 {
		t.Fatalf("loss rate %.2f implausible for the diamond", lossRate)
	}
}

func TestRunSessionValidation(t *testing.T) {
	nw, sg := diamond(t)
	if _, err := RunSession(nw, sg, Config{
		Coding: coding.Params{GenerationSize: 0, BlockSize: 1},
		Rates:  make([]float64, sg.Size()),
	}); err == nil {
		t.Fatal("invalid coding params must fail")
	}
	if _, err := RunSession(nw, sg, Config{
		Coding: coding.Params{GenerationSize: 4, BlockSize: 16},
		Rates:  []float64{1},
	}); err == nil {
		t.Fatal("mis-sized rates must fail")
	}
}

func TestGenerationDataDeterministic(t *testing.T) {
	cfg := Config{Coding: coding.Params{GenerationSize: 4, BlockSize: 16}, Seed: 9}
	a := generationData(cfg, 3)
	b := generationData(cfg, 3)
	if string(a) != string(b) {
		t.Fatal("generation data must be deterministic")
	}
	c := generationData(cfg, 4)
	if string(a) == string(c) {
		t.Fatal("different generations must differ")
	}
	if len(a) != 64 {
		t.Fatalf("data length = %d", len(a))
	}
}
