package seedmix

import (
	"math/bits"
	"math/rand"
	"testing"
)

func TestMix64Bijective(t *testing.T) {
	// A sample of inputs must not collide; the mixer is a bijection, so any
	// collision is an implementation bug.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		out := Mix64(i)
		if prev, ok := seen[out]; ok {
			t.Fatalf("Mix64 collision: %d and %d both map to %#x", prev, i, out)
		}
		seen[out] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		x := rng.Uint64()
		for bit := 0; bit < 64; bit++ {
			d := Mix64(x) ^ Mix64(x^(1<<bit))
			if n := bits.OnesCount64(d); n < 10 || n > 54 {
				t.Fatalf("weak avalanche: input %#x bit %d flips only %d output bits", x, bit, n)
			}
		}
	}
}

func TestDeriveDistinctStreams(t *testing.T) {
	seen := make(map[int64]int64)
	for i := int64(0); i < 4096; i++ {
		s := Derive(42, i)
		if prev, ok := seen[s]; ok {
			t.Fatalf("streams %d and %d collide on seed %d", prev, i, s)
		}
		seen[s] = i
	}
}

func TestDeriveOrderMatters(t *testing.T) {
	if Derive(1, 2, 3) == Derive(1, 3, 2) {
		t.Fatal("stream order must matter")
	}
	if Derive(1, 2) == Derive(2, 1) {
		t.Fatal("seed and stream are not interchangeable")
	}
	if Derive(7) == Derive(7, 0) {
		t.Fatal("adding a level must change the derivation")
	}
}

func TestDeriveDeterministic(t *testing.T) {
	// Frozen vectors: the derivation is part of the reproducibility contract
	// (experiment seeds recorded in papers and CI must replay forever).
	vectors := []struct {
		seed    int64
		streams []int64
		want    int64
	}{
		{0, nil, int64(Mix64(0))},
		{1, []int64{0}, int64(Mix64(Mix64(1)))},
	}
	for _, v := range vectors {
		if got := Derive(v.seed, v.streams...); got != v.want {
			t.Fatalf("Derive(%d, %v) = %d, want %d", v.seed, v.streams, got, v.want)
		}
	}
	// Stability across calls.
	for i := 0; i < 3; i++ {
		if Derive(99, 1, 2, 3) != Derive(99, 1, 2, 3) {
			t.Fatal("derivation must be pure")
		}
	}
}

// TestDerivedFirstDrawsDistinct is the decorrelation property the experiment
// harness relies on: RNGs seeded from adjacent trial indices must not open
// with the same draw (the failure mode of additive seed offsets).
func TestDerivedFirstDrawsDistinct(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		firsts := make(map[int64]int64)
		for i := int64(0); i < 1024; i++ {
			first := rand.New(rand.NewSource(Derive(seed, i))).Int63()
			if prev, ok := firsts[first]; ok {
				t.Fatalf("seed %d: trials %d and %d share first draw %d", seed, prev, i, first)
			}
			firsts[first] = i
		}
	}
}
