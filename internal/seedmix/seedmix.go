// Package seedmix derives decorrelated pseudo-random seeds for independent
// simulation streams.
//
// The experiment harness runs many trials from one user-supplied seed, and
// every trial needs its own RNG stream. Additive derivations such as
// seed + 7919*i hand nearby trials nearby source states, and math/rand's
// lagged-Fibonacci seeding does not scramble nearby states apart — trial
// streams end up visibly correlated, which biases Monte-Carlo aggregates.
// seedmix instead finalizes every (seed, stream...) tuple through the
// SplitMix64 mixer (Steele, Lea & Flood, "Fast Splittable Pseudorandom
// Number Generators", OOPSLA 2014), whose full-avalanche output decorrelates
// even adjacent inputs.
//
// Derivation is pure arithmetic: the same (seed, streams...) tuple yields
// the same derived seed on every platform and in every process, which is
// what lets the parallel experiment runner promise bit-identical results
// regardless of worker count.
package seedmix

// Mix64 is the SplitMix64 finalizer: a bijective full-avalanche mix of a
// 64-bit word. Flipping any input bit flips each output bit with
// probability ~1/2.
func Mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive folds a base seed and a sequence of stream indices into one
// decorrelated seed. Each level is mixed before the next index is added, so
// Derive(s, a, b) and Derive(s, b, a) differ, as do Derive(s, a) and
// Derive(s, a+1) — hierarchies like (experiment, jitter level, trial) get
// independent streams from a single user-facing seed.
func Derive(seed int64, streams ...int64) int64 {
	z := Mix64(uint64(seed))
	for _, s := range streams {
		z = Mix64(z + uint64(s))
	}
	return int64(z)
}
