// Package trace records protocol-level session events — transmissions,
// receptions, innovation decisions, generation turnover — for debugging and
// analysis. The runtime emits events into a Recorder; the package provides
// an in-memory buffer with query helpers and a JSONL writer for offline
// inspection.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventType classifies session events.
type EventType string

// Event types emitted by the protocol runtime.
const (
	// EventTx: a node handed a coded packet to the MAC.
	EventTx EventType = "tx"
	// EventRx: a node received a packet that passed the downstream filter.
	EventRx EventType = "rx"
	// EventInnovative: the received packet increased the node's rank.
	EventInnovative EventType = "innovative"
	// EventDiscard: the received packet was non-innovative or stale.
	EventDiscard EventType = "discard"
	// EventDecode: the destination completed a generation.
	EventDecode EventType = "decode"
	// EventGeneration: the session advanced to a new generation.
	EventGeneration EventType = "generation"
)

// Event types emitted by the fault injector (internal/faults) and the
// protocols' mid-session re-optimization. For these, Node carries the
// network node ID (or a link's From endpoint), From the link's To endpoint
// (-1 for node events), and Generation the injector's topology epoch.
const (
	// EventNodeCrash: a node crashed; its ports detached from the MAC.
	EventNodeCrash EventType = "crash"
	// EventNodeRecover: a crashed node came back with empty state.
	EventNodeRecover EventType = "recover"
	// EventLinkDown / EventLinkUp: a link-flap episode started / ended.
	EventLinkDown EventType = "linkdown"
	EventLinkUp   EventType = "linkup"
	// EventBurstStart / EventBurstEnd: a Gilbert–Elliott bursty-loss
	// episode opened / closed on a link.
	EventBurstStart EventType = "burststart"
	EventBurstEnd   EventType = "burstend"
	// EventReplan: a session re-optimized (rates, credits, or route) in
	// response to a topology epoch.
	EventReplan EventType = "replan"
)

// Event is one protocol occurrence.
type Event struct {
	// Time is the simulation time in seconds.
	Time float64 `json:"t"`
	// Type classifies the event.
	Type EventType `json:"type"`
	// Node is the local node index the event happened at.
	Node int `json:"node"`
	// From is the transmitting node for rx-side events, -1 otherwise.
	From int `json:"from"`
	// Generation is the generation the event concerns.
	Generation int `json:"gen"`
}

// Recorder consumes events. Implementations must tolerate high event rates.
type Recorder interface {
	Record(Event)
}

// Buffer is an in-memory Recorder with query helpers. Safe for concurrent
// use.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Record implements Recorder.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns a copy of all events in record order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Count returns how many events of the given type were recorded.
func (b *Buffer) Count(t EventType) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

// ByNode returns the events that happened at the given local node.
func (b *Buffer) ByNode(node int) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, e := range b.events {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// Between returns events with t0 <= Time < t1.
func (b *Buffer) Between(t0, t1 float64) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, e := range b.events {
		if e.Time >= t0 && e.Time < t1 {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL streams the buffer as one JSON object per line.
func (b *Buffer) WriteJSONL(w io.Writer) error {
	for _, e := range b.Events() {
		line, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// JSONLWriter is a streaming Recorder that writes each event immediately.
// Write errors are counted, not returned (Record has no error path); check
// Errors after the run.
type JSONLWriter struct {
	mu   sync.Mutex
	w    io.Writer
	errs int
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return &JSONLWriter{w: w} }

// Record implements Recorder.
func (jw *JSONLWriter) Record(e Event) {
	line, err := json.Marshal(e)
	if err != nil {
		jw.mu.Lock()
		jw.errs++
		jw.mu.Unlock()
		return
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if _, err := jw.w.Write(append(line, '\n')); err != nil {
		jw.errs++
	}
}

// Errors returns the number of events lost to marshal or write failures.
func (jw *JSONLWriter) Errors() int {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.errs
}
