package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func sample(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		t := EventTx
		if i%2 == 1 {
			t = EventRx
		}
		out[i] = Event{Time: float64(i), Type: t, Node: i % 3, From: -1, Generation: i / 4}
	}
	return out
}

func TestBufferRecordAndQuery(t *testing.T) {
	b := NewBuffer()
	for _, e := range sample(12) {
		b.Record(e)
	}
	if b.Len() != 12 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.Count(EventTx); got != 6 {
		t.Fatalf("Count(tx) = %d", got)
	}
	if got := b.Count(EventDecode); got != 0 {
		t.Fatalf("Count(decode) = %d", got)
	}
	byNode := b.ByNode(1)
	for _, e := range byNode {
		if e.Node != 1 {
			t.Fatalf("ByNode returned node %d", e.Node)
		}
	}
	if len(byNode) != 4 {
		t.Fatalf("ByNode(1) = %d events", len(byNode))
	}
	between := b.Between(3, 7)
	if len(between) != 4 {
		t.Fatalf("Between(3,7) = %d events", len(between))
	}
	for _, e := range between {
		if e.Time < 3 || e.Time >= 7 {
			t.Fatalf("Between returned t=%v", e.Time)
		}
	}
}

func TestBufferEventsIsACopy(t *testing.T) {
	b := NewBuffer()
	b.Record(Event{Type: EventTx})
	evs := b.Events()
	evs[0].Type = EventDecode
	if b.Events()[0].Type != EventTx {
		t.Fatal("Events must return a copy")
	}
}

func TestBufferConcurrentRecord(t *testing.T) {
	b := NewBuffer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Record(Event{Type: EventRx})
			}
		}()
	}
	wg.Wait()
	if b.Len() != 800 {
		t.Fatalf("Len = %d, want 800", b.Len())
	}
}

func TestWriteJSONL(t *testing.T) {
	b := NewBuffer()
	b.Record(Event{Time: 1.5, Type: EventInnovative, Node: 2, From: 0, Generation: 3})
	var buf bytes.Buffer
	if err := b.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var e Event
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatal(err)
	}
	if e.Type != EventInnovative || e.Node != 2 || e.Generation != 3 {
		t.Fatalf("round trip = %+v", e)
	}
}

func TestJSONLWriterStreams(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Record(Event{Type: EventTx})
	w.Record(Event{Type: EventRx})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if w.Errors() != 0 {
		t.Fatalf("errors = %d", w.Errors())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, bytes.ErrTooLarge }

func TestJSONLWriterCountsErrors(t *testing.T) {
	w := NewJSONLWriter(failWriter{})
	w.Record(Event{Type: EventTx})
	if w.Errors() != 1 {
		t.Fatalf("errors = %d", w.Errors())
	}
	// Every failed write counts; the writer never gives up after the first.
	for i := 0; i < 9; i++ {
		w.Record(Event{Type: EventRx})
	}
	if w.Errors() != 10 {
		t.Fatalf("errors = %d, want 10", w.Errors())
	}
}

// TestJSONLWriterIntermittentErrors: a destination that fails every other
// write loses exactly the failed events — the surviving lines stay complete
// and the error count matches the losses.
func TestJSONLWriterIntermittentErrors(t *testing.T) {
	var buf bytes.Buffer
	calls := 0
	w := NewJSONLWriter(writerFunc(func(p []byte) (int, error) {
		calls++
		if calls%2 == 0 {
			return 0, bytes.ErrTooLarge
		}
		return buf.Write(p)
	}))
	const total = 10
	for i := 0; i < total; i++ {
		w.Record(Event{Type: EventTx, Generation: i})
	}
	if w.Errors() != total/2 {
		t.Fatalf("errors = %d, want %d", w.Errors(), total/2)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != total/2 {
		t.Fatalf("%d lines survived, want %d", len(lines), total/2)
	}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("surviving line %q is torn: %v", line, err)
		}
	}
}

// TestJSONLWriterConcurrentErrors: the error counter must stay exact under
// concurrent Record calls against a failing destination (run with -race).
func TestJSONLWriterConcurrentErrors(t *testing.T) {
	const goroutines, events = 8, 50
	w := NewJSONLWriter(failWriter{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				w.Record(Event{Type: EventRx})
			}
		}()
	}
	wg.Wait()
	if w.Errors() != goroutines*events {
		t.Fatalf("errors = %d, want %d", w.Errors(), goroutines*events)
	}
}

// TestBufferConcurrentOrderPreserved: interleaving across concurrent
// recorders is arbitrary, but each recorder's own emission order must
// survive into the buffer — the property the fault injector and the
// per-session runtimes rely on when several components share one Recorder.
func TestBufferConcurrentOrderPreserved(t *testing.T) {
	const goroutines, events = 8, 200
	b := NewBuffer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				b.Record(Event{Type: EventTx, Node: g, Generation: i})
			}
		}()
	}
	wg.Wait()
	if b.Len() != goroutines*events {
		t.Fatalf("Len = %d, want %d", b.Len(), goroutines*events)
	}
	next := make([]int, goroutines)
	for _, e := range b.Events() {
		if e.Generation != next[e.Node] {
			t.Fatalf("recorder %d emitted %d but buffer holds %d next",
				e.Node, next[e.Node], e.Generation)
		}
		next[e.Node]++
	}
	for g, n := range next {
		if n != events {
			t.Fatalf("recorder %d: %d of %d events survived", g, n, events)
		}
	}
}

// TestJSONLWriterConcurrentLines: concurrent Record calls may interleave
// lines in any order, but every line must be a complete, parseable event —
// no torn writes.
func TestJSONLWriterConcurrentLines(t *testing.T) {
	const goroutines, events = 4, 100
	var buf bytes.Buffer
	var mu sync.Mutex
	w := NewJSONLWriter(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				w.Record(Event{Type: EventRx, Node: g, Generation: i})
			}
		}()
	}
	wg.Wait()
	if w.Errors() != 0 {
		t.Fatalf("%d write errors", w.Errors())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != goroutines*events {
		t.Fatalf("%d lines, want %d", len(lines), goroutines*events)
	}
	next := make([]int, goroutines)
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
		if e.Generation != next[e.Node] {
			t.Fatalf("recorder %d: line order broken at %d", e.Node, e.Generation)
		}
		next[e.Node]++
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
