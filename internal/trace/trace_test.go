package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func sample(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		t := EventTx
		if i%2 == 1 {
			t = EventRx
		}
		out[i] = Event{Time: float64(i), Type: t, Node: i % 3, From: -1, Generation: i / 4}
	}
	return out
}

func TestBufferRecordAndQuery(t *testing.T) {
	b := NewBuffer()
	for _, e := range sample(12) {
		b.Record(e)
	}
	if b.Len() != 12 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.Count(EventTx); got != 6 {
		t.Fatalf("Count(tx) = %d", got)
	}
	if got := b.Count(EventDecode); got != 0 {
		t.Fatalf("Count(decode) = %d", got)
	}
	byNode := b.ByNode(1)
	for _, e := range byNode {
		if e.Node != 1 {
			t.Fatalf("ByNode returned node %d", e.Node)
		}
	}
	if len(byNode) != 4 {
		t.Fatalf("ByNode(1) = %d events", len(byNode))
	}
	between := b.Between(3, 7)
	if len(between) != 4 {
		t.Fatalf("Between(3,7) = %d events", len(between))
	}
	for _, e := range between {
		if e.Time < 3 || e.Time >= 7 {
			t.Fatalf("Between returned t=%v", e.Time)
		}
	}
}

func TestBufferEventsIsACopy(t *testing.T) {
	b := NewBuffer()
	b.Record(Event{Type: EventTx})
	evs := b.Events()
	evs[0].Type = EventDecode
	if b.Events()[0].Type != EventTx {
		t.Fatal("Events must return a copy")
	}
}

func TestBufferConcurrentRecord(t *testing.T) {
	b := NewBuffer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Record(Event{Type: EventRx})
			}
		}()
	}
	wg.Wait()
	if b.Len() != 800 {
		t.Fatalf("Len = %d, want 800", b.Len())
	}
}

func TestWriteJSONL(t *testing.T) {
	b := NewBuffer()
	b.Record(Event{Time: 1.5, Type: EventInnovative, Node: 2, From: 0, Generation: 3})
	var buf bytes.Buffer
	if err := b.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var e Event
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatal(err)
	}
	if e.Type != EventInnovative || e.Node != 2 || e.Generation != 3 {
		t.Fatalf("round trip = %+v", e)
	}
}

func TestJSONLWriterStreams(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Record(Event{Type: EventTx})
	w.Record(Event{Type: EventRx})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if w.Errors() != 0 {
		t.Fatalf("errors = %d", w.Errors())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, bytes.ErrTooLarge }

func TestJSONLWriterCountsErrors(t *testing.T) {
	w := NewJSONLWriter(failWriter{})
	w.Record(Event{Type: EventTx})
	if w.Errors() != 1 {
		t.Fatalf("errors = %d", w.Errors())
	}
}
