// Command omnc-bench records the repo's session benchmark trajectory as a
// machine-readable JSON report (BENCH_<n>.json at the repo root). It runs
// the exact scenarios behind `go test -bench='^Benchmark(Multi)?Session'`
// (see internal/sessionbench) — single sessions per protocol plus the
// two-session multi-unicast workloads — and emits ns/op, allocs/op and B/op
// next to the recorded baseline, so the allocation win of the pooled hot
// path and the cost of the shared-engine multi path stay auditable numbers
// instead of claims.
//
// Usage:
//
//	omnc-bench [-iters N] [-out BENCH_6.json]   record a fresh report
//	omnc-bench -check BENCH_6.json              validate a committed report
//	omnc-bench -engine-workers N                spot-measure the scaled
//	                                            workload at N workers
//	omnc-bench -scheme rs [-redundancy R]       spot-measure one coding
//	                                            scheme session
//	omnc-bench -field 16                        spot-measure one coefficient
//	                                            field session
//
// The measurement machinery and the regression gates -check re-asserts live
// in internal/benchreport; this command is the flag surface over them. Full
// recordings run through internal/jobs (kind "bench"), the same dispatcher
// omnc-serve uses, so a daemon-recorded report and a CLI-recorded one are
// the same code path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"omnc/internal/benchreport"
	"omnc/internal/cliflags"
	"omnc/internal/coding"
	"omnc/internal/jobs"
	"omnc/internal/sessionbench"
)

func main() {
	iters := flag.Int("iters", 5, "measured session runs per benchmark (after one warmup)")
	out := flag.String("out", "BENCH_6.json", "output path, or - for stdout")
	check := flag.String("check", "", "validate an existing report instead of benchmarking")
	engWork := flag.Int("engine-workers", -1, "spot-measure the scaled multi-session workload at this engine worker count (0 = serial) instead of recording a report")
	cod := cliflags.RegisterCoding(flag.CommandLine,
		"with -redundancy, the coding scheme to spot-measure; non-default values skip report recording",
		"source emission cap for the -scheme spot measurement (0 = rateless)")
	app := cliflags.New("omnc-bench", flag.CommandLine)
	app.Main(func(ctx context.Context) error {
		return run(ctx, *iters, *out, *check, *engWork, cod.Scheme, cod.Redundancy, cod.Field)
	})
}

func run(ctx context.Context, iters int, out, check string, engWork int, schemeName string, redundancy float64, fieldName string) error {
	if check != "" {
		if err := benchreport.CheckFile(check); err != nil {
			return fmt.Errorf("%s: %w", check, err)
		}
		fmt.Printf("%s: schema %s ok, gates held\n", check, benchreport.SchemaVersion)
		return nil
	}

	if schemeName != "rlnc" || redundancy != 0 {
		schemeVal, err := coding.ParseScheme(schemeName)
		if err == nil {
			err = coding.ValidateRedundancy(redundancy)
		}
		if err != nil {
			return err
		}
		s := sessionbench.SchemeScenario{
			Name:       fmt.Sprintf("SessionScheme/%s", schemeVal),
			Scheme:     schemeVal,
			Redundancy: redundancy,
		}
		r, err := benchreport.MeasureScheme(s, iters)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		fmt.Printf("%s (redundancy %g): %d ns/op %d allocs/op %d B/op %.0f bytes/s\n",
			r.Name, redundancy, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Throughput)
		return nil
	}

	if fieldName != "" && fieldName != "8" {
		fieldVal, err := coding.ParseField(fieldName)
		if err != nil {
			return err
		}
		s := sessionbench.FieldScenario{
			Name:  fmt.Sprintf("SessionField/%s", fieldVal),
			Field: fieldVal,
		}
		r, err := benchreport.MeasureField(s, iters)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		fmt.Printf("%s: %d ns/op %d allocs/op %d B/op %.0f bytes/s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Throughput)
		return nil
	}

	if engWork >= 0 {
		s := sessionbench.ScaledMultiScenario{
			Name:          fmt.Sprintf("MultiSessionScaled/workers=%d", engWork),
			EngineWorkers: engWork,
		}
		if engWork == 0 {
			s.Name = "MultiSessionScaled/serial"
		}
		r, err := benchreport.MeasureScaled(s, iters)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		fmt.Printf("%s: %d ns/op %d allocs/op %d B/op %.0f bytes/s (cpus=%d)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Throughput, runtime.NumCPU())
		return nil
	}

	res, err := jobs.Run(ctx, jobs.Spec{Version: jobs.SpecVersion, Kind: jobs.KindBench, Iters: iters})
	if err != nil {
		return err
	}
	art := res.Artifact("bench.json")
	if art == nil {
		return fmt.Errorf("bench run produced no report artifact")
	}
	if out == "-" {
		os.Stdout.Write(art.Data)
		return nil
	}
	if err := os.WriteFile(out, art.Data, 0o644); err != nil {
		return err
	}
	for _, r := range res.Bench.Benchmarks {
		fmt.Printf("%-12s %12d ns/op %8d allocs/op %10d B/op  (baseline %d allocs/op)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Baseline.AllocsPerOp)
	}
	return nil
}
