// Command omnc-bench records the repo's session benchmark trajectory as a
// machine-readable JSON report (BENCH_<n>.json at the repo root). It runs
// the exact scenarios behind `go test -bench='^Benchmark(Multi)?Session'`
// (see internal/sessionbench) — single sessions per protocol plus the
// two-session multi-unicast workloads — and emits ns/op, allocs/op and B/op
// next to the recorded baseline, so the allocation win of the pooled hot
// path and the cost of the shared-engine multi path stay auditable numbers
// instead of claims.
//
// Usage:
//
//	omnc-bench [-iters N] [-out BENCH_5.json]   record a fresh report
//	omnc-bench -check BENCH_5.json              validate a committed report
//	omnc-bench -engine-workers N                spot-measure the scaled
//	                                            workload at N workers
//	omnc-bench -scheme rs [-redundancy R]       spot-measure one coding
//	                                            scheme session
//
// -check verifies the schema and re-asserts the regression gates: the OMNC
// session must show at least 50% fewer allocs/op than the pre-pooling
// baseline, and multi-session workloads (when present in the report, as in
// BENCH_3.json and later) must stay within 25% of their recorded allocs/op.
// Coding-scheme sessions (BENCH_5.json and later) must keep the end-to-end
// RLNC and Reed-Solomon strategies within 2x of the default full-recoding
// session's allocs/op — the proof that the strategy layer rides the same
// pooled arena instead of allocating per packet.
// Reports that carry the parallel-engine scaling ladder (BENCH_4.json and
// later) must additionally show identical emulated throughput across every
// worker count — the engines are required to be bit-identical, so any drift
// is a determinism bug, not noise — and, when the recording machine had at
// least four CPUs, at least a 2x ns/op speedup at four workers over the
// serial engine. Reports recorded on fewer CPUs (where no wall-clock
// speedup is physically available) still gate on determinism. Reports that
// predate the multi scenarios (BENCH_2.json) still validate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"omnc/internal/coding"
	"omnc/internal/profiling"
	"omnc/internal/sessionbench"
)

// schemaVersion identifies the report layout. Bump only when a field
// changes meaning; adding fields is backward compatible.
const schemaVersion = "omnc-bench/v1"

// Report is the top-level BENCH_<n>.json document.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	// CPUs is runtime.NumCPU() on the recording machine. The parallel-engine
	// speedup gate only binds when this is >= 4; the determinism gate binds
	// regardless. Absent (0) in reports recorded before BENCH_4.json.
	CPUs       int      `json:"cpus,omitempty"`
	Iterations int      `json:"iterations"`
	Benchmarks []Result `json:"benchmarks"`
}

// Result is one session benchmark with its recorded baseline.
type Result struct {
	Name        string   `json:"name"`
	NsPerOp     int64    `json:"ns_per_op"`
	AllocsPerOp int64    `json:"allocs_per_op"`
	BytesPerOp  int64    `json:"bytes_per_op"`
	Throughput  float64  `json:"throughput_bytes_per_s"`
	Baseline    Baseline `json:"baseline"`
}

// Baseline is a frozen earlier measurement of the same scenario.
type Baseline struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// baselines freezes the pre-pooling numbers (go test -bench Session
// -benchtime=5x on the commit before the arena landed). They stay valid as
// long as internal/sessionbench's scenario is unchanged.
var baselines = map[string]Baseline{
	"SessionOMNC": {NsPerOp: 22093928, AllocsPerOp: 72996, BytesPerOp: 3804190},
	"SessionMORE": {NsPerOp: 9651859, AllocsPerOp: 30166, BytesPerOp: 1692928},
	"SessionETX":  {NsPerOp: 980601, AllocsPerOp: 14319, BytesPerOp: 626320},
}

// multiBaselines freezes the first recorded measurements of the
// multi-unicast scenarios (two contending sessions on one shared engine,
// BENCH_3.json). Unlike the single-session baselines they are not
// pre-optimization numbers — the multi path was born on the pooled hot path
// — so -check holds reports near them instead of far below them.
var multiBaselines = map[string]Baseline{
	"MultiSessionOMNC": {NsPerOp: 21043627, AllocsPerOp: 34732, BytesPerOp: 1378872},
	"MultiSessionETX":  {NsPerOp: 1933779, AllocsPerOp: 2713, BytesPerOp: 123209},
}

// allocGate is the acceptance threshold -check re-asserts: current
// allocs/op must be at most this fraction of baseline on the OMNC session.
const allocGate = 0.5

// multiAllocGate bounds multi-session drift: allocs/op may exceed the
// recorded baseline by at most this factor.
const multiAllocGate = 1.25

// speedupGate is the minimum serial-ns/op over four-worker-ns/op ratio the
// scaled scenario must show, enforced only for reports recorded on a
// machine with at least four CPUs (a single-CPU recorder cannot exhibit
// wall-clock parallel speedup no matter how parallel the round structure).
const speedupGate = 2.0

// schemeAllocGate bounds the non-default coding schemes: their session
// allocs/op may exceed the in-report default-RLNC scheme entry by at most
// this factor. The non-recoding relays queue pooled packets instead of
// re-encoding, and the RS encoder writes into arena packets — neither may
// cost per-packet allocations.
const schemeAllocGate = 2.0

func main() {
	iters := flag.Int("iters", 5, "measured session runs per benchmark (after one warmup)")
	out := flag.String("out", "BENCH_5.json", "output path, or - for stdout")
	check := flag.String("check", "", "validate an existing report instead of benchmarking")
	engWork := flag.Int("engine-workers", -1, "spot-measure the scaled multi-session workload at this engine worker count (0 = serial) instead of recording a report")
	scheme := flag.String("scheme", "rlnc", "with -redundancy, the coding scheme to spot-measure; non-default values skip report recording")
	redund := flag.Float64("redundancy", 0, "source emission cap for the -scheme spot measurement (0 = rateless)")
	prof := profiling.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "omnc-bench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "omnc-bench: %v\n", err)
			os.Exit(1)
		}
	}()

	if *check != "" {
		if err := checkReport(*check); err != nil {
			fmt.Fprintf(os.Stderr, "omnc-bench: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema %s ok, gates held\n", *check, schemaVersion)
		return
	}

	if *scheme != "rlnc" || *redund != 0 {
		schemeVal, err := coding.ParseScheme(*scheme)
		if err == nil {
			err = coding.ValidateRedundancy(*redund)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "omnc-bench: %v\n", err)
			os.Exit(1)
		}
		s := sessionbench.SchemeScenario{
			Name:       fmt.Sprintf("SessionScheme/%s", schemeVal),
			Scheme:     schemeVal,
			Redundancy: *redund,
		}
		r, err := measureScheme(s, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omnc-bench: %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%s (redundancy %g): %d ns/op %d allocs/op %d B/op %.0f bytes/s\n",
			r.Name, *redund, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Throughput)
		return
	}

	if *engWork >= 0 {
		s := sessionbench.ScaledMultiScenario{
			Name:          fmt.Sprintf("MultiSessionScaled/workers=%d", *engWork),
			EngineWorkers: *engWork,
		}
		if *engWork == 0 {
			s.Name = "MultiSessionScaled/serial"
		}
		r, err := measureScaled(s, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omnc-bench: %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d ns/op %d allocs/op %d B/op %.0f bytes/s (cpus=%d)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Throughput, runtime.NumCPU())
		return
	}

	rep, err := record(*iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omnc-bench: %v\n", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "omnc-bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "omnc-bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Benchmarks {
		fmt.Printf("%-12s %12d ns/op %8d allocs/op %10d B/op  (baseline %d allocs/op)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Baseline.AllocsPerOp)
	}
}

// record benchmarks every scenario and assembles the report.
func record(iters int) (*Report, error) {
	if iters < 1 {
		return nil, fmt.Errorf("need at least 1 iteration, got %d", iters)
	}
	rep := &Report{
		Schema:     schemaVersion,
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Iterations: iters,
	}
	for _, s := range sessionbench.Scenarios() {
		r, err := measure(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	for _, s := range sessionbench.MultiScenarios() {
		r, err := measureMulti(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	for _, s := range sessionbench.ScaledMultiScenarios() {
		r, err := measureScaled(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	for _, s := range sessionbench.SchemeScenarios() {
		r, err := measureScheme(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	return rep, nil
}

// measureScheme is measure for one coding-scheme session; scheme entries
// carry no frozen baseline — checkReport gates them against the in-report
// default-RLNC entry instead.
func measureScheme(s sessionbench.SchemeScenario, iters int) (Result, error) {
	nw, src, dst, err := sessionbench.Network()
	if err != nil {
		return Result{}, err
	}
	st, err := s.Run(nw, src, dst)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if st, err = s.Run(nw, src, dst); err != nil {
			return Result{}, err
		}
		if st.GenerationsDecoded == 0 {
			return Result{}, fmt.Errorf("session decoded nothing")
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return Result{
		Name:        s.Name,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Throughput:  st.Throughput,
	}, nil
}

// measure runs one warmup session (arena fill, lazy tables) and then iters
// timed sessions, deriving allocs/op and B/op from MemStats deltas — the
// same quantities testing.B reports with -benchmem.
func measure(s sessionbench.Scenario, iters int) (Result, error) {
	nw, src, dst, err := sessionbench.Network()
	if err != nil {
		return Result{}, err
	}
	st, err := s.Run(nw, src, dst)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if st, err = s.Run(nw, src, dst); err != nil {
			return Result{}, err
		}
		if st.GenerationsDecoded == 0 {
			return Result{}, fmt.Errorf("session decoded nothing")
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return Result{
		Name:        s.Name,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Throughput:  st.Throughput,
		Baseline:    baselines[s.Name],
	}, nil
}

// measureMulti is measure for a multi-unicast workload: one warmup, then
// iters timed runs of all contending sessions on one shared engine.
func measureMulti(s sessionbench.MultiScenario, iters int) (Result, error) {
	nw, _, _, err := sessionbench.Network()
	if err != nil {
		return Result{}, err
	}
	ms, err := s.Run(nw)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if ms, err = s.Run(nw); err != nil {
			return Result{}, err
		}
		for j, st := range ms.PerSession {
			if st.Throughput <= 0 {
				return Result{}, fmt.Errorf("session %d delivered nothing", j)
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return Result{
		Name:        s.Name,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Throughput:  ms.AggregateThroughput,
		Baseline:    multiBaselines[s.Name],
	}, nil
}

// measureScaled is measureMulti for the parallel-engine scaling workload:
// sixteen sessions on radio-isolated strips with the scenario's engine
// worker count. The emulated throughput must come out identical for every
// worker count — checkReport enforces that.
func measureScaled(s sessionbench.ScaledMultiScenario, iters int) (Result, error) {
	nw, sessions, err := sessionbench.ScaledNetwork()
	if err != nil {
		return Result{}, err
	}
	ms, err := s.Run(nw, sessions)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if ms, err = s.Run(nw, sessions); err != nil {
			return Result{}, err
		}
		for j, st := range ms.PerSession {
			if st.Throughput <= 0 {
				return Result{}, fmt.Errorf("session %d delivered nothing", j)
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return Result{
		Name:        s.Name,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Throughput:  ms.AggregateThroughput,
	}, nil
}

// checkReport validates a committed report: schema identity, one entry per
// scenario with sane fields, and the OMNC allocation gate.
func checkReport(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Schema != schemaVersion {
		return fmt.Errorf("schema %q, want %q", rep.Schema, schemaVersion)
	}
	if rep.GoVersion == "" {
		return fmt.Errorf("missing go_version")
	}
	if rep.Iterations < 1 {
		return fmt.Errorf("iterations %d, want >= 1", rep.Iterations)
	}
	byName := map[string]Result{}
	for _, r := range rep.Benchmarks {
		if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 || r.BytesPerOp <= 0 {
			return fmt.Errorf("%s: non-positive measurement %+v", r.Name, r)
		}
		if r.Throughput <= 0 {
			return fmt.Errorf("%s: non-positive throughput", r.Name)
		}
		byName[r.Name] = r
	}
	for _, s := range sessionbench.Scenarios() {
		r, ok := byName[s.Name]
		if !ok {
			return fmt.Errorf("missing benchmark %s", s.Name)
		}
		if r.Baseline != baselines[s.Name] {
			return fmt.Errorf("%s: baseline %+v drifted from recorded %+v", s.Name, r.Baseline, baselines[s.Name])
		}
	}
	omncRes := byName["SessionOMNC"]
	limit := int64(float64(omncRes.Baseline.AllocsPerOp) * allocGate)
	if omncRes.AllocsPerOp > limit {
		return fmt.Errorf("SessionOMNC allocs/op %d exceeds gate %d (%.0f%% of baseline %d)",
			omncRes.AllocsPerOp, limit, allocGate*100, omncRes.Baseline.AllocsPerOp)
	}
	// Multi-unicast entries appeared in BENCH_3.json; a report that carries
	// any of them must carry all of them, with unchanged baselines and
	// allocs/op within the drift gate. Earlier reports stay valid.
	hasMulti := false
	for name := range multiBaselines {
		if _, ok := byName[name]; ok {
			hasMulti = true
			break
		}
	}
	if hasMulti {
		for _, s := range sessionbench.MultiScenarios() {
			r, ok := byName[s.Name]
			if !ok {
				return fmt.Errorf("missing benchmark %s", s.Name)
			}
			if r.Baseline != multiBaselines[s.Name] {
				return fmt.Errorf("%s: baseline %+v drifted from recorded %+v", s.Name, r.Baseline, multiBaselines[s.Name])
			}
			mlimit := int64(float64(r.Baseline.AllocsPerOp) * multiAllocGate)
			if r.AllocsPerOp > mlimit {
				return fmt.Errorf("%s allocs/op %d exceeds gate %d (%.0f%% of baseline %d)",
					s.Name, r.AllocsPerOp, mlimit, multiAllocGate*100, r.Baseline.AllocsPerOp)
			}
		}
	}
	// The parallel-engine scaling ladder appeared in BENCH_4.json. A report
	// carrying any rung must carry all of them with identical emulated
	// throughput (the engines are bit-identical by contract — divergence is
	// a determinism bug, never noise), must declare the recording machine's
	// CPU count, and — when that machine could actually run rounds in
	// parallel (cpus >= 4) — must show the speedup the parallel engine
	// exists for.
	scaled := sessionbench.ScaledMultiScenarios()
	hasScaled := false
	for _, s := range scaled {
		if _, ok := byName[s.Name]; ok {
			hasScaled = true
			break
		}
	}
	if hasScaled {
		var serial, four Result
		var tp float64
		for i, s := range scaled {
			r, ok := byName[s.Name]
			if !ok {
				return fmt.Errorf("missing benchmark %s", s.Name)
			}
			if i == 0 {
				tp = r.Throughput
			} else if r.Throughput != tp {
				return fmt.Errorf("%s: emulated throughput %v differs from %s's %v — parallel engine diverged from serial",
					s.Name, r.Throughput, scaled[0].Name, tp)
			}
			switch s.EngineWorkers {
			case 0:
				serial = r
			case 4:
				four = r
			}
		}
		if rep.CPUs < 1 {
			return fmt.Errorf("report carries the scaling ladder but no cpus field")
		}
		if rep.CPUs >= 4 {
			ratio := float64(serial.NsPerOp) / float64(four.NsPerOp)
			if ratio < speedupGate {
				return fmt.Errorf("scaled speedup %.2fx at 4 workers below gate %.1fx (serial %d ns/op, workers=4 %d ns/op, cpus=%d)",
					ratio, speedupGate, serial.NsPerOp, four.NsPerOp, rep.CPUs)
			}
		}
	}
	// Coding-scheme entries appeared in BENCH_5.json: a report carrying any
	// of them must carry all of them, and the non-recoding strategies must
	// stay within schemeAllocGate of the in-report default-RLNC session —
	// the arena-use proof for the strategy layer. Earlier reports stay valid.
	schemes := sessionbench.SchemeScenarios()
	hasSchemes := false
	for _, s := range schemes {
		if _, ok := byName[s.Name]; ok {
			hasSchemes = true
			break
		}
	}
	if hasSchemes {
		ref, ok := byName["SessionScheme/rlnc"]
		if !ok {
			return fmt.Errorf("scheme entries present but the SessionScheme/rlnc reference is missing")
		}
		for _, s := range schemes {
			r, ok := byName[s.Name]
			if !ok {
				return fmt.Errorf("missing benchmark %s", s.Name)
			}
			slimit := int64(float64(ref.AllocsPerOp) * schemeAllocGate)
			if r.AllocsPerOp > slimit {
				return fmt.Errorf("%s allocs/op %d exceeds gate %d (%.0f%% of SessionScheme/rlnc's %d)",
					s.Name, r.AllocsPerOp, slimit, schemeAllocGate*100, ref.AllocsPerOp)
			}
		}
	}
	return nil
}
