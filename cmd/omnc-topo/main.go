// Command omnc-topo generates and inspects the random lossy deployments the
// experiments run on: node placement, degree and link-quality statistics,
// and an optional CSV dump of the link set.
//
// Usage:
//
//	omnc-topo -nodes 300 -density 6 -seed 1
//	omnc-topo -quality 0.91 -links links.csv
//
// The deployment itself comes from internal/jobs (kind "topo") — the same
// Spec an omnc-serve job would run — so the CSV written here is byte
// identical to the daemon's landed links.csv artifact. The degree and
// reachability statistics are display-only and computed here.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"omnc"
	"omnc/internal/cliflags"
	"omnc/internal/graph"
	"omnc/internal/jobs"
	"omnc/internal/metrics"
	"omnc/internal/topology"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 300, "deployment size")
		density = flag.Float64("density", 6, "expected nodes per range disk")
		seed    = flag.Int64("seed", 1, "deployment seed")
		quality = flag.Float64("quality", 0, "target mean link quality (0 = default lossy)")
		links   = flag.String("links", "", "write the directed link set as CSV to this path")
		svg     = flag.String("svg", "", "render the deployment as SVG to this path")
	)
	cod := cliflags.RegisterCoding(flag.CommandLine,
		"coding scheme the deployment is inspected for: rlnc, rlnc-e2e or rs (validated and echoed)",
		"source emission cap as a factor of the generation size (0 = rateless; validated and echoed)")
	app := cliflags.New("omnc-topo", flag.CommandLine)
	app.Main(func(ctx context.Context) error {
		return run(ctx, *nodes, *density, *seed, *quality, *links, *svg, cod)
	})
}

func run(ctx context.Context, nodes int, density float64, seed int64, quality float64, linksPath, svgPath string, cod *cliflags.CodingFlags) error {
	spec := jobs.Spec{
		Version: jobs.SpecVersion, Kind: jobs.KindTopo,
		Seed: seed, Nodes: nodes, Density: density, MeanQuality: quality,
	}
	cod.Apply(&spec)
	res, err := jobs.Run(ctx, spec)
	if err != nil {
		return err
	}
	nw := res.Network
	// The scheme is validated by the Spec; re-parse only to echo its recoding
	// behaviour in the summary line.
	schemeVal, err := omnc.ParseScheme(cod.Scheme)
	if err != nil {
		return err
	}

	var degrees, qualities []float64
	linkCount := 0
	for i := 0; i < nw.Size(); i++ {
		ns := nw.Neighbors(i)
		degrees = append(degrees, float64(len(ns)))
		for _, j := range ns {
			qualities = append(qualities, nw.Prob(i, j))
			linkCount++
		}
	}
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}
	hops := graph.HopCounts(adj, 0)
	reachable, maxHops := 0, 0
	for _, h := range hops {
		if h >= 0 {
			reachable++
			if h > maxHops {
				maxHops = h
			}
		}
	}

	fmt.Printf("nodes:               %d\n", nw.Size())
	fmt.Printf("directed links:      %d\n", linkCount)
	fmt.Printf("range:               %.0f m (reception probability %.2f)\n",
		nw.PHYModel().Range, 0.2)
	fmt.Printf("degree:              %s\n", metrics.Summarize(degrees))
	fmt.Printf("link quality:        %s\n", metrics.Summarize(qualities))
	fmt.Printf("reachable from 0:    %d/%d (max %d hops)\n", reachable, nw.Size(), maxHops)
	relays := "relays re-encode"
	if !schemeVal.Recodes() {
		relays = "relays forward verbatim"
	}
	redLabel := "rateless"
	if cod.Redundancy > 0 {
		redLabel = fmt.Sprintf("%.2fx", cod.Redundancy)
	}
	fmt.Printf("coding scheme:       %s (%s), redundancy %s\n", schemeVal, relays, redLabel)

	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := nw.RenderSVG(f, topology.SVGOptions{ShowLinks: true, Src: -1, Dst: -1}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgPath)
	}

	if linksPath == "" {
		return nil
	}
	art := res.Artifact("links.csv")
	if art == nil {
		return fmt.Errorf("topo run produced no link artifact")
	}
	if err := os.WriteFile(linksPath, art.Data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", linksPath)
	return nil
}
