// Command omnc-topo generates and inspects the random lossy deployments the
// experiments run on: node placement, degree and link-quality statistics,
// and an optional CSV dump of the link set.
//
// Usage:
//
//	omnc-topo -nodes 300 -density 6 -seed 1
//	omnc-topo -quality 0.91 -links links.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"omnc"
	"omnc/internal/coding"
	"omnc/internal/graph"
	"omnc/internal/metrics"
	"omnc/internal/profiling"
	"omnc/internal/topology"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 300, "deployment size")
		density = flag.Float64("density", 6, "expected nodes per range disk")
		seed    = flag.Int64("seed", 1, "deployment seed")
		quality = flag.Float64("quality", 0, "target mean link quality (0 = default lossy)")
		links   = flag.String("links", "", "write the directed link set as CSV to this path")
		svg     = flag.String("svg", "", "render the deployment as SVG to this path")
		scheme  = flag.String("scheme", "rlnc", "coding scheme the deployment is inspected for: rlnc, rlnc-e2e or rs (validated and echoed)")
		redund  = flag.Float64("redundancy", 0, "source emission cap as a factor of the generation size (0 = rateless; validated and echoed)")
	)
	prof := profiling.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "omnc-topo:", err)
		os.Exit(1)
	}
	err = run(*nodes, *density, *seed, *quality, *links, *svg, *scheme, *redund)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "omnc-topo:", err)
		os.Exit(1)
	}
}

func run(nodes int, density float64, seed int64, quality float64, linksPath, svgPath, schemeName string, redundancy float64) error {
	// Validate the coding flags with the same parser every tool shares, so a
	// sweep script can vet its whole flag set against the cheapest command.
	schemeVal, err := omnc.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	if err := coding.ValidateRedundancy(redundancy); err != nil {
		return err
	}
	nw, err := omnc.GenerateNetwork(nodes, density, seed)
	if err != nil {
		return err
	}
	if quality > 0 {
		phy, err := omnc.DefaultPHY().CalibrateGain(quality)
		if err != nil {
			return err
		}
		if nw, err = nw.WithPHY(phy); err != nil {
			return err
		}
	}

	var degrees, qualities []float64
	linkCount := 0
	for i := 0; i < nw.Size(); i++ {
		ns := nw.Neighbors(i)
		degrees = append(degrees, float64(len(ns)))
		for _, j := range ns {
			qualities = append(qualities, nw.Prob(i, j))
			linkCount++
		}
	}
	adj := make([][]int, nw.Size())
	for i := range adj {
		adj[i] = nw.Neighbors(i)
	}
	hops := graph.HopCounts(adj, 0)
	reachable, maxHops := 0, 0
	for _, h := range hops {
		if h >= 0 {
			reachable++
			if h > maxHops {
				maxHops = h
			}
		}
	}

	fmt.Printf("nodes:               %d\n", nw.Size())
	fmt.Printf("directed links:      %d\n", linkCount)
	fmt.Printf("range:               %.0f m (reception probability %.2f)\n",
		nw.PHYModel().Range, 0.2)
	fmt.Printf("degree:              %s\n", metrics.Summarize(degrees))
	fmt.Printf("link quality:        %s\n", metrics.Summarize(qualities))
	fmt.Printf("reachable from 0:    %d/%d (max %d hops)\n", reachable, nw.Size(), maxHops)
	relays := "relays re-encode"
	if !schemeVal.Recodes() {
		relays = "relays forward verbatim"
	}
	redLabel := "rateless"
	if redundancy > 0 {
		redLabel = fmt.Sprintf("%.2fx", redundancy)
	}
	fmt.Printf("coding scheme:       %s (%s), redundancy %s\n", schemeVal, relays, redLabel)

	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := nw.RenderSVG(f, topology.SVGOptions{ShowLinks: true, Src: -1, Dst: -1}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgPath)
	}

	if linksPath == "" {
		return nil
	}
	f, err := os.Create(linksPath)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"from", "to", "probability", "distance_m"}); err != nil {
		return err
	}
	for i := 0; i < nw.Size(); i++ {
		for _, j := range nw.Neighbors(i) {
			d := nw.Position(i).Distance(nw.Position(j))
			if err := w.Write([]string{
				strconv.Itoa(i), strconv.Itoa(j),
				fmt.Sprintf("%.4f", nw.Prob(i, j)),
				fmt.Sprintf("%.1f", d),
			}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	fmt.Printf("wrote %s\n", linksPath)
	return w.Error()
}
