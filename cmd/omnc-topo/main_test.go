package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omnc/internal/cliflags"
)

func TestRunPrintsStatsAndWritesLinks(t *testing.T) {
	dir := t.TempDir()
	links := filepath.Join(dir, "links.csv")
	if err := run(context.Background(), 60, 6, 3, 0, links, "", codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(links)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 {
		t.Fatalf("links CSV has %d lines", len(lines))
	}
	if lines[0] != "from,to,probability,distance_m" {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunHighQuality(t *testing.T) {
	if err := run(context.Background(), 40, 6, 1, 0.9, "", "", codf("rs", 2)); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSVG(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "topo.svg")
	if err := run(context.Background(), 40, 6, 2, 0, "", svg, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("not an SVG")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(context.Background(), 1, 6, 1, 0, "", "", codf("rlnc", 0)); err == nil {
		t.Fatal("single node must fail")
	}
	if err := run(context.Background(), 40, 6, 1, 0.05, "", "", codf("rlnc", 0)); err == nil {
		t.Fatal("uncalibratable quality must fail")
	}
}

func TestRunRejectsBadScheme(t *testing.T) {
	if err := run(context.Background(), 40, 6, 1, 0, "", "", codf("fountain", 0)); err == nil {
		t.Fatal("unknown scheme must fail")
	}
	if err := run(context.Background(), 40, 6, 1, 0, "", "", codf("rlnc", 0.5)); err == nil {
		t.Fatal("sub-unit redundancy must fail")
	}
}

// codf builds the coding flag block the way flag parsing would.
func codf(scheme string, redundancy float64) *cliflags.CodingFlags {
	return &cliflags.CodingFlags{Scheme: scheme, Redundancy: redundancy}
}
