package main

import (
	"testing"
	"time"
)

func TestRunShortSession(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	if err := run(600*time.Millisecond, 300_000, 6, 32, 2, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	if err := run(400*time.Millisecond, 300_000, 6, 32, 2, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadCoding(t *testing.T) {
	if err := run(100*time.Millisecond, 1000, 0, 0, 1, 1, 1); err == nil {
		t.Fatal("invalid generation size must fail")
	}
}

func TestRunBadTrials(t *testing.T) {
	if err := run(100*time.Millisecond, 1000, 8, 64, 1, 0, 1); err == nil {
		t.Fatal("zero trials must fail")
	}
}
