package main

import (
	"context"
	"testing"
	"time"

	"omnc/internal/cliflags"
)

func TestRunShortSession(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	if err := run(context.Background(), 600*time.Millisecond, 300_000, 6, 32, 2, 1, 0, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	if err := run(context.Background(), 400*time.Millisecond, 300_000, 6, 32, 2, 2, 2, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchemeFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	for _, scheme := range []string{"rlnc-e2e", "rs"} {
		if err := run(context.Background(), 400*time.Millisecond, 300_000, 6, 32, 2, 1, 0, codf(scheme, 3)); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

func TestRunBadCoding(t *testing.T) {
	if err := run(context.Background(), 100*time.Millisecond, 1000, 0, 0, 1, 1, 1, codf("rlnc", 0)); err == nil {
		t.Fatal("invalid generation size must fail")
	}
}

func TestRunBadTrials(t *testing.T) {
	if err := run(context.Background(), 100*time.Millisecond, 1000, 8, 64, 1, 0, 1, codf("rlnc", 0)); err == nil {
		t.Fatal("zero trials must fail")
	}
}

func TestRunBadScheme(t *testing.T) {
	if err := run(context.Background(), 100*time.Millisecond, 1000, 8, 64, 1, 1, 1, codf("fountain", 0)); err == nil {
		t.Fatal("unknown scheme must fail")
	}
}

// codf builds the coding flag block the way flag parsing would.
func codf(scheme string, redundancy float64) *cliflags.CodingFlags {
	return &cliflags.CodingFlags{Scheme: scheme, Redundancy: redundancy}
}
