// Command omnc-drift runs one OMNC session over *real* UDP sockets on the
// loopback interface — the architecture of the paper's Drift testbed in
// miniature: real OS transport stacks, modeled wireless PHY. Use it to
// sanity-check the coding stack and wire format against an actual network
// path; use omnc-fig/omnc-sim (virtual time) for experiments.
//
// Usage:
//
//	omnc-drift                    # two-relay diamond, 2 s wall time
//	omnc-drift -duration 5s -rate 500000
//	omnc-drift -trials 4 -workers 4   # four sessions, concurrently
//
// The session itself runs through internal/jobs (kind "loopback"), so the
// same workload is reachable as an omnc-serve job.
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"omnc/internal/cliflags"
	"omnc/internal/coding"
	"omnc/internal/jobs"
)

func main() {
	var (
		duration = flag.Duration("duration", 2*time.Second, "wall-clock run time")
		rate     = flag.Float64("rate", 200_000, "per-node broadcast pacing rate (bytes/s)")
		genSize  = flag.Int("generation", 8, "blocks per generation")
		block    = flag.Int("block", 64, "bytes per block")
		seed     = flag.Int64("seed", 1, "loss-process seed")
		trials   = flag.Int("trials", 1, "independent loopback sessions to run")
	)
	pool := cliflags.RegisterPool(flag.CommandLine, false)
	cod := cliflags.RegisterCoding(flag.CommandLine,
		"coding scheme: rlnc (full recoding), rlnc-e2e (no recoding), rs (source-only Reed-Solomon)",
		"coded packets per generation as a factor of the generation size (0 = rateless)")
	app := cliflags.New("omnc-drift", flag.CommandLine)
	app.Main(func(ctx context.Context) error {
		return run(ctx, *duration, *rate, *genSize, *block, *seed, *trials, pool.Workers, cod)
	})
}

func run(ctx context.Context, duration time.Duration, rate float64, genSize, block int, seed int64, trials, workers int,
	cod *cliflags.CodingFlags) error {
	if trials < 1 {
		return fmt.Errorf("-trials must be at least 1, got %d", trials)
	}
	// The Spec treats zero sizes as "use the defaults"; the flag surface
	// treats them as user error, so reject them before they normalize away.
	if genSize < 1 || block < 1 {
		return fmt.Errorf("generation size and block size must be positive, got %dx%d", genSize, block)
	}
	schemeVal, err := coding.ParseScheme(cod.Scheme)
	if err != nil {
		return err
	}
	spec := jobs.Spec{
		Version: jobs.SpecVersion, Kind: jobs.KindLoopback,
		Seed: seed, Duration: duration.Seconds(), Rate: rate,
		GenerationSize: genSize, BlockSize: block,
		Trials: trials, Workers: workers,
	}
	cod.Apply(&spec)
	if err := spec.Validate(); err != nil {
		return err
	}

	fmt.Printf("running OMNC over loopback UDP: %d nodes, generation %dx%dB, scheme %s, %v wall time, %d session(s)\n",
		4, genSize, block, schemeVal, duration, trials)

	res, err := jobs.Run(ctx, spec)
	if err != nil {
		return err
	}

	var sum struct {
		decoded, corrupted int
		forwarded, dropped int64
	}
	for i, r := range res.Loopback {
		if trials > 1 {
			fmt.Printf("trial %d: %d generations decoded, %d corrupted, %d datagrams lost\n",
				i, r.GenerationsDecoded, r.Corrupted, r.DatagramsDropped)
		}
		sum.decoded += r.GenerationsDecoded
		sum.corrupted += r.Corrupted
		sum.forwarded += r.DatagramsForwarded
		sum.dropped += r.DatagramsDropped
	}
	total := sum.forwarded + sum.dropped
	fmt.Printf("generations decoded:  %d (verified byte-for-byte; %d corrupted)\n",
		sum.decoded, sum.corrupted)
	fmt.Printf("channel emulator:     %d datagrams forwarded, %d lost (%.0f%% loss)\n",
		sum.forwarded, sum.dropped,
		100*float64(sum.dropped)/float64(max64(total, 1)))
	fmt.Printf("goodput:              %.0f bytes/s of decoded application data per session\n",
		float64(sum.decoded*genSize*block)/(duration.Seconds()*float64(trials)))
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
