// Command omnc-drift runs one OMNC session over *real* UDP sockets on the
// loopback interface — the architecture of the paper's Drift testbed in
// miniature: real OS transport stacks, modeled wireless PHY. Use it to
// sanity-check the coding stack and wire format against an actual network
// path; use omnc-fig/omnc-sim (virtual time) for experiments.
//
// Usage:
//
//	omnc-drift                    # two-relay diamond, 2 s wall time
//	omnc-drift -duration 5s -rate 500000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"omnc"
	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/drift"
)

func main() {
	var (
		duration = flag.Duration("duration", 2*time.Second, "wall-clock run time")
		rate     = flag.Float64("rate", 200_000, "per-node broadcast pacing rate (bytes/s)")
		genSize  = flag.Int("generation", 8, "blocks per generation")
		block    = flag.Int("block", 64, "bytes per block")
		seed     = flag.Int64("seed", 1, "loss-process seed")
	)
	flag.Parse()
	if err := run(*duration, *rate, *genSize, *block, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "omnc-drift:", err)
		os.Exit(1)
	}
}

func run(duration time.Duration, rate float64, genSize, block int, seed int64) error {
	nw, err := omnc.NetworkFromMatrix([][]float64{
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	if err != nil {
		return err
	}
	sg, err := core.SelectNodes(nw, 0, 3)
	if err != nil {
		return err
	}
	rates := make([]float64, sg.Size())
	for i := range rates {
		rates[i] = rate
	}
	rates[sg.Dst] = 0

	fmt.Printf("running OMNC over loopback UDP: %d nodes, generation %dx%dB, %v wall time\n",
		sg.Size(), genSize, block, duration)
	res, err := drift.RunSession(nw, sg, drift.Config{
		Coding:   coding.Params{GenerationSize: genSize, BlockSize: block},
		Rates:    rates,
		Duration: duration,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	total := res.DatagramsForwarded + res.DatagramsDropped
	fmt.Printf("generations decoded:  %d (verified byte-for-byte; %d corrupted)\n",
		res.GenerationsDecoded, res.Corrupted)
	fmt.Printf("channel emulator:     %d datagrams forwarded, %d lost (%.0f%% loss)\n",
		res.DatagramsForwarded, res.DatagramsDropped,
		100*float64(res.DatagramsDropped)/float64(max64(total, 1)))
	fmt.Printf("goodput:              %.0f bytes/s of decoded application data\n",
		float64(res.GenerationsDecoded*genSize*block)/duration.Seconds())
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
