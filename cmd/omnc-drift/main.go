// Command omnc-drift runs one OMNC session over *real* UDP sockets on the
// loopback interface — the architecture of the paper's Drift testbed in
// miniature: real OS transport stacks, modeled wireless PHY. Use it to
// sanity-check the coding stack and wire format against an actual network
// path; use omnc-fig/omnc-sim (virtual time) for experiments.
//
// Usage:
//
//	omnc-drift                    # two-relay diamond, 2 s wall time
//	omnc-drift -duration 5s -rate 500000
//	omnc-drift -trials 4 -workers 4   # four sessions, concurrently
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"omnc"
	"omnc/internal/coding"
	"omnc/internal/core"
	"omnc/internal/drift"
	"omnc/internal/parallel"
	"omnc/internal/profiling"
	"omnc/internal/seedmix"
)

// streamDriftTrial derives each trial's loss-process seed from the -seed
// flag; every trial gets an independent stream.
const streamDriftTrial int64 = 201

func main() {
	var (
		duration = flag.Duration("duration", 2*time.Second, "wall-clock run time")
		rate     = flag.Float64("rate", 200_000, "per-node broadcast pacing rate (bytes/s)")
		genSize  = flag.Int("generation", 8, "blocks per generation")
		block    = flag.Int("block", 64, "bytes per block")
		seed     = flag.Int64("seed", 1, "loss-process seed")
		trials   = flag.Int("trials", 1, "independent loopback sessions to run")
		workers  = flag.Int("workers", 0, "concurrent sessions (0 = all cores); each owns its own sockets")
		scheme   = flag.String("scheme", "rlnc", "coding scheme: rlnc (full recoding), rlnc-e2e (no recoding), rs (source-only Reed-Solomon)")
		redund   = flag.Float64("redundancy", 0, "coded packets per generation as a factor of the generation size (0 = rateless)")
	)
	prof := profiling.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "omnc-drift:", err)
		os.Exit(1)
	}
	err = run(*duration, *rate, *genSize, *block, *seed, *trials, *workers, *scheme, *redund)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "omnc-drift:", err)
		os.Exit(1)
	}
}

func run(duration time.Duration, rate float64, genSize, block int, seed int64, trials, workers int,
	schemeName string, redundancy float64) error {
	if trials < 1 {
		return fmt.Errorf("-trials must be at least 1, got %d", trials)
	}
	schemeVal, err := coding.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	nw, err := omnc.NetworkFromMatrix([][]float64{
		{0, 0.8, 0.6, 0},
		{0.8, 0, 0, 0.7},
		{0.6, 0, 0, 0.9},
		{0, 0.7, 0.9, 0},
	})
	if err != nil {
		return err
	}
	sg, err := core.SelectNodes(nw, 0, 3)
	if err != nil {
		return err
	}
	rates := make([]float64, sg.Size())
	for i := range rates {
		rates[i] = rate
	}
	rates[sg.Dst] = 0

	fmt.Printf("running OMNC over loopback UDP: %d nodes, generation %dx%dB, scheme %s, %v wall time, %d session(s)\n",
		sg.Size(), genSize, block, schemeVal, duration, trials)

	// Each trial is a full loopback session with its own sockets and a
	// loss-process seed derived from (seed, trial); concurrent sessions
	// don't interact, so -workers trades wall-clock time for CPU only.
	results := make([]*drift.Result, trials)
	err = parallel.ForEach(trials, parallel.Workers(workers), func(i int) error {
		trialSeed := seed
		if trials > 1 {
			trialSeed = seedmix.Derive(seed, streamDriftTrial, int64(i))
		}
		res, err := drift.RunSession(nw, sg, drift.Config{
			Coding:     coding.Params{GenerationSize: genSize, BlockSize: block},
			Scheme:     schemeVal,
			Redundancy: redundancy,
			Rates:      rates,
			Duration:   duration,
			Seed:       trialSeed,
		})
		if err != nil {
			return fmt.Errorf("trial %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}

	var sum drift.Result
	for i, res := range results {
		if trials > 1 {
			fmt.Printf("trial %d: %d generations decoded, %d corrupted, %d datagrams lost\n",
				i, res.GenerationsDecoded, res.Corrupted, res.DatagramsDropped)
		}
		sum.GenerationsDecoded += res.GenerationsDecoded
		sum.Corrupted += res.Corrupted
		sum.DatagramsForwarded += res.DatagramsForwarded
		sum.DatagramsDropped += res.DatagramsDropped
	}
	total := sum.DatagramsForwarded + sum.DatagramsDropped
	fmt.Printf("generations decoded:  %d (verified byte-for-byte; %d corrupted)\n",
		sum.GenerationsDecoded, sum.Corrupted)
	fmt.Printf("channel emulator:     %d datagrams forwarded, %d lost (%.0f%% loss)\n",
		sum.DatagramsForwarded, sum.DatagramsDropped,
		100*float64(sum.DatagramsDropped)/float64(max64(total, 1)))
	fmt.Printf("goodput:              %.0f bytes/s of decoded application data per session\n",
		float64(sum.GenerationsDecoded*genSize*block)/(duration.Seconds()*float64(trials)))
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
