package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"omnc/internal/cliflags"
)

// -update regenerates the golden fixtures under testdata/ instead of
// comparing against them:
//
//	go test ./cmd/omnc-fig -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func TestRunFig1WritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "1", false, 0, 0, 1, "oracle", dir, 0, 0, false, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1_convergence.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig2SmallSession(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "2l", false, 1, 60, 7, "oracle", dir, 0, 0, false, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2l_gains.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), "nope", false, 1, 10, 1, "oracle", "", 0, 0, false, codf("rlnc", 0)); err == nil {
		t.Fatal("unknown figure must fail")
	}
	if err := run(context.Background(), "2l", false, 1, 10, 1, "token-ring", "", 0, 0, false, codf("rlnc", 0)); err == nil {
		t.Fatal("unknown MAC must fail")
	}
	if err := run(context.Background(), "2l", false, 1, 10, 1, "oracle", "", 0, 0, false, codf("fountain", 0)); err == nil {
		t.Fatal("unknown scheme must fail")
	}
	if err := run(context.Background(), "2l", false, 1, 10, 1, "oracle", "", 0, 0, false, codf("rlnc", 0.5)); err == nil {
		t.Fatal("sub-unit redundancy must fail")
	}
}

// TestGoldenFig2CSV pins the figure data omnc-fig emits for a fixed seed:
// the CSV series must match the committed fixture byte for byte. The run
// uses two workers, so the fixture also guards the parallel runner's
// determinism at the CLI boundary. Regenerate with -update after an
// intentional behaviour change.
func TestGoldenFig2CSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "2l", false, 2, 60, 7, "oracle", dir, 2, 0, false, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join(dir, "fig2l_gains.csv"), "fig2l_gains.golden.csv")
}

// TestGoldenFig2CSVWithReport re-runs the pinned figure with observability
// reporting enabled: the CSV must stay byte-identical to the same fixture,
// proving the report hooks observe the emulation without perturbing it.
func TestGoldenFig2CSVWithReport(t *testing.T) {
	if *update {
		t.Skip("fixture is owned by TestGoldenFig2CSV")
	}
	dir := t.TempDir()
	if err := run(context.Background(), "2l", false, 2, 60, 7, "oracle", dir, 2, 0, true, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join(dir, "fig2l_gains.csv"), "fig2l_gains.golden.csv")
}

// TestGoldenMultiCSV pins the multi-unicast scaling series for a fixed seed:
// two session counts, two trials each, all four protocols on one shared
// engine per cell, two workers — so the fixture also guards RunMultiScaling's
// workers-invariant determinism at the CLI boundary.
func TestGoldenMultiCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "multi", false, 2, 60, 7, "oracle", dir, 2, 0, false, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join(dir, "fig_multi.csv"), "fig_multi.golden.csv")
}

// TestGoldenMultiCSVParallelEngine re-runs the multi figure on the parallel
// event engine (-engine-workers 2) against the SAME golden fixture: the
// conservative engine's contract is byte-identical output at any worker
// count, so the serial fixture must match without regeneration.
func TestGoldenMultiCSVParallelEngine(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "multi", false, 2, 60, 7, "oracle", dir, 2, 2, false, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join(dir, "fig_multi.csv"), "fig_multi.golden.csv")
}

// TestGoldenFaultsCSV pins the fault-churn series for a fixed seed: two
// sessions crossed with three churn rates, all four protocols, two workers —
// so the fixture guards both the randomized fault plans' determinism and the
// runner's workers-invariance at the CLI boundary. The churn-0 rows double as
// a regression check that installing the fault subsystem leaves fault-free
// sessions bit-identical.
func TestGoldenFaultsCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "faults", false, 2, 60, 7, "oracle", dir, 2, 0, false, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join(dir, "fig_faults.csv"), "fig_faults.golden.csv")
}

// TestGoldenSchemesCSV pins the coding-scheme sweep for a fixed seed: three
// schemes crossed with three redundancy levels and four chain lengths, two
// workers — so the fixture guards the strategy layer's determinism at the CLI
// boundary. TestSchemesGoldenRecodingGain separately asserts the headline
// ordering inside the fixture.
func TestGoldenSchemesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "schemes", false, 0, 60, 7, "oracle", dir, 2, 0, false, codf("rlnc", 0)); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join(dir, "fig_schemes.csv"), "fig_schemes.golden.csv")
}

// TestSchemesGoldenRecodingGain reads the committed schemes fixture and
// asserts the claim the figure exists to demonstrate: on every chain of 3 or
// more hops, rateless full-recoding RLNC strictly out-delivers source-only
// Reed-Solomon.
func TestSchemesGoldenRecodingGain(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "fig_schemes.golden.csv"))
	if err != nil {
		t.Fatalf("%v (run TestGoldenSchemesCSV with -update first)", err)
	}
	rows, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// throughput by (scheme, redundancy, hops)
	tp := make(map[[3]string]float64)
	hopSet := make(map[string]bool)
	for _, row := range rows[1:] {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		tp[[3]string{row[0], row[1], row[2]}] = v
		hopSet[row[2]] = true
	}
	checked := 0
	for hops := range hopSet {
		h, _ := strconv.Atoi(hops)
		if h < 3 {
			continue
		}
		rlnc, ok := tp[[3]string{"rlnc", "0.00", hops}]
		rs, rsOK := tp[[3]string{"rs", "0.00", hops}]
		if !ok || !rsOK {
			t.Fatalf("fixture is missing rateless cells at %s hops", hops)
		}
		if rlnc <= rs {
			t.Fatalf("at %s hops full-recoding RLNC (%v B/s) does not beat source-only RS (%v B/s)", hops, rlnc, rs)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("fixture has no chains of 3 or more hops")
	}
}

// compareGolden diffs got against testdata/<name>, rewriting the fixture
// under -update.
func compareGolden(t *testing.T, gotPath, name string) {
	t.Helper()
	got, err := os.ReadFile(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("figure data drifted from %s (%d vs %d bytes); rerun with -update if the change is intentional",
			golden, len(got), len(want))
	}
}

// codf builds the coding flag block the way flag parsing would.
func codf(scheme string, redundancy float64) *cliflags.CodingFlags {
	return &cliflags.CodingFlags{Scheme: scheme, Redundancy: redundancy}
}
