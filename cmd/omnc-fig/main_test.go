package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFig1WritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("1", false, 0, 0, 1, "oracle", dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1_convergence.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig2SmallSession(t *testing.T) {
	dir := t.TempDir()
	if err := run("2l", false, 1, 60, 7, "oracle", dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2l_gains.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("nope", false, 1, 10, 1, "oracle", ""); err == nil {
		t.Fatal("unknown figure must fail")
	}
	if err := run("2l", false, 1, 10, 1, "token-ring", ""); err == nil {
		t.Fatal("unknown MAC must fail")
	}
}
